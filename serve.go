package progxe

import (
	"net/http"

	"progxe/internal/server"
)

// The service layer (internal/server) turns the library into a progressive
// query service: relations are registered in a concurrency-safe catalog,
// PREFERRING-dialect queries arrive over HTTP, and each skyline result is
// streamed (NDJSON or Server-Sent Events) the moment the engine proves it
// final. Runs are admission-controlled and cancellable — a disconnected
// client aborts its engine run through the ContextEngine contract.
type (
	// Server is the progressive query service; it implements http.Handler.
	Server = server.Server
	// ServerConfig tunes the service; the zero value is fully usable.
	ServerConfig = server.Config
	// ServerStats is a point-in-time snapshot of the service counters,
	// including the time-to-first-result histogram.
	ServerStats = server.Snapshot
	// ExecOptions mirrors the wire "exec" object shared by /v1/query and
	// /v1/subscribe: the run-shaping knobs (workers, committers, speculate,
	// ranker) under one name. Embedders constructing QueryRequest bodies
	// programmatically should prefer it over the legacy flat fields; a
	// request carrying both spellings is rejected with exec_conflict.
	ExecOptions = server.ExecRequest
)

// NewServer builds the progressive query service. Mount it on any mux or
// serve it directly:
//
//	srv := progxe.NewServer(progxe.ServerConfig{MaxConcurrentRuns: 16})
//	srv.Catalog().Register(myRelation)
//	log.Fatal(http.ListenAndServe(":8080", srv))
//
// See cmd/progxe-serve for the standalone binary.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// ServerEngineNames returns the engine names accepted by the query endpoint.
func ServerEngineNames() []string { return server.EngineNames() }

var _ http.Handler = (*Server)(nil)
