module progxe

go 1.24
