package bench

import (
	"io"
	"testing"

	"progxe/internal/core"
	"progxe/internal/core/sched"
	"progxe/internal/datagen"
)

// TestSchedSetupFigureSmoke drives the S1 harness end to end on a shrunken
// fine-partition problem: both scheduler variants must agree on the region
// count, the edge total, and the complete pop sequence over the real
// (engine-built) region geometry — the randomized property test's
// complement with production boxes.
func TestSchedSetupFigureSmoke(t *testing.T) {
	wl := Workload{N: 2000, Dims: 3, Dist: datagen.AntiCorrelated, Sigma: 0.001, Seed: 41}
	p, err := wl.Problem()
	if err != nil {
		t.Fatal(err)
	}
	boxes, dims, err := core.PlanBoxes(p, core.Options{Partitioning: core.PartitionKD, InputCells: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) < 200 {
		t.Fatalf("fixture produced only %d regions", len(boxes))
	}
	inc := sched.NewProgressive(boxes, dims, schedRanker, 0)
	batch := sched.NewBatch(boxes, dims, schedRanker, 0)
	for {
		ia, ra, oka := inc.Next()
		ib, rb, okb := batch.Next()
		if ia != ib || ra != rb || oka != okb {
			t.Fatalf("pop diverges on engine-built boxes: (%d,%g,%v) vs (%d,%g,%v)", ia, ra, oka, ib, rb, okb)
		}
		if !oka {
			break
		}
		inc.Complete(ia)
		batch.Complete(ib)
	}
	if ci, cb := inc.Counters(), batch.Counters(); ci.Edges != cb.Edges || ci.Edges == 0 {
		t.Fatalf("edge totals: incremental %d, batch %d", ci.Edges, cb.Edges)
	}
}

// TestFinePartitionRegionFloor pins the committed S1 workload's scale: the
// kd fanout must pair into at least 10⁴ regions, the range the scheduler
// acceptance gates on. Skipped in -short mode (the look-ahead alone costs a
// few seconds at this size).
func TestFinePartitionRegionFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("fine-partition look-ahead and batch drive are seconds-scale")
	}
	f, err := FigureByID("S1")
	if err != nil {
		t.Fatal(err)
	}
	runs := runSchedSetup(f, io.Discard, 1)
	if len(runs) != 2 || runs[0].Stats.Regions != runs[1].Stats.Regions {
		t.Fatalf("S1 harness runs = %+v", runs)
	}
	if runs[0].Stats.Regions < 10000 {
		t.Fatalf("fine-partition workload pairs into %d regions, want ≥ 10⁴", runs[0].Stats.Regions)
	}
}
