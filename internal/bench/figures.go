package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"progxe/internal/core"
	"progxe/internal/datagen"
	"progxe/internal/smj"
)

// Kind distinguishes the two figure families of the evaluation.
type Kind int8

const (
	// Progress figures plot cumulative results over time (Figs. 10a–c,
	// 11, 12).
	Progress Kind = iota
	// TotalTime figures plot total execution time against join selectivity
	// (Figs. 10d–f, 13).
	TotalTime
	// SchedSetup figures compare scheduler-layer setup+release time
	// (incremental EL-Graph vs the batch O(n²) builder) on a fine-partition
	// region set — a scaling experiment beyond the paper's evaluation.
	SchedSetup
	// PruneSetup figures compare region-level domination pruning time (the
	// shared box-index sweep vs the retained O(n²) scan) on a fine-partition
	// candidate set — the companion scaling experiment for the look-ahead's
	// other quadratic pass.
	PruneSetup
	// LiveApply figures compare incremental maintenance against recompute:
	// single-tuple insert/delete apply latency on a resident LiveSpace vs a
	// full engine re-run over the mutated snapshot — the economics of the
	// subscription path (beyond the paper's evaluation).
	LiveApply
)

// String names the figure kind the way reports caption it.
func (k Kind) String() string {
	switch k {
	case TotalTime:
		return "total-time"
	case SchedSetup:
		return "sched-setup"
	case PruneSetup:
		return "prune-setup"
	case LiveApply:
		return "live-apply"
	default:
		return "progress"
	}
}

// Figure is one experiment of the paper's evaluation: a workload (or a
// selectivity sweep over it), the engines compared, and the qualitative
// shape the paper reports.
type Figure struct {
	ID       string
	Caption  string
	Kind     Kind
	Workload Workload
	Sweep    []float64 // σ values when Kind == TotalTime
	Engines  []EngineSpec
	// SchedOpts configures the look-ahead of a SchedSetup figure (nil on
	// other kinds).
	SchedOpts *core.Options
	Expect    string // the paper's claim, quoted in EXPERIMENTS.md
}

// sweepSigmas is the σ range of Figs. 10d–f and 13 ([1e-4, 1e-1]).
var sweepSigmas = []float64{0.0001, 0.001, 0.01, 0.1}

// Figures returns every table/figure reproduction in evaluation order. Base
// cardinalities are laptop-scaled (the paper uses N = 500K); see Scale.
func Figures() []Figure {
	var figs []Figure
	dists := []struct {
		letter string
		dist   datagen.Distribution
	}{
		{"a", datagen.Correlated},
		{"b", datagen.Independent},
		{"c", datagen.AntiCorrelated},
	}

	// Fig. 10 a–c: progressiveness of the four ProgXe variants, σ=0.001.
	for _, d := range dists {
		figs = append(figs, Figure{
			ID:       "10" + d.letter,
			Caption:  fmt.Sprintf("Progressiveness of ProgXe variants; %s, d=4, σ=0.001", d.dist),
			Kind:     Progress,
			Workload: Workload{N: scaled(4000), Dims: 4, Dist: d.dist, Sigma: 0.001, Seed: 10},
			Engines:  ProgXeEngines(),
			Expect:   "ordering produces results earlier and faster than random ordering; push-through helps correlated/independent, ProgXe alone leads on anti-correlated",
		})
	}
	// Fig. 10 d–f: total execution time of the variants vs σ.
	for _, d := range dists {
		figs = append(figs, Figure{
			ID:       "10" + string('d'+d.letter[0]-'a'),
			Caption:  fmt.Sprintf("Total execution time of ProgXe variants vs σ; %s, d=4", d.dist),
			Kind:     TotalTime,
			Workload: Workload{N: scaled(1200), Dims: 4, Dist: d.dist, Seed: 10},
			Sweep:    sweepSigmas,
			Engines:  ProgXeEngines(),
			Expect:   "ordering overhead negligible for σ<0.01 and beneficial for σ≥0.01",
		})
	}
	// Fig. 11 a–c (σ=0.01) and d–f (σ=0.1): ProgXe/ProgXe+/SSMJ progress.
	for _, d := range dists {
		figs = append(figs, Figure{
			ID:       "11" + d.letter,
			Caption:  fmt.Sprintf("Progressiveness vs SSMJ; %s, d=4, σ=0.01", d.dist),
			Kind:     Progress,
			Workload: Workload{N: scaled(3000), Dims: 4, Dist: d.dist, Sigma: 0.01, Seed: 11},
			Engines:  ComparisonEngines(),
			Expect:   "ProgXe wins by orders of magnitude on anti-correlated; comparable on correlated",
		})
	}
	for _, d := range dists {
		figs = append(figs, Figure{
			ID:       "11" + string('d'+d.letter[0]-'a'),
			Caption:  fmt.Sprintf("Progressiveness vs SSMJ; %s, d=4, σ=0.1", d.dist),
			Kind:     Progress,
			Workload: Workload{N: scaled(1200), Dims: 4, Dist: d.dist, Sigma: 0.1, Seed: 12},
			Engines:  ComparisonEngines(),
			Expect:   "same ranking at high selectivity",
		})
	}
	// Fig. 12: d=5, σ=0.1.
	figs = append(figs, Figure{
		ID:       "12a",
		Caption:  "Higher dimension d=5, independent, σ=0.1",
		Kind:     Progress,
		Workload: Workload{N: scaled(1200), Dims: 5, Dist: datagen.Independent, Sigma: 0.1, Seed: 13},
		Engines:  ComparisonEngines(),
		Expect:   "SSMJ's first output is dramatically later than ProgXe's (paper: >350s vs 40–50s)",
	})
	figs = append(figs, Figure{
		ID:       "12b",
		Caption:  "Higher dimension d=5, anti-correlated, σ=0.1 (SSMJ returned nothing after hours)",
		Kind:     Progress,
		Workload: Workload{N: scaled(1200), Dims: 5, Dist: datagen.AntiCorrelated, Sigma: 0.1, Seed: 13},
		Engines:  ComparisonEngines(),
		Expect:   "SSMJ produces nothing until the very end of a far longer run; ProgXe and ProgXe+ stream throughout",
	})
	// Fig. 13: total execution time vs σ against SSMJ.
	for _, d := range dists {
		figs = append(figs, Figure{
			ID:       "13" + d.letter,
			Caption:  fmt.Sprintf("Total execution time vs SSMJ; %s, d=4", d.dist),
			Kind:     TotalTime,
			Workload: Workload{N: scaled(1800), Dims: 4, Dist: d.dist, Seed: 14},
			Sweep:    sweepSigmas,
			Engines:  ComparisonEngines(),
			Expect:   "ProgXe total time competitive everywhere and far ahead on anti-correlated data",
		})
	}
	// S1: scheduler-layer scaling on the fine-partition region set (beyond
	// the paper's evaluation; §IV time-complexity remark made measurable).
	fineOpts := FinePartitionOptions()
	figs = append(figs, Figure{
		ID:        "S1",
		Caption:   "Scheduler setup+release at ≥10⁴ regions: incremental EL-Graph vs batch O(n²) builder (fine-partition)",
		Kind:      SchedSetup,
		Workload:  FinePartitionWorkload(),
		SchedOpts: &fineOpts,
		Expect:    "incremental graph construction + lazy release at least 5× faster than the batch builder",
	})
	// S2: region-pruning scaling on the same candidate set — the last O(n²)
	// look-ahead pass rewritten over the shared box index.
	figs = append(figs, Figure{
		ID:        "S2",
		Caption:   "Region-level domination pruning at ≥10⁴ candidates: box-index sweep vs O(n²) scan (fine-partition)",
		Kind:      PruneSetup,
		Workload:  FinePartitionWorkload(),
		SchedOpts: &fineOpts,
		Expect:    "box-index pruning at least 5× faster than the all-pairs scan",
	})
	// L1: incremental maintenance vs recompute on the Fig 11f cell — the
	// subscription path's economics (beyond the paper's evaluation).
	figs = append(figs, Figure{
		ID:       "L1",
		Caption:  "Single-tuple apply latency on a resident LiveSpace vs full re-run; anti-correlated, d=4, σ=0.1 (Fig 11f scale)",
		Kind:     LiveApply,
		Workload: Workload{N: scaled(1200), Dims: 4, Dist: datagen.AntiCorrelated, Sigma: 0.1, Seed: 12},
		Expect:   "median apply at least 10× faster than recomputing from scratch (non-cascading applies are far cheaper still)",
	})
	return figs
}

// FigureByID returns the figure with the given id.
func FigureByID(id string) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("bench: unknown figure %q", id)
}

// FigureIDs lists all figure ids in order.
func FigureIDs() []string {
	figs := Figures()
	ids := make([]string, len(figs))
	for i, f := range figs {
		ids[i] = f.ID
	}
	return ids
}

// RunFigure executes the figure and writes its series to w. For Progress
// figures it prints each engine's summary and downsampled curve; for
// TotalTime figures it prints one row per σ with a column per engine.
// It returns every individual run. repeats > 1 executes each cell that
// many times and keeps the fastest run — the noise-robust estimator the
// trajectory comparison gates on (single-shot few-ms totals swing far
// beyond any tolerance worth enforcing).
func RunFigure(f Figure, w io.Writer, series bool, repeats int) []RunResult {
	fmt.Fprintf(w, "# Figure %s — %s\n", f.ID, f.Caption)
	fmt.Fprintf(w, "# workload: %s (paper: N=500K)\n", f.Workload)
	fmt.Fprintf(w, "# paper expectation: %s\n", f.Expect)
	switch f.Kind {
	case TotalTime:
		return runTotalTime(f, w, repeats)
	case SchedSetup:
		return runSchedSetup(f, w, repeats)
	case PruneSetup:
		return runPruneSetup(f, w, repeats)
	case LiveApply:
		return runLiveApply(f, w, repeats)
	default:
		return runProgress(f, w, series, repeats)
	}
}

// runBest executes the cell repeats times and returns the fastest run.
func runBest(spec EngineSpec, wl Workload, p *smj.Problem, repeats int) RunResult {
	best := RunOn(spec, wl, p)
	for i := 1; i < repeats; i++ {
		if r := RunOn(spec, wl, p); r.Err == nil && (best.Err != nil || r.Total < best.Total) {
			best = r
		}
	}
	return best
}

func runProgress(f Figure, w io.Writer, series bool, repeats int) []RunResult {
	p, err := f.Workload.Problem()
	if err != nil {
		fmt.Fprintf(w, "! workload error: %v\n", err)
		return nil
	}
	var out []RunResult
	for _, spec := range f.Engines {
		r := runBest(spec, f.Workload, p, repeats)
		out = append(out, r)
		fmt.Fprintln(w, r.Summary())
		if series && r.Err == nil {
			for _, pt := range r.Downsample(16) {
				fmt.Fprintf(w, "  %s\t%.3fms\t%d\n", r.Engine, float64(pt.Elapsed.Microseconds())/1000, pt.Count)
			}
		}
	}
	return out
}

func runTotalTime(f Figure, w io.Writer, repeats int) []RunResult {
	var out []RunResult
	byEngine := map[string]map[float64]time.Duration{}
	for _, sigma := range f.Sweep {
		wl := f.Workload
		wl.Sigma = sigma
		p, err := wl.Problem()
		if err != nil {
			fmt.Fprintf(w, "! workload error at σ=%g: %v\n", sigma, err)
			continue
		}
		for _, spec := range f.Engines {
			r := runBest(spec, wl, p, repeats)
			out = append(out, r)
			if byEngine[spec.Name] == nil {
				byEngine[spec.Name] = map[float64]time.Duration{}
			}
			byEngine[spec.Name][sigma] = r.Total
		}
	}
	// Header.
	names := make([]string, 0, len(f.Engines))
	for _, e := range f.Engines {
		names = append(names, e.Name)
	}
	fmt.Fprintf(w, "%-10s", "σ")
	for _, n := range names {
		fmt.Fprintf(w, "%-22s", n)
	}
	fmt.Fprintln(w)
	sigmas := append([]float64(nil), f.Sweep...)
	sort.Float64s(sigmas)
	for _, sigma := range sigmas {
		fmt.Fprintf(w, "%-10g", sigma)
		for _, n := range names {
			fmt.Fprintf(w, "%-22v", byEngine[n][sigma].Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	return out
}
