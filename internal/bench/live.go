package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"slices"
	"time"

	"progxe/internal/core"
	"progxe/internal/mapping"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// Live-maintenance benchmark: the incremental path a subscription takes — a
// resident core.LiveSpace absorbing single-tuple inserts and deletes — against
// the alternative of recomputing the whole result set from scratch on every
// change. The recompute arm is the serial ProgXe engine on the same problem
// (best of repeats, like every other cell); the apply arms report the median
// per-change latency over a scripted churn of liveApplyChanges fresh inserts
// followed by deletes of the same tuples, which returns the space to its
// initial logical state so every repeat measures the same resident state.

// liveApplyChanges is the per-repeat churn size: enough samples for a stable
// median, small enough (≈10% of the Fig 11f-scale relation) that the space
// being measured stays the one the initial run built.
const liveApplyChanges = 128

// countSink counts the records a LiveSpace emits, so apply arms can report
// how much output the churn produced.
type countSink struct{ results, retracts int }

func (s *countSink) Result(smj.Result)  { s.results++ }
func (s *countSink) Retract(_, _ int64) { s.retracts++ }

// medianDuration returns the median of the samples (0 if none).
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := slices.Clone(ds)
	slices.Sort(sorted)
	return sorted[len(sorted)/2]
}

// runLiveApply executes the incremental-vs-recompute figure: one full engine
// run (the recompute arm), then repeats rounds of timed single-tuple applies
// on a resident LiveSpace (the insert and delete arms).
func runLiveApply(f Figure, w io.Writer, repeats int) []RunResult {
	p, err := f.Workload.Problem()
	if err != nil {
		fmt.Fprintf(w, "! workload error: %v\n", err)
		return nil
	}

	recompute := runBest(progxeSpec("ProgXe (recompute)", core.Options{}), f.Workload, p, repeats)
	if recompute.Err != nil {
		fmt.Fprintf(w, "! recompute error: %v\n", recompute.Err)
		return nil
	}
	fmt.Fprintln(w, recompute.Summary())

	buildStart := time.Now()
	ls, err := core.NewLiveSpace(p)
	if err != nil {
		fmt.Fprintf(w, "! live space error: %v\n", err)
		return []RunResult{recompute}
	}
	build := time.Since(buildStart)
	fmt.Fprintf(w, "# resident space built in %v (%d results)\n",
		build.Round(time.Microsecond), len(ls.Results()))

	// Scripted churn, identical across repeats: fresh left-side tuples whose
	// join keys are mostly sampled from the right side (so applies hit real
	// partners and some cascade) with a fresh-key minority (no-partner
	// applies). Each repeat inserts all of them, then deletes them again.
	rng := rand.New(rand.NewPCG(f.Workload.Seed, 0x11f))
	arity := len(p.Left.Schema.Attrs)
	churn := make([]relation.Tuple, liveApplyChanges)
	for i := range churn {
		vals := make([]float64, arity)
		for j := range vals {
			vals[j] = rng.Float64()
		}
		key := int64(rng.IntN(1 << 20))
		if rng.Float64() < 0.75 && p.Right.Len() > 0 {
			key = p.Right.Tuples[rng.IntN(p.Right.Len())].JoinKey
		}
		churn[i] = relation.Tuple{ID: int64(10_000_000 + i), Vals: vals, JoinKey: key}
	}

	sink := &countSink{}
	var insertLat, deleteLat []time.Duration
	for rep := 0; rep < repeats; rep++ {
		for _, t := range churn {
			start := time.Now()
			err := ls.ApplyInsert(mapping.Left, t, sink)
			insertLat = append(insertLat, time.Since(start))
			if err != nil {
				fmt.Fprintf(w, "! insert apply error: %v\n", err)
				return []RunResult{recompute}
			}
		}
		for _, t := range churn {
			start := time.Now()
			err := ls.ApplyDelete(mapping.Left, t.ID, sink)
			deleteLat = append(deleteLat, time.Since(start))
			if err != nil {
				fmt.Fprintf(w, "! delete apply error: %v\n", err)
				return []RunResult{recompute}
			}
		}
	}

	insertMed, deleteMed := medianDuration(insertLat), medianDuration(deleteLat)
	out := []RunResult{
		recompute,
		{Engine: "LiveSpace (insert apply)", Workload: f.Workload, Total: insertMed, Results: sink.results},
		{Engine: "LiveSpace (delete apply)", Workload: f.Workload, Total: deleteMed, Results: sink.retracts},
	}
	fmt.Fprintf(w, "%-26s median=%-12v samples=%d emitted=%d\n",
		"LiveSpace (insert apply)", insertMed.Round(time.Nanosecond), len(insertLat), sink.results)
	fmt.Fprintf(w, "%-26s median=%-12v samples=%d retracted=%d\n",
		"LiveSpace (delete apply)", deleteMed.Round(time.Nanosecond), len(deleteLat), sink.retracts)
	if insertMed > 0 && deleteMed > 0 {
		fmt.Fprintf(w, "# incremental speedup over recompute: insert %.0f×, delete %.0f×\n",
			float64(recompute.Total)/float64(insertMed),
			float64(recompute.Total)/float64(deleteMed))
	}
	return out
}
