package bench

import (
	"fmt"
	"time"

	"progxe/internal/core"
	"progxe/internal/obs"
	"progxe/internal/smj"
)

// ProgressPoint is one step of a cumulative results-over-time curve — the
// quantity plotted on the y-axis of Figs. 10–12.
type ProgressPoint struct {
	Elapsed time.Duration
	Count   int
}

// RunResult captures one engine execution over one workload.
type RunResult struct {
	Engine   string
	Workload Workload
	Workers  int // parallel region-processing workers (0 = serial)
	// Committers is the partitioned-commit fan-out (0 = commit on the
	// sequencer).
	Committers int
	// Speculate is the cross-round speculation depth (0 = every round
	// drains before its phase-1 precheck).
	Speculate int
	Total     time.Duration   // wall-clock to complete result set
	First     time.Duration   // time of the first emitted result (0 if none)
	Points    []ProgressPoint // cumulative curve, one entry per emission
	Results   int
	Stats     smj.Stats
	// Phases is the profiler's breakdown with serial-vs-parallel
	// attribution (ProgXe-family engines; empty for baselines).
	Phases obs.Report
	Err    error
}

// Run executes the engine on the workload's problem, timestamping every
// emission relative to the start of query processing.
func Run(spec EngineSpec, w Workload) RunResult {
	res := RunResult{Engine: spec.Name, Workload: w}
	p, err := w.Problem()
	if err != nil {
		res.Err = err
		return res
	}
	return RunOn(spec, w, p)
}

// RunOn is Run against a pre-built problem (so sweeps can share data).
// ProgXe-family runs carry the phase profiler (zero-alloc on the hot path;
// the overhead is gated against the unobserved run by progxe-bench
// -obs-gate), so every report ships first-party attribution.
func RunOn(spec EngineSpec, w Workload, p *smj.Problem) RunResult {
	return runOn(spec, w, p, true)
}

// RunOnUnobserved is RunOn without the profiler attached — the control arm
// of the observability overhead gate.
func RunOnUnobserved(spec EngineSpec, w Workload, p *smj.Problem) RunResult {
	return runOn(spec, w, p, false)
}

func runOn(spec EngineSpec, w Workload, p *smj.Problem, observe bool) RunResult {
	res := RunResult{Engine: spec.Name, Workload: w, Workers: spec.Workers, Committers: spec.Committers, Speculate: spec.Speculate}
	var prof *obs.Profiler
	var e smj.Engine
	if observe && spec.opts != nil {
		prof = obs.NewProfiler()
		o := *spec.opts
		o.Profiler = prof
		e = core.New(o)
	} else {
		e = spec.New()
	}
	start := time.Now()
	count := 0
	sink := smj.SinkFunc(func(smj.Result) {
		count++
		el := time.Since(start)
		if count == 1 {
			res.First = el
		}
		res.Points = append(res.Points, ProgressPoint{Elapsed: el, Count: count})
	})
	stats, err := e.Run(p, sink)
	res.Total = time.Since(start)
	res.Results = count
	res.Stats = stats
	res.Phases = prof.Report()
	res.Err = err
	return res
}

// CountAt returns the cumulative number of results emitted by time t.
func (r RunResult) CountAt(t time.Duration) int {
	n := 0
	for _, pt := range r.Points {
		if pt.Elapsed > t {
			break
		}
		n = pt.Count
	}
	return n
}

// FractionTime returns the time by which the given fraction (0..1] of the
// final results had been emitted, or -1 if never reached.
func (r RunResult) FractionTime(frac float64) time.Duration {
	if r.Results == 0 {
		return -1
	}
	target := int(frac * float64(r.Results))
	if target < 1 {
		target = 1
	}
	for _, pt := range r.Points {
		if pt.Count >= target {
			return pt.Elapsed
		}
	}
	return -1
}

// Downsample reduces the curve to at most n points, always keeping the first
// and last emission, for compact printing.
func (r RunResult) Downsample(n int) []ProgressPoint {
	pts := r.Points
	if len(pts) <= n || n < 2 {
		return pts
	}
	out := make([]ProgressPoint, 0, n)
	step := float64(len(pts)-1) / float64(n-1)
	prev := -1
	for i := 0; i < n; i++ {
		idx := int(float64(i) * step)
		if idx == prev {
			continue
		}
		prev = idx
		out = append(out, pts[idx])
	}
	if out[len(out)-1] != pts[len(pts)-1] {
		out = append(out, pts[len(pts)-1])
	}
	return out
}

// Summary renders a one-line digest: first/median/complete timings.
func (r RunResult) Summary() string {
	if r.Err != nil {
		return fmt.Sprintf("%-20s ERROR: %v", r.Engine, r.Err)
	}
	if r.Results == 0 {
		return fmt.Sprintf("%-20s no results (total %v)", r.Engine, r.Total.Round(time.Microsecond))
	}
	return fmt.Sprintf("%-20s first=%-10v 50%%=%-10v 90%%=%-10v 100%%=%-10v total=%-10v results=%d",
		r.Engine,
		r.First.Round(time.Microsecond),
		r.FractionTime(0.5).Round(time.Microsecond),
		r.FractionTime(0.9).Round(time.Microsecond),
		r.FractionTime(1.0).Round(time.Microsecond),
		r.Total.Round(time.Microsecond),
		r.Results)
}
