package bench

import (
	"bytes"
	"strings"
	"testing"
)

func mkReport(progxeMS, ssmjMS float64, workers int) *JSONReport {
	return &JSONReport{
		Scale: 1,
		Figures: []JSONFigure{{
			Figure: "13c",
			Runs: []JSONRun{
				{Engine: "ProgXe", N: 1800, Dims: 4, Dist: "anti-correlated", Sigma: 0.1, Workers: workers, TotalMS: progxeMS},
				{Engine: "SSMJ", N: 1800, Dims: 4, Dist: "anti-correlated", Sigma: 0.1, TotalMS: ssmjMS},
			},
		}},
	}
}

func TestCompareReportsNormalizesBySSMJ(t *testing.T) {
	// The current machine is 2× slower across the board: raw totals double
	// but the SSMJ-normalized ratio is unchanged, so nothing regresses.
	base := mkReport(40, 160, 0)
	cur := mkReport(80, 320, 0)
	vs := CompareReports(base, cur, 0.2)
	if len(vs) != 1 {
		t.Fatalf("verdicts = %d, want 1", len(vs))
	}
	if !vs[0].Normalized || vs[0].Regressed {
		t.Fatalf("uniformly slower machine flagged as regression: %+v", vs[0])
	}

	// A genuine ProgXe-only slowdown shows up through the control.
	cur = mkReport(80, 160, 0)
	vs = CompareReports(base, cur, 0.2)
	if len(vs) != 1 || !vs[0].Regressed {
		t.Fatalf("2× ProgXe regression not flagged: %+v", vs)
	}
	if len(Regressions(vs)) != 1 {
		t.Fatal("Regressions() must surface the failing verdict")
	}
	if s := vs[0].String(); !strings.Contains(s, "✗") || !strings.Contains(s, "13c") {
		t.Fatalf("verdict renders %q", s)
	}
}

func TestCompareReportsMatchesWorkerCounts(t *testing.T) {
	// A w=4 run has no serial counterpart in the baseline: skipped, not
	// compared against the serial cell.
	base := mkReport(40, 160, 0)
	cur := mkReport(25, 160, 4)
	if vs := CompareReports(base, cur, 0.2); len(vs) != 0 {
		t.Fatalf("worker-count mismatch compared anyway: %+v", vs)
	}
}

func TestCompareReportsSkipsMissingCells(t *testing.T) {
	base := mkReport(40, 160, 0)
	cur := mkReport(40, 160, 0)
	cur.Figures[0].Runs[0].N = 999 // different workload scale
	if vs := CompareReports(base, cur, 0.2); len(vs) != 0 {
		t.Fatalf("mismatched workloads compared anyway: %+v", vs)
	}
}

func TestCompareReportsRawFallback(t *testing.T) {
	// Without an SSMJ control the totals compare raw.
	base := mkReport(40, 160, 0)
	cur := mkReport(60, 160, 0)
	base.Figures[0].Runs = base.Figures[0].Runs[:1]
	vs := CompareReports(base, cur, 0.2)
	if len(vs) != 1 || vs[0].Normalized || !vs[0].Regressed {
		t.Fatalf("raw fallback verdicts: %+v", vs)
	}
}

func TestJSONReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := mkReport(40, 160, 4)
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.GoMaxProcs == 0 {
		t.Fatal("GoMaxProcs not recorded")
	}
	run := got.Figures[0].Runs[0]
	if run.Workers != 4 || run.Engine != "ProgXe" {
		t.Fatalf("round-trip run: %+v", run)
	}
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Fatal("broken report must error")
	}
}

func TestWithWorkersVariants(t *testing.T) {
	specs := ComparisonEngines()
	out := AddWorkerVariants(specs, 4)
	// ProgXe and ProgXe+ gain variants; SSMJ does not.
	if len(out) != len(specs)+2 {
		t.Fatalf("AddWorkerVariants produced %d specs, want %d", len(out), len(specs)+2)
	}
	v := out[len(specs)]
	if v.Name != "ProgXe (w=4)" || v.Workers != 4 {
		t.Fatalf("variant spec: %+v", v)
	}
	if v.New() == nil {
		t.Fatal("variant constructor broken")
	}
	if _, ok := specs[2].WithWorkers(4); ok {
		t.Fatal("SSMJ must not grow a worker variant")
	}
}
