package bench

import (
	"fmt"
	"io"
	"time"

	"progxe/internal/core"
	"progxe/internal/grid"
	"progxe/internal/smj"
)

// Region-pruning benchmark: the shared output-space box index's domination
// sweep (grid.DominatedRects) against the retained O(n²) all-pairs scan, on
// the fine-partition workload's candidate region enclosures. The look-ahead
// pairing runs once (core.PlanRects) and both pruners see the identical
// float rect set, so the measurement isolates the pruning pass from
// partitioning and tuple-level work.

// runPruneSetup executes the pruning comparison figure: each variant is
// timed over the identical rect set (best of repeats), and the kept/pruned
// split is reported through the run stats (Regions = candidates,
// RegionsPruned = dominated).
func runPruneSetup(f Figure, w io.Writer, repeats int) []RunResult {
	p, err := f.Workload.Problem()
	if err != nil {
		fmt.Fprintf(w, "! workload error: %v\n", err)
		return nil
	}
	opts := FinePartitionOptions()
	if f.SchedOpts != nil {
		opts = *f.SchedOpts
	}
	rects, err := core.PlanRects(p, opts)
	if err != nil {
		fmt.Fprintf(w, "! look-ahead error: %v\n", err)
		return nil
	}
	fmt.Fprintf(w, "# %d candidate regions\n", len(rects))

	variants := []struct {
		name string
		run  func() []bool
	}{
		{"Prune (box index)", func() []bool { return grid.DominatedRects(rects) }},
		{"Prune (O(n²) oracle)", func() []bool { return grid.DominatedRectsQuadratic(rects, 0) }},
	}
	var out []RunResult
	for _, v := range variants {
		time0 := func() (time.Duration, []bool) {
			start := time.Now()
			dominated := v.run()
			return time.Since(start), dominated
		}
		best, dominated := time0()
		for i := 1; i < repeats; i++ {
			if d, _ := time0(); d < best {
				best = d
			}
		}
		pruned := 0
		for _, d := range dominated {
			if d {
				pruned++
			}
		}
		out = append(out, RunResult{
			Engine:   v.name,
			Workload: f.Workload,
			Total:    best,
			Stats:    smj.Stats{Regions: len(rects), RegionsPruned: pruned},
		})
		fmt.Fprintf(w, "%-22s prune=%-12v candidates=%d pruned=%d\n",
			v.name, best.Round(time.Microsecond), len(rects), pruned)
	}
	if len(out) == 2 && out[0].Total > 0 {
		fmt.Fprintf(w, "# box-index speedup over O(n²) scan: %.2f×\n",
			float64(out[1].Total)/float64(out[0].Total))
	}
	return out
}
