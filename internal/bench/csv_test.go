package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func TestWriteSeriesCSV(t *testing.T) {
	runs := []RunResult{
		{Engine: "ProgXe", Results: 2, Points: []ProgressPoint{
			{Elapsed: 1500 * time.Microsecond, Count: 1},
			{Elapsed: 2 * time.Millisecond, Count: 2},
		}},
		{Engine: "broken", Err: errFake},
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, "11c", runs); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 { // header + 2 points; errored run skipped
		t.Fatalf("got %d records", len(records))
	}
	if records[1][0] != "11c" || records[1][1] != "ProgXe" || records[1][2] != "1.500" || records[1][3] != "1" {
		t.Fatalf("row = %v", records[1])
	}
}

func TestWriteTotalsCSV(t *testing.T) {
	runs := []RunResult{
		{Engine: "SSMJ", Workload: Workload{Sigma: 0.01}, Total: 250 * time.Millisecond, Results: 42},
	}
	var buf bytes.Buffer
	if err := WriteTotalsCSV(&buf, "13c", runs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "13c,SSMJ,0.01,250.000,42") {
		t.Fatalf("totals csv = %q", out)
	}
}
