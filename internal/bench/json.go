package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// JSONRun is one engine execution in the machine-readable report: the
// figures' headline quantities (total and first-result latency) plus the
// work counters that perf work tracks across PRs. Workers records the
// parallel region-processing fan-out the run used (0 = serial), so
// trajectory comparisons only ever match serial against serial and w=n
// against w=n.
type JSONRun struct {
	Engine  string  `json:"engine"`
	N       int     `json:"n"`
	Dims    int     `json:"dims"`
	Dist    string  `json:"dist"`
	Sigma   float64 `json:"sigma"`
	Workers int     `json:"workers,omitempty"`
	// Committers is the partitioned-commit fan-out the run used (0 = commit
	// on the sequencer); like Workers it is part of the run's identity for
	// trajectory comparisons.
	Committers int `json:"committers,omitempty"`
	// Speculate is the cross-round speculation depth the run used (0 =
	// every round drains before its phase-1 precheck); part of the run's
	// identity like Workers and Committers.
	Speculate int     `json:"speculate,omitempty"`
	TotalMS   float64 `json:"total_ms"`
	FirstMS   float64 `json:"first_ms"`
	// TT50MS/TT90MS are the progressiveness milestones: the time by which
	// 50% / 90% of the final result set had been emitted.
	TT50MS float64 `json:"tt50_ms,omitempty"`
	TT90MS float64 `json:"tt90_ms,omitempty"`
	// Phase attribution from the run's profiler (ProgXe-family engines):
	// sequencer wall time, aggregated worker time, and the fraction of
	// sequencer time spent in the serial commit+determine section.
	SeqMS            float64 `json:"seq_ms,omitempty"`
	WorkerMS         float64 `json:"worker_ms,omitempty"`
	CommitterMS      float64 `json:"committer_ms,omitempty"`
	SerialCommitFrac float64 `json:"serial_commit_frac,omitempty"`
	// CommitWaitMS is the sequencer time spent blocked on the committer
	// drain barrier — the stall speculative pipelining targets.
	CommitWaitMS float64 `json:"commit_wait_ms,omitempty"`
	// Speculation counters: rounds whose phase-1 scan was launched against
	// a stale snapshot, rounds whose stale verdicts were consumed (the
	// drain those rounds skipped), the delta re-checks revalidation paid,
	// and the stale-verdict hit rate (SpecHits / SpecRounds).
	SpecRounds      int     `json:"spec_rounds,omitempty"`
	SpecHits        int     `json:"spec_hits,omitempty"`
	SpecRevalChecks int     `json:"spec_reval_checks,omitempty"`
	SpecHitRate     float64 `json:"spec_hit_rate,omitempty"`
	Results         int     `json:"results"`
	DomComparisons  int     `json:"dom_comparisons"`
	JoinResults     int     `json:"join_results"`
	// Regions records the run's output-region count (live + pruned), the
	// scheduling load of the cell — trajectory comparisons can normalize
	// by it when workloads are re-scaled.
	Regions int `json:"regions,omitempty"`
	// SchedEdges records the EL-Graph size the scheduler managed.
	SchedEdges int    `json:"sched_edges,omitempty"`
	Error      string `json:"error,omitempty"`
	// Serve-path metrics, populated by the load harness (cmd/progxe-loadgen)
	// when the run was measured through the HTTP serve layer rather than by
	// driving the engine directly: client-observed time-to-first-result
	// quantiles, sustained completed-request throughput, the plan-cache hit
	// rate over the measured window, and the mean subscriber fan-out per
	// coalesced engine run.
	ServeTTFRP50MS float64 `json:"serve_ttfr_p50_ms,omitempty"`
	ServeTTFRP99MS float64 `json:"serve_ttfr_p99_ms,omitempty"`
	ThroughputRPS  float64 `json:"throughput_rps,omitempty"`
	CacheHitRate   float64 `json:"cache_hit_rate,omitempty"`
	CoalesceFanout float64 `json:"coalesce_fanout,omitempty"`
}

// JSONFigure groups the runs of one reproduced figure.
type JSONFigure struct {
	Figure  string    `json:"figure"`
	Caption string    `json:"caption"`
	Kind    string    `json:"kind"`
	Runs    []JSONRun `json:"runs"`
}

// JSONReport is the document progxe-bench -json emits: one entry per
// executed figure, carrying enough context (workload, scale, GOMAXPROCS)
// to compare BENCH_*.json files across revisions.
type JSONReport struct {
	Scale      float64      `json:"scale"`
	GoMaxProcs int          `json:"gomaxprocs,omitempty"`
	Figures    []JSONFigure `json:"figures"`
}

// AddFigure appends a figure's runs to the report.
func (r *JSONReport) AddFigure(f Figure, runs []RunResult) {
	jf := JSONFigure{Figure: f.ID, Caption: f.Caption, Kind: f.Kind.String()}
	for _, run := range runs {
		jr := JSONRun{
			Engine:         run.Engine,
			N:              run.Workload.N,
			Dims:           run.Workload.Dims,
			Dist:           run.Workload.Dist.String(),
			Sigma:          run.Workload.Sigma,
			Workers:        run.Workers,
			Committers:     run.Committers,
			Speculate:      run.Speculate,
			TotalMS:        float64(run.Total) / float64(time.Millisecond),
			FirstMS:        float64(run.First) / float64(time.Millisecond),
			Results:        run.Results,
			DomComparisons: run.Stats.DomComparisons,
			JoinResults:    run.Stats.JoinResults,
			Regions:        run.Stats.Regions,
			SchedEdges:     run.Stats.SchedEdges,
		}
		if tt := run.FractionTime(0.5); tt >= 0 {
			jr.TT50MS = float64(tt) / float64(time.Millisecond)
		}
		if tt := run.FractionTime(0.9); tt >= 0 {
			jr.TT90MS = float64(tt) / float64(time.Millisecond)
		}
		jr.SeqMS = run.Phases.SequencerMillis
		jr.WorkerMS = run.Phases.WorkerMillis
		jr.CommitterMS = run.Phases.CommitterMillis
		jr.SerialCommitFrac = run.Phases.SerialCommitFraction
		for _, ph := range run.Phases.Phases {
			if ph.Phase == "commit-wait" {
				jr.CommitWaitMS = ph.SequencerMillis
			}
		}
		jr.SpecRounds = run.Stats.SpecRounds
		jr.SpecHits = run.Stats.SpecHits
		jr.SpecRevalChecks = run.Stats.SpecRevalChecks
		if run.Stats.SpecRounds > 0 {
			jr.SpecHitRate = float64(run.Stats.SpecHits) / float64(run.Stats.SpecRounds)
		}
		if run.Err != nil {
			jr.Error = run.Err.Error()
		}
		jf.Runs = append(jf.Runs, jr)
	}
	r.Figures = append(r.Figures, jf)
}

// WriteJSON renders the report with stable indentation (diff-friendly for
// committed BENCH_*.json baselines).
func (r *JSONReport) WriteJSON(w io.Writer) error {
	r.Scale = Scale()
	r.GoMaxProcs = runtime.GOMAXPROCS(0)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a report previously written by WriteJSON (a committed
// BENCH_*.json baseline).
func ReadJSON(rd io.Reader) (*JSONReport, error) {
	var r JSONReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parsing report: %w", err)
	}
	return &r, nil
}
