package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"progxe/internal/datagen"
)

func sampleRuns(t *testing.T) (Figure, []RunResult) {
	t.Helper()
	f, err := FigureByID("11c")
	if err != nil {
		t.Fatal(err)
	}
	// Large enough to sit above the ProgXe/SSMJ crossover (≈ N=1200 on
	// anti-correlated σ=0.01), small enough to keep the test fast.
	f.Workload.N = 1600
	p, err := f.Workload.Problem()
	if err != nil {
		t.Fatal(err)
	}
	var runs []RunResult
	for _, spec := range f.Engines {
		runs = append(runs, RunOn(spec, f.Workload, p))
	}
	return f, runs
}

func TestPlot(t *testing.T) {
	_, runs := sampleRuns(t)
	var buf bytes.Buffer
	Plot(&buf, runs, 40, 10)
	out := buf.String()
	if !strings.Contains(out, "ProgXe") || !strings.Contains(out, "SSMJ") {
		t.Fatalf("plot legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("plot has no curve points:\n%s", out)
	}
	if len(strings.Split(out, "\n")) < 12 {
		t.Fatalf("plot too short:\n%s", out)
	}
}

func TestPlotDegenerate(t *testing.T) {
	var buf bytes.Buffer
	Plot(&buf, nil, 0, 0)
	if !strings.Contains(buf.String(), "nothing to plot") {
		t.Fatalf("empty plot output = %q", buf.String())
	}
	// Runs with errors and zero results are listed, not plotted.
	buf.Reset()
	Plot(&buf, []RunResult{
		{Engine: "broken", Err: errFake},
		{Engine: "empty", Total: time.Second, Results: 0},
		{Engine: "fine", Total: time.Second, Results: 2, Points: []ProgressPoint{
			{Elapsed: time.Millisecond, Count: 1}, {Elapsed: time.Second, Count: 2},
		}},
	}, 30, 8)
	out := buf.String()
	if !strings.Contains(out, "error") || !strings.Contains(out, "no results") {
		t.Fatalf("degenerate runs not annotated:\n%s", out)
	}
}

type fakeErr struct{}

func (fakeErr) Error() string { return "fake" }

var errFake = fakeErr{}

func TestCheckFigure(t *testing.T) {
	f, runs := sampleRuns(t)
	verdicts := CheckFigure(f, runs)
	if len(verdicts) == 0 {
		t.Fatal("11c must produce verdicts")
	}
	for _, v := range verdicts {
		if v.String() == "" {
			t.Fatal("verdict must render")
		}
		if !v.Holds {
			t.Errorf("expected claim to hold at this scale: %s", v)
		}
	}
}

func TestCheckFigureOrdering(t *testing.T) {
	f, err := FigureByID("10c")
	if err != nil {
		t.Fatal(err)
	}
	f.Workload.N = 1500
	p, err := f.Workload.Problem()
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock comparisons wobble when test packages run in parallel on
	// loaded machines; accept the claim if it holds in any of three
	// attempts (it holds deterministically on a quiet CPU).
	var lastFailed []CheckResult
	for attempt := 0; attempt < 3; attempt++ {
		var runs []RunResult
		for _, spec := range f.Engines {
			runs = append(runs, RunOn(spec, f.Workload, p))
		}
		verdicts := CheckFigure(f, runs)
		if len(verdicts) == 0 {
			t.Fatal("10c must produce verdicts")
		}
		lastFailed = nil
		for _, v := range verdicts {
			if !v.Holds {
				lastFailed = append(lastFailed, v)
			}
		}
		if len(lastFailed) == 0 {
			return
		}
	}
	for _, v := range lastFailed {
		t.Errorf("10c claim failed in all attempts: %s", v)
	}
}

func TestCheckDetectsViolation(t *testing.T) {
	f, err := FigureByID("11c")
	if err != nil {
		t.Fatal(err)
	}
	// Fabricate runs where SSMJ wins: the check must fail.
	runs := []RunResult{
		{Engine: "ProgXe", Workload: f.Workload, First: time.Second, Total: 2 * time.Second, Results: 10,
			Points: []ProgressPoint{{Elapsed: time.Second, Count: 10}}},
		{Engine: "SSMJ", Workload: f.Workload, First: time.Millisecond, Total: time.Second, Results: 10,
			Points: []ProgressPoint{{Elapsed: time.Millisecond, Count: 10}}},
	}
	verdicts := CheckFigure(f, runs)
	anyFailed := false
	for _, v := range verdicts {
		if !v.Holds {
			anyFailed = true
		}
	}
	if !anyFailed {
		t.Fatal("fabricated inversion must fail a check")
	}
	_ = datagen.Independent
}
