package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteSeriesCSV writes the runs' progress curves as tidy CSV — one row per
// emission: figure, engine, elapsed_ms, count. External plotting tools can
// regenerate the paper's figures directly from this format.
func WriteSeriesCSV(w io.Writer, figID string, runs []RunResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "engine", "elapsed_ms", "count"}); err != nil {
		return fmt.Errorf("bench: csv header: %w", err)
	}
	for _, r := range runs {
		if r.Err != nil {
			continue
		}
		for _, pt := range r.Points {
			rec := []string{
				figID,
				r.Engine,
				strconv.FormatFloat(float64(pt.Elapsed.Microseconds())/1000, 'f', 3, 64),
				strconv.Itoa(pt.Count),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("bench: csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTotalsCSV writes total-time sweep results as CSV — one row per
// (engine, σ) cell: figure, engine, sigma, total_ms, results.
func WriteTotalsCSV(w io.Writer, figID string, runs []RunResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "engine", "sigma", "total_ms", "results"}); err != nil {
		return fmt.Errorf("bench: csv header: %w", err)
	}
	for _, r := range runs {
		if r.Err != nil {
			continue
		}
		rec := []string{
			figID,
			r.Engine,
			strconv.FormatFloat(r.Workload.Sigma, 'g', -1, 64),
			strconv.FormatFloat(float64(r.Total.Microseconds())/1000, 'f', 3, 64),
			strconv.Itoa(r.Results),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
