package bench

import (
	"os"
	"testing"
)

// TestCommittedBaselinesCompareClean pins the trajectory contract on the
// committed reports themselves: BENCH_8.json (this revision, measured on
// the same machine as its predecessor) must compare against BENCH_7.json
// without regressions at the CI tolerance, and the comparison must
// actually cover ProgXe cells (a silently empty comparison would make the
// CI gate vacuous).
func TestCommittedBaselinesCompareClean(t *testing.T) {
	open := func(p string) *JSONReport {
		f, err := os.Open(p)
		if err != nil {
			t.Skipf("committed baseline unavailable: %v", err)
		}
		defer f.Close()
		r, err := ReadJSON(f)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		return r
	}
	base := open("../../BENCH_7.json")
	cur := open("../../BENCH_8.json")
	vs := CompareReports(base, cur, 0.2)
	if len(vs) < 20 {
		t.Fatalf("only %d comparable cells between committed baselines; the CI gate would be vacuous", len(vs))
	}
	normalized := 0
	for _, v := range vs {
		if v.Normalized {
			normalized++
		}
	}
	if normalized == 0 {
		t.Fatal("no SSMJ-normalized cells; control-run indexing is broken")
	}
	if regs := Regressions(vs); len(regs) != 0 {
		for _, v := range regs {
			t.Error(v)
		}
		t.Fatalf("%d committed trajectory cells regressed", len(regs))
	}
}
