package bench

import (
	"fmt"
	"time"

	"progxe/internal/core"
	"progxe/internal/obs"
	"progxe/internal/smj"
)

// ObsOverhead measures the observability tax on one figure's workload: the
// first ProgXe-family engine of the figure is run with observability fully
// enabled (profiler with span recording, trace recorder, emission timeline)
// and fully disabled, interleaved so ambient load hits both arms equally,
// keeping the best total of each arm over repeats rounds. The returned
// millisecond totals back the progxe-bench -obs-gate check.
func ObsOverhead(figID string, repeats int) (onMS, offMS float64, err error) {
	f, err := FigureByID(figID)
	if err != nil {
		return 0, 0, err
	}
	var spec EngineSpec
	for _, s := range f.Engines {
		if s.opts != nil {
			spec = s
			break
		}
	}
	if spec.opts == nil {
		return 0, 0, fmt.Errorf("bench: figure %s has no ProgXe-family engine to gate", figID)
	}
	p, err := f.Workload.Problem()
	if err != nil {
		return 0, 0, err
	}
	if repeats < 1 {
		repeats = 1
	}

	// Warm-up round outside the measurement, so neither arm pays the
	// first-touch cost.
	RunOnUnobserved(spec, f.Workload, p)

	var bestOff, bestOn time.Duration
	for i := 0; i < repeats; i++ {
		off := RunOnUnobserved(spec, f.Workload, p)
		if off.Err != nil {
			return 0, 0, off.Err
		}
		on := runFullyObserved(spec, f.Workload, p)
		if on.Err != nil {
			return 0, 0, on.Err
		}
		if i == 0 || off.Total < bestOff {
			bestOff = off.Total
		}
		if i == 0 || on.Total < bestOn {
			bestOn = on.Total
		}
	}
	return float64(bestOn) / float64(time.Millisecond),
		float64(bestOff) / float64(time.Millisecond), nil
}

// runFullyObserved runs the spec with every observability surface on — the
// heaviest configuration a serve request can ask for.
func runFullyObserved(spec EngineSpec, w Workload, p *smj.Problem) RunResult {
	res := RunResult{Engine: spec.Name, Workload: w, Workers: spec.Workers}
	prof := obs.NewProfiler()
	prof.EnableSpans()
	rec := core.NewTraceRecorder(prof.Epoch())
	o := *spec.opts
	o.Profiler = prof
	o.Trace = rec.Observe
	e := core.New(o)

	start := time.Now()
	tl := obs.NewTimeline(start)
	count := 0
	sink := smj.SinkFunc(func(smj.Result) {
		tl.Observe()
		count++
		el := time.Since(start)
		if count == 1 {
			res.First = el
		}
		res.Points = append(res.Points, ProgressPoint{Elapsed: el, Count: count})
	})
	stats, err := e.Run(p, sink)
	res.Total = time.Since(start)
	res.Results = count
	res.Stats = stats
	res.Phases = prof.Report()
	res.Err = err
	return res
}
