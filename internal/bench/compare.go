package bench

import (
	"fmt"
	"strings"
)

// Trajectory comparison: each perf PR regenerates BENCH_<n>.json and CI
// compares it against the committed predecessor, failing on ProgXe total-
// time regressions. Raw wall-clock is not comparable across machines (the
// committed baseline and the CI runner differ), so wherever a figure cell
// carries an SSMJ run the comparison normalizes ProgXe totals by the SSMJ
// total of the same cell — SSMJ shares the join/scan substrate, making it a
// machine-speed control — and only falls back to raw totals when no control
// exists in both reports.

// Verdict is one cell-level outcome of a report comparison. A cell is
// flagged as regressed only when the normalized ratio AND the raw
// wall-clock ratio both exceed the tolerance: raw alone diverges across
// machines, and the normalized ratio alone is noisy when the control run
// is tiny — a genuine ProgXe slowdown moves both.
type Verdict struct {
	Figure     string
	Engine     string
	Cell       string  // workload cell (σ, n, d, dist, workers)
	Baseline   float64 // normalized (or raw) baseline total
	Current    float64 // normalized (or raw) current total
	Ratio      float64 // current / baseline (normalized when available)
	RawRatio   float64 // current / baseline raw wall-clock
	Normalized bool    // Ratio is SSMJ-relative
	Regressed  bool
}

// String renders the verdict as a report line.
func (v Verdict) String() string {
	mark := "✓"
	if v.Regressed {
		mark = "✗"
	}
	unit := "ms"
	if v.Normalized {
		unit = "×SSMJ"
	}
	return fmt.Sprintf("%s Fig %s %s [%s]: %.3f → %.3f %s (%.2f×, raw %.2f×)",
		mark, v.Figure, v.Engine, v.Cell, v.Baseline, v.Current, unit, v.Ratio, v.RawRatio)
}

// compareFloorMS is the raw-total floor below which a cell is excluded
// from regression gating: the figure runner measures each cell once, and a
// single-shot wall-clock under ~10ms is dominated by timer and scheduler
// noise at any tolerance worth enforcing. Scale the workloads up
// (PROGXE_BENCH_SCALE) to bring more cells above the floor. A cell is
// skipped only when BOTH sides sit under the floor — a tiny baseline that
// balloons past it still gets compared.
const compareFloorMS = 10.0

// runKey identifies one comparable run across reports.
type runKey struct {
	figure     string
	engine     string
	n          int
	dims       int
	dist       string
	sigma      float64
	workers    int
	committers int
	speculate  int
}

// cellKey identifies a workload cell (for control lookup) ignoring engine.
type cellKey struct {
	figure string
	n      int
	dims   int
	dist   string
	sigma  float64
}

func indexRuns(r *JSONReport) (byRun map[runKey]JSONRun, control map[cellKey]float64) {
	byRun = map[runKey]JSONRun{}
	control = map[cellKey]float64{}
	for _, f := range r.Figures {
		for _, run := range f.Runs {
			if run.Error != "" {
				continue
			}
			k := runKey{f.Figure, run.Engine, run.N, run.Dims, run.Dist, run.Sigma, run.Workers, run.Committers, run.Speculate}
			if _, dup := byRun[k]; !dup {
				byRun[k] = run
			}
			if run.Engine == "SSMJ" && run.TotalMS > 0 {
				control[cellKey{f.Figure, run.N, run.Dims, run.Dist, run.Sigma}] = run.TotalMS
			}
		}
	}
	return byRun, control
}

// CompareReports checks every ProgXe-family run present in both reports
// (same figure, workload, worker and committer count), flagging cells whose
// total time regressed by more than maxRegress (0.2 = 20%). Cells missing from
// either report are skipped: a changed scale or figure set compares
// nothing rather than comparing apples to oranges.
func CompareReports(baseline, current *JSONReport, maxRegress float64) []Verdict {
	baseRuns, baseCtl := indexRuns(baseline)
	_, curCtl := indexRuns(current)

	var out []Verdict
	for _, f := range current.Figures {
		for _, run := range f.Runs {
			if !strings.HasPrefix(run.Engine, "ProgXe") || run.Error != "" || run.TotalMS <= 0 {
				continue
			}
			k := runKey{f.Figure, run.Engine, run.N, run.Dims, run.Dist, run.Sigma, run.Workers, run.Committers, run.Speculate}
			base, ok := baseRuns[k]
			if !ok || base.TotalMS <= 0 {
				continue
			}
			if base.TotalMS < compareFloorMS && run.TotalMS < compareFloorMS {
				continue
			}
			ck := cellKey{f.Figure, run.N, run.Dims, run.Dist, run.Sigma}
			baseTotal, curTotal := base.TotalMS, run.TotalMS
			normalized := false
			if bc, okB := baseCtl[ck]; okB {
				if cc, okC := curCtl[ck]; okC {
					baseTotal /= bc
					curTotal /= cc
					normalized = true
				}
			}
			v := Verdict{
				Figure:     f.Figure,
				Engine:     run.Engine,
				Cell:       cellLabel(run),
				Baseline:   baseTotal,
				Current:    curTotal,
				Ratio:      curTotal / baseTotal,
				RawRatio:   run.TotalMS / base.TotalMS,
				Normalized: normalized,
			}
			v.Regressed = v.Ratio > 1+maxRegress && v.RawRatio > 1+maxRegress
			out = append(out, v)
		}
	}
	return out
}

// cellLabel renders a run's workload cell, including the committer count
// only when the run used partitioned commit and the speculation depth only
// when the run pipelined rounds.
func cellLabel(run JSONRun) string {
	label := fmt.Sprintf("%s d=%d n=%d σ=%g w=%d", run.Dist, run.Dims, run.N, run.Sigma, run.Workers)
	if run.Committers > 0 {
		label += fmt.Sprintf(" c=%d", run.Committers)
	}
	if run.Speculate > 0 {
		label += fmt.Sprintf(" s=%d", run.Speculate)
	}
	return label
}

// Regressions filters a comparison down to the failing verdicts.
func Regressions(vs []Verdict) []Verdict {
	var out []Verdict
	for _, v := range vs {
		if v.Regressed {
			out = append(out, v)
		}
	}
	return out
}
