package bench

import (
	"fmt"
	"time"
)

// CheckResult is one verdict of a figure's qualitative shape check.
type CheckResult struct {
	Figure string
	Claim  string
	Holds  bool
	Detail string
}

// String renders the verdict as a ✓/✗ line.
func (c CheckResult) String() string {
	mark := "✓"
	if !c.Holds {
		mark = "✗"
	}
	return fmt.Sprintf("%s Fig %s: %s — %s", mark, c.Figure, c.Claim, c.Detail)
}

// CheckFigure evaluates the paper's qualitative claims against the measured
// runs of one figure. Small workloads sit below some crossovers the paper
// observes at N = 500K; the checks encode the claims that are expected to
// hold at laptop scale (EXPERIMENTS.md discusses the scale-dependent ones).
func CheckFigure(f Figure, runs []RunResult) []CheckResult {
	byName := map[string]RunResult{}
	for _, r := range runs {
		if _, dup := byName[r.Engine]; !dup {
			byName[r.Engine] = r
		}
	}
	var out []CheckResult
	switch {
	case f.ID == "10b" || f.ID == "10c":
		// The paper claims the ordering benefit on independent and
		// anti-correlated data; on correlated data (10a) it reports the
		// variants as identical, so no ordering check applies there.
		ordered, o1 := byName["ProgXe"]
		random, o2 := byName["ProgXe (No-Order)"]
		if o1 && o2 && ordered.Results > 0 {
			// Ordering must not delay the first result and must be strictly
			// ahead on the anti-correlated workload where the paper's gap
			// is largest.
			tol := ordered.Total / 10
			holds := ordered.First <= random.First+tol
			if f.ID == "10c" {
				holds = ordered.First < random.First &&
					ordered.CountAt(random.First) > 0
			}
			out = append(out, CheckResult{
				Figure: f.ID,
				Claim:  "ProgOrder emits no later than random ordering",
				Holds:  holds,
				Detail: fmt.Sprintf("first: %v vs %v", ordered.First.Round(time.Microsecond), random.First.Round(time.Microsecond)),
			})
		}
	case f.ID == "11c" || f.ID == "11f" || f.ID == "12b":
		px, o1 := byName["ProgXe"]
		ssmj, o2 := byName["SSMJ"]
		if o1 && o2 {
			out = append(out, CheckResult{
				Figure: f.ID,
				Claim:  "ProgXe streams before SSMJ's first batch (anti-correlated)",
				Holds:  px.First < ssmj.First && px.CountAt(ssmj.First) > 0,
				Detail: fmt.Sprintf("first: %v vs %v; ProgXe had %d results at SSMJ's first", px.First.Round(time.Millisecond), ssmj.First.Round(time.Millisecond), px.CountAt(ssmj.First)),
			})
			out = append(out, CheckResult{
				Figure: f.ID,
				Claim:  "ProgXe completes before SSMJ (anti-correlated)",
				Holds:  px.Total < ssmj.Total,
				Detail: fmt.Sprintf("total: %v vs %v", px.Total.Round(time.Millisecond), ssmj.Total.Round(time.Millisecond)),
			})
		}
	case f.ID == "L1":
		recompute, o1 := byName["ProgXe (recompute)"]
		ins, o2 := byName["LiveSpace (insert apply)"]
		del, o3 := byName["LiveSpace (delete apply)"]
		if o1 && o2 && o3 && ins.Total > 0 && del.Total > 0 {
			insX := float64(recompute.Total) / float64(ins.Total)
			delX := float64(recompute.Total) / float64(del.Total)
			out = append(out, CheckResult{
				Figure: f.ID,
				Claim:  "median single-tuple apply ≥10× faster than recompute",
				Holds:  insX >= 10 && delX >= 10,
				Detail: fmt.Sprintf("recompute %v vs insert %v (%.0f×), delete %v (%.0f×)",
					recompute.Total.Round(time.Microsecond), ins.Total.Round(time.Microsecond), insX,
					del.Total.Round(time.Microsecond), delX),
			})
		}
	case f.Kind == TotalTime && (f.ID == "13c" || f.ID == "10f"):
		// At the highest selectivity the lead engine must beat the last
		// column engine on anti-correlated data.
		var lead, tail RunResult
		haveLead, haveTail := false, false
		for _, r := range runs {
			if r.Workload.Sigma != 0.1 {
				continue
			}
			switch r.Engine {
			case "ProgXe":
				lead, haveLead = r, true
			case "SSMJ", "ProgXe (No-Order)":
				tail, haveTail = r, true
			}
		}
		if haveLead && haveTail {
			out = append(out, CheckResult{
				Figure: f.ID,
				Claim:  fmt.Sprintf("ProgXe total ≤ %s at σ=0.1 (anti-correlated)", tail.Engine),
				Holds:  lead.Total <= tail.Total,
				Detail: fmt.Sprintf("%v vs %v", lead.Total.Round(time.Millisecond), tail.Total.Round(time.Millisecond)),
			})
		}
	}
	// Universal check: every engine agrees on progressive totals — engines
	// on the same problem must produce consistent result counts (SSMJ's
	// faithful batch-1 may add a few false positives; allow ≤ 25%).
	base := -1
	consistent := true
	detail := ""
	for _, r := range runs {
		if r.Err != nil || f.Kind == TotalTime {
			continue
		}
		if base == -1 {
			base = r.Results
			continue
		}
		lo, hi := base*3/4, base*5/4+1
		if r.Results < lo || r.Results > hi {
			consistent = false
			detail = fmt.Sprintf("%s produced %d vs base %d", r.Engine, r.Results, base)
		}
	}
	if base >= 0 && f.Kind == Progress {
		if detail == "" {
			detail = fmt.Sprintf("base count %d", base)
		}
		out = append(out, CheckResult{
			Figure: f.ID,
			Claim:  "engines agree on the result set size",
			Holds:  consistent,
			Detail: detail,
		})
	}
	return out
}
