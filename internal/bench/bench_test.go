package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"progxe/internal/datagen"
)

func TestFiguresRegistry(t *testing.T) {
	figs := Figures()
	if len(figs) != 20 {
		t.Fatalf("figure count = %d, want 20 (10a-f, 11a-f, 12a-b, 13a-c, S1, S2, L1)", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.ID] {
			t.Fatalf("duplicate figure id %s", f.ID)
		}
		seen[f.ID] = true
		if f.Caption == "" || f.Expect == "" {
			t.Fatalf("figure %s incomplete", f.ID)
		}
		if len(f.Engines) == 0 && f.Kind != SchedSetup && f.Kind != PruneSetup && f.Kind != LiveApply {
			t.Fatalf("figure %s has no engines", f.ID)
		}
		if f.Kind == TotalTime && len(f.Sweep) == 0 {
			t.Fatalf("total-time figure %s without sweep", f.ID)
		}
		got, err := FigureByID(f.ID)
		if err != nil || got.ID != f.ID {
			t.Fatalf("FigureByID(%s): %v", f.ID, err)
		}
	}
	if _, err := FigureByID("99z"); err == nil {
		t.Fatal("unknown figure must error")
	}
	if len(FigureIDs()) != len(figs) {
		t.Fatal("FigureIDs length mismatch")
	}
}

func TestWorkloadProblem(t *testing.T) {
	w := Workload{N: 100, Dims: 3, Dist: datagen.Independent, Sigma: 0.1, Seed: 1}
	p, err := w.Problem()
	if err != nil {
		t.Fatal(err)
	}
	if p.Left.Len() != 100 || p.Maps.Dims() != 3 {
		t.Fatalf("problem shape wrong: N=%d d=%d", p.Left.Len(), p.Maps.Dims())
	}
	if w.String() == "" {
		t.Fatal("workload must render")
	}
}

func TestRunRecordsProgress(t *testing.T) {
	w := Workload{N: 400, Dims: 3, Dist: datagen.AntiCorrelated, Sigma: 0.05, Seed: 2}
	r := Run(ProgXeEngines()[0], w)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Results == 0 || len(r.Points) != r.Results {
		t.Fatalf("progress curve: %d points for %d results", len(r.Points), r.Results)
	}
	// Curve is monotone in both time and count.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Elapsed < r.Points[i-1].Elapsed || r.Points[i].Count != r.Points[i-1].Count+1 {
			t.Fatalf("non-monotone curve at %d: %+v -> %+v", i, r.Points[i-1], r.Points[i])
		}
	}
	if r.CountAt(r.Total) != r.Results {
		t.Fatalf("CountAt(total) = %d, want %d", r.CountAt(r.Total), r.Results)
	}
	if r.CountAt(0) != 0 {
		t.Fatal("CountAt(0) must be 0")
	}
	if ft := r.FractionTime(1.0); ft <= 0 || ft > r.Total {
		t.Fatalf("FractionTime(1.0) = %v", ft)
	}
	ds := r.Downsample(10)
	if len(ds) > 11 || ds[len(ds)-1] != r.Points[len(r.Points)-1] {
		t.Fatalf("downsample wrong: %d points", len(ds))
	}
	if !strings.Contains(r.Summary(), "ProgXe") {
		t.Fatalf("summary = %q", r.Summary())
	}
}

// TestOrderingProducesEarlierResults asserts Fig. 10's qualitative claim on
// a fixed seed: by the time the random-order variant has produced nothing,
// the ProgOrder variant has already emitted a meaningful share of results.
func TestOrderingProducesEarlierResults(t *testing.T) {
	w := Workload{N: 2000, Dims: 4, Dist: datagen.AntiCorrelated, Sigma: 0.01, Seed: 10}
	p, err := w.Problem()
	if err != nil {
		t.Fatal(err)
	}
	engines := ProgXeEngines()
	ordered := RunOn(engines[0], w, p) // ProgXe
	random := RunOn(engines[2], w, p)  // ProgXe (No-Order)
	if ordered.Err != nil || random.Err != nil {
		t.Fatalf("errs: %v, %v", ordered.Err, random.Err)
	}
	if ordered.Results != random.Results {
		t.Fatalf("result counts differ: %d vs %d", ordered.Results, random.Results)
	}
	// At the moment the random variant emitted its first result, the
	// ordered variant must already be ahead.
	atRandomFirst := ordered.CountAt(random.First)
	if atRandomFirst < 1 {
		t.Fatalf("ordered variant had %d results when random emitted its first (ordered first at %v, random at %v)",
			atRandomFirst, ordered.First, random.First)
	}
	if ordered.First > random.First {
		t.Fatalf("ordered first result (%v) later than random (%v)", ordered.First, random.First)
	}
}

// TestAntiCorrelatedBeatsSSMJ asserts Fig. 11c/13c's shape: on
// anti-correlated data ProgXe's first result arrives well before SSMJ's, and
// its total time is smaller.
func TestAntiCorrelatedBeatsSSMJ(t *testing.T) {
	w := Workload{N: 2500, Dims: 4, Dist: datagen.AntiCorrelated, Sigma: 0.01, Seed: 11}
	p, err := w.Problem()
	if err != nil {
		t.Fatal(err)
	}
	engines := ComparisonEngines()
	progxe := RunOn(engines[0], w, p)
	ssmj := RunOn(engines[2], w, p)
	if progxe.Err != nil || ssmj.Err != nil {
		t.Fatalf("errs: %v %v", progxe.Err, ssmj.Err)
	}
	if progxe.First >= ssmj.First {
		t.Fatalf("ProgXe first (%v) must precede SSMJ first (%v)", progxe.First, ssmj.First)
	}
	if progxe.Total >= ssmj.Total {
		t.Fatalf("ProgXe total (%v) must beat SSMJ total (%v)", progxe.Total, ssmj.Total)
	}
}

func TestRunFigureSmoke(t *testing.T) {
	t.Setenv("PROGXE_BENCH_SCALE", "0.1")
	var buf bytes.Buffer
	f, err := FigureByID("10c")
	if err != nil {
		t.Fatal(err)
	}
	runs := RunFigure(f, &buf, true, 1)
	if len(runs) != len(f.Engines) {
		t.Fatalf("got %d runs", len(runs))
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 10c") || !strings.Contains(out, "ProgXe") {
		t.Fatalf("output missing content:\n%s", out)
	}

	f13, err := FigureByID("13a")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	runs = RunFigure(f13, &buf, false, 1)
	if len(runs) != len(f13.Engines)*len(f13.Sweep) {
		t.Fatalf("sweep runs = %d", len(runs))
	}
	if !strings.Contains(buf.String(), "σ") {
		t.Fatal("total-time table missing header")
	}
}

// TestRunLiveApplySmoke pins the incremental-vs-recompute figure's shape: the
// three arms run, the apply medians are positive, and at even the smoke scale
// a resident apply beats recomputing from scratch.
func TestRunLiveApplySmoke(t *testing.T) {
	t.Setenv("PROGXE_BENCH_SCALE", "0.1")
	f, err := FigureByID("L1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	runs := RunFigure(f, &buf, false, 1)
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want recompute + insert + delete:\n%s", len(runs), buf.String())
	}
	byName := map[string]RunResult{}
	for _, r := range runs {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Engine, r.Err)
		}
		byName[r.Engine] = r
	}
	recompute := byName["ProgXe (recompute)"]
	for _, arm := range []string{"LiveSpace (insert apply)", "LiveSpace (delete apply)"} {
		r, ok := byName[arm]
		if !ok || r.Total <= 0 {
			t.Fatalf("arm %q missing or unmeasured:\n%s", arm, buf.String())
		}
		if r.Total >= recompute.Total {
			t.Fatalf("%s median %v not below recompute %v", arm, r.Total, recompute.Total)
		}
	}
	if !strings.Contains(buf.String(), "incremental speedup over recompute") {
		t.Fatalf("speedup line missing:\n%s", buf.String())
	}
}

func TestScaleEnv(t *testing.T) {
	t.Setenv("PROGXE_BENCH_SCALE", "")
	if Scale() != 1 {
		t.Fatal("default scale must be 1")
	}
	t.Setenv("PROGXE_BENCH_SCALE", "2.5")
	if Scale() != 2.5 {
		t.Fatal("scale must parse")
	}
	t.Setenv("PROGXE_BENCH_SCALE", "bogus")
	if Scale() != 1 {
		t.Fatal("bad scale must fall back to 1")
	}
	t.Setenv("PROGXE_BENCH_SCALE", "-1")
	if Scale() != 1 {
		t.Fatal("negative scale must fall back to 1")
	}
	if scaled(100) != 100*1 {
		t.Fatal("scaled wrong")
	}
	t.Setenv("PROGXE_BENCH_SCALE", "0.0001")
	if scaled(100) != 16 {
		t.Fatal("scaled floor must apply")
	}
	_ = time.Second
}
