package bench

import (
	"fmt"
	"io"
	"time"

	"progxe/internal/core"
	"progxe/internal/core/sched"
	"progxe/internal/smj"
)

// Scheduler-layer benchmark: the incremental EL-Graph (coordinate-box index
// + lazy rank refresh) against the retained batch O(n²) builder, on the
// fine-partition workload's region set. Both schedulers are driven through
// an identical full complete sequence with a trivial ranker, so the
// measurement isolates graph construction and edge release from tuple-level
// work and from the benefit model's progCount cost.

// schedRanker is the pure stand-in rank function for scheduler benchmarks:
// deterministic, collision-rich (forcing id tie-breaks), and free of engine
// state so both schedulers see identical values.
func schedRanker(id int) float64 {
	x := uint64(id)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	x ^= x >> 29
	return float64(x % (1 << 20))
}

// driveScheduler constructs a scheduler via mk and processes every region
// to completion, returning the wall-clock of setup+release and the
// scheduler's counters.
func driveScheduler(mk func() sched.Scheduler) (time.Duration, sched.Counters) {
	start := time.Now()
	s := mk()
	for {
		id, _, ok := s.Next()
		if !ok {
			break
		}
		s.Complete(id)
	}
	return time.Since(start), s.Counters()
}

// runSchedSetup executes the scheduler comparison figure: the workload's
// look-ahead builds the region boxes once, then each scheduler variant is
// timed over the identical complete sequence (best of repeats).
func runSchedSetup(f Figure, w io.Writer, repeats int) []RunResult {
	p, err := f.Workload.Problem()
	if err != nil {
		fmt.Fprintf(w, "! workload error: %v\n", err)
		return nil
	}
	opts := FinePartitionOptions()
	if f.SchedOpts != nil {
		opts = *f.SchedOpts
	}
	boxes, dims, err := core.PlanBoxes(p, opts)
	if err != nil {
		fmt.Fprintf(w, "! look-ahead error: %v\n", err)
		return nil
	}
	fmt.Fprintf(w, "# %d regions over output grid %v\n", len(boxes), dims)

	variants := []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"Scheduler (incremental)", func() sched.Scheduler { return sched.NewProgressive(boxes, dims, schedRanker, 0) }},
		{"Scheduler (batch)", func() sched.Scheduler { return sched.NewBatch(boxes, dims, schedRanker, 0) }},
	}
	var out []RunResult
	for _, v := range variants {
		best, counters := driveScheduler(v.mk)
		for i := 1; i < repeats; i++ {
			if d, _ := driveScheduler(v.mk); d < best {
				best = d
			}
		}
		out = append(out, RunResult{
			Engine:   v.name,
			Workload: f.Workload,
			Total:    best,
			Stats: smj.Stats{
				Regions:            counters.Regions,
				SchedEdges:         counters.Edges,
				SchedRankRefreshes: counters.RankRefreshes,
				FenwickUpdates:     counters.FenwickUpdates,
			},
		})
		fmt.Fprintf(w, "%-26s setup+release=%-12v regions=%d edges=%d refreshes=%d\n",
			v.name, best.Round(time.Microsecond), counters.Regions, counters.Edges, counters.RankRefreshes)
	}
	if len(out) == 2 && out[0].Total > 0 {
		fmt.Fprintf(w, "# incremental speedup over batch: %.2f×\n",
			float64(out[1].Total)/float64(out[0].Total))
	}
	return out
}
