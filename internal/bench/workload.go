// Package bench is the experiment harness for the paper's performance study
// (§VI): workload construction, progressive-output recording, per-figure
// experiment specifications, and series rendering. Every figure of the
// evaluation (Figs. 10–13) has an entry in Figures; cmd/progxe-bench and the
// repository-level benchmarks drive them.
package bench

import (
	"fmt"
	"os"
	"strconv"

	"progxe/internal/baseline"
	"progxe/internal/core"
	"progxe/internal/datagen"
	"progxe/internal/mapping"
	"progxe/internal/preference"
	"progxe/internal/smj"
)

// Workload is one experiment configuration: the paper's two-source workload
// with |R| = |T| = N, d skyline dimensions, a data distribution, and join
// selectivity σ. The mapping is per-dimension addition, as in §VI-A.
type Workload struct {
	N     int
	Dims  int
	Dist  datagen.Distribution
	Sigma float64
	Seed  uint64
}

// String renders the workload the way the figures caption it.
func (w Workload) String() string {
	return fmt.Sprintf("%s d=%d N=%d σ=%g", w.Dist, w.Dims, w.N, w.Sigma)
}

// Problem materializes the workload into a runnable SkyMapJoin problem.
func (w Workload) Problem() (*smj.Problem, error) {
	r, t, err := datagen.GeneratePair(datagen.Spec{
		N:            w.N,
		Dims:         w.Dims,
		Distribution: w.Dist,
		Selectivity:  w.Sigma,
		Seed:         w.Seed,
	})
	if err != nil {
		return nil, err
	}
	funcs := make([]mapping.Func, w.Dims)
	for j := 0; j < w.Dims; j++ {
		funcs[j] = mapping.Func{
			Name: fmt.Sprintf("x%d", j),
			Expr: mapping.Sum(mapping.A(mapping.Left, j, ""), mapping.A(mapping.Right, j, "")),
		}
	}
	maps, err := mapping.NewSet(funcs...)
	if err != nil {
		return nil, err
	}
	return &smj.Problem{Left: r, Right: t, Maps: maps, Pref: preference.AllLowest(w.Dims)}, nil
}

// EngineSpec names an engine and constructs fresh instances of it, so every
// run starts from clean state. ProgXe-family specs carry their core options
// so worker-count variants can be derived (see WithWorkers); Workers
// records the parallelism the spec runs with, for benchmark reports.
type EngineSpec struct {
	Name       string
	New        func() smj.Engine
	Workers    int
	Committers int
	Speculate  int
	opts       *core.Options // nil for baselines without a parallel path
}

// progxeSpec builds a ProgXe-family spec from core options.
func progxeSpec(name string, opts core.Options) EngineSpec {
	o := opts
	return EngineSpec{
		Name:       name,
		New:        func() smj.Engine { return core.New(o) },
		Workers:    o.Workers,
		Committers: o.Committers,
		Speculate:  o.SpeculateRounds,
		opts:       &o,
	}
}

// WithWorkers derives a parallel variant of a ProgXe-family spec running
// with n workers, reporting false for engines without a parallel path.
func (s EngineSpec) WithWorkers(n int) (EngineSpec, bool) {
	if s.opts == nil || n <= 0 {
		return s, false
	}
	o := *s.opts
	o.Workers = n
	return progxeSpec(fmt.Sprintf("%s (w=%d)", s.Name, n), o), true
}

// AddWorkerVariants appends a w=n variant for every ProgXe-family spec in
// the list, so one report carries serial and parallel runs side by side.
func AddWorkerVariants(specs []EngineSpec, n int) []EngineSpec {
	out := append([]EngineSpec(nil), specs...)
	for _, s := range specs {
		if v, ok := s.WithWorkers(n); ok {
			out = append(out, v)
		}
	}
	return out
}

// WithCommitters derives a partitioned-commit variant of a ProgXe-family
// spec running with w workers and c committers, reporting false for engines
// without a parallel path (the commit stage only partitions on parallel
// runs, so both counts must be positive).
func (s EngineSpec) WithCommitters(w, c int) (EngineSpec, bool) {
	if s.opts == nil || w <= 0 || c <= 0 {
		return s, false
	}
	o := *s.opts
	o.Workers, o.Committers = w, c
	return progxeSpec(fmt.Sprintf("%s (w=%d c=%d)", s.Name, w, c), o), true
}

// AddCommitterVariants appends a (w=w c=c) variant for every serial
// ProgXe-family spec in the list. Applied after AddWorkerVariants it skips
// the derived (w=n) variants — every base engine gains exactly one
// partitioned-commit arm, so summaries can pair serial, parallel, and
// commit-parallel runs of the same engine.
func AddCommitterVariants(specs []EngineSpec, w, c int) []EngineSpec {
	out := append([]EngineSpec(nil), specs...)
	for _, s := range specs {
		if s.Workers != 0 || s.Committers != 0 {
			continue
		}
		if v, ok := s.WithCommitters(w, c); ok {
			out = append(out, v)
		}
	}
	return out
}

// WithSpeculate derives a speculative-pipelining variant of a ProgXe-family
// spec running with w workers, c committers and speculation depth n,
// reporting false for engines without a parallel path (speculation only
// takes effect on partitioned-commit runs with a spare precheck lane, so
// w must be ≥ 2 and the other counts positive).
func (s EngineSpec) WithSpeculate(w, c, n int) (EngineSpec, bool) {
	if s.opts == nil || w < 2 || c <= 0 || n <= 0 {
		return s, false
	}
	o := *s.opts
	o.Workers, o.Committers, o.SpeculateRounds = w, c, n
	return progxeSpec(fmt.Sprintf("%s (w=%d c=%d s=%d)", s.Name, w, c, n), o), true
}

// AddSpeculateVariants appends a (w=w c=c s=n) variant for every serial
// ProgXe-family spec in the list. Like AddCommitterVariants it skips already
// derived variants, so applied after the other two every base engine gains
// exactly one speculative arm and summaries can pair the partitioned-commit
// and pipelined runs of the same engine.
func AddSpeculateVariants(specs []EngineSpec, w, c, n int) []EngineSpec {
	out := append([]EngineSpec(nil), specs...)
	for _, s := range specs {
		if s.Workers != 0 || s.Committers != 0 || s.Speculate != 0 {
			continue
		}
		if v, ok := s.WithSpeculate(w, c, n); ok {
			out = append(out, v)
		}
	}
	return out
}

// ProgXeEngines returns the four framework variants compared in §VI-B
// (Fig. 10): ProgXe, ProgXe+, and both with random ordering.
func ProgXeEngines() []EngineSpec {
	return []EngineSpec{
		progxeSpec("ProgXe", core.Options{}),
		progxeSpec("ProgXe+", core.Options{PushThrough: true}),
		progxeSpec("ProgXe (No-Order)", core.Options{Ordering: core.OrderRandom, Seed: 1}),
		progxeSpec("ProgXe+ (No-Order)", core.Options{Ordering: core.OrderRandom, PushThrough: true, Seed: 1}),
	}
}

// ComparisonEngines returns the engines of the state-of-the-art comparison
// (§VI-C, Figs. 11–13): ProgXe, ProgXe+ and SSMJ. SSMJ doubles as the
// machine-speed control for cross-revision trajectory comparisons (see
// CompareReports).
func ComparisonEngines() []EngineSpec {
	return []EngineSpec{
		progxeSpec("ProgXe", core.Options{}),
		progxeSpec("ProgXe+", core.Options{PushThrough: true}),
		{Name: "SSMJ", New: func() smj.Engine { return &baseline.SSMJ{} }},
	}
}

// BlockingEngines returns every blocking baseline (used by the total-time
// comparisons that §VI-C delegates to the technical report).
func BlockingEngines() []EngineSpec {
	return []EngineSpec{
		{Name: "JF-SL", New: func() smj.Engine { return &baseline.JFSL{} }},
		{Name: "JF-SL+", New: func() smj.Engine { return &baseline.JFSL{PushThrough: true} }},
		{Name: "SAJ", New: func() smj.Engine { return &baseline.SAJ{} }},
	}
}

// FinePartitionWorkload is the scheduler-stress configuration: kd-partition
// fanout driven far past the auto-sized partition budgets so the region
// count reaches the 10⁴–10⁵ range where the batch O(n²) EL-Graph builder
// stops scaling. Anti-correlated data keeps most partition pairs populated
// (near-complete pairing) while spreading the regions along the
// anti-diagonal shell, the regime the look-ahead machinery targets.
func FinePartitionWorkload() Workload {
	return Workload{N: scaled(16000), Dims: 3, Dist: datagen.AntiCorrelated, Sigma: 0.001, Seed: 41}
}

// FinePartitionOptions configures the engine's look-ahead for the
// fine-partition workload: kd median splits with a 5³ = 125 partition
// budget per source, pairing into ≥10⁴ regions.
func FinePartitionOptions() core.Options {
	return core.Options{Partitioning: core.PartitionKD, InputCells: 5}
}

// Scale returns the global workload scale factor from PROGXE_BENCH_SCALE
// (default 1.0). The paper runs N = 500K per source on a dedicated
// workstation; the figure defaults here are laptop-sized, and the scale knob
// lets users grow them toward the paper's sizes.
func Scale() float64 {
	s := os.Getenv("PROGXE_BENCH_SCALE")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 1
	}
	return v
}

// scaled applies the global scale factor to a base cardinality.
func scaled(n int) int {
	v := int(float64(n) * Scale())
	if v < 16 {
		v = 16
	}
	return v
}
