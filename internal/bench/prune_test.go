package bench

import (
	"io"
	"strings"
	"testing"

	"progxe/internal/core"
	"progxe/internal/datagen"
	"progxe/internal/grid"
)

// TestPruneSetupFigureSmoke drives the S2 harness end to end on a shrunken
// fine-partition problem: both pruning variants must see the same candidate
// set and mark the identical dominated subset over real (engine-built)
// region enclosures — the randomized property test's complement with
// production geometry.
func TestPruneSetupFigureSmoke(t *testing.T) {
	wl := Workload{N: 2000, Dims: 3, Dist: datagen.AntiCorrelated, Sigma: 0.001, Seed: 41}
	p, err := wl.Problem()
	if err != nil {
		t.Fatal(err)
	}
	rects, err := core.PlanRects(p, core.Options{Partitioning: core.PartitionKD, InputCells: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) < 200 {
		t.Fatalf("fixture produced only %d candidates", len(rects))
	}
	idx := grid.DominatedRects(rects)
	orc := grid.DominatedRectsQuadratic(rects, 0)
	for i := range idx {
		if idx[i] != orc[i] {
			t.Fatalf("verdict %d diverges on engine-built rects: index %v, oracle %v", i, idx[i], orc[i])
		}
	}

	f := Figure{ID: "S2", Kind: PruneSetup, Workload: wl,
		SchedOpts: &core.Options{Partitioning: core.PartitionKD, InputCells: 3}}
	runs := runPruneSetup(f, io.Discard, 1)
	if len(runs) != 2 ||
		runs[0].Stats.Regions != runs[1].Stats.Regions ||
		runs[0].Stats.RegionsPruned != runs[1].Stats.RegionsPruned {
		t.Fatalf("S2 harness runs disagree: %+v", runs)
	}
	if runs[0].Stats.Regions != len(rects) {
		t.Fatalf("harness candidates = %d, want %d", runs[0].Stats.Regions, len(rects))
	}
}

// TestWriteSummarySpeedupTable pins the markdown digest: serial runs paired
// with their "(w=N)" variants by figure and workload, speedup = serial over
// parallel.
func TestWriteSummarySpeedupTable(t *testing.T) {
	r := &JSONReport{Scale: 1, GoMaxProcs: 4, Figures: []JSONFigure{{
		Figure: "11f",
		Runs: []JSONRun{
			{Engine: "ProgXe", N: 100, Dims: 4, Dist: "anti-correlated", Sigma: 0.1, TotalMS: 80},
			{Engine: "ProgXe (w=4)", N: 100, Dims: 4, Dist: "anti-correlated", Sigma: 0.1, Workers: 4, TotalMS: 40},
			{Engine: "SSMJ", N: 100, Dims: 4, Dist: "anti-correlated", Sigma: 0.1, TotalMS: 200},
		},
	}}}
	var sb strings.Builder
	WriteSummary(&sb, r)
	out := sb.String()
	for _, want := range []string{"w=4 vs serial", "| 11f | ProgXe |", "2.00×", "median 2.00×"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "SSMJ") {
		t.Fatalf("summary includes an unpaired engine:\n%s", out)
	}

	var empty strings.Builder
	WriteSummary(&empty, &JSONReport{Scale: 1, GoMaxProcs: 1})
	if !strings.Contains(empty.String(), "No serial/parallel run pairs") {
		t.Fatalf("empty report digest = %q", empty.String())
	}
}

// TestWriteSummaryAttribution pins the serial-vs-parallel attribution
// section: parallel runs carrying profiler numbers publish sequencer time,
// worker time, and the serial-commit share.
func TestWriteSummaryAttribution(t *testing.T) {
	r := &JSONReport{Scale: 1, GoMaxProcs: 4, Figures: []JSONFigure{{
		Figure: "11f",
		Runs: []JSONRun{
			{Engine: "ProgXe", N: 100, Dims: 4, Dist: "anti-correlated", Sigma: 0.1,
				TotalMS: 80, TT50MS: 30, TT90MS: 60},
			{Engine: "ProgXe (w=4)", N: 100, Dims: 4, Dist: "anti-correlated", Sigma: 0.1,
				Workers: 4, TotalMS: 40, TT50MS: 15, TT90MS: 30,
				SeqMS: 35, WorkerMS: 90, SerialCommitFrac: 0.55},
		},
	}}}
	var sb strings.Builder
	WriteSummary(&sb, r)
	out := sb.String()
	for _, want := range []string{
		"TT-50% ms (s→p)", "30.0→15.0", "60.0→30.0",
		"Serial-vs-parallel attribution (w=4, profiler)",
		"| 35.0 | 90.0 | 55.0% |",
		"median 55.0%",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestObsOverheadGate runs the overhead gate's measurement once on the
// smallest real figure pairing; it only asserts the harness produces sane
// numbers, not the 2% bound (that is CI's bench-smoke job, at fixed scale).
func TestObsOverheadGate(t *testing.T) {
	on, off, err := ObsOverhead("11f", 1)
	if err != nil {
		t.Fatal(err)
	}
	if on <= 0 || off <= 0 {
		t.Fatalf("gate totals on=%.2fms off=%.2fms", on, off)
	}
	if _, _, err := ObsOverhead("nope", 1); err == nil {
		t.Fatal("unknown figure must error")
	}
}
