package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
)

// WriteSummary renders a markdown digest of a JSON report: the run
// environment and, when the report carries "(w=N)" worker variants alongside
// their serial runs, the measured multicore speedup per cell — the table the
// CI multicore job publishes into its step summary. Cells are matched by
// figure, workload, and base engine name; the serial run is the
// denominator, so a value above 1.00× is a parallel win.
func WriteSummary(w io.Writer, r *JSONReport) {
	scale, procs := r.Scale, r.GoMaxProcs
	if scale == 0 {
		scale = Scale()
	}
	if procs == 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(w, "## progxe-bench results (scale %.2g, GOMAXPROCS %d)\n\n", scale, procs)

	type cell struct {
		figure, engine, workload   string
		serialMS, parallelMS       float64
		serialTT50, parallelTT50   float64
		serialTT90, parallelTT90   float64
		seqMS, workerMS, commitFrc float64 // parallel run's phase attribution
		workers                    int
	}
	byKey := map[string]*cell{}
	var order []string
	for _, f := range r.Figures {
		for _, run := range f.Runs {
			if run.Error != "" || run.TotalMS <= 0 {
				continue
			}
			base, isParallel := strings.CutSuffix(run.Engine, fmt.Sprintf(" (w=%d)", run.Workers))
			if !isParallel && run.Workers != 0 {
				continue // a worker variant under an unexpected name
			}
			key := fmt.Sprintf("%s|%s|%s|%d|%g", f.Figure, base, run.Dist, run.N, run.Sigma)
			c := byKey[key]
			if c == nil {
				c = &cell{figure: f.Figure, engine: base,
					workload: fmt.Sprintf("%s d=%d n=%d σ=%g", run.Dist, run.Dims, run.N, run.Sigma)}
				byKey[key] = c
				order = append(order, key)
			}
			if isParallel {
				c.parallelMS, c.workers = run.TotalMS, run.Workers
				c.parallelTT50, c.parallelTT90 = run.TT50MS, run.TT90MS
				c.seqMS, c.workerMS, c.commitFrc = run.SeqMS, run.WorkerMS, run.SerialCommitFrac
			} else {
				c.serialMS = run.TotalMS
				c.serialTT50, c.serialTT90 = run.TT50MS, run.TT90MS
			}
		}
	}

	var rows []*cell
	workers := 0
	for _, key := range order {
		c := byKey[key]
		if c.serialMS > 0 && c.parallelMS > 0 {
			rows = append(rows, c)
			workers = c.workers
		}
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "No serial/parallel run pairs to compare (run with -workers N for the speedup table).")
		return
	}

	fmt.Fprintf(w, "### Multicore speedup (w=%d vs serial)\n\n", workers)
	fmt.Fprintln(w, "| Figure | Engine | Workload | serial ms | parallel ms | speedup | TT-50% ms (s→p) | TT-90% ms (s→p) |")
	fmt.Fprintln(w, "|---|---|---|---:|---:|---:|---:|---:|")
	speedups := make([]float64, 0, len(rows))
	for _, c := range rows {
		s := c.serialMS / c.parallelMS
		speedups = append(speedups, s)
		fmt.Fprintf(w, "| %s | %s | %s | %.1f | %.1f | %.2f× | %.1f→%.1f | %.1f→%.1f |\n",
			c.figure, c.engine, c.workload, c.serialMS, c.parallelMS, s,
			c.serialTT50, c.parallelTT50, c.serialTT90, c.parallelTT90)
	}
	sort.Float64s(speedups)
	median := speedups[len(speedups)/2]
	if len(speedups)%2 == 0 {
		median = (speedups[len(speedups)/2-1] + speedups[len(speedups)/2]) / 2
	}
	fmt.Fprintf(w, "\nmedian %.2f×, best %.2f×, worst %.2f× over %d cells\n",
		median, speedups[len(speedups)-1], speedups[0], len(speedups))

	// Serial-vs-parallel attribution: the profiler's first-party numbers
	// for the parallel runs, answering how much of the wall clock is the
	// sequencer's serial commit+determine section (the parallel-commit
	// frontier) versus work the pool already offloads.
	var att []*cell
	for _, c := range rows {
		if c.seqMS > 0 {
			att = append(att, c)
		}
	}
	if len(att) == 0 {
		return
	}
	fmt.Fprintf(w, "\n### Serial-vs-parallel attribution (w=%d, profiler)\n\n", workers)
	fmt.Fprintln(w, "| Figure | Engine | Workload | sequencer ms | worker ms | serial commit share |")
	fmt.Fprintln(w, "|---|---|---|---:|---:|---:|")
	fracs := make([]float64, 0, len(att))
	for _, c := range att {
		fracs = append(fracs, c.commitFrc)
		fmt.Fprintf(w, "| %s | %s | %s | %.1f | %.1f | %.1f%% |\n",
			c.figure, c.engine, c.workload, c.seqMS, c.workerMS, c.commitFrc*100)
	}
	sort.Float64s(fracs)
	fmt.Fprintf(w, "\nserial commit+determine share of sequencer time: median %.1f%% over %d cells\n",
		100*fracs[len(fracs)/2], len(fracs))
}
