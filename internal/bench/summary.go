package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
)

// WriteSummary renders a markdown digest of a JSON report: the run
// environment and, when the report carries "(w=N)", "(w=N c=M)" and
// "(w=N c=M s=K)" variants alongside their serial runs, the measured
// multicore speedup per cell — the tables the CI multicore job publishes
// into its step summary. Cells are matched by figure, workload, and base
// engine name, with the variant dimension (workers, committers, speculation
// depth) parsed back off the engine name; the serial run is the denominator
// of the speedup table, the plain-parallel run the denominator of the
// commit-parallel table, and the commit-parallel run the denominator of the
// pipelined-rounds table, so a value above 1.00× is a win for the
// respective stage.
func WriteSummary(w io.Writer, r *JSONReport) {
	scale, procs := r.Scale, r.GoMaxProcs
	if scale == 0 {
		scale = Scale()
	}
	if procs == 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(w, "## progxe-bench results (scale %.2g, GOMAXPROCS %d)\n\n", scale, procs)

	// One arm of a cell: the measured quantities of a serial, parallel,
	// commit-parallel, or pipelined (speculative) run.
	type arm struct {
		ms, tt50, tt90         float64
		seqMS, workerMS        float64
		committerMS, commitFrc float64
		commitWaitMS           float64
		specHitRate            float64
		workers, committers    int
		speculate, valid       int
	}
	type cell struct {
		figure, engine, workload       string
		serial, parallel, commit, spec arm
	}
	byKey := map[string]*cell{}
	var order []string
	for _, f := range r.Figures {
		for _, run := range f.Runs {
			if run.Error != "" || run.TotalMS <= 0 {
				continue
			}
			// Strip the variant suffix the derived specs append; the
			// committer and speculation dimensions distinguish the
			// commit-parallel and pipelined arms from the plain-parallel one.
			var base string
			var isParallel, isCommit, isSpec bool
			switch {
			case run.Speculate > 0:
				base, isSpec = strings.CutSuffix(run.Engine, fmt.Sprintf(" (w=%d c=%d s=%d)", run.Workers, run.Committers, run.Speculate))
				if !isSpec {
					continue // a speculate variant under an unexpected name
				}
			case run.Committers > 0:
				base, isCommit = strings.CutSuffix(run.Engine, fmt.Sprintf(" (w=%d c=%d)", run.Workers, run.Committers))
				if !isCommit {
					continue // a committer variant under an unexpected name
				}
			case run.Workers > 0:
				base, isParallel = strings.CutSuffix(run.Engine, fmt.Sprintf(" (w=%d)", run.Workers))
				if !isParallel {
					continue // a worker variant under an unexpected name
				}
			default:
				base = run.Engine
			}
			key := fmt.Sprintf("%s|%s|%s|%d|%g", f.Figure, base, run.Dist, run.N, run.Sigma)
			c := byKey[key]
			if c == nil {
				c = &cell{figure: f.Figure, engine: base,
					workload: fmt.Sprintf("%s d=%d n=%d σ=%g", run.Dist, run.Dims, run.N, run.Sigma)}
				byKey[key] = c
				order = append(order, key)
			}
			a := &c.serial
			if isSpec {
				a = &c.spec
			} else if isCommit {
				a = &c.commit
			} else if isParallel {
				a = &c.parallel
			}
			a.ms, a.tt50, a.tt90 = run.TotalMS, run.TT50MS, run.TT90MS
			a.seqMS, a.workerMS = run.SeqMS, run.WorkerMS
			a.committerMS, a.commitFrc = run.CommitterMS, run.SerialCommitFrac
			a.commitWaitMS, a.specHitRate = run.CommitWaitMS, run.SpecHitRate
			a.workers, a.committers = run.Workers, run.Committers
			a.speculate, a.valid = run.Speculate, 1
		}
	}

	var rows []*cell
	workers := 0
	for _, key := range order {
		c := byKey[key]
		if c.serial.valid == 1 && c.parallel.valid == 1 {
			rows = append(rows, c)
			workers = c.parallel.workers
		}
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "No serial/parallel run pairs to compare (run with -workers N for the speedup table).")
		return
	}

	fmt.Fprintf(w, "### Multicore speedup (w=%d vs serial)\n\n", workers)
	fmt.Fprintln(w, "| Figure | Engine | Workload | serial ms | parallel ms | speedup | TT-50% ms (s→p) | TT-90% ms (s→p) |")
	fmt.Fprintln(w, "|---|---|---|---:|---:|---:|---:|---:|")
	speedups := make([]float64, 0, len(rows))
	for _, c := range rows {
		s := c.serial.ms / c.parallel.ms
		speedups = append(speedups, s)
		fmt.Fprintf(w, "| %s | %s | %s | %.1f | %.1f | %.2f× | %.1f→%.1f | %.1f→%.1f |\n",
			c.figure, c.engine, c.workload, c.serial.ms, c.parallel.ms, s,
			c.serial.tt50, c.parallel.tt50, c.serial.tt90, c.parallel.tt90)
	}
	sort.Float64s(speedups)
	median := speedups[len(speedups)/2]
	if len(speedups)%2 == 0 {
		median = (speedups[len(speedups)/2-1] + speedups[len(speedups)/2]) / 2
	}
	fmt.Fprintf(w, "\nmedian %.2f×, best %.2f×, worst %.2f× over %d cells\n",
		median, speedups[len(speedups)-1], speedups[0], len(speedups))

	// Serial-vs-parallel attribution: the profiler's first-party numbers
	// for the parallel runs, answering how much of the wall clock is the
	// sequencer's serial commit+determine section (the parallel-commit
	// frontier) versus work the pool already offloads.
	var att []*cell
	for _, c := range rows {
		if c.parallel.seqMS > 0 {
			att = append(att, c)
		}
	}
	if len(att) > 0 {
		fmt.Fprintf(w, "\n### Serial-vs-parallel attribution (w=%d, profiler)\n\n", workers)
		fmt.Fprintln(w, "| Figure | Engine | Workload | sequencer ms | worker ms | serial commit share |")
		fmt.Fprintln(w, "|---|---|---|---:|---:|---:|")
		fracs := make([]float64, 0, len(att))
		for _, c := range att {
			fracs = append(fracs, c.parallel.commitFrc)
			fmt.Fprintf(w, "| %s | %s | %s | %.1f | %.1f | %.1f%% |\n",
				c.figure, c.engine, c.workload, c.parallel.seqMS, c.parallel.workerMS, c.parallel.commitFrc*100)
		}
		sort.Float64s(fracs)
		fmt.Fprintf(w, "\nserial commit+determine share of sequencer time: median %.1f%% over %d cells\n",
			100*fracs[len(fracs)/2], len(fracs))
	}

	// Commit-parallel comparison: the (w=N c=M) arm against the plain
	// (w=N) arm of the same cell — how much total time and serial commit
	// share the partitioned commit stage removes from the sequencer.
	var com []*cell
	committers := 0
	for _, key := range order {
		c := byKey[key]
		if c.parallel.valid == 1 && c.commit.valid == 1 {
			com = append(com, c)
			committers = c.commit.committers
		}
	}
	if len(com) == 0 {
		return
	}
	fmt.Fprintf(w, "\n### Partitioned commit (w=%d c=%d vs w=%d)\n\n", com[0].commit.workers, committers, workers)
	fmt.Fprintln(w, "| Figure | Engine | Workload | parallel ms | commit-parallel ms | speedup | committer ms | serial commit share (p→c) |")
	fmt.Fprintln(w, "|---|---|---|---:|---:|---:|---:|---:|")
	gains := make([]float64, 0, len(com))
	shares := make([]float64, 0, len(com))
	for _, c := range com {
		s := c.parallel.ms / c.commit.ms
		gains = append(gains, s)
		shares = append(shares, c.commit.commitFrc)
		fmt.Fprintf(w, "| %s | %s | %s | %.1f | %.1f | %.2f× | %.1f | %.1f%%→%.1f%% |\n",
			c.figure, c.engine, c.workload, c.parallel.ms, c.commit.ms, s,
			c.commit.committerMS, c.parallel.commitFrc*100, c.commit.commitFrc*100)
	}
	sort.Float64s(gains)
	sort.Float64s(shares)
	fmt.Fprintf(w, "\ncommit-parallel vs parallel: median %.2f×; serial commit share after partitioning: median %.1f%% over %d cells\n",
		gains[len(gains)/2], 100*shares[len(shares)/2], len(com))

	// Pipelined rounds: the (w=N c=M s=K) arm against the (w=N c=M) arm of
	// the same cell — how much total time and drain-barrier stall
	// (commit-wait) speculative cross-round pipelining removes, and how
	// often the stale verdicts actually got used.
	var pip []*cell
	depth := 0
	for _, key := range order {
		c := byKey[key]
		if c.commit.valid == 1 && c.spec.valid == 1 {
			pip = append(pip, c)
			depth = c.spec.speculate
		}
	}
	if len(pip) == 0 {
		return
	}
	fmt.Fprintf(w, "\n### Pipelined rounds (w=%d c=%d s=%d vs s=0)\n\n", pip[0].spec.workers, pip[0].spec.committers, depth)
	fmt.Fprintln(w, "| Figure | Engine | Workload | commit ms | pipelined ms | speedup | commit-wait ms (off→on) | spec hit rate |")
	fmt.Fprintln(w, "|---|---|---|---:|---:|---:|---:|---:|")
	pgains := make([]float64, 0, len(pip))
	waits := make([]float64, 0, len(pip))
	for _, c := range pip {
		s := c.commit.ms / c.spec.ms
		pgains = append(pgains, s)
		if c.commit.commitWaitMS > 0 {
			waits = append(waits, 1-c.spec.commitWaitMS/c.commit.commitWaitMS)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %.1f | %.1f | %.2f× | %.1f→%.1f | %.0f%% |\n",
			c.figure, c.engine, c.workload, c.commit.ms, c.spec.ms, s,
			c.commit.commitWaitMS, c.spec.commitWaitMS, c.spec.specHitRate*100)
	}
	sort.Float64s(pgains)
	fmt.Fprintf(w, "\npipelined vs commit-parallel: median %.2f×", pgains[len(pgains)/2])
	if len(waits) > 0 {
		sort.Float64s(waits)
		fmt.Fprintf(w, "; commit-wait stall cut: median %.0f%%", 100*waits[len(waits)/2])
	}
	fmt.Fprintf(w, " over %d cells\n", len(pip))
}
