package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// plotSymbols identify engines on the ASCII canvas, in run order.
var plotSymbols = []byte{'*', '+', 'o', 'x', '#', '@'}

// Plot renders the runs' cumulative results-over-time curves as an ASCII
// chart — a terminal rendition of the paper's progressiveness figures.
// Runs with errors or no results are listed below the chart.
func Plot(w io.Writer, runs []RunResult, width, height int) {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	var maxT time.Duration
	maxC := 0
	for _, r := range runs {
		if r.Total > maxT {
			maxT = r.Total
		}
		if r.Results > maxC {
			maxC = r.Results
		}
	}
	if maxT == 0 || maxC == 0 {
		fmt.Fprintln(w, "(nothing to plot)")
		return
	}

	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	for ri, r := range runs {
		if r.Err != nil || r.Results == 0 {
			continue
		}
		sym := plotSymbols[ri%len(plotSymbols)]
		// Sample the curve at every column from its first emission onward.
		for col := 0; col < width; col++ {
			t := time.Duration(float64(maxT) * float64(col) / float64(width-1))
			c := r.CountAt(t)
			if c == 0 {
				continue
			}
			row := height - 1 - int(float64(c)/float64(maxC)*float64(height-1))
			if row < 0 {
				row = 0
			}
			if canvas[row][col] == ' ' {
				canvas[row][col] = sym
			}
		}
	}

	fmt.Fprintf(w, "results (max %d)\n", maxC)
	for _, line := range canvas {
		fmt.Fprintf(w, "|%s\n", string(line))
	}
	fmt.Fprintf(w, "+%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, " 0%stime (max %v)\n", strings.Repeat(" ", max(1, width-24)), maxT.Round(time.Millisecond))
	for ri, r := range runs {
		sym := string(plotSymbols[ri%len(plotSymbols)])
		switch {
		case r.Err != nil:
			fmt.Fprintf(w, " %s %s — error: %v\n", sym, r.Engine, r.Err)
		case r.Results == 0:
			fmt.Fprintf(w, " %s %s — no results\n", sym, r.Engine)
		default:
			fmt.Fprintf(w, " %s %s\n", sym, r.Engine)
		}
	}
}
