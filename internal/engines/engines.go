// Package engines is the single name→constructor registry for every engine
// surface in this repository (the progxe CLI's -engine flag and the query
// service's per-request engine selection), so the accepted names cannot
// drift between them.
package engines

import (
	"fmt"
	"strings"

	"progxe/internal/baseline"
	"progxe/internal/core"
	"progxe/internal/skyline"
	"progxe/internal/smj"
)

// names lists the accepted engine names in presentation order.
var names = []string{
	"progxe", "progxe+", "progxe-noorder", "progxe-kd",
	"jfsl", "jfsl+", "ssmj", "ssmj-strict", "saj",
}

// New constructs the engine registered under name (case-insensitive).
// The ProgXe variants honor opts (grid resolutions, trace, seed); the
// baselines take no tuning and ignore it. Every call returns a fresh engine
// value, so per-run state never crosses callers.
func New(name string, opts core.Options) (smj.Engine, error) {
	switch strings.ToLower(name) {
	case "progxe":
		return core.New(opts), nil
	case "progxe+":
		opts.PushThrough = true
		return core.New(opts), nil
	case "progxe-noorder":
		opts.Ordering = core.OrderRandom
		return core.New(opts), nil
	case "progxe-kd":
		opts.Partitioning = core.PartitionKD
		return core.New(opts), nil
	case "jfsl":
		return &baseline.JFSL{Algorithm: skyline.SFS}, nil
	case "jfsl+":
		return &baseline.JFSL{Algorithm: skyline.SFS, PushThrough: true}, nil
	case "ssmj":
		// The paper's faithful configuration: two-batch output with the
		// documented §VII false-positive caveat, counted in the stats.
		return &baseline.SSMJ{}, nil
	case "ssmj-strict":
		return &baseline.SSMJ{Strict: true}, nil
	case "saj":
		return &baseline.SAJ{}, nil
	default:
		return nil, fmt.Errorf("unknown engine %q (have %s)", name, strings.Join(names, ", "))
	}
}

// Names returns the accepted engine names.
func Names() []string { return append([]string(nil), names...) }
