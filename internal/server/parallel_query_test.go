package server

import (
	"fmt"
	"testing"
)

// TestParallelQueryMatchesSerial drives the per-request workers knob end to
// end: a parallel run must stream the byte-identical result sequence of a
// serial run, and the run record must echo the granted (clamped) worker
// count.
func TestParallelQueryMatchesSerial(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRunWorkers: 2})
	q := e2eWorkload(t, ts)

	collect := func(req QueryRequest) (run map[string]any, results []map[string]any) {
		t.Helper()
		resp := postQuery(t, ts, req)
		defer resp.Body.Close()
		recs := decodeNDJSON(t, resp.Body)
		if recs[0]["type"] != "run" {
			t.Fatalf("stream starts with %v", recs[0])
		}
		last := recs[len(recs)-1]
		if last["type"] != "stats" || last["error"] != nil {
			t.Fatalf("stats trailer = %v", last)
		}
		return recs[0], recs[1 : len(recs)-1]
	}

	serialRun, serial := collect(QueryRequest{Query: q, Engine: "progxe"})
	if w, ok := execObj(t, serialRun)["workers"]; ok && w != float64(0) {
		t.Fatalf("serial run record advertises workers=%v", w)
	}
	// Ask for more than the cap: clamped to MaxRunWorkers, echoed back.
	parallelRun, parallel := collect(QueryRequest{Query: q, Engine: "progxe", Workers: 64})
	if w := execObj(t, parallelRun)["workers"]; w != float64(2) {
		t.Fatalf("parallel run record workers = %v, want 2 (clamped)", w)
	}

	if len(serial) != len(parallel) || len(serial) == 0 {
		t.Fatalf("result counts differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s["leftId"] != p["leftId"] || s["rightId"] != p["rightId"] ||
			fmt.Sprint(s["out"]) != fmt.Sprint(p["out"]) {
			t.Fatalf("result %d diverges: serial %v, parallel %v", i, s, p)
		}
	}

	// Negative requests degrade to serial rather than erroring.
	negRun, neg := collect(QueryRequest{Query: q, Engine: "progxe", Workers: -3})
	if w, ok := execObj(t, negRun)["workers"]; ok && w != float64(0) {
		t.Fatalf("negative workers granted %v", w)
	}
	if len(neg) != len(serial) {
		t.Fatalf("negative-workers run emitted %d results, want %d", len(neg), len(serial))
	}
}

// TestMaxRunWorkersDisabled verifies that a negative server cap turns the
// knob off entirely: every request runs serial.
func TestMaxRunWorkersDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRunWorkers: -1})
	q := e2eWorkload(t, ts)
	resp := postQuery(t, ts, QueryRequest{Query: q, Engine: "progxe", Workers: 8})
	defer resp.Body.Close()
	recs := decodeNDJSON(t, resp.Body)
	if w, ok := execObj(t, recs[0])["workers"]; ok && w != float64(0) {
		t.Fatalf("disabled cap still granted workers=%v", w)
	}
	if recs[len(recs)-1]["error"] != nil {
		t.Fatalf("run failed: %v", recs[len(recs)-1])
	}
}
