package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"progxe/internal/core"
	"progxe/internal/obs"
	"progxe/internal/smj"
)

// streamLine is the union of the stream record shapes, for assertions.
type streamLine struct {
	Type        string     `json:"type"`
	ID          string     `json:"id"`
	Cached      bool       `json:"cached"`
	Seq         int        `json:"seq"`
	LeftID      int64      `json:"leftId"`
	RightID     int64      `json:"rightId"`
	Out         []float64  `json:"out"`
	Results     int        `json:"results"`
	Subscribers int        `json:"subscribers"`
	Canceled    bool       `json:"canceled"`
	Reason      string     `json:"reason"`
	Error       string     `json:"error"`
	Phases      obs.Report `json:"phases"`
}

// parseStream splits an NDJSON body into typed records.
func parseStream(t *testing.T, body []byte) []streamLine {
	t.Helper()
	var out []streamLine
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		out = append(out, l)
	}
	return out
}

// resultKey reduces a result record to its run-invariant identity (the
// elapsed timestamp legitimately varies between runs).
func resultKey(l streamLine) string {
	return fmt.Sprintf("%d|%d|%d|%v", l.Seq, l.LeftID, l.RightID, l.Out)
}

// resultKeys extracts the run-invariant result sequence of a stream.
func resultKeys(lines []streamLine) []string {
	var keys []string
	for _, l := range lines {
		if l.Type == "result" {
			keys = append(keys, resultKey(l))
		}
	}
	return keys
}

// statsLine returns the stream's stats trailer.
func statsLine(t *testing.T, lines []streamLine) streamLine {
	t.Helper()
	for _, l := range lines {
		if l.Type == "stats" {
			return l
		}
	}
	t.Fatal("stream has no stats record")
	return streamLine{}
}

// setupMillis sums the phases a cached plan skips.
func setupMillis(rep obs.Report) float64 {
	var ms float64
	for _, ph := range rep.Phases {
		switch ph.Phase {
		case "partition", "region-build", "prune":
			ms += ph.SequencerMillis + ph.WorkerMillis
		}
	}
	return ms
}

// generateRelation registers a deterministic synthetic relation through the
// HTTP API, so separate servers seeded identically hold identical data.
func generateRelation(t *testing.T, ts *httptest.Server, name string, rows, seed int) {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"rows":%d,"dims":2,"distribution":"anti-correlated","selectivity":0.05,"seed":%d}`, name, rows, seed)
	resp, err := http.Post(ts.URL+"/v1/relations", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("generate %s: status %d", name, resp.StatusCode)
	}
}

const genQuery = `SELECT (A.a0 + B.a0) AS x, (A.a1 + B.a1) AS y
	FROM A A, B B WHERE A.jkey = B.jkey
	PREFERRING LOWEST(x) AND LOWEST(y)`

// runQueryBody posts a query and returns (status, body).
func runQueryBody(t *testing.T, ts *httptest.Server, req QueryRequest) (int, []byte) {
	t.Helper()
	resp := postQuery(t, ts, req)
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// waitFor polls until cond holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPlanCacheHitSkipsSetup proves the tentpole's cache contract on the
// solo path: a repeated query reports cached=true, spends ≈0 ms in the
// partition / region-build / prune phases, and streams the same results.
func TestPlanCacheHitSkipsSetup(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	generateRelation(t, ts, "A", 400, 1)
	generateRelation(t, ts, "B", 400, 2)

	status, body1 := runQueryBody(t, ts, QueryRequest{Query: genQuery})
	if status != http.StatusOK {
		t.Fatalf("first run: status %d (%s)", status, body1)
	}
	lines1 := parseStream(t, body1)
	if head := lines1[0]; head.Type != "run" || head.Cached {
		t.Fatalf("first run head = %+v, want uncached run record", head)
	}
	stats1 := statsLine(t, lines1)
	if stats1.Cached {
		t.Fatal("first run reported cached=true")
	}

	status, body2 := runQueryBody(t, ts, QueryRequest{Query: genQuery})
	if status != http.StatusOK {
		t.Fatalf("second run: status %d (%s)", status, body2)
	}
	lines2 := parseStream(t, body2)
	if head := lines2[0]; !head.Cached {
		t.Fatalf("second run head = %+v, want cached=true", head)
	}
	stats2 := statsLine(t, lines2)
	if !stats2.Cached {
		t.Fatal("second run stats lacked cached=true")
	}
	if ms := setupMillis(stats2.Phases); ms != 0 {
		t.Fatalf("cache-hit run spent %.3f ms in partition/region-build/prune, want 0", ms)
	}
	if stats2.Results == 0 {
		t.Fatal("cache-hit run streamed no results")
	}

	k1, k2 := resultKeys(lines1), resultKeys(lines2)
	if len(k1) != len(k2) {
		t.Fatalf("result count diverged: %d vs %d", len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("result %d diverged:\ncold %s\nhot  %s", i, k1[i], k2[i])
		}
	}

	st := srv.Stats()
	if st.PlanCacheMisses != 1 || st.PlanCacheHits != 1 {
		t.Fatalf("plan cache counters = %d misses / %d hits, want 1/1", st.PlanCacheMisses, st.PlanCacheHits)
	}
}

// TestPlanCacheInvalidationMatrix is the cache-invalidation battery:
// mutating a relation makes the next identical query miss (new catalog
// version → new key), re-repeating hits again, and the hit/miss counters
// reconcile with the request history exactly.
func TestPlanCacheInvalidationMatrix(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	run := func(wantCached bool, step string) []string {
		t.Helper()
		status, body := runQueryBody(t, ts, QueryRequest{Query: tinyQuery})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", step, status, body)
		}
		lines := parseStream(t, body)
		if st := statsLine(t, lines); st.Cached != wantCached {
			t.Fatalf("%s: cached=%v, want %v", step, st.Cached, wantCached)
		}
		return resultKeys(lines)
	}
	upload := func(csv string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/relations/L", strings.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("re-upload: status %d", resp.StatusCode)
		}
	}

	before := run(false, "cold run")
	run(true, "warm run")

	// Mutate L: same schema, different prices — the cached plan is stale.
	upload("id,price,speed,region\n1,100,5,1\n2,200,1,1\n3,50,9,2\n")
	after := run(false, "post-mutation run")
	run(true, "post-mutation warm run")

	if fmt.Sprint(before) == fmt.Sprint(after) {
		t.Fatal("results unchanged after relation mutation — stale plan served")
	}

	// Re-uploading identical bytes still bumps the version: snapshot
	// identity, not content equality, keys the cache.
	upload("id,price,speed,region\n1,100,5,1\n2,200,1,1\n3,50,9,2\n")
	same := run(false, "post-identical-reupload run")
	if fmt.Sprint(same) != fmt.Sprint(after) {
		t.Fatal("identical re-upload changed results")
	}

	st := srv.Stats()
	if st.PlanCacheMisses != 3 || st.PlanCacheHits != 2 {
		t.Fatalf("counters = %d misses / %d hits, want 3/2", st.PlanCacheMisses, st.PlanCacheHits)
	}
	if got := st.PlanCacheMisses + st.PlanCacheHits; got != st.RunsStarted {
		t.Fatalf("cache consultations (%d) != runs started (%d)", got, st.RunsStarted)
	}
}

// TestInFlightRunSurvivesMutation pins the snapshot contract: a run blocked
// mid-stream keeps its admission-time relation snapshot when the catalog
// entry is replaced under it, and completes cleanly.
func TestInFlightRunSurvivesMutation(t *testing.T) {
	g := newGatedEngine()
	_, ts := newTestServer(t, Config{
		NewEngine: func(name string, opts core.Options) (smj.Engine, error) { return g, nil },
	})

	type res struct {
		status int
		body   []byte
	}
	done := make(chan res, 1)
	go func() {
		status, body := runQueryBody(t, ts, QueryRequest{Query: tinyQuery})
		done <- res{status, body}
	}()
	<-g.emitted

	// Replace L mid-run.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/relations/L", strings.NewReader("id,price,speed,region\n9,1,1,1\n"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(g.proceed)

	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("in-flight run: status %d", r.status)
	}
	st := statsLine(t, parseStream(t, r.body))
	if st.Canceled || st.Error != "" || st.Results != 2 {
		t.Fatalf("in-flight run ended %+v, want clean completion with 2 results", st)
	}
}

// throttledEngine wraps a real engine for coalescing tests: it can hold the
// run at the start (so subscribers attach deterministically), pace
// emissions, and block after a fixed number of results.
type throttledEngine struct {
	inner      smj.ContextEngine
	runs       *atomic.Int64
	release    chan struct{} // run waits here before its first emission
	perResult  time.Duration
	blockAfter int           // >0: stop emitting and wait for unblock
	blocked    chan struct{} // closed when blockAfter is reached
	unblock    chan struct{}
}

func (e *throttledEngine) Name() string { return e.inner.Name() }

func (e *throttledEngine) Run(p *smj.Problem, sink smj.Sink) (smj.Stats, error) {
	return e.RunContext(context.Background(), p, sink)
}

func (e *throttledEngine) RunContext(ctx context.Context, p *smj.Problem, sink smj.Sink) (smj.Stats, error) {
	e.runs.Add(1)
	if e.release != nil {
		select {
		case <-e.release:
		case <-ctx.Done():
			return smj.Stats{}, ctx.Err()
		}
	}
	n := 0
	var once sync.Once
	wrapped := smj.SinkFunc(func(r smj.Result) {
		n++
		if e.perResult > 0 {
			time.Sleep(e.perResult)
		}
		sink.Emit(r)
		if e.blockAfter > 0 && n == e.blockAfter {
			once.Do(func() { close(e.blocked) })
			select {
			case <-e.unblock:
			case <-ctx.Done():
			}
		}
	})
	return e.inner.RunContext(ctx, p, wrapped)
}

// newThrottledSeam returns a Config.NewEngine seam wrapping the real
// registry engines in a shared throttledEngine shell.
func newThrottledSeam(te *throttledEngine) func(string, core.Options) (smj.Engine, error) {
	return func(name string, opts core.Options) (smj.Engine, error) {
		inner, err := NewEngine(name, opts)
		if err != nil {
			return nil, err
		}
		shell := *te
		shell.inner = inner.(smj.ContextEngine)
		return &shell, nil
	}
}

// TestCoalescedSubscribersByteIdentical is the coalescing property test: N
// staggered subscribers of one query share exactly one engine run and read
// byte-identical streams, which in turn match an uncoalesced run of the
// same query on identically seeded data.
func TestCoalescedSubscribersByteIdentical(t *testing.T) {
	const subscribers = 16
	var runs atomic.Int64
	release := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		CoalesceReplay: 1 << 16,
		NewEngine: newThrottledSeam(&throttledEngine{
			runs: &runs, release: release, perResult: 200 * time.Microsecond,
		}),
	})
	generateRelation(t, ts, "A", 400, 1)
	generateRelation(t, ts, "B", 400, 2)

	bodies := make([][]byte, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := runQueryBody(t, ts, QueryRequest{Query: genQuery})
			if status != http.StatusOK {
				t.Errorf("subscriber %d: status %d (%s)", i, status, body)
			}
			bodies[i] = body
		}(i)
		time.Sleep(time.Millisecond) // staggered attach
	}
	waitFor(t, "all subscribers attached", func() bool {
		return srv.Stats().CoalescedSubscribers >= subscribers
	})
	close(release)
	wg.Wait()

	for i := 1; i < subscribers; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("subscriber %d stream diverged from subscriber 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	lines := parseStream(t, bodies[0])
	stats := statsLine(t, lines)
	if stats.Canceled || stats.Error != "" {
		t.Fatalf("coalesced run ended %+v, want clean completion", stats)
	}
	if stats.Subscribers != subscribers {
		t.Fatalf("stats.subscribers = %d, want %d", stats.Subscribers, subscribers)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("engine ran %d times for %d identical requests, want exactly 1", got, subscribers)
	}
	st := srv.Stats()
	if st.RunsStarted != 1 || st.CoalescedRuns != 1 || st.CoalescedSubscribers != subscribers {
		t.Fatalf("counters = started %d, coalesced %d, subscribers %d; want 1/1/%d",
			st.RunsStarted, st.CoalescedRuns, st.CoalescedSubscribers, subscribers)
	}

	// The shared stream must equal an uncoalesced run over identical data.
	_, solo := newTestServer(t, Config{})
	generateRelation(t, solo, "A", 400, 1)
	generateRelation(t, solo, "B", 400, 2)
	status, soloBody := runQueryBody(t, solo, QueryRequest{Query: genQuery})
	if status != http.StatusOK {
		t.Fatalf("uncoalesced run: status %d", status)
	}
	ck, sk := resultKeys(lines), resultKeys(parseStream(t, soloBody))
	if len(ck) == 0 || len(ck) != len(sk) {
		t.Fatalf("result counts: coalesced %d, uncoalesced %d", len(ck), len(sk))
	}
	for i := range ck {
		if ck[i] != sk[i] {
			t.Fatalf("result %d diverged from uncoalesced run:\ncoalesced   %s\nuncoalesced %s", i, ck[i], sk[i])
		}
	}
}

// TestCoalescedRandomCancellation cancels a random subset of subscribers
// mid-stream: survivors still read complete, identical streams from the one
// shared run, and the run itself is only torn down when the last one leaves.
func TestCoalescedRandomCancellation(t *testing.T) {
	const subscribers = 12
	var runs atomic.Int64
	release := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		CoalesceReplay: 1 << 16,
		NewEngine: newThrottledSeam(&throttledEngine{
			runs: &runs, release: release, perResult: time.Millisecond,
		}),
	})
	generateRelation(t, ts, "A", 400, 1)
	generateRelation(t, ts, "B", 400, 2)

	rng := rand.New(rand.NewSource(7))
	cancelIdx := map[int]bool{}
	for len(cancelIdx) < 5 {
		cancelIdx[rng.Intn(subscribers)] = true
	}

	bodies := make([][]byte, subscribers)
	canceled := make([]bool, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			var cancel context.CancelFunc
			if cancelIdx[i] {
				canceled[i] = true
				ctx, cancel = context.WithCancel(ctx)
				// Cancel mid-stream, while the paced run is still emitting.
				timer := time.AfterFunc(30*time.Millisecond, cancel)
				defer timer.Stop()
				defer cancel()
			}
			b, err := json.Marshal(QueryRequest{Query: genQuery})
			if err != nil {
				t.Error(err)
				return
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(b))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				if !cancelIdx[i] {
					t.Errorf("subscriber %d: %v", i, err)
				}
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil && !cancelIdx[i] {
				t.Errorf("subscriber %d read: %v", i, err)
				return
			}
			bodies[i] = body
		}(i)
	}
	waitFor(t, "all subscribers attached", func() bool {
		return srv.Stats().CoalescedSubscribers >= subscribers
	})
	close(release)
	wg.Wait()

	var survivor []byte
	for i := 0; i < subscribers; i++ {
		if canceled[i] {
			continue
		}
		if survivor == nil {
			survivor = bodies[i]
			stats := statsLine(t, parseStream(t, survivor))
			if stats.Canceled || stats.Error != "" || stats.Results == 0 {
				t.Fatalf("survivor stream ended %+v, want clean completion", stats)
			}
			continue
		}
		if !bytes.Equal(survivor, bodies[i]) {
			t.Fatalf("survivor %d stream diverged", i)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("engine ran %d times, want 1 — cancellations must not restart the shared run", got)
	}
}

// TestCoalesceReplayTruncation bounds the replay buffer: a subscriber that
// attaches after the ring has evicted the stream head is rejected with 503
// instead of stalling the shared run, and the truncation is counted.
func TestCoalesceReplayTruncation(t *testing.T) {
	var runs atomic.Int64
	blocked := make(chan struct{})
	unblock := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		// The ring keeps 16 records; the run emits 24 paced results before
		// blocking, so the head is evicted while the leader (drained, paced)
		// stays within the window.
		CoalesceReplay: 16,
		NewEngine: newThrottledSeam(&throttledEngine{
			runs: &runs, blockAfter: 24, blocked: blocked, unblock: unblock,
			perResult: 2 * time.Millisecond,
		}),
	})
	generateRelation(t, ts, "A", 400, 1)
	generateRelation(t, ts, "B", 400, 2)

	type res struct {
		status int
		body   []byte
	}
	leaderDone := make(chan res, 1)
	go func() {
		status, body := runQueryBody(t, ts, QueryRequest{Query: genQuery})
		leaderDone <- res{status, body}
	}()
	<-blocked // ≥ 8 records published; ring holds only the last 2

	status, body := runQueryBody(t, ts, QueryRequest{Query: genQuery})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("late subscriber: status %d (%s), want 503", status, body)
	}
	if !bytes.Contains(body, []byte("replay buffer truncated")) {
		t.Fatalf("late subscriber error = %s, want truncated-replay", body)
	}

	close(unblock)
	r := <-leaderDone
	if r.status != http.StatusOK {
		t.Fatalf("leader: status %d", r.status)
	}
	if st := statsLine(t, parseStream(t, r.body)); st.Canceled || st.Error != "" {
		t.Fatalf("leader stream ended %+v, want clean completion — the slow subscriber must not poison the run", st)
	}
	if st := srv.Stats(); st.ReplayTruncated != 1 {
		t.Fatalf("replayTruncated = %d, want 1", st.ReplayTruncated)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("engine ran %d times, want 1", got)
	}
}

// TestCoalesceBypassesAdmissionForSubscribers: with one run slot and
// coalescing on, identical queries attach to the in-flight run instead of
// being shed, while a different query still gets 429 — subscribers cost a
// cursor, not a slot.
func TestCoalesceBypassesAdmission(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		MaxConcurrentRuns: 1,
		CoalesceReplay:    1 << 16,
		NewEngine: newThrottledSeam(&throttledEngine{
			runs: &runs, release: release,
		}),
	})
	generateRelation(t, ts, "A", 200, 1)
	generateRelation(t, ts, "B", 200, 2)

	const n = 4
	var wg sync.WaitGroup
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _ = runQueryBody(t, ts, QueryRequest{Query: genQuery})
		}(i)
	}
	waitFor(t, "all identical queries attached", func() bool {
		return srv.Stats().CoalescedSubscribers >= n
	})

	// A different key (distinct limit) needs its own slot: shed with 429.
	status, _ := runQueryBody(t, ts, QueryRequest{Query: genQuery, Limit: 1})
	if status != http.StatusTooManyRequests {
		t.Fatalf("distinct query during coalesced run: status %d, want 429", status)
	}

	close(release)
	wg.Wait()
	for i, s := range statuses {
		if s != http.StatusOK {
			t.Fatalf("identical query %d: status %d, want 200 (coalesced, not shed)", i, s)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("engine ran %d times, want 1", got)
	}
}

// TestTraceBypassesCoalescing: trace requests must run privately even with
// coalescing on — a trace documents one complete run, including the setup
// phases a cached plan would skip.
func TestTraceBypassesCoalescing(t *testing.T) {
	srv, ts := newTestServer(t, Config{CoalesceReplay: 1 << 16})

	for i := 0; i < 2; i++ {
		status, body := runQueryBody(t, ts, QueryRequest{Query: tinyQuery, Trace: true})
		if status != http.StatusOK {
			t.Fatalf("trace run %d: status %d", i, status)
		}
		if st := statsLine(t, parseStream(t, body)); st.Cached {
			t.Fatalf("trace run %d served from plan cache", i)
		}
	}
	st := srv.Stats()
	if st.CoalescedRuns != 0 || st.PlanCacheHits != 0 {
		t.Fatalf("trace runs touched cache/coalescer: %+v", st)
	}
}
