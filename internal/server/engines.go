package server

import (
	"progxe/internal/core"
	"progxe/internal/engines"
	"progxe/internal/smj"
)

// NewEngine constructs the engine registered under name with default
// options — the service-side view of the shared internal/engines registry
// (the progxe CLI resolves -engine through the same table).
func NewEngine(name string) (smj.Engine, error) {
	return engines.New(name, core.Options{})
}

// EngineNames returns the engine names accepted by the query endpoint.
func EngineNames() []string { return engines.Names() }
