package server

import (
	"progxe/internal/core"
	"progxe/internal/engines"
	"progxe/internal/smj"
)

// NewEngine constructs the engine registered under name with the given
// per-request options — the service-side view of the shared
// internal/engines registry (the progxe CLI resolves -engine through the
// same table). Baselines ignore the options.
func NewEngine(name string, opts core.Options) (smj.Engine, error) {
	return engines.New(name, opts)
}

// EngineNames returns the engine names accepted by the query endpoint.
func EngineNames() []string { return engines.Names() }
