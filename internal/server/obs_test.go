package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// readStream consumes an NDJSON query response to EOF and returns the
// decoded records. EOF implies the handler has returned, so run-log and
// logger side effects are visible afterwards.
func readStream(t *testing.T, resp *http.Response) []map[string]any {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("query: status %d: %s", resp.StatusCode, b)
	}
	var recs []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		recs = append(recs, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func lastStats(t *testing.T, recs []map[string]any) map[string]any {
	t.Helper()
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i]["type"] == "stats" {
			return recs[i]
		}
	}
	t.Fatalf("no stats record in:\n%s", fmtRecords(recs))
	return nil
}

// TestRunObservabilityEndToEnd pins the acceptance criterion: one traced
// request yields a /v1/runs record with a phase breakdown and progress
// quantiles, a Perfetto-loadable Chrome-trace document, and per-engine
// labeled Prometheus series.
func TestRunObservabilityEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	recs := readStream(t, postQuery(t, ts, QueryRequest{Query: tinyQuery, Trace: true}))

	// The trailing stats record carries the run id, quantiles and phases.
	stats := lastStats(t, recs)
	runID, _ := stats["runId"].(string)
	if runID == "" {
		t.Fatalf("stats record missing runId: %v", stats)
	}
	progress, ok := stats["progress"].(map[string]any)
	if !ok || progress["count"].(float64) == 0 {
		t.Fatalf("stats record missing progress quantiles: %v", stats)
	}
	for _, k := range []string{"firstMillis", "p10Millis", "p50Millis", "p90Millis", "lastMillis"} {
		if _, ok := progress[k]; !ok {
			t.Fatalf("progress missing %s: %v", k, progress)
		}
	}
	phases, ok := stats["phases"].(map[string]any)
	if !ok {
		t.Fatalf("stats record missing phases: %v", stats)
	}
	phaseList, _ := phases["phases"].([]any)
	if len(phaseList) == 0 {
		t.Fatalf("phase breakdown empty: %v", phases)
	}

	// The run log serves the same record, newest first.
	var runs struct{ Runs []RunRecord }
	getJSON(t, ts.URL+"/v1/runs", &runs)
	if len(runs.Runs) != 1 {
		t.Fatalf("/v1/runs returned %d records", len(runs.Runs))
	}
	rr := runs.Runs[0]
	if rr.ID != runID || rr.Engine != "ProgXe" || rr.Outcome != "completed" {
		t.Fatalf("run record = %+v", rr)
	}
	if rr.Progress.Count == 0 || len(rr.Phases.Phases) == 0 || !rr.HasTrace {
		t.Fatalf("run record missing observability payload: %+v", rr)
	}
	if rr.EngineStats.ResultCount == 0 {
		t.Fatalf("run record missing engine stats: %+v", rr)
	}
	var single RunRecord
	getJSON(t, ts.URL+"/v1/runs/"+runID, &single)
	if single.ID != runID {
		t.Fatalf("GET /v1/runs/%s = %+v", runID, single)
	}

	// The trace document must be a valid Chrome trace-event array:
	// metadata + complete + instant events with the required keys. That
	// is exactly what Perfetto's JSON importer consumes.
	tresp, err := http.Get(ts.URL + "/v1/runs/" + runID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", tresp.StatusCode)
	}
	if ct := tresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	var events []map[string]any
	if err := json.NewDecoder(tresp.Body).Decode(&events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		counts[ph]++
		switch ph {
		case "M":
			if ev["name"] != "thread_name" {
				t.Fatalf("metadata event %v", ev)
			}
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
			fallthrough
		case "i":
			for _, k := range []string{"name", "pid", "tid", "ts"} {
				if _, ok := ev[k]; !ok {
					t.Fatalf("event missing %s: %v", k, ev)
				}
			}
		default:
			t.Fatalf("unexpected event phase %q: %v", ph, ev)
		}
	}
	if counts["M"] == 0 || counts["X"] == 0 {
		t.Fatalf("trace lacks metadata or span events: %v", counts)
	}

	// Prometheus exposes the per-engine progress histogram and the phase
	// seconds counter with lane attribution.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	b, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`progxe_run_progress_seconds_bucket{engine="ProgXe",milestone="first",le="+Inf"} 1`,
		`progxe_run_progress_seconds_bucket{engine="ProgXe",milestone="p90",le="+Inf"} 1`,
		`progxe_run_progress_seconds_count{engine="ProgXe",milestone="last"} 1`,
		`progxe_phase_seconds_total{phase="commit",lane="sequencer"}`,
		`progxe_phase_seconds_total{phase="sched",lane="sequencer"}`,
	} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, b)
		}
	}
}

// TestRunTraceAbsentUnlessRequested: tracing is opt-in per request, and the
// endpoint says how to get one.
func TestRunTraceAbsentUnlessRequested(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	recs := readStream(t, postQuery(t, ts, QueryRequest{Query: tinyQuery}))
	runID := lastStats(t, recs)["runId"].(string)

	var rr RunRecord
	getJSON(t, ts.URL+"/v1/runs/"+runID, &rr)
	if rr.HasTrace {
		t.Fatalf("untraced run advertises a trace: %+v", rr)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + runID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace for untraced run: status %d", resp.StatusCode)
	}
}

// TestRunLogEviction: the ring keeps the newest RunLogSize records and drops
// evicted traces with them.
func TestRunLogEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{RunLogSize: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		recs := readStream(t, postQuery(t, ts, QueryRequest{Query: tinyQuery, Trace: true}))
		ids = append(ids, lastStats(t, recs)["runId"].(string))
	}
	var runs struct{ Runs []RunRecord }
	getJSON(t, ts.URL+"/v1/runs", &runs)
	if len(runs.Runs) != 2 || runs.Runs[0].ID != ids[2] || runs.Runs[1].ID != ids[1] {
		t.Fatalf("run log after eviction = %+v", runs.Runs)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + ids[0] + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted trace still served: status %d", resp.StatusCode)
	}
}

// TestStructuredRunLogging: one slog line per run with id, engine, outcome
// and phase totals, and a Warn line when the run crosses the slow threshold.
func TestStructuredRunLogging(t *testing.T) {
	var buf strings.Builder
	_, ts := newTestServer(t, Config{
		Logger:           slog.New(slog.NewTextHandler(&buf, nil)),
		SlowRunThreshold: time.Nanosecond, // everything is slow
	})
	readStream(t, postQuery(t, ts, QueryRequest{Query: tinyQuery}))
	out := buf.String()
	for _, want := range []string{"msg=\"slow run\"", "id=r000001", "engine=ProgXe", "outcome=completed", "phases="} {
		if !strings.Contains(out, want) {
			t.Fatalf("run log line missing %q in:\n%s", want, out)
		}
	}

	var jbuf strings.Builder
	_, ts2 := newTestServer(t, Config{Logger: slog.New(slog.NewJSONHandler(&jbuf, nil))})
	readStream(t, postQuery(t, ts2, QueryRequest{Query: tinyQuery}))
	var line map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(jbuf.String(), "\n", 2)[0]), &line); err != nil {
		t.Fatalf("JSON log line: %v in %q", err, jbuf.String())
	}
	if line["msg"] != "run" || line["engine"] != "ProgXe" || line["outcome"] != "completed" {
		t.Fatalf("JSON run line = %v", line)
	}
}

// --- minimal Prometheus text-format validator ---------------------------

var (
	promHelpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*)\})? ([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|[-+]Inf|NaN)$`)
)

// validatePrometheus checks the exposition text: every sample belongs to a
// declared # TYPE family (histogram samples may use the _bucket/_sum/_count
// suffixes), label syntax parses, histogram buckets are cumulative, and the
// +Inf bucket of every histogram series equals its _count.
func validatePrometheus(t *testing.T, text string) {
	t.Helper()
	types := map[string]string{}       // family -> type
	bucketPrev := map[string]float64{} // family+labels-sans-le -> last bucket value
	bucketInf := map[string]float64{}  // family+labels-sans-le -> +Inf bucket value
	counts := map[string]float64{}     // family+labels -> _count value

	family := func(name string) (string, bool) {
		if typ, ok := types[name]; ok {
			return typ, true
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok {
				if typ, ok := types[base]; ok && typ == "histogram" {
					return typ, true
				}
			}
		}
		return "", false
	}

	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP") {
			if !promHelpRe.MatchString(line) {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE") {
			m := promTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if _, dup := types[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, m[1])
			}
			types[m[1]] = m[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		name, labels, value := m[1], m[3], m[4]
		if _, ok := family(name); !ok {
			t.Fatalf("line %d: sample %s has no # TYPE declaration", ln+1, name)
		}
		v, err := strconv.ParseFloat(strings.Replace(value, "+Inf", "Inf", 1), 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q", ln+1, value)
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			base := strings.TrimSuffix(name, "_bucket")
			le := ""
			var rest []string
			for _, pair := range strings.Split(labels, ",") {
				if cut, ok := strings.CutPrefix(pair, "le="); ok {
					le = cut
				} else {
					rest = append(rest, pair)
				}
			}
			if le == "" {
				t.Fatalf("line %d: bucket without le label: %q", ln+1, line)
			}
			series := base + "{" + strings.Join(rest, ",") + "}"
			if prev, ok := bucketPrev[series]; ok && v < prev {
				t.Fatalf("line %d: non-cumulative bucket %s: %v < %v", ln+1, series, v, prev)
			}
			bucketPrev[series] = v
			if le == `"+Inf"` {
				bucketInf[series] = v
			}
		case strings.HasSuffix(name, "_count") && types[name] == "":
			base := strings.TrimSuffix(name, "_count")
			key := base + "{" + labels + "}"
			counts[key] = v
		}
	}
	if len(types) == 0 {
		t.Fatal("no metric families found")
	}
	if len(bucketInf) == 0 {
		t.Fatal("no histogram buckets found")
	}
	for series := range bucketInf {
		c, ok := counts[series]
		if !ok {
			t.Fatalf("histogram series %s has no _count sample", series)
		}
		if c != bucketInf[series] {
			t.Fatalf("series %s: +Inf bucket %v != _count %v", series, bucketInf[series], c)
		}
	}
}

// TestPrometheusExpositionValid runs traced queries on two engines and then
// validates the full /metrics payload with the text-format checker.
func TestPrometheusExpositionValid(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, eng := range []string{"progxe", "jfsl"} {
		readStream(t, postQuery(t, ts, QueryRequest{Query: tinyQuery, Engine: eng}))
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	validatePrometheus(t, string(b))

	// Both engines must appear as distinct label values on the progress
	// histogram.
	for _, eng := range []string{"ProgXe", "JF-SL"} {
		want := fmt.Sprintf(`progxe_run_progress_seconds_bucket{engine=%q,milestone="first",le="+Inf"} 1`, eng)
		if !strings.Contains(string(b), want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, b)
		}
	}
}
