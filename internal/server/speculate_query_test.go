package server

import (
	"fmt"
	"net/http"
	"testing"
)

// TestSpeculateQueryMatchesSerial drives the per-request speculate knob end
// to end: a speculatively pipelined run must stream the byte-identical
// result sequence of a serial run, and the run record must echo the granted
// (clamped) speculation depth.
func TestSpeculateQueryMatchesSerial(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxRunWorkers: 2, MaxRunCommitters: 2, MaxRunSpeculate: 2})
	q := e2eWorkload(t, ts)

	collect := func(req QueryRequest) (run map[string]any, results []map[string]any) {
		t.Helper()
		resp := postQuery(t, ts, req)
		defer resp.Body.Close()
		recs := decodeNDJSON(t, resp.Body)
		if recs[0]["type"] != "run" {
			t.Fatalf("stream starts with %v", recs[0])
		}
		last := recs[len(recs)-1]
		if last["type"] != "stats" || last["error"] != nil {
			t.Fatalf("stats trailer = %v", last)
		}
		return recs[0], recs[1 : len(recs)-1]
	}

	serialRun, serial := collect(QueryRequest{Query: q, Engine: "progxe"})
	if sp, ok := execObj(t, serialRun)["speculate"]; ok && sp != float64(0) {
		t.Fatalf("serial run record advertises speculate=%v", sp)
	}

	// Ask for more than the cap: clamped to MaxRunSpeculate, echoed back.
	specRun, pipelined := collect(QueryRequest{Query: q, Engine: "progxe", Workers: 2, Committers: 2, Speculate: 64})
	specExec := execObj(t, specRun)
	if specExec["speculate"] != float64(2) {
		t.Fatalf("run record speculate = %v, want 2 (clamped)", specExec["speculate"])
	}
	if specExec["workers"] != float64(2) || specExec["committers"] != float64(2) {
		t.Fatalf("run record workers=%v committers=%v, want 2/2", specExec["workers"], specExec["committers"])
	}

	if len(serial) != len(pipelined) || len(serial) == 0 {
		t.Fatalf("result counts differ: serial %d, pipelined %d", len(serial), len(pipelined))
	}
	for i := range serial {
		s, p := serial[i], pipelined[i]
		if s["leftId"] != p["leftId"] || s["rightId"] != p["rightId"] ||
			fmt.Sprint(s["out"]) != fmt.Sprint(p["out"]) {
			t.Fatalf("result %d diverges: serial %v, pipelined %v", i, s, p)
		}
	}

	// Speculation without committers: rounds cannot pipeline past a commit
	// stage that lives on the sequencer — granted 0 and echoed as absent,
	// never silently half-applied.
	soloRun, solo := collect(QueryRequest{Query: q, Engine: "progxe", Workers: 2, Speculate: 2})
	if sp, ok := execObj(t, soloRun)["speculate"]; ok && sp != float64(0) {
		t.Fatalf("non-partitioned run granted speculate=%v", sp)
	}
	if len(solo) != len(serial) {
		t.Fatalf("speculate-only run emitted %d results, want %d", len(solo), len(serial))
	}

	// The run log (and thus /v1/runs/{id}) mirrors the grant.
	runID, _ := specRun["id"].(string)
	rec, ok := srv.runlog.get(runID)
	if !ok {
		t.Fatalf("run %q not in the run log", runID)
	}
	if rec.Exec.Speculate != 2 || rec.Exec.Committers != 2 || rec.Exec.Workers != 2 {
		t.Fatalf("run log records workers=%d committers=%d speculate=%d, want 2/2/2",
			rec.Exec.Workers, rec.Exec.Committers, rec.Exec.Speculate)
	}
}

// TestSpeculateQueryRejectsNegative pins the 400 path: a negative speculation
// depth is a malformed request, not a clamp-to-zero.
func TestSpeculateQueryRejectsNegative(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := e2eWorkload(t, ts)
	resp := postQuery(t, ts, QueryRequest{Query: q, Engine: "progxe", Workers: 2, Committers: 2, Speculate: -1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative speculate returned %d, want 400", resp.StatusCode)
	}
}

// TestMaxRunSpeculateDisabled verifies that a negative server cap turns the
// knob off entirely: every round drains before its precheck.
func TestMaxRunSpeculateDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRunSpeculate: -1})
	q := e2eWorkload(t, ts)
	resp := postQuery(t, ts, QueryRequest{Query: q, Engine: "progxe", Workers: 2, Committers: 2, Speculate: 8})
	defer resp.Body.Close()
	recs := decodeNDJSON(t, resp.Body)
	if sp, ok := execObj(t, recs[0])["speculate"]; ok && sp != float64(0) {
		t.Fatalf("disabled cap still granted speculate=%v", sp)
	}
	if recs[len(recs)-1]["error"] != nil {
		t.Fatalf("run failed: %v", recs[len(recs)-1])
	}
}
