package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// execObj extracts the nested exec object from a decoded run record. Every
// run record carries one (the ranker field is always set), so a missing or
// mis-typed object is a failure, not an empty map.
func execObj(t *testing.T, run map[string]any) map[string]any {
	t.Helper()
	ex, ok := run["exec"].(map[string]any)
	if !ok {
		t.Fatalf("run record has no exec object: %v", run)
	}
	return ex
}

// TestExecObjectMatchesFlatFields pins the API redesign's compatibility
// contract: the nested exec object and the legacy flat fields are the same
// knobs, resolve through the same clamp rules, and echo identically.
func TestExecObjectMatchesFlatFields(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRunWorkers: 2, MaxRunCommitters: 2, MaxRunSpeculate: 2})
	q := e2eWorkload(t, ts)

	collect := func(req QueryRequest) (run map[string]any, n int) {
		t.Helper()
		resp := postQuery(t, ts, req)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query returned %d", resp.StatusCode)
		}
		recs := decodeNDJSON(t, resp.Body)
		if recs[0]["type"] != "run" {
			t.Fatalf("stream starts with %v", recs[0])
		}
		last := recs[len(recs)-1]
		if last["type"] != "stats" || last["error"] != nil {
			t.Fatalf("stats trailer = %v", last)
		}
		return recs[0], len(recs) - 2
	}

	nested, nn := collect(QueryRequest{Query: q, Engine: "progxe",
		Exec: &ExecRequest{Workers: 64, Committers: 64, Speculate: 64, Ranker: "cardinality"}})
	flat, fn := collect(QueryRequest{Query: q, Engine: "progxe",
		Workers: 64, Committers: 64, Speculate: 64, Ranker: "cardinality"})
	if nn != fn || nn == 0 {
		t.Fatalf("result counts differ: nested %d, flat %d", nn, fn)
	}
	ne, fe := execObj(t, nested), execObj(t, flat)
	for _, k := range []string{"workers", "committers", "speculate", "ranker"} {
		if ne[k] != fe[k] {
			t.Fatalf("exec echo differs at %q: nested %v, flat %v", k, ne[k], fe[k])
		}
	}
	if ne["workers"] != float64(2) || ne["committers"] != float64(2) || ne["speculate"] != float64(2) {
		t.Fatalf("caps not applied to nested exec: %v", ne)
	}
	if ne["ranker"] != "cardinality" {
		t.Fatalf("ranker echo = %v, want cardinality", ne["ranker"])
	}
}

// TestExecConflictRejected pins the anti-merge rule: a request spelling the
// knobs both ways is ambiguous and must 400 with exec_conflict — never
// silently prefer one spelling.
func TestExecConflictRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := e2eWorkload(t, ts)
	resp := postQuery(t, ts, QueryRequest{Query: q, Engine: "progxe",
		Workers: 2, Exec: &ExecRequest{Workers: 4}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("conflicting spellings returned %d, want 400", resp.StatusCode)
	}
	var rec errorRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
	if rec.Type != "error" || rec.Code != errExecConflict || rec.Message == "" {
		t.Fatalf("error body = %+v, want type=error code=exec_conflict", rec)
	}
}

// TestExecNestedValidation drives resolveExec's reject paths through the
// nested spelling: negative committers/speculate and unknown rankers are
// bad_exec, not clamps.
func TestExecNestedValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := e2eWorkload(t, ts)
	for _, ex := range []ExecRequest{
		{Workers: 2, Committers: -1},
		{Workers: 2, Committers: 2, Speculate: -1},
		{Ranker: "nope"},
	} {
		ex := ex
		resp := postQuery(t, ts, QueryRequest{Query: q, Engine: "progxe", Exec: &ex})
		var rec errorRecord
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			t.Fatalf("decoding error body: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || rec.Code != errBadExec {
			t.Fatalf("exec %+v returned %d code %q, want 400 bad_exec", ex, resp.StatusCode, rec.Code)
		}
	}
}
