package server

import (
	"progxe/internal/core"
)

// ExecRequest nests the run-shaping knobs of a query or subscribe request
// under one "exec" object. It is the preferred spelling; the flat top-level
// QueryRequest fields remain accepted for compatibility, but a request that
// sets both the object and any flat knob is rejected (exec_conflict) rather
// than silently merged.
type ExecRequest struct {
	// Workers requests parallel region processing with this many worker
	// goroutines (ProgXe engines only; others ignore it). Parallel runs
	// stream the exact same results in the exact same order as serial ones —
	// this knob trades CPU for latency, never determinism. 0 (the default)
	// runs serial.
	Workers int `json:"workers,omitempty"`
	// Committers requests the partitioned commit stage with this many
	// committer goroutines (effective only with workers ≥ 1). Like workers,
	// it never changes the result stream.
	Committers int `json:"committers,omitempty"`
	// Speculate requests cross-round speculative pipelining up to this many
	// rounds ahead (effective only with workers ≥ 2 and committers ≥ 1).
	Speculate int `json:"speculate,omitempty"`
	// Ranker selects the progressive scheduler's benefit model:
	// "benefit-cost" (the default, Equation 8 with exact ProgCount) or
	// "cardinality" (O(1) refreshes that skip ProgCount).
	Ranker string `json:"ranker,omitempty"`
}

// ExecInfo echoes the exec knobs a run was actually granted, after
// resolveExec's clamping. It appears as the "exec" object in the stream's
// run record and in /v1/runs entries — granted equals effective, so records
// stay honest.
type ExecInfo struct {
	Workers    int    `json:"workers,omitempty"`
	Committers int    `json:"committers,omitempty"`
	Speculate  int    `json:"speculate,omitempty"`
	Ranker     string `json:"ranker,omitempty"`
}

// resolveExec reconciles a request's exec knobs — nested or legacy flat —
// against the server caps. It is the single place clamp-vs-reject semantics
// live:
//
//   - Setting both the "exec" object and any flat knob is rejected
//     (exec_conflict): a silent merge would make one spelling win
//     arbitrarily.
//   - Negative workers clamp to 0 — zero and "no parallelism" coincide, so
//     every negative has a meaningful reading.
//   - Negative committers or speculate are rejected (bad_exec): neither has
//     a meaningful reading below zero.
//   - Values above the server caps (MaxRunWorkers, MaxRunCommitters,
//     MaxRunSpeculate) are clamped, not rejected — parallelism changes
//     latency, never results, so over-asking is harmless.
//   - Committers are zeroed on serial runs and speculation on
//     non-partitioned or single-lane ones: the engine would ignore them.
//   - An unknown ranker is rejected (bad_exec); the echoed ExecInfo always
//     carries the resolved ranker name.
func (s *Server) resolveExec(req *QueryRequest) (ExecInfo, core.RankerKind, *httpError) {
	flat := req.Workers != 0 || req.Committers != 0 || req.Speculate != 0 || req.Ranker != ""
	if req.Exec != nil && flat {
		return ExecInfo{}, 0, httpErrorf(400, errExecConflict,
			"request sets both the exec object and legacy flat exec fields; use one spelling")
	}
	ex := ExecRequest{
		Workers: req.Workers, Committers: req.Committers,
		Speculate: req.Speculate, Ranker: req.Ranker,
	}
	if req.Exec != nil {
		ex = *req.Exec
	}
	if ex.Committers < 0 {
		return ExecInfo{}, 0, httpErrorf(400, errBadExec, "committers must be >= 0, got %d", ex.Committers)
	}
	if ex.Speculate < 0 {
		return ExecInfo{}, 0, httpErrorf(400, errBadExec, "speculate must be >= 0, got %d", ex.Speculate)
	}
	ranker, err := core.ParseRanker(ex.Ranker)
	if err != nil {
		return ExecInfo{}, 0, httpErrorf(400, errBadExec, "%v", err)
	}

	workers := ex.Workers
	if workers < 0 {
		workers = 0
	}
	if workers > s.cfg.MaxRunWorkers {
		workers = s.cfg.MaxRunWorkers
	}
	committers := ex.Committers
	if committers > s.cfg.MaxRunCommitters {
		committers = s.cfg.MaxRunCommitters
	}
	if workers == 0 {
		committers = 0
	}
	speculate := ex.Speculate
	if speculate > s.cfg.MaxRunSpeculate {
		speculate = s.cfg.MaxRunSpeculate
	}
	if committers == 0 || workers < 2 {
		// The engine ignores speculation without a spare precheck lane to
		// run the stale scans on; zeroing here keeps records honest.
		speculate = 0
	}
	return ExecInfo{
		Workers: workers, Committers: committers, Speculate: speculate,
		Ranker: ranker.String(),
	}, ranker, nil
}
