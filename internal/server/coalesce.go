package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"progxe/internal/obs"
	"progxe/internal/smj"
)

// coalesceKey identifies runs whose emission streams are interchangeable:
// same compiled plan (engine, normalized query, relation versions) and same
// run-shaping knobs. The wire format is deliberately absent — records are
// JSON-encoded once per run and framed per subscriber, so NDJSON and SSE
// clients share a group. Trace requests never coalesce (span retention is
// per-run state a shared run cannot attribute to one client).
type coalesceKey struct {
	plan          planKey
	limit         int
	exec          ExecInfo // granted knobs after resolveExec (ranker included)
	timeoutMillis int64
}

// groupRec is one stream record of a coalesced run, JSON-encoded exactly
// once. Every subscriber writes these same bytes, which is what makes the
// byte-identical-streams guarantee trivial to uphold.
type groupRec struct {
	event string
	data  []byte
}

// groupError replaces the stream when run setup fails before the head
// record: every subscriber reports the same HTTP error.
type groupError struct {
	status int
	code   string
	msg    string
}

// runGroup is one single-flight engine run fanned out to N subscribers. The
// run goroutine appends encoded records to a bounded replay ring; each
// subscriber drains it at its own pace under its own write deadline. A
// subscriber that falls off the ring's tail is terminated with a truncated-
// replay error — the engine never waits for a slow client. The run is
// canceled when the last subscriber detaches.
type runGroup struct {
	key coalesceKey

	mu   sync.Mutex
	cond *sync.Cond

	recs   []groupRec // ring: recs[i] is absolute record base+i
	base   int        // absolute index of recs[0]
	total  int        // absolute records appended so far
	maxBuf int

	done   bool
	preErr *groupError
	subs   int // currently attached
	fanout int // ever attached

	cancel  context.CancelFunc // aborts the engine run
	release func()             // admission slot, released once at run end
}

func newRunGroup(key coalesceKey, maxBuf int, release func()) *runGroup {
	g := &runGroup{key: key, maxBuf: maxBuf, release: release}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// append publishes one encoded record, evicting the oldest past the replay
// bound, and wakes every subscriber.
func (g *runGroup) append(event string, data []byte) {
	g.mu.Lock()
	g.recs = append(g.recs, groupRec{event: event, data: data})
	g.total++
	if len(g.recs) > g.maxBuf {
		drop := len(g.recs) - g.maxBuf
		g.recs = append(g.recs[:0], g.recs[drop:]...)
		g.base += drop
	}
	g.mu.Unlock()
	g.cond.Broadcast()
}

// appendJSON marshals and publishes one record; marshal failures drop the
// record (same stance as streamWriter.record: value errors must not kill
// the stream).
func (g *runGroup) appendJSON(event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	g.append(event, b)
}

// failPre resolves the group into an HTTP error before any record was
// published and wakes the subscribers to report it.
func (g *runGroup) failPre(status int, code, msg string) {
	g.mu.Lock()
	g.preErr = &groupError{status: status, code: code, msg: msg}
	g.done = true
	g.mu.Unlock()
	g.cond.Broadcast()
}

// finish marks the stream complete and wakes the subscribers to drain the
// tail.
func (g *runGroup) finish() {
	g.mu.Lock()
	g.done = true
	g.mu.Unlock()
	g.cond.Broadcast()
}

// coalescer deduplicates concurrent identical runs: the first request for a
// key leads (starting the engine run), later ones attach to the in-flight
// group. Groups deregister when their run completes, so sequential repeats
// run independently — coalescing collapses concurrency, the plan cache
// collapses repetition.
type coalescer struct {
	mu     sync.Mutex
	groups map[coalesceKey]*runGroup
	replay int
}

func newCoalescer(replay int) *coalescer {
	return &coalescer{groups: make(map[coalesceKey]*runGroup), replay: replay}
}

// joinOrLead attaches the caller to the in-flight group for key, creating
// one — with the caller as leader, holding a freshly acquired admission
// slot — when none exists. Attaching never consumes an admission slot:
// subscribers cost a replay cursor, not an engine run, which is exactly why
// coalesced bursts larger than MaxConcurrentRuns are not shed. ok=false
// means a would-be leader was rejected by admission (no group was created).
func (co *coalescer) joinOrLead(key coalesceKey, adm *admission, onAttach func()) (g *runGroup, leader, ok bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if g := co.groups[key]; g != nil {
		g.mu.Lock()
		g.subs++
		g.fanout++
		g.mu.Unlock()
		onAttach()
		return g, false, true
	}
	release, ok := adm.tryAcquire()
	if !ok {
		return nil, false, false
	}
	g = newRunGroup(key, co.replay, release)
	g.subs, g.fanout = 1, 1
	co.groups[key] = g
	onAttach()
	return g, true, true
}

// remove deregisters a group (idempotent; only if still current).
func (co *coalescer) remove(g *runGroup) {
	co.mu.Lock()
	if co.groups[g.key] == g {
		delete(co.groups, g.key)
	}
	co.mu.Unlock()
}

// detach drops one subscriber. When the last subscriber of a live run
// leaves, the group deregisters and the engine run is canceled — exactly
// the disconnect semantics an uncoalesced run has, generalized to N
// clients.
func (s *Server) detachGroup(g *runGroup) {
	g.mu.Lock()
	g.subs--
	last := g.subs == 0 && !g.done
	cancel := g.cancel
	g.mu.Unlock()
	if last {
		s.coal.remove(g)
		if cancel != nil {
			cancel()
		}
	}
}

// streamGroup drains the group's record stream to one subscriber: replay
// from its cursor, then live records as the run publishes them. Slow
// clients time out under their own write deadline or fall off the replay
// ring; neither touches the engine run while other subscribers remain.
func (s *Server) streamGroup(w http.ResponseWriter, r *http.Request, g *runGroup, sse bool) {
	defer s.detachGroup(g)

	ctx := r.Context()
	// Cond waits cannot observe context cancellation; a broadcast on
	// disconnect wakes this subscriber (and harmlessly the others) so it
	// can notice its client is gone.
	defer context.AfterFunc(ctx, g.cond.Broadcast)()

	sw := &streamWriter{
		w: w, sse: sse,
		rc:    http.NewResponseController(w),
		stall: s.cfg.WriteStallTimeout,
	}
	sw.f, _ = w.(http.Flusher)
	defer sw.end()

	var (
		began  bool
		cursor int
		batch  []groupRec
	)
	for {
		g.mu.Lock()
		for cursor >= g.total && !g.done && ctx.Err() == nil {
			g.cond.Wait()
		}
		if g.preErr != nil {
			pe := *g.preErr
			g.mu.Unlock()
			writeError(w, pe.status, pe.code, "%s", pe.msg)
			return
		}
		if ctx.Err() != nil {
			g.mu.Unlock()
			return
		}
		if cursor < g.base {
			g.mu.Unlock()
			s.metrics.replayTruncation()
			if began {
				sw.record("error", newErrorRecord(errReplayTruncated,
					"replay buffer truncated: client fell too far behind the shared run"))
			} else {
				writeError(w, http.StatusServiceUnavailable, errReplayTruncated,
					"replay buffer truncated: client fell too far behind the shared run")
			}
			return
		}
		batch = append(batch[:0], g.recs[cursor-g.base:g.total-g.base]...)
		cursor = g.total
		finished := g.done
		g.mu.Unlock()

		if !began {
			sw.begin()
			began = true
		}
		for _, rec := range batch {
			sw.raw(rec.event, rec.data)
			if sw.fail {
				return
			}
		}
		if finished {
			return
		}
	}
}

// runCoalesced executes the group's single engine run, publishing the head,
// result, and stats records to the replay ring. It runs detached from any
// subscriber's request context: its lifetime is bounded by the server's run
// context, the shared timeout, the shared limit, and the last detach.
func (s *Server) runCoalesced(g *runGroup, rs runSpec) {
	defer g.release()
	defer s.coal.remove(g)

	s.metrics.coalescedRunStarted()
	s.metrics.runStarted()
	start := time.Now()
	timeline := obs.NewTimeline(start)
	var (
		seq      int
		ttfr     time.Duration
		limitHit bool
		finished bool
	)
	defer func() {
		if !finished {
			s.metrics.runFinished(runFailed, int64(seq))
			g.finish()
		}
	}()
	sink := smj.SinkFunc(func(res smj.Result) {
		if limitHit {
			return
		}
		timeline.Observe()
		seq++
		if seq == 1 {
			ttfr = time.Since(start)
			s.metrics.observeTTFR(ttfr)
		}
		g.appendJSON("result", resultRecord{
			Type: "result", Seq: seq,
			LeftID: res.LeftID, RightID: res.RightID, Out: res.Out,
			ElapsedMillis: float64(time.Since(start).Microseconds()) / 1000,
		})
		if rs.limit > 0 && seq >= rs.limit {
			limitHit = true
			g.cancel()
		}
	})
	engineStats, runErr := rs.run(sink)
	elapsed := time.Since(start)

	// Deregister before publishing the trailer: once the run is over, a new
	// identical request must lead a fresh run (and count a plan-cache hit),
	// not replay this one's ring. The fanout read below is therefore final.
	s.coal.remove(g)
	g.mu.Lock()
	fanout := g.fanout
	g.mu.Unlock()
	rec := s.finishRun(runResult{
		runID: rs.runID, engineName: rs.engineName, query: rs.query,
		exec:   rs.exec,
		cached: rs.cached, fanout: fanout,
		start: start, elapsed: elapsed, ttfr: ttfr,
		seq: seq, limitHit: limitHit, runErr: runErr,
		progress: timeline.Quantiles(), phases: rs.prof.Report(),
		engineStats: engineStats,
	})
	finished = true
	g.appendJSON("stats", rec)
	g.finish()
}
