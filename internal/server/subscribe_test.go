package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"progxe/internal/feed"
)

// subStream is one open /v1/subscribe connection with its records pumped
// onto a channel, so tests can wait on specific records under a deadline
// instead of blocking on reads.
type subStream struct {
	resp  *http.Response
	lines chan map[string]any
}

func openSubscribe(t *testing.T, ts *httptest.Server, req QueryRequest) *subStream {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/subscribe", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var e errorRecord
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("subscribe: status %d (%+v)", resp.StatusCode, e)
	}
	s := &subStream{resp: resp, lines: make(chan map[string]any, 1024)}
	t.Cleanup(func() { resp.Body.Close() })
	go func() {
		defer close(s.lines)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var m map[string]any
			if json.Unmarshal(line, &m) == nil {
				s.lines <- m
			}
		}
	}()
	return s
}

// next returns the stream's next record, or nil on EOF; it fails the test
// rather than hanging when nothing arrives.
func (s *subStream) next(t *testing.T) map[string]any {
	t.Helper()
	select {
	case m, ok := <-s.lines:
		if !ok {
			return nil
		}
		return m
	case <-time.After(15 * time.Second):
		t.Fatalf("timed out waiting for a subscription record")
		return nil
	}
}

type pair struct{ l, r int64 }

// drainTo reads records into the net result set until a checkpoint at or
// past seq arrives, returning that checkpoint.
func (s *subStream) drainTo(t *testing.T, seq uint64, net map[pair]bool) map[string]any {
	t.Helper()
	for {
		rec := s.next(t)
		if rec == nil {
			t.Fatalf("stream ended before checkpoint %d", seq)
		}
		switch rec["type"] {
		case "result":
			net[pair{int64(rec["leftId"].(float64)), int64(rec["rightId"].(float64))}] = true
		case "retract":
			delete(net, pair{int64(rec["leftId"].(float64)), int64(rec["rightId"].(float64))})
		case "checkpoint":
			if uint64(rec["seq"].(float64)) >= seq {
				return rec
			}
		case "error":
			t.Fatalf("stream errored before checkpoint %d: %v", seq, rec)
		}
	}
}

// postChanges applies a batch of changes through the feed endpoint.
func postChanges(t *testing.T, ts *httptest.Server, name string, changes []feed.Change) ChangesResponse {
	t.Helper()
	var body bytes.Buffer
	for _, c := range changes {
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		body.Write(b)
		body.WriteByte('\n')
	}
	resp, err := http.Post(ts.URL+"/v1/relations/"+name+"/changes", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorRecord
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("changes: status %d (%+v)", resp.StatusCode, e)
	}
	var cr ChangesResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

// queryPairs runs a fresh one-shot query and returns its result-pair set —
// the oracle a live subscription's net set is compared against.
func queryPairs(t *testing.T, ts *httptest.Server, q string) map[pair]bool {
	t.Helper()
	resp := postQuery(t, ts, QueryRequest{Query: q, Engine: "progxe"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oracle query: status %d", resp.StatusCode)
	}
	recs := decodeNDJSON(t, resp.Body)
	last := recs[len(recs)-1]
	if last["type"] != "stats" || last["error"] != nil {
		t.Fatalf("oracle stats trailer = %v", last)
	}
	out := map[pair]bool{}
	for _, rec := range recs[1 : len(recs)-1] {
		out[pair{int64(rec["leftId"].(float64)), int64(rec["rightId"].(float64))}] = true
	}
	return out
}

// TestSubscribeDifferential is the tentpole's end-to-end pin: a live
// subscription's net result set — initial snapshot plus every result/retract
// up to a checkpoint — must equal a fresh engine run over the then-current
// catalog snapshot, after every prefix of a randomized insert/delete stream.
func TestSubscribeDifferential(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sub := openSubscribe(t, ts, QueryRequest{Query: tinyQuery})

	run := sub.next(t)
	if run["type"] != "run" || run["engine"] != "live" {
		t.Fatalf("head record = %v", run)
	}
	if ex := execObj(t, run); ex["workers"] != nil {
		t.Fatalf("live run granted workers: %v", ex)
	}

	net := map[pair]bool{}
	cp := sub.drainTo(t, 0, net) // snapshot checkpoint: seq = max side version
	if want := queryPairs(t, ts, tinyQuery); len(net) != len(want) {
		t.Fatalf("snapshot net set has %d pairs, oracle %d", len(net), len(want))
	}
	_ = cp

	// Mirror of the catalog contents, for generating valid deletes.
	ids := map[string][]int64{"L": {1, 2, 3}, "R": {1, 2, 3}}
	rng := rand.New(rand.NewPCG(42, 7))
	nextID := int64(100)

	for round := 0; round < 12; round++ {
		rel := []string{"L", "R"}[rng.IntN(2)]
		var batch []feed.Change
		for n := 1 + rng.IntN(3); n > 0; n-- {
			if rng.Float64() < 0.4 && len(ids[rel]) > 1 {
				i := rng.IntN(len(ids[rel]))
				batch = append(batch, feed.Change{Relation: rel, Op: feed.OpDelete, ID: ids[rel][i]})
				ids[rel] = append(ids[rel][:i], ids[rel][i+1:]...)
			} else {
				c := feed.Change{
					Relation: rel, Op: feed.OpInsert, ID: nextID,
					Vals:    []float64{float64(rng.IntN(25)), float64(rng.IntN(10))},
					JoinKey: int64(1 + rng.IntN(2)),
				}
				nextID++
				batch = append(batch, c)
				ids[rel] = append(ids[rel], c.ID)
			}
		}
		cr := postChanges(t, ts, rel, batch)
		if cr.Applied != len(batch) {
			t.Fatalf("round %d: applied %d of %d changes", round, cr.Applied, len(batch))
		}
		cp := sub.drainTo(t, cr.LastSeq, net)
		if live := int(cp["live"].(float64)); live != len(net) {
			t.Fatalf("round %d: checkpoint live=%d, client net set %d", round, live, len(net))
		}
		want := queryPairs(t, ts, tinyQuery)
		if len(want) != len(net) {
			t.Fatalf("round %d: net set %v, oracle %v", round, net, want)
		}
		for p := range want {
			if !net[p] {
				t.Fatalf("round %d: oracle pair %v missing from net set", round, p)
			}
		}
	}
}

// TestSubscribeRelationDropTerminates pins the catalog-mutation race: a
// DELETE of a subscribed relation must terminate the stream with a
// relation_dropped error record — not hang it, and not leave it serving a
// stale snapshot.
func TestSubscribeRelationDropTerminates(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	sub := openSubscribe(t, ts, QueryRequest{Query: tinyQuery})
	net := map[pair]bool{}
	if run := sub.next(t); run["type"] != "run" {
		t.Fatalf("head record = %v", run)
	}
	sub.drainTo(t, 0, net)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/relations/R", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}

	for {
		rec := sub.next(t)
		if rec == nil {
			t.Fatalf("stream ended without a terminal error record")
		}
		if rec["type"] != "error" {
			continue
		}
		if rec["code"] != errRelationDropped || rec["message"] == "" {
			t.Fatalf("terminal record = %v, want code relation_dropped", rec)
		}
		break
	}
	if rec := sub.next(t); rec != nil {
		t.Fatalf("stream kept going after the terminal error: %v", rec)
	}
	// The run log records the subscription as failed, with the live engine.
	deadline := time.Now().Add(5 * time.Second)
	for {
		recs := srv.runlog.list()
		if len(recs) > 0 && recs[0].Engine == "live" && recs[0].Outcome == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no failed live run record: %+v", recs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubscribeSurvivesUnrelatedMutations pins the other half of the race:
// catalog version bumps on relations the subscription does not read must not
// evict its resident state or terminate it — and a wholesale replacement of
// a subscribed relation must.
func TestSubscribeSurvivesUnrelatedMutations(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sub := openSubscribe(t, ts, QueryRequest{Query: tinyQuery})
	net := map[pair]bool{}
	if run := sub.next(t); run["type"] != "run" {
		t.Fatalf("head record = %v", run)
	}
	sub.drainTo(t, 0, net)

	// Register and then replace an unrelated relation: two version bumps,
	// one replaced event — none of it for L or R.
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/relations/X",
			bytes.NewReader([]byte(tinyLeftCSV)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload X: status %d", resp.StatusCode)
		}
	}

	// The subscription must still be live and still maintaining: an insert
	// into L flows through to a checkpoint, proving the resident state was
	// not evicted by the unrelated version bumps.
	cr := postChanges(t, ts, "L", []feed.Change{
		{Relation: "L", Op: feed.OpInsert, ID: 500, Vals: []float64{1, 1}, JoinKey: 1},
	})
	sub.drainTo(t, cr.LastSeq, net)
	if want := queryPairs(t, ts, tinyQuery); len(want) != len(net) {
		t.Fatalf("after unrelated mutations: net set %d pairs, oracle %d", len(net), len(want))
	}

	// Replacing a subscribed relation wholesale diverges the snapshot beyond
	// incremental repair: the stream must terminate with relation_replaced.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/relations/L",
		bytes.NewReader([]byte(tinyLeftCSV)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for {
		rec := sub.next(t)
		if rec == nil {
			t.Fatalf("stream ended without a terminal error record")
		}
		if rec["type"] == "error" {
			if rec["code"] != errRelationReplaced {
				t.Fatalf("terminal record = %v, want code relation_replaced", rec)
			}
			break
		}
	}
}

// TestSubscribeValidation covers the subscribe-specific reject paths and the
// feed endpoint's error mapping.
func TestSubscribeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post := func(req QueryRequest) (int, errorRecord) {
		t.Helper()
		b, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/subscribe", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e errorRecord
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e
	}
	for _, c := range []struct {
		name string
		req  QueryRequest
		code string
	}{
		{"trace", QueryRequest{Query: tinyQuery, Trace: true}, errBadRequest},
		{"limit", QueryRequest{Query: tinyQuery, Limit: 5}, errBadRequest},
		{"engine", QueryRequest{Query: tinyQuery, Engine: "progxe"}, errUnknownEngine},
		{"missing relation", QueryRequest{Query: `SELECT (A.x + B.y) AS s FROM Nope A, R B WHERE A.k = B.k PREFERRING LOWEST(s)`}, errRelationNotFound},
	} {
		status, e := post(c.req)
		if status/100 != 4 || e.Code != c.code {
			t.Fatalf("%s: status %d code %q, want 4xx %q", c.name, status, e.Code, c.code)
		}
	}

	// Feed endpoint validation: bad line, wrong relation, unknown id.
	for _, c := range []struct {
		name, body, code string
		status           int
	}{
		{"bad line", "nonsense\n", errBadChange, http.StatusBadRequest},
		{"wrong relation", `{"op":"insert","relation":"R","id":9,"vals":[1,2],"joinKey":1}` + "\n", errBadChange, http.StatusBadRequest},
		{"unknown id", `{"op":"delete","id":999}` + "\n", errBadChange, http.StatusBadRequest},
		{"unknown relation", "", errRelationNotFound, http.StatusNotFound},
	} {
		path := "/v1/relations/L/changes"
		body := c.body
		if c.name == "unknown relation" {
			path = "/v1/relations/Nope/changes"
			body = `{"op":"insert","id":1,"vals":[1,2],"joinKey":1}` + "\n"
		}
		resp, err := http.Post(ts.URL+path, "application/x-ndjson", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		var e errorRecord
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != c.status || e.Type != "error" || e.Code != c.code {
			t.Fatalf("%s: status %d envelope %+v, want %d %q", c.name, resp.StatusCode, e, c.status, c.code)
		}
	}
}

// TestSubscribeMetrics checks the subscription counters move: live gauges up
// while attached and down after detach, changes and retractions accumulate.
func TestSubscribeMetrics(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	sub := openSubscribe(t, ts, QueryRequest{Query: tinyQuery})
	net := map[pair]bool{}
	if run := sub.next(t); run["type"] != "run" {
		t.Fatalf("head record = %v", run)
	}
	sub.drainTo(t, 0, net)
	if st := srv.Stats(); st.SubscriptionsLive != 1 || st.SubscriptionsStarted != 1 {
		t.Fatalf("live=%d started=%d, want 1/1", st.SubscriptionsLive, st.SubscriptionsStarted)
	}

	// A dominating insert retracts everything it beats.
	cr := postChanges(t, ts, "L", []feed.Change{
		{Relation: "L", Op: feed.OpInsert, ID: 900, Vals: []float64{0, 0}, JoinKey: 1},
	})
	sub.drainTo(t, cr.LastSeq, net)

	sub.resp.Body.Close() // client detaches
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if st.SubscriptionsLive == 0 {
			if st.SubscriptionChangesApplied < 1 {
				t.Fatalf("changesApplied = %d, want >= 1", st.SubscriptionChangesApplied)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscription never detached: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
