package server

import (
	"fmt"
	"net/http"
)

// Stable error codes. Every error the service produces — HTTP error bodies
// and in-stream terminal error records alike — carries exactly one of these
// slugs, so clients can branch on "code" instead of parsing prose. The
// message is advisory and may change; the code is the contract.
const (
	// errBadRequest: the request body or its fields are malformed.
	errBadRequest = "bad_request"
	// errBadFormat: the "format" field names neither ndjson nor sse.
	errBadFormat = "bad_format"
	// errBadQuery: the query text failed to parse or compile.
	errBadQuery = "bad_query"
	// errUnknownEngine: the "engine" field names no registered engine.
	errUnknownEngine = "unknown_engine"
	// errBadExec: an exec knob is out of range (negative committers or
	// speculate, unknown ranker).
	errBadExec = "bad_exec"
	// errExecConflict: the request sets both the nested "exec" object and a
	// legacy flat knob.
	errExecConflict = "exec_conflict"
	// errRelationNotFound: a named relation is not in the catalog.
	errRelationNotFound = "relation_not_found"
	// errBadRelation: a relation upload, generate spec, or name is invalid.
	errBadRelation = "bad_relation"
	// errCatalogFull: registration would exceed a catalog resource cap.
	errCatalogFull = "catalog_full"
	// errRunNotFound: the run id is not in the run log.
	errRunNotFound = "run_not_found"
	// errTraceNotFound: the run has no stored trace document.
	errTraceNotFound = "trace_not_found"
	// errBusy: admission control shed the request; retry shortly.
	errBusy = "busy"
	// errUnavailable: run setup was aborted by shutdown or timeout.
	errUnavailable = "unavailable"
	// errReplayTruncated: the client fell behind a bounded replay ring
	// (coalesced run or subscription change feed).
	errReplayTruncated = "replay_truncated"
	// errRelationDropped: a subscribed relation was deleted mid-stream.
	errRelationDropped = "relation_dropped"
	// errRelationReplaced: a subscribed relation was replaced wholesale
	// (upload/generate), invalidating the subscription's snapshot.
	errRelationReplaced = "relation_replaced"
	// errBadChange: a change-feed entry failed validation (arity, non-finite
	// value, duplicate insert id, delete of a missing id, wrong relation).
	errBadChange = "bad_change"
	// errInternal: unexpected server-side failure.
	errInternal = "internal"
)

// errorRecord is the one structured error shape: HTTP error bodies and
// in-stream terminal error records are both exactly this JSON object.
type errorRecord struct {
	Type    string `json:"type"` // "error"
	Code    string `json:"code"`
	Message string `json:"message"`
}

// newErrorRecord builds the shared error shape.
func newErrorRecord(code, format string, args ...any) errorRecord {
	return errorRecord{Type: "error", Code: code, Message: fmt.Sprintf(format, args...)}
}

// writeError writes the structured error envelope as an HTTP response.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, newErrorRecord(code, format, args...))
}

// httpError is an error annotated with the HTTP status and stable code it
// should surface as; ApplyChange returns these so both the HTTP handler and
// programmatic callers see one classification.
type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, code, format string, args ...any) *httpError {
	return &httpError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}
