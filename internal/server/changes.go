package server

import (
	"bufio"
	"bytes"
	"errors"
	"math"
	"net/http"
	"sync"

	"progxe/internal/feed"
	"progxe/internal/relation"
)

// eventKind classifies one catalog event on the change ring.
type eventKind int8

const (
	// eventChange is a single-tuple insert or delete applied through the
	// change feed; subscriptions fold it into their resident output space.
	eventChange eventKind = iota
	// eventDropped is a wholesale DELETE of a relation; subscriptions on it
	// terminate with relation_dropped.
	eventDropped
	// eventReplaced is a wholesale re-registration (upload/generate) of an
	// existing name; subscriptions on it terminate with relation_replaced —
	// their snapshot has diverged beyond incremental repair.
	eventReplaced
)

// catalogEvent is one entry of the server-wide change ring. seq is the
// catalog generation assigned to the mutation, so event order, catalog
// versions, and plan-cache invalidation all advance on one counter.
type catalogEvent struct {
	seq      uint64
	relation string
	kind     eventKind
	change   feed.Change // valid for eventChange
}

// changeLog is the bounded ring of recent catalog events that live
// subscriptions replay. Same discipline as the coalescer's replay ring: the
// writer never waits for a reader; a subscription that falls off the tail is
// terminated with replay_truncated instead of stalling the feed.
type changeLog struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ring  []catalogEvent
	base  uint64 // absolute index of ring[0]
	total uint64 // absolute events appended so far
	max   int
}

func newChangeLog(max int) *changeLog {
	l := &changeLog{max: max}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// append publishes one event, evicting the oldest past the ring bound, and
// wakes every waiting subscription.
func (l *changeLog) append(ev catalogEvent) {
	l.mu.Lock()
	l.ring = append(l.ring, ev)
	l.total++
	if len(l.ring) > l.max {
		drop := len(l.ring) - l.max
		l.ring = append(l.ring[:0], l.ring[drop:]...)
		l.base += uint64(drop)
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// cursor returns the absolute index one past the newest event: a
// subscription starting here sees exactly the events published after the
// call.
func (l *changeLog) cursor() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// next blocks until events past cursor exist (or wake() is triggered by the
// caller's context), then returns a copy of them and the advanced cursor.
// truncated reports that cursor has fallen off the ring's tail; the batch is
// empty in that case.
func (l *changeLog) next(cursor uint64, stop func() bool) (batch []catalogEvent, nextCursor uint64, truncated bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for cursor >= l.total && !stop() {
		l.cond.Wait()
	}
	if cursor < l.base {
		return nil, cursor, true
	}
	if cursor >= l.total {
		return nil, cursor, false // stopped
	}
	batch = append(batch, l.ring[cursor-l.base:l.total-l.base]...)
	return batch, l.total, false
}

// wake broadcasts the ring's condition so parked subscriptions re-check
// their stop condition; wired to context cancellation via context.AfterFunc.
func (l *changeLog) wake() { l.cond.Broadcast() }

// ApplyChange validates and applies one change-feed mutation to the catalog:
// the named relation is replaced by a snapshot with the tuple inserted or
// deleted, the catalog version advances (invalidating cached plans by key
// miss, exactly like an upload), and the stamped change — Seq set to the new
// catalog generation — is published to live subscriptions. Returns the
// stamped change.
//
// Mutations are serialized (one writer at a time), so the change ring's
// event order matches the sequence of catalog states.
func (s *Server) ApplyChange(c feed.Change) (feed.Change, error) {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	rel, ok := s.catalog.Get(c.Relation)
	if !ok {
		return feed.Change{}, httpErrorf(http.StatusNotFound, errRelationNotFound,
			"relation %q is not in the catalog", c.Relation)
	}
	next := relation.New(rel.Schema)
	switch c.Op {
	case feed.OpInsert:
		if len(c.Vals) != rel.Schema.Arity() {
			return feed.Change{}, httpErrorf(http.StatusBadRequest, errBadChange,
				"insert into %q has %d values, schema has %d", c.Relation, len(c.Vals), rel.Schema.Arity())
		}
		for i, v := range c.Vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return feed.Change{}, httpErrorf(http.StatusBadRequest, errBadChange,
					"insert into %q: value %d is not finite", c.Relation, i)
			}
		}
		for _, t := range rel.Tuples {
			if t.ID == c.ID {
				return feed.Change{}, httpErrorf(http.StatusBadRequest, errBadChange,
					"insert into %q: id %d already exists", c.Relation, c.ID)
			}
		}
		next.Tuples = make([]relation.Tuple, len(rel.Tuples), len(rel.Tuples)+1)
		copy(next.Tuples, rel.Tuples)
		next.Tuples = append(next.Tuples, relation.Tuple{
			ID: c.ID, Vals: append([]float64(nil), c.Vals...), JoinKey: c.JoinKey,
		})
	case feed.OpDelete:
		found := false
		next.Tuples = make([]relation.Tuple, 0, len(rel.Tuples))
		for _, t := range rel.Tuples {
			if t.ID == c.ID {
				found = true
				continue
			}
			next.Tuples = append(next.Tuples, t)
		}
		if !found {
			return feed.Change{}, httpErrorf(http.StatusBadRequest, errBadChange,
				"delete from %q: id %d does not exist", c.Relation, c.ID)
		}
	default:
		return feed.Change{}, httpErrorf(http.StatusBadRequest, errBadChange, "unknown op %d", c.Op)
	}
	ver, _, err := s.catalog.RegisterCappedVersioned(next, s.cfg.MaxRelations, s.cfg.MaxTotalRows)
	switch {
	case err == nil:
	case errors.As(err, &ErrCatalogFull{}):
		return feed.Change{}, httpErrorf(http.StatusConflict, errCatalogFull, "%v", err)
	default:
		return feed.Change{}, httpErrorf(http.StatusBadRequest, errBadChange, "%v", err)
	}
	c.Seq = ver
	s.changes.append(catalogEvent{seq: ver, relation: c.Relation, kind: eventChange, change: c})
	s.metrics.subChangesApplied(1)
	return c, nil
}

// publishCatalogEvent records a wholesale catalog mutation (drop or replace)
// on the change ring so live subscriptions on the relation terminate
// deterministically instead of serving a stale snapshot.
func (s *Server) publishCatalogEvent(seq uint64, name string, kind eventKind) {
	s.changes.append(catalogEvent{seq: seq, relation: name, kind: kind})
}

// ChangesResponse is the body of a successful POST /v1/relations/{name}/changes.
type ChangesResponse struct {
	// Applied counts the change lines folded into the catalog.
	Applied int `json:"applied"`
	// LastSeq is the catalog sequence of the final applied change; a
	// subscription checkpoint at or past it has folded the whole batch in.
	LastSeq uint64 `json:"lastSeq"`
}

// handleApplyChanges is POST /v1/relations/{name}/changes: a batch of change
// lines (NDJSON or CSV, one change per line, the feed connector wire format)
// applied in order to the named relation. Lines naming a different relation
// are rejected; lines naming none inherit the path's. Application stops at
// the first invalid line — earlier lines stay applied, and the error message
// reports how many were.
func (s *Server) handleApplyChanges(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	applied, lastSeq, lineNo := 0, uint64(0), 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		c, err := feed.ParseLine(string(line))
		if err != nil {
			writeError(w, http.StatusBadRequest, errBadChange,
				"line %d: %v (%d changes already applied)", lineNo, err, applied)
			return
		}
		if c.Relation == "" {
			c.Relation = name
		}
		if c.Relation != name {
			writeError(w, http.StatusBadRequest, errBadChange,
				"line %d names relation %q, path names %q (%d changes already applied)",
				lineNo, c.Relation, name, applied)
			return
		}
		stamped, err := s.ApplyChange(c)
		if err != nil {
			var he *httpError
			if errors.As(err, &he) {
				writeError(w, he.status, he.code, "line %d: %s (%d changes already applied)", lineNo, he.msg, applied)
			} else {
				writeError(w, http.StatusInternalServerError, errInternal, "line %d: %v", lineNo, err)
			}
			return
		}
		applied++
		lastSeq = stamped.Seq
	}
	if err := sc.Err(); err != nil {
		writeError(w, http.StatusBadRequest, errBadChange, "reading change batch: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ChangesResponse{Applied: applied, LastSeq: lastSeq})
}
