package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"progxe/internal/core"
	"progxe/internal/smj"
)

// decodeNDJSON reads a whole NDJSON stream into generic records.
func decodeNDJSON(t *testing.T, r io.Reader) []map[string]any {
	t.Helper()
	var recs []map[string]any
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		recs = append(recs, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty stream")
	}
	return recs
}

// readRecord reads one NDJSON record from a live stream.
func readRecord(t *testing.T, br *bufio.Reader) map[string]any {
	t.Helper()
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading stream: %v (got %q)", err, line)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("bad record %q: %v", line, err)
	}
	return m
}

// TestNDJSONStreamsBeforeRunCompletes pins the streaming order without any
// timing assumptions: the client observes the first result while the engine
// run is provably still blocked inside the server.
func TestNDJSONStreamsBeforeRunCompletes(t *testing.T) {
	g := newGatedEngine()
	srv, ts := newTestServer(t, Config{
		NewEngine: func(string, core.Options) (smj.Engine, error) { return g, nil },
	})
	resp := postQuery(t, ts, QueryRequest{Query: tinyQuery})
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	run := readRecord(t, br)
	if run["type"] != "run" || run["engine"] != "gated" {
		t.Fatalf("first record = %v", run)
	}
	first := readRecord(t, br)
	if first["type"] != "result" || first["seq"] != float64(1) || first["leftId"] != float64(10) {
		t.Fatalf("second record = %v", first)
	}
	// The first result is in hand while the run is still executing.
	if st := srv.Stats(); st.RunsActive != 1 {
		t.Fatalf("runsActive = %d while holding the first result, want 1", st.RunsActive)
	}

	close(g.proceed)
	second := readRecord(t, br)
	if second["type"] != "result" || second["seq"] != float64(2) {
		t.Fatalf("third record = %v", second)
	}
	stats := readRecord(t, br)
	if stats["type"] != "stats" || stats["canceled"] == true {
		t.Fatalf("trailing record = %v", stats)
	}
	if _, err := br.ReadString('\n'); err != io.EOF {
		t.Fatalf("stream not terminated after stats record: %v", err)
	}
}

// TestExplicitFormatBeatsAcceptHeader pins the negotiation precedence: a
// body asking for NDJSON stays NDJSON even when the client's HTTP stack
// volunteers an SSE Accept header.
func TestExplicitFormatBeatsAcceptHeader(t *testing.T) {
	g := newGatedEngine()
	close(g.proceed)
	_, ts := newTestServer(t, Config{
		NewEngine: func(string, core.Options) (smj.Engine, error) { return g, nil },
	})
	b, _ := json.Marshal(QueryRequest{Query: tinyQuery, Format: "ndjson"})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, explicit ndjson must win over Accept", ct)
	}
	decodeNDJSON(t, resp.Body)
}

// TestSSEStreaming verifies the Server-Sent Events framing end to end.
func TestSSEStreaming(t *testing.T) {
	g := newGatedEngine()
	close(g.proceed) // run straight through
	_, ts := newTestServer(t, Config{
		NewEngine: func(string, core.Options) (smj.Engine, error) { return g, nil },
	})
	resp := postQuery(t, ts, QueryRequest{Query: tinyQuery, Format: "sse"})
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	type frame struct {
		event string
		data  map[string]any
	}
	var frames []frame
	var cur frame
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		case line == "":
			frames = append(frames, cur)
			cur = frame{}
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("got %d frames, want run + 2 results + stats", len(frames))
	}
	wantEvents := []string{"run", "result", "result", "stats"}
	for i, f := range frames {
		if f.event != wantEvents[i] || f.data["type"] != wantEvents[i] {
			t.Fatalf("frame %d = %q %v, want %q", i, f.event, f.data, wantEvents[i])
		}
	}
	if frames[1].data["seq"] != float64(1) || frames[2].data["seq"] != float64(2) {
		t.Fatalf("result frames out of order: %v", frames)
	}
}

// TestClientDisconnectCancelsRun proves the tentpole cancellation property
// deterministically: the client walks away mid-stream and the blocked engine
// run is aborted through its context, observable in the service stats.
func TestClientDisconnectCancelsRun(t *testing.T) {
	g := newGatedEngine()
	srv, ts := newTestServer(t, Config{
		NewEngine: func(string, core.Options) (smj.Engine, error) { return g, nil },
	})
	resp := postQuery(t, ts, QueryRequest{Query: tinyQuery})
	br := bufio.NewReader(resp.Body)
	readRecord(t, br) // run record
	readRecord(t, br) // first result; the engine is now blocked on proceed
	resp.Body.Close() // disconnect — never close g.proceed

	st := waitForStats(t, srv, "disconnect cancellation", func(s Snapshot) bool {
		return s.RunsCanceled == 1 && s.RunsActive == 0
	})
	if st.RunsCompleted != 0 || st.RunsFailed != 0 {
		t.Fatalf("stats after disconnect = %+v", st)
	}
}

// TestCancelRunsAbortsInFlightStreams covers graceful shutdown: CancelRuns
// must abort a blocked engine run, letting the stream finish with a
// canceled stats trailer instead of waiting out its timeout.
func TestCancelRunsAbortsInFlightStreams(t *testing.T) {
	g := newGatedEngine()
	srv, ts := newTestServer(t, Config{
		NewEngine: func(string, core.Options) (smj.Engine, error) { return g, nil },
	})
	resp := postQuery(t, ts, QueryRequest{Query: tinyQuery})
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	readRecord(t, br) // run record
	readRecord(t, br) // first result; the engine now blocks on proceed

	srv.CancelRuns()
	stats := readRecord(t, br)
	if stats["type"] != "stats" || stats["canceled"] != true || stats["reason"] != "shutdown" {
		t.Fatalf("post-shutdown record = %v", stats)
	}
	if _, err := br.ReadString('\n'); err != io.EOF {
		t.Fatalf("stream not terminated: %v", err)
	}
	if st := srv.Stats(); st.RunsCanceled != 1 || st.RunsActive != 0 {
		t.Fatalf("stats after CancelRuns = %+v", st)
	}
}

// spinEngine emits results as fast as possible until its context is done —
// an adversarial producer for write-path tests.
type spinEngine struct{}

func (spinEngine) Name() string { return "spin" }

func (e spinEngine) Run(p *smj.Problem, sink smj.Sink) (smj.Stats, error) {
	return e.RunContext(context.Background(), p, sink)
}

func (spinEngine) RunContext(ctx context.Context, p *smj.Problem, sink smj.Sink) (smj.Stats, error) {
	for i := 0; ; i++ {
		if err := ctx.Err(); err != nil {
			return smj.Stats{}, err
		}
		sink.Emit(smj.Result{LeftID: int64(i), Out: []float64{0, 0}})
	}
}

// TestStalledClientCancelsRun covers the slow-loris streaming case: a
// client that stays connected but stops reading. Once the socket buffers
// fill, the rolling write deadline fails the blocked record write, which
// cancels the run and frees its admission slot.
func TestStalledClientCancelsRun(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		WriteStallTimeout: 200 * time.Millisecond,
		NewEngine:         func(string, core.Options) (smj.Engine, error) { return spinEngine{}, nil },
	})
	body, _ := json.Marshal(QueryRequest{Query: tinyQuery})
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/query HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		len(body), body)
	// Read just the status line, then stall — never read again, never close.
	if _, err := bufio.NewReaderSize(conn, 64).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	waitForStats(t, srv, "stalled-client cancellation", func(s Snapshot) bool {
		return s.RunsCanceled == 1 && s.RunsActive == 0
	})
}

// TestQueryLimitTruncatesRun verifies that a result limit cancels the rest
// of the run and is reported as such. The gated engine pins the order: it
// would block forever after its first result, so the stream can only
// terminate through the limit-triggered cancellation.
func TestQueryLimitTruncatesRun(t *testing.T) {
	g := newGatedEngine()
	srv, ts := newTestServer(t, Config{
		NewEngine: func(string, core.Options) (smj.Engine, error) { return g, nil },
	})
	resp := postQuery(t, ts, QueryRequest{Query: tinyQuery, Limit: 1})
	defer resp.Body.Close()
	recs := decodeNDJSON(t, resp.Body)
	nResults := 0
	for _, r := range recs {
		if r["type"] == "result" {
			nResults++
		}
	}
	last := recs[len(recs)-1]
	if nResults != 1 || last["type"] != "stats" {
		t.Fatalf("limit=1 stream:\n%s", fmtRecords(recs))
	}
	if last["canceled"] != true || last["reason"] != "limit" {
		t.Fatalf("stats record = %v", last)
	}
	waitForStats(t, srv, "limit cancel accounting", func(s Snapshot) bool {
		return s.RunsCanceled == 1 && s.ResultsStreamed == 1
	})
}

// e2eWorkload registers, via the HTTP API, a generated two-source workload
// heavy enough that a ProgXe run takes much longer than one client
// round-trip, and returns the matching query.
func e2eWorkload(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	for _, spec := range []string{
		`{"name":"R","rows":5000,"dims":3,"distribution":"anti-correlated","selectivity":0.02,"seed":11}`,
		`{"name":"T","rows":5000,"dims":3,"distribution":"anti-correlated","selectivity":0.02,"seed":12}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/relations", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("generate: status %d", resp.StatusCode)
		}
	}
	return `SELECT (R.a0 + T.a0) AS x, (R.a1 + T.a1) AS y, (R.a2 + T.a2) AS z
		FROM R R, T T WHERE R.jkey = T.jkey
		PREFERRING LOWEST(x) AND LOWEST(y) AND LOWEST(z)`
}

// TestEndToEndProgressiveHTTP is the acceptance test for the subsystem: with
// the real ProgXe engine on a generated workload, the client receives the
// first NDJSON result while the engine run is still active (progressiveness
// as an end-to-end property), and the completed stream carries the full
// result set plus a trailing stats record.
func TestEndToEndProgressiveHTTP(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	q := e2eWorkload(t, ts)

	resp := postQuery(t, ts, QueryRequest{Query: q, Engine: "progxe"})
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)

	run := readRecord(t, br)
	if run["type"] != "run" || run["engine"] != "ProgXe" {
		t.Fatalf("run record = %v", run)
	}
	first := readRecord(t, br)
	if first["type"] != "result" || first["seq"] != float64(1) {
		t.Fatalf("first streamed record = %v", first)
	}
	// The client holds the first result; the engine must still be running.
	if st := srv.Stats(); st.RunsActive != 1 {
		t.Fatalf("runsActive = %d after first result, want 1 (run already over?)", st.RunsActive)
	}

	// Drain the rest: monotonically increasing seq, then the stats trailer.
	results := 1
	var last map[string]any
	for {
		rec := readRecord(t, br)
		if rec["type"] == "stats" {
			last = rec
			break
		}
		results++
		if rec["seq"] != float64(results) {
			t.Fatalf("result %d has seq %v", results, rec["seq"])
		}
	}
	if last["canceled"] == true || last["error"] != nil {
		t.Fatalf("stats trailer = %v", last)
	}
	if float64(results) != last["results"].(float64) || results < 10 {
		t.Fatalf("drained %d results, trailer says %v", results, last["results"])
	}
	es := last["engineStats"].(map[string]any)
	if es["JoinResults"].(float64) <= 0 {
		t.Fatalf("engine stats missing join work: %v", es)
	}
	// Server-side timestamps agree: the first result left long before the
	// run finished.
	if first["elapsedMillis"].(float64) >= last["elapsedMillis"].(float64) {
		t.Fatalf("first result at %vms, run ended at %vms", first["elapsedMillis"], last["elapsedMillis"])
	}

	waitForStats(t, srv, "run completion", func(s Snapshot) bool {
		return s.RunsActive == 0 && s.RunsCompleted == 1 && s.ResultsStreamed == int64(results)
	})
}

// TestEndToEndDisconnectCancelsRealRun closes the acceptance loop on
// cancellation with the real engine: dropping the connection mid-stream
// aborts the ProgXe run, observable via the stats endpoint.
func TestEndToEndDisconnectCancelsRealRun(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	q := e2eWorkload(t, ts)

	resp := postQuery(t, ts, QueryRequest{Query: q, Engine: "progxe"})
	br := bufio.NewReader(resp.Body)
	readRecord(t, br) // run record
	rec := readRecord(t, br)
	if rec["type"] != "result" {
		t.Fatalf("expected a result before disconnecting, got %v", rec)
	}
	resp.Body.Close()

	waitForStats(t, srv, "real-engine disconnect cancellation", func(s Snapshot) bool {
		return s.RunsCanceled == 1 && s.RunsActive == 0
	})
}
