package server

import (
	"fmt"
	"net/http"
	"sort"
	"testing"
)

// TestRankerQueryField drives the per-request ranker knob end to end: a
// cardinality-ranker run must be accepted, echo the annotated engine name in
// its run record, and stream the same final result set as the default
// benefit-cost run (the ranker reorders the schedule, never the answer);
// an unknown ranker must be rejected before admission.
func TestRankerQueryField(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := e2eWorkload(t, ts)

	collect := func(req QueryRequest) (run map[string]any, results []string) {
		t.Helper()
		resp := postQuery(t, ts, req)
		defer resp.Body.Close()
		recs := decodeNDJSON(t, resp.Body)
		if recs[0]["type"] != "run" {
			t.Fatalf("stream starts with %v", recs[0])
		}
		last := recs[len(recs)-1]
		if last["type"] != "stats" || last["error"] != nil {
			t.Fatalf("stats trailer = %v", last)
		}
		for _, r := range recs[1 : len(recs)-1] {
			results = append(results, fmt.Sprintf("%v|%v|%v", r["leftId"], r["rightId"], r["out"]))
		}
		sort.Strings(results)
		return recs[0], results
	}

	defRun, defResults := collect(QueryRequest{Query: q, Engine: "progxe"})
	if defRun["engine"] != "ProgXe" {
		t.Fatalf("default run engine = %v", defRun["engine"])
	}
	cardRun, cardResults := collect(QueryRequest{Query: q, Engine: "progxe", Ranker: "cardinality"})
	if cardRun["engine"] != "ProgXe (card-ranker)" {
		t.Fatalf("cardinality run engine = %v, want ProgXe (card-ranker)", cardRun["engine"])
	}
	if len(defResults) == 0 {
		t.Fatal("default run emitted nothing; the comparison is vacuous")
	}
	if len(defResults) != len(cardResults) {
		t.Fatalf("result sets differ in size: %d vs %d", len(defResults), len(cardResults))
	}
	for i := range defResults {
		if defResults[i] != cardResults[i] {
			t.Fatalf("result sets diverge at %d: %q vs %q", i, defResults[i], cardResults[i])
		}
	}

	// Spelling the default explicitly is accepted too.
	if run, _ := collect(QueryRequest{Query: q, Engine: "progxe", Ranker: "benefit-cost"}); run["engine"] != "ProgXe" {
		t.Fatalf("benefit-cost run engine = %v", run["engine"])
	}

	resp := postQuery(t, ts, QueryRequest{Query: q, Engine: "progxe", Ranker: "bogus"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown ranker returned %d, want 400", resp.StatusCode)
	}
}
