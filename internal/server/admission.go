package server

// admission is the run admission controller: a counting semaphore bounding
// the number of engine runs executing concurrently. Acquisition is
// non-blocking — a full service sheds load immediately (HTTP 429) instead of
// queueing streams behind each other, which would destroy the
// time-to-first-result property the service exists to provide.
type admission struct {
	slots chan struct{}
}

func newAdmission(maxConcurrent int) *admission {
	if maxConcurrent <= 0 {
		maxConcurrent = defaultMaxConcurrentRuns
	}
	return &admission{slots: make(chan struct{}, maxConcurrent)}
}

// tryAcquire claims a run slot without blocking. On success it returns a
// release function (idempotent, safe to defer).
func (a *admission) tryAcquire() (release func(), ok bool) {
	select {
	case a.slots <- struct{}{}:
		released := false
		return func() {
			if !released {
				released = true
				<-a.slots
			}
		}, true
	default:
		return nil, false
	}
}

// capacity returns the configured slot count.
func (a *admission) capacity() int { return cap(a.slots) }
