package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"progxe/internal/core"
	"progxe/internal/obs"
	"progxe/internal/query"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	// Query is the SkyMapJoin query in the PREFERRING dialect. FROM table
	// names are resolved against the relation catalog.
	Query string `json:"query"`
	// Engine selects the evaluation engine (see GET /v1/engines). Empty
	// picks the server default.
	Engine string `json:"engine,omitempty"`
	// Format is "ndjson" (default) or "sse". An Accept: text/event-stream
	// header also selects SSE.
	Format string `json:"format,omitempty"`
	// TimeoutMillis caps this run's duration; it is clamped to the server's
	// RunTimeout. 0 inherits the server cap.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
	// Limit stops the run after this many results (0 = stream everything).
	// The truncated stream still only contains final skyline members.
	Limit int `json:"limit,omitempty"`
	// Exec nests the run-shaping knobs (workers, committers, speculate,
	// ranker) under one object — the preferred spelling, shared verbatim by
	// /v1/query and /v1/subscribe. See ExecRequest for the field semantics
	// and resolveExec for the clamp-vs-reject rules.
	Exec *ExecRequest `json:"exec,omitempty"`
	// Workers is the legacy flat spelling of Exec.Workers. Setting any flat
	// knob together with the exec object is rejected (exec_conflict).
	Workers int `json:"workers,omitempty"`
	// Committers is the legacy flat spelling of Exec.Committers.
	Committers int `json:"committers,omitempty"`
	// Speculate is the legacy flat spelling of Exec.Speculate.
	Speculate int `json:"speculate,omitempty"`
	// Ranker is the legacy flat spelling of Exec.Ranker.
	Ranker string `json:"ranker,omitempty"`
	// Trace records a Chrome-trace document for this run (phase spans,
	// region spans, emission instants), retrievable afterwards from
	// GET /v1/runs/{id}/trace and loadable in Perfetto. Off by default:
	// span retention costs memory proportional to the region count. Trace
	// runs bypass the plan cache and run coalescing — a trace documents one
	// complete, private run.
	Trace bool `json:"trace,omitempty"`
}

// runRecord heads every stream: the run's id in the run log, the resolved
// engine, output dimensions, and the exec knobs granted after clamping.
type runRecord struct {
	Type   string   `json:"type"` // "run"
	ID     string   `json:"id"`
	Engine string   `json:"engine"`
	Dims   []string `json:"dims"`
	// Exec echoes the granted exec knobs as one object, mirroring the
	// request's "exec" spelling.
	Exec ExecInfo `json:"exec"`
	// Cached reports that this run reused a compiled plan from the plan
	// cache, skipping the partition / region-build / prune phases.
	Cached bool `json:"cached,omitempty"`
}

// resultRecord carries one progressively emitted result.
type resultRecord struct {
	Type          string    `json:"type"` // "result"
	Seq           int       `json:"seq"`
	LeftID        int64     `json:"leftId"`
	RightID       int64     `json:"rightId"`
	Out           []float64 `json:"out"`
	ElapsedMillis float64   `json:"elapsedMillis"`
}

// statsRecord trails every stream, reporting how the run ended, where its
// time went, and how early its results arrived.
type statsRecord struct {
	Type          string  `json:"type"` // "stats"
	RunID         string  `json:"runId"`
	Engine        string  `json:"engine"`
	Results       int     `json:"results"`
	ElapsedMillis float64 `json:"elapsedMillis"`
	TTFRMillis    float64 `json:"ttfrMillis,omitempty"`
	Canceled      bool    `json:"canceled,omitempty"`
	Reason        string  `json:"reason,omitempty"` // disconnect | timeout | limit | shutdown
	Error         string  `json:"error,omitempty"`
	// Cached reports plan-cache reuse (see runRecord.Cached).
	Cached bool `json:"cached,omitempty"`
	// Subscribers counts the clients this run's stream was fanned out to.
	// Zero for uncoalesced runs; ≥ 1 when run coalescing served the run.
	Subscribers int           `json:"subscribers,omitempty"`
	Progress    obs.Quantiles `json:"progress"`
	Phases      obs.Report    `json:"phases"`
	EngineStats smj.Stats     `json:"engineStats"`
}

// streamWriter abstracts the two wire formats (NDJSON lines, SSE frames).
// Records are flushed individually: each result reaches the client socket
// the moment the engine emits it. Each record write runs under a rolling
// deadline (stall) so a connected-but-stalled reader cannot block the
// handler — and thereby the engine run — indefinitely; the first failed
// write reports through onFail (which cancels the run) and silences the
// rest of the stream.
type streamWriter struct {
	w      http.ResponseWriter
	f      http.Flusher
	rc     *http.ResponseController
	stall  time.Duration
	onFail func()
	sse    bool
	fail   bool // a write failed; the client is gone or stalled
}

func (sw *streamWriter) begin() {
	if sw.sse {
		sw.w.Header().Set("Content-Type", "text/event-stream")
	} else {
		sw.w.Header().Set("Content-Type", "application/x-ndjson")
	}
	sw.w.Header().Set("Cache-Control", "no-store")
	sw.w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	sw.w.WriteHeader(http.StatusOK)
}

// record writes one record of the given event type and flushes it.
func (sw *streamWriter) record(event string, v any) {
	if sw.fail {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		// A value error (e.g. a non-finite float escaping the engine math),
		// not a connection error: drop this record but keep the stream —
		// the stats trailer must still reach the client.
		return
	}
	sw.raw(event, b)
}

// raw writes one pre-encoded record and flushes it. Coalesced streams go
// through this path: the run encodes each record once, every subscriber
// writes the same bytes.
func (sw *streamWriter) raw(event string, data []byte) {
	if sw.fail {
		return
	}
	if sw.stall > 0 {
		// Rolling per-record deadline; reset by end() after the stream.
		_ = sw.rc.SetWriteDeadline(time.Now().Add(sw.stall))
	}
	var err error
	if sw.sse {
		_, err = fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", event, data)
	} else {
		_, err = fmt.Fprintf(sw.w, "%s\n", data)
	}
	if err != nil {
		sw.failed()
		return
	}
	if sw.f != nil {
		sw.f.Flush()
	}
}

func (sw *streamWriter) failed() {
	sw.fail = true
	if sw.onFail != nil {
		sw.onFail()
	}
}

// end clears the rolling write deadline so a keep-alive connection is not
// poisoned for its next request.
func (sw *streamWriter) end() {
	if sw.stall > 0 {
		_ = sw.rc.SetWriteDeadline(time.Time{})
	}
}

// resolveTimeout reconciles the request's timeout with the server cap: the
// request may only tighten it.
func (s *Server) resolveTimeout(reqMillis int64) time.Duration {
	timeout := s.cfg.RunTimeout
	if reqMillis > 0 {
		ms := reqMillis
		// Clamp before multiplying: a huge value would overflow to a
		// negative Duration and disable the server's cap entirely.
		if ms > int64(time.Duration(1<<62)/time.Millisecond) {
			ms = int64(time.Duration(1<<62) / time.Millisecond)
		}
		if t := time.Duration(ms) * time.Millisecond; timeout < 0 || t < timeout {
			timeout = t
		}
	}
	return timeout
}

// planFor resolves the compiled plan for key. With useCache, the plan cache
// answers — a hit skips compilation and, for ProgXe-family engines, the
// partition / region-build / prune phases entirely; a miss compiles once and
// is shared by every concurrent requester of the same key. Without it the
// query is compiled privately and entry.plan stays nil, which downstream
// means "run exactly as an uncached server would".
//
// Cache builds run the prepare step under a server-scoped context (bounded
// by shutdown and the server's RunTimeout), not the triggering request's:
// a builder whose client disconnects mid-compile must not poison the entry
// its sharers are waiting on.
func (s *Server) planFor(key planKey, engine smj.Engine, q *query.Query, left, right *relation.Relation, workers int, useCache bool) (entry *planEntry, hit bool, err error) {
	if !useCache || s.plans == nil {
		p, err := q.Compile(left, right)
		if err != nil {
			return nil, false, err
		}
		return &planEntry{problem: p}, false, nil
	}
	return s.plans.getOrBuild(key, func() (*planEntry, error) {
		p, err := q.Compile(left, right)
		if err != nil {
			return nil, err
		}
		e := &planEntry{problem: p}
		pe, ok := engine.(planEngine)
		if !ok {
			return e, nil // baseline engine: cache the compilation alone
		}
		ctx, cancel := context.WithCancel(s.runCtx)
		defer cancel()
		if t := s.cfg.RunTimeout; t > 0 {
			ctx, cancel = context.WithTimeout(ctx, t)
			defer cancel()
		}
		if workers > 0 {
			ctx = smj.WithParallelism(ctx, workers)
		}
		pl, err := pe.PrepareContext(ctx, p)
		if err != nil {
			return nil, err
		}
		e.plan = pl
		return e, nil
	})
}

// runResult gathers everything one finished engine run produced, for the
// stats trailer, metrics, and the run log — shared by the solo and the
// coalesced execution paths.
type runResult struct {
	runID, engineName, query string
	exec                     ExecInfo
	cached                   bool
	fanout                   int // subscribers ever attached; 0 = uncoalesced
	start                    time.Time
	elapsed, ttfr            time.Duration
	seq                      int
	limitHit                 bool
	runErr                   error
	progress                 obs.Quantiles
	phases                   obs.Report
	engineStats              smj.Stats
	trace                    []byte
}

// finishRun settles a completed engine run: outcome classification, the
// metrics counters, the run-log record, and the structured log line. It
// returns the stats trailer for the caller to put on the wire.
func (s *Server) finishRun(res runResult) statsRecord {
	s.metrics.observeEngineStats(res.engineStats)
	rec := statsRecord{
		Type: "stats", RunID: res.runID, Engine: res.engineName, Results: res.seq,
		ElapsedMillis: float64(res.elapsed.Microseconds()) / 1000,
		TTFRMillis:    float64(res.ttfr.Microseconds()) / 1000,
		Cached:        res.cached,
		Subscribers:   res.fanout,
		Progress:      res.progress,
		Phases:        res.phases,
		EngineStats:   res.engineStats,
	}
	outcome := runCompleted
	switch {
	case res.runErr == nil:
	case errors.Is(res.runErr, context.Canceled), errors.Is(res.runErr, context.DeadlineExceeded):
		outcome = runCanceled
		rec.Canceled = true
		switch {
		case res.limitHit:
			rec.Reason = "limit"
		case errors.Is(res.runErr, context.DeadlineExceeded):
			rec.Reason = "timeout"
		case s.runCtx.Err() != nil:
			rec.Reason = "shutdown"
		default:
			rec.Reason = "disconnect"
		}
	default:
		outcome = runFailed
		rec.Error = res.runErr.Error()
	}
	s.metrics.runFinished(outcome, int64(res.seq))
	s.metrics.observeProgress(res.engineName, res.progress)
	s.metrics.observePhases(res.phases)

	outcomeName := "completed"
	switch outcome {
	case runCanceled:
		outcomeName = "canceled"
	case runFailed:
		outcomeName = "failed"
	}
	s.runlog.add(RunRecord{
		ID: res.runID, Engine: res.engineName, Query: truncate(res.query, 512),
		Exec: res.exec, Start: res.start,
		ElapsedMillis: rec.ElapsedMillis,
		Outcome:       outcomeName, Reason: rec.Reason, Error: rec.Error,
		Results: res.seq, Cached: res.cached, Subscribers: res.fanout,
		Progress: res.progress, Phases: res.phases,
		EngineStats: res.engineStats,
	}, res.trace)

	logAttrs := []any{
		"id", res.runID, "engine", res.engineName, "outcome", outcomeName,
		"results", res.seq,
		"elapsedMs", rec.ElapsedMillis, "ttfrMs", rec.TTFRMillis,
		"phases", res.phases.String(),
	}
	if res.cached {
		logAttrs = append(logAttrs, "cached", true)
	}
	if res.fanout > 0 {
		logAttrs = append(logAttrs, "subscribers", res.fanout)
	}
	if rec.Reason != "" {
		logAttrs = append(logAttrs, "reason", rec.Reason)
	}
	if rec.Error != "" {
		logAttrs = append(logAttrs, "error", rec.Error)
	}
	if s.cfg.SlowRunThreshold > 0 && res.elapsed > s.cfg.SlowRunThreshold {
		s.logger.Warn("slow run", append(logAttrs,
			"thresholdMs", float64(s.cfg.SlowRunThreshold.Microseconds())/1000)...)
	} else {
		s.logger.Info("run", logAttrs...)
	}
	return rec
}

// handleQuery admits, compiles, and executes one query, streaming results
// progressively until the run completes, errors, hits the limit, times out,
// or the client disconnects — the latter three through context cancellation
// of the smj.ContextEngine contract. With coalescing enabled, concurrent
// identical requests share one engine run (see coalesce.go); otherwise each
// request runs privately.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, defaultMaxQueryBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, errBadRequest, "bad query request: %v", err)
		return
	}

	// An explicit format in the body wins; the Accept header only decides
	// when the body names none.
	if req.Format != "" && !strings.EqualFold(req.Format, "sse") && !strings.EqualFold(req.Format, "ndjson") {
		writeError(w, http.StatusBadRequest, errBadFormat, "unknown format %q (want ndjson or sse)", req.Format)
		return
	}
	sse := strings.EqualFold(req.Format, "sse") ||
		(req.Format == "" && strings.Contains(r.Header.Get("Accept"), "text/event-stream"))

	engineName := req.Engine
	if engineName == "" {
		engineName = s.cfg.DefaultEngine
	}
	exec, ranker, herr := s.resolveExec(&req)
	if herr != nil {
		writeError(w, herr.status, herr.code, "%s", herr.msg)
		return
	}

	// Parsing and catalog resolution precede admission: both are cheap (no
	// relation-sized copies) and both are needed to name the plan — the
	// relation versions pin exactly the snapshots this run will see.
	q, err := query.Parse(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadQuery, "%v", err)
		return
	}
	left, leftVer, ok := s.catalog.GetVersioned(q.From[0].Table)
	if !ok {
		writeError(w, http.StatusNotFound, errRelationNotFound, "relation %q is not in the catalog", q.From[0].Table)
		return
	}
	right, rightVer, ok := s.catalog.GetVersioned(q.From[1].Table)
	if !ok {
		writeError(w, http.StatusNotFound, errRelationNotFound, "relation %q is not in the catalog", q.From[1].Table)
		return
	}
	timeout := s.resolveTimeout(req.TimeoutMillis)
	key := planKey{
		engine: strings.ToLower(engineName), query: q.String(),
		leftVer: leftVer, rightVer: rightVer,
	}

	if s.coal != nil && !req.Trace {
		s.handleCoalesced(w, r, req, sse, engineName, ranker, q, key, left, right, timeout, exec)
		return
	}

	// Solo path: one request, one engine run.
	//
	// Admission precedes compilation: Compile copies relation-sized data
	// (selection push-down), so unadmitted requests must not reach it —
	// otherwise a burst bypasses the resource bound the controller exists
	// to provide.
	release, ok := s.adm.tryAcquire()
	if !ok {
		s.metrics.runRejected()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, errBusy,
			"all %d run slots are busy; retry shortly", s.adm.capacity())
		return
	}
	defer release()

	// Every run is profiled: the accumulators are a few atomic adds, and the
	// phase breakdown feeds the run log, the stats trailer, and /metrics.
	// Span retention and the event recorder are opt-in per request.
	prof := obs.NewProfiler()
	var tracer *core.TraceRecorder
	opts := core.Options{Ranker: ranker, Profiler: prof}
	if req.Trace {
		prof.EnableSpans()
		tracer = core.NewTraceRecorder(prof.Epoch())
		opts.Trace = tracer.Observe
	}
	engine, err := s.cfg.NewEngine(engineName, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, errUnknownEngine, "%v", err)
		return
	}

	// Trace runs bypass the plan cache: a cached plan was prepared by some
	// earlier run, so reusing it would leave the trace without its setup
	// spans — a trace documents one complete run.
	entry, cached, err := s.planFor(key, engine, q, left, right, exec.Workers, !req.Trace)
	if err != nil {
		status, code := http.StatusBadRequest, errBadQuery
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status, code = http.StatusServiceUnavailable, errUnavailable
		}
		writeError(w, status, code, "%v", err)
		return
	}

	// The run context: client disconnect cancels it via r.Context();
	// timeouts and the result limit cancel it explicitly.
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	ctx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	// Per-request parallelism, clamped by the server cap. The request is
	// threaded through the context so any ContextEngine can honor it; the
	// run record reports what was granted.
	if exec.Workers > 0 {
		ctx = smj.WithParallelism(ctx, exec.Workers)
	}
	if exec.Committers > 0 {
		ctx = smj.WithCommitters(ctx, exec.Committers)
	}
	if exec.Speculate > 0 {
		ctx = smj.WithSpeculate(ctx, exec.Speculate)
	}
	// Service shutdown aborts in-flight runs so graceful drains finish
	// within their window instead of waiting out every stream.
	defer context.AfterFunc(s.runCtx, cancelRun)()

	sw := &streamWriter{
		w: w, sse: sse,
		rc:     http.NewResponseController(w),
		stall:  s.cfg.WriteStallTimeout,
		onFail: cancelRun,
	}
	runID := s.runlog.newID()
	sw.f, _ = w.(http.Flusher)
	defer sw.end()
	sw.begin()
	sw.record("run", runRecord{Type: "run", ID: runID, Engine: engine.Name(), Dims: entry.problem.Maps.Names(), Exec: exec, Cached: cached})

	s.metrics.runStarted()
	start := time.Now()
	timeline := obs.NewTimeline(start)
	var (
		seq      int
		ttfr     time.Duration
		limitHit bool
		finished bool
	)
	// Balance the runsActive gauge even if the engine panics (net/http
	// recovers handler panics, so without this the gauge would leak).
	defer func() {
		if !finished {
			s.metrics.runFinished(runFailed, int64(seq))
		}
	}()
	sink := smj.SinkFunc(func(res smj.Result) {
		if limitHit {
			return
		}
		timeline.Observe()
		seq++
		if seq == 1 {
			ttfr = time.Since(start)
			s.metrics.observeTTFR(ttfr)
		}
		sw.record("result", resultRecord{
			Type: "result", Seq: seq,
			LeftID: res.LeftID, RightID: res.RightID, Out: res.Out,
			ElapsedMillis: float64(time.Since(start).Microseconds()) / 1000,
		})
		if req.Limit > 0 && seq >= req.Limit {
			limitHit = true
			cancelRun()
		}
	})
	var (
		engineStats smj.Stats
		runErr      error
	)
	if entry.plan != nil {
		// Cache hit on a ProgXe-family engine: run straight from the plan
		// snapshot, skipping partition / region-build / prune.
		engineStats, runErr = engine.(planEngine).RunPlanContext(ctx, entry.plan, sink)
	} else {
		engineStats, runErr = smj.RunContext(ctx, engine, entry.problem, sink)
	}
	elapsed := time.Since(start)

	var trace []byte
	if tracer != nil {
		spans, instants := tracer.Spans()
		trace, _ = obs.TraceJSON(append(prof.Spans(), spans...), instants)
	}
	rec := s.finishRun(runResult{
		runID: runID, engineName: engine.Name(), query: req.Query,
		exec: exec, cached: cached,
		start: start, elapsed: elapsed, ttfr: ttfr,
		seq: seq, limitHit: limitHit, runErr: runErr,
		progress: timeline.Quantiles(), phases: prof.Report(),
		engineStats: engineStats, trace: trace,
	})
	finished = true
	sw.record("stats", rec)
}

// handleCoalesced serves one request through the run coalescer: the first
// request for a coalesce key leads (setting up and starting the shared
// engine run), later identical requests attach as subscribers; every client
// then streams the same byte-identical records from the group's replay ring.
func (s *Server) handleCoalesced(w http.ResponseWriter, r *http.Request, req QueryRequest, sse bool,
	engineName string, ranker core.RankerKind, q *query.Query, key planKey,
	left, right *relation.Relation, timeout time.Duration, exec ExecInfo) {

	ckey := coalesceKey{
		plan: key, limit: req.Limit, exec: exec,
		timeoutMillis: int64(timeout / time.Millisecond),
	}
	g, leader, ok := s.coal.joinOrLead(ckey, s.adm, s.metrics.coalescedAttach)
	if !ok {
		s.metrics.runRejected()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, errBusy,
			"all %d run slots are busy; retry shortly", s.adm.capacity())
		return
	}
	if leader {
		s.startCoalesced(g, req, engineName, ranker, q, key, left, right, timeout, exec)
	}
	s.streamGroup(w, r, g, sse)
}

// startCoalesced performs the leader-only setup of a coalesced run — engine
// construction, plan resolution, context assembly — and hands the group to
// the run goroutine. Setup failures resolve the group into a shared HTTP
// error: every subscriber (the leader included) reports it identically.
func (s *Server) startCoalesced(g *runGroup, req QueryRequest,
	engineName string, ranker core.RankerKind, q *query.Query, key planKey,
	left, right *relation.Relation, timeout time.Duration, exec ExecInfo) {

	// Until the run goroutine owns the group, every exit — error or panic —
	// must resolve the group and return the admission slot it holds.
	started := false
	failStatus, failCode, failMsg := http.StatusInternalServerError, errInternal, "internal error during run setup"
	defer func() {
		if !started {
			s.coal.remove(g)
			g.failPre(failStatus, failCode, failMsg)
			g.release()
		}
	}()
	fail := func(status int, code, format string, args ...any) {
		failStatus, failCode, failMsg = status, code, fmt.Sprintf(format, args...)
	}

	prof := obs.NewProfiler()
	engine, err := s.cfg.NewEngine(engineName, core.Options{Ranker: ranker, Profiler: prof})
	if err != nil {
		fail(http.StatusBadRequest, errUnknownEngine, "%v", err)
		return
	}
	entry, cached, err := s.planFor(key, engine, q, left, right, exec.Workers, true)
	if err != nil {
		status, code := http.StatusBadRequest, errBadQuery
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status, code = http.StatusServiceUnavailable, errUnavailable
		}
		fail(status, code, "%v", err)
		return
	}

	// The shared run's context descends from the server's run context, not
	// the leader's request: the run must survive the leader's disconnect as
	// long as other subscribers remain. Its lifetime is bounded by server
	// shutdown, the shared timeout, the shared limit, and the last detach.
	ctx := s.runCtx
	var cancelT context.CancelFunc = func() {}
	if timeout > 0 {
		ctx, cancelT = context.WithTimeout(ctx, timeout)
	}
	ctx, cancelRun := context.WithCancel(ctx)
	if exec.Workers > 0 {
		ctx = smj.WithParallelism(ctx, exec.Workers)
	}
	if exec.Committers > 0 {
		ctx = smj.WithCommitters(ctx, exec.Committers)
	}
	if exec.Speculate > 0 {
		ctx = smj.WithSpeculate(ctx, exec.Speculate)
	}
	g.mu.Lock()
	g.cancel = func() { cancelRun(); cancelT() }
	g.mu.Unlock()

	runID := s.runlog.newID()
	g.appendJSON("run", runRecord{
		Type: "run", ID: runID, Engine: engine.Name(), Dims: entry.problem.Maps.Names(),
		Exec: exec, Cached: cached,
	})
	go s.runCoalesced(g, runSpec{
		runID: runID, engineName: engine.Name(), query: req.Query,
		exec: exec, limit: req.Limit,
		cached: cached, prof: prof,
		run: func(sink smj.Sink) (smj.Stats, error) {
			defer cancelRun()
			defer cancelT()
			if entry.plan != nil {
				return engine.(planEngine).RunPlanContext(ctx, entry.plan, sink)
			}
			return smj.RunContext(ctx, engine, entry.problem, sink)
		},
	})
	started = true
}

// runSpec is what the coalesced run goroutine needs from leader setup.
type runSpec struct {
	runID, engineName, query string
	exec                     ExecInfo
	limit                    int
	cached                   bool
	prof                     *obs.Profiler
	run                      func(smj.Sink) (smj.Stats, error)
}

// truncate caps a string kept in the run log.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
