package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"progxe/internal/core"
	"progxe/internal/obs"
	"progxe/internal/query"
	"progxe/internal/smj"
)

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	// Query is the SkyMapJoin query in the PREFERRING dialect. FROM table
	// names are resolved against the relation catalog.
	Query string `json:"query"`
	// Engine selects the evaluation engine (see GET /v1/engines). Empty
	// picks the server default.
	Engine string `json:"engine,omitempty"`
	// Format is "ndjson" (default) or "sse". An Accept: text/event-stream
	// header also selects SSE.
	Format string `json:"format,omitempty"`
	// TimeoutMillis caps this run's duration; it is clamped to the server's
	// RunTimeout. 0 inherits the server cap.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
	// Limit stops the run after this many results (0 = stream everything).
	// The truncated stream still only contains final skyline members.
	Limit int `json:"limit,omitempty"`
	// Workers requests parallel region processing with this many worker
	// goroutines (ProgXe engines only; others ignore it). The value is
	// clamped to the server's MaxRunWorkers cap. Parallel runs stream the
	// exact same results in the exact same order as serial ones — this
	// knob trades CPU for latency, never determinism. 0 (the default)
	// runs serial.
	Workers int `json:"workers,omitempty"`
	// Committers requests the partitioned commit stage with this many
	// committer goroutines (ProgXe engines only; effective only on parallel
	// runs, i.e. with workers ≥ 1). The value is clamped to the server's
	// MaxRunCommitters cap. Like workers, this never changes the result
	// stream. Negative values are rejected with 400: unlike workers (where
	// 0 and "no parallelism" coincide), a negative committer count has no
	// meaningful reading. 0 (the default) keeps commit on the sequencer.
	Committers int `json:"committers,omitempty"`
	// Ranker selects the progressive scheduler's benefit model (ProgXe
	// engines only): "benefit-cost" (the default, Equation 8 with exact
	// ProgCount) or "cardinality" (O(1) refreshes that skip ProgCount).
	Ranker string `json:"ranker,omitempty"`
	// Trace records a Chrome-trace document for this run (phase spans,
	// region spans, emission instants), retrievable afterwards from
	// GET /v1/runs/{id}/trace and loadable in Perfetto. Off by default:
	// span retention costs memory proportional to the region count.
	Trace bool `json:"trace,omitempty"`
}

// runRecord heads every stream: the run's id in the run log, the resolved
// engine, output dimensions, and the worker count granted after clamping.
type runRecord struct {
	Type       string   `json:"type"` // "run"
	ID         string   `json:"id"`
	Engine     string   `json:"engine"`
	Dims       []string `json:"dims"`
	Workers    int      `json:"workers,omitempty"`
	Committers int      `json:"committers,omitempty"`
}

// resultRecord carries one progressively emitted result.
type resultRecord struct {
	Type          string    `json:"type"` // "result"
	Seq           int       `json:"seq"`
	LeftID        int64     `json:"leftId"`
	RightID       int64     `json:"rightId"`
	Out           []float64 `json:"out"`
	ElapsedMillis float64   `json:"elapsedMillis"`
}

// statsRecord trails every stream, reporting how the run ended, where its
// time went, and how early its results arrived.
type statsRecord struct {
	Type          string        `json:"type"` // "stats"
	RunID         string        `json:"runId"`
	Engine        string        `json:"engine"`
	Results       int           `json:"results"`
	ElapsedMillis float64       `json:"elapsedMillis"`
	TTFRMillis    float64       `json:"ttfrMillis,omitempty"`
	Canceled      bool          `json:"canceled,omitempty"`
	Reason        string        `json:"reason,omitempty"` // disconnect | timeout | limit | shutdown
	Error         string        `json:"error,omitempty"`
	Progress      obs.Quantiles `json:"progress"`
	Phases        obs.Report    `json:"phases"`
	EngineStats   smj.Stats     `json:"engineStats"`
}

// streamWriter abstracts the two wire formats (NDJSON lines, SSE frames).
// Records are flushed individually: each result reaches the client socket
// the moment the engine emits it. Each record write runs under a rolling
// deadline (stall) so a connected-but-stalled reader cannot block the
// handler — and thereby the engine run — indefinitely; the first failed
// write reports through onFail (which cancels the run) and silences the
// rest of the stream.
type streamWriter struct {
	w      http.ResponseWriter
	f      http.Flusher
	rc     *http.ResponseController
	stall  time.Duration
	onFail func()
	sse    bool
	fail   bool // a write failed; the client is gone or stalled
}

func (sw *streamWriter) begin() {
	if sw.sse {
		sw.w.Header().Set("Content-Type", "text/event-stream")
	} else {
		sw.w.Header().Set("Content-Type", "application/x-ndjson")
	}
	sw.w.Header().Set("Cache-Control", "no-store")
	sw.w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	sw.w.WriteHeader(http.StatusOK)
}

// record writes one record of the given event type and flushes it.
func (sw *streamWriter) record(event string, v any) {
	if sw.fail {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		// A value error (e.g. a non-finite float escaping the engine math),
		// not a connection error: drop this record but keep the stream —
		// the stats trailer must still reach the client.
		return
	}
	if sw.stall > 0 {
		// Rolling per-record deadline; reset by end() after the stream.
		_ = sw.rc.SetWriteDeadline(time.Now().Add(sw.stall))
	}
	if sw.sse {
		_, err = fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", event, b)
	} else {
		_, err = fmt.Fprintf(sw.w, "%s\n", b)
	}
	if err != nil {
		sw.failed()
		return
	}
	if sw.f != nil {
		sw.f.Flush()
	}
}

func (sw *streamWriter) failed() {
	sw.fail = true
	if sw.onFail != nil {
		sw.onFail()
	}
}

// end clears the rolling write deadline so a keep-alive connection is not
// poisoned for its next request.
func (sw *streamWriter) end() {
	if sw.stall > 0 {
		_ = sw.rc.SetWriteDeadline(time.Time{})
	}
}

// handleQuery admits, compiles, and executes one query, streaming results
// progressively until the run completes, errors, hits the limit, times out,
// or the client disconnects — the latter three through context cancellation
// of the smj.ContextEngine contract.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, defaultMaxQueryBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad query request: %v", err)
		return
	}

	// An explicit format in the body wins; the Accept header only decides
	// when the body names none.
	if req.Format != "" && !strings.EqualFold(req.Format, "sse") && !strings.EqualFold(req.Format, "ndjson") {
		writeError(w, http.StatusBadRequest, "unknown format %q (want ndjson or sse)", req.Format)
		return
	}
	sse := strings.EqualFold(req.Format, "sse") ||
		(req.Format == "" && strings.Contains(r.Header.Get("Accept"), "text/event-stream"))

	engineName := req.Engine
	if engineName == "" {
		engineName = s.cfg.DefaultEngine
	}
	if req.Committers < 0 {
		writeError(w, http.StatusBadRequest, "committers must be >= 0, got %d", req.Committers)
		return
	}
	ranker, err := core.ParseRanker(req.Ranker)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Every run is profiled: the accumulators are a few atomic adds, and the
	// phase breakdown feeds the run log, the stats trailer, and /metrics.
	// Span retention and the event recorder are opt-in per request.
	prof := obs.NewProfiler()
	var tracer *core.TraceRecorder
	opts := core.Options{Ranker: ranker, Profiler: prof}
	if req.Trace {
		prof.EnableSpans()
		tracer = core.NewTraceRecorder(prof.Epoch())
		opts.Trace = tracer.Observe
	}
	engine, err := s.cfg.NewEngine(engineName, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Admission precedes compilation: Compile copies relation-sized data
	// (selection push-down), so unadmitted requests must not reach it —
	// otherwise a burst bypasses the resource bound the controller exists
	// to provide.
	release, ok := s.adm.tryAcquire()
	if !ok {
		s.metrics.runRejected()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"all %d run slots are busy; retry shortly", s.adm.capacity())
		return
	}
	defer release()

	q, err := query.Parse(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Resolve FROM table names against the catalog. The snapshot taken here
	// stays valid for the whole run even if the catalog entry is replaced.
	left, ok := s.catalog.Get(q.From[0].Table)
	if !ok {
		writeError(w, http.StatusNotFound, "relation %q is not in the catalog", q.From[0].Table)
		return
	}
	right, ok := s.catalog.Get(q.From[1].Table)
	if !ok {
		writeError(w, http.StatusNotFound, "relation %q is not in the catalog", q.From[1].Table)
		return
	}
	p, err := q.Compile(left, right)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The run context: client disconnect cancels it via r.Context();
	// timeouts and the result limit cancel it explicitly.
	ctx := r.Context()
	timeout := s.cfg.RunTimeout
	if req.TimeoutMillis > 0 {
		ms := req.TimeoutMillis
		// Clamp before multiplying: a huge value would overflow to a
		// negative Duration and disable the server's cap entirely.
		if ms > int64(time.Duration(1<<62)/time.Millisecond) {
			ms = int64(time.Duration(1<<62) / time.Millisecond)
		}
		if t := time.Duration(ms) * time.Millisecond; timeout < 0 || t < timeout {
			timeout = t
		}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	ctx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	// Per-request parallelism, clamped by the server cap. The request is
	// threaded through the context so any ContextEngine can honor it; the
	// run record reports what was granted.
	workers := req.Workers
	if workers < 0 {
		workers = 0
	}
	if workers > s.cfg.MaxRunWorkers {
		workers = s.cfg.MaxRunWorkers
	}
	if workers > 0 {
		ctx = smj.WithParallelism(ctx, workers)
	}
	// Per-request committer count for the partitioned commit stage, clamped
	// by its own cap. Only meaningful on parallel runs — the engine ignores
	// it when the run is serial — but granted-and-echoed regardless so the
	// run record always reports what the request was resolved to.
	committers := req.Committers
	if committers > s.cfg.MaxRunCommitters {
		committers = s.cfg.MaxRunCommitters
	}
	if workers == 0 {
		committers = 0
	}
	if committers > 0 {
		ctx = smj.WithCommitters(ctx, committers)
	}
	// Service shutdown aborts in-flight runs so graceful drains finish
	// within their window instead of waiting out every stream.
	defer context.AfterFunc(s.runCtx, cancelRun)()

	sw := &streamWriter{
		w: w, sse: sse,
		rc:     http.NewResponseController(w),
		stall:  s.cfg.WriteStallTimeout,
		onFail: cancelRun,
	}
	runID := s.runlog.newID()
	sw.f, _ = w.(http.Flusher)
	defer sw.end()
	sw.begin()
	sw.record("run", runRecord{Type: "run", ID: runID, Engine: engine.Name(), Dims: p.Maps.Names(), Workers: workers, Committers: committers})

	s.metrics.runStarted()
	start := time.Now()
	timeline := obs.NewTimeline(start)
	var (
		seq      int
		ttfr     time.Duration
		limitHit bool
		finished bool
	)
	// Balance the runsActive gauge even if the engine panics (net/http
	// recovers handler panics, so without this the gauge would leak).
	defer func() {
		if !finished {
			s.metrics.runFinished(runFailed, int64(seq))
		}
	}()
	sink := smj.SinkFunc(func(res smj.Result) {
		if limitHit {
			return
		}
		timeline.Observe()
		seq++
		if seq == 1 {
			ttfr = time.Since(start)
			s.metrics.observeTTFR(ttfr)
		}
		sw.record("result", resultRecord{
			Type: "result", Seq: seq,
			LeftID: res.LeftID, RightID: res.RightID, Out: res.Out,
			ElapsedMillis: float64(time.Since(start).Microseconds()) / 1000,
		})
		if req.Limit > 0 && seq >= req.Limit {
			limitHit = true
			cancelRun()
		}
	})
	engineStats, runErr := smj.RunContext(ctx, engine, p, sink)
	elapsed := time.Since(start)
	s.metrics.observeEngineStats(engineStats)
	progress := timeline.Quantiles()
	phases := prof.Report()

	rec := statsRecord{
		Type: "stats", RunID: runID, Engine: engine.Name(), Results: seq,
		ElapsedMillis: float64(elapsed.Microseconds()) / 1000,
		TTFRMillis:    float64(ttfr.Microseconds()) / 1000,
		Progress:      progress,
		Phases:        phases,
		EngineStats:   engineStats,
	}
	outcome := runCompleted
	switch {
	case runErr == nil:
	case errors.Is(runErr, context.Canceled), errors.Is(runErr, context.DeadlineExceeded):
		outcome = runCanceled
		rec.Canceled = true
		switch {
		case limitHit:
			rec.Reason = "limit"
		case errors.Is(runErr, context.DeadlineExceeded):
			rec.Reason = "timeout"
		case s.runCtx.Err() != nil:
			rec.Reason = "shutdown"
		default:
			rec.Reason = "disconnect"
		}
	default:
		outcome = runFailed
		rec.Error = runErr.Error()
	}
	finished = true
	s.metrics.runFinished(outcome, int64(seq))
	s.metrics.observeProgress(engine.Name(), progress)
	s.metrics.observePhases(phases)
	sw.record("stats", rec)

	outcomeName := "completed"
	switch outcome {
	case runCanceled:
		outcomeName = "canceled"
	case runFailed:
		outcomeName = "failed"
	}
	var trace []byte
	if tracer != nil {
		spans, instants := tracer.Spans()
		trace, _ = obs.TraceJSON(append(prof.Spans(), spans...), instants)
	}
	s.runlog.add(RunRecord{
		ID: runID, Engine: engine.Name(), Query: truncate(req.Query, 512),
		Workers: workers, Committers: committers, Start: start,
		ElapsedMillis: rec.ElapsedMillis,
		Outcome:       outcomeName, Reason: rec.Reason, Error: rec.Error,
		Results: seq, Progress: progress, Phases: phases,
		EngineStats: engineStats,
	}, trace)

	logAttrs := []any{
		"id", runID, "engine", engine.Name(), "outcome", outcomeName,
		"results", seq,
		"elapsedMs", rec.ElapsedMillis, "ttfrMs", rec.TTFRMillis,
		"phases", phases.String(),
	}
	if rec.Reason != "" {
		logAttrs = append(logAttrs, "reason", rec.Reason)
	}
	if rec.Error != "" {
		logAttrs = append(logAttrs, "error", rec.Error)
	}
	if s.cfg.SlowRunThreshold > 0 && elapsed > s.cfg.SlowRunThreshold {
		s.logger.Warn("slow run", append(logAttrs,
			"thresholdMs", float64(s.cfg.SlowRunThreshold.Microseconds())/1000)...)
	} else {
		s.logger.Info("run", logAttrs...)
	}
}

// truncate caps a string kept in the run log.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
