package server

import (
	"fmt"
	"sort"
	"sync"

	"progxe/internal/relation"
)

// Catalog is the concurrency-safe relation registry of the progressive query
// service. Relations are treated as immutable once registered — the engine
// contract requires inputs to stay frozen for the duration of a run — so
// replacing a name installs a new *Relation while in-flight runs keep
// evaluating against the snapshot they resolved at admission time.
type Catalog struct {
	mu   sync.RWMutex
	rels map[string]*relation.Relation
	// vers assigns every name its registration generation: a strictly
	// increasing catalog-wide counter bumped on each Register/Remove. A
	// name's version therefore changes whenever its relation is replaced,
	// which is what keys compiled-plan cache entries — a mutation makes
	// every cached plan over the old snapshot unreachable (invalidation by
	// key miss) without touching the cache itself.
	vers map[string]uint64
	gen  uint64
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		rels: make(map[string]*relation.Relation),
		vers: make(map[string]uint64),
	}
}

// validName reports whether a relation name can appear as a table name in
// the PREFERRING dialect (identifier: letter or underscore, then letters,
// digits, underscores).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Register installs rel under its schema name, replacing any previous
// relation of that name.
func (c *Catalog) Register(rel *relation.Relation) error {
	return c.RegisterCapped(rel, 0, 0)
}

// ErrCatalogFull reports a registration rejected by a catalog resource cap.
type ErrCatalogFull struct{ Reason string }

func (e ErrCatalogFull) Error() string { return "catalog: " + e.Reason }

// RegisterCapped is Register refusing registrations that would push the
// catalog past maxEntries relations or maxRows total resident rows (0
// disables either cap) — together they bound the memory network clients can
// pin. Replacing an existing name is allowed as long as the row budget
// still holds. The checks and the insert run under one lock, so concurrent
// registrations cannot overshoot.
func (c *Catalog) RegisterCapped(rel *relation.Relation, maxEntries, maxRows int) error {
	_, _, err := c.RegisterCappedVersioned(rel, maxEntries, maxRows)
	return err
}

// RegisterCappedVersioned is RegisterCapped additionally reporting the
// generation assigned to the registration and whether it replaced an
// existing entry. The serve layer's change feed stamps catalog events with
// the generation, so event order and version order advance on one counter.
func (c *Catalog) RegisterCappedVersioned(rel *relation.Relation, maxEntries, maxRows int) (ver uint64, replaced bool, err error) {
	if rel == nil || rel.Schema == nil {
		return 0, false, fmt.Errorf("catalog: nil relation")
	}
	name := rel.Schema.Name
	if !validName(name) {
		return 0, false, fmt.Errorf("catalog: relation name %q is not a valid identifier", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, replacing := c.rels[name]
	if !replacing && maxEntries > 0 && len(c.rels) >= maxEntries {
		return 0, false, ErrCatalogFull{Reason: fmt.Sprintf("already holds %d relations; delete one first", maxEntries)}
	}
	if maxRows > 0 {
		total := rel.Len()
		for n, r := range c.rels {
			if n != name {
				total += r.Len()
			}
		}
		if total > maxRows {
			return 0, false, ErrCatalogFull{Reason: fmt.Sprintf("registering %d rows would exceed the %d-row budget; delete a relation first", rel.Len(), maxRows)}
		}
	}
	c.rels[name] = rel
	c.gen++
	c.vers[name] = c.gen
	return c.gen, replacing, nil
}

// Get resolves a relation by name.
func (c *Catalog) Get(name string) (*relation.Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rel, ok := c.rels[name]
	return rel, ok
}

// GetVersioned resolves a relation together with its registration version.
// The pair is read under one lock, so the version identifies exactly the
// returned snapshot — the property plan-cache keys depend on.
func (c *Catalog) GetVersioned(name string) (*relation.Relation, uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rel, ok := c.rels[name]
	return rel, c.vers[name], ok
}

// Remove deletes a relation, reporting whether it existed.
func (c *Catalog) Remove(name string) bool {
	_, ok := c.RemoveVersioned(name)
	return ok
}

// RemoveVersioned is Remove additionally reporting the generation the
// removal advanced the catalog to, for stamping the dropped-relation event.
func (c *Catalog) RemoveVersioned(name string) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.rels[name]
	delete(c.rels, name)
	if ok {
		delete(c.vers, name)
		c.gen++
	}
	return c.gen, ok
}

// Len returns the number of registered relations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rels)
}

// RelationInfo describes one catalog entry for listings.
type RelationInfo struct {
	Name     string   `json:"name"`
	Attrs    []string `json:"attrs"`
	JoinAttr string   `json:"joinAttr"`
	Rows     int      `json:"rows"`
}

// List returns the catalog contents sorted by name.
func (c *Catalog) List() []RelationInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]RelationInfo, 0, len(c.rels))
	for name, rel := range c.rels {
		out = append(out, RelationInfo{
			Name:     name,
			Attrs:    append([]string(nil), rel.Schema.Attrs...),
			JoinAttr: rel.Schema.JoinAttr,
			Rows:     rel.Len(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
