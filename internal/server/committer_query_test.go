package server

import (
	"fmt"
	"net/http"
	"testing"
)

// TestCommitterQueryMatchesSerial drives the per-request committers knob end
// to end: a partitioned-commit run must stream the byte-identical result
// sequence of a serial run, and the run record must echo the granted
// (clamped) committer count.
func TestCommitterQueryMatchesSerial(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxRunWorkers: 2, MaxRunCommitters: 2})
	q := e2eWorkload(t, ts)

	collect := func(req QueryRequest) (run map[string]any, results []map[string]any) {
		t.Helper()
		resp := postQuery(t, ts, req)
		defer resp.Body.Close()
		recs := decodeNDJSON(t, resp.Body)
		if recs[0]["type"] != "run" {
			t.Fatalf("stream starts with %v", recs[0])
		}
		last := recs[len(recs)-1]
		if last["type"] != "stats" || last["error"] != nil {
			t.Fatalf("stats trailer = %v", last)
		}
		return recs[0], recs[1 : len(recs)-1]
	}

	serialRun, serial := collect(QueryRequest{Query: q, Engine: "progxe"})
	if c, ok := execObj(t, serialRun)["committers"]; ok && c != float64(0) {
		t.Fatalf("serial run record advertises committers=%v", c)
	}

	// Ask for more than the cap: clamped to MaxRunCommitters, echoed back.
	comRun, committed := collect(QueryRequest{Query: q, Engine: "progxe", Workers: 2, Committers: 64})
	comExec := execObj(t, comRun)
	if comExec["committers"] != float64(2) {
		t.Fatalf("run record committers = %v, want 2 (clamped)", comExec["committers"])
	}
	if comExec["workers"] != float64(2) {
		t.Fatalf("run record workers = %v, want 2", comExec["workers"])
	}

	if len(serial) != len(committed) || len(serial) == 0 {
		t.Fatalf("result counts differ: serial %d, committed %d", len(serial), len(committed))
	}
	for i := range serial {
		s, p := serial[i], committed[i]
		if s["leftId"] != p["leftId"] || s["rightId"] != p["rightId"] ||
			fmt.Sprint(s["out"]) != fmt.Sprint(p["out"]) {
			t.Fatalf("result %d diverges: serial %v, committed %v", i, s, p)
		}
	}

	// Committers without workers: the run is serial, so the knob is moot —
	// granted 0 and echoed as absent, never silently half-applied.
	soloRun, solo := collect(QueryRequest{Query: q, Engine: "progxe", Committers: 2})
	if c, ok := execObj(t, soloRun)["committers"]; ok && c != float64(0) {
		t.Fatalf("serial run granted committers=%v", c)
	}
	if len(solo) != len(serial) {
		t.Fatalf("committers-only run emitted %d results, want %d", len(solo), len(serial))
	}

	// The run log (and thus /v1/runs/{id}) mirrors the grant.
	runID, _ := comRun["id"].(string)
	rec, ok := srv.runlog.get(runID)
	if !ok {
		t.Fatalf("run %q not in the run log", runID)
	}
	if rec.Exec.Committers != 2 || rec.Exec.Workers != 2 {
		t.Fatalf("run log records workers=%d committers=%d, want 2/2", rec.Exec.Workers, rec.Exec.Committers)
	}
}

// TestCommitterQueryRejectsNegative pins the 400 path: a negative committer
// count is a malformed request, not a clamp-to-zero.
func TestCommitterQueryRejectsNegative(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := e2eWorkload(t, ts)
	resp := postQuery(t, ts, QueryRequest{Query: q, Engine: "progxe", Workers: 2, Committers: -1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative committers returned %d, want 400", resp.StatusCode)
	}
}

// TestMaxRunCommittersDisabled verifies that a negative server cap turns the
// knob off entirely: every request commits on the sequencer.
func TestMaxRunCommittersDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRunCommitters: -1})
	q := e2eWorkload(t, ts)
	resp := postQuery(t, ts, QueryRequest{Query: q, Engine: "progxe", Workers: 2, Committers: 8})
	defer resp.Body.Close()
	recs := decodeNDJSON(t, resp.Body)
	if c, ok := execObj(t, recs[0])["committers"]; ok && c != float64(0) {
		t.Fatalf("disabled cap still granted committers=%v", c)
	}
	if recs[len(recs)-1]["error"] != nil {
		t.Fatalf("run failed: %v", recs[len(recs)-1])
	}
}
