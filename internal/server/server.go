// Package server is the progressive query service: an HTTP subsystem that
// turns the ProgXe library into a network-facing system while preserving its
// defining property — skyline-over-join results are streamed to the client
// the moment the engine proves them final, not when the run completes.
//
// The service holds a concurrency-safe relation catalog (populated from
// synthetic-data specs or CSV uploads), accepts queries in the paper's
// PREFERRING dialect, and streams results as NDJSON or Server-Sent Events
// with a trailing stats record. Engine runs are admission-controlled and
// fully cancellable: a client that disconnects mid-stream aborts its run
// through the smj.ContextEngine contract.
//
// Endpoints:
//
//	GET    /healthz              liveness probe
//	GET    /v1/engines           accepted engine names
//	GET    /v1/relations         catalog listing (JSON)
//	POST   /v1/relations         generate a synthetic relation (datagen spec, JSON)
//	PUT    /v1/relations/{name}  upload a relation as CSV
//	GET    /v1/relations/{name}  download a relation as CSV
//	DELETE /v1/relations/{name}  drop a relation
//	POST   /v1/relations/{name}/changes  apply a batch of single-tuple changes (NDJSON/CSV feed lines)
//	POST   /v1/query             evaluate a PREFERRING query, streaming results
//	POST   /v1/subscribe         live query: stream the result set, then maintain it over catalog changes
//	GET    /v1/stats             service counters (JSON)
//	GET    /v1/runs              recent run records (phase breakdown + progressiveness quantiles)
//	GET    /v1/runs/{id}         one run record
//	GET    /v1/runs/{id}/trace   the run's Chrome-trace document (requests with "trace": true)
//	GET    /metrics              service counters (Prometheus text format)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"progxe/internal/core"
	"progxe/internal/datagen"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// Tunable defaults; see Config.
const (
	defaultMaxConcurrentRuns = 8
	defaultRunTimeout        = 60 * time.Second
	defaultMaxUploadBytes    = 64 << 20
	defaultMaxQueryBytes     = 1 << 20
	defaultWriteStallTimeout = 30 * time.Second
	defaultEngine            = "progxe"
	defaultMaxGeneratedRows  = 10_000_000
	defaultMaxRelations      = 64
	defaultMaxTotalRows      = 20_000_000
	defaultRunLogSize        = 128
	defaultPlanCacheSize     = 128
	// DefaultCoalesceReplay is the replay-ring bound (records per coalesced
	// run) the serve binary enables coalescing with; exported so the flag
	// default and the Config documentation agree.
	DefaultCoalesceReplay = 16384
	// defaultMaxSubscriptions bounds concurrent live subscriptions; they
	// hold resident output-space state, so they are admitted separately from
	// (and do not compete with) one-shot query runs.
	defaultMaxSubscriptions = 32
	// defaultChangeLogSize bounds the server-wide change ring subscriptions
	// replay; a subscription that falls further behind is terminated with
	// replay_truncated rather than stalling the feed.
	defaultChangeLogSize = 16384
	// maxGeneratedDims bounds the dimensionality of one synthetic relation;
	// together with the row cap and the catalog-entry cap it bounds the
	// memory unauthenticated registration requests can pin (skyline queries
	// beyond a handful of dimensions are degenerate anyway — §VI shows
	// d ≤ 5).
	maxGeneratedDims = 16
)

// Config tunes the service. The zero value is fully usable.
type Config struct {
	// MaxConcurrentRuns bounds engine runs executing at once; further query
	// requests are rejected with 429 until a slot frees. Default 8.
	MaxConcurrentRuns int
	// RunTimeout caps the wall-clock duration of one engine run; the run is
	// canceled (and the stream terminated with a stats record) when it
	// expires. Default 60s; negative disables the cap.
	RunTimeout time.Duration
	// MaxUploadBytes bounds CSV upload bodies. Default 64 MiB.
	MaxUploadBytes int64
	// MaxGeneratedRows bounds the cardinality of one synthetic relation.
	// Default 10M rows.
	MaxGeneratedRows int
	// MaxRelations bounds the number of catalog entries registrable over
	// the network, so repeated generate/upload requests cannot grow the
	// resident data without bound. Default 64; negative disables the cap.
	MaxRelations int
	// MaxTotalRows bounds the aggregate resident rows across all
	// network-registered relations — the per-relation caps alone would
	// still let MaxRelations maximal relations pin tens of gigabytes.
	// Default 20M rows; negative disables the cap.
	MaxTotalRows int
	// WriteStallTimeout bounds how long one streamed record may take to
	// reach the client socket. A connected-but-stalled reader (full TCP
	// window, never closes) would otherwise block the handler inside a
	// sink write forever — past every context deadline — and pin an
	// admission slot. Default 30s; negative disables the deadline.
	WriteStallTimeout time.Duration
	// MaxRunWorkers caps the per-request "workers" knob (parallel region
	// processing). Requests asking for more are clamped, not rejected —
	// parallelism changes latency, never results. Together with
	// MaxConcurrentRuns this bounds the total engine goroutines at
	// MaxConcurrentRuns × (2·MaxRunWorkers + 1): admission control limits
	// how many runs execute, this limits how wide each may fan out.
	// Default GOMAXPROCS; negative disables per-request parallelism.
	MaxRunWorkers int
	// MaxRunCommitters caps the per-request "committers" knob (the
	// partitioned commit stage). Non-negative requests above the cap are
	// clamped like workers; negative requests are rejected with 400 at the
	// handler. Default GOMAXPROCS; negative disables per-request
	// committers.
	MaxRunCommitters int
	// MaxRunSpeculate caps the per-request "speculate" knob (cross-round
	// speculative pipelining depth). Non-negative requests above the cap
	// are clamped; negative requests are rejected with 400 at the handler.
	// Default 8 (the engine's own depth cap); negative disables
	// per-request speculation.
	MaxRunSpeculate int
	// DefaultEngine is used when a query request names none. Default "progxe".
	DefaultEngine string
	// NewEngine overrides engine construction — a seam for tests to inject
	// slow or failing engines. Default NewEngine.
	NewEngine func(name string, opts core.Options) (smj.Engine, error)
	// Logger receives the per-run structured log lines (one Info line per
	// finished run; Warn for slow runs). Default: discard.
	Logger *slog.Logger
	// RunLogSize bounds the /v1/runs ring buffer of recent run records.
	// Default 128; negative disables retention (the endpoints serve empty).
	RunLogSize int
	// SlowRunThreshold logs runs slower than this at Warn level with their
	// full phase breakdown. 0 disables the slow-run log.
	SlowRunThreshold time.Duration
	// PlanCacheSize bounds the compiled-plan cache: entries are keyed on
	// (engine, normalized query, relation versions) and hold the compiled
	// problem plus, for ProgXe-family engines, the prepared plan snapshot
	// whose reuse skips the partition/region-build/prune phases entirely.
	// Catalog mutations bump relation versions, invalidating stale entries
	// by key miss. Default 128 entries; negative disables the cache.
	PlanCacheSize int
	// MaxSubscriptions bounds concurrent live subscriptions (POST
	// /v1/subscribe); further subscribe requests are rejected with 429 until
	// one detaches. Subscriptions hold their output space resident, so this
	// is a memory bound as much as a concurrency one. Default 32; negative
	// disables subscriptions (every subscribe is rejected).
	MaxSubscriptions int
	// ChangeLogSize bounds the server-wide ring of recent catalog change
	// events that live subscriptions replay. The feed writer never waits for
	// a subscriber; one that falls off the ring's tail is terminated with
	// replay_truncated. Default 16384 events.
	ChangeLogSize int
	// CoalesceReplay enables single-flight run coalescing: concurrent
	// identical query requests (same plan key, limit, granted exec knobs,
	// timeout; trace requests excluded) share one engine run,
	// each subscriber replaying the same encoded record stream. The value
	// bounds the per-run replay ring in records — a subscriber that falls
	// further behind than this is terminated with a truncated-replay error
	// rather than stalling the run. 0 (the default) disables coalescing,
	// preserving run-per-request semantics; the serve binary enables it
	// with DefaultCoalesceReplay.
	CoalesceReplay int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentRuns <= 0 {
		c.MaxConcurrentRuns = defaultMaxConcurrentRuns
	}
	if c.RunTimeout == 0 {
		c.RunTimeout = defaultRunTimeout
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = defaultMaxUploadBytes
	}
	if c.MaxGeneratedRows <= 0 {
		c.MaxGeneratedRows = defaultMaxGeneratedRows
	}
	if c.MaxRelations == 0 {
		c.MaxRelations = defaultMaxRelations
	}
	if c.MaxRelations < 0 {
		c.MaxRelations = 0 // unlimited
	}
	if c.MaxTotalRows == 0 {
		c.MaxTotalRows = defaultMaxTotalRows
	}
	if c.MaxTotalRows < 0 {
		c.MaxTotalRows = 0 // unlimited
	}
	if c.WriteStallTimeout == 0 {
		c.WriteStallTimeout = defaultWriteStallTimeout
	}
	if c.MaxRunWorkers == 0 {
		c.MaxRunWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxRunWorkers < 0 {
		c.MaxRunWorkers = 0 // per-request parallelism disabled
	}
	if c.MaxRunCommitters == 0 {
		c.MaxRunCommitters = runtime.GOMAXPROCS(0)
	}
	if c.MaxRunCommitters < 0 {
		c.MaxRunCommitters = 0 // per-request committers disabled
	}
	if c.MaxRunSpeculate == 0 {
		c.MaxRunSpeculate = 8
	}
	if c.MaxRunSpeculate < 0 {
		c.MaxRunSpeculate = 0 // per-request speculation disabled
	}
	if c.DefaultEngine == "" {
		c.DefaultEngine = defaultEngine
	}
	if c.NewEngine == nil {
		c.NewEngine = NewEngine
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.RunLogSize == 0 {
		c.RunLogSize = defaultRunLogSize
	}
	if c.RunLogSize < 0 {
		c.RunLogSize = 0 // retention disabled
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = defaultPlanCacheSize
	}
	if c.PlanCacheSize < 0 {
		c.PlanCacheSize = 0 // cache disabled
	}
	if c.CoalesceReplay < 0 {
		c.CoalesceReplay = 0 // coalescing disabled (also the zero default)
	}
	if c.MaxSubscriptions == 0 {
		c.MaxSubscriptions = defaultMaxSubscriptions
	}
	if c.MaxSubscriptions < 0 {
		c.MaxSubscriptions = 0 // subscriptions disabled
	}
	if c.ChangeLogSize <= 0 {
		c.ChangeLogSize = defaultChangeLogSize
	}
	return c
}

// Server is the progressive query service. It implements http.Handler;
// construct with New.
type Server struct {
	cfg     Config
	catalog *Catalog
	metrics *metrics
	adm     *admission
	mux     *http.ServeMux
	runlog  *runLog
	logger  *slog.Logger
	plans   *planCache // nil when the plan cache is disabled
	coal    *coalescer // nil when run coalescing is disabled

	// mutMu serializes catalog mutations with their change-ring publication,
	// so the ring's event order matches the sequence of catalog states (and
	// every event's seq is the catalog generation it produced).
	mutMu   sync.Mutex
	changes *changeLog
	subAdm  *admission // subscription slots, separate from query-run slots

	// runCtx is done once CancelRuns is called; every engine run's context
	// is tied to it so a graceful shutdown can abort in-flight streams.
	runCtx   context.Context
	stopRuns context.CancelFunc
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		catalog: NewCatalog(),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
	}
	s.runCtx, s.stopRuns = context.WithCancel(context.Background())
	s.adm = newAdmission(s.cfg.MaxConcurrentRuns)
	s.runlog = newRunLog(s.cfg.RunLogSize)
	s.logger = s.cfg.Logger
	if s.cfg.PlanCacheSize > 0 {
		s.plans = newPlanCache(s.cfg.PlanCacheSize, s.metrics.planHit, s.metrics.planMiss)
	}
	if s.cfg.CoalesceReplay > 0 {
		s.coal = newCoalescer(s.cfg.CoalesceReplay)
	}
	s.changes = newChangeLog(s.cfg.ChangeLogSize)
	if s.cfg.MaxSubscriptions > 0 {
		s.subAdm = newAdmission(s.cfg.MaxSubscriptions)
	}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /v1/engines", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"engines": EngineNames(), "default": s.cfg.DefaultEngine})
	})
	s.mux.HandleFunc("GET /v1/relations", s.handleListRelations)
	s.mux.HandleFunc("POST /v1/relations", s.handleGenerateRelation)
	s.mux.HandleFunc("PUT /v1/relations/{name}", s.handleUploadRelation)
	s.mux.HandleFunc("GET /v1/relations/{name}", s.handleDownloadRelation)
	s.mux.HandleFunc("DELETE /v1/relations/{name}", s.handleDeleteRelation)
	s.mux.HandleFunc("POST /v1/relations/{name}/changes", s.handleApplyChanges)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.metrics.snapshot())
	})
	s.mux.HandleFunc("GET /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"runs": s.runlog.list()})
	})
	s.mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		rec, ok := s.runlog.get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, errRunNotFound, "run %q is not in the run log", r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		b, ok := s.runlog.trace(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, errTraceNotFound, "run %q has no stored trace (request with \"trace\": true)", r.PathValue("id"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s-trace.json", r.PathValue("id")))
		_, _ = w.Write(b)
	})
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.metrics.writePrometheus(w)
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Catalog exposes the relation registry, e.g. for preloading datasets at
// startup.
func (s *Server) Catalog() *Catalog { return s.catalog }

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() Snapshot { return s.metrics.snapshot() }

// CancelRuns aborts every in-flight engine run (each stream still emits its
// stats trailer) and makes future runs abort immediately. Call it before
// http.Server.Shutdown so draining connections finish within the shutdown
// window instead of running out their timeouts.
func (s *Server) CancelRuns() { s.stopRuns() }

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// GenerateRequest is the body of POST /v1/relations: a datagen spec plus the
// name to register under.
type GenerateRequest struct {
	Name         string  `json:"name"`
	Rows         int     `json:"rows"`
	Dims         int     `json:"dims"`
	Distribution string  `json:"distribution,omitempty"` // independent | correlated | anti-correlated
	Selectivity  float64 `json:"selectivity,omitempty"`  // target join selectivity σ
	Seed         uint64  `json:"seed,omitempty"`
}

func (s *Server) handleGenerateRelation(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	body := http.MaxBytesReader(w, r.Body, defaultMaxQueryBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, errBadRelation, "bad generate spec: %v", err)
		return
	}
	if !validName(req.Name) {
		writeError(w, http.StatusBadRequest, errBadRelation, "relation name %q is not a valid identifier", req.Name)
		return
	}
	if req.Rows > s.cfg.MaxGeneratedRows {
		writeError(w, http.StatusBadRequest, errBadRelation, "rows %d exceeds the per-relation cap %d", req.Rows, s.cfg.MaxGeneratedRows)
		return
	}
	if req.Dims > maxGeneratedDims {
		writeError(w, http.StatusBadRequest, errBadRelation, "dims %d exceeds the cap %d", req.Dims, maxGeneratedDims)
		return
	}
	dist := datagen.Independent
	if req.Distribution != "" {
		var err error
		if dist, err = datagen.ParseDistribution(req.Distribution); err != nil {
			writeError(w, http.StatusBadRequest, errBadRelation, "%v", err)
			return
		}
	}
	sel := req.Selectivity
	if sel == 0 {
		sel = 0.01
	}
	rel, err := datagen.Generate(datagen.Spec{
		Name: req.Name, N: req.Rows, Dims: req.Dims,
		Distribution: dist, Selectivity: sel, Seed: req.Seed,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadRelation, "%v", err)
		return
	}
	if !s.registerCapped(w, rel) {
		return
	}
	writeJSON(w, http.StatusCreated, RelationInfo{
		Name: req.Name, Attrs: rel.Schema.Attrs, JoinAttr: rel.Schema.JoinAttr, Rows: rel.Len(),
	})
}

// registerCapped registers a network-supplied relation against the catalog
// entry cap, writing the HTTP error itself on failure. A registration that
// replaces an existing name publishes a relation_replaced event so live
// subscriptions on it terminate — their resident snapshot has diverged
// beyond incremental repair.
func (s *Server) registerCapped(w http.ResponseWriter, rel *relation.Relation) bool {
	s.mutMu.Lock()
	ver, replaced, err := s.catalog.RegisterCappedVersioned(rel, s.cfg.MaxRelations, s.cfg.MaxTotalRows)
	if err == nil && replaced {
		s.publishCatalogEvent(ver, rel.Schema.Name, eventReplaced)
	}
	s.mutMu.Unlock()
	switch {
	case err == nil:
		return true
	case errors.As(err, &ErrCatalogFull{}):
		writeError(w, http.StatusConflict, errCatalogFull, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, errBadRelation, "%v", err)
	}
	return false
}

func (s *Server) handleUploadRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validName(name) {
		writeError(w, http.StatusBadRequest, errBadRelation, "relation name %q is not a valid identifier", name)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	rel, err := relation.ReadCSV(name, body)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadRelation, "%v", err)
		return
	}
	if !s.registerCapped(w, rel) {
		return
	}
	writeJSON(w, http.StatusCreated, RelationInfo{
		Name: name, Attrs: rel.Schema.Attrs, JoinAttr: rel.Schema.JoinAttr, Rows: rel.Len(),
	})
}

func (s *Server) handleDownloadRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rel, ok := s.catalog.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, errRelationNotFound, "relation %q is not in the catalog", name)
		return
	}
	if s.cfg.WriteStallTimeout > 0 {
		// Bound the whole download so a stalled reader cannot pin the
		// handler; generous multiple of the per-record stream deadline.
		// Cleared afterwards so the keep-alive connection is not poisoned
		// for its next request.
		rc := http.NewResponseController(w)
		_ = rc.SetWriteDeadline(time.Now().Add(10 * s.cfg.WriteStallTimeout))
		defer rc.SetWriteDeadline(time.Time{})
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	_ = rel.WriteCSV(w)
}

func (s *Server) handleDeleteRelation(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mutMu.Lock()
	ver, ok := s.catalog.RemoveVersioned(name)
	if ok {
		// Terminate live subscriptions on the dropped relation; in-flight
		// one-shot runs keep their admission-time snapshot, as before.
		s.publishCatalogEvent(ver, name, eventDropped)
	}
	s.mutMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errRelationNotFound, "relation %q is not in the catalog", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) handleListRelations(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"relations": s.catalog.List()})
}
