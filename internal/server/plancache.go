package server

import (
	"container/list"
	"context"
	"sync"

	"progxe/internal/core"
	"progxe/internal/smj"
)

// planKey identifies one compiled plan: the engine (whose registry name
// fixes every plan-affecting option), the normalized query text, and the
// catalog versions of both referenced relations. Catalog mutations bump the
// versions, so stale plans are invalidated by key miss — they simply age out
// of the LRU.
type planKey struct {
	engine   string // registry name, lowercased
	query    string // canonical rendering (query.Query.String)
	leftVer  uint64
	rightVer uint64
}

// planEntry is one cached compilation: the compiled problem (selection
// push-down applied, relations snapshotted) and, for engines of the ProgXe
// family, the prepared plan snapshot whose reuse skips the partition /
// region-build / prune phases. Baselines cache the problem alone.
type planEntry struct {
	problem *smj.Problem
	plan    *core.Prepared // nil for engines without plan support
}

// planEngine is the prepared-plan capability of the ProgXe family
// (implemented by *core.Engine); engines constructed through the NewEngine
// seam are probed for it with a type assertion.
type planEngine interface {
	smj.Engine
	PrepareContext(ctx context.Context, p *smj.Problem) (*core.Prepared, error)
	RunPlanContext(ctx context.Context, pl *core.Prepared, sink smj.Sink) (smj.Stats, error)
}

// planCache is a mutex-guarded LRU of compiled plans with single-flight
// build deduplication: concurrent requests for the same missing key share
// one compilation — the builder counts the miss, the sharers count hits —
// so a cold burst compiles once instead of N times.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[planKey]*list.Element
	lru     *list.List // front = most recent; values are *planNode
	hits    func()
	misses  func()
}

// planNode is one LRU slot. A node is inserted before its build completes;
// ready is closed once value/err are final, and sharers wait on it outside
// the cache lock.
type planNode struct {
	key   planKey
	ready chan struct{}
	value *planEntry
	err   error
}

func newPlanCache(max int, hits, misses func()) *planCache {
	return &planCache{
		max:     max,
		entries: make(map[planKey]*list.Element),
		lru:     list.New(),
		hits:    hits,
		misses:  misses,
	}
}

// getOrBuild returns the cached entry for key, building it with build on a
// miss; hit reports which happened (sharers of an in-flight build count as
// hits — they skipped a compilation). Concurrent callers of the same
// missing key block until the one builder finishes and share its result;
// build errors are not cached — the failed node is removed so a later
// request retries.
func (pc *planCache) getOrBuild(key planKey, build func() (*planEntry, error)) (entry *planEntry, hit bool, err error) {
	pc.mu.Lock()
	if el, ok := pc.entries[key]; ok {
		pc.lru.MoveToFront(el)
		node := el.Value.(*planNode)
		pc.mu.Unlock()
		pc.hits()
		<-node.ready
		if node.err != nil {
			return nil, true, node.err
		}
		return node.value, true, nil
	}
	node := &planNode{key: key, ready: make(chan struct{})}
	el := pc.lru.PushFront(node)
	pc.entries[key] = el
	for pc.lru.Len() > pc.max {
		old := pc.lru.Back()
		pc.lru.Remove(old)
		delete(pc.entries, old.Value.(*planNode).key)
	}
	pc.mu.Unlock()
	pc.misses()

	node.value, node.err = build()
	close(node.ready)
	if node.err != nil {
		pc.mu.Lock()
		// Drop the failed node so the error is not served forever — but only
		// if it is still ours (eviction + reinsertion may have replaced it).
		if cur, ok := pc.entries[key]; ok && cur == el {
			pc.lru.Remove(el)
			delete(pc.entries, key)
		}
		pc.mu.Unlock()
		return nil, false, node.err
	}
	return node.value, false, nil
}

// len reports the resident entry count (including in-flight builds).
func (pc *planCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.lru.Len()
}
