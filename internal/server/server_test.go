package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"progxe/internal/core"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// gatedEngine is a ContextEngine test double: it emits one result, then
// blocks until the test releases it (or its context is canceled). It makes
// mid-run server states — streams in flight, slots held, disconnects —
// deterministic instead of timing-dependent.
type gatedEngine struct {
	started chan struct{} // closed once the run begins
	emitted chan struct{} // closed after the first result is emitted
	proceed chan struct{} // the run blocks on this after the first result
}

func newGatedEngine() *gatedEngine {
	return &gatedEngine{
		started: make(chan struct{}),
		emitted: make(chan struct{}),
		proceed: make(chan struct{}),
	}
}

func (g *gatedEngine) Name() string { return "gated" }

func (g *gatedEngine) Run(p *smj.Problem, sink smj.Sink) (smj.Stats, error) {
	return g.RunContext(context.Background(), p, sink)
}

func (g *gatedEngine) RunContext(ctx context.Context, p *smj.Problem, sink smj.Sink) (smj.Stats, error) {
	close(g.started)
	sink.Emit(smj.Result{LeftID: 10, RightID: 20, Out: []float64{1, 2}})
	close(g.emitted)
	select {
	case <-g.proceed:
		sink.Emit(smj.Result{LeftID: 11, RightID: 21, Out: []float64{3, 4}})
		return smj.Stats{ResultCount: 2}, nil
	case <-ctx.Done():
		return smj.Stats{}, ctx.Err()
	}
}

var _ smj.ContextEngine = (*gatedEngine)(nil)

// tinyCSV is a two-relation fixture small enough to inline.
const (
	tinyLeftCSV  = "id,price,speed,region\n1,10,5,1\n2,20,1,1\n3,5,9,2\n"
	tinyRightCSV = "id,cost,delay,region\n1,3,2,1\n2,8,1,2\n3,1,7,1\n"
)

const tinyQuery = `SELECT (L.price + R.cost) AS total, (L.speed + R.delay) AS lag
	FROM L L, R R WHERE L.region = R.region
	PREFERRING LOWEST(total) AND LOWEST(lag)`

// newTestServer starts an httptest server with the tiny fixture uploaded.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	for name, csv := range map[string]string{"L": tinyLeftCSV, "R": tinyRightCSV} {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/relations/"+name, strings.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, resp.StatusCode)
		}
	}
	return srv, ts
}

func postQuery(t *testing.T, ts *httptest.Server, req QueryRequest) *http.Response {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestCatalogCSVRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Download must reproduce the uploaded CSV byte-for-byte.
	resp, err := http.Get(ts.URL + "/v1/relations/L")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("download: status %d", resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != tinyLeftCSV {
		t.Fatalf("round-trip mismatch:\ngot  %q\nwant %q", got, tinyLeftCSV)
	}
	// And parse back into an equal relation.
	rel, err := relation.ReadCSV("L", bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 || rel.Schema.JoinAttr != "region" {
		t.Fatalf("round-trip relation: %d rows, join %q", rel.Len(), rel.Schema.JoinAttr)
	}

	// Listing reflects both relations.
	var listing struct {
		Relations []RelationInfo `json:"relations"`
	}
	getJSON(t, ts.URL+"/v1/relations", &listing)
	if len(listing.Relations) != 2 || listing.Relations[0].Name != "L" || listing.Relations[1].Name != "R" {
		t.Fatalf("listing = %+v", listing)
	}
	if listing.Relations[0].Rows != 3 || listing.Relations[0].JoinAttr != "region" {
		t.Fatalf("listing info = %+v", listing.Relations[0])
	}

	// Delete, then the download 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/relations/L", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	g2, err := http.Get(ts.URL + "/v1/relations/L")
	if err != nil {
		t.Fatal(err)
	}
	g2.Body.Close()
	if g2.StatusCode != http.StatusNotFound {
		t.Fatalf("post-delete download: status %d", g2.StatusCode)
	}
}

func TestGenerateRelationEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"name":"Syn","rows":50,"dims":2,"distribution":"anti-correlated","selectivity":0.1,"seed":3}`
	resp, err := http.Post(ts.URL+"/v1/relations", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("generate: status %d", resp.StatusCode)
	}
	var info RelationInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Rows != 50 || len(info.Attrs) != 2 || info.JoinAttr != "jkey" {
		t.Fatalf("generated info = %+v", info)
	}

	for _, bad := range []string{
		`{"name":"x y","rows":5,"dims":2}`,                      // invalid identifier
		`{"name":"ok","rows":5,"dims":0}`,                       // datagen rejects dims
		`{"name":"ok","rows":1000000000000}`,                    // over row cap
		`{"name":"ok","rows":5,"dims":1000000}`,                 // over dims cap
		`{"name":"ok","rows":5,"dims":2,"distribution":"zipf"}`, // unknown distribution
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/relations", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("generate %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestQueryValidationErrors pins the one structured error shape every HTTP
// error body carries: {"type":"error","code":<stable-slug>,"message":...},
// with the code identifying the failure class.
func TestQueryValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		req    QueryRequest
		status int
		code   string
	}{
		{"malformed query", QueryRequest{Query: "SELECT FROM WHERE"}, http.StatusBadRequest, "bad_query"},
		{"unknown relation", QueryRequest{Query: strings.ReplaceAll(tinyQuery, "L L", "Nope L")}, http.StatusNotFound, "relation_not_found"},
		{"unknown attribute", QueryRequest{Query: strings.ReplaceAll(tinyQuery, "L.price", "L.nosuch")}, http.StatusBadRequest, "bad_query"},
		{"unknown engine", QueryRequest{Query: tinyQuery, Engine: "quantum"}, http.StatusBadRequest, "unknown_engine"},
		{"unknown format", QueryRequest{Query: tinyQuery, Format: "xml"}, http.StatusBadRequest, "bad_format"},
		{"unknown ranker", QueryRequest{Query: tinyQuery, Ranker: "nope"}, http.StatusBadRequest, "bad_exec"},
		{"exec conflict", QueryRequest{Query: tinyQuery, Workers: 1, Exec: &ExecRequest{Workers: 2}}, http.StatusBadRequest, "exec_conflict"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := postQuery(t, ts, c.req)
			defer resp.Body.Close()
			if resp.StatusCode != c.status {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, c.status, b)
			}
			var e errorRecord
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("error envelope missing (err %v)", err)
			}
			if e.Type != "error" || e.Code != c.code || e.Message == "" {
				t.Fatalf("error envelope = %+v, want type=error code=%q with a message", e, c.code)
			}
		})
	}
}

// TestAdmissionControl verifies load shedding: with one slot held by a
// blocked run, the next query is rejected with 429 and counted, and after
// release the service admits again.
func TestAdmissionControl(t *testing.T) {
	g := newGatedEngine()
	srv, ts := newTestServer(t, Config{
		MaxConcurrentRuns: 1,
		NewEngine:         func(string, core.Options) (smj.Engine, error) { return g, nil },
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postQuery(t, ts, QueryRequest{Query: tinyQuery})
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
	}()
	<-g.started // the slot is now provably held

	resp := postQuery(t, ts, QueryRequest{Query: tinyQuery})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second query: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response lacks Retry-After")
	}
	resp.Body.Close()

	close(g.proceed)
	wg.Wait()

	st := srv.Stats()
	if st.RunsRejected != 1 {
		t.Fatalf("runsRejected = %d, want 1", st.RunsRejected)
	}
	if st.RunsCompleted != 1 || st.RunsActive != 0 {
		t.Fatalf("completed %d active %d, want 1/0", st.RunsCompleted, st.RunsActive)
	}

	// Slot released: a real engine run is admitted now.
	srv.cfg.NewEngine = NewEngine
	resp = postQuery(t, ts, QueryRequest{Query: tinyQuery})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release query: status %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
}

func TestStatsAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postQuery(t, ts, QueryRequest{Query: tinyQuery})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var snap Snapshot
	getJSON(t, ts.URL+"/v1/stats", &snap)
	if snap.RunsStarted != 1 || snap.RunsCompleted != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.ResultsStreamed == 0 || snap.TTFRObserved != 1 {
		t.Fatalf("results %d ttfr %d", snap.ResultsStreamed, snap.TTFRObserved)
	}
	last := snap.TTFR[len(snap.TTFR)-1]
	if !last.Inf || last.Count != 1 {
		t.Fatalf("TTFR +Inf bucket = %+v", last)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	b, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"progxe_runs_started_total 1",
		"progxe_runs_active 0",
		`progxe_ttfr_seconds_bucket{le="+Inf"} 1`,
		"progxe_ttfr_seconds_count 1",
	} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, b)
		}
	}

	var health map[string]string
	getJSON(t, ts.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	var engines struct {
		Engines []string `json:"engines"`
		Default string   `json:"default"`
	}
	getJSON(t, ts.URL+"/v1/engines", &engines)
	if engines.Default != "progxe" || len(engines.Engines) != len(EngineNames()) {
		t.Fatalf("engines = %+v", engines)
	}
}

// TestRunTimeout verifies the per-request timeout: a run that never finishes
// is canceled and the trailing stats record says so.
func TestRunTimeout(t *testing.T) {
	g := newGatedEngine()
	srv, ts := newTestServer(t, Config{
		NewEngine: func(string, core.Options) (smj.Engine, error) { return g, nil },
	})
	resp := postQuery(t, ts, QueryRequest{Query: tinyQuery, TimeoutMillis: 50})
	defer resp.Body.Close()
	recs := decodeNDJSON(t, resp.Body)
	last := recs[len(recs)-1]
	if last["type"] != "stats" || last["canceled"] != true || last["reason"] != "timeout" {
		t.Fatalf("trailing record = %v", last)
	}
	if st := srv.Stats(); st.RunsCanceled != 1 {
		t.Fatalf("runsCanceled = %d, want 1", st.RunsCanceled)
	}
}

// TestCatalogEntryCap verifies that network registrations cannot grow the
// catalog without bound, while replacing an existing name stays allowed.
func TestCatalogEntryCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRelations: 3}) // L and R occupy 2 slots
	put := func(name string) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/relations/"+name, strings.NewReader(tinyLeftCSV))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put("Third"); code != http.StatusCreated {
		t.Fatalf("third relation: status %d", code)
	}
	if code := put("Fourth"); code != http.StatusConflict {
		t.Fatalf("over-cap relation: status %d, want 409", code)
	}
	if code := put("Third"); code != http.StatusCreated {
		t.Fatalf("replacement at cap: status %d", code)
	}
	// The generate endpoint shares the cap.
	resp, err := http.Post(ts.URL+"/v1/relations", "application/json",
		strings.NewReader(`{"name":"Fifth","rows":5,"dims":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("over-cap generate: status %d, want 409", resp.StatusCode)
	}
}

// TestCatalogRowBudget verifies the aggregate row cap across the catalog.
func TestCatalogRowBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTotalRows: 10}) // L and R hold 6 rows
	gen := func(name string, rows int) int {
		resp, err := http.Post(ts.URL+"/v1/relations", "application/json",
			strings.NewReader(fmt.Sprintf(`{"name":%q,"rows":%d,"dims":2}`, name, rows)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := gen("Small", 4); code != http.StatusCreated {
		t.Fatalf("within budget: status %d", code)
	}
	if code := gen("Burst", 5); code != http.StatusConflict {
		t.Fatalf("over budget: status %d, want 409", code)
	}
	// Replacing an existing relation with a smaller one frees budget.
	if code := gen("Small", 1); code != http.StatusCreated {
		t.Fatalf("shrinking replacement: status %d", code)
	}
	if code := gen("Burst", 3); code != http.StatusCreated {
		t.Fatalf("post-shrink registration: status %d", code)
	}
}

// TestUploadRejectsNonFiniteValues keeps NaN/Inf out of the catalog — they
// have no dominance semantics and cannot round-trip through JSON streams.
func TestUploadRejectsNonFiniteValues(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, csv := range []string{
		"id,a,k\n1,NaN,1\n",
		"id,a,k\n1,+Inf,1\n",
		"id,a,k\n1,-Infinity,1\n",
	} {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/relations/Weird", strings.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("upload %q: status %d, want 400", csv, resp.StatusCode)
		}
	}
}

// TestRunTimeoutOverflowClamped is the regression test for the
// TimeoutMillis overflow: a huge client value must not wrap negative and
// disable the server's RunTimeout cap.
func TestRunTimeoutOverflowClamped(t *testing.T) {
	g := newGatedEngine()
	_, ts := newTestServer(t, Config{
		RunTimeout: 50 * time.Millisecond,
		NewEngine:  func(string, core.Options) (smj.Engine, error) { return g, nil },
	})
	resp := postQuery(t, ts, QueryRequest{Query: tinyQuery, TimeoutMillis: 1 << 62})
	defer resp.Body.Close()
	recs := decodeNDJSON(t, resp.Body) // would block forever if the cap were lost
	last := recs[len(recs)-1]
	if last["type"] != "stats" || last["reason"] != "timeout" {
		t.Fatalf("trailing record = %v", last)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// waitForStats polls the server's counters until cond holds or the deadline
// passes, for states reached asynchronously (e.g. disconnect cancellation).
func waitForStats(t *testing.T, srv *Server, what string, cond func(Snapshot) bool) Snapshot {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := srv.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats %+v", what, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func fmtRecords(recs []map[string]any) string {
	var sb strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&sb, "%v\n", r)
	}
	return sb.String()
}

// TestSchedulerCountersExposed pins the scheduler-layer observability: a
// ProgXe run's stats record must carry the scheduler counters, and the
// service must accumulate them into /v1/stats and /metrics.
func TestSchedulerCountersExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postQuery(t, ts, QueryRequest{Query: tinyQuery})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, key := range []string{`"SchedEdges"`, `"SchedRankRefreshes"`, `"FenwickUpdates"`} {
		if !strings.Contains(string(body), key) {
			t.Fatalf("stats record missing %s in:\n%s", key, body)
		}
	}

	var snap Snapshot
	getJSON(t, ts.URL+"/v1/stats", &snap)
	// The tiny fixture yields at least one region, whose root rank is
	// refreshed once, and a populated output grid backing the active-cell
	// tree — both counters must be non-zero after one ProgXe run.
	if snap.SchedRankRefreshes == 0 || snap.FenwickUpdates == 0 {
		t.Fatalf("scheduler counters not accumulated: %+v", snap)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	b, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"progxe_sched_edges_total",
		"progxe_sched_rank_refreshes_total",
		"progxe_sched_fenwick_updates_total",
	} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, b)
		}
	}
}
