package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"progxe/internal/obs"
	"progxe/internal/smj"
)

// ttfrBuckets are the upper bounds (seconds) of the time-to-first-result
// histogram — the service-level progressiveness metric. Counts are
// cumulative, Prometheus-style: bucket i counts runs whose first result
// arrived within ttfrBuckets[i].
var ttfrBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metrics aggregates service counters. All methods are safe for concurrent
// use; reads return consistent snapshots.
type metrics struct {
	mu              sync.Mutex
	runsStarted     int64
	runsActive      int64
	runsCompleted   int64
	runsCanceled    int64
	runsFailed      int64
	runsRejected    int64
	resultsStreamed int64
	// Plan-cache and run-coalescing counters. Hits and misses count
	// getOrBuild consultations (deduplicated builders count one miss;
	// sharers of an in-flight build count hits); coalescedRuns counts
	// engine runs started on behalf of a subscriber group, and
	// coalescedSubscribers every stream attached to one (leaders
	// included), so fan-out = subscribers / runs. replayTruncated counts
	// subscribers disconnected because they fell behind the bounded
	// replay ring.
	planCacheHits        int64
	planCacheMisses      int64
	coalescedRuns        int64
	coalescedSubscribers int64
	replayTruncated      int64
	// Live-subscription counters. subsLive gauges currently attached
	// subscriptions; subsStarted counts every subscription admitted;
	// subChanges counts catalog change events folded into resident output
	// spaces across all subscriptions plus changes applied through the feed
	// endpoint; subRetracts counts retract records streamed.
	subsStarted  int64
	subsLive     int64
	subChanges   int64
	subRetracts  int64
	ttfrCounts   []int64 // len(ttfrBuckets)+1; last is +Inf
	ttfrSum      float64 // seconds
	ttfrObserved int64
	// Scheduler-layer engine counters, accumulated across runs.
	schedEdges         int64
	schedRankRefreshes int64
	fenwickUpdates     int64
	// progress holds per-engine, per-milestone histograms of the run
	// progressiveness quantiles (TT-first/10%/50%/90%/last), over the same
	// bucket bounds as the TTFR histogram.
	progress map[progressKey]*histogram
	// phaseSeconds accumulates profiler phase time per (phase, lane).
	phaseSeconds map[phaseKey]float64
}

// progressKey labels one progressiveness histogram series.
type progressKey struct {
	engine    string
	milestone string // first | p10 | p50 | p90 | last
}

// phaseKey labels one phase-time counter series.
type phaseKey struct {
	phase string
	lane  string // sequencer | worker
}

// histogram is one cumulative-on-read histogram over ttfrBuckets.
type histogram struct {
	counts []int64 // len(ttfrBuckets)+1; last is +Inf
	sum    float64 // seconds
	n      int64
}

func (h *histogram) observe(s float64) {
	i := 0
	for i < len(ttfrBuckets) && s > ttfrBuckets[i] {
		i++
	}
	h.counts[i]++
	h.sum += s
	h.n++
}

func newMetrics() *metrics {
	return &metrics{
		ttfrCounts:   make([]int64, len(ttfrBuckets)+1),
		progress:     make(map[progressKey]*histogram),
		phaseSeconds: make(map[phaseKey]float64),
	}
}

func (m *metrics) runStarted() {
	m.mu.Lock()
	m.runsStarted++
	m.runsActive++
	m.mu.Unlock()
}

// runOutcome classifies how a run ended.
type runOutcome int

const (
	runCompleted runOutcome = iota
	runCanceled
	runFailed
)

func (m *metrics) runFinished(o runOutcome, results int64) {
	m.mu.Lock()
	m.runsActive--
	switch o {
	case runCompleted:
		m.runsCompleted++
	case runCanceled:
		m.runsCanceled++
	case runFailed:
		m.runsFailed++
	}
	m.resultsStreamed += results
	m.mu.Unlock()
}

func (m *metrics) runRejected() {
	m.mu.Lock()
	m.runsRejected++
	m.mu.Unlock()
}

func (m *metrics) planHit() {
	m.mu.Lock()
	m.planCacheHits++
	m.mu.Unlock()
}

func (m *metrics) planMiss() {
	m.mu.Lock()
	m.planCacheMisses++
	m.mu.Unlock()
}

func (m *metrics) coalescedRunStarted() {
	m.mu.Lock()
	m.coalescedRuns++
	m.mu.Unlock()
}

func (m *metrics) coalescedAttach() {
	m.mu.Lock()
	m.coalescedSubscribers++
	m.mu.Unlock()
}

func (m *metrics) replayTruncation() {
	m.mu.Lock()
	m.replayTruncated++
	m.mu.Unlock()
}

func (m *metrics) subStarted() {
	m.mu.Lock()
	m.subsStarted++
	m.subsLive++
	m.mu.Unlock()
}

func (m *metrics) subFinished(applied, retractions int64) {
	m.mu.Lock()
	m.subsLive--
	m.subChanges += applied
	m.subRetracts += retractions
	m.mu.Unlock()
}

func (m *metrics) subChangesApplied(n int64) {
	m.mu.Lock()
	m.subChanges += n
	m.mu.Unlock()
}

// observeEngineStats folds one run's engine counters into the service
// totals (currently the scheduler-layer triple).
func (m *metrics) observeEngineStats(st smj.Stats) {
	m.mu.Lock()
	m.schedEdges += int64(st.SchedEdges)
	m.schedRankRefreshes += int64(st.SchedRankRefreshes)
	m.fenwickUpdates += int64(st.FenwickUpdates)
	m.mu.Unlock()
}

// observeProgress folds one run's progressiveness quantiles into the
// per-engine labeled histograms. Runs without results record nothing.
func (m *metrics) observeProgress(engine string, q obs.Quantiles) {
	if q.Count == 0 {
		return
	}
	m.mu.Lock()
	for _, ms := range [...]struct {
		name   string
		millis float64
	}{
		{"first", q.FirstMillis},
		{"p10", q.P10Millis},
		{"p50", q.P50Millis},
		{"p90", q.P90Millis},
		{"last", q.LastMillis},
	} {
		k := progressKey{engine: engine, milestone: ms.name}
		h := m.progress[k]
		if h == nil {
			h = &histogram{counts: make([]int64, len(ttfrBuckets)+1)}
			m.progress[k] = h
		}
		h.observe(ms.millis / 1000)
	}
	m.mu.Unlock()
}

// observePhases folds one run's profiler report into the per-phase time
// counters, split by lane.
func (m *metrics) observePhases(rep obs.Report) {
	if len(rep.Phases) == 0 {
		return
	}
	m.mu.Lock()
	for _, ph := range rep.Phases {
		if ph.SequencerMillis > 0 {
			m.phaseSeconds[phaseKey{phase: ph.Phase, lane: "sequencer"}] += ph.SequencerMillis / 1000
		}
		if ph.WorkerMillis > 0 {
			m.phaseSeconds[phaseKey{phase: ph.Phase, lane: "worker"}] += ph.WorkerMillis / 1000
		}
		if ph.CommitterMillis > 0 {
			m.phaseSeconds[phaseKey{phase: ph.Phase, lane: "committer"}] += ph.CommitterMillis / 1000
		}
	}
	m.mu.Unlock()
}

// observeTTFR records the time-to-first-result of one run.
func (m *metrics) observeTTFR(d time.Duration) {
	s := d.Seconds()
	m.mu.Lock()
	m.ttfrObserved++
	m.ttfrSum += s
	i := 0
	for i < len(ttfrBuckets) && s > ttfrBuckets[i] {
		i++
	}
	m.ttfrCounts[i]++
	m.mu.Unlock()
}

// Bucket is one cumulative histogram bucket of a Snapshot.
type Bucket struct {
	LE    float64 `json:"le"` // upper bound in seconds; +Inf encoded as 0 with Inf=true
	Inf   bool    `json:"inf,omitempty"`
	Count int64   `json:"count"` // cumulative
}

// Snapshot is a point-in-time view of the service counters, shaped for the
// JSON stats endpoint.
type Snapshot struct {
	RunsStarted     int64 `json:"runsStarted"`
	RunsActive      int64 `json:"runsActive"`
	RunsCompleted   int64 `json:"runsCompleted"`
	RunsCanceled    int64 `json:"runsCanceled"`
	RunsFailed      int64 `json:"runsFailed"`
	RunsRejected    int64 `json:"runsRejected"`
	ResultsStreamed int64 `json:"resultsStreamed"`
	// Plan-cache and coalescing counters; see metrics for semantics.
	PlanCacheHits        int64 `json:"planCacheHits"`
	PlanCacheMisses      int64 `json:"planCacheMisses"`
	CoalescedRuns        int64 `json:"coalescedRuns"`
	CoalescedSubscribers int64 `json:"coalescedSubscribers"`
	ReplayTruncated      int64 `json:"replayTruncated"`
	// Live-subscription counters; see metrics for semantics.
	SubscriptionsStarted       int64    `json:"subscriptionsStarted"`
	SubscriptionsLive          int64    `json:"subscriptionsLive"`
	SubscriptionChangesApplied int64    `json:"subscriptionChangesApplied"`
	SubscriptionRetractions    int64    `json:"subscriptionRetractions"`
	TTFRObserved               int64    `json:"ttfrObserved"`
	TTFRSumSeconds             float64  `json:"ttfrSumSeconds"`
	TTFR                       []Bucket `json:"ttfr"`
	// Scheduler-layer totals across runs (ProgXe engines with graph
	// ordering; zero for baselines and fixed orders).
	SchedEdges         int64 `json:"schedEdges"`
	SchedRankRefreshes int64 `json:"schedRankRefreshes"`
	FenwickUpdates     int64 `json:"fenwickUpdates"`
	// Progress summarizes the per-engine progressiveness milestones
	// (count and summed seconds per series; the full bucket vectors are
	// exposed on /metrics).
	Progress []ProgressStat `json:"progress,omitempty"`
	// PhaseSeconds totals profiler phase time per (phase, lane).
	PhaseSeconds []PhaseStat `json:"phaseSeconds,omitempty"`
}

// ProgressStat is one engine × milestone progressiveness series.
type ProgressStat struct {
	Engine     string  `json:"engine"`
	Milestone  string  `json:"milestone"` // first | p10 | p50 | p90 | last
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sumSeconds"`
}

// PhaseStat is one phase × lane accumulated-time series.
type PhaseStat struct {
	Phase   string  `json:"phase"`
	Lane    string  `json:"lane"` // sequencer | worker
	Seconds float64 `json:"seconds"`
}

func (m *metrics) snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		RunsStarted:     m.runsStarted,
		RunsActive:      m.runsActive,
		RunsCompleted:   m.runsCompleted,
		RunsCanceled:    m.runsCanceled,
		RunsFailed:      m.runsFailed,
		RunsRejected:    m.runsRejected,
		ResultsStreamed: m.resultsStreamed,

		PlanCacheHits:        m.planCacheHits,
		PlanCacheMisses:      m.planCacheMisses,
		CoalescedRuns:        m.coalescedRuns,
		CoalescedSubscribers: m.coalescedSubscribers,
		ReplayTruncated:      m.replayTruncated,

		SubscriptionsStarted:       m.subsStarted,
		SubscriptionsLive:          m.subsLive,
		SubscriptionChangesApplied: m.subChanges,
		SubscriptionRetractions:    m.subRetracts,
		TTFRObserved:               m.ttfrObserved,
		TTFRSumSeconds:             m.ttfrSum,

		SchedEdges:         m.schedEdges,
		SchedRankRefreshes: m.schedRankRefreshes,
		FenwickUpdates:     m.fenwickUpdates,
	}
	cum := int64(0)
	for i, le := range ttfrBuckets {
		cum += m.ttfrCounts[i]
		s.TTFR = append(s.TTFR, Bucket{LE: le, Count: cum})
	}
	cum += m.ttfrCounts[len(ttfrBuckets)]
	s.TTFR = append(s.TTFR, Bucket{Inf: true, Count: cum})
	for k, h := range m.progress {
		s.Progress = append(s.Progress, ProgressStat{
			Engine: k.engine, Milestone: k.milestone, Count: h.n, SumSeconds: h.sum,
		})
	}
	sort.Slice(s.Progress, func(i, j int) bool {
		if s.Progress[i].Engine != s.Progress[j].Engine {
			return s.Progress[i].Engine < s.Progress[j].Engine
		}
		return milestoneOrder(s.Progress[i].Milestone) < milestoneOrder(s.Progress[j].Milestone)
	})
	for k, sec := range m.phaseSeconds {
		s.PhaseSeconds = append(s.PhaseSeconds, PhaseStat{Phase: k.phase, Lane: k.lane, Seconds: sec})
	}
	sort.Slice(s.PhaseSeconds, func(i, j int) bool {
		if s.PhaseSeconds[i].Phase != s.PhaseSeconds[j].Phase {
			return s.PhaseSeconds[i].Phase < s.PhaseSeconds[j].Phase
		}
		return s.PhaseSeconds[i].Lane < s.PhaseSeconds[j].Lane
	})
	return s
}

// milestoneOrder sorts milestones along the emission curve.
func milestoneOrder(m string) int {
	switch m {
	case "first":
		return 0
	case "p10":
		return 1
	case "p50":
		return 2
	case "p90":
		return 3
	case "last":
		return 4
	default:
		return 5
	}
}

// writePrometheus renders the counters in the Prometheus text exposition
// format (stdlib only — no client library dependency).
func (m *metrics) writePrometheus(w io.Writer) {
	s := m.snapshot()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("progxe_runs_started_total", "Engine runs admitted.", s.RunsStarted)
	counter("progxe_runs_completed_total", "Engine runs that ran to completion.", s.RunsCompleted)
	counter("progxe_runs_canceled_total", "Engine runs aborted by disconnect, timeout, or limit.", s.RunsCanceled)
	counter("progxe_runs_failed_total", "Engine runs that returned an error.", s.RunsFailed)
	counter("progxe_runs_rejected_total", "Query requests shed by the admission controller.", s.RunsRejected)
	counter("progxe_results_streamed_total", "Results streamed to clients.", s.ResultsStreamed)
	counter("progxe_plan_cache_hits_total", "Query requests served a cached compiled plan.", s.PlanCacheHits)
	counter("progxe_plan_cache_misses_total", "Query requests that compiled and cached a plan.", s.PlanCacheMisses)
	counter("progxe_coalesced_runs_total", "Engine runs started on behalf of coalesced subscriber groups.", s.CoalescedRuns)
	counter("progxe_coalesced_subscribers_total", "Streams attached to coalesced runs (leaders included).", s.CoalescedSubscribers)
	counter("progxe_replay_truncated_total", "Coalesced subscribers dropped after falling behind the replay ring.", s.ReplayTruncated)
	counter("progxe_subscriptions_started_total", "Live subscriptions admitted.", s.SubscriptionsStarted)
	counter("progxe_subscription_changes_applied_total", "Catalog change events folded into live subscriptions and applied through the change feed.", s.SubscriptionChangesApplied)
	counter("progxe_subscription_retractions_total", "Retract records streamed by live subscriptions.", s.SubscriptionRetractions)
	counter("progxe_sched_edges_total", "EL-Graph edges installed by region schedulers.", s.SchedEdges)
	counter("progxe_sched_rank_refreshes_total", "Lazy benefit/cost rank refreshes at queue-pop.", s.SchedRankRefreshes)
	counter("progxe_sched_fenwick_updates_total", "Point updates on active-cell and in-degree Fenwick trees.", s.FenwickUpdates)
	fmt.Fprintf(w, "# HELP progxe_runs_active Engine runs currently executing.\n# TYPE progxe_runs_active gauge\nprogxe_runs_active %d\n", s.RunsActive)
	fmt.Fprintf(w, "# HELP progxe_subscriptions_live Live subscriptions currently attached.\n# TYPE progxe_subscriptions_live gauge\nprogxe_subscriptions_live %d\n", s.SubscriptionsLive)
	fmt.Fprintf(w, "# HELP progxe_ttfr_seconds Time to first streamed result.\n# TYPE progxe_ttfr_seconds histogram\n")
	for _, b := range s.TTFR {
		le := "+Inf"
		if !b.Inf {
			le = fmt.Sprintf("%g", b.LE)
		}
		fmt.Fprintf(w, "progxe_ttfr_seconds_bucket{le=%q} %d\n", le, b.Count)
	}
	fmt.Fprintf(w, "progxe_ttfr_seconds_sum %g\n", s.TTFRSumSeconds)
	fmt.Fprintf(w, "progxe_ttfr_seconds_count %d\n", s.TTFRObserved)

	// Per-engine progressiveness milestones and per-phase time need the raw
	// maps (the snapshot carries only count/sum); copy them under the lock,
	// then render in deterministic key order.
	m.mu.Lock()
	pkeys := make([]progressKey, 0, len(m.progress))
	hists := make(map[progressKey]histogram, len(m.progress))
	for k, h := range m.progress {
		pkeys = append(pkeys, k)
		c := *h
		c.counts = append([]int64(nil), h.counts...)
		hists[k] = c
	}
	fkeys := make([]phaseKey, 0, len(m.phaseSeconds))
	phases := make(map[phaseKey]float64, len(m.phaseSeconds))
	for k, v := range m.phaseSeconds {
		fkeys = append(fkeys, k)
		phases[k] = v
	}
	m.mu.Unlock()
	sort.Slice(pkeys, func(i, j int) bool {
		if pkeys[i].engine != pkeys[j].engine {
			return pkeys[i].engine < pkeys[j].engine
		}
		return milestoneOrder(pkeys[i].milestone) < milestoneOrder(pkeys[j].milestone)
	})
	sort.Slice(fkeys, func(i, j int) bool {
		if fkeys[i].phase != fkeys[j].phase {
			return fkeys[i].phase < fkeys[j].phase
		}
		return fkeys[i].lane < fkeys[j].lane
	})
	if len(pkeys) > 0 {
		fmt.Fprintf(w, "# HELP progxe_run_progress_seconds Time to progressiveness milestones (first/p10/p50/p90/last emitted result), per engine.\n# TYPE progxe_run_progress_seconds histogram\n")
		for _, k := range pkeys {
			h := hists[k]
			cum := int64(0)
			for i, le := range ttfrBuckets {
				cum += h.counts[i]
				fmt.Fprintf(w, "progxe_run_progress_seconds_bucket{engine=%q,milestone=%q,le=%q} %d\n", k.engine, k.milestone, fmt.Sprintf("%g", le), cum)
			}
			cum += h.counts[len(ttfrBuckets)]
			fmt.Fprintf(w, "progxe_run_progress_seconds_bucket{engine=%q,milestone=%q,le=\"+Inf\"} %d\n", k.engine, k.milestone, cum)
			fmt.Fprintf(w, "progxe_run_progress_seconds_sum{engine=%q,milestone=%q} %g\n", k.engine, k.milestone, h.sum)
			fmt.Fprintf(w, "progxe_run_progress_seconds_count{engine=%q,milestone=%q} %d\n", k.engine, k.milestone, h.n)
		}
	}
	if len(fkeys) > 0 {
		fmt.Fprintf(w, "# HELP progxe_phase_seconds_total Engine phase time attributed by the run profiler.\n# TYPE progxe_phase_seconds_total counter\n")
		for _, k := range fkeys {
			fmt.Fprintf(w, "progxe_phase_seconds_total{phase=%q,lane=%q} %g\n", k.phase, k.lane, phases[k])
		}
	}
}
