package server

import (
	"fmt"
	"io"
	"sync"
	"time"

	"progxe/internal/smj"
)

// ttfrBuckets are the upper bounds (seconds) of the time-to-first-result
// histogram — the service-level progressiveness metric. Counts are
// cumulative, Prometheus-style: bucket i counts runs whose first result
// arrived within ttfrBuckets[i].
var ttfrBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metrics aggregates service counters. All methods are safe for concurrent
// use; reads return consistent snapshots.
type metrics struct {
	mu              sync.Mutex
	runsStarted     int64
	runsActive      int64
	runsCompleted   int64
	runsCanceled    int64
	runsFailed      int64
	runsRejected    int64
	resultsStreamed int64
	ttfrCounts      []int64 // len(ttfrBuckets)+1; last is +Inf
	ttfrSum         float64 // seconds
	ttfrObserved    int64
	// Scheduler-layer engine counters, accumulated across runs.
	schedEdges         int64
	schedRankRefreshes int64
	fenwickUpdates     int64
}

func newMetrics() *metrics {
	return &metrics{ttfrCounts: make([]int64, len(ttfrBuckets)+1)}
}

func (m *metrics) runStarted() {
	m.mu.Lock()
	m.runsStarted++
	m.runsActive++
	m.mu.Unlock()
}

// runOutcome classifies how a run ended.
type runOutcome int

const (
	runCompleted runOutcome = iota
	runCanceled
	runFailed
)

func (m *metrics) runFinished(o runOutcome, results int64) {
	m.mu.Lock()
	m.runsActive--
	switch o {
	case runCompleted:
		m.runsCompleted++
	case runCanceled:
		m.runsCanceled++
	case runFailed:
		m.runsFailed++
	}
	m.resultsStreamed += results
	m.mu.Unlock()
}

func (m *metrics) runRejected() {
	m.mu.Lock()
	m.runsRejected++
	m.mu.Unlock()
}

// observeEngineStats folds one run's engine counters into the service
// totals (currently the scheduler-layer triple).
func (m *metrics) observeEngineStats(st smj.Stats) {
	m.mu.Lock()
	m.schedEdges += int64(st.SchedEdges)
	m.schedRankRefreshes += int64(st.SchedRankRefreshes)
	m.fenwickUpdates += int64(st.FenwickUpdates)
	m.mu.Unlock()
}

// observeTTFR records the time-to-first-result of one run.
func (m *metrics) observeTTFR(d time.Duration) {
	s := d.Seconds()
	m.mu.Lock()
	m.ttfrObserved++
	m.ttfrSum += s
	i := 0
	for i < len(ttfrBuckets) && s > ttfrBuckets[i] {
		i++
	}
	m.ttfrCounts[i]++
	m.mu.Unlock()
}

// Bucket is one cumulative histogram bucket of a Snapshot.
type Bucket struct {
	LE    float64 `json:"le"` // upper bound in seconds; +Inf encoded as 0 with Inf=true
	Inf   bool    `json:"inf,omitempty"`
	Count int64   `json:"count"` // cumulative
}

// Snapshot is a point-in-time view of the service counters, shaped for the
// JSON stats endpoint.
type Snapshot struct {
	RunsStarted     int64    `json:"runsStarted"`
	RunsActive      int64    `json:"runsActive"`
	RunsCompleted   int64    `json:"runsCompleted"`
	RunsCanceled    int64    `json:"runsCanceled"`
	RunsFailed      int64    `json:"runsFailed"`
	RunsRejected    int64    `json:"runsRejected"`
	ResultsStreamed int64    `json:"resultsStreamed"`
	TTFRObserved    int64    `json:"ttfrObserved"`
	TTFRSumSeconds  float64  `json:"ttfrSumSeconds"`
	TTFR            []Bucket `json:"ttfr"`
	// Scheduler-layer totals across runs (ProgXe engines with graph
	// ordering; zero for baselines and fixed orders).
	SchedEdges         int64 `json:"schedEdges"`
	SchedRankRefreshes int64 `json:"schedRankRefreshes"`
	FenwickUpdates     int64 `json:"fenwickUpdates"`
}

func (m *metrics) snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		RunsStarted:     m.runsStarted,
		RunsActive:      m.runsActive,
		RunsCompleted:   m.runsCompleted,
		RunsCanceled:    m.runsCanceled,
		RunsFailed:      m.runsFailed,
		RunsRejected:    m.runsRejected,
		ResultsStreamed: m.resultsStreamed,
		TTFRObserved:    m.ttfrObserved,
		TTFRSumSeconds:  m.ttfrSum,

		SchedEdges:         m.schedEdges,
		SchedRankRefreshes: m.schedRankRefreshes,
		FenwickUpdates:     m.fenwickUpdates,
	}
	cum := int64(0)
	for i, le := range ttfrBuckets {
		cum += m.ttfrCounts[i]
		s.TTFR = append(s.TTFR, Bucket{LE: le, Count: cum})
	}
	cum += m.ttfrCounts[len(ttfrBuckets)]
	s.TTFR = append(s.TTFR, Bucket{Inf: true, Count: cum})
	return s
}

// writePrometheus renders the counters in the Prometheus text exposition
// format (stdlib only — no client library dependency).
func (m *metrics) writePrometheus(w io.Writer) {
	s := m.snapshot()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("progxe_runs_started_total", "Engine runs admitted.", s.RunsStarted)
	counter("progxe_runs_completed_total", "Engine runs that ran to completion.", s.RunsCompleted)
	counter("progxe_runs_canceled_total", "Engine runs aborted by disconnect, timeout, or limit.", s.RunsCanceled)
	counter("progxe_runs_failed_total", "Engine runs that returned an error.", s.RunsFailed)
	counter("progxe_runs_rejected_total", "Query requests shed by the admission controller.", s.RunsRejected)
	counter("progxe_results_streamed_total", "Results streamed to clients.", s.ResultsStreamed)
	counter("progxe_sched_edges_total", "EL-Graph edges installed by region schedulers.", s.SchedEdges)
	counter("progxe_sched_rank_refreshes_total", "Lazy benefit/cost rank refreshes at queue-pop.", s.SchedRankRefreshes)
	counter("progxe_sched_fenwick_updates_total", "Point updates on active-cell and in-degree Fenwick trees.", s.FenwickUpdates)
	fmt.Fprintf(w, "# HELP progxe_runs_active Engine runs currently executing.\n# TYPE progxe_runs_active gauge\nprogxe_runs_active %d\n", s.RunsActive)
	fmt.Fprintf(w, "# HELP progxe_ttfr_seconds Time to first streamed result.\n# TYPE progxe_ttfr_seconds histogram\n")
	for _, b := range s.TTFR {
		le := "+Inf"
		if !b.Inf {
			le = fmt.Sprintf("%g", b.LE)
		}
		fmt.Fprintf(w, "progxe_ttfr_seconds_bucket{le=%q} %d\n", le, b.Count)
	}
	fmt.Fprintf(w, "progxe_ttfr_seconds_sum %g\n", s.TTFRSumSeconds)
	fmt.Fprintf(w, "progxe_ttfr_seconds_count %d\n", s.TTFRObserved)
}
