package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"progxe/internal/core"
	"progxe/internal/feed"
	"progxe/internal/mapping"
	"progxe/internal/query"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// retractRecord withdraws a previously streamed result: a base-relation
// change killed the pair (its input was deleted, or a new tuple dominates
// it). Seq is the catalog change sequence that caused the retraction.
type retractRecord struct {
	Type          string  `json:"type"` // "retract"
	Seq           uint64  `json:"seq,omitempty"`
	LeftID        int64   `json:"leftId"`
	RightID       int64   `json:"rightId"`
	ElapsedMillis float64 `json:"elapsedMillis"`
}

// checkpointRecord marks the stream consistent: every result and retract
// implied by catalog changes up to Seq has been emitted. One follows the
// initial snapshot and one follows each applied change.
type checkpointRecord struct {
	Type          string  `json:"type"` // "checkpoint"
	Seq           uint64  `json:"seq"`
	Live          int     `json:"live"` // net result-set size at this point
	ElapsedMillis float64 `json:"elapsedMillis"`
}

// liveStreamSink adapts the subscription's stream writer to core.LiveSink,
// numbering results and stamping elapsed time like the query path does.
type liveStreamSink struct {
	sw    *streamWriter
	start time.Time
	seq   uint64 // catalog seq of the change being applied; 0 during snapshot
	n     int    // results emitted
	live  int    // net result-set size
	retr  int64  // retractions emitted
}

func (ls *liveStreamSink) Result(r smj.Result) {
	ls.n++
	ls.live++
	ls.sw.record("result", resultRecord{
		Type: "result", Seq: ls.n,
		LeftID: r.LeftID, RightID: r.RightID, Out: r.Out,
		ElapsedMillis: float64(time.Since(ls.start).Microseconds()) / 1000,
	})
}

func (ls *liveStreamSink) Retract(leftID, rightID int64) {
	ls.retr++
	ls.live--
	ls.sw.record("retract", retractRecord{
		Type: "retract", Seq: ls.seq,
		LeftID: leftID, RightID: rightID,
		ElapsedMillis: float64(time.Since(ls.start).Microseconds()) / 1000,
	})
}

// handleSubscribe is POST /v1/subscribe: a never-ending live query. The body
// is the QueryRequest schema shared with /v1/query (same exec object, same
// flat-field compatibility); trace and limit are meaningless on an unbounded
// stream and rejected. The handler materializes the query's output space
// once, streams the current result set, then holds the survivor state
// resident and folds in every catalog change to the subscribed relations —
// emitting result records for new skyline members, retract records for
// killed ones, and a checkpoint record after the snapshot and after each
// applied change. The stream ends when the client disconnects, the server
// shuts down, a subscribed relation is dropped or wholesale-replaced, or the
// subscription falls off the bounded change ring (replay_truncated).
//
// Exec parallelism knobs are validated and accepted but not granted: live
// maintenance is serial by design (each change's repair work is tiny), so
// the echoed exec object reports zero workers/committers/speculate.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, defaultMaxQueryBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, errBadRequest, "bad subscribe request: %v", err)
		return
	}
	if req.Format != "" && !strings.EqualFold(req.Format, "sse") && !strings.EqualFold(req.Format, "ndjson") {
		writeError(w, http.StatusBadRequest, errBadFormat, "unknown format %q (want ndjson or sse)", req.Format)
		return
	}
	sse := strings.EqualFold(req.Format, "sse") ||
		(req.Format == "" && strings.Contains(r.Header.Get("Accept"), "text/event-stream"))
	if req.Trace {
		writeError(w, http.StatusBadRequest, errBadRequest, "subscriptions do not record traces")
		return
	}
	if req.Limit != 0 {
		writeError(w, http.StatusBadRequest, errBadRequest, "subscriptions stream indefinitely; limit is not supported")
		return
	}
	if req.Engine != "" && !strings.EqualFold(req.Engine, "live") {
		writeError(w, http.StatusBadRequest, errUnknownEngine,
			"subscriptions run the live maintenance engine; engine %q is not selectable here", req.Engine)
		return
	}
	exec, _, herr := s.resolveExec(&req)
	if herr != nil {
		writeError(w, herr.status, herr.code, "%s", herr.msg)
		return
	}
	// Live maintenance is serial; report what is granted, not what was asked.
	exec.Workers, exec.Committers, exec.Speculate = 0, 0, 0

	q, err := query.Parse(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadQuery, "%v", err)
		return
	}

	if s.subAdm == nil {
		writeError(w, http.StatusServiceUnavailable, errUnavailable,
			"subscriptions are disabled on this server")
		return
	}
	release, ok := s.subAdm.tryAcquire()
	if !ok {
		s.metrics.runRejected()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, errBusy,
			"all %d subscription slots are busy; retry shortly", s.subAdm.capacity())
		return
	}
	defer release()

	// The change-ring cursor is taken BEFORE the snapshots: an event
	// published after the cursor but before GetVersioned is both in the
	// snapshot and on the ring, and the per-side seq check below skips it.
	// (Catalog mutations register before publishing, so the converse — an
	// event missed by both — cannot happen.)
	cursor := s.changes.cursor()
	vers := map[string]uint64{}
	rels := map[string]*relation.Relation{}
	for _, f := range []string{q.From[0].Table, q.From[1].Table} {
		rel, ver, ok := s.catalog.GetVersioned(f)
		if !ok {
			writeError(w, http.StatusNotFound, errRelationNotFound, "relation %q is not in the catalog", f)
			return
		}
		rels[f], vers[f] = rel, ver
	}
	plan, err := q.CompileLive(rels[q.From[0].Table], rels[q.From[1].Table])
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadQuery, "%v", err)
		return
	}
	space, err := core.NewLiveSpace(plan.Problem)
	if err != nil {
		writeError(w, http.StatusBadRequest, errBadQuery, "%v", err)
		return
	}
	sideVer := [2]uint64{vers[plan.Tables[0]], vers[plan.Tables[1]]}

	// Subscription lifetime: client disconnect or server shutdown. No
	// timeout — the stream is meant to outlive any single run.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	defer context.AfterFunc(s.runCtx, cancel)()
	// Parked cond-waits on the change ring cannot observe cancellation; a
	// broadcast wakes this subscription (and harmlessly the others).
	defer context.AfterFunc(ctx, s.changes.wake)()

	sw := &streamWriter{
		w: w, sse: sse,
		rc:     http.NewResponseController(w),
		stall:  s.cfg.WriteStallTimeout,
		onFail: cancel,
	}
	sw.f, _ = w.(http.Flusher)
	defer sw.end()
	sw.begin()

	runID := s.runlog.newID()
	s.metrics.subStarted()
	start := time.Now()
	sw.record("run", runRecord{
		Type: "run", ID: runID, Engine: "live",
		Dims: plan.Problem.Maps.Names(), Exec: exec,
	})

	sink := &liveStreamSink{sw: sw, start: start}
	space.Snapshot(sink)
	maxVer := sideVer[0]
	if sideVer[1] > maxVer {
		maxVer = sideVer[1]
	}
	checkpoint := func(seq uint64) {
		sw.record("checkpoint", checkpointRecord{
			Type: "checkpoint", Seq: seq, Live: sink.live,
			ElapsedMillis: float64(time.Since(start).Microseconds()) / 1000,
		})
	}
	checkpoint(maxVer)

	var endRec *errorRecord
	applied := int64(0)
loop:
	for {
		batch, next, truncated := s.changes.next(cursor, func() bool { return ctx.Err() != nil })
		if truncated {
			rec := newErrorRecord(errReplayTruncated,
				"change ring truncated: subscription fell too far behind the feed")
			endRec = &rec
			s.metrics.replayTruncation()
			break
		}
		if ctx.Err() != nil {
			break
		}
		cursor = next
		for _, ev := range batch {
			side := -1
			for i, tbl := range plan.Tables {
				if tbl == ev.relation {
					side = i
				}
			}
			if side < 0 {
				continue // a relation this subscription does not read
			}
			switch ev.kind {
			case eventDropped:
				rec := newErrorRecord(errRelationDropped,
					"relation %q was dropped; subscription terminated", ev.relation)
				endRec = &rec
				break loop
			case eventReplaced:
				rec := newErrorRecord(errRelationReplaced,
					"relation %q was replaced wholesale; re-subscribe for the new snapshot", ev.relation)
				endRec = &rec
				break loop
			}
			if ev.seq <= sideVer[side] {
				continue // already part of this side's admission snapshot
			}
			c := ev.change
			sink.seq = ev.seq
			sd := mapping.Side(side)
			var applyErr error
			switch c.Op {
			case feed.OpInsert:
				t := relation.Tuple{ID: c.ID, Vals: c.Vals, JoinKey: c.JoinKey}
				if pred := plan.Preds[side]; pred != nil && !pred.Eval(rels[ev.relation].Schema, t) {
					// Filtered out by the query's selections: the change is
					// applied (it advances the checkpoint) but contributes
					// nothing to the output space.
				} else {
					applyErr = space.ApplyInsert(sd, t, sink)
				}
			case feed.OpDelete:
				if space.Has(sd, c.ID) {
					applyErr = space.ApplyDelete(sd, c.ID, sink)
				}
				// else: the tuple never passed this subscription's filters.
			}
			if applyErr != nil {
				rec := newErrorRecord(errInternal, "applying change seq %d: %v", ev.seq, applyErr)
				endRec = &rec
				break loop
			}
			applied++
			checkpoint(ev.seq)
			if sw.fail {
				break loop
			}
		}
	}

	if endRec != nil && !sw.fail {
		sw.record("error", *endRec)
	}
	elapsed := time.Since(start)
	s.metrics.subFinished(applied, sink.retr)

	outcome, reason, errMsg := "canceled", "disconnect", ""
	switch {
	case endRec != nil:
		outcome, reason = "failed", ""
		errMsg = endRec.Message
	case s.runCtx.Err() != nil:
		reason = "shutdown"
	}
	st := space.Stats()
	s.runlog.add(RunRecord{
		ID: runID, Engine: "live", Query: truncate(req.Query, 512), Exec: exec,
		Start: start, ElapsedMillis: float64(elapsed.Microseconds()) / 1000,
		Outcome: outcome, Reason: reason, Error: errMsg,
		Results: sink.n,
	}, nil)
	s.logger.Info("subscription",
		"id", runID, "outcome", outcome, "results", sink.n,
		"retractions", sink.retr, "changesApplied", applied,
		"comparisons", st.Comparisons,
		"elapsedMs", float64(elapsed.Microseconds())/1000)
}
