package server

import (
	"fmt"
	"sync"
	"time"

	"progxe/internal/obs"
	"progxe/internal/smj"
)

// RunRecord is one completed (or aborted) run as kept by the run log and
// served from GET /v1/runs: identity, outcome, the progressiveness
// quantiles, and the phase breakdown.
type RunRecord struct {
	ID     string `json:"id"`
	Engine string `json:"engine"`
	Query  string `json:"query,omitempty"`
	// Exec echoes the run-shaping knobs the run was granted — the same
	// object the stream's run record carries.
	Exec          ExecInfo  `json:"exec"`
	Start         time.Time `json:"start"`
	ElapsedMillis float64   `json:"elapsedMillis"`
	Outcome       string    `json:"outcome"` // completed | canceled | failed
	Reason        string    `json:"reason,omitempty"`
	Error         string    `json:"error,omitempty"`
	Results       int       `json:"results"`
	// Cached reports that the run reused a compiled plan from the plan
	// cache (partition / region-build / prune skipped).
	Cached bool `json:"cached,omitempty"`
	// Subscribers counts the clients the run's stream was fanned out to by
	// the coalescer; zero for uncoalesced runs.
	Subscribers int `json:"subscribers,omitempty"`
	// Progress is the run's emission timeline reduced to the paper's
	// milestones (TT-first/10%/50%/90%/last), measured from run start.
	Progress obs.Quantiles `json:"progress"`
	// Phases is the profiler's phase breakdown with serial-vs-parallel
	// attribution. Engines without profiler support leave it empty.
	Phases obs.Report `json:"phases"`
	// HasTrace reports whether GET /v1/runs/{id}/trace can serve a
	// Chrome-trace document for this run.
	HasTrace    bool      `json:"hasTrace,omitempty"`
	EngineStats smj.Stats `json:"engineStats"`
}

// runLog is a bounded ring of recent run records plus their optional trace
// documents, powering the /v1/runs introspection endpoints. Evicting a
// record drops its trace with it, so retained trace bytes are bounded by
// the ring size.
type runLog struct {
	mu     sync.Mutex
	nextID int64
	size   int
	recs   []RunRecord       // insertion order, oldest first
	traces map[string][]byte // trace JSON by run id, only for retained recs
}

func newRunLog(size int) *runLog {
	return &runLog{size: size, traces: make(map[string][]byte)}
}

// newID reserves the next run identifier ("r000001", …). IDs are assigned
// at admission so the stream header can carry the id before the run ends.
func (l *runLog) newID() string {
	l.mu.Lock()
	l.nextID++
	id := l.nextID
	l.mu.Unlock()
	return fmt.Sprintf("r%06d", id)
}

// add records a finished run, evicting the oldest past the ring size.
func (l *runLog) add(rec RunRecord, trace []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(trace) > 0 {
		rec.HasTrace = true
		l.traces[rec.ID] = trace
	}
	l.recs = append(l.recs, rec)
	for len(l.recs) > l.size {
		delete(l.traces, l.recs[0].ID)
		l.recs[0] = RunRecord{} // release before reslicing
		l.recs = l.recs[1:]
	}
}

// list returns the retained records, newest first.
func (l *runLog) list() []RunRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RunRecord, len(l.recs))
	for i, r := range l.recs {
		out[len(out)-1-i] = r
	}
	return out
}

// get returns the record with the given id.
func (l *runLog) get(id string) (RunRecord, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range l.recs {
		if r.ID == id {
			return r, true
		}
	}
	return RunRecord{}, false
}

// trace returns the stored Chrome-trace document for a run.
func (l *runLog) trace(id string) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.traces[id]
	return b, ok
}
