package sched

// idHeap is the inverted priority queue of Algorithm 1 over region ids:
// highest rank first, deterministic id-based tie-breaking. Ranks live in a
// slice shared with the scheduler (indexed by id) so a lazy refresh only has
// to fix the entry, and the heap is hand-rolled so push/pop/fix stay free of
// interface boxing on the scheduling path. Because (rank, id) is a total
// order, the popped maximum — and therefore the whole pop sequence — is
// independent of insertion order.
type idHeap struct {
	rank  []float64 // shared with the scheduler, indexed by region id
	items []int32
	pos   []int32 // id → heap index; -1 if absent
}

func newIDHeap(rank []float64, n int) idHeap {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return idHeap{rank: rank, pos: pos}
}

// before reports whether region a takes priority over region b.
func (q *idHeap) before(a, b int32) bool {
	if q.rank[a] != q.rank[b] {
		return q.rank[a] > q.rank[b]
	}
	return a < b
}

func (q *idHeap) swap(i, j int32) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.pos[q.items[i]] = i
	q.pos[q.items[j]] = j
}

func (q *idHeap) up(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(q.items[i], q.items[parent]) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *idHeap) down(i int32) {
	n := int32(len(q.items))
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && q.before(q.items[r], q.items[l]) {
			best = r
		}
		if !q.before(q.items[best], q.items[i]) {
			return
		}
		q.swap(i, best)
		i = best
	}
}

// push inserts a region id.
func (q *idHeap) push(id int32) {
	q.pos[id] = int32(len(q.items))
	q.items = append(q.items, id)
	q.up(q.pos[id])
}

// pop removes and returns the highest-ranked id, or -1 if empty.
func (q *idHeap) pop() int32 {
	if len(q.items) == 0 {
		return -1
	}
	top := q.items[0]
	q.removeAt(0)
	return top
}

// removeAt deletes the element at heap position i.
func (q *idHeap) removeAt(i int32) {
	n := int32(len(q.items)) - 1
	id := q.items[i]
	if i != n {
		q.swap(i, n)
	}
	q.items = q.items[:n]
	q.pos[id] = -1
	if i < n {
		q.down(i)
		q.up(i)
	}
}

// fix restores heap order after id's rank changed.
func (q *idHeap) fix(id int32) {
	if i := q.pos[id]; i >= 0 {
		q.down(i)
		q.up(i)
	}
}

// remove deletes id from the queue if present.
func (q *idHeap) remove(id int32) {
	if i := q.pos[id]; i >= 0 {
		q.removeAt(i)
	}
}

// contains reports whether id is currently queued.
func (q *idHeap) contains(id int32) bool { return q.pos[id] >= 0 }

// len reports the queue size.
func (q *idHeap) len() int { return len(q.items) }
