package sched

import (
	"progxe/internal/grid"
	"progxe/internal/par"
)

// The EL-Graph of §IV-B has an edge X → Y iff some output partition of X
// strictly dominates some partition of Y, which for the regions' coordinate
// boxes reduces to minC(X) < maxC(Y) in every dimension (complete
// elimination additionally requires minC(X) < minC(Y) everywhere; both kinds
// produce the same edge, Fig. 6 a–b). The scheduler only ever asks two
// questions of the graph: the initial in-degrees (roots and edge totals),
// and the out-edge targets of one region at release time. elGraph abstracts
// those so the incremental coordinate-box index and the batch O(n²) builder
// are interchangeable — the batch builder is retained as the differential
// oracle and the benchmark baseline.
//
// release may enumerate targets in any order: the consumers (in-degree
// decrement, dirty marking, root enqueueing into a totally ordered heap)
// are order-insensitive, so only the target set must be deterministic up to
// dead regions — retire tells the graph a region left the live set, after
// which release may (but need not) skip it: a dead region's in-degree is
// never consulted again, so dropping its decrements cannot change any
// scheduling decision.
type elGraph interface {
	inDegrees() []int32
	edges() int
	retire(x int32)
	release(x int32, fn func(y int32))
}

// Eliminates reports the §IV-B edge predicate: region x can partially or
// completely eliminate region y, i.e. minC(x) < maxC(y) in every dimension.
func Eliminates(x, y Box) bool { return grid.StrictlyBelow(x.Min, y.Max) }

// CompletelyEliminates reports Fig. 6.a's condition: every partition of y is
// dominated by some partition of x, i.e. minC(x) < minC(y) everywhere.
func CompletelyEliminates(x, y Box) bool { return grid.StrictlyBelow(x.Min, y.Min) }

// fenLimit caps the cell count of the Fenwick tree used for in-degree
// construction; larger grids fall back to the bucket-scan path. A variable
// (not const) so the differential tests can force the fallback on small
// grids.
var fenLimit = 1 << 21

// maxEntry is one region in a maxC grid bucket, carrying the packed maxC
// key inline so the edge filter runs as a sequential scan without chasing a
// side table (the cellIndex bucketEntry pattern).
type maxEntry struct {
	id  int32
	key uint64
}

// incGraph answers the edge queries through a coordinate-box index instead
// of materialized adjacency:
//
//   - in-degrees come from a Fenwick tree over the regions' minC corners —
//     inDeg(Y) counts regions X with minC(X) ≤ maxC(Y)−1 componentwise, a
//     closed-lower-orthant query — so construction is O(n·polylog) instead
//     of the batch builder's O(n²) pair scan;
//   - release(X) enumerates targets through per-dimension grid buckets of
//     maxC values: the dimension with the fewest candidates ≥ minC(X)+1 is
//     scanned, each candidate filtered by one packed-key comparison (the
//     coordinate-slice compare when packing is unavailable).
//
// Out-edge lists are never stored: with n regions the graph can hold Θ(n²)
// edges, and each is needed exactly once — at its source's release.
type incGraph struct {
	boxes  []Box
	k      []int // grid cells per dimension
	packed bool

	minKey1 []uint64 // packed minC+1 per region (edge-test left operand)

	byMax [][][]maxEntry // [dim][v]: live regions with maxC[dim] == v, ascending id
	// sufFen[i] counts live regions per maxC[i] bucket as a 1-D Fenwick, so
	// the live-suffix count behind release's dimension choice is an
	// O(log k) query and retire an O(log k) update per dimension (a plain
	// suffix array would cost O(k) per retire).
	sufFen []*grid.Fenwick
	live   int32

	inDeg  []int32
	nedges int
}

// liveSuffix returns the number of live regions with maxC[dim] ≥ v.
func (g *incGraph) liveSuffix(dim, v int) int32 {
	if v == 0 {
		return g.live
	}
	q := [1]int{v - 1}
	return g.live - int32(g.sufFen[dim].Count(q[:]))
}

func newIncGraph(boxes []Box, k []int, workers int, fenwickUpdates *int) *incGraph {
	g := &incGraph{boxes: boxes, k: k, packed: len(k) <= 8}
	for _, n := range k {
		if n > 128 {
			g.packed = false
		}
	}
	d := len(k)
	g.byMax = make([][][]maxEntry, d)
	g.sufFen = make([]*grid.Fenwick, d)
	for i := 0; i < d; i++ {
		g.byMax[i] = make([][]maxEntry, k[i])
		g.sufFen[i], _ = grid.NewFenwick(k[i : i+1])
	}
	if g.packed {
		g.minKey1 = make([]uint64, len(boxes))
	}
	g.live = int32(len(boxes))
	min1 := make([]int, d)
	for id, b := range boxes {
		var maxKey uint64
		if g.packed {
			for i, v := range b.Min {
				min1[i] = v + 1
			}
			g.minKey1[id] = grid.PackKey(min1)
			maxKey = grid.PackKey(b.Max)
		}
		for i, v := range b.Max {
			g.byMax[i][v] = append(g.byMax[i][v], maxEntry{id: int32(id), key: maxKey})
		}
	}
	for i := 0; i < d; i++ {
		for v := 0; v < k[i]; v++ {
			if n := len(g.byMax[i][v]); n > 0 {
				q := [1]int{v}
				g.sufFen[i].Add(q[:], int32(n))
			}
		}
	}
	g.buildInDegrees(workers, fenwickUpdates)
	return g
}

// buildInDegrees fills inDeg by orthant counting. Each region's in-degree is
// independent, so the query pass fans out across workers with no merge step
// — the result is identical for any worker count.
func (g *incGraph) buildInDegrees(workers int, fenwickUpdates *int) {
	g.inDeg = make([]int32, len(g.boxes))
	total := 1
	for _, n := range g.k {
		if total > fenLimit/n {
			total = fenLimit + 1
			break
		}
		total *= n
	}
	var fen *grid.Fenwick
	if total <= fenLimit {
		fen, _ = grid.NewFenwick(g.k)
	}
	if fen != nil {
		for _, b := range g.boxes {
			fen.Add(b.Min, 1)
		}
		if fenwickUpdates != nil {
			*fenwickUpdates += len(g.boxes)
		}
		query := func(lo, hi int) {
			q := make([]int, len(g.k)) // per-chunk scratch
			for y := lo; y < hi; y++ {
				b := g.boxes[y]
				n := 0
				empty := false
				for i, v := range b.Max {
					if v == 0 {
						empty = true
						break
					}
					q[i] = v - 1
				}
				if !empty {
					n = fen.Count(q)
					if grid.StrictlyBelow(b.Min, b.Max) {
						n-- // the region itself satisfies the predicate
					}
				}
				g.inDeg[y] = int32(n)
			}
		}
		par.For(len(g.boxes), workers, query)
	} else {
		// Bucket-scan fallback for grids too large to tree: count the
		// sources of each region through the release enumeration run in
		// reverse (X → Y iff Y's release-candidacy test passes for X's
		// corner), using per-dimension minC buckets.
		d := len(g.k)
		byMin := make([][][]int32, d)
		pre := make([][]int32, d)
		for i := 0; i < d; i++ {
			byMin[i] = make([][]int32, g.k[i])
			pre[i] = make([]int32, g.k[i]+1)
		}
		for id, b := range g.boxes {
			for i, v := range b.Min {
				byMin[i][v] = append(byMin[i][v], int32(id))
			}
		}
		for i := 0; i < d; i++ {
			for v := 0; v < g.k[i]; v++ {
				pre[i][v+1] = pre[i][v] + int32(len(byMin[i][v]))
			}
		}
		par.For(len(g.boxes), workers, func(lo, hi int) {
			for y := lo; y < hi; y++ {
				b := g.boxes[y]
				// Scan the dimension with the fewest minC values below maxC.
				best, bestN := -1, int32(0)
				for i, v := range b.Max {
					n := pre[i][v] // minC[i] ≤ v-1
					if best < 0 || n < bestN {
						best, bestN = i, n
					}
				}
				if bestN == 0 {
					continue
				}
				var maxKey uint64
				if g.packed {
					maxKey = grid.PackKey(b.Max)
				}
				n := int32(0)
				for v := 0; v < b.Max[best]; v++ {
					for _, x := range byMin[best][v] {
						if int(x) == y {
							continue
						}
						if g.packed {
							if grid.KeyLeq(g.minKey1[x], maxKey) {
								n++
							}
						} else if g.hasEdge(x, int32(y)) {
							n++
						}
					}
				}
				g.inDeg[y] = n
			}
		})
	}
	for _, n := range g.inDeg {
		g.nedges += int(n)
	}
}

// hasEdge tests minC(x) < maxC(y) in every dimension.
func (g *incGraph) hasEdge(x, y int32) bool {
	return grid.StrictlyBelow(g.boxes[x].Min, g.boxes[y].Max)
}

func (g *incGraph) inDegrees() []int32 { return g.inDeg }
func (g *incGraph) edges() int         { return g.nedges }

// retire removes a dead region from the maxC buckets and the live suffix
// counts, so later releases neither scan nor enumerate it. On dense graphs
// this halves release work on average — and far more when discard cascades
// kill regions early.
func (g *incGraph) retire(x int32) {
	b := g.boxes[x]
	removed := false
	for i, v := range b.Max {
		bucket := g.byMax[i][v]
		lo, hi := 0, len(bucket)
		for lo < hi {
			mid := (lo + hi) / 2
			if bucket[mid].id < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(bucket) && bucket[lo].id == x {
			copy(bucket[lo:], bucket[lo+1:])
			g.byMax[i][v] = bucket[:len(bucket)-1]
			q := [1]int{v}
			g.sufFen[i].Add(q[:], -1)
			removed = true
		}
	}
	if removed {
		g.live--
	}
}

// release enumerates the live out-edge targets of x: regions whose maxC is
// componentwise ≥ minC(x)+1, found by scanning the grid buckets of the
// dimension with the fewest such candidates and filtering the rest with one
// packed-key comparison each (x itself was retired before its release, so
// the buckets never hand it back).
func (g *incGraph) release(x int32, fn func(y int32)) {
	b := g.boxes[x]
	best, bestN := -1, int32(0)
	for i, v := range b.Min {
		n := g.liveSuffix(i, v+1) // v+1 ≤ k[i]; the top suffix is empty
		if best < 0 || n < bestN {
			best, bestN = i, n
		}
	}
	if bestN == 0 {
		return
	}
	if g.packed {
		key1 := g.minKey1[x]
		for v := b.Min[best] + 1; v < g.k[best]; v++ {
			for _, e := range g.byMax[best][v] {
				if grid.KeyLeq(key1, e.key) {
					fn(e.id)
				}
			}
		}
		return
	}
	for v := b.Min[best] + 1; v < g.k[best]; v++ {
		for _, e := range g.byMax[best][v] {
			if g.hasEdge(x, e.id) {
				fn(e.id)
			}
		}
	}
}

// batchGraph is the seed's O(n²) builder: the all-pairs edge scan with
// materialized adjacency, exactly as buildELGraph ran it inside the engine.
// Retained as the differential oracle for the incremental index and as the
// baseline the scheduler benchmark measures against.
type batchGraph struct {
	out    [][]int32
	inDeg  []int32
	nedges int
}

func newBatchGraph(boxes []Box, workers int) *batchGraph {
	g := &batchGraph{
		out:   make([][]int32, len(boxes)),
		inDeg: make([]int32, len(boxes)),
	}
	// Two passes per source: count the out-degree first so each edge slice
	// is allocated exactly once (dense graphs otherwise churn the
	// allocator). Each source's adjacency is independent, so the scan fans
	// out across workers with in-degrees accumulated serially afterwards.
	par.For(len(boxes), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x := boxes[i]
			count := 0
			for j, y := range boxes {
				if i != j && grid.StrictlyBelow(x.Min, y.Max) {
					count++
				}
			}
			if count == 0 {
				continue
			}
			out := make([]int32, 0, count)
			for j, y := range boxes {
				if i != j && grid.StrictlyBelow(x.Min, y.Max) {
					out = append(out, int32(j))
				}
			}
			g.out[i] = out
		}
	})
	for _, out := range g.out {
		g.nedges += len(out)
		for _, y := range out {
			g.inDeg[y]++
		}
	}
	return g
}

func (g *batchGraph) inDegrees() []int32 { return g.inDeg }
func (g *batchGraph) edges() int         { return g.nedges }

// retire is a no-op: the batch builder replays the seed's behavior, walking
// every stored out-edge at release regardless of target liveness.
func (g *batchGraph) retire(int32) {}

func (g *batchGraph) release(x int32, fn func(y int32)) {
	for _, y := range g.out[x] {
		fn(y)
	}
	g.out[x] = nil
}
