package sched

import (
	"progxe/internal/grid"
	"progxe/internal/par"
)

// The EL-Graph of §IV-B has an edge X → Y iff some output partition of X
// strictly dominates some partition of Y, which for the regions' coordinate
// boxes reduces to minC(X) < maxC(Y) in every dimension (complete
// elimination additionally requires minC(X) < minC(Y) everywhere; both kinds
// produce the same edge, Fig. 6 a–b). The scheduler only ever asks two
// questions of the graph: the initial in-degrees (roots and edge totals),
// and the out-edge targets of one region at release time. elGraph abstracts
// those so the incremental coordinate-box index and the batch O(n²) builder
// are interchangeable — the batch builder is retained as the differential
// oracle and the benchmark baseline.
//
// release may enumerate targets in any order: the consumers (in-degree
// decrement, dirty marking, root enqueueing into a totally ordered heap)
// are order-insensitive, so only the target set must be deterministic up to
// dead regions — retire tells the graph a region left the live set, after
// which release may (but need not) skip it: a dead region's in-degree is
// never consulted again, so dropping its decrements cannot change any
// scheduling decision.
type elGraph interface {
	inDegrees() []int32
	edges() int
	retire(x int32)
	release(x int32, fn func(y int32))
}

// Eliminates reports the §IV-B edge predicate: region x can partially or
// completely eliminate region y, i.e. minC(x) < maxC(y) in every dimension.
func Eliminates(x, y Box) bool { return grid.StrictlyBelow(x.Min, y.Max) }

// CompletelyEliminates reports Fig. 6.a's condition: every partition of y is
// dominated by some partition of x, i.e. minC(x) < minC(y) everywhere.
func CompletelyEliminates(x, y Box) bool { return grid.StrictlyBelow(x.Min, y.Min) }

// fenLimit caps the cell count of the Fenwick tree used for in-degree
// construction; larger grids fall back to the bucket-scan path. A variable
// (not const) so the differential tests can force the fallback on small
// grids.
var fenLimit = grid.BoxIndexFenLimit

// incGraph answers the edge queries through the shared output-space box
// index (grid.BoxIndex) instead of materialized adjacency. The §IV-B edge
// predicate minC(X) < maxC(Y) everywhere becomes the index's closed corner
// relation by the +1 shift: src = minC+1, dst = maxC, and X → Y iff
// src(X) ≤ dst(Y) componentwise. In-degrees are the index's bulk orthant
// counts (Fenwick under fenLimit, bucket-scan beyond), release(X) is the
// index's live-successor enumeration over per-dimension maxC buckets with
// packed-key filtering, and retire maps directly.
//
// Out-edge lists are never stored: with n regions the graph can hold Θ(n²)
// edges, and each is needed exactly once — at its source's release.
type incGraph struct {
	ix     *grid.BoxIndex
	inDeg  []int32
	nedges int
}

func newIncGraph(boxes []Box, k []int, workers int, fenwickUpdates *int) *incGraph {
	d := len(k)
	src := make([][]int, len(boxes))
	dst := make([][]int, len(boxes))
	flat := make([]int, len(boxes)*d) // one backing block for the shifted corners
	for id, b := range boxes {
		s := flat[:d:d]
		flat = flat[d:]
		for i, v := range b.Min {
			s[i] = v + 1
		}
		src[id] = s
		dst[id] = b.Max
	}
	g := &incGraph{ix: grid.NewBoxIndex(src, dst, k, fenLimit)}
	g.inDeg = g.ix.InDegrees(workers)
	for y, b := range boxes {
		if grid.StrictlyBelow(b.Min, b.Max) {
			g.inDeg[y]-- // the region itself satisfies the predicate
		}
	}
	if fenwickUpdates != nil {
		*fenwickUpdates += g.ix.FenwickUpdates()
	}
	for _, n := range g.inDeg {
		g.nedges += int(n)
	}
	return g
}

func (g *incGraph) inDegrees() []int32 { return g.inDeg }
func (g *incGraph) edges() int         { return g.nedges }

// retire removes a dead region from the index's successor side, so later
// releases neither scan nor enumerate it. On dense graphs this halves
// release work on average — and far more when discard cascades kill regions
// early.
func (g *incGraph) retire(x int32) { g.ix.Retire(x) }

// release enumerates the live out-edge targets of x: regions whose maxC is
// componentwise ≥ minC(x)+1 (x itself was retired before its release, so
// the index never hands it back).
func (g *incGraph) release(x int32, fn func(y int32)) { g.ix.EachOut(x, fn) }

// batchGraph is the seed's O(n²) builder: the all-pairs edge scan with
// materialized adjacency, exactly as buildELGraph ran it inside the engine.
// Retained as the differential oracle for the incremental index and as the
// baseline the scheduler benchmark measures against.
type batchGraph struct {
	out    [][]int32
	inDeg  []int32
	nedges int
}

func newBatchGraph(boxes []Box, workers int) *batchGraph {
	g := &batchGraph{
		out:   make([][]int32, len(boxes)),
		inDeg: make([]int32, len(boxes)),
	}
	// Two passes per source: count the out-degree first so each edge slice
	// is allocated exactly once (dense graphs otherwise churn the
	// allocator). Each source's adjacency is independent, so the scan fans
	// out across workers with in-degrees accumulated serially afterwards.
	par.For(len(boxes), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x := boxes[i]
			count := 0
			for j, y := range boxes {
				if i != j && grid.StrictlyBelow(x.Min, y.Max) {
					count++
				}
			}
			if count == 0 {
				continue
			}
			out := make([]int32, 0, count)
			for j, y := range boxes {
				if i != j && grid.StrictlyBelow(x.Min, y.Max) {
					out = append(out, int32(j))
				}
			}
			g.out[i] = out
		}
	})
	for _, out := range g.out {
		g.nedges += len(out)
		for _, y := range out {
			g.inDeg[y]++
		}
	}
	return g
}

func (g *batchGraph) inDegrees() []int32 { return g.inDeg }
func (g *batchGraph) edges() int         { return g.nedges }

// retire is a no-op: the batch builder replays the seed's behavior, walking
// every stored out-edge at release regardless of target liveness.
func (g *batchGraph) retire(int32) {}

func (g *batchGraph) release(x int32, fn func(y int32)) {
	for _, y := range g.out[x] {
		fn(y)
	}
	g.out[x] = nil
}
