// Package sched is the region-scheduling layer of the ProgXe engine: it
// owns the EL-Graph of §IV-B, the inverted priority queue of Algorithm 1,
// and the benefit/cost ranking protocol, behind a policy interface so the
// engine is agnostic to how the next region is picked (ProgOrder, arrival,
// random, or future rankers).
//
// The progressive policy keeps the graph incremental: in-degrees come from
// orthant counts over the regions' coordinate-box corners instead of the
// all-pairs O(n²) edge scan, out-edges are enumerated from per-dimension
// grid buckets only at release time (never materialized), and benefit/cost
// ranks refresh lazily at queue-pop — a region dirtied by k edge releases
// between two pops is re-ranked once, not k times. Every decision is a
// deterministic function of the complete/discard call sequence and the
// ranker's values: the heap order is total (rank desc, id asc), release
// enumeration order never reaches an order-sensitive consumer, and rank
// refreshes happen at fixed protocol points — which is what lets the
// engine's differential harness demand byte-identical schedules for any
// worker count.
package sched

import (
	"fmt"
	"slices"
)

// Box is one region's inclusive coordinate box on the output grid: the
// componentwise minimum and maximum cell coordinates of the cells it covers
// (minC/maxC in the paper's §IV-B edge rule).
type Box struct {
	Min, Max []int
}

// Ranker computes the current Benefit/Cost rank of a region (Equation 8).
// The scheduler calls it lazily — when a dirty region reaches a queue-pop,
// and at most once per region for the cycle-breaking fallback — always from
// the goroutine driving Next, so implementations may read engine state
// without synchronization.
type Ranker func(id int) float64

// Counters reports the scheduler's work, for Stats, trace events and the
// service metrics.
type Counters struct {
	Regions        int // regions under management
	Edges          int // EL-Graph edges at construction
	Roots          int // initial roots (in-degree 0)
	RankRefreshes  int // lazy benefit/cost recomputations
	FenwickUpdates int // point updates on the in-degree Fenwick tree
}

// Scheduler picks regions for tuple-level processing. The protocol is:
// Next hands out a live region (at most once each); the engine processes it
// and calls Complete, which releases its elimination edges; Discard
// eliminates a live region without processing. All methods must be called
// from a single goroutine.
type Scheduler interface {
	// Next selects the region for the upcoming tuple-level processing round
	// and its rank at selection time. ok is false when no live region
	// remains.
	Next() (id int, rank float64, ok bool)
	// Complete releases the out-edges of a region previously returned by
	// Next (Algorithm 1, Lines 10–19).
	Complete(id int)
	// Discard eliminates a live region without processing it, releasing its
	// edges. Discarding a non-live region is a no-op.
	Discard(id int)
	// PrefetchOrder ranks all regions by expected scheduling order, for the
	// parallel runner's prefetch workers. A misprediction costs pipeline
	// overlap, never correctness.
	PrefetchOrder() []int32
	// Counters reports the scheduler's work counters.
	Counters() Counters
}

// region lifecycle states.
const (
	stLive int8 = iota
	stProcessed
	stDiscarded
)

// Progressive is ProgOrder (Algorithm 1) over an elGraph: EL-Graph roots
// ranked by Benefit/Cost in an inverted priority queue, with lazy rank
// refresh and graph-cycle breaking by best-ranked live region.
type Progressive struct {
	g      elGraph
	ranker Ranker

	state  []int8
	rank   []float64
	ranked []bool // rank ever computed (cycle-break fallback analyses once)
	inDeg  []int32

	q        idHeap
	dirty    []bool  // queued with a stale rank
	dirtyIDs []int32 // pending refreshes, deduplicated via dirty

	// fb is the cycle-break queue, built lazily the first time the root
	// queue drains with live regions left (mutual partial elimination can
	// make the EL-Graph fully cyclic — the norm on anti-correlated data).
	// Fallback candidates are live never-queued regions, whose ranks are
	// computed once and then frozen (a region's rank only refreshes while
	// queued, and queued regions never return to the fallback), so a heap
	// pops exactly the region a per-pop argmax scan would pick — without
	// the scan's O(n²) worst case over a run.
	fb      idHeap
	fbBuilt bool

	live int
	c    Counters
}

// NewProgressive returns the incremental-graph ProgOrder scheduler over the
// given region boxes. k lists the output grid's cells per dimension;
// workers bounds the parallelism of the in-degree construction pass (0 or 1
// = serial), which is deterministic for any value.
func NewProgressive(boxes []Box, k []int, ranker Ranker, workers int) *Progressive {
	p := &Progressive{ranker: ranker}
	p.init(boxes, newIncGraph(boxes, k, workers, &p.c.FenwickUpdates))
	return p
}

// NewBatch is NewProgressive over the retained batch O(n²) graph builder —
// the differential oracle and benchmark baseline. Scheduling decisions are
// identical to the incremental scheduler's.
func NewBatch(boxes []Box, k []int, ranker Ranker, workers int) *Progressive {
	p := &Progressive{ranker: ranker}
	p.init(boxes, newBatchGraph(boxes, workers))
	return p
}

func (p *Progressive) init(boxes []Box, g elGraph) {
	n := len(boxes)
	p.g = g
	p.state = make([]int8, n)
	p.rank = make([]float64, n)
	p.ranked = make([]bool, n)
	p.dirty = make([]bool, n)
	p.inDeg = append([]int32(nil), g.inDegrees()...)
	p.q = newIDHeap(p.rank, n)
	p.live = n
	for id := 0; id < n; id++ {
		if p.inDeg[id] == 0 {
			p.q.push(int32(id))
			p.markDirty(int32(id))
		}
	}
	p.c.Regions = n
	p.c.Edges = g.edges()
	p.c.Roots = p.q.len()
}

func (p *Progressive) markDirty(id int32) {
	if !p.dirty[id] {
		p.dirty[id] = true
		p.dirtyIDs = append(p.dirtyIDs, id)
	}
}

// refresh recomputes the rank of every dirty queued region. Refresh order
// is irrelevant (the ranker is a pure function of engine state at this
// protocol point), so the deduplicated set — not the marking order —
// determines the outcome.
func (p *Progressive) refresh() {
	for _, id := range p.dirtyIDs {
		p.dirty[id] = false
		if p.state[id] != stLive || !p.q.contains(id) {
			continue
		}
		p.rank[id] = p.ranker(int(id))
		p.ranked[id] = true
		p.c.RankRefreshes++
		p.q.fix(id)
	}
	p.dirtyIDs = p.dirtyIDs[:0]
}

// Next implements Scheduler: refresh dirty ranks, pop the best root, or —
// when the queue is empty but live regions remain (the EL-Graph may contain
// cycles of mutual partial elimination) — break the cycle by the
// best-ranked live region from the fallback queue.
func (p *Progressive) Next() (int, float64, bool) {
	if p.live == 0 {
		return -1, 0, false
	}
	p.refresh()
	if id := p.q.pop(); id >= 0 {
		p.state[id] = stProcessed
		p.live--
		p.g.retire(id)
		return int(id), p.rank[id], true
	}
	if !p.fbBuilt {
		// First cycle break: rank every live region once (ascending id)
		// and queue them all — the root queue being empty, none is queued.
		p.fbBuilt = true
		p.fb = newIDHeap(p.rank, len(p.state))
		for id := int32(0); int(id) < len(p.state); id++ {
			if p.state[id] != stLive {
				continue
			}
			if !p.ranked[id] {
				p.rank[id] = p.ranker(int(id))
				p.ranked[id] = true
				p.c.RankRefreshes++
			}
			p.fb.push(id)
		}
	}
	for {
		id := p.fb.pop()
		// A live region is either root-queued (impossible here: the root
		// queue is empty) or still in the fallback queue, so the pop can
		// only run dry when live == 0 — excluded above. Guarded anyway: a
		// future membership bug should fail loudly, not as index -1.
		if id < 0 {
			panic(fmt.Sprintf("sched: no region to schedule with %d live regions", p.live))
		}
		if p.state[id] != stLive || p.q.contains(id) {
			continue
		}
		p.state[id] = stProcessed
		p.live--
		p.g.retire(id)
		return int(id), p.rank[id], true
	}
}

// Complete implements Scheduler.
func (p *Progressive) Complete(id int) { p.release(int32(id)) }

// Discard implements Scheduler.
func (p *Progressive) Discard(id int) {
	if p.state[id] != stLive {
		return
	}
	p.state[id] = stDiscarded
	p.live--
	p.q.remove(int32(id))
	p.g.retire(int32(id))
	p.release(int32(id))
}

// release removes the region's out-edges from the graph: queued targets are
// dirty-marked for the next queue-pop refresh, targets whose in-degree
// drains to zero become roots (pushed dirty, ranked before the next pop).
// A promoted root leaves the fallback queue: its rank is about to be
// refreshed through the shared rank slice, and mutating a key under a
// heap's feet would break the fallback's argmax contract.
func (p *Progressive) release(x int32) {
	p.g.release(x, func(y int32) {
		p.inDeg[y]--
		if p.state[y] != stLive {
			return
		}
		if p.q.contains(y) {
			p.markDirty(y)
		} else if p.inDeg[y] == 0 {
			p.q.push(y)
			p.markDirty(y)
			if p.fbBuilt {
				p.fb.remove(y)
			}
		}
	})
}

// PrefetchOrder implements Scheduler: the initial roots by descending rank
// (refreshing them first, exactly the work the first Next would do), then
// the remaining regions by id. (rank, id) is a total order, so the sorted
// prefix is unique — prefetch order stays deterministic.
func (p *Progressive) PrefetchOrder() []int32 {
	p.refresh()
	order := make([]int32, 0, len(p.state))
	order = append(order, p.q.items...)
	slices.SortFunc(order, func(a, b int32) int { // edgeless graphs root everything
		if p.q.before(a, b) {
			return -1
		}
		return 1
	})
	for id := int32(0); int(id) < len(p.state); id++ {
		if p.inDeg[id] != 0 {
			order = append(order, id)
		}
	}
	return order
}

// Counters implements Scheduler.
func (p *Progressive) Counters() Counters { return p.c }

// Fixed processes regions in a predetermined order — construction order
// (the arrival ablation) or a seeded shuffle (the paper's "No-Order"
// configuration) — skipping regions discarded along the way. Ranks are 0.
type Fixed struct {
	order []int32
	pos   int
	state []int8
	live  int
	c     Counters
}

// NewFixed returns a fixed-order scheduler over n regions. A nil order
// means construction order (arrival).
func NewFixed(n int, order []int) *Fixed {
	f := &Fixed{state: make([]int8, n), live: n, c: Counters{Regions: n}}
	f.order = make([]int32, n)
	for i := range f.order {
		f.order[i] = int32(i)
	}
	for i, id := range order {
		f.order[i] = int32(id)
	}
	return f
}

// Next implements Scheduler.
func (f *Fixed) Next() (int, float64, bool) {
	for f.pos < len(f.order) {
		id := f.order[f.pos]
		f.pos++
		if f.state[id] == stLive {
			f.state[id] = stProcessed
			f.live--
			return int(id), 0, true
		}
	}
	return -1, 0, false
}

// Complete implements Scheduler (fixed orders release nothing).
func (f *Fixed) Complete(int) {}

// Discard implements Scheduler.
func (f *Fixed) Discard(id int) {
	if f.state[id] == stLive {
		f.state[id] = stDiscarded
		f.live--
	}
}

// PrefetchOrder implements Scheduler: the fixed order itself.
func (f *Fixed) PrefetchOrder() []int32 {
	return append([]int32(nil), f.order...)
}

// Counters implements Scheduler.
func (f *Fixed) Counters() Counters { return f.c }
