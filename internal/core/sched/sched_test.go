package sched

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"
)

// randBoxes generates a random region set over a random grid shape.
func randBoxes(rng *rand.Rand, n, d, kMax int) ([]Box, []int) {
	k := make([]int, d)
	for i := range k {
		k[i] = 2 + rng.IntN(kMax-1)
	}
	boxes := make([]Box, n)
	for b := range boxes {
		mn := make([]int, d)
		mx := make([]int, d)
		for i := range mn {
			lo := rng.IntN(k[i])
			hi := lo + rng.IntN(k[i]-lo)
			mn[i], mx[i] = lo, hi
		}
		boxes[b] = Box{Min: mn, Max: mx}
	}
	return boxes, k
}

// collectEdges enumerates a graph's full edge set as sorted (x, y) pairs.
// Release enumeration order is deliberately unspecified, so comparisons
// sort first. Self-pairs are filtered: the scheduler retires a region from
// the index before releasing it, so production releases never see the
// source itself — here every region is still live.
func collectEdges(g elGraph, n int) [][2]int32 {
	var edges [][2]int32
	for x := int32(0); int(x) < n; x++ {
		g.release(x, func(y int32) {
			if y != x {
				edges = append(edges, [2]int32{x, y})
			}
		})
	}
	slices.SortFunc(edges, func(a, b [2]int32) int {
		if a[0] != b[0] {
			return int(a[0] - b[0])
		}
		return int(a[1] - b[1])
	})
	return edges
}

// checkGraphEquivalence asserts the incremental index and the batch builder
// agree on in-degrees, edge totals and the complete edge set.
func checkGraphEquivalence(t *testing.T, boxes []Box, k []int, workers int) {
	t.Helper()
	var fen int
	inc := newIncGraph(boxes, k, workers, &fen)
	batch := newBatchGraph(boxes, workers)
	if !slices.Equal(inc.inDegrees(), batch.inDegrees()) {
		t.Fatalf("in-degrees diverge:\nincremental %v\nbatch       %v", inc.inDegrees(), batch.inDegrees())
	}
	if inc.edges() != batch.edges() {
		t.Fatalf("edge totals diverge: incremental %d, batch %d", inc.edges(), batch.edges())
	}
	incEdges := collectEdges(inc, len(boxes))
	batchEdges := collectEdges(newBatchGraph(boxes, workers), len(boxes))
	if !slices.Equal(incEdges, batchEdges) {
		t.Fatalf("edge sets diverge: incremental %d edges, batch %d", len(incEdges), len(batchEdges))
	}
}

// driveEquivalence replays one randomized complete/discard sequence through
// the incremental scheduler and the batch oracle, demanding identical pop
// order, pop-time ranks, discard outcomes and counters. The ranker is a
// pure function of (region, pops so far), so both sides see identical
// values iff their refresh sets coincide at every protocol point.
func driveEquivalence(t *testing.T, rng *rand.Rand, boxes []Box, k []int, workers int) {
	t.Helper()
	pops := 0
	ranker := func(id int) float64 {
		x := uint64(id)*0x9e3779b97f4a7c15 + uint64(pops)*0xbf58476d1ce4e5b9
		x ^= x >> 29
		x *= 0x94d049bb133111eb
		// Coarse buckets force rank ties, exercising id tie-breaking.
		return float64(x % 16)
	}
	inc := NewProgressive(boxes, k, ranker, workers)
	batch := NewBatch(boxes, k, ranker, workers)

	alive := make([]bool, len(boxes))
	for i := range alive {
		alive[i] = true
	}
	var order []int
	for {
		ia, ra, oka := inc.Next()
		ib, rb, okb := batch.Next()
		if oka != okb || ia != ib || ra != rb {
			t.Fatalf("pop %d diverges: incremental (%d, %g, %v), batch (%d, %g, %v)",
				pops, ia, ra, oka, ib, rb, okb)
		}
		if !oka {
			break
		}
		pops++
		if !alive[ia] {
			t.Fatalf("pop %d returned dead region %d", pops, ia)
		}
		alive[ia] = false
		order = append(order, ia)
		// Discard a random batch of live regions mid-round, as tuple-level
		// domination would (Algorithm 1, Line 9).
		for tries := rng.IntN(3); tries > 0; tries-- {
			id := rng.IntN(len(boxes))
			if alive[id] {
				alive[id] = false
				inc.Discard(id)
				batch.Discard(id)
			}
		}
		// Discarding non-live regions must be a no-op.
		inc.Discard(ia)
		batch.Discard(ia)
		inc.Complete(ia)
		batch.Complete(ia)
	}
	if len(order) == 0 && len(boxes) > 0 {
		t.Fatal("nothing scheduled")
	}
	ci, cb := inc.Counters(), batch.Counters()
	ci.FenwickUpdates, cb.FenwickUpdates = 0, 0 // batch builds no tree
	if ci != cb {
		t.Fatalf("counters diverge: incremental %+v, batch %+v", ci, cb)
	}
}

// TestSchedulerEquivalence is the differential property test: randomized
// region sets and discard/complete sequences through the incremental
// scheduler vs the retained batch O(n²) builder, across the index's
// operating modes — packed keys with the Fenwick in-degree pass (the
// default), unpacked keys (a dimension wider than 128 cells), and the
// bucket-scan fallback for grids above the Fenwick cap.
func TestSchedulerEquivalence(t *testing.T) {
	modes := []struct {
		name     string
		d, kMax  int
		fenLimit int
	}{
		{"packed/fenwick", 3, 16, 1 << 21},
		{"packed/d=5", 5, 8, 1 << 21},
		{"unpacked/k=200", 2, 200, 1 << 21},
		{"unpacked/d=9", 9, 4, 1 << 21},
		{"fenwick-fallback", 3, 16, 8},
		{"unpacked+fallback", 2, 200, 8},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			defer func(old int) { fenLimit = old }(fenLimit)
			fenLimit = m.fenLimit
			rng := rand.New(rand.NewPCG(uint64(m.d)*77+uint64(m.kMax), 99))
			for trial := 0; trial < 25; trial++ {
				n := 1 + rng.IntN(120)
				workers := rng.IntN(3) * 2 // 0, 2, 4 — construction must not depend on it
				boxes, k := randBoxes(rng, n, m.d, m.kMax)
				label := fmt.Sprintf("trial %d (n=%d d=%d k=%v workers=%d)", trial, n, m.d, k, workers)
				t.Run(label, func(t *testing.T) {
					checkGraphEquivalence(t, boxes, k, workers)
					driveEquivalence(t, rng, boxes, k, workers)
				})
			}
		})
	}
}

// TestEliminatesPredicates pins the §IV-B box predicates.
func TestEliminatesPredicates(t *testing.T) {
	a := Box{Min: []int{0, 0}, Max: []int{2, 2}}
	b := Box{Min: []int{1, 1}, Max: []int{3, 3}}
	if !Eliminates(a, b) {
		t.Fatal("minC(a) < maxC(b) everywhere must be an edge")
	}
	if !Eliminates(b, a) {
		t.Fatal("overlapping boxes eliminate mutually")
	}
	if !CompletelyEliminates(a, b) || CompletelyEliminates(b, a) {
		t.Fatal("complete elimination must be one-directional here")
	}
	c := Box{Min: []int{2, 0}, Max: []int{4, 2}}
	if Eliminates(c, a) {
		t.Fatal("equal coordinate in one dimension is not strict")
	}
}

// TestFixedOrder covers the arrival/random policies: predetermined order,
// discard skipping, rank always zero.
func TestFixedOrder(t *testing.T) {
	f := NewFixed(5, []int{3, 1, 4, 0, 2})
	f.Discard(4)
	f.Discard(4) // no-op
	var got []int
	for {
		id, rank, ok := f.Next()
		if !ok {
			break
		}
		if rank != 0 {
			t.Fatalf("fixed rank = %g", rank)
		}
		got = append(got, id)
	}
	if want := []int{3, 1, 0, 2}; !slices.Equal(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if want := []int32{3, 1, 4, 0, 2}; !slices.Equal(f.PrefetchOrder(), want) {
		t.Fatalf("prefetch order = %v", f.PrefetchOrder())
	}
	if c := f.Counters(); c.Regions != 5 || c.Edges != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestIDHeap exercises the hand-rolled heap: rank ordering with id
// tie-breaks, in-place fixes, and removal.
func TestIDHeap(t *testing.T) {
	rank := make([]float64, 64)
	q := newIDHeap(rank, 64)
	rng := rand.New(rand.NewPCG(5, 6))
	in := map[int32]bool{}
	for step := 0; step < 1000; step++ {
		switch rng.IntN(4) {
		case 0, 1:
			id := int32(rng.IntN(64))
			if !in[id] {
				rank[id] = float64(rng.IntN(8))
				q.push(id)
				in[id] = true
			}
		case 2:
			id := int32(rng.IntN(64))
			if in[id] {
				rank[id] = float64(rng.IntN(8))
				q.fix(id)
			}
		case 3:
			id := int32(rng.IntN(64))
			if rng.IntN(2) == 0 {
				q.remove(id) // may or may not be present
				delete(in, id)
			} else if len(q.items) > 0 {
				top := q.pop()
				for other := range in {
					if other != top && q.before(other, top) {
						t.Fatalf("pop returned %d (rank %g) but %d (rank %g) precedes it",
							top, rank[top], other, rank[other])
					}
				}
				delete(in, top)
			}
		}
		// Structural invariants: positions consistent, heap property holds.
		for i, id := range q.items {
			if q.pos[id] != int32(i) {
				t.Fatalf("pos[%d] = %d, want %d", id, q.pos[id], i)
			}
			if i > 0 && q.before(id, q.items[(i-1)/2]) {
				t.Fatalf("heap property violated at %d", i)
			}
		}
	}
	for q.pop() >= 0 {
	}
	if q.len() != 0 {
		t.Fatal("drained heap not empty")
	}
}
