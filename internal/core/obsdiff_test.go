package core

import (
	"slices"
	"testing"

	"progxe/internal/datagen"
	"progxe/internal/obs"
	"progxe/internal/smj"
)

// runObserved executes the engine with observability fully enabled — phase
// profiler with span recording, out-of-band trace recorder (multiplexed
// with the test's own event capture), result timeline — and returns the
// observable run exactly like runRecorded does.
func runObserved(t *testing.T, p *smj.Problem, opts Options) ([]emission, []Event, smj.Stats, *obs.Profiler, *TraceRecorder) {
	t.Helper()
	prof := obs.NewProfiler()
	prof.EnableSpans()
	rec := NewTraceRecorder(prof.Epoch())
	tl := obs.NewTimeline(prof.Epoch())

	var events []Event
	var got []emission
	opts.Profiler = prof
	opts.Trace = func(ev Event) {
		rec.Observe(ev)
		events = append(events, ev)
		if ev.Kind == EventCellEmitted {
			for i := len(got) - ev.Survivors; i < len(got); i++ {
				got[i].cell = ev.Cell
			}
		}
	}
	stats, err := New(opts).Run(p, smj.SinkFunc(func(res smj.Result) {
		tl.Observe()
		got = append(got, emission{cell: -1, leftID: res.LeftID, rightID: res.RightID, out: slices.Clone(res.Out)})
	}))
	if err != nil {
		t.Fatalf("observed run (workers=%d): %v", opts.Workers, err)
	}
	if q := tl.Quantiles(); int(q.Count) != len(got) {
		t.Fatalf("timeline observed %d emissions, sink received %d", q.Count, len(got))
	}
	return got, events, stats, prof, rec
}

// TestDifferentialObservability is the non-perturbation proof: runs with the
// profiler (spans on), the trace recorder and a timeline all enabled must
// reproduce the unobserved serial run bit for bit — emission sequence,
// trace-event stream, and every counter except DomComparisons — across the
// full worker sweep with both pooled commit paths forced, exactly like the
// plain differential harness.
func TestDifferentialObservability(t *testing.T) {
	for _, tc := range []struct {
		dist  datagen.Distribution
		d     int
		sigma float64
	}{
		{datagen.Independent, 3, 0.1},
		{datagen.AntiCorrelated, 4, 0.1},
	} {
		t.Run(tc.dist.String(), func(t *testing.T) {
			p := smokeProblem(t, 400, tc.d, tc.dist, tc.sigma, 42)

			// Baseline: serial, observability off.
			serialEm, serialEv, serialStats := runRecorded(t, p, Options{})

			// Serial with observability on.
			em, ev, stats, prof, rec := runObserved(t, p, Options{})
			compareRuns(t, "serial+obs", em, ev, stats, serialEm, serialEv, serialStats)

			// The profiler must actually have seen the run.
			rep := prof.Report()
			if rep.SequencerMillis <= 0 || len(rep.Phases) == 0 {
				t.Fatalf("profiler recorded nothing: %+v", rep)
			}
			if rep.SerialCommitFraction <= 0 || rep.SerialCommitFraction >= 1 {
				t.Fatalf("serial-commit fraction out of range: %v", rep.SerialCommitFraction)
			}
			if rec.Len() != len(serialEv) {
				t.Fatalf("trace recorder saw %d events, run produced %d", rec.Len(), len(serialEv))
			}
			spans, instants := rec.Spans()
			if len(spans) == 0 || len(instants) == 0 {
				t.Fatalf("trace recorder produced %d spans, %d instants", len(spans), len(instants))
			}
			if ps := prof.Spans(); len(ps) == 0 {
				t.Fatalf("profiler span log empty with EnableSpans")
			}

			// Worker sweep with both pooled commit paths forced, all
			// observability on.
			defer func(old int) { precheckMinCands = old }(precheckMinCands)
			for i, w := range workerSweep() {
				switch i {
				case 0:
					precheckMinCands = 1
				case 1:
					precheckMinCands = 1 << 30
				default:
					precheckMinCands = 256
				}
				popts := Options{Workers: w}
				em, ev, stats, prof, _ := runObserved(t, p, popts)
				compareRuns(t, "parallel+obs", em, ev, stats, serialEm, serialEv, serialStats)
				if i != 1 { // precheck disabled on pass 1 → maybe no worker time
					if rep := prof.Report(); rep.SequencerMillis <= 0 {
						t.Fatalf("workers=%d profiler recorded no sequencer time", w)
					}
				}
			}

			// Partitioned commit with all observability on: byte-identical
			// output, and the profiler attributes commit time to committer
			// lanes (the attribution the parallel-commit gate reads).
			precheckMinCands = 256
			em, ev, stats, prof, _ = runObserved(t, p, Options{Workers: 2, Committers: 2})
			compareRuns(t, "committed+obs", em, ev, stats, serialEm, serialEv, serialStats)
			rep = prof.Report()
			if rep.CommitterMillis <= 0 {
				t.Fatalf("committed run attributed no committer time: %+v", rep)
			}
			for _, ph := range rep.Phases {
				if ph.Phase == "commit" && ph.CommitterMillis <= 0 {
					t.Fatalf("commit phase has no committer-lane time: %+v", ph)
				}
			}
			foundLane := false
			for _, sp := range prof.Spans() {
				if sp.Track == "committer 1" || sp.Track == "committer 2" {
					foundLane = true
					break
				}
			}
			if !foundLane {
				t.Fatal("no committer-lane span recorded with EnableSpans")
			}
		})
	}
}

// compareRuns demands bit-for-bit equality with the serial baseline, modulo
// DomComparisons (execution placement, not verdicts).
func compareRuns(t *testing.T, label string, em []emission, ev []Event, stats smj.Stats, serialEm []emission, serialEv []Event, serialStats smj.Stats) {
	t.Helper()
	if len(em) != len(serialEm) {
		t.Fatalf("%s emitted %d results, baseline %d", label, len(em), len(serialEm))
	}
	for i := range em {
		g, s := em[i], serialEm[i]
		if g.cell != s.cell || g.leftID != s.leftID || g.rightID != s.rightID || !slices.Equal(g.out, s.out) {
			t.Fatalf("%s emission %d diverges: {cell %d (%d,%d) %v} vs {cell %d (%d,%d) %v}",
				label, i, g.cell, g.leftID, g.rightID, g.out, s.cell, s.leftID, s.rightID, s.out)
		}
	}
	if len(ev) != len(serialEv) {
		t.Fatalf("%s produced %d trace events, baseline %d", label, len(ev), len(serialEv))
	}
	for i := range ev {
		if ev[i] != serialEv[i] {
			t.Fatalf("%s event %d diverges: %v vs %v", label, i, ev[i], serialEv[i])
		}
	}
	ns, ss := stats, serialStats
	ns.DomComparisons, ss.DomComparisons = 0, 0
	if ns != ss {
		t.Fatalf("%s stats diverge: %+v vs %+v", label, ns, ss)
	}
}
