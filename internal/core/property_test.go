package core

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"progxe/internal/baseline"
	"progxe/internal/datagen"
	"progxe/internal/smj"
)

// TestPropertyRandomConfigs drives the whole pipeline with randomized
// workload and engine configurations and checks set equality with the oracle
// plus emission finality — a randomized sweep over the space the fixed-grid
// tests sample deterministically.
func TestPropertyRandomConfigs(t *testing.T) {
	r := rand.New(rand.NewPCG(1234, 5678))
	dists := []datagen.Distribution{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated}
	trial := 0
	f := func() bool {
		trial++
		n := 20 + r.IntN(150)
		d := 1 + r.IntN(4)
		dist := dists[r.IntN(len(dists))]
		sigma := []float64{0.01, 0.05, 0.2}[r.IntN(3)]
		opts := Options{
			InputCells:  r.IntN(5),     // 0 = auto
			OutputCells: r.IntN(3) * 8, // 0 = auto, 8, 16
			Ordering:    Ordering(r.IntN(4)),
			PushThrough: r.IntN(2) == 1,
			Seed:        uint64(trial),
		}
		p := smokeProblem(t, n, d, dist, sigma, uint64(1000+trial))
		oracle, err := baseline.Oracle(p)
		if err != nil {
			t.Logf("trial %d: oracle: %v", trial, err)
			return false
		}
		inOracle := make(map[[2]int64]bool, len(oracle))
		for _, res := range oracle {
			inOracle[res.Key()] = true
		}
		ok := true
		seen := 0
		_, err = New(opts).Run(p, smj.SinkFunc(func(res smj.Result) {
			seen++
			if !inOracle[res.Key()] {
				ok = false
			}
		}))
		if err != nil {
			t.Logf("trial %d (%+v, n=%d d=%d %s σ=%g): %v", trial, opts, n, d, dist, sigma, err)
			return false
		}
		if !ok || seen != len(oracle) {
			t.Logf("trial %d (%+v, n=%d d=%d %s σ=%g): emitted %d, oracle %d, clean=%v",
				trial, opts, n, d, dist, sigma, seen, len(oracle), ok)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	_ = fmt.Sprintf
}
