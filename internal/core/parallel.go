package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"progxe/internal/grid"
	"progxe/internal/mapping"
	"progxe/internal/obs"
	"progxe/internal/par"
	"progxe/internal/smj"
)

// Parallel region processing.
//
// Tuple-level processing of one region decomposes into three stages with
// very different concurrency properties:
//
//  1. the candidate stream — join matching, mapping-function evaluation,
//     output-cell routing and coordinate sums — is a pure function of the
//     region's input partitions and the (immutable) grid and mapping set;
//  2. the phase-1 dominance check of each candidate reads the output space
//     but, against a fixed snapshot, is independent per candidate;
//  3. committing survivors (eviction, buffer insertion, populate marking,
//     progressive determination) mutates shared bookkeeping whose order
//     defines the emission stream.
//
// The pool below parallelizes (1) across regions — prefetch workers
// materialize candidate streams into per-job arenas while earlier regions
// commit — and (2) within a region: precheck workers scan the frozen
// pre-round space while the sequencer waits. Stage (3) stays on the
// sequencer goroutine, in the exact order the serial engine uses, so the
// externally observable run — emissions, trace events, and every counter
// except DomComparisons (which reflects where comparisons run, not what
// they decide) — is byte-identical to the serial engine regardless of
// GOMAXPROCS, worker count, or goroutine scheduling.
//
// A cell-sharded space with per-cell locks was considered and rejected:
// phase-1/phase-2 scans cross cells, so insert outcomes under concurrent
// commit would depend on interleaving (arrival-order tie-breaks, the
// populate/marking race), which is irreconcilable with a bit-for-bit
// deterministic stream. Sharding the *reads* (precheck) and the *stream
// construction* (prefetch) keeps every mutation single-owner instead.

// cand is one mapped join result awaiting the tuple-level protocol: the
// joined pair, its canonical output vector (backed by the job's block),
// the coordinate sum, and the flat id of its output cell.
type cand struct {
	leftID, rightID int64
	sum             float64
	flat            int
	v               []float64
}

// candBuf is the reusable per-job arena for one region's candidate stream.
// Vectors are carved out of one backing block; both slices are recycled
// through the pool's free list, so a warm pool materializes streams without
// per-tuple (or even per-region) heap allocations.
type candBuf struct {
	cands []cand
	block []float64
}

// ensure sizes the buffer for n candidates of dimension d, reusing capacity.
func (b *candBuf) ensure(n, d int) {
	if cap(b.cands) < n {
		b.cands = make([]cand, n)
	} else {
		b.cands = b.cands[:n]
	}
	if cap(b.block) < n*d {
		b.block = make([]float64, n*d)
	} else {
		b.block = b.block[:n*d]
	}
}

// Job lifecycle: a worker (or the sequencer, inline) claims an unclaimed
// job, materializes the stream, and marks it done; the sequencer consumes
// it when the region's turn comes (or drops it on region discard).
const (
	jobUnclaimed int32 = iota
	jobClaimed
	jobDone
	jobConsumed
)

// regionJob tracks the prefetch state of one region's candidate stream.
type regionJob struct {
	state    atomic.Int32
	reg      *region
	done     chan struct{} // closed when state reaches jobDone
	budgeted bool          // claimed by a worker holding an in-flight slot
	buf      *candBuf
	n        int // candidates materialized (== reg.joinCard unless canceled)
}

// probeEntry lazily builds the hash-join probe table of one right-side
// input partition. Regions sharing a right partition share the table, so
// the build cost is paid once per partition instead of once per region.
type probeEntry struct {
	once sync.Once
	tbl  map[int64][]int32
}

// precheckTask asks for the phase-1 dominance verdicts of one chunk of the
// current round's candidates against the frozen pre-round space. Chunks
// write disjoint ranges of the shared rejected slice.
type precheckTask struct {
	s        *space
	cands    []cand
	rejected []bool
	lo       int
	comps    int
	wg       *sync.WaitGroup
}

// precheckState is the per-goroutine scratch for precheck scans: the visit
// stamps that dedup cells appearing in several coordinate buckets. Each
// goroutine owns one, so scans never touch the index's shared epoch.
type precheckState struct {
	visited []int32
	epoch   int32
}

func newPrecheckState(cells int) *precheckState {
	return &precheckState{visited: make([]int32, cells)}
}

// precheckMinCands is the round size below which the phase-1 precheck runs
// inline on the sequencer: distributing a handful of candidates costs more
// in barrier synchronization than the scans themselves. A variable (not
// const) so the differential tests can force each pooled commit path —
// precheck on every round, or never — regardless of round sizes. The
// threshold changes where phase 1 executes, never its verdicts.
var precheckMinCands = 256

// precheckChunk is the target candidates-per-task granularity.
const precheckChunk = 512

// pool runs parallel region processing for one engine run.
type pool struct {
	workers int
	d       int
	maps    *mapping.Set
	g       *grid.Grid
	ctx     context.Context

	jobs   []regionJob
	order  []int32 // prefetch priority: region ids, most-urgent first
	cursor atomic.Int32

	tables []probeEntry // probe tables indexed by right-partition id

	sem  chan struct{} // bounds claimed-but-unconsumed prefetch jobs
	quit chan struct{}
	wg   sync.WaitGroup

	bufFree chan *candBuf

	taskCh   chan *precheckTask
	specCh   chan *specTask // speculative scans, served at lower priority
	tasks    []precheckTask
	pwg      sync.WaitGroup
	seqState *precheckState // precheck scratch for the sequencer itself
	rejected []bool

	// prof attributes worker-side stream construction and precheck scans
	// to worker lanes (nil-safe; set by the engine before start).
	prof *obs.Profiler
}

// newPool sizes the pool for a run over the given regions. It does not
// start any goroutine; the sequencer calls start once the prefetch order is
// known. slack widens the in-flight prefetch budget by the number of extra
// candidate buffers cross-round speculation may retain past consumption
// (the pending-finish queue); 0 without speculation.
func newPool(ctx context.Context, workers int, s *space, regions []*region, rparts int, maps *mapping.Set, slack int) *pool {
	if ctx == nil {
		ctx = context.Background()
	}
	inflight := workers + 2 + slack
	p := &pool{
		workers: workers,
		d:       s.d,
		maps:    maps,
		g:       s.g,
		ctx:     ctx,
		jobs:    make([]regionJob, len(regions)),
		tables:  make([]probeEntry, rparts),
		sem:     make(chan struct{}, inflight),
		quit:    make(chan struct{}),
		bufFree: make(chan *candBuf, inflight+workers+1),
		// Sized so the sequencer can publish a whole round's tasks without
		// blocking (chunking bounds the task count per round).
		taskCh: make(chan *precheckTask, 4*workers+8),
		// Sized past specMaxDepth so launching a speculative scan never
		// blocks the sequencer.
		specCh:   make(chan *specTask, 2*specMaxDepth),
		seqState: newPrecheckState(len(s.cellList)),
	}
	for i := range p.jobs {
		p.jobs[i].reg = regions[i]
		p.jobs[i].done = make(chan struct{})
	}
	return p
}

// start launches the prefetch and precheck workers. order lists region ids
// in descending scheduling urgency; prefetching a region that is later
// discarded wastes only the stream construction, never correctness.
func (p *pool) start(order []int32, cells int) {
	p.order = order
	// Profiler lanes: prefetch workers take 1..workers, precheck workers
	// workers+1..2·workers; lane 0 is the sequencer's.
	for i := 0; i < p.workers; i++ {
		p.wg.Add(2)
		go p.prefetchWorker(1 + i)
		go p.precheckWorker(1+p.workers+i, cells)
	}
}

// stop terminates the workers and waits for them; safe to call once even if
// start never ran.
func (p *pool) stop() {
	close(p.quit)
	p.wg.Wait()
}

func (p *pool) getBuf() *candBuf {
	select {
	case b := <-p.bufFree:
		return b
	default:
		return &candBuf{}
	}
}

func (p *pool) putBuf(b *candBuf) {
	select {
	case p.bufFree <- b:
	default:
	}
}

// table returns the shared probe table of a right-side partition, building
// it on first use (by whichever goroutine needs it first).
func (p *pool) table(b *inputPartition) map[int64][]int32 {
	e := &p.tables[b.id]
	e.once.Do(func() {
		m := make(map[int64][]int32, len(b.tuples))
		for i, t := range b.tuples {
			m[t.JoinKey] = append(m[t.JoinKey], int32(i))
		}
		e.tbl = m
	})
	return e.tbl
}

// mapStream materializes the region's candidate stream into buf in the
// canonical order — left tuples outer, right build order inner — which is
// exactly join.Hash's emission order, so the sequencer's commits replay the
// serial engine verbatim. Returns the number of candidates written (short
// only when canceled mid-stream, in which case the run is aborting anyway).
func (p *pool) mapStream(reg *region, buf *candBuf, cancel *smj.Canceler) int {
	lt, rt := reg.a.tuples, reg.b.tuples
	tbl := p.table(reg.b)
	buf.ensure(reg.joinCard, p.d)
	k := 0
	for li := range lt {
		lv := lt[li].Vals
		for _, ri := range tbl[lt[li].JoinKey] {
			if cancel.Check() != nil {
				return k
			}
			v := buf.block[k*p.d : (k+1)*p.d : (k+1)*p.d]
			p.maps.Map(lv, rt[ri].Vals, v)
			sum := 0.0
			for _, x := range v {
				sum += x
			}
			buf.cands[k] = cand{
				leftID:  lt[li].ID,
				rightID: rt[ri].ID,
				sum:     sum,
				flat:    p.g.CellOf(v),
				v:       v,
			}
			k++
		}
	}
	return k
}

// claimNext claims the most urgent unclaimed job, or nil when none remain.
func (p *pool) claimNext() *regionJob {
	for {
		i := p.cursor.Load()
		if int(i) >= len(p.order) {
			return nil
		}
		j := &p.jobs[p.order[i]]
		claimed := j.state.CompareAndSwap(jobUnclaimed, jobClaimed)
		p.cursor.CompareAndSwap(i, i+1)
		if claimed {
			return j
		}
	}
}

// prefetchWorker materializes candidate streams ahead of the sequencer,
// bounded by the in-flight budget so memory stays proportional to the
// worker count rather than the whole join.
func (p *pool) prefetchWorker(lane int) {
	defer p.wg.Done()
	cancel := smj.NewCanceler(p.ctx)
	for {
		select {
		case <-p.quit:
			return
		case p.sem <- struct{}{}:
		}
		j := p.claimNext()
		if j == nil {
			<-p.sem
			return
		}
		j.budgeted = true
		if par.YieldHook != nil {
			par.YieldHook()
		}
		j.buf = p.getBuf()
		t0 := p.prof.Clock()
		j.n = p.mapStream(j.reg, j.buf, cancel)
		p.prof.EndWorker(obs.PhasePrefetch, lane, t0)
		j.state.Store(jobDone)
		close(j.done)
		if cancel.Now() != nil {
			return
		}
	}
}

// take hands the sequencer a region's candidate stream: prefetched if a
// worker got there first, computed inline otherwise. The sequencer must
// pair every take with finish.
func (p *pool) take(reg *region, cancel *smj.Canceler) (*candBuf, int) {
	j := &p.jobs[reg.id]
	if j.state.CompareAndSwap(jobUnclaimed, jobClaimed) {
		j.buf = p.getBuf()
		j.n = p.mapStream(reg, j.buf, cancel)
		j.state.Store(jobDone)
		close(j.done)
	} else {
		<-j.done
	}
	return j.buf, j.n
}

// finish releases a consumed job's arena and in-flight slot.
func (p *pool) finish(reg *region) {
	j := &p.jobs[reg.id]
	j.state.Store(jobConsumed)
	if j.buf != nil {
		p.putBuf(j.buf)
		j.buf = nil
	}
	if j.budgeted {
		<-p.sem
	}
}

// drop releases the job of a discarded region. A stream already in flight
// is waited out (bounded by one region's construction) so its slot and
// arena return to the pool instead of leaking for the rest of the run.
func (p *pool) drop(reg *region) {
	j := &p.jobs[reg.id]
	if j.state.CompareAndSwap(jobUnclaimed, jobConsumed) {
		return
	}
	<-j.done
	p.finish(reg)
}

// rejectedScratch returns the shared, cleared verdict slice for n candidates.
func (p *pool) rejectedScratch(n int) []bool {
	if cap(p.rejected) < n {
		p.rejected = make([]bool, n)
	} else {
		p.rejected = p.rejected[:n]
		clear(p.rejected)
	}
	return p.rejected
}

// precheck runs the phase-1 dominance check of every candidate against the
// frozen pre-round space, fanned across the precheck workers with the
// sequencer helping. It returns the number of dominance comparisons
// performed, accumulated in task order so the total is deterministic.
// The space MUST NOT be mutated while precheck runs; the sequencer
// guarantees that by blocking here until the barrier resolves.
func (p *pool) precheck(s *space, cands []cand, rejected []bool) int {
	chunk := (len(cands) + 3*p.workers) / (3*p.workers + 1)
	if chunk < precheckChunk {
		chunk = precheckChunk
	}
	p.tasks = p.tasks[:0]
	for lo := 0; lo < len(cands); lo += chunk {
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		p.tasks = append(p.tasks, precheckTask{
			s: s, cands: cands[lo:hi], rejected: rejected, lo: lo, wg: &p.pwg,
		})
	}
	p.pwg.Add(len(p.tasks))
	for i := range p.tasks {
		p.taskCh <- &p.tasks[i]
	}
	// Help drain the queue: with every worker busy the sequencer would
	// otherwise idle through its own barrier.
	for {
		select {
		case t := <-p.taskCh:
			t.run(p.seqState)
			continue
		default:
		}
		break
	}
	p.pwg.Wait()
	comps := 0
	for i := range p.tasks {
		comps += p.tasks[i].comps
	}
	return comps
}

// precheckWorker serves phase-1 scan tasks for the duration of the run:
// round-critical barrier tasks first, speculative cross-round scans only
// when the barrier queue is empty (a speculation stall costs a fresh scan
// later; a barrier stall costs sequencer wall-clock now). Only
// worker-served tasks report on the worker lane; tasks the sequencer
// drains itself are already inside its barrier span (no double counting).
func (p *pool) precheckWorker(lane int, cells int) {
	defer p.wg.Done()
	st := newPrecheckState(cells)
	for {
		select {
		case <-p.quit:
			return
		case t := <-p.taskCh:
			t0 := p.prof.Clock()
			t.run(st)
			p.prof.EndWorker(obs.PhasePrecheck, lane, t0)
			continue
		default:
		}
		select {
		case <-p.quit:
			return
		case t := <-p.taskCh:
			t0 := p.prof.Clock()
			t.run(st)
			p.prof.EndWorker(obs.PhasePrecheck, lane, t0)
		case t := <-p.specCh:
			t0 := p.prof.Clock()
			t.run(st)
			p.prof.EndWorker(obs.PhaseSpeculate, lane, t0)
		}
	}
}

// run computes the verdicts of one chunk.
func (t *precheckTask) run(st *precheckState) {
	comps := 0
	for k := range t.cands {
		if par.YieldHook != nil && k%64 == 0 {
			par.YieldHook()
		}
		cd := &t.cands[k]
		c := t.s.cellAt(cd.flat)
		if c == nil || c.marked {
			// Marked cells reject without dominance tests; the sequencer
			// handles (and counts) them at commit time, where marks added
			// by this very round are also visible.
			continue
		}
		if t.s.precheckDominated(c, cd.v, cd.sum, st, &comps) {
			t.rejected[t.lo+k] = true
		}
	}
	t.comps = comps
	t.wg.Done()
}

// stamp opens a fresh visit epoch in the goroutine-local scratch and
// pre-visits c, mirroring cellIndex.stamp (including wrap clearing)
// without touching shared state.
func (st *precheckState) stamp(c *cell) int32 {
	if st.epoch == math.MaxInt32 {
		st.epoch = 0
		clear(st.visited)
	}
	st.epoch++
	st.visited[c.seq] = st.epoch
	return st.epoch
}

// precheckDominated is the read-only twin of the insert phase-1 scan in
// space.insertSum: identical bucket enumeration, identical summary and sum
// cutoffs, but visit dedup through goroutine-local stamps and comparison
// counting into the task-local counter. Its verdict for a candidate equals
// the serial engine's rejection verdict restricted to pre-round survivors:
// sound because eviction only ever replaces a tuple with one that dominates
// it (so a stale dominator implies a live one), and exact because intra-
// round insertions are re-checked by the sequencer against roundNew.
func (s *space) precheckDominated(c *cell, v []float64, sum float64, st *precheckState, comps *int) bool {
	epoch := st.stamp(c)
	if cellDominates(c, v, sum, comps) {
		return true
	}
	packed := s.idx.packed
	for i := 0; i < s.d; i++ {
		b := s.idx.buckets[i][c.coords[i]]
		for j := bucketSplit(b, c.flat) - 1; j >= 0; j-- {
			e := &b[j]
			if packed {
				if !keyLeq(e.key, c.key) {
					continue
				}
			} else if !grid.LeqAll(e.c.coords, c.coords) {
				continue
			}
			p := e.c
			if st.visited[p.seq] == epoch || len(p.tuples) == 0 {
				continue
			}
			st.visited[p.seq] = epoch
			if cellDominates(p, v, sum, comps) {
				return true
			}
		}
	}
	return false
}

// The deterministic parallel-for behind the setup passes (region pruning,
// coverage, static marking) lives in internal/par, shared with the
// scheduler layer's graph construction.
