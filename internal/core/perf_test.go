package core

import (
	"math/rand/v2"
	"testing"

	"progxe/internal/smj"
)

// perfSpace builds a space over one 2-d region spanning [0,10]² with the
// given output resolution, for driving the tuple-level protocol directly.
func perfSpace(tb testing.TB, outputCells int) (*space, *region) {
	tb.Helper()
	left := []*inputPartition{mkPart(0, []float64{0, 0}, []float64{5, 5})}
	right := []*inputPartition{mkPart(1, []float64{0, 0}, []float64{5, 5})}
	regions, pruned := buildRegions(left, right, sumMaps2(), 0)
	if pruned != 0 || len(regions) != 1 {
		tb.Fatalf("setup: pruned=%d regions=%d", pruned, len(regions))
	}
	var stats smj.Stats
	s, err := buildSpace(regions, 2, outputCells, &stats, 0)
	if err != nil {
		tb.Fatal(err)
	}
	s.emit = func(outTuple) {}
	return s, regions[0]
}

// perfVectors generates n anti-correlated-ish 2-d vectors inside the space
// bounds, the worst case for survivor counts.
func perfVectors(n int) [][]float64 {
	rng := rand.New(rand.NewPCG(7, 13))
	out := make([][]float64, n)
	for i := range out {
		x := rng.Float64() * 10
		y := 10 - x + rng.Float64()*0.5
		if y > 10 {
			y = 10
		}
		out[i] = []float64{x, y}
	}
	return out
}

// BenchmarkInsert measures steady-state tuple-level processing: one insert
// per iteration over a pre-populated anti-correlated space.
func BenchmarkInsert(b *testing.B) {
	s, _ := perfSpace(b, 16)
	vecs := perfVectors(4096)
	for _, v := range vecs { // warm the space with the initial front
		if c := s.cellAt(s.g.CellOf(v)); c != nil {
			s.insert(c, 1, 1, v)
		}
	}
	s.flushFree()
	v := make([]float64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A slowly advancing front: each tuple slightly improves on its
		// same-x predecessor, so inserts keep evicting (and recycling)
		// instead of accumulating equal survivors.
		p := vecs[i%len(vecs)]
		v[0], v[1] = p[0], p[1]-float64(i)*1e-7
		if v[1] < 0 {
			v[1] = 0
		}
		if c := s.cellAt(s.g.CellOf(v)); c != nil {
			s.insert(c, 1, 1, v)
		}
		if i%256 == 255 {
			s.flushFree()
		}
	}
}

// BenchmarkPopulate measures first-population cost including the dynamic
// strict-upper marking sweep, by filling a fresh space cell by cell.
func BenchmarkPopulate(b *testing.B) {
	vecs := perfVectors(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, _ := perfSpace(b, 16)
		b.StartTimer()
		for _, v := range vecs {
			if c := s.cellAt(s.g.CellOf(v)); c != nil {
				s.insert(c, 1, 1, v)
			}
		}
	}
}

// TestInsertSteadyStateZeroAlloc pins the arena guarantee: once the space
// is warm, a surviving insert that evicts a prior survivor performs no heap
// allocations (the evicted vector is recycled for the newcomer).
func TestInsertSteadyStateZeroAlloc(t *testing.T) {
	s, _ := perfSpace(t, 8)
	c := s.cellAt(s.g.CellOf([]float64{4, 4}))
	if c == nil {
		t.Fatal("no cell at (4,4)")
	}
	v := []float64{4, 4}
	// Warm up: populate the cell, exercise the evict-recycle cycle once,
	// and let pendingFree/free reach steady capacity.
	for i := 0; i < 8; i++ {
		v[0], v[1] = v[0]-1e-6, v[1]-1e-6
		if _, ok := s.insert(c, 1, 1, v); !ok {
			t.Fatal("warmup insert must survive")
		}
		s.flushFree()
	}
	allocs := testing.AllocsPerRun(200, func() {
		// Each insert strictly dominates the sole survivor: the old vector
		// is evicted to pendingFree and recycled by flushFree.
		v[0], v[1] = v[0]-1e-6, v[1]-1e-6
		if _, ok := s.insert(c, 1, 1, v); !ok {
			t.Fatal("steady-state insert must survive")
		}
		s.flushFree()
	})
	if allocs != 0 {
		t.Fatalf("steady-state insert allocates %.2f times per surviving tuple, want 0", allocs)
	}
	// Rejected tuples must also be allocation-free.
	reject := []float64{4.5, 4.5}
	allocs = testing.AllocsPerRun(200, func() {
		if _, ok := s.insert(c, 1, 1, reject); ok {
			t.Fatal("dominated insert must be rejected")
		}
	})
	if allocs != 0 {
		t.Fatalf("rejected insert allocates %.2f times, want 0", allocs)
	}
}
