package core

import (
	"math"

	"progxe/internal/grid"
)

// denseLimit caps the size of the flat-id → *cell lookup array. Grids above
// the cap (possible only with extreme manual OutputCells choices) fall back
// to the construction map and to whole-list scans, trading speed for memory.
// A variable (not const) so the differential tests can force the fallback
// paths on small grids.
var denseLimit = 1 << 21

// keyLeq is grid.KeyLeq (the canonical lane-packed comparison), wrapped
// thinly so the hot paths keep their inlinable local name.
func keyLeq(a, b uint64) bool { return grid.KeyLeq(a, b) }

// bucketEntry is one populated cell in a coordinate bucket, carrying the
// cell's flat id and packed coordinate key inline so the comparability
// filter runs without chasing the cell pointer.
type bucketEntry struct {
	flat int
	key  uint64
	c    *cell
}

// cellIndex accelerates the three hot queries of tuple-level processing and
// progressive determination:
//
//   - flat-id → cell resolution (dense array instead of a map lookup),
//   - "populated cells comparable to X" (per-dimension coordinate buckets:
//     a cell is slice-comparable to X iff it shares a coordinate with X in
//     some dimension and is componentwise ≤ or ≥, so the union of the d
//     buckets through X covers exactly the candidate set of §III-B; each
//     bucket is sorted by flat id, and componentwise ≤ implies flat ≤, so
//     dominator candidates live in the bucket prefix below X's flat id and
//     victim candidates in the suffix above it),
//   - coordinate-box enumeration (the closed lower orthant for blocker
//     checks, the strict upper orthant for dynamic marking) via row-major
//     odometer walks over the dense array.
//
// Buckets hold populated cells only: cells are never un-populated, and
// empty-buffer or marked cells are skipped by the caller.
type cellIndex struct {
	g     *grid.Grid
	d     int
	all   []*cell // every covered cell (epoch-wrap stamp clearing)
	dense []*cell // flat id → cell; nil for uncovered cells. nil slice = fallback mode.
	minC  []int   // componentwise min coordinate over covered cells
	maxC  []int   // componentwise max coordinate over covered cells
	// packed reports whether coordinates fit 8-bit lanes (d ≤ 8, every
	// dimension ≤ 128 cells) so keyLeq applies; otherwise comparability
	// falls back to grid.LeqAll over the coordinate slices.
	packed bool
	// buckets[i][v] lists populated cells whose i-th coordinate equals v,
	// ascending by flat id.
	buckets [][][]bucketEntry
	epoch   int32 // visit stamp: dedups cells appearing in several buckets
}

// init sizes the index for the given grid and covered cell list (ascending
// flat order), and assigns each cell its packed coordinate key.
func (x *cellIndex) init(g *grid.Grid, cells []*cell) {
	x.g = g
	x.d = g.Dims()
	x.all = cells
	if g.NumCells() <= denseLimit {
		x.dense = make([]*cell, g.NumCells())
	}
	x.minC = make([]int, x.d)
	x.maxC = make([]int, x.d)
	x.packed = x.d <= 8
	for i := range x.minC {
		x.minC[i] = g.CellsPerDim(i)
		x.maxC[i] = -1
		if g.CellsPerDim(i) > 128 {
			x.packed = false
		}
	}
	x.buckets = make([][][]bucketEntry, x.d)
	for i := range x.buckets {
		x.buckets[i] = make([][]bucketEntry, g.CellsPerDim(i))
	}
	for _, c := range cells {
		if x.dense != nil {
			x.dense[c.flat] = c
		}
		if x.packed {
			c.key = packKey(c.coords)
		}
		for i, v := range c.coords {
			if v < x.minC[i] {
				x.minC[i] = v
			}
			if v > x.maxC[i] {
				x.maxC[i] = v
			}
		}
	}
}

// packKey is grid.PackKey under the index's local name.
func packKey(coords []int) uint64 { return grid.PackKey(coords) }

// addPopulated registers a newly populated cell in every dimension bucket,
// keeping buckets sorted by flat id.
func (x *cellIndex) addPopulated(c *cell) {
	e := bucketEntry{flat: c.flat, key: c.key, c: c}
	for i, v := range c.coords {
		b := x.buckets[i][v]
		pos := bucketSplit(b, c.flat)
		b = append(b, bucketEntry{})
		copy(b[pos+1:], b[pos:])
		b[pos] = e
		x.buckets[i][v] = b
	}
}

// bucketSplit returns the first index whose entry has flat ≥ the given id.
func bucketSplit(b []bucketEntry, flat int) int {
	lo, hi := 0, len(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if b[mid].flat < flat {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// stamp opens a fresh visit epoch and pre-visits c (so bucket walks skip it).
// Epochs are int32 to keep the cell struct compact; on the (pathological)
// wrap every stamp is cleared so stale marks can never collide.
func (x *cellIndex) stamp(c *cell) int32 {
	if x.epoch == math.MaxInt32 {
		x.epoch = 0
		for _, q := range x.all {
			q.visited = 0
		}
	}
	x.epoch++
	c.visited = x.epoch
	return x.epoch
}

// lowerBoxVolume returns the number of grid cells in the closed box
// [minC, coords], the candidate count of a lower-orthant enumeration.
func (x *cellIndex) lowerBoxVolume(coords []int) int {
	v := 1
	for i, c := range coords {
		v *= c - x.minC[i] + 1
	}
	return v
}

// firstActiveInLowerBox returns the active cell with the smallest flat id
// inside the closed lower orthant of coords, enumerating the coordinate box
// in ascending flat order over the dense array. Requires dense mode.
func (x *cellIndex) firstActiveInLowerBox(coords []int) *cell {
	// Row-major odometer starting at minC; the first active hit has the
	// smallest flat id because flat order is lexicographic in coords.
	cur := make([]int, 0, 8)
	cur = append(cur, x.minC[:x.d]...)
	flat := x.g.Flat(cur)
	for {
		if c := x.dense[flat]; c != nil && c.activeIdx >= 0 {
			return c
		}
		i := x.d - 1
		for ; i >= 0; i-- {
			cur[i]++
			flat += x.g.Stride(i)
			if cur[i] <= coords[i] {
				break
			}
			flat -= (cur[i] - x.minC[i]) * x.g.Stride(i)
			cur[i] = x.minC[i]
		}
		if i < 0 {
			return nil
		}
	}
}

// strictUpperBoxVolume returns the number of grid cells strictly above
// coords in every dimension, clamped to the covered bounding box.
func (x *cellIndex) strictUpperBoxVolume(coords []int) int {
	v := 1
	for i, c := range coords {
		span := x.maxC[i] - c
		if span <= 0 {
			return 0
		}
		v *= span
	}
	return v
}

// eachInStrictUpperBox calls fn for every covered cell strictly above coords
// in all dimensions. Requires dense mode and a non-empty box.
func (x *cellIndex) eachInStrictUpperBox(coords []int, fn func(*cell)) {
	cur := make([]int, 0, 8)
	for i := range coords {
		cur = append(cur, coords[i]+1)
	}
	flat := x.g.Flat(cur)
	for {
		if c := x.dense[flat]; c != nil {
			fn(c)
		}
		i := x.d - 1
		for ; i >= 0; i-- {
			cur[i]++
			flat += x.g.Stride(i)
			if cur[i] <= x.maxC[i] {
				break
			}
			flat -= (cur[i] - coords[i] - 1) * x.g.Stride(i)
			cur[i] = coords[i] + 1
		}
		if i < 0 {
			return
		}
	}
}
