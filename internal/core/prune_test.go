package core

import (
	"fmt"
	"slices"
	"testing"

	"progxe/internal/datagen"
	"progxe/internal/mapping"
	"progxe/internal/smj"
)

// prunedRun is everything observable about one engine run: the full
// emission stream (ids and cloned output vectors), the trace event
// sequence, and the stats block.
type prunedRun struct {
	results []string
	events  []string
	stats   smj.Stats
}

func runWithPruning(t *testing.T, p *smj.Problem, opts Options, oracle bool) prunedRun {
	t.Helper()
	defer func(old bool) { pruneOracle = old }(pruneOracle)
	pruneOracle = oracle
	var rec prunedRun
	opts.Trace = func(e Event) { rec.events = append(rec.events, e.String()) }
	stats, err := New(opts).Run(p, smj.SinkFunc(func(r smj.Result) {
		rec.results = append(rec.results, fmt.Sprintf("%d|%d|%v", r.LeftID, r.RightID, r.Out))
	}))
	if err != nil {
		t.Fatalf("run (oracle=%v): %v", oracle, err)
	}
	rec.stats = stats
	return rec
}

// TestPruningPathPreservesEmissionStream pins the tentpole's invariant:
// swapping region-level domination pruning between the box-index sweep and
// the retained O(n²) oracle changes nothing observable — kept/pruned
// counts, the region schedule, the trace event sequence, and the emission
// stream are byte-identical, because both paths mark the identical
// dominated set.
func TestPruningPathPreservesEmissionStream(t *testing.T) {
	workloads := []struct {
		name  string
		n, d  int
		dist  datagen.Distribution
		sigma float64
		seed  uint64
		opts  Options
	}{
		{"anti d=3", 260, 3, datagen.AntiCorrelated, 0.05, 7, Options{}},
		{"indep d=4", 220, 4, datagen.Independent, 0.05, 11, Options{}},
		{"corr d=2 kd", 300, 2, datagen.Correlated, 0.02, 13, Options{Partitioning: PartitionKD}},
		{"anti d=2 fine grid", 240, 2, datagen.AntiCorrelated, 0.05, 17, Options{InputCells: 4, OutputCells: 32}},
		{"card-ranker", 220, 3, datagen.AntiCorrelated, 0.05, 19, Options{Ranker: RankCardinality}},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			p := smokeProblem(t, w.n, w.d, w.dist, w.sigma, w.seed)
			indexed := runWithPruning(t, p, w.opts, false)
			oracle := runWithPruning(t, p, w.opts, true)
			if indexed.stats.RegionsPruned != oracle.stats.RegionsPruned {
				t.Fatalf("pruned counts diverge: index %d, oracle %d",
					indexed.stats.RegionsPruned, oracle.stats.RegionsPruned)
			}
			if !slices.Equal(indexed.events, oracle.events) {
				t.Fatalf("trace event sequences diverge (%d vs %d events)",
					len(indexed.events), len(oracle.events))
			}
			if !slices.Equal(indexed.results, oracle.results) {
				t.Fatalf("emission streams diverge (%d vs %d results)",
					len(indexed.results), len(oracle.results))
			}
			if indexed.stats != oracle.stats {
				t.Fatalf("stats diverge:\nindex  %+v\noracle %+v", indexed.stats, oracle.stats)
			}
			if indexed.stats.Regions == 0 || len(indexed.results) == 0 {
				t.Fatal("fixture produced no regions or no results; the check is vacuous")
			}
		})
	}
}

// TestPrunedRegionSetsMatch drives the region-level verdicts directly on
// the partition pairing of a real workload, forcing at least one case where
// pruning actually removes regions.
func TestPrunedRegionSetsMatch(t *testing.T) {
	p := smokeProblem(t, 400, 2, datagen.Correlated, 0.05, 23)
	cp, _, err := checkProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{InputCells: 4})
	lparts, err := e.partition(cp.Left, cp.Maps, mapping.Left)
	if err != nil {
		t.Fatal(err)
	}
	rparts, err := e.partition(cp.Right, cp.Maps, mapping.Right)
	if err != nil {
		t.Fatal(err)
	}
	all := pairRegions(lparts, rparts, cp.Maps)
	if len(all) < 8 {
		t.Fatalf("fixture paired only %d regions", len(all))
	}
	idx := prunedRegions(all, 0)
	defer func(old bool) { pruneOracle = old }(pruneOracle)
	pruneOracle = true
	orc := prunedRegions(all, 2)
	if !slices.Equal(idx, orc) {
		t.Fatalf("verdicts diverge:\nindex  %v\noracle %v", idx, orc)
	}
	pruned := 0
	for _, d := range idx {
		if d {
			pruned++
		}
	}
	if pruned == 0 {
		t.Fatal("fixture pruned nothing; pick a workload where look-ahead bites")
	}
}
