package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"progxe/internal/baseline"
	"progxe/internal/datagen"
	"progxe/internal/mapping"
	"progxe/internal/preference"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// The LiveSpace differential oracle: after every batch of a randomized
// insert/delete stream, the net result set (emissions minus retractions)
// must equal a fresh oracle run over the current snapshot — byte-compared
// on the canonical (LeftID, RightID) ordering, output vectors included.

func liveProblem(t *testing.T, n, d int, dist datagen.Distribution, sigma float64, seed uint64) *smj.Problem {
	t.Helper()
	r, s, err := datagen.GeneratePair(datagen.Spec{N: n, Dims: d, Distribution: dist, Selectivity: sigma, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	funcs := make([]mapping.Func, d)
	for j := 0; j < d; j++ {
		funcs[j] = mapping.Func{
			Name: fmt.Sprintf("x%d", j),
			Expr: mapping.Sum(mapping.A(mapping.Left, j, ""), mapping.A(mapping.Right, j, "")),
		}
	}
	return &smj.Problem{Left: r, Right: s, Maps: mapping.MustSet(funcs...), Pref: preference.AllLowest(d)}
}

// netSink folds the emission stream into the net result set, failing on a
// retract of a pair that was never delivered or a duplicate delivery.
type netSink struct {
	t   *testing.T
	net map[[2]int64][]float64
}

func newNetSink(t *testing.T) *netSink {
	return &netSink{t: t, net: make(map[[2]int64][]float64)}
}

func (s *netSink) Result(r smj.Result) {
	k := [2]int64{r.LeftID, r.RightID}
	if _, dup := s.net[k]; dup {
		s.t.Fatalf("duplicate emission for pair %v", k)
	}
	out := make([]float64, len(r.Out))
	copy(out, r.Out)
	s.net[k] = out
}

func (s *netSink) Retract(leftID, rightID int64) {
	k := [2]int64{leftID, rightID}
	if _, ok := s.net[k]; !ok {
		s.t.Fatalf("retract of undelivered pair %v", k)
	}
	delete(s.net, k)
}

// assertNetMatchesOracle compares the sink's net set against a fresh oracle
// run over the current relations, exact on IDs and output bytes.
func assertNetMatchesOracle(t *testing.T, label string, sink *netSink, p *smj.Problem) {
	t.Helper()
	want, err := baseline.Oracle(p)
	if err != nil {
		t.Fatalf("%s: oracle: %v", label, err)
	}
	if len(want) != len(sink.net) {
		t.Fatalf("%s: net set has %d pairs, oracle has %d", label, len(sink.net), len(want))
	}
	for _, w := range want {
		got, ok := sink.net[[2]int64{w.LeftID, w.RightID}]
		if !ok {
			t.Fatalf("%s: oracle pair (%d,%d) missing from net set", label, w.LeftID, w.RightID)
		}
		for i := range w.Out {
			if math.Float64bits(got[i]) != math.Float64bits(w.Out[i]) {
				t.Fatalf("%s: pair (%d,%d) dim %d: got %v want %v",
					label, w.LeftID, w.RightID, i, got[i], w.Out[i])
			}
		}
	}
}

// cloneRelation deep-copies a relation so the mutable snapshot the oracle
// sees is independent of the tuples handed to the LiveSpace.
func cloneRelation(r *relation.Relation) *relation.Relation {
	out := &relation.Relation{Schema: r.Schema}
	out.Tuples = make([]relation.Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		vals := make([]float64, len(t.Vals))
		copy(vals, t.Vals)
		out.Tuples[i] = relation.Tuple{ID: t.ID, Vals: vals, JoinKey: t.JoinKey}
	}
	return out
}

func TestLiveSpaceDifferential(t *testing.T) {
	dists := []datagen.Distribution{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated}
	for _, dist := range dists {
		for _, d := range []int{2, 3, 4} {
			dist, d := dist, d
			t.Run(fmt.Sprintf("%v/d%d", dist, d), func(t *testing.T) {
				t.Parallel()
				testLiveDifferential(t, dist, d)
			})
		}
	}
}

func testLiveDifferential(t *testing.T, dist datagen.Distribution, d int) {
	p := liveProblem(t, 40, d, dist, 0.05, uint64(100*d)+uint64(dist))
	ls, err := NewLiveSpace(p)
	if err != nil {
		t.Fatal(err)
	}
	sink := newNetSink(t)
	ls.Snapshot(sink)

	// cur mirrors the base relations the LiveSpace holds; the oracle runs
	// on it after every batch.
	cur := [2]*relation.Relation{cloneRelation(p.Left), cloneRelation(p.Right)}
	rng := rand.New(rand.NewPCG(uint64(d)*7919, uint64(dist)+13))
	nextID := int64(1_000_000)

	randomJoinKey := func() int64 {
		// Mostly reuse a key that exists somewhere so inserts actually
		// join; sometimes a fresh key to exercise no-partner inserts.
		if rng.Float64() < 0.75 {
			side := cur[rng.IntN(2)]
			if len(side.Tuples) > 0 {
				return side.Tuples[rng.IntN(len(side.Tuples))].JoinKey
			}
		}
		return int64(rng.IntN(64))
	}
	arity := [2]int{len(p.Left.Schema.Attrs), len(p.Right.Schema.Attrs)}

	for batch := 0; batch < 25; batch++ {
		n := 1 + rng.IntN(4)
		for c := 0; c < n; c++ {
			side := mapping.Side(rng.IntN(2))
			del := rng.Float64() < 0.4 && len(cur[side].Tuples) > 1
			if del {
				i := rng.IntN(len(cur[side].Tuples))
				id := cur[side].Tuples[i].ID
				if err := ls.ApplyDelete(side, id, sink); err != nil {
					t.Fatalf("delete %d side %v: %v", id, side, err)
				}
				cur[side].Tuples = append(cur[side].Tuples[:i], cur[side].Tuples[i+1:]...)
				continue
			}
			vals := make([]float64, arity[side])
			for i := range vals {
				vals[i] = rng.Float64()
				if rng.Float64() < 0.15 {
					// Stray outside the initial grid bounds: the
					// clamped coordinates must stay sound.
					vals[i] = vals[i]*3 - 1
				}
			}
			tup := relation.Tuple{ID: nextID, Vals: vals, JoinKey: randomJoinKey()}
			nextID++
			if err := ls.ApplyInsert(side, tup, sink); err != nil {
				t.Fatalf("insert %d side %v: %v", tup.ID, side, err)
			}
			cur[side].Tuples = append(cur[side].Tuples, tup)
		}
		snap := &smj.Problem{Left: cur[0], Right: cur[1], Maps: p.Maps, Pref: p.Pref}
		assertNetMatchesOracle(t, fmt.Sprintf("batch %d", batch), sink, snap)
	}

	st := ls.Stats()
	if st.Inserts == 0 || st.Deletes == 0 {
		t.Fatalf("stream exercised nothing: %+v", st)
	}
}

// TestLiveSpaceHighestOrientation pins decanonicalization: a preference with
// a HIGHEST dimension must stream results in the original orientation,
// byte-equal to the oracle.
func TestLiveSpaceHighestOrientation(t *testing.T) {
	p := liveProblem(t, 30, 3, datagen.Independent, 0.05, 42)
	attrs := p.Pref.Attributes()
	attrs[1].Order = preference.Highest
	p.Pref = preference.NewPareto(attrs...)

	ls, err := NewLiveSpace(p)
	if err != nil {
		t.Fatal(err)
	}
	sink := newNetSink(t)
	ls.Snapshot(sink)
	cur := [2]*relation.Relation{cloneRelation(p.Left), cloneRelation(p.Right)}
	rng := rand.New(rand.NewPCG(7, 11))
	for i := int64(0); i < 20; i++ {
		side := mapping.Side(rng.IntN(2))
		if rng.Float64() < 0.4 && len(cur[side].Tuples) > 1 {
			j := rng.IntN(len(cur[side].Tuples))
			id := cur[side].Tuples[j].ID
			if err := ls.ApplyDelete(side, id, sink); err != nil {
				t.Fatal(err)
			}
			cur[side].Tuples = append(cur[side].Tuples[:j], cur[side].Tuples[j+1:]...)
		} else {
			vals := make([]float64, len(cur[side].Schema.Attrs))
			for k := range vals {
				vals[k] = rng.Float64()
			}
			tup := relation.Tuple{ID: 5000 + i, Vals: vals, JoinKey: int64(rng.IntN(8))}
			if err := ls.ApplyInsert(side, tup, sink); err != nil {
				t.Fatal(err)
			}
			cur[side].Tuples = append(cur[side].Tuples, tup)
		}
		snap := &smj.Problem{Left: cur[0], Right: cur[1], Maps: p.Maps, Pref: p.Pref}
		assertNetMatchesOracle(t, fmt.Sprintf("step %d", i), sink, snap)
	}
}

// TestLiveSpaceChangeValidation pins the error surface feed changes rely on.
func TestLiveSpaceChangeValidation(t *testing.T) {
	p := liveProblem(t, 10, 2, datagen.Independent, 0.1, 3)
	ls, err := NewLiveSpace(p)
	if err != nil {
		t.Fatal(err)
	}
	existing := p.Left.Tuples[0]
	if err := ls.ApplyInsert(mapping.Left, existing, nil); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if err := ls.ApplyDelete(mapping.Left, 999_999, nil); err == nil {
		t.Fatal("delete of missing id accepted")
	}
	bad := relation.Tuple{ID: 777, Vals: []float64{math.NaN(), 0}, JoinKey: 1}
	if err := ls.ApplyInsert(mapping.Left, bad, nil); err == nil {
		t.Fatal("NaN insert accepted")
	}
	if !ls.Has(mapping.Left, existing.ID) {
		t.Fatal("Has lost an existing tuple")
	}
	if ls.Has(mapping.Right, 999_999) {
		t.Fatal("Has invented a tuple")
	}
}
