package core

import (
	"sync"

	"progxe/internal/grid"
	"progxe/internal/par"
	"progxe/internal/preference"
	"progxe/internal/smj"
)

// Speculative cross-round pipelining.
//
// The partitioned-commit path (commit.go) serializes rounds on a drain
// barrier: round N+1's phase-1 precheck cannot read the space until round
// N's committer logs are fully applied. The speculator removes that
// dependency by giving phase 1 a state it can read at ANY time: an
// append-only view of every survivor vector ever routed, owned and written
// only by the sequencer during verdict routing.
//
// Soundness rests on one invariant of the dominance protocol: every vector
// ever inserted is, at all later times, dominated-or-equal by some
// live-or-emitted survivor (eviction replaces a tuple only with a strict
// dominator; a mark drop is covered by the strictly-below populating
// tuple; emitted buffers are immutable). Therefore:
//
//   - a REJECTION computed against the view at any version V is final: the
//     stale dominator implies, transitively, a live one at the candidate's
//     actual turn — exactly the argument that already makes precheck
//     rejections final within a round, extended across rounds;
//   - a SURVIVAL at version V needs only the per-round survivor deltas
//     admitted after V: a fresh dominator at the candidate's turn was
//     inserted at some version, ≤ V (the view scan finds it) or > V (the
//     delta revalidation finds it). A dominating vector is componentwise ≤
//     its victim, so its cell is too — no cell filtering is needed for
//     correctness, only as the usual comparability short-circuit.
//
// So (stale verdict ∧ delta revalidation) ≡ fresh pre-round verdict, and
// the round's commit loop is byte-identical to the non-speculative path:
// the sequencer still applies the current marked check first, the
// intra-round filter, and routes every op in canonical order.
//
// Scheduling: scans launch at the END of a round's routing pass (after the
// delta is pushed) against prefetched jobs further down the prefetch
// order, and the sequencer fences ALL outstanding scans before the next
// round's routing pass mutates anything a scan reads (the view, the cell
// index buckets, marked flags). In the window between launch and fence the
// sequencer only runs the determination cascade — which mutates finalized/
// emitted/active/watcher state, never buckets or marks — so scans overlap
// the cascade, the scheduler, the next prefetch take, and (the payoff) the
// drain the sequencer now SKIPS on rounds whose stale verdicts it can use.
//
// Ownership: the view, the delta ring, and every specResult state field
// are sequencer-owned; workers touch only a result's rejected slice, its
// comparison counter, and its WaitGroup, all handed over and back through
// channel/WaitGroup happens-before edges.

const (
	// specMaxDepth caps the speculation depth (outstanding stale scans).
	specMaxDepth = 8
	// specPendingMax bounds the consumed-but-unreleased region queue: a
	// drain is forced once this many candidate buffers are retained by
	// in-flight logs, bounding memory and sem-slot retention.
	specPendingMax = 4
	// specRingCap bounds the delta ring. A stale verdict older than the
	// ring's coverage is discarded (the fresh path runs instead), so the
	// cap trades re-scan risk for revalidation cost, never correctness.
	specRingCap = 64
	// specLookahead bounds how far down the prefetch order launch scans
	// for speculation-eligible jobs each round.
	specLookahead = 64
)

// specResult lifecycle (sequencer-owned).
const (
	specNone int8 = iota
	specLaunched
	specConsumed
)

// specEntry is one ever-routed survivor in the view: its vector (a
// speculator-arena copy, never recycled) and cached coordinate sum.
type specEntry struct {
	sum float64
	v   []float64
}

// specCellView is one cell's slice of the view: the entries routed to it,
// in routing order, plus their elementwise-min summary for O(d) refutation
// (the append-only analogue of cell.minV).
type specCellView struct {
	minV    []float64
	entries []specEntry
}

// specView is the append-only survivor history, indexed by cell.seq.
// Appended only during the sequencer's routing pass; read by scan tasks
// only between a round's launch and the next round's fence.
type specView struct {
	d     int
	cells []specCellView
	arena vecArena
}

// cellDominates reports whether any view entry of the cell dominates the
// candidate vector, mirroring cellDominates over live buffers (summary
// refutation, sum cutoff per entry — entries are in routing order, not SFS
// order, so the cutoff is per-entry rather than a prefix).
func (w *specView) cellDominates(seq int32, v []float64, sum float64, comps *int) bool {
	vc := &w.cells[seq]
	if len(vc.entries) == 0 {
		return false
	}
	for i, m := range vc.minV {
		if m > v[i] {
			return false
		}
	}
	for k := range vc.entries {
		e := &vc.entries[k]
		if e.sum >= sum {
			continue
		}
		*comps++
		if preference.DominatesMin(e.v, v) {
			return true
		}
	}
	return false
}

// deltaSurv is one survivor of a ring delta: the round-new vector (view
// arena backed), its sum, and its cell for the comparability filter.
type deltaSurv struct {
	c   *cell
	sum float64
	v   []float64
}

// specDelta is the survivor set of one version increment.
type specDelta struct {
	version int
	survs   []deltaSurv
}

// specResult is the outcome of one region's speculative scan.
type specResult struct {
	state    int8
	version  int // view version the scan ran against
	comps    int // worker-side comparisons, folded at take/drop
	rejected []bool
	wg       sync.WaitGroup
}

// specTask is one speculative scan, served by the precheck workers off the
// pool's spec channel at lower priority than round-critical barrier tasks.
type specTask struct {
	sp    *speculator
	cands []cand
	res   *specResult
}

// run computes the stale verdicts of one region's whole candidate stream.
// Marked cells are skipped exactly like precheckTask.run — the sequencer
// re-checks (and counts) marks at commit time, where marks added after the
// snapshot are also visible.
func (t *specTask) run(st *precheckState) {
	comps := 0
	for k := range t.cands {
		if par.YieldHook != nil && k%64 == 0 {
			par.YieldHook()
		}
		cd := &t.cands[k]
		c := t.sp.s.cellAt(cd.flat)
		if c == nil || c.marked {
			continue
		}
		if t.sp.scanDominated(c, cd.v, cd.sum, st, &comps) {
			t.res.rejected[k] = true
		}
	}
	t.res.comps = comps
	t.res.wg.Done()
}

// speculator coordinates cross-round speculative prechecks for one run.
// All fields are sequencer-owned; see the package comment above for the
// handoff discipline.
type speculator struct {
	depth int
	s     *space
	pool  *pool
	stats *smj.Stats

	view    specView
	version int // rounds with ≥1 survivor so far
	ring    []specDelta

	results  []specResult // by region id
	launched []int32      // region ids with launched, unconsumed scans
	cursor   int          // prefetch-order position for launch scans
	freeRej  [][]bool
}

// newSpeculator sizes the speculator for a run; depth is clamped to
// specMaxDepth.
func newSpeculator(depth int, s *space, p *pool, stats *smj.Stats) *speculator {
	if depth > specMaxDepth {
		depth = specMaxDepth
	}
	sp := &speculator{
		depth:   depth,
		s:       s,
		pool:    p,
		stats:   stats,
		results: make([]specResult, len(p.jobs)),
	}
	sp.view.d = s.d
	sp.view.arena.d = s.d
	sp.view.cells = make([]specCellView, len(s.cellList))
	return sp
}

// record copies a surviving candidate's vector into the view (under its
// cell, in routing order) and returns the copy. The caller aliases
// roundNew/roundSurv to it, so the round's delta outlives the candidate
// buffer regardless of when that buffer is recycled.
func (sp *speculator) record(c *cell, cd *cand) []float64 {
	cv := sp.view.arena.get()
	copy(cv, cd.v)
	vc := &sp.view.cells[c.seq]
	if len(vc.entries) == 0 {
		if vc.minV == nil {
			vc.minV = make([]float64, sp.view.d)
		}
		copy(vc.minV, cv)
	} else {
		for i, x := range cv {
			if x < vc.minV[i] {
				vc.minV[i] = x
			}
		}
	}
	vc.entries = append(vc.entries, specEntry{sum: cd.sum, v: cv})
	return cv
}

// pushDelta closes the current round's delta: if the round routed any
// survivor the version advances and the survivors join the ring.
func (sp *speculator) pushDelta(survs []roundSurv) {
	if len(survs) == 0 {
		return
	}
	sp.version++
	ds := make([]deltaSurv, len(survs))
	for i := range survs {
		u := &survs[i]
		ds[i] = deltaSurv{c: u.c, sum: u.sum, v: u.v}
	}
	sp.ring = append(sp.ring, specDelta{version: sp.version, survs: ds})
	if len(sp.ring) > specRingCap {
		sp.ring[0] = specDelta{}
		sp.ring = sp.ring[1:]
	}
}

// launch starts speculative scans for prefetched jobs down the prefetch
// order, up to the configured depth. Called at the end of a round's routing
// pass, so scans overlap the determination cascade, the scheduler, and —
// when their verdicts get used — the drain the next round skips.
func (sp *speculator) launch() {
	p := sp.pool
	for sp.cursor < len(p.order) {
		id := p.order[sp.cursor]
		j := &p.jobs[id]
		if j.state.Load() == jobConsumed || j.reg.state != regionLive {
			sp.cursor++
			continue
		}
		break
	}
	lim := sp.cursor + specLookahead
	if lim > len(p.order) {
		lim = len(p.order)
	}
	for i := sp.cursor; i < lim && len(sp.launched) < sp.depth; i++ {
		id := p.order[i]
		j := &p.jobs[id]
		sr := &sp.results[id]
		if sr.state != specNone || j.reg.state != regionLive {
			continue
		}
		if j.state.Load() != jobDone || j.n < precheckMinCands {
			continue
		}
		sr.state = specLaunched
		sr.version = sp.version
		sr.comps = 0
		sr.rejected = sp.getRejected(j.n)
		sr.wg.Add(1)
		sp.launched = append(sp.launched, id)
		sp.stats.SpecRounds++
		p.specCh <- &specTask{sp: sp, cands: j.buf.cands[:j.n], res: sr}
	}
}

// take claims the region's speculative result at its turn, waiting out a
// scan still in flight; nil when the region was never speculated.
func (sp *speculator) take(reg *region) *specResult {
	sr := &sp.results[reg.id]
	if sr.state != specLaunched {
		return nil
	}
	sr.wg.Wait()
	sp.stats.DomComparisons += sr.comps
	sp.unlaunch(int32(reg.id))
	return sr
}

// usable reports whether the delta ring still covers every version the
// stale verdicts must be revalidated against (sr.version+1 .. current).
func (sp *speculator) usable(sr *specResult) bool {
	if sr.version == sp.version {
		return true
	}
	return len(sp.ring) > 0 && sp.ring[0].version <= sr.version+1
}

// fence blocks until every outstanding scan completes. The sequencer calls
// it before a round's first mutation of scan-read state; results stay
// claimable by later takes.
func (sp *speculator) fence() {
	for _, id := range sp.launched {
		sp.results[id].wg.Wait()
	}
}

// release recycles a consumed result's verdict slice.
func (sp *speculator) release(sr *specResult) {
	sr.state = specConsumed
	if sr.rejected != nil {
		sp.freeRej = append(sp.freeRej, sr.rejected)
		sr.rejected = nil
	}
}

// drop retires a discarded region's speculation, waiting out an in-flight
// scan so the candidate buffer it reads can be recycled by pool.drop
// (which the engine calls right after).
func (sp *speculator) drop(reg *region) {
	sr := &sp.results[reg.id]
	if sr.state != specLaunched {
		sr.state = specConsumed
		return
	}
	sr.wg.Wait()
	sp.stats.DomComparisons += sr.comps
	sp.unlaunch(int32(reg.id))
	sp.release(sr)
}

func (sp *speculator) unlaunch(id int32) {
	for i, x := range sp.launched {
		if x == id {
			sp.launched[i] = sp.launched[len(sp.launched)-1]
			sp.launched = sp.launched[:len(sp.launched)-1]
			return
		}
	}
}

func (sp *speculator) getRejected(n int) []bool {
	if k := len(sp.freeRej); k > 0 {
		r := sp.freeRej[k-1]
		sp.freeRej = sp.freeRej[:k-1]
		if cap(r) >= n {
			r = r[:n]
			clear(r)
			return r
		}
	}
	return make([]bool, n)
}

// scanDominated is the view-backed twin of space.precheckDominated:
// identical bucket-prefix enumeration and goroutine-local visit stamps,
// but cells refute and scan through their view slices instead of their
// live buffers. Every view-populated cell is in the buckets (its first
// routed insert populated it), so the walk covers the full dominator set;
// the candidate's own cell is checked first, populated or not.
func (sp *speculator) scanDominated(c *cell, v []float64, sum float64, st *precheckState, comps *int) bool {
	s := sp.s
	view := &sp.view
	epoch := st.stamp(c)
	if view.cellDominates(c.seq, v, sum, comps) {
		return true
	}
	packed := s.idx.packed
	for i := 0; i < s.d; i++ {
		b := s.idx.buckets[i][c.coords[i]]
		for j := bucketSplit(b, c.flat) - 1; j >= 0; j-- {
			e := &b[j]
			if packed {
				if !keyLeq(e.key, c.key) {
					continue
				}
			} else if !grid.LeqAll(e.c.coords, c.coords) {
				continue
			}
			p := e.c
			if st.visited[p.seq] == epoch || len(view.cells[p.seq].entries) == 0 {
				continue
			}
			st.visited[p.seq] = epoch
			if view.cellDominates(p.seq, v, sum, comps) {
				return true
			}
		}
	}
	return false
}

// deltaDominated revalidates one speculative survivor against the deltas
// admitted after its snapshot version: any dominator inserted since then
// is in exactly one ring entry. The sum and cell-comparability filters are
// the usual short-circuits (a dominator's cell is automatically
// componentwise ≤ the victim's), affecting only comparison counts.
func (sp *speculator) deltaDominated(c *cell, cd *cand, version int, comps *int) bool {
	s := sp.s
	packed := s.idx.packed
	for i := len(sp.ring) - 1; i >= 0; i-- {
		d := &sp.ring[i]
		if d.version <= version {
			break // ring versions ascend; everything earlier is in the view
		}
		for j := range d.survs {
			u := &d.survs[j]
			if u.sum >= cd.sum {
				continue
			}
			if packed {
				if !keyLeq(u.c.key, c.key) {
					continue
				}
			} else if !grid.LeqAll(u.c.coords, c.coords) {
				continue
			}
			*comps++
			if preference.DominatesMin(u.v, cd.v) {
				return true
			}
		}
	}
	return false
}
