// Package core implements the ProgXe progressive query evaluation framework
// of the paper (§III–§V): output-space look-ahead, ordered tuple-level
// processing, and progressive result determination, plus the ProgXe+
// push-through variant and the non-ordered ablations used in §VI-B.
package core

import (
	"fmt"
	"math"
	"sort"

	"progxe/internal/grid"
	"progxe/internal/mapping"
	"progxe/internal/relation"
	"progxe/internal/sig"
	"progxe/internal/smj"
)

// inputPartition is one grid partition of an input source (IRa / ITb in the
// paper's notation): the member tuples, their tight bounding box over the
// full attribute vector, and the join-key signature maintained for the
// partition (§III-A).
type inputPartition struct {
	id     int
	tuples []relation.Tuple
	rect   grid.Rect
	sig    *sig.Exact
}

// autoCells picks the per-dimension input grid resolution when the caller
// does not fix one. The framework's region machinery costs O(n²) in the
// number of regions n ≈ (g^d)², so g is chosen to keep the total partition
// count per source bounded (≈ 1 partition per 48 tuples, at most 64 per
// source), honouring the paper's premise that n << N (§IV time complexity).
func autoCells(n, usedDims int) int {
	target := float64(n) / 48
	if target < 1 {
		target = 1
	}
	if target > 36 {
		target = 36
	}
	g := int(math.Floor(math.Pow(target, 1/float64(usedDims))))
	if g < 1 {
		g = 1
	}
	if g > 8 {
		g = 8
	}
	return g
}

// partitionInput splits a relation into grid partitions over the attributes
// used by the mapping functions on the given side, with cellsPerDim cells in
// each used dimension (0 selects autoCells). Partitions are returned in
// ascending grid-cell order; each carries a tight bounding box (over all
// attributes) and an exact join-key signature.
func partitionInput(rel *relation.Relation, maps *mapping.Set, side mapping.Side, cellsPerDim int) ([]*inputPartition, error) {
	used := maps.UsedAttrs(side)
	if len(rel.Tuples) == 0 {
		return nil, nil
	}
	if cellsPerDim <= 0 {
		cellsPerDim = autoCells(len(rel.Tuples), max(1, len(used)))
	}
	if len(used) == 0 {
		// The side contributes no mapped attributes: a single partition.
		p := newPartition(0, rel.Schema.Arity())
		for _, t := range rel.Tuples {
			p.add(t)
		}
		return []*inputPartition{p}, nil
	}

	// Project the used attributes and bound them. One backing block for all
	// projections keeps this O(1) allocations instead of O(N).
	pts := make([][]float64, len(rel.Tuples))
	block := make([]float64, len(rel.Tuples)*len(used))
	for i, t := range rel.Tuples {
		v := block[i*len(used) : (i+1)*len(used) : (i+1)*len(used)]
		for j, a := range used {
			v[j] = t.Vals[a]
		}
		pts[i] = v
	}
	bounds, err := grid.BoundsOf(pts)
	if err != nil {
		return nil, fmt.Errorf("core: bounding %s input: %w", side, err)
	}
	g, err := grid.Uniform(bounds, cellsPerDim)
	if err != nil {
		return nil, fmt.Errorf("core: partitioning %s input: %w", side, err)
	}

	byCell := make(map[int]*inputPartition)
	for i, t := range rel.Tuples {
		flat := g.CellOf(pts[i])
		p := byCell[flat]
		if p == nil {
			p = newPartition(flat, rel.Schema.Arity())
			byCell[flat] = p
		}
		p.add(t)
	}
	out := make([]*inputPartition, 0, len(byCell))
	for _, p := range byCell {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	// Re-number sequentially for compact indexing.
	for i, p := range out {
		p.id = i
	}
	return out, nil
}

// newPartition returns an empty partition whose bounding box will track the
// full arity-dimensional attribute vectors of added tuples.
func newPartition(id, arity int) *inputPartition {
	return &inputPartition{
		id:  id,
		sig: sig.NewExact(),
		rect: grid.Rect{
			Lower: make([]float64, arity),
			Upper: make([]float64, arity),
		},
	}
}

// add appends a tuple, growing the bounding box and the signature.
func (p *inputPartition) add(t relation.Tuple) {
	if len(p.tuples) == 0 {
		copy(p.rect.Lower, t.Vals)
		copy(p.rect.Upper, t.Vals)
	} else {
		for i, v := range t.Vals {
			if v < p.rect.Lower[i] {
				p.rect.Lower[i] = v
			}
			if v > p.rect.Upper[i] {
				p.rect.Upper[i] = v
			}
		}
	}
	p.tuples = append(p.tuples, t)
	p.sig.Add(t.JoinKey)
}

// len returns the partition cardinality (n_a^R in the cost model).
func (p *inputPartition) len() int { return len(p.tuples) }

// checkProblem validates and canonicalizes the problem for the ProgXe
// engines and reports the output dimensionality.
func checkProblem(p *smj.Problem) (*smj.Problem, int, error) {
	cp, err := p.Canonicalized()
	if err != nil {
		return nil, 0, err
	}
	return cp, cp.Maps.Dims(), nil
}
