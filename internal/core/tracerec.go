package core

import (
	"fmt"
	"time"

	"progxe/internal/obs"
)

// timedEvent pairs an engine trace event with its out-of-band receipt time.
// The Event itself carries no timing — the differential harness compares
// Event streams bit for bit across worker counts, so timestamps must live
// beside the stream, never inside it.
type timedEvent struct {
	ev    Event
	nanos int64
}

// TraceRecorder timestamps the engine's Event stream on receipt, against
// its own monotonic epoch, and converts the recording into trace-export
// spans: each region's chosen→processed (or →discarded) window becomes one
// span on the "regions" track, each cell emission an instant on the
// "emissions" track.
//
// Observe is intended as (or inside) Options.Trace; events are delivered
// synchronously from the sequencer goroutine, so the recorder needs no
// locking and adds only a clock read and an append per event. Align the
// epoch with the run's Profiler (Profiler.Epoch) to land phase spans and
// region spans on one timeline.
type TraceRecorder struct {
	epoch  time.Time
	events []timedEvent
}

// NewTraceRecorder returns a recorder timestamping against epoch. A zero
// epoch starts the clock now.
func NewTraceRecorder(epoch time.Time) *TraceRecorder {
	if epoch.IsZero() {
		epoch = time.Now()
	}
	return &TraceRecorder{epoch: epoch}
}

// Observe records one event at the current clock. Usable directly as
// Options.Trace, or called from a wrapping trace func when the caller
// multiplexes the stream.
func (r *TraceRecorder) Observe(ev Event) {
	r.events = append(r.events, timedEvent{ev: ev, nanos: int64(time.Since(r.epoch))})
}

// Len reports the number of recorded events.
func (r *TraceRecorder) Len() int { return len(r.events) }

// Spans reduces the recording to trace-export form. Region processing
// windows open at region-chosen and close at the matching region-processed;
// regions discarded without processing render as instants (their
// elimination has no duration of its own), as do cell emissions and the
// final scheduler counters.
func (r *TraceRecorder) Spans() ([]obs.Span, []obs.Instant) {
	var spans []obs.Span
	var instants []obs.Instant
	open := map[int]timedEvent{} // region id → chosen event
	for _, te := range r.events {
		switch te.ev.Kind {
		case EventRegionChosen:
			open[te.ev.Region] = te
		case EventRegionProcessed:
			start := te.nanos
			args := map[string]any{
				"joins":     te.ev.JoinResults,
				"survivors": te.ev.Survivors,
			}
			if c, ok := open[te.ev.Region]; ok {
				start = c.nanos
				args["rank"] = c.ev.Rank
				delete(open, te.ev.Region)
			}
			spans = append(spans, obs.Span{
				Track: "regions",
				Name:  fmt.Sprintf("region %d", te.ev.Region),
				Start: time.Duration(start),
				Dur:   time.Duration(te.nanos - start),
				Args:  args,
			})
		case EventRegionDiscarded:
			instants = append(instants, obs.Instant{
				Track: "regions",
				Name:  fmt.Sprintf("discard region %d", te.ev.Region),
				Ts:    time.Duration(te.nanos),
			})
		case EventCellEmitted:
			instants = append(instants, obs.Instant{
				Track: "emissions",
				Name:  fmt.Sprintf("cell %d", te.ev.Cell),
				Ts:    time.Duration(te.nanos),
				Args:  map[string]any{"results": te.ev.Survivors},
			})
		case EventSchedulerStats:
			instants = append(instants, obs.Instant{
				Track: "sequencer",
				Name:  "scheduler-stats",
				Ts:    time.Duration(te.nanos),
				Args: map[string]any{
					"edges":          te.ev.Edges,
					"rankRefreshes":  te.ev.RankRefreshes,
					"fenwickUpdates": te.ev.FenwickUpdates,
				},
			})
		}
	}
	return spans, instants
}
