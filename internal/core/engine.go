package core

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"

	"progxe/internal/core/sched"
	"progxe/internal/grid"
	"progxe/internal/join"
	"progxe/internal/mapping"
	"progxe/internal/obs"
	"progxe/internal/preference"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// Ordering selects the policy that picks the next region for tuple-level
// processing.
type Ordering int8

const (
	// OrderProgressive is ProgOrder (Algorithm 1): EL-Graph roots ranked by
	// Benefit/Cost in an inverted priority queue.
	OrderProgressive Ordering = iota
	// OrderRandom picks live regions uniformly at random — the paper's
	// "ProgXe (No-Order)" configuration (§VI-B).
	OrderRandom
	// OrderArrival processes regions in construction order (ablation).
	OrderArrival
	// OrderCardinality ranks EL-Graph roots by estimated cardinality/cost,
	// ignoring the progressiveness (ProgCount) term (ablation isolating the
	// benefit model).
	OrderCardinality
)

// String names the ordering policy.
func (o Ordering) String() string {
	switch o {
	case OrderProgressive:
		return "progressive"
	case OrderRandom:
		return "random"
	case OrderArrival:
		return "arrival"
	case OrderCardinality:
		return "cardinality"
	default:
		return fmt.Sprintf("Ordering(%d)", int8(o))
	}
}

// RankerKind selects the benefit model behind the progressive scheduler's
// Benefit/Cost ranks — the sched.Ranker implementation the engine hands to
// sched.NewProgressive. The scheduler layer is agnostic to the choice; only
// the rank values (and therefore the schedule) change.
type RankerKind int8

const (
	// RankBenefitCost is Equation 8 as written: Benefit = ProgCount-weighted
	// cardinality, Cost = the Equation 7 work model. ProgCount is exact but
	// is the expensive term of every lazy rank refresh.
	RankBenefitCost RankerKind = iota
	// RankCardinality drops the progressiveness term: Benefit is the
	// estimated skyline cardinality of the region alone, over the same
	// Equation 7 cost. Each refresh is O(1) — no ProgCount, no orthant
	// queries — trading schedule quality for refresh cost on workloads whose
	// rank order is cardinality-driven anyway.
	RankCardinality
)

// String names the ranker the way the -ranker flag and the query service
// spell it.
func (k RankerKind) String() string {
	switch k {
	case RankCardinality:
		return "cardinality"
	case RankBenefitCost:
		return "benefit-cost"
	default:
		return fmt.Sprintf("RankerKind(%d)", int8(k))
	}
}

// ParseRanker resolves a ranker name ("benefit-cost", "cardinality"; empty
// selects the default) to its kind.
func ParseRanker(s string) (RankerKind, error) {
	switch s {
	case "", "benefit-cost":
		return RankBenefitCost, nil
	case "cardinality":
		return RankCardinality, nil
	default:
		return 0, fmt.Errorf("unknown ranker %q (want benefit-cost or cardinality)", s)
	}
}

// Options configures the ProgXe engine.
type Options struct {
	// InputCells is the grid resolution g per used dimension on each input
	// source. 0 (the default) sizes the grid automatically so that the
	// region count stays small relative to the input cardinality.
	InputCells int
	// OutputCells is the output-space grid resolution k per dimension
	// (partition size δ in §VI-B). 0 (the default) picks k so the total
	// cell count stays near 4096 regardless of dimensionality, mirroring
	// the paper's observation that a good δ depends only on d.
	OutputCells int
	// Ordering is the region-ordering policy. Default OrderProgressive.
	Ordering Ordering
	// Ranker selects the benefit model driving OrderProgressive's ranks
	// (ignored by the other orderings). Default RankBenefitCost.
	Ranker RankerKind
	// PushThrough enables skyline partial push-through on each source
	// before partitioning — the ProgXe+ variants.
	PushThrough bool
	// Seed drives the random ordering policy.
	Seed uint64
	// Partitioning selects the input space-partitioning structure
	// (uniform grid by default; kd median splits adapt to skew).
	Partitioning Partitioning
	// Workers enables parallel region processing. 0 (the default) runs the
	// fully serial engine; n ≥ 1 runs n candidate-prefetch workers plus n
	// phase-1 precheck workers alongside the sequencer; negative picks
	// GOMAXPROCS. Any value yields a result stream (emissions, trace
	// events, counters other than DomComparisons) byte-identical to the
	// serial engine — parallelism changes wall-clock, never output. A
	// smj.WithParallelism request on the RunContext context overrides this
	// per run.
	Workers int
	// Committers enables the partitioned commit stage on top of parallel
	// region processing: n ≥ 1 runs n committer goroutines, each owning a
	// static partition of the output cell grid and applying the sequencer's
	// per-cell operation logs (phase-2 evictions, buffer insertion, marks,
	// emission snapshots), while the sequencer routes verdicts and drains a
	// bounded completion queue. 0 (the default) keeps the commit protocol
	// on the sequencer; negative picks GOMAXPROCS. Ignored unless Workers
	// resolves to ≥ 1. Like Workers, any value yields a byte-identical
	// result stream. A smj.WithCommitters request on the RunContext context
	// overrides this per run.
	Committers int
	// SpeculateRounds enables speculative cross-round pipelining on top of
	// the partitioned commit stage: up to n upcoming rounds may run their
	// phase-1 dominance scans against a stale append-only survivor view
	// while the current round's committer logs drain; stale rejections are
	// final by dominance transitivity, stale survivors are revalidated
	// against only the per-round survivor deltas, and rounds whose stale
	// verdicts get used skip the drain barrier entirely. 0 (the default)
	// disables speculation; negative picks the default depth of 2; values
	// are clamped to 8. Ignored unless Workers resolves to ≥ 2 (scans share
	// the precheck lanes, so a spare lane must exist for the overlap to
	// ever pay off) and Committers to ≥ 1. Like Workers, any value yields
	// a byte-identical result
	// stream (the scheduling-dependent SpecRounds/SpecHits/SpecRevalChecks
	// counters excepted, like DomComparisons). A smj.WithSpeculate request
	// on the RunContext context overrides this per run.
	SpeculateRounds int
	// Trace, when non-nil, receives an Event for every region selection,
	// region completion, region discard, and cell emission. Intended for
	// debugging, demos and tests; adds no cost when nil.
	Trace func(Event)
	// Profiler, when non-nil, receives monotonic-clock phase attribution
	// for the run: setup phases and the sequencer's per-region stages on
	// the sequencer lane, prefetch/precheck work on worker lanes. Purely
	// observational — never consulted for decisions — so enabling it
	// cannot change the result stream. nil costs nothing.
	Profiler *obs.Profiler
}

func (o Options) withDefaults() Options {
	if o.InputCells < 0 {
		o.InputCells = 0 // auto
	}
	if o.OutputCells < 0 {
		o.OutputCells = 0 // auto
	}
	return o
}

// autoOutputCells returns the per-dimension output grid resolution targeting
// ≈4096 total cells: 64 for d ≤ 2, 16 for d = 3, 8 for d = 4, 5 for d = 5…
func autoOutputCells(d int) int {
	k := int(math.Floor(math.Pow(4096, 1/float64(d)) + 1e-9))
	if k < 2 {
		k = 2
	}
	if k > 64 {
		k = 64
	}
	return k
}

// Engine is the ProgXe progressive SkyMapJoin engine. The zero value is not
// usable; construct with New.
type Engine struct {
	opts Options
}

// New returns a ProgXe engine with the given options.
func New(opts Options) *Engine {
	return &Engine{opts: opts.withDefaults()}
}

// Name identifies the configured variant using the paper's naming.
func (e *Engine) Name() string {
	name := "ProgXe"
	if e.opts.PushThrough {
		name += "+"
	}
	if e.opts.Ordering != OrderProgressive {
		name += " (No-Order)"
	}
	if e.opts.Ordering == OrderProgressive && e.opts.Ranker == RankCardinality {
		name += " (card-ranker)"
	}
	return name
}

var _ smj.Engine = (*Engine)(nil)

// partition splits one input per the configured partitioning method. For
// kd splits, a positive InputCells g is interpreted as a total budget of
// g^d partitions, matching the grid's resolution semantics.
func (e *Engine) partition(rel *relation.Relation, maps *mapping.Set, side mapping.Side) ([]*inputPartition, error) {
	if e.opts.Partitioning == PartitionKD {
		maxParts := 0
		if g := e.opts.InputCells; g > 0 {
			maxParts = 1
			for range maps.UsedAttrs(side) {
				maxParts *= g
			}
		}
		return partitionInputKD(rel, maps, side, maxParts)
	}
	return partitionInput(rel, maps, side, e.opts.InputCells)
}

// Run evaluates the problem, streaming each result to sink as soon as it is
// provably part of the final skyline. The pipeline follows Fig. 2: output
// space look-ahead, progressive-driven ordering, tuple-level processing, and
// progressive result determination, repeated until every region is processed
// or eliminated.
func (e *Engine) Run(p *smj.Problem, sink smj.Sink) (smj.Stats, error) {
	return e.RunContext(context.Background(), p, sink)
}

var _ smj.ContextEngine = (*Engine)(nil)

// RunContext is Run with cooperative cancellation: the framework loop polls
// ctx between region selections and inside tuple-level processing, aborting
// with ctx.Err() and the partial stats once the context is done. Results
// emitted before the abort are final skyline members; the stream is merely
// truncated.
func (e *Engine) RunContext(ctx context.Context, p *smj.Problem, sink smj.Sink) (smj.Stats, error) {
	var stats smj.Stats
	cancel := smj.NewCanceler(ctx)
	workers, committers, speculate := e.resolveParallelism(ctx)
	pl, err := e.prepare(cancel, p, workers, &stats)
	if err != nil {
		return stats, err
	}
	return e.runPlan(ctx, cancel, pl, sink, workers, committers, speculate)
}

// resolveParallelism resolves the run's worker, committer and speculation
// counts from the engine options and their per-run context overrides.
func (e *Engine) resolveParallelism(ctx context.Context) (workers, committers, speculate int) {
	workers = e.opts.Workers
	if n, ok := smj.ParallelismFrom(ctx); ok {
		workers = n
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	committers = e.opts.Committers
	if n, ok := smj.CommittersFrom(ctx); ok {
		committers = n
	}
	if committers < 0 {
		committers = runtime.GOMAXPROCS(0)
	}
	speculate = e.opts.SpeculateRounds
	if n, ok := smj.SpeculateFrom(ctx); ok {
		speculate = n
	}
	if speculate < 0 {
		speculate = 2
	}
	if speculate > 0 && workers < 2 {
		// Speculative scans share the precheck lanes. With a single worker
		// every scan queues behind that worker's prefetch jobs, so the
		// sequencer's per-round fence stalls for the length of whatever job
		// is in flight — a pathological slowdown instead of an overlap.
		// Speculation needs a spare lane to ever pay off.
		speculate = 0
	}
	return workers, committers, speculate
}

// runPlan is the tuple-processing half of RunContext: it materializes fresh
// per-run regions from the plan, lays the output space, and drives the
// framework loop. All observable behavior — emissions, trace events,
// counters — is identical whether the plan was prepared moments ago by
// RunContext or served from a cache.
func (e *Engine) runPlan(ctx context.Context, cancel *smj.Canceler, pl *Prepared, sink smj.Sink, workers, committers, speculate int) (smj.Stats, error) {
	var stats smj.Stats
	prof := e.opts.Profiler
	cp, d := pl.problem, pl.d
	regions := pl.materialize()
	stats.PushPruned = pl.pushPruned
	stats.Regions = len(regions) + pl.pruned
	stats.RegionsPruned = pl.pruned
	outCells := e.opts.OutputCells
	if outCells == 0 {
		outCells = autoOutputCells(d)
	}
	tSpace := prof.Clock()
	s, err := buildSpace(regions, d, outCells, &stats, workers)
	if err != nil {
		return stats, err
	}
	prof.EndSequencer(obs.PhaseSpaceBuild, tSpace)
	s.prof = prof
	// Emission without per-result cloning: canonical preferences hand the
	// arena-backed survivor vector to the sink directly (survivors of
	// emitted cells are immutable and never recycled); non-canonical ones
	// decanonicalize into a fresh arena vector instead of mutating it.
	var neg []int
	for j, a := range pl.pref.Attributes() {
		if a.Order == preference.Highest {
			neg = append(neg, j)
		}
	}
	s.emit = func(t outTuple) {
		out := t.v
		if len(neg) > 0 {
			out = s.arena.get()
			copy(out, t.v)
			for _, j := range neg {
				out[j] = -out[j]
			}
		}
		sink.Emit(smj.Result{LeftID: t.leftID, RightID: t.rightID, Out: out})
	}

	run := &runState{
		engine:   e,
		problem:  cp,
		space:    s,
		regions:  regions,
		stats:    &stats,
		d:        d,
		outCells: outCells,
		cancel:   cancel,
	}
	if workers > 0 && len(regions) > 0 {
		slack := 0
		if committers > 0 && speculate > 0 {
			slack = specPendingMax
		}
		run.pool = newPool(ctx, workers, s, regions, len(pl.rparts), cp.Maps, slack)
		run.pool.prof = prof
		defer run.pool.stop()
		if committers > 0 {
			prof.SetCommitterLaneBase(2*workers + 1)
			run.cpool = newCommitPool(committers, d, prof, 2*workers+1)
			s.cpool = run.cpool
			run.cpool.start()
			defer run.cpool.shutdown()
			if speculate > 0 {
				run.spec = newSpeculator(speculate, s, run.pool, &stats)
			}
		}
	}
	if e.opts.Trace != nil {
		s.traceEmit = func(c *cell, n int) {
			run.emitTrace(Event{Kind: EventCellEmitted, Cell: c.flat, Survivors: n})
		}
	}
	err = run.loop()
	if run.cpool != nil {
		// Shut the committers down before stats are read (and before the
		// completeness check below reads buffer state): the explicit call
		// folds their dominance-comparison counters deterministically; the
		// deferred call above then no-ops.
		stats.DomComparisons += run.cpool.shutdown()
	}
	if err != nil {
		return stats, err
	}

	// Completeness check: with all regions resolved, every unmarked
	// populated cell must have been emitted by the finalize cascade.
	if leftovers := s.unemitted(); len(leftovers) > 0 {
		return stats, fmt.Errorf("core: %d output cells retained unemitted survivors (invariant violation)", len(leftovers))
	}
	return stats, nil
}

// runState carries the per-run mutable state of the framework loop.
type runState struct {
	engine   *Engine
	problem  *smj.Problem
	space    *space
	regions  []*region
	stats    *smj.Stats
	d        int
	outCells int

	sched  sched.Scheduler
	cancel *smj.Canceler
	pool   *pool       // non-nil when parallel region processing is enabled
	cpool  *commitPool // non-nil when partitioned committers are enabled
	spec   *speculator // non-nil when cross-round speculation is enabled

	mapBuf   []float64
	roundNew [][]float64 // surviving vectors inserted by the current region
	// roundSurv mirrors roundNew with the survivors' cells for the
	// partitioned-commit path's intra-round dominance filter (and, with
	// speculation on, the per-round delta pushed to the revalidation ring).
	roundSurv []roundSurv
	// pendingFinish queues committed regions whose candidate buffers are
	// still referenced by in-flight operation logs; they are released at
	// the next drain barrier. Without speculation at most one region is
	// pending (every round drains); with drains skipped the queue grows to
	// specPendingMax before a drain is forced.
	pendingFinish []*region
}

// roundSurv is one current-round survivor: its vector (candidate-stream
// backed), coordinate sum, and target cell.
type roundSurv struct {
	v   []float64
	sum float64
	c   *cell
}

// loop repeats pick → tuple-level processing → progressive determination
// until no live regions remain (Fig. 2's cycle). Region selection is
// delegated to the scheduler layer; the engine supplies the benefit/cost
// ranker and reports completions and discards back.
func (r *runState) loop() error {
	if len(r.regions) == 0 {
		return nil
	}
	r.mapBuf = make([]float64, r.d)
	opts := r.engine.opts
	prof := opts.Profiler

	tSched := prof.Clock()
	switch opts.Ordering {
	case OrderRandom:
		order := make([]int, len(r.regions))
		for i := range order {
			order[i] = i
		}
		rng := rand.New(rand.NewPCG(opts.Seed, opts.Seed^0x9e3779b97f4a7c15))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		r.sched = sched.NewFixed(len(r.regions), order)
	case OrderArrival:
		r.sched = sched.NewFixed(len(r.regions), nil)
	default:
		r.space.fenEligible = r.space.g.NumCells() <= fenCellLimit
		dims := make([]int, r.d)
		for i := range dims {
			dims[i] = r.space.g.CellsPerDim(i)
		}
		// The ranker handed to the scheduler is the engine's only influence
		// on ProgOrder's decisions — swapping it proves the layer pluggable.
		ranker := sched.Ranker(r.rankRegion)
		if opts.Ranker == RankCardinality && opts.Ordering == OrderProgressive {
			ranker = r.rankCardinality
		}
		r.sched = sched.NewProgressive(schedBoxes(r.regions), dims, ranker, r.workers())
	}
	// Construction-time counters land in the stats immediately, and the
	// running refresh tally is folded in on every exit path, so canceled
	// runs report the scheduler work they actually did.
	c := r.sched.Counters()
	r.stats.SchedEdges = c.Edges
	r.stats.FenwickUpdates += c.FenwickUpdates
	defer func() {
		r.stats.SchedRankRefreshes = r.sched.Counters().RankRefreshes
	}()
	if r.pool != nil {
		r.pool.start(r.sched.PrefetchOrder(), len(r.space.cellList))
	}
	prof.EndSequencer(obs.PhaseSched, tSched)

	for {
		if err := r.cancel.Now(); err != nil {
			return err
		}
		tNext := prof.Clock()
		id, rank, ok := r.sched.Next()
		prof.EndSequencer(obs.PhaseSched, tNext)
		if !ok {
			break
		}
		reg := r.regions[id]
		r.emitTrace(Event{Kind: EventRegionChosen, Region: reg.id, Rank: rank})
		if err := r.process(reg); err != nil {
			return err
		}
	}
	c = r.sched.Counters() // the deferred fold persists these into stats
	r.emitTrace(Event{
		Kind:           EventSchedulerStats,
		Edges:          c.Edges,
		RankRefreshes:  c.RankRefreshes,
		FenwickUpdates: r.stats.FenwickUpdates,
	})
	return nil
}

// workers reports the pool's worker count (0 when serial).
func (r *runState) workers() int {
	if r.pool == nil {
		return 0
	}
	return r.pool.workers
}

// rankRegion is the scheduler's Ranker: procedure analyse-Cost-vs-Benefit
// of Algorithm 1, invoked lazily at queue-pop time.
func (r *runState) rankRegion(id int) float64 {
	reg := r.regions[id]
	analyse(r.space, reg, r.d, r.outCells)
	if r.engine.opts.Ordering == OrderCardinality {
		// Replace the benefit with the raw cardinality estimate, keeping
		// the cost denominator (ablation).
		reg.benefit = float64(reg.joinCard)
		reg.rank = reg.benefit / reg.cost
	}
	return reg.rank
}

// rankCardinality is the cardinality-aware sched.Ranker: Equation 8 with
// the progressiveness term dropped, so a refresh costs O(1) — no ProgCount
// scan, no orthant queries (see RankCardinality).
func (r *runState) rankCardinality(id int) float64 {
	reg := r.regions[id]
	analyseCardinality(reg, r.d, r.outCells)
	return reg.rank
}

// process runs tuple-level processing (§III-B) for one region, then the
// progressive determination cascade and the Algorithm 1 graph updates. A
// non-nil error means the run was canceled mid-region and must abort.
func (r *runState) process(reg *region) error {
	reg.state = regionProcessed
	r.roundNew = r.roundNew[:0]
	r.roundSurv = r.roundSurv[:0]
	joinedBefore := r.stats.JoinResults

	switch {
	case r.cpool != nil:
		r.processCommitted(reg)
	case r.pool != nil:
		r.processPooled(reg)
	default:
		r.processSerial(reg)
	}

	if err := r.cancel.Now(); err != nil {
		return err
	}

	r.emitTrace(Event{
		Kind:        EventRegionProcessed,
		Region:      reg.id,
		JoinResults: r.stats.JoinResults - joinedBefore,
		Survivors:   len(r.roundNew),
	})

	// Progressive result determination (Algorithm 2) over this region.
	prof := r.engine.opts.Profiler
	tDetermine := prof.Clock()
	r.space.regionDone(reg.cells)

	// Algorithm 1, Line 9: discard live regions now dominated by tuples
	// generated in this round.
	if len(r.roundNew) > 0 {
		for _, other := range r.regions {
			if other.state != regionLive {
				continue
			}
			for _, v := range r.roundNew {
				if preference.DominatesMin(v, other.rect.Lower) {
					r.discard(other)
					break
				}
			}
		}
	}

	// Algorithm 1, Lines 10–19: release out-edges, dirty-mark queued
	// targets for the lazy pop-time refresh, enqueue new roots.
	r.sched.Complete(reg.id)

	// roundNew is consumed; vectors evicted this round can now be recycled.
	r.space.flushFree()
	if r.cpool != nil {
		// Completion-queue waits inside the cascade were already attributed
		// to PhaseCommitWait; shift the span start so the determine total
		// excludes them.
		tDetermine += r.cpool.takeEmitWait()
	}
	prof.EndSequencer(obs.PhaseDetermine, tDetermine)
	return nil
}

// processSerial is the in-line tuple-level processing path: join, map and
// insert one result at a time on the sequencer goroutine. The whole fused
// join+map+insert loop reports as commit time — serial runs have no
// separate prefetch or precheck stages to attribute.
func (r *runState) processSerial(reg *region) {
	prof := r.engine.opts.Profiler
	defer prof.EndSequencer(obs.PhaseCommit, prof.Clock())
	lt, rt := reg.a.tuples, reg.b.tuples
	r.stats.JoinResults += join.Hash(lt, rt, func(li, ri int) bool {
		if r.cancel.Check() != nil {
			return false
		}
		v := r.problem.Maps.Map(lt[li].Vals, rt[ri].Vals, r.mapBuf)
		c := r.space.cellAt(r.space.g.CellOf(v))
		if c == nil {
			// Cannot happen: the region's enclosure covers this cell.
			return true
		}
		if cv, ok := r.space.insert(c, lt[li].ID, rt[ri].ID, v); ok {
			r.roundNew = append(r.roundNew, cv)
		}
		return true
	})
}

// processPooled consumes the region's (prefetched or inline-built)
// candidate stream. Large rounds first run the phase-1 dominance check of
// every candidate in parallel against the frozen pre-round space; the
// sequencer then commits candidates in the canonical stream order. A
// precheck rejection is final — a pre-round dominator (or, transitively,
// whatever evicted it) still exists at the candidate's turn — so the
// rejected majority skips its commit-time scans entirely; survivors re-run
// the full current-state protocol, which also covers tuples inserted
// earlier in the same round. The protocol outcome per candidate — and
// therefore the whole observable run — is identical to processSerial.
func (r *runState) processPooled(reg *region) {
	prof := r.engine.opts.Profiler
	tTake := prof.Clock()
	buf, n := r.pool.take(reg, r.cancel)
	prof.EndSequencer(obs.PhasePrefetch, tTake)
	cands := buf.cands[:n]
	var rejected []bool
	if n >= precheckMinCands {
		rejected = r.pool.rejectedScratch(n)
		tBarrier := prof.Clock()
		r.stats.DomComparisons += r.pool.precheck(r.space, cands, rejected)
		prof.EndSequencer(obs.PhasePrecheck, tBarrier)
	}
	tCommit := prof.Clock()
	for k := range cands {
		if r.cancel.Check() != nil {
			break
		}
		cd := &cands[k]
		c := r.space.cellAt(cd.flat)
		if c == nil {
			continue
		}
		if rejected != nil {
			if c.marked {
				// Marking may have happened mid-round; count exactly like
				// the serial insert would at this candidate's turn.
				r.stats.MappedDiscarded++
				continue
			}
			if rejected[k] {
				continue
			}
		}
		if cv, ok := r.space.insertSum(c, cd.leftID, cd.rightID, cd.v, cd.sum); ok {
			r.roundNew = append(r.roundNew, cv)
		}
	}
	r.stats.JoinResults += n
	prof.EndSequencer(obs.PhaseCommit, tCommit)
	r.pool.finish(reg)
}

// processCommitted is the partitioned-commit path (see commit.go): the
// sequencer decides every verdict against sequencer-owned state in the
// canonical stream order, appends the effects as per-cell operations to the
// committer logs, and defers all buffer mutation to the owning committers.
//
// Per round: (1) drain barrier — committers finish the previous rounds'
// logs, freezing phase-1 state (and releasing the pending candidate
// buffers, whose vectors the logs referenced); (2) phase-1 verdicts for
// every candidate against that frozen space — fanned to the precheck
// workers for large rounds, computed inline otherwise, but always for the
// whole round before any op is appended; (3) the verdict/routing pass: a
// candidate survives iff its cell is unmarked (marks from this very round
// included, exactly like the serial engine's commit-time check), the
// pre-round space does not dominate it, and no earlier-this-round survivor
// in a comparable cell dominates it. That intra-round filter makes the
// combined verdict equal the serial verdict: a serial rejection's live
// dominator is either a pre-round survivor (phase 1 finds it, or a
// transitively stronger one) or an earlier round survivor (the filter
// finds it); conversely both checks only consult vectors the serial engine
// also held live at this candidate's turn — eviction chains only ever
// strengthen dominators, and a dominator in a cell strictly below would
// have marked this cell first.
//
// With speculation enabled (see speculate.go), step (2) may have already
// run on a precheck worker against the stale append-only survivor view
// while EARLIER rounds were still draining. When those stale verdicts are
// available the round skips the drain barrier of step (1) entirely —
// committers keep applying old logs while this round routes new ones — and
// replaces the fresh phase-1 scan with a delta revalidation of the stale
// survivors. The combined verdict is provably the fresh verdict, so the
// routing pass (and the whole observable run) is unchanged.
func (r *runState) processCommitted(reg *region) {
	prof := r.engine.opts.Profiler
	tTake := prof.Clock()
	buf, n := r.pool.take(reg, r.cancel)
	prof.EndSequencer(obs.PhasePrefetch, tTake)
	cands := buf.cands[:n]
	if n == 0 {
		// No candidates, no state reads: the barrier can wait for a round
		// that needs it. The buffer holds nothing the logs reference.
		r.pool.finish(reg)
		return
	}

	sp := r.spec
	var sr *specResult
	usable := false
	if sp != nil {
		// Claim this region's stale verdicts (waiting out a scan still in
		// flight) before deciding whether the drain barrier is needed.
		tSpec := prof.Clock()
		sr = sp.take(reg)
		prof.EndSequencer(obs.PhaseSpeculate, tSpec)
		usable = sr != nil && sp.usable(sr)
	}

	if !usable || len(r.pendingFinish) >= specPendingMax {
		tWait := prof.Clock()
		r.cpool.drain()
		for _, pf := range r.pendingFinish {
			r.pool.finish(pf)
		}
		r.pendingFinish = r.pendingFinish[:0]
		prof.EndSequencer(obs.PhaseCommitWait, tWait)
	}
	if sp != nil {
		// Fence the remaining speculative scans (overlapped with the drain
		// above when one ran): past this point the round mutates state the
		// scans read — the view, the index buckets, marked flags.
		tSpec := prof.Clock()
		sp.fence()
		prof.EndSequencer(obs.PhaseSpeculate, tSpec)
	}

	var rejected []bool
	if usable {
		r.stats.SpecHits++
		rejected = sr.rejected[:n]
		// Revalidate the stale survivors against only the survivor deltas
		// admitted since the snapshot: stale rejections are already final.
		tReval := prof.Clock()
		comps := 0
		for k := range cands {
			if rejected[k] {
				continue
			}
			cd := &cands[k]
			c := r.space.cellAt(cd.flat)
			if c == nil || c.marked {
				continue
			}
			r.stats.SpecRevalChecks++
			if sp.deltaDominated(c, cd, sr.version, &comps) {
				rejected[k] = true
			}
		}
		r.stats.DomComparisons += comps
		prof.EndSequencer(obs.PhaseRevalidate, tReval)
	} else {
		rejected = r.pool.rejectedScratch(n)
		tCheck := prof.Clock()
		if n >= precheckMinCands {
			r.stats.DomComparisons += r.pool.precheck(r.space, cands, rejected)
		} else {
			// Inline phase 1 on the sequencer, still for the whole round up
			// front: a per-candidate scan interleaved with routing would race
			// with the committers applying this round's earlier ops.
			comps := 0
			for k := range cands {
				cd := &cands[k]
				c := r.space.cellAt(cd.flat)
				if c == nil || c.marked {
					continue
				}
				if r.space.precheckDominated(c, cd.v, cd.sum, r.pool.seqState, &comps) {
					rejected[k] = true
				}
			}
			r.stats.DomComparisons += comps
		}
		prof.EndSequencer(obs.PhasePrecheck, tCheck)
	}

	tCommit := prof.Clock()
	for k := range cands {
		if r.cancel.Check() != nil {
			break
		}
		cd := &cands[k]
		c := r.space.cellAt(cd.flat)
		if c == nil {
			continue
		}
		if c.marked {
			r.stats.MappedDiscarded++
			continue
		}
		if rejected[k] || r.intraRoundDominated(c, cd) {
			continue
		}
		v := cd.v
		if sp != nil {
			// Record the survivor in the append-only view; roundNew and the
			// delta ring alias the permanent copy, not the recyclable
			// candidate buffer.
			v = sp.record(c, cd)
		}
		r.routeCommit(c, cd)
		r.roundNew = append(r.roundNew, v)
		r.roundSurv = append(r.roundSurv, roundSurv{v: v, sum: cd.sum, c: c})
	}
	r.stats.JoinResults += n
	// Hand the committers everything routed so far; they overlap with the
	// determination cascade and are fenced at the next drain barrier.
	r.cpool.flushAll()
	prof.EndSequencer(obs.PhaseCommit, tCommit)
	r.pendingFinish = append(r.pendingFinish, reg)
	if sp != nil {
		if sr != nil {
			sp.release(sr)
		}
		sp.pushDelta(r.roundSurv)
		sp.launch()
	}
}

// intraRoundDominated reports whether an earlier survivor of the current
// round dominates the candidate. Comparability reduces to the componentwise
// cell-coordinate test: a dominating survivor in a cell strictly below would
// have marked the candidate's cell (checked, in routing order, before this
// filter runs), so any candidate reaching here only has dominators in
// comparable-≤ cells — the same set the serial engine's bucket walk scans.
func (r *runState) intraRoundDominated(c *cell, cd *cand) bool {
	s := r.space
	packed := s.idx.packed
	for i := range r.roundSurv {
		u := &r.roundSurv[i]
		if u.sum >= cd.sum {
			// A dominator's coordinate sum is strictly smaller.
			continue
		}
		if packed {
			if !keyLeq(u.c.key, c.key) {
				continue
			}
		} else if !grid.LeqAll(u.c.coords, c.coords) {
			continue
		}
		r.stats.DomComparisons++
		if preference.DominatesMin(u.v, cd.v) {
			return true
		}
	}
	return false
}

// routeCommit appends the operation log of one surviving candidate: the
// insert into its own cell, one eviction per comparable populated cell above
// (enumerated through the same bucket-suffix walk as commitSurvivor, against
// sequencer-owned index state only), and — on first population — the
// strictly-above marks. Per-cell op order equals sequencer append order,
// which replays the serial engine's per-cell mutation order exactly.
func (r *runState) routeCommit(c *cell, cd *cand) {
	s := r.space
	r.cpool.route(commitOp{
		kind: copInsert, c: c,
		leftID: cd.leftID, rightID: cd.rightID,
		sum: cd.sum, v: cd.v,
	})
	packed := s.idx.packed
	epoch := s.idx.stamp(c)
	for i := 0; i < s.d; i++ {
		b := s.idx.buckets[i][c.coords[i]]
		for j := bucketSplit(b, c.flat+1); j < len(b); j++ {
			e := &b[j]
			if packed {
				if !keyLeq(c.key, e.key) {
					continue
				}
			} else if !grid.LeqAll(c.coords, e.c.coords) {
				continue
			}
			p := e.c
			// Buckets hold populated cells only; emitted buffers are
			// immutable, marked ones already dropped. The serial walk's
			// len(p.tuples) == 0 skip becomes a no-op eviction here
			// (refuted by the committer before any comparison).
			if p.visited == epoch || p.emitted || p.marked {
				continue
			}
			p.visited = epoch
			r.cpool.route(commitOp{kind: copEvict, c: p, sum: cd.sum, v: cd.v})
		}
	}
	if !c.populated {
		r.populateRouted(c)
	}
}

// populateRouted is populate for the partitioned-commit path: identical
// marking decisions (all against sequencer-owned state), with the buffer
// drop of each newly marked cell routed to its owning committer.
func (r *runState) populateRouted(c *cell) {
	s := r.space
	c.populated = true
	s.idx.addPopulated(c)
	vol := s.idx.strictUpperBoxVolume(c.coords)
	if vol == 0 {
		return
	}
	if s.idx.dense != nil && vol < len(s.cellList) {
		s.idx.eachInStrictUpperBox(c.coords, func(q *cell) {
			if !q.marked {
				r.markRouted(q)
			}
		})
		return
	}
	for _, q := range s.cellList {
		if q.marked || q == c {
			continue
		}
		if grid.StrictlyBelow(c.coords, q.coords) {
			r.markRouted(q)
		}
	}
}

// markRouted marks a cell (sequencer-owned flag, visible to this round's
// later verdicts immediately) and routes the tuple drop to its committer.
func (r *runState) markRouted(q *cell) {
	q.marked = true
	r.stats.CellsMarked++
	if q.populated {
		r.cpool.route(commitOp{kind: copMark, c: q})
	}
}

// discard eliminates a live region without processing it: its cells'
// RegCounts drain (possibly finalizing them) and its graph edges release.
func (r *runState) discard(reg *region) {
	if reg.state != regionLive {
		return
	}
	reg.state = regionDiscarded
	r.stats.RegionsDropped++
	r.emitTrace(Event{Kind: EventRegionDiscarded, Region: reg.id})
	if r.spec != nil {
		// Wait out any speculative scan over the region's candidates before
		// the pool recycles its buffer.
		r.spec.drop(reg)
	}
	if r.pool != nil {
		r.pool.drop(reg)
	}
	r.space.regionDone(reg.cells)
	r.sched.Discard(reg.id)
}
