package core

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"progxe/internal/grid"
	"progxe/internal/mapping"
	"progxe/internal/preference"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// This file implements incremental output-space maintenance: a LiveSpace
// keeps a completed run's survivor state resident and applies a change feed
// of base-relation inserts and deletes, emitting result records for tuples
// that join the skyline and retract records for tuples that leave it.
//
// The correctness model is the batch engine's, held under mutation:
//
//   - survivors (alive tuples) are exactly the skyline over every currently
//     mapped join output;
//   - dominated (dead) tuples stay resident, because a later delete of their
//     dominators may promote them back.
//
// Two invariants carry every proof below. (1) Every dead tuple is dominated
// by at least one alive tuple: true when it dies (it was beaten by a
// survivor), and preserved when its dominator w is itself evicted by a new
// v, since DominatesMin is transitive (v ≤ w ≤ u with strictness inherited).
// (2) A dominator's coordinate sum is strictly smaller than its victim's
// (all-≤ plus strict-somewhere), so sum-sorted cell buffers admit one-sided
// scan cutoffs in both directions, and promotion candidates processed in
// ascending (sum, seq) order can never dominate an already-promoted tuple.

// LiveSink receives the incremental output of a LiveSpace. Result delivers a
// tuple entering the net result set; Retract withdraws a previously
// delivered pair. Implementations must not retain r.Out.
type LiveSink interface {
	Result(r smj.Result)
	Retract(leftID, rightID int64)
}

// LiveStats counts the work a LiveSpace has performed since construction.
type LiveStats struct {
	Inserts     int // base-tuple inserts applied
	Deletes     int // base-tuple deletes applied
	Results     int // result emissions (snapshot included)
	Retractions int // retract emissions
	Promotions  int // dead tuples promoted back by deletes
	Comparisons int // tuple-level dominance tests
}

// liveTuple is one mapped join output resident in the space. v is the
// canonical (all-minimized) output vector; alive marks skyline membership.
//
// Every dead tuple carries a referee: one alive tuple that dominates it (ref,
// with refIdx its slot in the referee's deps list for O(1) detach). The
// referee relation inverts invariant (1) into an index — a dead tuple can
// need promotion only when its referee leaves the alive set, so a delete
// re-checks just the dependents of the survivors it removed instead of
// sweeping the dominated orthant of every one.
type liveTuple struct {
	leftID, rightID int64
	v               []float64
	sum             float64
	seq             int64 // arrival order, tiebreak for equal sums
	alive           bool

	ref    *liveTuple   // alive dominator refereeing this dead tuple
	refIdx int          // index of this tuple in ref.deps
	deps   []*liveTuple // dead tuples this alive tuple referees
}

// attach makes alive tuple w the referee of dead tuple u.
func attach(w, u *liveTuple) {
	u.ref = w
	u.refIdx = len(w.deps)
	w.deps = append(w.deps, u)
}

// detach removes u from its referee's dependent list (swap-remove).
func detach(u *liveTuple) {
	w := u.ref
	if w == nil {
		return
	}
	last := len(w.deps) - 1
	moved := w.deps[last]
	w.deps[u.refIdx] = moved
	moved.refIdx = u.refIdx
	w.deps = w.deps[:last]
	u.ref = nil
}

// liveCell is one populated output-space cell. The alive (skyline) and dead
// (dominated) populations live in separate buffers, each sorted ascending by
// (sum, seq): alive scans (dominance checks, eviction sweeps, promotion
// re-checks) never step over the dead majority, and dead scans (promotion
// candidate sweeps) never step over survivors. Componentwise min/max
// summaries over the alive buffer give O(d) scan refutation.
type liveCell struct {
	flat   int
	coords []int
	minV   []float64 // over alive tuples; valid when len(alive) > 0
	maxV   []float64
	alive  []*liveTuple
	dead   []*liveTuple
	// dom/vic cache the cell-level dominance adjacency: dom holds every cell
	// whose coords are ≤ ours componentwise (where dominators can live), vic
	// every cell with coords ≥ ours (where victims and promotion candidates
	// can live); both include the cell itself. domN/vicN record len(cellList)
	// when the list was last extended — new cells are appended lazily, so
	// keeping a list current is O(cells created since), not O(all cells).
	dom  []*liveCell
	vic  []*liveCell
	domN int
	vicN int
}

// firstSumAbove returns the index of the first tuple in ts with sum > s.
func firstSumAbove(ts []*liveTuple, s float64) int {
	return sort.Search(len(ts), func(i int) bool { return ts[i].sum > s })
}

// insertByRank adds t to the (sum, seq)-sorted buffer ts.
func insertByRank(ts []*liveTuple, t *liveTuple) []*liveTuple {
	at := sort.Search(len(ts), func(i int) bool {
		o := ts[i]
		return o.sum > t.sum || (o.sum == t.sum && o.seq > t.seq)
	})
	return slices.Insert(ts, at, t)
}

// refresh recomputes the alive-subset summaries from scratch.
func (c *liveCell) refresh(d int) {
	for n, t := range c.alive {
		if n == 0 {
			copy(c.minV, t.v)
			copy(c.maxV, t.v)
			continue
		}
		for i := 0; i < d; i++ {
			c.minV[i] = math.Min(c.minV[i], t.v[i])
			c.maxV[i] = math.Max(c.maxV[i], t.v[i])
		}
	}
}

// widen grows the alive summaries to cover t (which must already be counted
// in c.alive).
func (c *liveCell) widen(t *liveTuple, d int) {
	if len(c.alive) == 1 {
		copy(c.minV, t.v)
		copy(c.maxV, t.v)
		return
	}
	for i := 0; i < d; i++ {
		c.minV[i] = math.Min(c.minV[i], t.v[i])
		c.maxV[i] = math.Max(c.maxV[i], t.v[i])
	}
}

// LiveSpace is the resident incremental-maintenance state for one query: the
// base relations, their join index, and the output-space cells holding every
// mapped tuple that has ever survived or been dominated.
//
// LiveSpace is not safe for concurrent use; the serve layer runs one
// goroutine per subscription.
type LiveSpace struct {
	pref *preference.Pareto // original orientation, for decanonicalization
	maps interface {
		Map(left, right, dst []float64) []float64
	} // canonical mapping set (HIGHEST dims pre-negated)
	d int
	g *grid.Grid

	cells    map[int]*liveCell
	cellList []*liveCell

	base    [2]map[int64]relation.Tuple // resident base tuples per side
	byKey   [2]map[int64][]int64        // join key → base IDs, per side
	byBase  [2]map[int64][]*liveTuple   // base ID → mapped tuples it is part of
	nextSeq int64

	stats LiveStats
}

// liveGridCells caps the per-dimension resolution of the maintenance grid so
// the cell count stays bounded at any dimensionality. The cap is deliberately
// coarse: every populated cell carries fixed per-scan overhead (adjacency
// walk, binary-search cutoff), so fat cells with effective summary refutation
// beat many near-empty ones.
func liveGridCells(d int) int {
	k := 16
	for k > 2 && math.Pow(float64(k), float64(d)) > 1<<12 {
		k--
	}
	return k
}

// NewLiveSpace builds the resident state for p: it bounds the output grid
// from the initial join's mapped outputs, then routes every initial tuple
// through the same insert protocol a feed change takes, so the invariants
// hold from the first change onward. The initial net result set is available
// via Results or Snapshot; construction itself emits nothing.
func NewLiveSpace(p *smj.Problem) (*LiveSpace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cp, err := p.Canonicalized()
	if err != nil {
		return nil, err
	}
	d := cp.Maps.Dims()
	ls := &LiveSpace{
		pref:  p.Pref,
		maps:  cp.Maps,
		d:     d,
		cells: make(map[int]*liveCell),
	}
	for s := 0; s < 2; s++ {
		ls.base[s] = make(map[int64]relation.Tuple)
		ls.byKey[s] = make(map[int64][]int64)
		ls.byBase[s] = make(map[int64][]*liveTuple)
	}

	// Bound the grid from the initial mapped outputs. Later inserts may
	// fall outside: grid.Coord clamps monotonically, so componentwise
	// vector order still implies componentwise cell-coordinate order and
	// every orthant scan below stays sound.
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := range lo {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
	}
	dst := make([]float64, d)
	byKey := make(map[int64][]relation.Tuple, len(cp.Right.Tuples))
	for _, rt := range cp.Right.Tuples {
		byKey[rt.JoinKey] = append(byKey[rt.JoinKey], rt)
	}
	for _, lt := range cp.Left.Tuples {
		for _, rt := range byKey[lt.JoinKey] {
			ls.maps.Map(lt.Vals, rt.Vals, dst)
			for i, v := range dst {
				lo[i] = math.Min(lo[i], v)
				hi[i] = math.Max(hi[i], v)
			}
		}
	}
	for i := range lo {
		if lo[i] > hi[i] { // empty initial join: any finite box works
			lo[i], hi[i] = 0, 1
		}
	}
	b, err := grid.NewBounds(lo, hi)
	if err != nil {
		return nil, err
	}
	k := make([]int, d)
	for i := range k {
		k[i] = liveGridCells(d)
	}
	g, err := grid.New(b, k)
	if err != nil {
		return nil, err
	}
	ls.g = g

	// Replay the initial relations through the live insert path: all left
	// tuples first (no partners yet, so no mapped outputs), then each
	// right tuple joins against the full left side — every initial pair
	// is materialized exactly once, under the maintenance invariants.
	for _, lt := range cp.Left.Tuples {
		if err := ls.ApplyInsert(mapping.Left, lt, nil); err != nil {
			return nil, err
		}
	}
	for _, rt := range cp.Right.Tuples {
		if err := ls.ApplyInsert(mapping.Right, rt, nil); err != nil {
			return nil, err
		}
	}
	ls.stats = LiveStats{} // construction is not feed work
	return ls, nil
}

// Dims returns the output-space dimensionality.
func (ls *LiveSpace) Dims() int { return ls.d }

// Stats returns the work counters accumulated since construction.
func (ls *LiveSpace) Stats() LiveStats { return ls.stats }

// Has reports whether a base tuple with the given ID is resident on side.
func (ls *LiveSpace) Has(side mapping.Side, id int64) bool {
	_, ok := ls.base[side][id]
	return ok
}

// cellFor returns (creating if needed) the cell containing canonical vector v.
func (ls *LiveSpace) cellFor(v []float64) *liveCell {
	flat := ls.g.CellOf(v)
	if c, ok := ls.cells[flat]; ok {
		return c
	}
	c := &liveCell{
		flat:   flat,
		coords: ls.g.Coords(flat, make([]int, ls.d)),
		minV:   make([]float64, ls.d),
		maxV:   make([]float64, ls.d),
	}
	ls.cells[flat] = c
	ls.cellList = append(ls.cellList, c)
	return c
}

// coordsLE reports a ≤ b componentwise.
func coordsLE(a, b []int) bool {
	for i, av := range a {
		if av > b[i] {
			return false
		}
	}
	return true
}

// domCells returns the cells where dominators of tuples in c can live (coords
// ≤ c's, including c itself), extending the cached list over cells created
// since it was last current.
func (ls *LiveSpace) domCells(c *liveCell) []*liveCell {
	for _, n := range ls.cellList[c.domN:] {
		if coordsLE(n.coords, c.coords) {
			c.dom = append(c.dom, n)
		}
	}
	c.domN = len(ls.cellList)
	return c.dom
}

// vicCells returns the cells where victims and promotion candidates of tuples
// in c can live (coords ≥ c's, including c itself), extending the cached list
// like domCells.
func (ls *LiveSpace) vicCells(c *liveCell) []*liveCell {
	for _, n := range ls.cellList[c.vicN:] {
		if coordsLE(c.coords, n.coords) {
			c.vic = append(c.vic, n)
		}
	}
	c.vicN = len(ls.cellList)
	return c.vic
}

// dominated returns an alive tuple dominating canonical vector v (sum s,
// living in cell home), or nil — the witness becomes the referee when the
// caller demotes. Candidate cells are home's cached dominator cells; within a
// cell the alive-min summary refutes in O(d) and the sum-sorted buffer is
// scanned only while sums stay strictly below s (a dominator's sum is
// strictly smaller).
func (ls *LiveSpace) dominated(home *liveCell, v []float64, s float64) *liveTuple {
cells:
	for _, c := range ls.domCells(home) {
		if len(c.alive) == 0 {
			continue
		}
		for i := 0; i < ls.d; i++ {
			if c.minV[i] > v[i] {
				continue cells // no alive tuple here can be ≤ v everywhere
			}
		}
		for _, t := range c.alive {
			if t.sum >= s {
				break
			}
			ls.stats.Comparisons++
			if preference.DominatesMin(t.v, v) {
				return t
			}
		}
	}
	return nil
}

// evict retracts every alive tuple the new tuple nt dominates, demoting each
// to dead with nt as referee; each victim's own dependents transfer to nt
// (transitivity keeps their referee a dominator). Victim cells are home's
// cached victim cells; within a cell the alive-max summary refutes and only
// tuples with sum > nt.sum are candidates.
func (ls *LiveSpace) evict(home *liveCell, nt *liveTuple, sink LiveSink) {
	v, s := nt.v, nt.sum
cells:
	for _, c := range ls.vicCells(home) {
		if len(c.alive) == 0 {
			continue
		}
		for i := 0; i < ls.d; i++ {
			if v[i] > c.maxV[i] {
				continue cells // v exceeds every alive tuple here somewhere
			}
		}
		demoted := false
		for _, t := range c.alive[firstSumAbove(c.alive, s):] {
			ls.stats.Comparisons++
			if preference.DominatesMin(v, t.v) {
				t.alive = false
				demoted = true
				ls.retract(t, sink)
			}
		}
		if demoted {
			var victims []*liveTuple
			c.alive = slices.DeleteFunc(c.alive, func(t *liveTuple) bool {
				if t.alive {
					return false
				}
				victims = append(victims, t)
				return true
			})
			for _, t := range victims {
				for _, u := range t.deps {
					u.ref = nt
					u.refIdx = len(nt.deps)
					nt.deps = append(nt.deps, u)
				}
				t.deps = nil
				attach(nt, t)
				c.dead = insertByRank(c.dead, t)
			}
			c.refresh(ls.d)
		}
	}
}

// place routes one freshly mapped tuple through the insert protocol: it dies
// into its cell if dominated, otherwise it evicts its victims, joins the
// alive set, and is emitted.
func (ls *LiveSpace) place(t *liveTuple, sink LiveSink) {
	c := ls.cellFor(t.v)
	if w := ls.dominated(c, t.v, t.sum); w != nil {
		t.alive = false
		attach(w, t)
		c.dead = insertByRank(c.dead, t)
		return
	}
	ls.evict(c, t, sink)
	t.alive = true
	c.alive = insertByRank(c.alive, t)
	c.widen(t, ls.d)
	ls.emit(t, sink)
}

// emit delivers t as a result in the preference's original orientation.
func (ls *LiveSpace) emit(t *liveTuple, sink LiveSink) {
	ls.stats.Results++
	if sink == nil {
		return
	}
	out := smj.Decanonicalize(ls.pref, slices.Clone(t.v))
	sink.Result(smj.Result{LeftID: t.leftID, RightID: t.rightID, Out: out})
}

// retract withdraws t from the net result set.
func (ls *LiveSpace) retract(t *liveTuple, sink LiveSink) {
	ls.stats.Retractions++
	if sink != nil {
		sink.Retract(t.leftID, t.rightID)
	}
}

// ApplyInsert adds base tuple t to side, maps it against every join partner
// on the opposite side, and routes each mapped output through the dominance
// protocol — emitting results for survivors and retracts for the tuples they
// evict. Values must be finite and match the side's arity; a duplicate ID on
// the side is rejected.
func (ls *LiveSpace) ApplyInsert(side mapping.Side, t relation.Tuple, sink LiveSink) error {
	if side != mapping.Left && side != mapping.Right {
		return fmt.Errorf("live: invalid side %d", side)
	}
	for _, v := range t.Vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("live: non-finite value in tuple %d", t.ID)
		}
	}
	if _, dup := ls.base[side][t.ID]; dup {
		return fmt.Errorf("live: duplicate id %d on %v side", t.ID, side)
	}
	ls.stats.Inserts++
	t.Vals = slices.Clone(t.Vals)
	ls.base[side][t.ID] = t
	ls.byKey[side][t.JoinKey] = append(ls.byKey[side][t.JoinKey], t.ID)

	other := mapping.Right - side
	partners := slices.Clone(ls.byKey[other][t.JoinKey])
	slices.Sort(partners) // deterministic mapping order
	for _, pid := range partners {
		p := ls.base[other][pid]
		lv, rv := t.Vals, p.Vals
		lid, rid := t.ID, p.ID
		if side == mapping.Right {
			lv, rv = p.Vals, t.Vals
			lid, rid = p.ID, t.ID
		}
		nt := &liveTuple{leftID: lid, rightID: rid, v: make([]float64, ls.d), seq: ls.nextSeq}
		ls.nextSeq++
		ls.maps.Map(lv, rv, nt.v)
		for _, v := range nt.v {
			nt.sum += v
		}
		ls.byBase[side][t.ID] = append(ls.byBase[side][t.ID], nt)
		ls.byBase[other][pid] = append(ls.byBase[other][pid], nt)
		ls.place(nt, sink)
	}
	return nil
}

// ApplyDelete removes the base tuple with the given ID from side. Every
// mapped tuple it participates in is withdrawn (alive ones retracted), and
// dead tuples whose referees were among the removed survivors are re-checked
// and promoted back into the result set when no alive dominator remains.
//
// Candidate completeness: a dead tuple needs promotion only if it lost its
// last alive dominator, and its referee is an alive dominator — so if the
// referee survived the delete, the tuple stays correctly dead, and otherwise
// it appears in a removed survivor's dependent list. Candidates are processed
// in ascending (sum, seq) order and re-checked against the current alive set
// (earlier promotions included): any dominator of a candidate has a strictly
// smaller sum, so it was processed first — if it was promoted the re-check
// sees it, and if it stayed dead its own alive dominator transitively covers
// the candidate. Promoted tuples therefore never retroactively dominate one
// another, and a promoted tuple never evicts: it would have to dominate an
// alive tuple the alive antichain already failed to dominate.
func (ls *LiveSpace) ApplyDelete(side mapping.Side, id int64, sink LiveSink) error {
	if side != mapping.Left && side != mapping.Right {
		return fmt.Errorf("live: invalid side %d", side)
	}
	t, ok := ls.base[side][id]
	if !ok {
		return fmt.Errorf("live: no id %d on %v side", id, side)
	}
	ls.stats.Deletes++
	delete(ls.base[side], id)
	ids := ls.byKey[side][t.JoinKey]
	if i := slices.Index(ids, id); i >= 0 {
		ls.byKey[side][t.JoinKey] = slices.Delete(ids, i, i+1)
	}

	removed := ls.byBase[side][id]
	delete(ls.byBase[side], id)
	if len(removed) == 0 {
		return nil
	}
	gone := make(map[*liveTuple]bool, len(removed))
	var survivors []*liveTuple
	for _, mt := range removed {
		gone[mt] = true
		if mt.alive {
			survivors = append(survivors, mt)
			ls.retract(mt, sink)
		}
	}
	// Drop every removed mapped tuple from its cell and from the opposite
	// side's byBase lists.
	other := mapping.Right - side
	for _, mt := range removed {
		oid := mt.rightID
		if side == mapping.Right {
			oid = mt.leftID
		}
		lst := ls.byBase[other][oid]
		if i := slices.Index(lst, mt); i >= 0 {
			ls.byBase[other][oid] = slices.Delete(lst, i, i+1)
		}
	}
	touched := make(map[int]bool)
	for _, mt := range removed {
		c := ls.cells[ls.g.CellOf(mt.v)]
		if !touched[c.flat] {
			c.alive = slices.DeleteFunc(c.alive, func(x *liveTuple) bool { return gone[x] })
			c.dead = slices.DeleteFunc(c.dead, func(x *liveTuple) bool { return gone[x] })
			c.refresh(ls.d)
			touched[c.flat] = true
		}
	}

	// Detach removed dead tuples from surviving referees, then collect the
	// promotion candidates: each removed survivor's dependents. A dead
	// tuple has exactly one referee, so the lists are disjoint — no dedup.
	var cands []*liveTuple
	for _, mt := range removed {
		if !mt.alive && mt.ref != nil && !gone[mt.ref] {
			detach(mt)
		}
	}
	for _, r := range survivors {
		for _, u := range r.deps {
			if gone[u] {
				continue
			}
			u.ref = nil
			cands = append(cands, u)
		}
		r.deps = nil
	}
	slices.SortFunc(cands, func(a, b *liveTuple) int {
		if a.sum != b.sum {
			if a.sum < b.sum {
				return -1
			}
			return 1
		}
		return int(a.seq - b.seq)
	})
	for _, u := range cands {
		c := ls.cells[ls.g.CellOf(u.v)]
		if w := ls.dominated(c, u.v, u.sum); w != nil {
			attach(w, u) // stays dead under a new referee
			continue
		}
		u.alive = true
		ls.stats.Promotions++
		if i := slices.Index(c.dead, u); i >= 0 {
			c.dead = slices.Delete(c.dead, i, i+1)
		}
		c.alive = insertByRank(c.alive, u)
		c.widen(u, ls.d)
		ls.emit(u, sink)
	}
	return nil
}

// Results returns the current net result set — every alive tuple,
// decanonicalized — sorted by (LeftID, RightID). This is the set a fresh
// engine run over the current base relations must produce.
func (ls *LiveSpace) Results() []smj.Result {
	var out []smj.Result
	for _, c := range ls.cellList {
		for _, t := range c.alive {
			out = append(out, smj.Result{
				LeftID:  t.leftID,
				RightID: t.rightID,
				Out:     smj.Decanonicalize(ls.pref, slices.Clone(t.v)),
			})
		}
	}
	slices.SortFunc(out, func(a, b smj.Result) int {
		if a.LeftID != b.LeftID {
			return int(a.LeftID - b.LeftID)
		}
		return int(a.RightID - b.RightID)
	})
	return out
}

// Snapshot delivers the current net result set to sink in the canonical
// (LeftID, RightID) order — the initial emission of a fresh subscription.
func (ls *LiveSpace) Snapshot(sink LiveSink) {
	for _, r := range ls.Results() {
		ls.stats.Results++
		if sink != nil {
			sink.Result(r)
		}
	}
}
