package core

import (
	"testing"

	"progxe/internal/datagen"
	"progxe/internal/mapping"
	"progxe/internal/preference"
	"progxe/internal/smj"
)

// smokeProblem builds a small randomized SkyMapJoin problem with the paper's
// standard workload shape.
func smokeProblem(t *testing.T, n, d int, dist datagen.Distribution, sigma float64, seed uint64) *smj.Problem {
	t.Helper()
	r, s, err := datagen.GeneratePair(datagen.Spec{
		N: n, Dims: d, Distribution: dist, Selectivity: sigma, Seed: seed,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	funcs := make([]mapping.Func, d)
	for j := 0; j < d; j++ {
		funcs[j] = mapping.Func{
			Name: r.Schema.Attrs[j],
			Expr: mapping.Sum(mapping.A(mapping.Left, j, ""), mapping.A(mapping.Right, j, "")),
		}
	}
	return &smj.Problem{
		Left:  r,
		Right: s,
		Maps:  mapping.MustSet(funcs...),
		Pref:  preference.AllLowest(d),
	}
}

func TestEngineSmoke(t *testing.T) {
	p := smokeProblem(t, 200, 3, datagen.Independent, 0.05, 7)
	var sink smj.Collector
	stats, err := New(Options{}).Run(p, &sink)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stats.ResultCount == 0 || len(sink.Results) == 0 {
		t.Fatalf("no results emitted (stats %+v)", stats)
	}
	if stats.ResultCount != len(sink.Results) {
		t.Fatalf("stats.ResultCount = %d, sink saw %d", stats.ResultCount, len(sink.Results))
	}
}
