package core

import (
	"fmt"
	"runtime"
	"slices"
	"testing"

	"progxe/internal/baseline"
	"progxe/internal/datagen"
	"progxe/internal/grid"
	"progxe/internal/join"
	"progxe/internal/mapping"
	"progxe/internal/preference"
	"progxe/internal/smj"
)

// This file holds the differential oracle for the indexed output space: a
// deliberately naive reference implementation of the seed's tuple-level
// protocol and progressive determination (O(populated) scans per insert,
// O(cells) marking sweeps, O(active) blocker scans) under the same
// deterministic policies as the optimized space — SFS-sorted cell buffers
// (stable on equal sums) and smallest-flat-id blocker selection. The
// differential test replays the optimized engine's exact region schedule
// against the reference and demands bit-for-bit identical emissions, cell
// events, discards and counters.

type refTuple struct {
	leftID, rightID int64
	v               []float64
	sum             float64
}

type refCell struct {
	flat      int
	coords    []int
	lower     []float64
	coveredBy []int
	regCount  int
	marked    bool
	populated bool
	finalized bool
	emitted   bool
	active    bool
	tuples    []refTuple
	watchers  []*refCell
}

type refSpace struct {
	d         int
	g         *grid.Grid
	cells     map[int]*refCell
	cellList  []*refCell
	populated []*refCell
	active    []*refCell

	emit func(c *refCell, t refTuple)

	resultCount     int
	cellsMarked     int
	mappedDiscarded int
}

// newRefSpace clones the statically built optimized space (coverage,
// RegCounts, static marking, active set) into the naive representation, so
// both start from the identical §III-A state.
func newRefSpace(s *space) *refSpace {
	r := &refSpace{d: s.d, g: s.g, cells: map[int]*refCell{}}
	for _, c := range s.cellList {
		rc := &refCell{
			flat:      c.flat,
			coords:    slices.Clone(c.coords),
			lower:     slices.Clone(c.lower),
			coveredBy: slices.Clone(c.coveredBy),
			regCount:  c.regCount,
			marked:    c.marked,
			active:    c.activeIdx >= 0,
		}
		if rc.marked {
			r.cellsMarked++
		}
		r.cells[rc.flat] = rc
		r.cellList = append(r.cellList, rc)
		if rc.active {
			r.active = append(r.active, rc)
		}
	}
	return r
}

func (r *refSpace) mark(c *refCell) {
	if c.marked {
		return
	}
	c.marked = true
	c.tuples = nil
	r.cellsMarked++
}

// insert is the seed's §III-B protocol: full scans over populated cells.
func (r *refSpace) insert(c *refCell, leftID, rightID int64, v []float64) bool {
	if c.marked {
		r.mappedDiscarded++
		return false
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	for _, p := range r.populated {
		if len(p.tuples) == 0 {
			continue
		}
		if p != c && !sliceBelowOrEqual(p.coords, c.coords) {
			continue
		}
		for _, u := range p.tuples {
			if preference.DominatesMin(u.v, v) {
				return false
			}
		}
	}
	for _, p := range r.populated {
		if len(p.tuples) == 0 {
			continue
		}
		if p != c && !sliceBelowOrEqual(c.coords, p.coords) {
			continue
		}
		keep := p.tuples[:0]
		for _, u := range p.tuples {
			if !preference.DominatesMin(v, u.v) {
				keep = append(keep, u)
			}
		}
		p.tuples = keep
	}
	// SFS order, stable on equal sums — the optimized space's buffer policy.
	t := refTuple{leftID: leftID, rightID: rightID, v: slices.Clone(v), sum: sum}
	pos := len(c.tuples)
	for pos > 0 && c.tuples[pos-1].sum > sum {
		pos--
	}
	c.tuples = slices.Insert(c.tuples, pos, t)
	if !c.populated {
		c.populated = true
		r.populated = append(r.populated, c)
		for _, q := range r.cellList {
			if !q.marked && q != c && grid.StrictlyBelow(c.coords, q.coords) {
				r.mark(q)
			}
		}
	}
	return true
}

func (r *refSpace) regionDone(cellIDs []int) {
	for _, flat := range cellIDs {
		c := r.cells[flat]
		c.regCount--
		if c.regCount == 0 && !c.finalized {
			c.finalized = true
			c.active = false
			for i, q := range r.active {
				if q == c {
					r.active = append(r.active[:i], r.active[i+1:]...)
					break
				}
			}
			r.consider(c)
			if len(c.watchers) > 0 {
				ws := c.watchers
				c.watchers = nil
				for _, w := range ws {
					r.consider(w)
				}
			}
		}
	}
}

func (r *refSpace) consider(c *refCell) {
	if c.emitted || c.marked || !c.finalized || len(c.tuples) == 0 {
		return
	}
	// Blocker: smallest-flat active cell in the closed lower orthant.
	var blocker *refCell
	for _, q := range r.active {
		if grid.LeqAll(q.coords, c.coords) && (blocker == nil || q.flat < blocker.flat) {
			blocker = q
		}
	}
	if blocker != nil {
		blocker.watchers = append(blocker.watchers, c)
		return
	}
	c.emitted = true
	for _, t := range c.tuples {
		r.emit(c, t)
	}
	r.resultCount += len(c.tuples)
}

// refEvent mirrors the engine trace kinds the replay can reproduce.
type refEvent struct {
	kind      EventKind
	region    int
	cell      int
	survivors int
}

func (e refEvent) String() string {
	return fmt.Sprintf("%s region=%d cell=%d survivors=%d", e.kind, e.region, e.cell, e.survivors)
}

// emission is one emitted result with its cell, for sequence comparison.
type emission struct {
	cell            int
	leftID, rightID int64
	out             []float64
}

// TestDifferentialIndexedSpace runs the optimized engine across dimensions
// 2..5, all three distributions and three selectivities, checks its result
// set against baseline.Oracle, then replays its exact region schedule
// through the naive reference space and demands identical emissions (order
// included), identical cell/discard event sequences and identical counters.
// Each cell of the grid additionally sweeps the parallel engine across
// worker counts, demanding bit-for-bit identity with the serial run (and
// therefore, transitively, with the naive reference). In -short mode the
// sweep keeps one σ per dimension — the subset the race-detector CI job
// runs on every PR.
func TestDifferentialIndexedSpace(t *testing.T) {
	dists := []datagen.Distribution{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated}
	ns := map[int]int{2: 400, 3: 350, 4: 300, 5: 250}
	for d := 2; d <= 5; d++ {
		for _, dist := range dists {
			for _, sigma := range []float64{0.001, 0.01, 0.1} {
				if testing.Short() && sigma != 0.01 {
					continue
				}
				label := fmt.Sprintf("d=%d/%s/σ=%g", d, dist, sigma)
				t.Run(label, func(t *testing.T) {
					p := smokeProblem(t, ns[d], d, dist, sigma, uint64(100*d)+uint64(sigma*1000))
					differentialCheck(t, p, Options{})
				})
			}
		}
	}
}

// workerSweep lists the worker counts every differential cell verifies
// against the serial engine: the pipeline minimum, two, a typical core
// count, and whatever this machine has.
func workerSweep() []int {
	sweep := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		sweep = append(sweep, n)
	}
	return sweep
}

// committerSweep lists the committer counts crossed with worker counts in
// the partitioned-commit differential sweep. Short mode (the PR race job)
// keeps two counts; the full sweep — including NumCPU — runs in the CI
// multicore job under -race, where committers are truly concurrent.
func committerSweep() []int {
	if testing.Short() {
		return []int{1, 2}
	}
	sweep := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		sweep = append(sweep, n)
	}
	return sweep
}

// runRecorded executes the engine built from opts over p, recording the
// emission sequence, the full trace-event stream, and the run stats.
func runRecorded(t *testing.T, p *smj.Problem, opts Options) ([]emission, []Event, smj.Stats) {
	t.Helper()
	var events []Event
	var got []emission
	opts.Trace = func(ev Event) {
		events = append(events, ev)
		if ev.Kind == EventCellEmitted {
			// Back-fill the cell of the emissions this event covers.
			for i := len(got) - ev.Survivors; i < len(got); i++ {
				got[i].cell = ev.Cell
			}
		}
	}
	stats, err := New(opts).Run(p, smj.SinkFunc(func(res smj.Result) {
		got = append(got, emission{cell: -1, leftID: res.LeftID, rightID: res.RightID, out: slices.Clone(res.Out)})
	}))
	if err != nil {
		t.Fatalf("run (workers=%d committers=%d): %v", opts.Workers, opts.Committers, err)
	}
	return got, events, stats
}

// checkParallelMatchesSerial runs the worker sweep over p and demands that
// every parallel run reproduces the serial run bit for bit: the emission
// sequence (ids, cells and vectors), the complete trace-event stream
// (region choices with ranks, processing, discards, cell emissions), and
// every counter except DomComparisons, which reflects where comparisons
// execute (precheck workers vs the sequencer), not what they decide.
func checkParallelMatchesSerial(t *testing.T, p *smj.Problem, opts Options, serialEm []emission, serialEv []Event, serialStats smj.Stats) {
	t.Helper()
	defer func(old int) { precheckMinCands = old }(precheckMinCands)
	for i, w := range workerSweep() {
		// Force both pooled commit paths across the sweep: every round
		// through the parallel precheck, then never, then the production
		// threshold.
		switch i {
		case 0:
			precheckMinCands = 1
		case 1:
			precheckMinCands = 1 << 30
		default:
			precheckMinCands = 256
		}
		popts := opts
		popts.Workers = w
		em, ev, stats := runRecorded(t, p, popts)
		requireIdenticalRun(t, fmt.Sprintf("workers=%d", w), em, ev, stats, serialEm, serialEv, serialStats)
	}

	// Partitioned-commit sweep: every committers × workers combination must
	// reproduce the serial stream bit for bit too, again alternating the
	// precheck threshold so both phase-1 placements (parallel barrier,
	// inline sequencer scan) cross both the op-log and emission paths.
	combo := 0
	for _, cN := range committerSweep() {
		for _, w := range []int{1, 2, 4} {
			if testing.Short() && w == 4 {
				continue
			}
			switch combo % 3 {
			case 0:
				precheckMinCands = 1
			case 1:
				precheckMinCands = 1 << 30
			default:
				precheckMinCands = 256
			}
			combo++
			popts := opts
			popts.Workers = w
			popts.Committers = cN
			em, ev, stats := runRecorded(t, p, popts)
			requireIdenticalRun(t, fmt.Sprintf("workers=%d committers=%d", w, cN), em, ev, stats, serialEm, serialEv, serialStats)
		}
	}

	// Speculative-pipelining sweep: cross-round phase-1 scans against stale
	// snapshots plus delta revalidation must still reproduce the serial
	// stream bit for bit at every depth × committers × workers combination.
	// Depth 0 is the committer sweep above; the precheck threshold keeps
	// rotating so speculative rounds interleave with both fresh placements.
	// Workers start at 2 — speculation requires a spare precheck lane and
	// is a no-op below that, so w=1 cells would assert nothing new.
	combo = 0
	for _, depth := range []int{1, 2} {
		for _, cN := range []int{1, 4} {
			for _, w := range []int{2, 4} {
				if testing.Short() && (w == 4 || cN == 4) {
					continue
				}
				switch combo % 3 {
				case 0:
					precheckMinCands = 1
				case 1:
					precheckMinCands = 1 << 30
				default:
					precheckMinCands = 256
				}
				combo++
				popts := opts
				popts.Workers = w
				popts.Committers = cN
				popts.SpeculateRounds = depth
				em, ev, stats := runRecorded(t, p, popts)
				requireIdenticalRun(t, fmt.Sprintf("workers=%d committers=%d speculate=%d", w, cN, depth), em, ev, stats, serialEm, serialEv, serialStats)
			}
		}
	}
}

// requireIdenticalRun demands one recorded run equals the serial reference
// byte for byte: emissions (cells, ids, vectors), the complete trace-event
// stream, and every counter except DomComparisons and the speculation
// counters (SpecRounds, SpecHits, SpecRevalChecks), all of which reflect
// where and when comparisons execute — scheduling — not what they decide.
func requireIdenticalRun(t *testing.T, label string, em []emission, ev []Event, stats smj.Stats, serialEm []emission, serialEv []Event, serialStats smj.Stats) {
	t.Helper()
	if len(em) != len(serialEm) {
		t.Fatalf("%s emitted %d results, serial %d", label, len(em), len(serialEm))
	}
	for i := range em {
		g, s := em[i], serialEm[i]
		if g.cell != s.cell || g.leftID != s.leftID || g.rightID != s.rightID || !slices.Equal(g.out, s.out) {
			t.Fatalf("%s emission %d diverges: parallel {cell %d (%d,%d) %v}, serial {cell %d (%d,%d) %v}",
				label, i, g.cell, g.leftID, g.rightID, g.out, s.cell, s.leftID, s.rightID, s.out)
		}
	}
	if len(ev) != len(serialEv) {
		t.Fatalf("%s produced %d trace events, serial %d", label, len(ev), len(serialEv))
	}
	for i := range ev {
		if ev[i] != serialEv[i] {
			t.Fatalf("%s event %d diverges: parallel %v, serial %v", label, i, ev[i], serialEv[i])
		}
	}
	ns, ss := stats, serialStats
	ns.DomComparisons, ss.DomComparisons = 0, 0
	ns.SpecRounds, ss.SpecRounds = 0, 0
	ns.SpecHits, ss.SpecHits = 0, 0
	ns.SpecRevalChecks, ss.SpecRevalChecks = 0, 0
	if ns != ss {
		t.Fatalf("%s stats diverge: parallel %+v, serial %+v", label, ns, ss)
	}
}

func differentialCheck(t *testing.T, p *smj.Problem, opts Options) {
	t.Helper()

	// 1. Optimized run, recording emissions and trace events.
	var events []Event
	var got []emission
	var lastCell int
	opts.Trace = func(ev Event) {
		events = append(events, ev)
		if ev.Kind == EventCellEmitted {
			lastCell = ev.Cell
			// Back-fill the cell of the emissions this event covers.
			for i := len(got) - ev.Survivors; i < len(got); i++ {
				got[i].cell = lastCell
			}
		}
	}
	e := New(opts)
	stats, err := e.Run(p, smj.SinkFunc(func(res smj.Result) {
		got = append(got, emission{cell: -1, leftID: res.LeftID, rightID: res.RightID, out: slices.Clone(res.Out)})
	}))
	if err != nil {
		t.Fatalf("optimized run: %v", err)
	}

	// 2. Set equality against the blocking oracle (JF-SL over BNL).
	oracle, err := baseline.Oracle(p)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	inOracle := make(map[[2]int64]bool, len(oracle))
	for _, r := range oracle {
		inOracle[r.Key()] = true
	}
	if len(got) != len(oracle) {
		t.Fatalf("emitted %d results, oracle has %d", len(got), len(oracle))
	}
	for _, g := range got {
		if !inOracle[[2]int64{g.leftID, g.rightID}] {
			t.Fatalf("emitted (%d,%d) not in oracle", g.leftID, g.rightID)
		}
	}

	// 3. Replay the recorded region schedule through the naive reference.
	cp, d, err := checkProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	left, right := cp.Left, cp.Right
	if e.opts.PushThrough {
		left, _ = smj.PushThrough(left, cp.Maps, mapping.Left)
		right, _ = smj.PushThrough(right, cp.Maps, mapping.Right)
	}
	lparts, err := e.partition(left, cp.Maps, mapping.Left)
	if err != nil {
		t.Fatal(err)
	}
	rparts, err := e.partition(right, cp.Maps, mapping.Right)
	if err != nil {
		t.Fatal(err)
	}
	regions, _ := buildRegions(lparts, rparts, cp.Maps, 0)
	outCells := e.opts.OutputCells
	if outCells == 0 {
		outCells = autoOutputCells(d)
	}
	var buildStats smj.Stats
	s, err := buildSpace(regions, d, outCells, &buildStats, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefSpace(s)

	var want []emission
	var refEvents []refEvent
	ref.emit = func(c *refCell, tu refTuple) {
		want = append(want, emission{cell: c.flat, leftID: tu.leftID, rightID: tu.rightID, out: slices.Clone(tu.v)})
	}
	emittedBefore := 0
	noteCellEvents := func() {
		// One CellEmitted event per cell that emitted since the last call.
		for i := emittedBefore; i < len(want); {
			j := i
			for j < len(want) && want[j].cell == want[i].cell {
				j++
			}
			refEvents = append(refEvents, refEvent{kind: EventCellEmitted, cell: want[i].cell, survivors: j - i})
			i = j
		}
		emittedBefore = len(want)
	}

	live := make([]bool, len(regions))
	for i := range live {
		live[i] = true
	}
	mapBuf := make([]float64, d)
	var roundNew [][]float64
	for _, ev := range events {
		if ev.Kind != EventRegionChosen {
			continue
		}
		reg := regions[ev.Region]
		if !live[reg.id] {
			t.Fatalf("schedule chose dead region %d", reg.id)
		}
		live[reg.id] = false
		roundNew = roundNew[:0]
		lt, rt := reg.a.tuples, reg.b.tuples
		join.Hash(lt, rt, func(li, ri int) bool {
			v := cp.Maps.Map(lt[li].Vals, rt[ri].Vals, mapBuf)
			c := ref.cells[ref.g.CellOf(v)]
			if c == nil {
				return true
			}
			if ref.insert(c, lt[li].ID, rt[ri].ID, v) {
				roundNew = append(roundNew, slices.Clone(v))
			}
			return true
		})
		refEvents = append(refEvents, refEvent{kind: EventRegionProcessed, region: reg.id})
		ref.regionDone(reg.cells)
		noteCellEvents()
		if len(roundNew) > 0 {
			for _, other := range regions {
				if !live[other.id] {
					continue
				}
				for _, v := range roundNew {
					if preference.DominatesMin(v, other.rect.Lower) {
						live[other.id] = false
						refEvents = append(refEvents, refEvent{kind: EventRegionDiscarded, region: other.id})
						ref.regionDone(other.cells)
						noteCellEvents()
						break
					}
				}
			}
		}
	}

	// 4. Bit-for-bit comparison: emissions, event sequence, counters.
	if len(got) != len(want) {
		t.Fatalf("optimized emitted %d results, reference %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.cell != w.cell || g.leftID != w.leftID || g.rightID != w.rightID || !slices.Equal(g.out, w.out) {
			t.Fatalf("emission %d diverges: optimized {cell %d (%d,%d) %v}, reference {cell %d (%d,%d) %v}",
				i, g.cell, g.leftID, g.rightID, g.out, w.cell, w.leftID, w.rightID, w.out)
		}
	}
	var gotEvents []refEvent
	for _, ev := range events {
		switch ev.Kind {
		case EventRegionProcessed:
			gotEvents = append(gotEvents, refEvent{kind: ev.Kind, region: ev.Region})
		case EventRegionDiscarded:
			gotEvents = append(gotEvents, refEvent{kind: ev.Kind, region: ev.Region})
		case EventCellEmitted:
			gotEvents = append(gotEvents, refEvent{kind: ev.Kind, cell: ev.Cell, survivors: ev.Survivors})
		}
	}
	if len(gotEvents) != len(refEvents) {
		t.Fatalf("event streams diverge: optimized %d events, reference %d", len(gotEvents), len(refEvents))
	}
	for i := range gotEvents {
		if gotEvents[i] != refEvents[i] {
			t.Fatalf("event %d diverges: optimized %v, reference %v", i, gotEvents[i], refEvents[i])
		}
	}
	if stats.ResultCount != ref.resultCount {
		t.Fatalf("ResultCount: optimized %d, reference %d", stats.ResultCount, ref.resultCount)
	}
	if stats.CellsMarked != ref.cellsMarked {
		t.Fatalf("CellsMarked: optimized %d, reference %d", stats.CellsMarked, ref.cellsMarked)
	}
	if stats.MappedDiscarded != ref.mappedDiscarded {
		t.Fatalf("MappedDiscarded: optimized %d, reference %d", stats.MappedDiscarded, ref.mappedDiscarded)
	}
	for _, c := range ref.cellList {
		if !c.emitted && !c.marked && len(c.tuples) > 0 {
			t.Fatalf("reference retained unemitted survivors in cell %d", c.flat)
		}
	}

	// 5. Worker sweep: parallel runs must reproduce the (now reference-
	// validated) serial run bit for bit.
	checkParallelMatchesSerial(t, p, opts, got, events, stats)
}

// TestDifferentialEngineVariants replays the differential check under the
// non-default engine configurations whose schedules exercise different
// region orders (random, arrival, cardinality, push-through, kd splits).
func TestDifferentialEngineVariants(t *testing.T) {
	p := smokeProblem(t, 300, 3, datagen.AntiCorrelated, 0.05, 99)
	for _, opts := range []Options{
		{Ordering: OrderRandom, Seed: 7},
		{Ordering: OrderArrival},
		{Ordering: OrderCardinality},
		{PushThrough: true},
		{Partitioning: PartitionKD},
		{InputCells: 2, OutputCells: 5},
	} {
		t.Run(fmt.Sprintf("%+v", opts), func(t *testing.T) {
			differentialCheck(t, p, opts)
		})
	}
}

// TestDifferentialFallbackPaths forces the index's degraded modes — the
// unpacked coordinate comparison (a dimension with more than 128 cells, or
// more than 8 output dimensions) and the dense-array fallback to the
// construction map (grids above denseLimit) — and re-runs the bit-for-bit
// differential check through them.
func TestDifferentialFallbackPaths(t *testing.T) {
	t.Run("unpacked/k=150", func(t *testing.T) {
		// 150 cells per dimension exceeds the 8-bit lane range: packed=false,
		// exercising the grid.LeqAll branches of insert/findBlocker/progCount.
		p := smokeProblem(t, 200, 2, datagen.AntiCorrelated, 0.05, 41)
		differentialCheck(t, p, Options{OutputCells: 150})
	})
	t.Run("unpacked/d=9", func(t *testing.T) {
		// More than 8 output dimensions also disables packing.
		p := smokeProblem(t, 120, 9, datagen.Independent, 0.1, 43)
		differentialCheck(t, p, Options{})
	})
	t.Run("mapFallback", func(t *testing.T) {
		// Shrink the dense cap so the auto grid (64² cells for d=2) exceeds
		// it: cellAt falls back to the map, findBlocker to the active scan,
		// and populate to the cell-list marking sweep.
		old := denseLimit
		denseLimit = 256
		defer func() { denseLimit = old }()
		p := smokeProblem(t, 200, 2, datagen.AntiCorrelated, 0.05, 47)
		differentialCheck(t, p, Options{})
	})
}
