package core

import (
	"strings"
	"testing"

	"progxe/internal/datagen"
	"progxe/internal/smj"
)

func TestTraceEvents(t *testing.T) {
	p := smokeProblem(t, 300, 3, datagen.AntiCorrelated, 0.05, 3)
	var events []Event
	e := New(Options{Trace: func(ev Event) { events = append(events, ev) }})
	var sink smj.Collector
	stats, err := e.Run(p, &sink)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[EventKind]int{}
	emittedResults := 0
	var chosen, processed []int
	for _, ev := range events {
		counts[ev.Kind]++
		switch ev.Kind {
		case EventRegionChosen:
			chosen = append(chosen, ev.Region)
		case EventRegionProcessed:
			processed = append(processed, ev.Region)
		case EventCellEmitted:
			emittedResults += ev.Survivors
		}
	}
	if counts[EventRegionChosen] == 0 || counts[EventCellEmitted] == 0 {
		t.Fatalf("missing event kinds: %v", counts)
	}
	if counts[EventRegionChosen] != counts[EventRegionProcessed] {
		t.Fatalf("chosen %d != processed %d", counts[EventRegionChosen], counts[EventRegionProcessed])
	}
	// Every chosen region is processed, in order.
	for i := range chosen {
		if chosen[i] != processed[i] {
			t.Fatalf("event order broken: chosen %d processed %d", chosen[i], processed[i])
		}
	}
	// Processed + discarded = total live regions.
	if got := counts[EventRegionProcessed] + counts[EventRegionDiscarded]; got != stats.Regions-stats.RegionsPruned {
		t.Fatalf("region events %d, live regions %d", got, stats.Regions-stats.RegionsPruned)
	}
	if emittedResults != stats.ResultCount {
		t.Fatalf("cell-emitted survivors %d != results %d", emittedResults, stats.ResultCount)
	}
	// No region may be chosen twice.
	seen := map[int]bool{}
	for _, id := range chosen {
		if seen[id] {
			t.Fatalf("region %d chosen twice", id)
		}
		seen[id] = true
	}
}

func TestTraceEventStrings(t *testing.T) {
	events := []Event{
		{Kind: EventRegionChosen, Region: 1, Rank: 0.5},
		{Kind: EventRegionProcessed, Region: 1, JoinResults: 10, Survivors: 3},
		{Kind: EventRegionDiscarded, Region: 2},
		{Kind: EventCellEmitted, Cell: 7, Survivors: 2},
		{Kind: EventKind(99)},
	}
	for _, ev := range events {
		if ev.String() == "" {
			t.Fatalf("event %d renders empty", ev.Kind)
		}
	}
	if !strings.Contains(events[0].String(), "region=1") {
		t.Fatalf("chosen event = %q", events[0])
	}
	for k := EventRegionChosen; k <= EventCellEmitted; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d renders empty", k)
		}
	}
}

func TestExplain(t *testing.T) {
	p := smokeProblem(t, 500, 3, datagen.AntiCorrelated, 0.02, 9)
	plan, err := Explain(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.LeftPartitions == 0 || plan.RightPartitions == 0 {
		t.Fatalf("plan has no partitions: %+v", plan)
	}
	if plan.Regions == 0 || plan.CoveredCells == 0 {
		t.Fatalf("plan has no regions/cells: %+v", plan)
	}
	// Anti-correlated regions overlap along the anti-diagonal, so the
	// EL-graph may be fully cyclic (no roots) — but then it must have
	// edges; an edgeless graph always has roots.
	if plan.Roots == 0 && plan.Edges == 0 && plan.Regions > 0 {
		t.Fatalf("EL-graph has neither roots nor edges: %+v", plan)
	}
	if plan.OutputCells != autoOutputCells(3) {
		t.Fatalf("auto output cells = %d", plan.OutputCells)
	}
	if plan.EstimatedJoin == 0 {
		t.Fatal("estimated join must be positive")
	}
	if !strings.Contains(plan.String(), "EL-graph") {
		t.Fatalf("plan render = %q", plan.String())
	}

	// Explain must agree with an actual run on region accounting.
	var sink smj.Collector
	stats, err := New(Options{}).Run(p, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Regions+plan.RegionsPruned != stats.Regions {
		t.Fatalf("explain regions %d+%d, run saw %d", plan.Regions, plan.RegionsPruned, stats.Regions)
	}
	// Estimated joins from exact signatures equal the materialized joins of
	// live regions... processed regions only; discarded regions skip their
	// joins, so the estimate is an upper bound.
	if stats.JoinResults > plan.EstimatedJoin {
		t.Fatalf("run joined %d > estimate %d", stats.JoinResults, plan.EstimatedJoin)
	}

	// Explain honours the push-through option.
	plan2, err := Explain(p, Options{PushThrough: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan2.EstimatedJoin > plan.EstimatedJoin {
		t.Fatal("push-through cannot increase join estimate")
	}

	// Validation errors propagate.
	bad := *p
	bad.Pref = nil
	if _, err := Explain(&bad, Options{}); err == nil {
		t.Fatal("invalid problem must error")
	}
}
