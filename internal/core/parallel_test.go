package core

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync/atomic"
	"testing"

	"progxe/internal/datagen"
	"progxe/internal/par"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// installYieldHook randomizes goroutine interleaving for the duration of a
// test: worker loops call runtime.Gosched at pseudo-random points, so
// repeated runs explore different schedules even on a single core. The hook
// must be removed before the test ends (engine runs must not overlap hook
// changes).
func installYieldHook(t *testing.T, seed uint64) {
	t.Helper()
	var ctr atomic.Uint64
	ctr.Store(seed)
	par.YieldHook = func() {
		// splitmix64 over an atomic counter: goroutine-safe pseudo-random
		// yield decisions without shared-RNG locking.
		x := ctr.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		if x%4 == 0 {
			runtime.Gosched()
		}
	}
	t.Cleanup(func() { par.YieldHook = nil })
}

// recordRun executes one engine run and returns the emission stream and
// stats.
func recordRun(t *testing.T, p *smj.Problem, opts Options) ([]smj.Result, smj.Stats) {
	t.Helper()
	var got []smj.Result
	stats, err := New(opts).Run(p, smj.SinkFunc(func(r smj.Result) {
		got = append(got, smj.Result{LeftID: r.LeftID, RightID: r.RightID, Out: slices.Clone(r.Out)})
	}))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return got, stats
}

func sameRuns(a, b []smj.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].LeftID != b[i].LeftID || a[i].RightID != b[i].RightID || !slices.Equal(a[i].Out, b[i].Out) {
			return false
		}
	}
	return true
}

// TestParallelDeterminism is the scheduling-pressure property test: the
// parallel engine runs the same problem repeatedly under randomized
// runtime.Gosched injection and varying GOMAXPROCS, and every run must
// reproduce the serial emission stream exactly — including DomComparisons,
// which for a FIXED worker count is a deterministic function of the run
// (chunk boundaries and scan verdicts do not depend on scheduling).
func TestParallelDeterminism(t *testing.T) {
	p := smokeProblem(t, 500, 3, datagen.AntiCorrelated, 0.05, 1234)
	serial, serialStats := recordRun(t, p, Options{})

	defer func(old int) { precheckMinCands = old }(precheckMinCands)
	precheckMinCands = 1 // every round through the parallel precheck
	for _, workers := range []int{1, 3} {
		var baseStats smj.Stats
		for rep := 0; rep < 4; rep++ {
			installYieldHook(t, uint64(workers*100+rep))
			gmp := 1 + rep%3
			old := runtime.GOMAXPROCS(gmp)
			got, stats := recordRun(t, p, Options{Workers: workers})
			runtime.GOMAXPROCS(old)
			par.YieldHook = nil

			if !sameRuns(got, serial) {
				t.Fatalf("workers=%d rep=%d (GOMAXPROCS=%d): emission stream diverges from serial", workers, rep, gmp)
			}
			ns, ss := stats, serialStats
			ns.DomComparisons, ss.DomComparisons = 0, 0
			if ns != ss {
				t.Fatalf("workers=%d rep=%d: stats diverge from serial: %+v vs %+v", workers, rep, ns, ss)
			}
			if rep == 0 {
				baseStats = stats
			} else if stats != baseStats {
				t.Fatalf("workers=%d rep=%d: run-to-run stats diverge: %+v vs %+v", workers, rep, stats, baseStats)
			}
		}
	}
}

// parallelFixture builds a single-region problem with a non-trivial join
// fan-out for driving the pool's stream construction directly.
func parallelFixture(t *testing.T) (*pool, *region, *space) {
	t.Helper()
	mk := func(id int, n int) *inputPartition {
		p := newPartition(id, 2)
		for i := 0; i < n; i++ {
			p.add(relation.Tuple{
				ID:      int64(id*1000 + i),
				Vals:    []float64{float64(i%7) * 0.5, float64((i*3)%11) * 0.4},
				JoinKey: int64(i % 5),
			})
		}
		return p
	}
	left := []*inputPartition{mk(0, 40)}
	right := []*inputPartition{mk(0, 35)}
	regions, _ := buildRegions(left, right, sumMaps2(), 0)
	if len(regions) != 1 || regions[0].joinCard == 0 {
		t.Fatalf("fixture: regions=%d", len(regions))
	}
	var stats smj.Stats
	s, err := buildSpace(regions, 2, 8, &stats, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.emit = func(outTuple) {}
	return newPool(context.Background(), 1, s, regions, 1, sumMaps2(), 0), regions[0], s
}

// TestWorkerStreamSteadyStateZeroAlloc pins the per-worker arena guarantee:
// with the probe table cached and the candidate buffer at capacity,
// materializing a region's stream performs no heap allocations at all —
// the parallel runner adds no per-tuple (or per-region) allocation to the
// steady state the serial arena already guarantees.
func TestWorkerStreamSteadyStateZeroAlloc(t *testing.T) {
	p, reg, _ := parallelFixture(t)
	cancel := smj.NewCanceler(context.Background())
	buf := &candBuf{}
	if n := p.mapStream(reg, buf, cancel); n != reg.joinCard { // warm: table + buffers
		t.Fatalf("stream produced %d candidates, want joinCard=%d", n, reg.joinCard)
	}
	allocs := testing.AllocsPerRun(100, func() {
		p.mapStream(reg, buf, cancel)
	})
	if allocs != 0 {
		t.Fatalf("steady-state stream construction allocates %.2f times per region, want 0", allocs)
	}
}

// TestMapStreamMatchesSerialOrder verifies the canonical stream order: the
// pool's candidate stream must replay join.Hash's emission order with the
// exact vectors and sums the serial path computes.
func TestMapStreamMatchesSerialOrder(t *testing.T) {
	p, reg, s := parallelFixture(t)
	buf := &candBuf{}
	n := p.mapStream(reg, buf, smj.NewCanceler(context.Background()))

	var want []cand
	mapBuf := make([]float64, 2)
	lt, rt := reg.a.tuples, reg.b.tuples
	joinHashReplay(lt, rt, func(li, ri int) {
		v := sumMaps2().Map(lt[li].Vals, rt[ri].Vals, mapBuf)
		want = append(want, cand{
			leftID: lt[li].ID, rightID: rt[ri].ID,
			sum: sumOf(v), flat: s.g.CellOf(v), v: slices.Clone(v),
		})
	})
	if n != len(want) {
		t.Fatalf("stream has %d candidates, want %d", n, len(want))
	}
	for k := 0; k < n; k++ {
		g, w := buf.cands[k], want[k]
		if g.leftID != w.leftID || g.rightID != w.rightID || g.sum != w.sum || g.flat != w.flat || !slices.Equal(g.v, w.v) {
			t.Fatalf("candidate %d diverges: %+v vs %+v", k, g, w)
		}
	}
}

// joinHashReplay re-implements join.Hash's deterministic emission order
// (left outer, right build order inner) as an independent cross-check.
func joinHashReplay(left, right []relation.Tuple, emit func(li, ri int)) {
	build := map[int64][]int{}
	for i, t := range right {
		build[t.JoinKey] = append(build[t.JoinKey], i)
	}
	for li, t := range left {
		for _, ri := range build[t.JoinKey] {
			emit(li, ri)
		}
	}
}

// TestParallelCancellation aborts a parallel run mid-stream and verifies
// the context error surfaces, already-emitted results are a prefix of the
// serial stream, and the pool shuts down without leaking goroutines.
func TestParallelCancellation(t *testing.T) {
	p := smokeProblem(t, 600, 3, datagen.AntiCorrelated, 0.05, 77)
	serial, _ := recordRun(t, p, Options{})
	if len(serial) < 8 {
		t.Fatalf("fixture too small: %d results", len(serial))
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var got []smj.Result
	e := New(Options{Workers: 4})
	_, err := e.RunContext(ctx, p, smj.SinkFunc(func(r smj.Result) {
		got = append(got, smj.Result{LeftID: r.LeftID, RightID: r.RightID, Out: slices.Clone(r.Out)})
		if len(got) == 4 {
			cancel()
		}
	}))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(got) >= len(serial) {
		t.Fatalf("canceled run emitted the whole stream (%d results)", len(got))
	}
	if !sameRuns(got, serial[:len(got)]) {
		t.Fatal("canceled run is not a prefix of the serial stream")
	}
	// The deferred pool.stop ran before RunContext returned; give the
	// runtime a moment to retire worker stacks, then compare.
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestContextParallelismOverridesOptions verifies the smj.WithParallelism
// plumbing: a per-run request overrides Options.Workers in both directions,
// observable through DomComparisons (the one counter that legitimately
// distinguishes the two execution strategies on precheck-heavy rounds).
func TestContextParallelismOverridesOptions(t *testing.T) {
	p := smokeProblem(t, 500, 3, datagen.AntiCorrelated, 0.05, 1234)
	defer func(old int) { precheckMinCands = old }(precheckMinCands)
	precheckMinCands = 1

	_, serialStats := recordRun(t, p, Options{})
	_, parallelStats := recordRun(t, p, Options{Workers: 2})
	if serialStats.DomComparisons == parallelStats.DomComparisons {
		t.Skip("fixture cannot distinguish serial from parallel execution")
	}

	run := func(opts Options, ctx context.Context) smj.Stats {
		stats, err := New(opts).RunContext(ctx, p, smj.SinkFunc(func(smj.Result) {}))
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	forcedSerial := run(Options{Workers: 2}, smj.WithParallelism(context.Background(), 0))
	if forcedSerial.DomComparisons != serialStats.DomComparisons {
		t.Fatalf("WithParallelism(0) did not force the serial path: DomComparisons %d, want %d",
			forcedSerial.DomComparisons, serialStats.DomComparisons)
	}
	forcedParallel := run(Options{}, smj.WithParallelism(context.Background(), 2))
	if forcedParallel.DomComparisons != parallelStats.DomComparisons {
		t.Fatalf("WithParallelism(2) did not force the parallel path: DomComparisons %d, want %d",
			forcedParallel.DomComparisons, parallelStats.DomComparisons)
	}
}

// TestParallelNegativeWorkersUsesGOMAXPROCS smoke-checks the Workers < 0
// convention.
func TestParallelNegativeWorkersUsesGOMAXPROCS(t *testing.T) {
	p := smokeProblem(t, 300, 2, datagen.Independent, 0.05, 9)
	serial, _ := recordRun(t, p, Options{})
	got, _ := recordRun(t, p, Options{Workers: -1})
	if !sameRuns(got, serial) {
		t.Fatal("Workers=-1 diverges from serial")
	}
}

// TestPoolDropReleasesInflight exercises the discard path: a workload with
// region drops must still terminate with every in-flight slot returned
// (the run would wedge its prefetch pipeline otherwise) and an identical
// stream. The fixture was picked for a non-zero RegionsDropped count.
func TestPoolDropReleasesInflight(t *testing.T) {
	p := smokeProblem(t, 350, 3, datagen.Correlated, 0.01, 301)
	serial, serialStats := recordRun(t, p, Options{})
	got, stats := recordRun(t, p, Options{Workers: 2})
	if !sameRuns(got, serial) {
		t.Fatal("parallel run diverges from serial")
	}
	if stats.RegionsDropped != serialStats.RegionsDropped {
		t.Fatalf("RegionsDropped: %d vs %d", stats.RegionsDropped, serialStats.RegionsDropped)
	}
	if serialStats.RegionsDropped == 0 {
		t.Log("fixture produced no region drops; discard path not exercised here (covered by the differential grid)")
	}
}

func TestWorkerSweepLabels(t *testing.T) {
	sweep := workerSweep()
	if len(sweep) < 3 || sweep[0] != 1 || sweep[1] != 2 || sweep[2] != 4 {
		t.Fatalf("workerSweep() = %v, want {1,2,4[,NumCPU]}", sweep)
	}
	_ = fmt.Sprintf("%v", sweep)
}

// sumOf returns the coordinate sum of v (test-side mirror of the stream
// construction's sum).
func sumOf(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}
