package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"progxe/internal/datagen"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// specFixture builds a one-region space plus its materialized candidate
// stream, with attribute trends chosen per trial: "random" streams exercise
// mixed verdicts, "descending" streams make almost every later candidate
// dominate earlier survivors (eviction-heavy rounds), "ascending" streams
// make almost every later candidate stale-rejected.
func specFixture(t *testing.T, rng *rand.Rand, trend string) (*space, []cand) {
	t.Helper()
	val := func(i, n int) float64 {
		switch trend {
		case "descending":
			return float64(n-i)/float64(n) + rng.Float64()*0.05
		case "ascending":
			return float64(i)/float64(n) + rng.Float64()*0.05
		default:
			return rng.Float64()
		}
	}
	mk := func(base, n int) *inputPartition {
		p := newPartition(0, 2)
		for i := 0; i < n; i++ {
			p.add(relation.Tuple{
				ID:      int64(base + i),
				Vals:    []float64{val(i, n), val((i*7)%n, n)},
				JoinKey: int64(i % 6),
			})
		}
		return p
	}
	left := []*inputPartition{mk(0, 60)}
	right := []*inputPartition{mk(1000, 48)}
	regions, _ := buildRegions(left, right, sumMaps2(), 0)
	if len(regions) != 1 || regions[0].joinCard == 0 {
		t.Fatalf("fixture: regions=%d", len(regions))
	}
	var stats smj.Stats
	s, err := buildSpace(regions, 2, 16, &stats, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.emit = func(outTuple) {}
	p := newPool(context.Background(), 1, s, regions, 1, sumMaps2(), 0)
	buf := &candBuf{}
	n := p.mapStream(regions[0], buf, smj.NewCanceler(context.Background()))
	return s, buf.cands[:n]
}

// newTestSpeculator builds a speculator over s without a worker pool: the
// property test drives scanDominated/deltaDominated directly on the test
// goroutine, so launch/take scheduling is not involved.
func newTestSpeculator(s *space, stats *smj.Stats) *speculator {
	sp := &speculator{s: s, stats: stats}
	sp.view.d = s.d
	sp.view.arena.d = s.d
	sp.view.cells = make([]specCellView, len(s.cellList))
	return sp
}

// TestSpeculationVerdictEquivalence is the soundness property behind
// speculative cross-round pipelining, checked over randomized commit/
// speculate interleavings: for every candidate, the stale verdict computed
// against the append-only view at version V, combined with delta
// revalidation over the ring versions V+1..W, must equal the fresh
// full-space phase-1 verdict at its round's version W — on random,
// ascending, and eviction-heavy descending streams, at random speculation
// lags.
func TestSpeculationVerdictEquivalence(t *testing.T) {
	trends := []string{"random", "descending", "ascending"}
	for trial := 0; trial < 9; trial++ {
		trend := trends[trial%len(trends)]
		t.Run(fmt.Sprintf("trial=%d/%s", trial, trend), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(991*trial + 7)))
			var stats smj.Stats
			s, cands := specFixture(t, rng, trend)
			sp := newTestSpeculator(s, &stats)
			st := newPrecheckState(len(s.cellList))

			// Split the candidate stream into rounds of random sizes.
			var rounds [][]cand
			for len(cands) > 0 {
				n := 1 + rng.Intn(20)
				if n > len(cands) {
					n = len(cands)
				}
				rounds = append(rounds, cands[:n])
				cands = cands[n:]
			}

			// stale holds one speculated round's verdicts: the round they
			// cover, the view version they were computed at, the verdicts.
			type stale struct {
				round    int
				version  int
				rejected []bool
			}
			var pending []stale

			for ri, round := range rounds {
				// Consume a speculation for this round if one was taken.
				var sr *stale
				if len(pending) > 0 && pending[0].round == ri {
					sr = &pending[0]
					pending = pending[1:]
				}

				// Assert the property against the frozen pre-round space:
				// stale-reject is final, stale-survive plus delta
				// revalidation equals the fresh verdict.
				if sr != nil {
					comps := 0
					for k := range round {
						cd := &round[k]
						c := s.cellAt(cd.flat)
						if c == nil || c.marked {
							continue // the sequencer's marked-first check; verdict unused
						}
						fresh := s.precheckDominated(c, cd.v, cd.sum, st, &comps)
						spec := sr.rejected[k] || sp.deltaDominated(c, cd, sr.version, &comps)
						if spec != fresh {
							t.Fatalf("round %d cand %d (v=%v): speculative verdict %v (stale@%d=%v), fresh@%d %v",
								ri, k, cd.v, spec, sr.version, sr.rejected[k], sp.version, fresh)
						}
					}
				}

				// Apply the round through the serial protocol, mirroring the
				// engine's routing pass: marked-first, then the full serial
				// verdict (insertSum re-runs phase 1 at the candidate's turn,
				// which subsumes the intra-round filter), recording survivors
				// into the view in routing order.
				var survs []roundSurv
				for k := range round {
					cd := &round[k]
					c := s.cellAt(cd.flat)
					if c == nil || c.marked {
						continue
					}
					if _, ok := s.insertSum(c, cd.leftID, cd.rightID, cd.v, cd.sum); ok {
						v := sp.record(c, cd)
						survs = append(survs, roundSurv{v: v, sum: cd.sum, c: c})
					}
				}
				sp.pushDelta(survs)

				// Speculate a future round at a random lag, like the engine
				// launching scans against prefetched jobs: stale verdicts for
				// round ri+lag computed against the view as of now.
				if len(pending) < 3 && rng.Intn(2) == 0 {
					next := ri + 1
					if len(pending) > 0 {
						next = pending[len(pending)-1].round + 1
					}
					next += rng.Intn(3) // skip some rounds: they run fresh
					if next < len(rounds) {
						target := rounds[next]
						rej := make([]bool, len(target))
						comps := 0
						for k := range target {
							cd := &target[k]
							c := s.cellAt(cd.flat)
							if c == nil || c.marked {
								continue
							}
							if sp.scanDominated(c, cd.v, cd.sum, st, &comps) {
								rej[k] = true
							}
						}
						pending = append(pending, stale{round: next, version: sp.version, rejected: rej})
					}
				}
			}
		})
	}
}

// TestSpeculationEngineCounters pins that the engine actually pipelines:
// a parallel partitioned-commit run with speculation enabled launches
// speculative scans, consumes their verdicts (skipping drain barriers), and
// revalidates survivors — and still matches a speculation-off run result
// for result.
func TestSpeculationEngineCounters(t *testing.T) {
	defer func(old int) { precheckMinCands = old }(precheckMinCands)
	precheckMinCands = 1

	p := smokeProblem(t, 500, 2, datagen.Independent, 0.01, 42)
	run := func(spec int) (smj.Stats, []smj.Result) {
		var got []smj.Result
		e := New(Options{Workers: 2, Committers: 2, SpeculateRounds: spec})
		stats, err := e.Run(p, smj.SinkFunc(func(r smj.Result) { got = append(got, r) }))
		if err != nil {
			t.Fatal(err)
		}
		return stats, got
	}
	off, offRes := run(0)
	on, onRes := run(2)
	if on.SpecRounds == 0 {
		t.Fatal("SpeculateRounds=2 run launched no speculative scans")
	}
	if on.SpecHits == 0 {
		t.Fatal("speculative scans launched but no stale verdicts were consumed")
	}
	if on.SpecHits > on.SpecRounds {
		t.Fatalf("SpecHits %d > SpecRounds %d", on.SpecHits, on.SpecRounds)
	}
	if off.SpecRounds != 0 || off.SpecHits != 0 || off.SpecRevalChecks != 0 {
		t.Fatalf("speculation-off run reported speculation: %+v", off)
	}
	if len(onRes) != len(offRes) {
		t.Fatalf("speculation changed the result count: %d vs %d", len(onRes), len(offRes))
	}
	for i := range onRes {
		if onRes[i].LeftID != offRes[i].LeftID || onRes[i].RightID != offRes[i].RightID {
			t.Fatalf("result %d diverges: %+v vs %+v", i, onRes[i], offRes[i])
		}
	}
}
