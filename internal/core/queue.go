package core

// regionQueue is the inverted priority queue of Algorithm 1: live root
// regions ordered by descending rank (Benefit/Cost), with deterministic
// id-based tie-breaking. It supports in-place rank updates via fix. The
// heap is hand-rolled (rather than container/heap) so push/pop/fix stay
// free of interface boxing and indirect calls on the scheduling path.
type regionQueue struct {
	items []*region
}

// before reports whether a takes priority over b.
func (q *regionQueue) before(a, b *region) bool {
	if a.rank != b.rank {
		return a.rank > b.rank
	}
	return a.id < b.id
}

func (q *regionQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].heapIdx = i
	q.items[j].heapIdx = j
}

func (q *regionQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(q.items[i], q.items[parent]) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *regionQueue) down(i int) {
	n := len(q.items)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && q.before(q.items[r], q.items[l]) {
			best = r
		}
		if !q.before(q.items[best], q.items[i]) {
			return
		}
		q.swap(i, best)
		i = best
	}
}

// push inserts a region.
func (q *regionQueue) push(r *region) {
	r.heapIdx = len(q.items)
	q.items = append(q.items, r)
	q.up(r.heapIdx)
}

// pop removes and returns the highest-ranked region, or nil if empty.
func (q *regionQueue) pop() *region {
	if len(q.items) == 0 {
		return nil
	}
	top := q.items[0]
	q.removeAt(0)
	return top
}

// removeAt deletes the element at heap position i.
func (q *regionQueue) removeAt(i int) {
	n := len(q.items) - 1
	r := q.items[i]
	if i != n {
		q.swap(i, n)
	}
	q.items[n] = nil
	q.items = q.items[:n]
	r.heapIdx = -1
	if i < n {
		q.down(i)
		q.up(i)
	}
}

// fix restores heap order after r's rank changed.
func (q *regionQueue) fix(r *region) {
	if r.heapIdx >= 0 {
		q.down(r.heapIdx)
		q.up(r.heapIdx)
	}
}

// remove deletes r from the queue if present.
func (q *regionQueue) remove(r *region) {
	if r.heapIdx >= 0 {
		q.removeAt(r.heapIdx)
	}
}

// contains reports whether r is currently queued.
func (q *regionQueue) contains(r *region) bool { return r.heapIdx >= 0 }
