package core

import "container/heap"

// regionQueue is the inverted priority queue of Algorithm 1: live root
// regions ordered by descending rank (Benefit/Cost), with deterministic
// id-based tie-breaking. It supports in-place rank updates via fix.
type regionQueue struct {
	items []*region
}

var _ heap.Interface = (*regionQueue)(nil)

func (q *regionQueue) Len() int { return len(q.items) }

func (q *regionQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.rank != b.rank {
		return a.rank > b.rank
	}
	return a.id < b.id
}

func (q *regionQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].heapIdx = i
	q.items[j].heapIdx = j
}

// Push implements heap.Interface; use push instead.
func (q *regionQueue) Push(x any) {
	r := x.(*region)
	r.heapIdx = len(q.items)
	q.items = append(q.items, r)
}

// Pop implements heap.Interface; use pop instead.
func (q *regionQueue) Pop() any {
	n := len(q.items)
	r := q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	r.heapIdx = -1
	return r
}

// push inserts a region.
func (q *regionQueue) push(r *region) { heap.Push(q, r) }

// pop removes and returns the highest-ranked region, or nil if empty.
func (q *regionQueue) pop() *region {
	if len(q.items) == 0 {
		return nil
	}
	return heap.Pop(q).(*region)
}

// fix restores heap order after r's rank changed.
func (q *regionQueue) fix(r *region) {
	if r.heapIdx >= 0 {
		heap.Fix(q, r.heapIdx)
	}
}

// remove deletes r from the queue if present.
func (q *regionQueue) remove(r *region) {
	if r.heapIdx >= 0 {
		heap.Remove(q, r.heapIdx)
	}
}

// contains reports whether r is currently queued.
func (q *regionQueue) contains(r *region) bool { return r.heapIdx >= 0 }
