package core

import (
	"fmt"
	"math"
	"sort"

	"progxe/internal/core/sched"
	"progxe/internal/grid"
	"progxe/internal/mapping"
	"progxe/internal/obs"
	"progxe/internal/par"
	"progxe/internal/preference"
	"progxe/internal/skyline"
	"progxe/internal/smj"
)

// regionState tracks a region's lifecycle.
type regionState int8

const (
	regionLive      regionState = iota // awaiting tuple-level processing
	regionProcessed                    // tuple-level processing completed
	regionDiscarded                    // eliminated; never processed
)

// region is one output region R_{a,b}: the mapped image of an input
// partition pair guaranteed to produce at least one join result (§III-A).
type region struct {
	id   int
	a, b *inputPartition // a from Left, b from Right
	rect grid.Rect       // output-space enclosure from interval propagation

	cells      []int // flat ids of covered output cells, ascending
	minC, maxC []int // coordinate box of the covered cells

	joinCard int // exact join cardinality |IRa ⋈ ITb| (σ·n_a·n_b in Eq. 4–5)
	state    regionState

	// EL-Graph membership, queueing, and edge release live in the
	// scheduler layer (internal/core/sched), keyed by region id.
	benefit float64
	cost    float64
	rank    float64 // Equation 8: Benefit / Cost, as of the last analyse
}

// pairRegions pairs the input partitions and keeps pairs whose exact join
// signatures intersect (guaranteed populated), computing their output
// enclosures via interval propagation — the region candidates before
// domination pruning.
func pairRegions(left, right []*inputPartition, maps *mapping.Set) []*region {
	var all []*region
	for _, a := range left {
		for _, b := range right {
			if !a.sig.MayJoin(b.sig) {
				continue
			}
			all = append(all, &region{
				id:       len(all),
				a:        a,
				b:        b,
				rect:     maps.MapRegion(a.rect, b.rect),
				joinCard: a.sig.JoinCardinality(b.sig),
				state:    regionLive,
			})
		}
	}
	return all
}

// pruneOracle forces region pruning through the retained all-pairs scan
// instead of the box-index sweep; the differential tests flip it to pin
// that both paths keep and prune identical region sets (and therefore
// identical emission streams).
var pruneOracle = false

// prunedRegions marks every candidate region whose enclosure is dominated
// by another candidate's enclosure: X is eliminated if some
// guaranteed-populated region's UPPER point dominates LOWER(X) (Example 2).
// Pruning by a region that is itself pruned stays sound: the domination
// relation over enclosures is a strict partial order and chains down to a
// surviving witness region. The verdicts come from the shared output-space
// box index (grid.DominatedRects) in sub-quadratic time; the O(n²) scan is
// retained as the differential oracle and benchmark baseline, fanned out
// across workers. Both paths mark the same set, so the choice is invisible
// to the engine's output.
func prunedRegions(all []*region, workers int) []bool {
	rects := make([]grid.Rect, len(all))
	for i, r := range all {
		rects[i] = r.rect
	}
	if pruneOracle {
		return grid.DominatedRectsQuadratic(rects, workers)
	}
	return grid.DominatedRects(rects)
}

// buildRegions pairs the input partitions into candidate regions and
// applies region-level domination pruning (Output Space Look-Ahead step 1).
// The returned regions are live; pruned is the count eliminated before any
// tuple work. The verdict set is independent of the worker count.
func buildRegions(left, right []*inputPartition, maps *mapping.Set, workers int) (regions []*region, pruned int) {
	return buildRegionsProf(left, right, maps, workers, nil)
}

// buildRegionsProf is buildRegions with phase attribution: pairing reports
// as region-build, domination pruning as prune. A nil profiler costs
// nothing beyond two no-op calls.
func buildRegionsProf(left, right []*inputPartition, maps *mapping.Set, workers int, prof *obs.Profiler) (regions []*region, pruned int) {
	t0 := prof.Clock()
	all := pairRegions(left, right, maps)
	prof.EndSequencer(obs.PhaseRegionBuild, t0)
	t1 := prof.Clock()
	dominated := prunedRegions(all, workers)
	prof.EndSequencer(obs.PhasePrune, t1)
	for _, d := range dominated {
		if d {
			pruned++
		}
	}
	for i, r := range all {
		if !dominated[i] {
			regions = append(regions, r)
		}
	}
	// Renumber the survivors for compact ids.
	for i, r := range regions {
		r.id = i
	}
	return regions, pruned
}

// buildSpace lays the output grid over the union of the live regions'
// enclosures, computes cell coverage and RegCounts, applies static cell
// marking (Example 3), and initializes the Dom/Dependent counters. The
// per-region coverage enumeration and the per-cell static-marking verdicts
// fan out across workers — both write only region-local (resp. index-local)
// state — while cell creation and the mark sweep stay serial and in
// deterministic order, so the built space is identical for any worker
// count.
func buildSpace(regions []*region, d, outputCells int, stats *smj.Stats, workers int) (*space, error) {
	if len(regions) == 0 {
		return &space{d: d, cells: map[int]*cell{}, stats: stats}, nil
	}
	bounds := regions[0].rect
	for _, r := range regions[1:] {
		bounds = bounds.Union(r.rect)
	}
	gb, err := grid.NewBounds(bounds.Lower, bounds.Upper)
	if err != nil {
		return nil, fmt.Errorf("core: output bounds: %w", err)
	}
	g, err := grid.Uniform(gb, outputCells)
	if err != nil {
		return nil, fmt.Errorf("core: output grid: %w", err)
	}
	s := &space{d: d, g: g, cells: make(map[int]*cell), stats: stats}

	// Coverage: which regions can deposit tuples into which cells. Each
	// region's cell set and coordinate box depend only on the region, and
	// the covered set is a full coordinate box in ascending flat order, so
	// the box corners are the first and last flat ids.
	par.For(len(regions), workers, func(lo, hi int) {
		for ri := lo; ri < hi; ri++ {
			r := regions[ri]
			r.cells = g.CellsOverlapping(r.rect, r.cells[:0])
			sort.Ints(r.cells)
			r.minC = make([]int, d)
			r.maxC = make([]int, d)
			g.Coords(r.cells[0], r.minC)
			g.Coords(r.cells[len(r.cells)-1], r.maxC)
		}
	})
	for _, r := range regions {
		for _, flat := range r.cells {
			c := s.cells[flat]
			if c == nil {
				coords := make([]int, d)
				g.Coords(flat, coords)
				lower := make([]float64, d)
				g.CellLower(coords, lower)
				c = &cell{flat: flat, coords: coords, lower: lower, activeIdx: -1}
				s.cells[flat] = c
			}
			c.coveredBy = append(c.coveredBy, r.id)
			c.regCount++
		}
	}
	s.cellList = make([]*cell, 0, len(s.cells))
	for _, c := range s.cells {
		s.cellList = append(s.cellList, c)
	}
	sort.Slice(s.cellList, func(i, j int) bool { return s.cellList[i].flat < s.cellList[j].flat })
	for i, c := range s.cellList {
		c.seq = int32(i)
	}
	s.idx.init(g, s.cellList)
	s.arena.d = d

	// Static marking: cells whose LOWER point is dominated by the UPPER
	// point of any guaranteed-populated region are non-contributing. The
	// verdicts are computed in parallel; the marks are applied serially in
	// cell-list order so counters match the serial build exactly.
	staticMark := make([]bool, len(s.cellList))
	par.For(len(s.cellList), workers, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			c := s.cellList[ci]
			for _, r := range regions {
				if preference.DominatesMin(r.rect.Upper, c.lower) {
					staticMark[ci] = true
					break
				}
			}
		}
	})
	for ci, c := range s.cellList {
		if staticMark[ci] {
			s.mark(c)
		}
	}

	// Counted (unmarked-at-build) cells form the initial active set: until
	// they finalize they can block emission of cells above them — the
	// Dom/Dependent bookkeeping of §V in its amortized realization.
	for _, c := range s.cellList {
		c.counted = !c.marked
		if c.counted {
			c.activeIdx = len(s.active)
			s.active = append(s.active, c)
		}
	}
	return s, nil
}

// buildActiveTree installs the cumulative active-cell tree behind
// progCount's orthant queries, mirroring the current active set.
// Maintaining the tree costs one point update per later finalization, so
// construction is deferred until the first progCount call that actually
// exceeds the scan budget (see progCount) — runs whose regions stay small
// never pay for it. Eligibility is gated by fenCellLimit (the tree is
// sized by the grid's total cell count); on the (impossible under that
// cap) constructor failure the space stays in scan mode.
func (s *space) buildActiveTree() {
	s.fenEligible = false
	dims := make([]int, s.d)
	for i := range dims {
		dims[i] = s.g.CellsPerDim(i)
	}
	fen, err := grid.NewFenwick(dims)
	if err != nil {
		return
	}
	s.fen = fen
	for _, c := range s.active {
		s.fen.Add(c.coords, 1)
	}
	s.stats.FenwickUpdates += len(s.active)
}

// schedBoxes projects the regions' coordinate boxes into the scheduler
// layer's representation (aliasing, read-only).
func schedBoxes(regions []*region) []sched.Box {
	boxes := make([]sched.Box, len(regions))
	for i, r := range regions {
		boxes[i] = sched.Box{Min: r.minC, Max: r.maxC}
	}
	return boxes
}

// progCountScanBudget is the solos×active product above which progCount
// prefers the Fenwick orthant counts over the direct active-set scan. Both
// paths are exact — the dispatch trades constant factors, never fidelity —
// so the choice cannot affect ranks or schedules.
const progCountScanBudget = 1 << 20

// fenCellLimit caps the grid size the active-cell tree will mirror (int32
// per cell: 64 MiB at the cap). It deliberately exceeds denseLimit so the
// map-fallback index mode keeps bounded rankings; past it — the extreme
// tail of manual OutputCells choices — progCount stays an exact scan,
// consistent with that mode's documented speed-for-memory trade.
var fenCellLimit = 1 << 24

// progCount implements Definition 2 exactly: the number of the region's
// cells that can neither be eliminated nor have output dependencies on
// cells belonging to other still-unprocessed regions — the cells whose
// early output depends solely on this region's own tuple-level processing.
// Requires a live region.
//
// For a live region the candidate cells and the non-blocking active cells
// coincide: both are the region's "solo" cells — active cells covered by no
// other unprocessed region (RegCount 1). A candidate is counted when its
// closed lower orthant holds no active cell outside that solo set. Small
// instances answer that with a direct scan of the active set (early-exit on
// the first blocker); large ones through the cumulative active-cell
// Fenwick: retract the solos, and a candidate is free iff its orthant count
// reads zero. The retraction is restored before returning, so the tree
// stays the exact image of the active set.
func progCount(s *space, r *region) int {
	solos := s.soloScratch[:0]
	for _, flat := range r.cells {
		c := s.cellAt(flat)
		if c.activeIdx >= 0 && remainingExcluding(c, r) == 0 {
			solos = append(solos, c)
		}
	}
	s.soloScratch = solos[:0]
	count := 0
	if s.fenEligible && len(solos)*len(s.active) > progCountScanBudget {
		s.buildActiveTree()
	}
	if s.fen != nil && len(solos)*len(s.active) > progCountScanBudget {
		for _, c := range solos {
			s.fen.Add(c.coords, -1)
		}
		for _, c := range solos {
			if !c.marked && s.fen.Count(c.coords) == 0 {
				count++
			}
		}
		for _, c := range solos {
			s.fen.Add(c.coords, 1)
		}
		s.stats.FenwickUpdates += 2 * len(solos)
		return count
	}
	packed := s.idx.packed
	for _, c := range solos {
		if c.marked {
			continue
		}
		free := true
		for _, q := range s.active {
			if q == c {
				continue
			}
			if packed {
				if !keyLeq(q.key, c.key) {
					continue
				}
			} else if !grid.LeqAll(q.coords, c.coords) {
				continue
			}
			if remainingExcluding(q, r) != 0 {
				free = false
				break
			}
		}
		if free {
			count++
		}
	}
	return count
}

// remainingExcluding returns how many unprocessed regions other than r still
// cover the cell.
func remainingExcluding(c *cell, r *region) int {
	n := c.regCount
	if r.state == regionLive && c.coveredByRegion(r.id) {
		n--
	}
	return n
}

// analyse recomputes the benefit (Eq. 2), cost (Eq. 7) and rank (Eq. 8) of a
// region — procedure analyse-Cost-vs-Benefit of Algorithm 1.
func analyse(s *space, r *region, d, outputCells int) {
	card := skyline.EstimateCardinality(float64(r.joinCard), d)
	pc := progCount(s, r)
	total := len(r.cells)
	if total == 0 {
		total = 1
	}
	r.benefit = float64(pc) / float64(total) * card
	r.cost = analyseCost(r, d, outputCells, total)
	r.rank = r.benefit / r.cost
}

// analyseCardinality is the RankCardinality benefit model: the region's
// estimated skyline cardinality stands in for the ProgCount-weighted
// benefit, over the unchanged Equation 7 cost. It reads only the region's
// construction-time quantities, so a refresh is O(1) and independent of the
// output space's current state.
func analyseCardinality(r *region, d, outputCells int) {
	r.benefit = skyline.EstimateCardinality(float64(r.joinCard), d)
	total := len(r.cells)
	if total == 0 {
		total = 1
	}
	r.cost = analyseCost(r, d, outputCells, total)
	r.rank = r.benefit / r.cost
}

// analyseCost is the cost model, Equation 7. CPavg follows §IV-C's k·d
// comparable partitions; savg is the expected occupancy of a populated cell.
func analyseCost(r *region, d, outputCells, totalCells int) float64 {
	nanb := float64(r.a.len()) * float64(r.b.len())
	jc := float64(r.joinCard)
	cp := float64(outputCells * d)
	savg := jc / float64(totalCells)
	if savg < 1 {
		savg = 1
	}
	work := cp * savg
	alpha := skyline.KungAlpha(d)
	logTerm := 1.0
	if work > 1 {
		logTerm = math.Pow(math.Log2(work), alpha)
	}
	cost := nanb + jc + jc*work*logTerm
	if cost <= 0 {
		cost = 1
	}
	return cost
}
