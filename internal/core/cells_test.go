package core

import (
	"testing"

	"progxe/internal/smj"
)

// mkSpace builds a space over one region covering a 2-d box, giving direct
// access to the tuple-level protocol.
func mkSpace(t *testing.T, outputCells int) (*space, *region) {
	t.Helper()
	left := []*inputPartition{mkPart(0, []float64{0, 0}, []float64{5, 5})}
	right := []*inputPartition{mkPart(1, []float64{0, 0}, []float64{5, 5})}
	regions, pruned := buildRegions(left, right, sumMaps2(), 0)
	if pruned != 0 || len(regions) != 1 {
		t.Fatalf("setup: pruned=%d regions=%d", pruned, len(regions))
	}
	var stats smj.Stats
	s, err := buildSpace(regions, 2, outputCells, &stats, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.emit = func(outTuple) {}
	return s, regions[0]
}

// insertVec drives the tuple-level protocol with a throwaway id pair.
func insertVec(s *space, c *cell, v ...float64) bool {
	_, ok := s.insert(c, 1, 1, v)
	return ok
}

func TestInsertDominanceWithinCell(t *testing.T) {
	s, _ := mkSpace(t, 4)
	c := s.cellAt(s.g.CellOf([]float64{1, 1}))
	if !insertVec(s, c, 1, 1) {
		t.Fatal("first tuple must survive")
	}
	if insertVec(s, c, 1.2, 1.2) {
		t.Fatal("dominated tuple in same cell must be rejected")
	}
	if !insertVec(s, c, 0.5, 0.5) {
		t.Fatal("dominating tuple must survive")
	}
	if len(c.tuples) != 1 || c.tuples[0].v[0] != 0.5 {
		t.Fatalf("dominated survivor must be evicted: %v", c.tuples)
	}
}

func TestInsertTiesBothSurvive(t *testing.T) {
	s, _ := mkSpace(t, 4)
	c := s.cellAt(s.g.CellOf([]float64{2, 2}))
	if !insertVec(s, c, 2, 2) || !insertVec(s, c, 2, 2) {
		t.Fatal("equal tuples must both survive")
	}
	if len(c.tuples) != 2 {
		t.Fatalf("want 2 survivors, got %d", len(c.tuples))
	}
}

func TestPopulateMarksStrictUppers(t *testing.T) {
	s, _ := mkSpace(t, 4)
	// Insert into the second cell along each axis; cells strictly above in
	// both dimensions become non-contributing.
	p := []float64{3, 3}
	c := s.cellAt(s.g.CellOf(p))
	if !insertVec(s, c, p...) {
		t.Fatal("survivor expected")
	}
	marked := 0
	for _, q := range s.cellList {
		if q.marked {
			marked++
			// Marked cells must be strictly above c (the static pass
			// marked none: a single region's upper bound dominates only
			// cells outside its own lower region... verify dynamically
			// marked cells only).
			for i := range q.coords {
				if q.coords[i] <= c.coords[i] {
					t.Fatalf("marked cell %v not strictly above %v", q.coords, c.coords)
				}
			}
		}
	}
	if marked == 0 {
		t.Fatal("population must mark the strict upper orthant")
	}
	// Tuples aimed at marked cells are discarded without comparisons.
	mc := s.cellAt(s.g.CellOf([]float64{9, 9}))
	if !mc.marked {
		t.Skip("cell (9,9) not marked in this layout")
	}
	if insertVec(s, mc, 9, 9) {
		t.Fatal("insert into marked cell must be discarded")
	}
	if s.stats.MappedDiscarded == 0 {
		t.Fatal("discard must be counted")
	}
}

func TestInsertCrossCellEviction(t *testing.T) {
	s, _ := mkSpace(t, 8)
	// A tuple in a slice-below cell (same row) evicts dominated tuples in a
	// later cell.
	hi := s.cellAt(s.g.CellOf([]float64{8, 1}))
	if !insertVec(s, hi, 8, 1) {
		t.Fatal("survivor expected")
	}
	lo := s.cellAt(s.g.CellOf([]float64{2, 1}))
	if !insertVec(s, lo, 2, 1) {
		t.Fatal("dominating tuple must survive")
	}
	if len(hi.tuples) != 0 {
		t.Fatalf("dominated cross-cell tuple must be evicted: %v", hi.tuples)
	}
	// And the reverse: a dominated newcomer in a slice-above cell dies.
	if insertVec(s, hi, 8, 1) {
		t.Fatal("newcomer dominated from slice-below cell must be rejected")
	}
}

func TestFinalizeEmissionLifecycle(t *testing.T) {
	s, r := mkSpace(t, 4)
	var emitted []outTuple
	s.emit = func(t outTuple) { emitted = append(emitted, t) }
	c := s.cellAt(s.g.CellOf([]float64{0.5, 0.5}))
	if !insertVec(s, c, 0.5, 0.5) {
		t.Fatal("survivor expected")
	}
	if len(emitted) != 0 {
		t.Fatal("nothing may be emitted before finalization")
	}
	s.regionDone(r.cells)
	if len(emitted) != 1 {
		t.Fatalf("finalizing the only region must emit the survivor, got %d", len(emitted))
	}
	if got := s.unemitted(); len(got) != 0 {
		t.Fatalf("unemitted leftovers: %d", len(got))
	}
	if s.stats.ResultCount != 1 {
		t.Fatalf("stats.ResultCount = %d", s.stats.ResultCount)
	}
}

func TestSliceBelowOrEqual(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 1}, []int{1, 1}, true},  // equal
		{[]int{1, 2}, []int{2, 2}, true},  // slice below
		{[]int{0, 0}, []int{1, 1}, false}, // strict orthant: excluded
		{[]int{2, 1}, []int{1, 2}, false}, // incomparable
		{[]int{2, 2}, []int{1, 2}, false}, // above
	}
	for _, c := range cases {
		if got := sliceBelowOrEqual(c.a, c.b); got != c.want {
			t.Errorf("sliceBelowOrEqual(%v, %v) = %v", c.a, c.b, got)
		}
	}
}

func TestCoveredByRegion(t *testing.T) {
	c := &cell{coveredBy: []int{2, 5, 9}}
	for _, id := range []int{2, 5, 9} {
		if !c.coveredByRegion(id) {
			t.Fatalf("id %d must be covered", id)
		}
	}
	for _, id := range []int{0, 3, 10} {
		if c.coveredByRegion(id) {
			t.Fatalf("id %d must not be covered", id)
		}
	}
}
