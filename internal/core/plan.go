package core

import (
	"context"
	"fmt"

	"progxe/internal/grid"
	"progxe/internal/mapping"
	"progxe/internal/obs"
	"progxe/internal/preference"
	"progxe/internal/smj"
)

// Prepared is a reusable snapshot of the plan-construction phases of a ProgXe
// run: the canonicalized problem, the partitioned inputs, and the surviving
// region blueprints after output-space look-ahead pruning. Everything a Plan
// holds is immutable once prepared — input partitions are never written
// during a run and the per-run mutable region state (lifecycle, scheduler
// ranks, cell coverage) lives in fresh region structs materialized per run —
// so one Plan can back any number of concurrent RunPreparedContext calls.
//
// A Prepared plan is only valid for engines whose plan-affecting options (InputCells,
// PushThrough, Partitioning) match the preparing engine's; RunPlanContext
// rejects mismatches. Run-time options (ordering, ranker, workers,
// committers, output grid, tracing, profiling) may differ freely.
type Prepared struct {
	problem *smj.Problem       // canonicalized
	pref    *preference.Pareto // original orientation, for emission
	d       int

	lparts, rparts []*inputPartition
	blueprints     []regionBlueprint

	pruned     int // regions eliminated by look-ahead pruning
	pushPruned int // source tuples removed by partial push-through

	opts planOpts
}

// regionBlueprint is the immutable construction-time core of one surviving
// region, in post-prune order (blueprint index == region id).
type regionBlueprint struct {
	a, b     *inputPartition
	rect     grid.Rect
	joinCard int
}

// planOpts is the plan-affecting subset of Options: the knobs that change
// which partitions and regions exist, as opposed to how a run processes them.
type planOpts struct {
	inputCells   int
	pushThrough  bool
	partitioning Partitioning
}

func (e *Engine) planOpts() planOpts {
	return planOpts{
		inputCells:   e.opts.InputCells,
		pushThrough:  e.opts.PushThrough,
		partitioning: e.opts.Partitioning,
	}
}

// Problem returns the canonicalized problem the plan was prepared from.
func (pl *Prepared) Problem() *smj.Problem { return pl.problem }

// Regions returns the number of surviving regions plus the count eliminated
// by look-ahead pruning — the workload a run of this plan starts from.
func (pl *Prepared) Regions() (live, pruned int) { return len(pl.blueprints), pl.pruned }

// materialize clones the blueprints into fresh per-run region structs: one
// backing allocation, live state, ids in blueprint order. Cell coverage
// (cells/minC/maxC) is left nil for buildSpace to fill, exactly like regions
// arriving straight from buildRegionsProf.
func (pl *Prepared) materialize() []*region {
	backing := make([]region, len(pl.blueprints))
	out := make([]*region, len(pl.blueprints))
	for i := range pl.blueprints {
		bp := &pl.blueprints[i]
		backing[i] = region{
			id: i, a: bp.a, b: bp.b, rect: bp.rect,
			joinCard: bp.joinCard, state: regionLive,
		}
		out[i] = &backing[i]
	}
	return out
}

// PrepareContext runs the plan-construction phases — canonicalization,
// partial push-through, input partitioning, region pairing, and look-ahead
// pruning — and snapshots them into a reusable Prepared plan without processing any
// tuple. The phases report to the engine's profiler exactly as a full run
// would (partition / region-build / prune), so a later RunPlanContext on a
// fresh profiler shows them at ~0: the whole point of caching the Plan.
func (e *Engine) PrepareContext(ctx context.Context, p *smj.Problem) (*Prepared, error) {
	var stats smj.Stats
	workers, _, _ := e.resolveParallelism(ctx)
	return e.prepare(smj.NewCanceler(ctx), p, workers, &stats)
}

// prepare is the plan-construction half of RunContext. Partial counters
// (push-through pruning) land in stats even when a cancellation aborts the
// preparation, matching the historical RunContext behavior.
func (e *Engine) prepare(cancel *smj.Canceler, p *smj.Problem, workers int, stats *smj.Stats) (*Prepared, error) {
	prof := e.opts.Profiler
	cp, d, err := checkProblem(p)
	if err != nil {
		return nil, err
	}
	left, right := cp.Left, cp.Right
	pl := &Prepared{problem: cp, pref: p.Pref, d: d, opts: e.planOpts()}

	tPartition := prof.Clock()
	if e.opts.PushThrough {
		var prunedL, prunedR int
		left, prunedL = smj.PushThroughContext(left, cp.Maps, mapping.Left, cancel)
		right, prunedR = smj.PushThroughContext(right, cp.Maps, mapping.Right, cancel)
		stats.PushPruned = prunedL + prunedR
		pl.pushPruned = prunedL + prunedR
		if err := cancel.Now(); err != nil {
			return nil, err
		}
	}

	pl.lparts, err = e.partition(left, cp.Maps, mapping.Left)
	if err != nil {
		return nil, err
	}
	pl.rparts, err = e.partition(right, cp.Maps, mapping.Right)
	if err != nil {
		return nil, err
	}
	prof.EndSequencer(obs.PhasePartition, tPartition)

	// Output space look-ahead (§III-A).
	regions, pruned := buildRegionsProf(pl.lparts, pl.rparts, cp.Maps, workers, prof)
	pl.pruned = pruned
	pl.blueprints = make([]regionBlueprint, len(regions))
	for i, r := range regions {
		pl.blueprints[i] = regionBlueprint{a: r.a, b: r.b, rect: r.rect, joinCard: r.joinCard}
	}
	return pl, nil
}

// RunPlanContext evaluates a previously prepared Plan, streaming results to
// sink under the same contract as RunContext — identical emissions, trace
// events, and counters, minus the plan-construction work the Plan already
// paid for. The plan must have been prepared by an engine with the same
// plan-affecting options.
func (e *Engine) RunPlanContext(ctx context.Context, pl *Prepared, sink smj.Sink) (smj.Stats, error) {
	var stats smj.Stats
	if pl == nil {
		return stats, fmt.Errorf("core: nil plan")
	}
	if pl.opts != e.planOpts() {
		return stats, fmt.Errorf("core: plan was prepared under different plan-affecting options")
	}
	cancel := smj.NewCanceler(ctx)
	if err := cancel.Now(); err != nil {
		return stats, err
	}
	workers, committers, speculate := e.resolveParallelism(ctx)
	return e.runPlan(ctx, cancel, pl, sink, workers, committers, speculate)
}
