package core

import "testing"

func qr(id int, rank float64) *region {
	return &region{id: id, rank: rank, heapIdx: -1}
}

func TestQueueOrdering(t *testing.T) {
	var q regionQueue
	a, b, c := qr(1, 0.5), qr(2, 2.0), qr(3, 1.0)
	q.push(a)
	q.push(b)
	q.push(c)
	if got := q.pop(); got != b {
		t.Fatalf("pop = %d, want highest rank 2", got.id)
	}
	if got := q.pop(); got != c {
		t.Fatalf("pop = %d, want rank 1.0", got.id)
	}
	if got := q.pop(); got != a {
		t.Fatalf("pop = %d, want rank 0.5", got.id)
	}
	if q.pop() != nil {
		t.Fatal("empty queue must pop nil")
	}
}

func TestQueueTieBreakByID(t *testing.T) {
	var q regionQueue
	x, y := qr(7, 1.0), qr(3, 1.0)
	q.push(x)
	q.push(y)
	if got := q.pop(); got != y {
		t.Fatalf("tie must break by smaller id, got %d", got.id)
	}
}

func TestQueueFix(t *testing.T) {
	var q regionQueue
	a, b := qr(1, 1.0), qr(2, 2.0)
	q.push(a)
	q.push(b)
	a.rank = 5.0
	q.fix(a)
	if got := q.pop(); got != a {
		t.Fatalf("after fix, pop = %d, want updated region", got.id)
	}
}

func TestQueueRemove(t *testing.T) {
	var q regionQueue
	a, b, c := qr(1, 1.0), qr(2, 2.0), qr(3, 3.0)
	q.push(a)
	q.push(b)
	q.push(c)
	if !q.contains(b) {
		t.Fatal("b must be queued")
	}
	q.remove(b)
	if q.contains(b) || b.heapIdx != -1 {
		t.Fatal("removed region must leave the queue")
	}
	if got := q.pop(); got != c {
		t.Fatalf("pop = %d, want 3", got.id)
	}
	if got := q.pop(); got != a {
		t.Fatalf("pop = %d, want 1", got.id)
	}
	// Removing a non-member is a no-op.
	q.remove(b)
}

func TestQueueHeapIndexConsistency(t *testing.T) {
	var q regionQueue
	regs := make([]*region, 20)
	for i := range regs {
		regs[i] = qr(i, float64((i*7)%13))
		q.push(regs[i])
	}
	for _, r := range regs[:10] {
		q.remove(r)
	}
	for _, r := range regs {
		if r.heapIdx >= 0 {
			if q.items[r.heapIdx] != r {
				t.Fatalf("heapIdx of region %d stale", r.id)
			}
		}
	}
	prev := 1e18
	for {
		r := q.pop()
		if r == nil {
			break
		}
		if r.rank > prev {
			t.Fatal("pops must be non-increasing in rank")
		}
		prev = r.rank
	}
}
