package core

import (
	"fmt"
	"runtime"
	"strings"

	"progxe/internal/core/sched"
	"progxe/internal/grid"
	"progxe/internal/mapping"
	"progxe/internal/smj"
)

// Plan summarizes what the output-space look-ahead would do for a problem
// without performing any tuple-level work: partition counts, region counts
// and pruning, output-grid shape, cell marking, and the EL-Graph profile.
// It is the "EXPLAIN" view of a ProgXe execution.
type Plan struct {
	LeftPartitions  int
	RightPartitions int
	InputCells      int // g actually used per dimension (left side)
	OutputCells     int // k per output dimension
	Regions         int // live regions after pruning
	RegionsPruned   int // eliminated by look-ahead alone
	CoveredCells    int
	MarkedCells     int // statically marked non-contributing
	Roots           int // EL-Graph roots
	Edges           int // EL-Graph edges
	OutputBounds    grid.Rect
	EstimatedJoin   int // total join results across live regions
}

// Explain runs the look-ahead phases of the engine (§III-A and the EL-Graph
// construction of §IV) and reports the resulting plan.
func Explain(p *smj.Problem, opts Options) (Plan, error) {
	var plan Plan
	opts = opts.withDefaults()
	if opts.Workers < 0 {
		// Same normalization RunContext applies before the setup passes.
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	cp, d, err := checkProblem(p)
	if err != nil {
		return plan, err
	}
	left, right := cp.Left, cp.Right
	if opts.PushThrough {
		left, _ = smj.PushThrough(left, cp.Maps, mapping.Left)
		right, _ = smj.PushThrough(right, cp.Maps, mapping.Right)
	}
	lparts, err := partitionInput(left, cp.Maps, mapping.Left, opts.InputCells)
	if err != nil {
		return plan, err
	}
	rparts, err := partitionInput(right, cp.Maps, mapping.Right, opts.InputCells)
	if err != nil {
		return plan, err
	}
	plan.LeftPartitions = len(lparts)
	plan.RightPartitions = len(rparts)
	plan.InputCells = opts.InputCells
	if plan.InputCells == 0 {
		plan.InputCells = autoCells(left.Len(), max(1, len(cp.Maps.UsedAttrs(mapping.Left))))
	}

	regions, pruned := buildRegions(lparts, rparts, cp.Maps, opts.Workers)
	plan.Regions = len(regions)
	plan.RegionsPruned = pruned
	for _, r := range regions {
		plan.EstimatedJoin += r.joinCard
	}

	outCells := opts.OutputCells
	if outCells == 0 {
		outCells = autoOutputCells(d)
	}
	plan.OutputCells = outCells
	var stats smj.Stats
	s, err := buildSpace(regions, d, outCells, &stats, opts.Workers)
	if err != nil {
		return plan, err
	}
	plan.CoveredCells = len(s.cellList)
	plan.MarkedCells = stats.CellsMarked
	if s.g != nil {
		b := s.g.Bounds()
		plan.OutputBounds = grid.Rect{Lower: b.Lo, Upper: b.Hi}
	}

	if len(regions) > 0 {
		dims := make([]int, d)
		for i := range dims {
			dims[i] = s.g.CellsPerDim(i)
		}
		c := sched.NewProgressive(schedBoxes(regions), dims, func(int) float64 { return 0 }, opts.Workers).Counters()
		plan.Edges = c.Edges
		plan.Roots = c.Roots
	}
	return plan, nil
}

// planPartitions is the look-ahead preamble shared by the Plan* benchmark
// entry points: problem validation, the pre-partitioning push-through a
// real run would apply (so the derived geometry matches RunContext's), and
// input partitioning under the configured method. opts must already carry
// defaults.
func planPartitions(p *smj.Problem, opts Options) (lparts, rparts []*inputPartition, cp *smj.Problem, d int, err error) {
	cp, d, err = checkProblem(p)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	left, right := cp.Left, cp.Right
	if opts.PushThrough {
		left, _ = smj.PushThrough(left, cp.Maps, mapping.Left)
		right, _ = smj.PushThrough(right, cp.Maps, mapping.Right)
	}
	e := New(opts)
	if lparts, err = e.partition(left, cp.Maps, mapping.Left); err != nil {
		return nil, nil, nil, 0, err
	}
	if rparts, err = e.partition(right, cp.Maps, mapping.Right); err != nil {
		return nil, nil, nil, 0, err
	}
	return lparts, rparts, cp, d, nil
}

// PlanBoxes runs the look-ahead phases (§III-A) and returns the live
// regions' coordinate boxes on the output grid together with the grid's
// per-dimension cell counts — the scheduler layer's exact input. Benchmarks
// use it to measure scheduler construction and edge release in isolation
// from tuple-level work.
func PlanBoxes(p *smj.Problem, opts Options) ([]sched.Box, []int, error) {
	opts = opts.withDefaults()
	if opts.Workers < 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	lparts, rparts, cp, d, err := planPartitions(p, opts)
	if err != nil {
		return nil, nil, err
	}
	regions, _ := buildRegions(lparts, rparts, cp.Maps, opts.Workers)
	outCells := opts.OutputCells
	if outCells == 0 {
		outCells = autoOutputCells(d)
	}
	var stats smj.Stats
	s, err := buildSpace(regions, d, outCells, &stats, opts.Workers)
	if err != nil {
		return nil, nil, err
	}
	if len(regions) == 0 {
		return nil, nil, nil
	}
	dims := make([]int, d)
	for i := range dims {
		dims[i] = s.g.CellsPerDim(i)
	}
	return schedBoxes(regions), dims, nil
}

// PlanRects runs the look-ahead pairing of §III-A and returns every
// candidate region's output-space enclosure BEFORE domination pruning — the
// exact input of the region-pruning pass. Benchmarks use it to measure the
// box-index pruning sweep against the retained O(n²) scan in isolation.
func PlanRects(p *smj.Problem, opts Options) ([]grid.Rect, error) {
	opts = opts.withDefaults()
	lparts, rparts, cp, _, err := planPartitions(p, opts)
	if err != nil {
		return nil, err
	}
	all := pairRegions(lparts, rparts, cp.Maps)
	rects := make([]grid.Rect, len(all))
	for i, r := range all {
		rects[i] = r.rect
	}
	return rects, nil
}

// String renders the plan as a multi-line report.
func (p Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "input partitions:  %d × %d (g=%d)\n", p.LeftPartitions, p.RightPartitions, p.InputCells)
	fmt.Fprintf(&sb, "regions:           %d live, %d pruned by look-ahead\n", p.Regions, p.RegionsPruned)
	fmt.Fprintf(&sb, "estimated joins:   %d\n", p.EstimatedJoin)
	fmt.Fprintf(&sb, "output grid:       k=%d over %s\n", p.OutputCells, p.OutputBounds)
	fmt.Fprintf(&sb, "covered cells:     %d (%d marked non-contributing)\n", p.CoveredCells, p.MarkedCells)
	fmt.Fprintf(&sb, "EL-graph:          %d edges, %d roots", p.Edges, p.Roots)
	return sb.String()
}
