package core

import (
	"sort"

	"progxe/internal/mapping"
	"progxe/internal/relation"
)

// Partitioning selects the input space-partitioning method. §III notes the
// framework works with other space-partitioning structures than the uniform
// grid "with some modifications"; the kd-split partitioner realizes that
// remark: it recursively median-splits the input on the widest used
// dimension, producing balanced partitions that adapt to skew (uniform grids
// leave partitions empty under correlated data).
type Partitioning int8

const (
	// PartitionGrid is the paper's uniform multi-dimensional grid.
	PartitionGrid Partitioning = iota
	// PartitionKD recursively median-splits on the widest used dimension.
	PartitionKD
)

// String names the partitioning method.
func (p Partitioning) String() string {
	switch p {
	case PartitionGrid:
		return "grid"
	case PartitionKD:
		return "kd"
	default:
		return "unknown"
	}
}

// partitionInputKD splits the relation into at most maxParts balanced
// partitions by recursive median splits over the used attributes. Like the
// grid partitioner it returns partitions with tight bounding boxes and exact
// join signatures; unlike it, partition populations are near-uniform even on
// heavily skewed inputs.
func partitionInputKD(rel *relation.Relation, maps *mapping.Set, side mapping.Side, maxParts int) ([]*inputPartition, error) {
	used := maps.UsedAttrs(side)
	if len(rel.Tuples) == 0 {
		return nil, nil
	}
	if maxParts <= 0 {
		// Auto-sizing keeps n << N (§IV): ≈ 1 partition per 48 tuples, at
		// most 64 per source, like the grid partitioner's autoCells.
		maxParts = int(float64(len(rel.Tuples)) / 48)
		if maxParts > 64 {
			maxParts = 64
		}
	}
	if maxParts < 1 {
		maxParts = 1
	}
	// An explicit budget may exceed the auto cap — the fine-partition
	// scheduler workloads drive fanouts of 10⁴–10⁵ region pairs — but is
	// still bounded to keep split recursion and region pairing sane.
	if maxParts > 4096 {
		maxParts = 4096
	}
	if len(used) == 0 || maxParts == 1 {
		p := newPartition(0, rel.Schema.Arity())
		for _, t := range rel.Tuples {
			p.add(t)
		}
		return []*inputPartition{p}, nil
	}

	idx := make([]int, len(rel.Tuples))
	for i := range idx {
		idx[i] = i
	}
	var leaves [][]int
	var split func(members []int, budget int)
	split = func(members []int, budget int) {
		if budget <= 1 || len(members) <= 1 {
			leaves = append(leaves, members)
			return
		}
		// Pick the used dimension with the widest spread among members.
		bestDim, bestSpread := -1, -1.0
		for _, a := range used {
			lo, hi := rel.Tuples[members[0]].Vals[a], rel.Tuples[members[0]].Vals[a]
			for _, m := range members[1:] {
				v := rel.Tuples[m].Vals[a]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi-lo > bestSpread {
				bestSpread = hi - lo
				bestDim = a
			}
		}
		if bestSpread <= 0 {
			// All members identical on every used dimension.
			leaves = append(leaves, members)
			return
		}
		sort.SliceStable(members, func(i, j int) bool {
			return rel.Tuples[members[i]].Vals[bestDim] < rel.Tuples[members[j]].Vals[bestDim]
		})
		mid := len(members) / 2
		// Never split between equal key values: move the cut to the first
		// strictly larger value so partitions hold disjoint ranges.
		cut := mid
		for cut < len(members) &&
			rel.Tuples[members[cut]].Vals[bestDim] == rel.Tuples[members[mid-1]].Vals[bestDim] {
			cut++
		}
		if cut >= len(members) {
			leaves = append(leaves, members)
			return
		}
		split(members[:cut], budget/2)
		split(members[cut:], budget-budget/2)
	}
	split(idx, maxParts)

	out := make([]*inputPartition, 0, len(leaves))
	for i, members := range leaves {
		p := newPartition(i, rel.Schema.Arity())
		for _, m := range members {
			p.add(rel.Tuples[m])
		}
		out = append(out, p)
	}
	return out, nil
}
