package core

import (
	"sync"

	"progxe/internal/obs"
	"progxe/internal/par"
)

// Partitioned commit stage.
//
// With committers enabled, the sequencer stops executing phase-2 evictions,
// buffer insertions and emission snapshots itself. Instead it decides every
// verdict (which candidates survive, which cells get marked, which cells
// emit — all against sequencer-owned metadata) and appends the resulting
// *operations* to per-cell logs, keyed by a static partition of the output
// grid: cell c belongs to committer c.seq % n. Each committer applies its
// log in append order; because every operation's effect is confined to the
// single cell it names (eviction scans, SFS buffer insertion, summary
// maintenance, tuple drops), and because the sequencer routes one explicit
// operation per affected cell (cross-cell dominance effects become one log
// entry per victim cell, enumerated through the same bucket walk the serial
// engine uses), per-cell apply order equals the serial engine's per-cell
// mutation order. Cross-cell state never flows between committers, so the
// final buffer contents — and the emission records the sequencer drains
// through the bounded completion queue — are byte-identical to the serial
// run, regardless of committer count or goroutine schedule.
//
// Ownership split (what makes this race-free, checked by the -race sweep):
//
//   - committers own cell.tuples, cell.minV/maxV, and a per-committer
//     vecArena (evicted vectors recycle immediately — round survivors are
//     referenced through the candidate stream, never these arena vectors);
//   - the sequencer owns every other cell field (marked, populated,
//     emitted, finalized, regCount, visited, watchers, …), the cell index,
//     the Fenwick tree, and the run stats;
//   - the phase-1 state (buffers + summaries) is read by precheck only
//     after the per-round drain barrier, while every committer is idle.
//
// Synchronization is three channels' worth of happens-before edges: the
// per-partition op channel (append order in, FIFO out), a WaitGroup fence
// for the round barrier, and the capacity-1 completion queue that hands
// emitted buffers back to the sequencer in cascade order.

// commitOpKind enumerates the per-cell log operations.
type commitOpKind uint8

const (
	// copInsert commits a surviving candidate into its cell: evict the
	// survivors it dominates there, copy the vector into the committer's
	// arena, and insert in SFS order.
	copInsert commitOpKind = iota
	// copEvict removes the survivors of one comparable cell dominated by
	// the routed vector (phase 2, cross-cell).
	copEvict
	// copMark drops the buffered tuples of a cell the sequencer just
	// marked (populating a cell strictly below it).
	copMark
	// copEmit hands the cell's buffer to the completion queue. It is
	// always the last operation of its partition's log when sent, so
	// receiving from the queue proves the partition fully drained.
	copEmit
)

// commitOp is one entry of a per-cell operation log. v aliases the round's
// candidate-stream block for insert/evict ops; the owning region's buffer is
// only recycled after the next drain barrier.
type commitOp struct {
	kind            commitOpKind
	c               *cell
	leftID, rightID int64
	sum             float64
	v               []float64
}

// commitBatchOps is the flush threshold for pending per-partition logs.
// Mid-round flushes are safe — the sequencer reads no committer-owned state
// between the drain barrier and the next round's barrier — and let
// committers overlap with verdict routing and determination.
const commitBatchOps = 512

// commitPart is one committer's partition: the channel carrying its log,
// the sequencer-side pending batch, and the committer-owned scratch.
type commitPart struct {
	ch      chan []commitOp
	pending []commitOp // sequencer-side, unflushed tail of the log
	dirty   bool       // ops sent since the last proven-drained point
	arena   vecArena   // committer-owned vector storage
	comps   int        // committer-side dominance comparisons (folded at shutdown)
}

// commitPool runs the partitioned commit stage for one engine run.
type commitPool struct {
	n     int
	d     int
	parts []commitPart
	free  chan []commitOp // recycled batch slices
	emitQ chan []outTuple // bounded completion queue (capacity 1)
	fence sync.WaitGroup  // round drain barrier
	wg    sync.WaitGroup  // committer goroutine lifecycle

	prof     *obs.Profiler
	laneBase int // first committer profiler lane (2·workers+1)

	emitWaitNanos int64 // sequencer time spent on the completion queue this round
	closed        bool
}

// newCommitPool sizes a pool of n committers for vectors of dimension d.
// laneBase is the first profiler lane the committers report on.
func newCommitPool(n, d int, prof *obs.Profiler, laneBase int) *commitPool {
	p := &commitPool{
		n:        n,
		d:        d,
		parts:    make([]commitPart, n),
		free:     make(chan []commitOp, 4*n+4),
		emitQ:    make(chan []outTuple, 1),
		prof:     prof,
		laneBase: laneBase,
	}
	for i := range p.parts {
		p.parts[i].ch = make(chan []commitOp, 8)
		p.parts[i].arena.d = d
	}
	return p
}

// start launches the committer goroutines.
func (p *commitPool) start() {
	for i := 0; i < p.n; i++ {
		p.wg.Add(1)
		go p.committer(i)
	}
}

// committer applies one partition's operation log. A nil batch is the fence
// marker of a drain barrier.
func (p *commitPool) committer(i int) {
	defer p.wg.Done()
	ct := &p.parts[i]
	lane := p.laneBase + i
	for batch := range ct.ch {
		if batch == nil {
			p.fence.Done()
			continue
		}
		t0 := p.prof.Clock()
		for k := range batch {
			if par.YieldHook != nil && k%64 == 0 {
				par.YieldHook()
			}
			op := &batch[k]
			switch op.kind {
			case copInsert:
				evictDominatedInto(op.c, op.v, op.sum, &ct.comps, &ct.arena.free)
				cv := ct.arena.get()
				copy(cv, op.v)
				bufferInsertD(op.c, outTuple{leftID: op.leftID, rightID: op.rightID, v: cv, sum: op.sum}, p.d)
			case copEvict:
				evictDominatedInto(op.c, op.v, op.sum, &ct.comps, &ct.arena.free)
			case copMark:
				for j := range op.c.tuples {
					ct.arena.free = append(ct.arena.free, op.c.tuples[j].v)
				}
				op.c.tuples = nil
			case copEmit:
				// Emitted vectors are never recycled (the sink may retain
				// them); the cell can no longer be evicted from or marked.
				p.emitQ <- op.c.tuples
			}
		}
		p.prof.EndWorker(obs.PhaseCommit, lane, t0)
		select {
		case p.free <- batch[:0]:
		default:
		}
	}
}

// route appends one operation to its cell's partition log, flushing the
// pending batch at the threshold.
func (p *commitPool) route(op commitOp) {
	i := int(op.c.seq) % p.n
	ct := &p.parts[i]
	ct.pending = append(ct.pending, op)
	ct.dirty = true
	if len(ct.pending) >= commitBatchOps {
		p.flush(i)
	}
}

// flush sends partition i's pending batch to its committer.
func (p *commitPool) flush(i int) {
	ct := &p.parts[i]
	if len(ct.pending) == 0 {
		return
	}
	ct.ch <- ct.pending
	select {
	case b := <-p.free:
		ct.pending = b
	default:
		ct.pending = make([]commitOp, 0, commitBatchOps)
	}
}

// flushAll sends every pending batch, letting committers overlap with the
// sequencer's determination cascade.
func (p *commitPool) flushAll() {
	for i := range p.parts {
		p.flush(i)
	}
}

// drain is the round barrier: it flushes every dirty partition, posts a
// fence marker, and blocks until all of them have applied their logs. On
// return (a WaitGroup happens-before edge) the phase-1 state is frozen and
// safe for precheck scans and sequencer reads.
func (p *commitPool) drain() {
	dirty := 0
	for i := range p.parts {
		if p.parts[i].dirty || len(p.parts[i].pending) > 0 {
			dirty++
		}
	}
	if dirty == 0 {
		return
	}
	p.fence.Add(dirty)
	for i := range p.parts {
		ct := &p.parts[i]
		if !ct.dirty && len(ct.pending) == 0 {
			continue
		}
		p.flush(i)
		ct.ch <- nil
		ct.dirty = false
	}
	p.fence.Wait()
}

// emitCell routes the emission record of c and blocks on the completion
// queue for its buffer. The emit op is the last entry of its partition's
// log when sent and nothing follows it until this call returns, so the
// received slice reflects every prior operation on the cell — and the
// partition is proven drained. The wait is attributed to PhaseCommitWait
// and accumulated so the enclosing determine span can exclude it.
func (p *commitPool) emitCell(c *cell, prof *obs.Profiler) []outTuple {
	i := int(c.seq) % p.n
	p.parts[i].pending = append(p.parts[i].pending, commitOp{kind: copEmit, c: c})
	p.flush(i)
	t0 := prof.Clock()
	tuples := <-p.emitQ
	prof.EndSequencer(obs.PhaseCommitWait, t0)
	p.emitWaitNanos += prof.Clock() - t0
	p.parts[i].dirty = false
	return tuples
}

// takeEmitWait returns and resets the accumulated completion-queue wait.
func (p *commitPool) takeEmitWait() int64 {
	w := p.emitWaitNanos
	p.emitWaitNanos = 0
	return w
}

// shutdown flushes outstanding logs, stops the committers, waits them out,
// and returns the dominance comparisons they performed (folded into the run
// stats in committer order, so the total is deterministic). Idempotent;
// the engine defers it as a safety net and calls it explicitly after the
// loop so the fold lands before stats are returned.
func (p *commitPool) shutdown() int {
	if p.closed {
		return 0
	}
	p.closed = true
	for i := range p.parts {
		p.flush(i)
		close(p.parts[i].ch)
	}
	p.wg.Wait()
	comps := 0
	for i := range p.parts {
		comps += p.parts[i].comps
	}
	return comps
}
