package core

import (
	"testing"

	"progxe/internal/baseline"
	"progxe/internal/datagen"
	"progxe/internal/mapping"
	"progxe/internal/smj"
)

func TestKDPartitionBalance(t *testing.T) {
	p := smokeProblem(t, 1000, 3, datagen.Correlated, 0.05, 6)
	parts, err := partitionInputKD(p.Left, p.Maps, mapping.Left, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) < 8 || len(parts) > 16 {
		t.Fatalf("kd produced %d partitions, want ~16", len(parts))
	}
	total := 0
	smallest, largest := 1<<30, 0
	for _, pt := range parts {
		n := pt.len()
		total += n
		if n < smallest {
			smallest = n
		}
		if n > largest {
			largest = n
		}
	}
	if total != p.Left.Len() {
		t.Fatalf("partitions cover %d of %d tuples", total, p.Left.Len())
	}
	// Median splits keep populations within a small factor even on
	// correlated (skewed) data; uniform grids would leave cells empty.
	if largest > smallest*4 {
		t.Fatalf("unbalanced kd partitions: min %d max %d", smallest, largest)
	}
	// Bounding boxes must contain their members.
	for _, pt := range parts {
		for _, tu := range pt.tuples {
			if !pt.rect.Contains(tu.Vals) {
				t.Fatalf("tuple %v outside partition box %v", tu.Vals, pt.rect)
			}
		}
	}
}

func TestKDPartitionDegenerate(t *testing.T) {
	// All tuples identical: a single unsplittable partition.
	p := emptyProblem(t, 10, 1)
	for i := range p.Left.Tuples {
		p.Left.Tuples[i].Vals = []float64{1, 1}
	}
	parts, err := partitionInputKD(p.Left, p.Maps, mapping.Left, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 || parts[0].len() != 10 {
		t.Fatalf("identical tuples must form one partition, got %d", len(parts))
	}
	// Empty input.
	empty := emptyProblem(t, 0, 0)
	parts, err = partitionInputKD(empty.Left, empty.Maps, mapping.Left, 8)
	if err != nil || parts != nil {
		t.Fatalf("empty input: %v, %v", parts, err)
	}
}

// TestKDEngineAgreesWithOracle runs the full engine with kd partitioning
// across the distribution matrix.
func TestKDEngineAgreesWithOracle(t *testing.T) {
	for _, dist := range []datagen.Distribution{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated} {
		for seed := uint64(1); seed <= 3; seed++ {
			p := smokeProblem(t, 150, 3, dist, 0.05, seed)
			oracle, err := baseline.Oracle(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, opts := range []Options{
				{Partitioning: PartitionKD},
				{Partitioning: PartitionKD, InputCells: 2},
				{Partitioning: PartitionKD, PushThrough: true},
			} {
				var sink smj.Collector
				if _, err := New(opts).Run(p, &sink); err != nil {
					t.Fatalf("%s seed %d: %v", dist, seed, err)
				}
				if len(sink.Results) != len(oracle) {
					t.Fatalf("%s seed %d %+v: %d vs oracle %d", dist, seed, opts, len(sink.Results), len(oracle))
				}
			}
		}
	}
}

func TestPartitioningString(t *testing.T) {
	if PartitionGrid.String() != "grid" || PartitionKD.String() != "kd" || Partitioning(9).String() != "unknown" {
		t.Fatal("partitioning names wrong")
	}
}
