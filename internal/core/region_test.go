package core

import (
	"testing"

	"progxe/internal/datagen"
	"progxe/internal/grid"
	"progxe/internal/mapping"
	"progxe/internal/smj"
)

// progCountOracle is Definition 2 verbatim, with no index machinery: a cell
// of r counts iff it is unmarked, unemitted, covered by no other
// unprocessed region, and no active cell in its closed lower orthant still
// awaits tuples from a region other than r.
func progCountOracle(s *space, r *region) int {
	count := 0
	for _, flat := range r.cells {
		c := s.cellAt(flat)
		if c.marked || c.emitted || remainingExcluding(c, r) != 0 {
			continue
		}
		free := true
		for _, q := range s.active {
			if q != c && grid.LeqAll(q.coords, c.coords) && remainingExcluding(q, r) != 0 {
				free = false
				break
			}
		}
		if free {
			count++
		}
	}
	return count
}

// TestProgCountExactOnLargeRegions checks progCount against the Definition
// 2 oracle on a space big enough that the seed's budgeted stride sampler
// would have engaged (cells×active beyond its 2²¹ budget) — the regime
// where sampling used to distort ranks — and asserts the Fenwick orthant
// path actually ran. The check repeats mid-run, after regions complete and
// cells finalize, so the retract-and-restore protocol is exercised against
// a mutated active set.
func TestProgCountExactOnLargeRegions(t *testing.T) {
	p := smokeProblem(t, 600, 2, datagen.AntiCorrelated, 0.05, 17)
	cp, d, err := checkProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{InputCells: 2, OutputCells: 64})
	lparts, err := e.partition(cp.Left, cp.Maps, mapping.Left)
	if err != nil {
		t.Fatal(err)
	}
	rparts, err := e.partition(cp.Right, cp.Maps, mapping.Right)
	if err != nil {
		t.Fatal(err)
	}
	regions, _ := buildRegions(lparts, rparts, cp.Maps, 0)
	if len(regions) < 2 {
		t.Fatalf("fixture built only %d regions", len(regions))
	}
	var stats smj.Stats
	s, err := buildSpace(regions, d, 64, &stats, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.fenEligible = true
	strideRegime := false
	for _, r := range regions {
		if len(r.cells)*len(s.active) > 1<<21 {
			strideRegime = true
		}
	}
	if !strideRegime {
		t.Fatal("fixture too small: the seed's stride sampler would not have engaged")
	}

	check := func(stage string) {
		t.Helper()
		for _, r := range regions {
			if r.state != regionLive {
				continue
			}
			before := stats.FenwickUpdates
			got := progCount(s, r)
			usedFenwick := stats.FenwickUpdates != before
			if want := progCountOracle(s, r); got != want {
				t.Fatalf("%s: progCount(region %d) = %d, oracle %d (fenwick=%v)", stage, r.id, got, want, usedFenwick)
			}
		}
	}
	check("initial")

	fenwickBefore := stats.FenwickUpdates
	// Complete half the regions (no tuple work needed: progCount reads only
	// coverage and the active set) and re-verify against the mutated space.
	for i, r := range regions {
		if i%2 == 0 {
			r.state = regionProcessed
			s.regionDone(r.cells)
		}
	}
	check("mid-run")
	if s.fen == nil || stats.FenwickUpdates == fenwickBefore {
		t.Fatal("no progCount call took the Fenwick path; fixture lost its point")
	}
}
