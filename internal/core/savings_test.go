package core

import (
	"testing"

	"progxe/internal/datagen"
	"progxe/internal/preference"
	"progxe/internal/smj"
)

// TestComparisonSavings quantifies the §III-B claim: confining dominance
// comparisons to the comparable slice cells (after look-ahead marking) needs
// far fewer comparisons than a naive all-pairs skyline over the same join
// results. The naive count for an incremental BNL is Σ |window| at each
// insertion; we bound it from below by the final skyline size times the
// number of mapped results that undergo comparisons.
func TestComparisonSavings(t *testing.T) {
	p := smokeProblem(t, 1500, 4, datagen.AntiCorrelated, 0.01, 13)
	var sink smj.Collector
	stats, err := New(Options{}).Run(p, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if stats.JoinResults == 0 || stats.ResultCount == 0 {
		t.Fatalf("degenerate workload: %+v", stats)
	}
	// Lower bound on a naive incremental skyline's comparisons: every one
	// of the J join results is compared against at least the tuples that
	// end up in the skyline (conservatively half of them on average).
	naiveLower := stats.JoinResults * stats.ResultCount / 2
	if stats.DomComparisons >= naiveLower {
		t.Fatalf("slice-confined comparisons (%d) not below naive lower bound (%d)",
			stats.DomComparisons, naiveLower)
	}
	ratio := float64(naiveLower) / float64(stats.DomComparisons)
	if ratio < 2 {
		t.Fatalf("expected ≥2× comparison savings, got %.1f× (%d vs %d)",
			ratio, stats.DomComparisons, naiveLower)
	}
	t.Logf("comparisons: ProgXe %d vs naive ≥%d (%.0f× saved); %d of %d mapped results discarded without any test",
		stats.DomComparisons, naiveLower, ratio, stats.MappedDiscarded, stats.JoinResults)
}

// TestLookAheadPrunesWork verifies that the abstraction-level machinery
// actually fires on a workload where it should: correlated data gives
// regions that dominate one another, so look-ahead pruning, cell marking and
// mid-run region discards must all be non-zero.
func TestLookAheadPrunesWork(t *testing.T) {
	p := smokeProblem(t, 2000, 2, datagen.Correlated, 0.02, 17)
	var sink smj.Collector
	stats, err := New(Options{}).Run(p, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RegionsPruned == 0 && stats.RegionsDropped == 0 {
		t.Fatalf("no regions eliminated on correlated data: %+v", stats)
	}
	if stats.CellsMarked == 0 {
		t.Fatalf("no cells marked on correlated data: %+v", stats)
	}
	// The pruning must translate into skipped join work: fewer join results
	// materialized than the full σ·N² expectation.
	full := 0
	counts := p.Left.JoinKeys()
	for _, tu := range p.Right.Tuples {
		full += counts[tu.JoinKey]
	}
	if stats.JoinResults >= full {
		t.Fatalf("look-ahead did not skip any join work: %d of %d", stats.JoinResults, full)
	}
	t.Logf("join results: %d of %d possible (%.0f%% skipped); regions pruned=%d dropped=%d of %d",
		stats.JoinResults, full, 100*(1-float64(stats.JoinResults)/float64(full)),
		stats.RegionsPruned, stats.RegionsDropped, stats.Regions)
	_ = preference.Lowest
}
