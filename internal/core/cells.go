package core

import (
	"progxe/internal/grid"
	"progxe/internal/obs"
	"progxe/internal/preference"
	"progxe/internal/smj"
)

// outTuple is a surviving intermediate result held in an output cell's
// buffer until ProgDetermine proves it safe to emit. sum caches the
// coordinate sum of v; buffers are kept sorted ascending by it (SFS order),
// so dominance scans can stop at the first entry whose sum is not smaller
// (a dominator's sum is strictly smaller, a victim's strictly larger).
type outTuple struct {
	leftID  int64
	rightID int64
	v       []float64 // canonical (minimized) output vector, arena-backed
	sum     float64
}

// cell is the runtime state of one output partition Oh (§V).
//
// The paper maintains per-cell lists Dom(Oh), DomBy(Oh), Dependent(Oh) and
// Dependence(Oh) realized as counters. This implementation collapses them
// into one observation: a finalized, unmarked, populated cell Oh may be
// emitted exactly when no *active* cell (counted and not yet finalized) lies
// in its closed lower orthant. Strictly-below active cells are Dom(Oh)
// entries whose final emptiness is unknown; slice-below active cells are
// Dependent(Oh) entries that may still produce dominators; populated
// strictly-below cells mark Oh outright, and finalized cells impose no
// constraint. Each blocked cell watches a single blocking cell and is
// re-examined when that blocker finalizes — the count-based bookkeeping of
// Algorithm 2 with amortized instead of eager updates.
type cell struct {
	flat      int
	coords    []int
	lower     []float64 // LOWER(Oh), for domination tests
	coveredBy []int     // ids of regions covering this cell, ascending
	regCount  int       // RegCount(Oh): unprocessed covering regions
	counted   bool      // participates in blocking (was unmarked at build time)
	marked    bool      // IS_MARKED(Oh): non-contributing, dominated at abstraction level
	populated bool      // ever held a surviving tuple
	finalized bool      // regCount reached zero: no future tuples can map here
	emitted   bool      // survivors already reported
	activeIdx int       // position in space.active, -1 if not active
	visited   int32     // cellIndex epoch stamp (bucket-union dedup)
	seq       int32     // position in space.cellList (goroutine-local visit stamps)
	key       uint64    // packed coordinate key (valid when the index is packed)
	// minV/maxV are the componentwise min/max over the current survivors —
	// the survivor summary. A cell can hold a dominator of t only if
	// minV ≤ t everywhere, and a victim of t only if maxV ≥ t everywhere,
	// so whole cells refute in O(d) before any tuple is touched. Valid only
	// while len(tuples) > 0; maintained exactly on insert and eviction.
	minV []float64
	maxV []float64
	// tuples is sorted ascending by (sum, arrival): SFS order with stable
	// ties. Emission reports survivors in this order.
	tuples   []outTuple
	watchers []*cell // pending cells whose current blocker is this cell
}

// coveredByRegion reports whether the region id covers this cell.
func (c *cell) coveredByRegion(id int) bool {
	lo, hi := 0, len(c.coveredBy)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.coveredBy[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(c.coveredBy) && c.coveredBy[lo] == id
}

// firstNotBelow returns the index of the first buffered tuple whose sum is
// ≥ s — the cutoff for dominator scans (everything from here on cannot
// dominate a tuple of sum s).
func (c *cell) firstNotBelow(s float64) int {
	lo, hi := 0, len(c.tuples)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.tuples[mid].sum < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// firstAbove returns the index of the first buffered tuple whose sum is > s
// — the start of the victim range for an eviction scan (everything before
// it cannot be dominated by a tuple of sum s).
func (c *cell) firstAbove(s float64) int {
	lo, hi := 0, len(c.tuples)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.tuples[mid].sum <= s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// vecArena hands out fixed-length float vectors for surviving tuples from
// chunked backing storage plus a free list of evicted vectors, so steady-
// state tuple processing performs no per-tuple heap allocations. Vectors of
// emitted results are never recycled (sinks may retain them indefinitely).
type vecArena struct {
	d     int
	chunk []float64
	free  [][]float64
}

const arenaChunkVecs = 1024

func (a *vecArena) get() []float64 {
	if n := len(a.free); n > 0 {
		v := a.free[n-1]
		a.free = a.free[:n-1]
		return v
	}
	if len(a.chunk) < a.d {
		a.chunk = make([]float64, arenaChunkVecs*a.d)
	}
	v := a.chunk[:a.d:a.d]
	a.chunk = a.chunk[a.d:]
	return v
}

// space is the mapped output space: the output grid, the covered cells, and
// the bookkeeping that drives progressive result determination.
type space struct {
	d     int
	g     *grid.Grid
	cells map[int]*cell // construction-time lookup; hot paths use idx
	// cellList is the deterministic iteration order (ascending flat index).
	cellList []*cell
	// idx accelerates flat-id resolution, comparable-slice enumeration and
	// coordinate-box walks (see cellIndex).
	idx cellIndex
	// active lists counted cells that have not yet finalized — the cells
	// that can still block emission (swap-removed as they finalize).
	active []*cell
	// fen mirrors the active set as a d-dimensional Fenwick tree of cell
	// coordinates, so progCount answers "any blocking active cell in this
	// closed lower orthant?" as one cumulative count instead of an active-
	// set scan. Built lazily by the first progCount call over the scan
	// budget, and only when fenEligible (a graph-ordered run on a grid
	// within fenCellLimit); nil otherwise.
	fen         *grid.Fenwick
	fenEligible bool
	// soloScratch is progCount's reusable cell buffer.
	soloScratch []*cell
	stats       *smj.Stats
	arena       vecArena
	// pendingFree holds vectors evicted or dropped during the current
	// region's tuple processing. Recycling is deferred until the region
	// completes because runState.roundNew still references round survivors
	// by slice; flushFree moves them to the arena free list.
	pendingFree [][]float64
	// emit delivers one safe result (canonical vector) to the caller.
	emit func(t outTuple)
	// traceEmit, when non-nil, observes each cell emission (cell, count).
	traceEmit func(c *cell, n int)
	// prof receives per-cell emission spans (nil-safe; set by the engine).
	prof *obs.Profiler
	// cpool, when non-nil, is the partitioned committer pool: cell buffers
	// and survivor summaries are committer-owned, and the determination
	// cascade reads them only through the pool's emission handshake.
	cpool *commitPool
}

// cellAt returns the covered cell with the given flat index, or nil.
func (s *space) cellAt(flat int) *cell {
	if s.idx.dense != nil {
		return s.idx.dense[flat]
	}
	return s.cells[flat]
}

// flushFree recycles the vectors retired during the last region round.
func (s *space) flushFree() {
	s.arena.free = append(s.arena.free, s.pendingFree...)
	s.pendingFree = s.pendingFree[:0]
}

// mark flags a cell as non-contributing and drops any buffered tuples;
// results that map to marked cells are guaranteed dominated (§III-A Ex. 3).
func (s *space) mark(c *cell) {
	if c.marked {
		return
	}
	c.marked = true
	for i := range c.tuples {
		s.pendingFree = append(s.pendingFree, c.tuples[i].v)
	}
	c.tuples = nil
	s.stats.CellsMarked++
}

// insert runs the tuple-level dominance protocol of §III-B for one mapped
// join result with output vector v (caller-owned scratch; copied on
// survival). Comparisons are confined to populated cells whose coordinates
// are comparable to the target cell: slice-below cells may contain
// dominators; slice-above cells may contain victims; the strict lower-left
// orthant is empty for any unmarked cell (populating it would have marked
// this cell), and incomparable corners are skipped entirely (Fig. 4). The
// comparable set is enumerated through the per-dimension coordinate buckets
// of the cell index, each candidate cell is pre-filtered in O(d) against
// its survivor summary, and buffer scans stop at the SFS sum cutoff.
// On survival it returns the committed (arena-backed) vector and true.
func (s *space) insert(c *cell, leftID, rightID int64, v []float64) ([]float64, bool) {
	if c.marked {
		s.stats.MappedDiscarded++
		return nil, false
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return s.insertSum(c, leftID, rightID, v, sum)
}

// insertSum is insert with the coordinate sum precomputed by the caller
// (the parallel runner materializes sums in its candidate streams).
func (s *space) insertSum(c *cell, leftID, rightID int64, v []float64, sum float64) ([]float64, bool) {
	if c.marked {
		s.stats.MappedDiscarded++
		return nil, false
	}
	// Phase 1: can any existing survivor dominate the candidate? Dominator
	// cells sit in the flat-id prefix of each bucket (componentwise ≤
	// implies flat ≤); the packed-key test rejects incomparable cells in
	// one comparison before any pointer chase.
	packed := s.idx.packed
	epoch := s.idx.stamp(c)
	if s.dominatedWithin(c, v, sum) {
		return nil, false
	}
	for i := 0; i < s.d; i++ {
		b := s.idx.buckets[i][c.coords[i]]
		for j := bucketSplit(b, c.flat) - 1; j >= 0; j-- {
			e := &b[j]
			if packed {
				if !keyLeq(e.key, c.key) {
					continue
				}
			} else if !grid.LeqAll(e.c.coords, c.coords) {
				continue
			}
			p := e.c
			if p.visited == epoch || len(p.tuples) == 0 {
				continue
			}
			p.visited = epoch
			if s.dominatedWithin(p, v, sum) {
				return nil, false
			}
		}
	}
	return s.commitSurvivor(c, leftID, rightID, v, sum), true
}

// commitSurvivor runs phase 2 of the protocol for a candidate already known
// to be undominated: evict survivors it dominates (cells in the flat-id
// suffix of each bucket), then commit it to the arena.
func (s *space) commitSurvivor(c *cell, leftID, rightID int64, v []float64, sum float64) []float64 {
	packed := s.idx.packed
	epoch := s.idx.stamp(c)
	s.evictDominated(c, v, sum)
	for i := 0; i < s.d; i++ {
		b := s.idx.buckets[i][c.coords[i]]
		for j := bucketSplit(b, c.flat+1); j < len(b); j++ {
			e := &b[j]
			if packed {
				if !keyLeq(c.key, e.key) {
					continue
				}
			} else if !grid.LeqAll(c.coords, e.c.coords) {
				continue
			}
			p := e.c
			if p.visited == epoch || len(p.tuples) == 0 || p.emitted {
				continue
			}
			p.visited = epoch
			s.evictDominated(p, v, sum)
		}
	}
	cv := s.arena.get()
	copy(cv, v)
	s.bufferInsert(c, outTuple{leftID: leftID, rightID: rightID, v: cv, sum: sum})
	if !c.populated {
		s.populate(c)
	}
	return cv
}

// dominatedWithin reports whether any survivor of p dominates the candidate
// vector, counting comparisons into the run stats.
func (s *space) dominatedWithin(p *cell, v []float64, sum float64) bool {
	return cellDominates(p, v, sum, &s.stats.DomComparisons)
}

// cellDominates reports whether any survivor of p dominates the candidate
// vector, adding the comparisons performed to *comps (run stats on the
// sequencer, a task-local counter in precheck workers). The survivor
// summary refutes whole cells in O(d); otherwise the scan walks the
// SFS-sorted buffer up to the sum cutoff (a dominator's sum is strictly
// smaller than the candidate's).
func cellDominates(p *cell, v []float64, sum float64, comps *int) bool {
	if len(p.tuples) == 0 {
		return false
	}
	for i, m := range p.minV {
		if m > v[i] {
			return false
		}
	}
	end := p.firstNotBelow(sum)
	for j := 0; j < end; j++ {
		*comps++
		if preference.DominatesMin(p.tuples[j].v, v) {
			return true
		}
	}
	return false
}

// evictDominated removes every survivor of p dominated by the candidate
// vector, keeping the buffer sorted and the survivor summary exact.
func (s *space) evictDominated(p *cell, v []float64, sum float64) {
	evictDominatedInto(p, v, sum, &s.stats.DomComparisons, &s.pendingFree)
}

// evictDominatedInto is evictDominated parameterized over the comparison
// counter and the free list receiving evicted vectors, so the same scan runs
// on the sequencer (run stats + deferred pendingFree) and on committer
// goroutines (committer-local counter + immediate arena recycling — with
// partitioned commit, round survivors are referenced through the candidate
// stream, never through these arena vectors, so no deferral is needed). Only
// the sum-above suffix can contain victims; the kept prefix contributes to
// the summary without dominance tests.
func evictDominatedInto(p *cell, v []float64, sum float64, comps *int, free *[][]float64) {
	if len(p.tuples) == 0 {
		return
	}
	// Refute the whole cell when some dimension of the candidate exceeds
	// every survivor (no tuple can be componentwise ≥ the candidate).
	for i, m := range p.maxV {
		if v[i] > m {
			return
		}
	}
	start := p.firstAbove(sum)
	keep := p.tuples[:start]
	evicted := false
	for j := start; j < len(p.tuples); j++ {
		u := p.tuples[j]
		*comps++
		if preference.DominatesMin(v, u.v) {
			evicted = true
			*free = append(*free, u.v)
			continue
		}
		keep = append(keep, u)
	}
	if !evicted {
		return
	}
	p.tuples = keep
	if len(p.tuples) > 0 {
		copy(p.minV, p.tuples[0].v)
		copy(p.maxV, p.tuples[0].v)
		for j := 1; j < len(p.tuples); j++ {
			widenSummary(p.minV, p.maxV, p.tuples[j].v)
		}
	}
}

// bufferInsert places t into the cell's buffer keeping SFS order (stable on
// equal sums) and widens the survivor summary.
func (s *space) bufferInsert(c *cell, t outTuple) {
	bufferInsertD(c, t, s.d)
}

// bufferInsertD is bufferInsert without the space receiver, shared with the
// committer goroutines (which own their partition's cell buffers outright).
func bufferInsertD(c *cell, t outTuple, d int) {
	if c.minV == nil {
		buf := make([]float64, 2*d)
		c.minV, c.maxV = buf[:d:d], buf[d:]
	}
	if len(c.tuples) == 0 {
		copy(c.minV, t.v)
		copy(c.maxV, t.v)
	} else {
		widenSummary(c.minV, c.maxV, t.v)
	}
	pos := c.firstAbove(t.sum)
	c.tuples = append(c.tuples, outTuple{})
	copy(c.tuples[pos+1:], c.tuples[pos:])
	c.tuples[pos] = t
}

// widenSummary grows the min/max summary vectors to cover v.
func widenSummary(minV, maxV, v []float64) {
	for i, x := range v {
		if x < minV[i] {
			minV[i] = x
		}
		if x > maxV[i] {
			maxV[i] = x
		}
	}
}

// sliceBelowOrEqual reports a ≤ b componentwise with equality in ≥1
// dimension — the comparable-slice relation of §III-B including a == b.
func sliceBelowOrEqual(a, b []int) bool {
	anyEqual := false
	for i := range a {
		switch {
		case a[i] > b[i]:
			return false
		case a[i] == b[i]:
			anyEqual = true
		}
	}
	return anyEqual
}

// populate records the first surviving tuple in a cell and marks every cell
// strictly above it in all dimensions: any tuple of this cell strictly
// improves on every point of those cells, so they can never contribute
// (§III-B observation 2, maintained dynamically). The strict upper orthant
// is enumerated as a coordinate box over the dense index when that is
// cheaper than sweeping the covered-cell list.
func (s *space) populate(c *cell) {
	c.populated = true
	s.idx.addPopulated(c)
	vol := s.idx.strictUpperBoxVolume(c.coords)
	if vol == 0 {
		// No covered cell lies strictly above in every dimension.
		return
	}
	if s.idx.dense != nil && vol < len(s.cellList) {
		s.idx.eachInStrictUpperBox(c.coords, func(q *cell) {
			if !q.marked {
				s.mark(q)
			}
		})
		return
	}
	for _, q := range s.cellList {
		if q.marked || q == c {
			continue
		}
		if grid.StrictlyBelow(c.coords, q.coords) {
			s.mark(q)
		}
	}
}

// regionDone decrements RegCount for every cell of a processed or discarded
// region, finalizing cells that can no longer receive tuples — the entry
// point of ProgDetermine (Algorithm 2).
func (s *space) regionDone(cellIDs []int) {
	for _, flat := range cellIDs {
		c := s.cellAt(flat)
		c.regCount--
		if c.regCount == 0 && !c.finalized {
			s.finalize(c)
		}
	}
}

// finalize handles a cell whose tuple generation has completed: it leaves
// the active (blocking) set, becomes an emission candidate itself, and wakes
// the pending cells that were watching it (Progressive-Maintenance of
// Algorithm 2, amortized).
func (s *space) finalize(c *cell) {
	c.finalized = true
	s.deactivate(c)
	s.consider(c)
	if len(c.watchers) > 0 {
		watchers := c.watchers
		c.watchers = nil
		for _, w := range watchers {
			s.consider(w)
		}
	}
}

// deactivate removes the cell from the active set (swap removal) and from
// the cumulative active-cell tree.
func (s *space) deactivate(c *cell) {
	if c.activeIdx < 0 {
		return
	}
	last := len(s.active) - 1
	moved := s.active[last]
	s.active[c.activeIdx] = moved
	moved.activeIdx = c.activeIdx
	s.active = s.active[:last]
	c.activeIdx = -1
	if s.fen != nil {
		s.fen.Add(c.coords, -1)
		s.stats.FenwickUpdates++
	}
}

// consider attempts emission of a candidate cell under Principle 1: the
// cell must be finalized, unmarked and populated, and no active cell may
// remain in its closed lower orthant. If a blocker exists the candidate
// watches it and is reconsidered when the blocker finalizes.
func (s *space) consider(c *cell) {
	if s.cpool != nil {
		s.considerCommitted(c)
		return
	}
	if c.emitted || c.marked || !c.finalized || len(c.tuples) == 0 {
		return
	}
	if b := s.findBlocker(c); b != nil {
		b.watchers = append(b.watchers, c)
		return
	}
	c.emitted = true
	// One span per emitted cell, not per result: two clock reads amortized
	// over the cell's whole buffer keep the emit phase observable without
	// per-tuple overhead.
	tEmit := s.prof.Clock()
	for _, t := range c.tuples {
		s.emit(t)
	}
	s.prof.EndSequencer(obs.PhaseEmit, tEmit)
	s.stats.ResultCount += len(c.tuples)
	if s.traceEmit != nil {
		s.traceEmit(c, len(c.tuples))
	}
}

// considerCommitted is the partitioned-commit twin of consider. The cascade
// cannot read len(c.tuples) — buffers belong to the owning committer — so
// populated stands in: a populated cell whose survivors were all evicted
// passes the guard, drains to an empty emission record through the
// completion queue, and reports nothing, exactly like the serial engine's
// silent skip (no trace event, no ResultCount, and the watcher registration
// it may take first resolves to the same nothing). Every observable effect
// is therefore identical to the serial cascade.
func (s *space) considerCommitted(c *cell) {
	if c.emitted || c.marked || !c.finalized || !c.populated {
		return
	}
	if b := s.findBlocker(c); b != nil {
		b.watchers = append(b.watchers, c)
		return
	}
	c.emitted = true
	tuples := s.cpool.emitCell(c, s.prof)
	if len(tuples) == 0 {
		return
	}
	tEmit := s.prof.Clock()
	for _, t := range tuples {
		s.emit(t)
	}
	s.prof.EndSequencer(obs.PhaseEmit, tEmit)
	s.stats.ResultCount += len(tuples)
	if s.traceEmit != nil {
		s.traceEmit(c, len(tuples))
	}
}

// findBlocker returns the smallest-flat active cell within the closed lower
// orthant of c (componentwise ≤), or nil if none remains. When the
// coordinate box is small relative to the active set it is enumerated
// directly over the dense index; otherwise the active set is scanned. Both
// paths return the same cell, keeping the watch graph deterministic.
func (s *space) findBlocker(c *cell) *cell {
	if s.idx.dense != nil {
		if vol := s.idx.lowerBoxVolume(c.coords); vol <= 4*len(s.active)+4 {
			return s.idx.firstActiveInLowerBox(c.coords)
		}
	}
	var best *cell
	if s.idx.packed {
		for _, q := range s.active {
			if keyLeq(q.key, c.key) && (best == nil || q.flat < best.flat) {
				best = q
			}
		}
		return best
	}
	for _, q := range s.active {
		if grid.LeqAll(q.coords, c.coords) && (best == nil || q.flat < best.flat) {
			best = q
		}
	}
	return best
}

// unemitted returns cells that hold survivors but were never emitted; after
// all regions are done this must be empty (completeness invariant).
func (s *space) unemitted() []*cell {
	var out []*cell
	for _, c := range s.cellList {
		if !c.emitted && !c.marked && len(c.tuples) > 0 {
			out = append(out, c)
		}
	}
	return out
}
