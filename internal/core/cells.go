package core

import (
	"progxe/internal/grid"
	"progxe/internal/preference"
	"progxe/internal/smj"
)

// outTuple is a surviving intermediate result held in an output cell's
// buffer until ProgDetermine proves it safe to emit.
type outTuple struct {
	leftID  int64
	rightID int64
	v       []float64 // canonical (minimized) output vector
}

// cell is the runtime state of one output partition Oh (§V).
//
// The paper maintains per-cell lists Dom(Oh), DomBy(Oh), Dependent(Oh) and
// Dependence(Oh) realized as counters. This implementation collapses them
// into one observation: a finalized, unmarked, populated cell Oh may be
// emitted exactly when no *active* cell (counted and not yet finalized) lies
// in its closed lower orthant. Strictly-below active cells are Dom(Oh)
// entries whose final emptiness is unknown; slice-below active cells are
// Dependent(Oh) entries that may still produce dominators; populated
// strictly-below cells mark Oh outright, and finalized cells impose no
// constraint. Each blocked cell watches a single blocking cell and is
// re-examined when that blocker finalizes — the count-based bookkeeping of
// Algorithm 2 with amortized instead of eager updates.
type cell struct {
	flat      int
	coords    []int
	lower     []float64 // LOWER(Oh), for domination tests
	coveredBy []int     // ids of regions covering this cell, ascending
	regCount  int       // RegCount(Oh): unprocessed covering regions
	counted   bool      // participates in blocking (was unmarked at build time)
	marked    bool      // IS_MARKED(Oh): non-contributing, dominated at abstraction level
	populated bool      // ever held a surviving tuple
	finalized bool      // regCount reached zero: no future tuples can map here
	emitted   bool      // survivors already reported
	activeIdx int       // position in space.active, -1 if not active
	tuples    []outTuple
	watchers  []*cell // pending cells whose current blocker is this cell
}

// coveredByRegion reports whether the region id covers this cell.
func (c *cell) coveredByRegion(id int) bool {
	lo, hi := 0, len(c.coveredBy)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.coveredBy[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(c.coveredBy) && c.coveredBy[lo] == id
}

// space is the mapped output space: the output grid, the covered cells, and
// the bookkeeping that drives progressive result determination.
type space struct {
	d     int
	g     *grid.Grid
	cells map[int]*cell
	// cellList is the deterministic iteration order (ascending flat index).
	cellList []*cell
	// populated lists cells that ever received a surviving tuple.
	populated []*cell
	// active lists counted cells that have not yet finalized — the cells
	// that can still block emission (swap-removed as they finalize).
	active []*cell
	stats  *smj.Stats
	// emit delivers one safe result (canonical vector) to the caller.
	emit func(t outTuple)
	// traceEmit, when non-nil, observes each cell emission (cell, count).
	traceEmit func(c *cell, n int)
}

// cellAt returns the covered cell with the given flat index, or nil.
func (s *space) cellAt(flat int) *cell { return s.cells[flat] }

// mark flags a cell as non-contributing and drops any buffered tuples;
// results that map to marked cells are guaranteed dominated (§III-A Ex. 3).
func (s *space) mark(c *cell) {
	if c.marked {
		return
	}
	c.marked = true
	c.tuples = nil
	s.stats.CellsMarked++
}

// insert runs the tuple-level dominance protocol of §III-B for one mapped
// join result. Comparisons are confined to populated cells whose coordinates
// are comparable to the target cell: slice-below cells may contain
// dominators; slice-above cells may contain victims; the strict lower-left
// orthant is empty for any unmarked cell (populating it would have marked
// this cell), and incomparable corners are skipped entirely (Fig. 4).
// It reports whether the tuple survived.
func (s *space) insert(c *cell, t outTuple) bool {
	if c.marked {
		s.stats.MappedDiscarded++
		return false
	}
	// Phase 1: can any existing survivor dominate t?
	for _, p := range s.populated {
		if len(p.tuples) == 0 {
			continue
		}
		if p != c && !sliceBelowOrEqual(p.coords, c.coords) {
			continue
		}
		for _, u := range p.tuples {
			s.stats.DomComparisons++
			if preference.DominatesMin(u.v, t.v) {
				return false
			}
		}
	}
	// Phase 2: t survives; evict survivors it dominates.
	for _, p := range s.populated {
		if len(p.tuples) == 0 {
			continue
		}
		if p != c && !sliceBelowOrEqual(c.coords, p.coords) {
			continue
		}
		keep := p.tuples[:0]
		for _, u := range p.tuples {
			s.stats.DomComparisons++
			if !preference.DominatesMin(t.v, u.v) {
				keep = append(keep, u)
			}
		}
		p.tuples = keep
	}
	c.tuples = append(c.tuples, t)
	if !c.populated {
		s.populate(c)
	}
	return true
}

// sliceBelowOrEqual reports a ≤ b componentwise with equality in ≥1
// dimension — the comparable-slice relation of §III-B including a == b.
func sliceBelowOrEqual(a, b []int) bool {
	anyEqual := false
	for i := range a {
		switch {
		case a[i] > b[i]:
			return false
		case a[i] == b[i]:
			anyEqual = true
		}
	}
	return anyEqual
}

// populate records the first surviving tuple in a cell and marks every cell
// strictly above it in all dimensions: any tuple of this cell strictly
// improves on every point of those cells, so they can never contribute
// (§III-B observation 2, maintained dynamically).
func (s *space) populate(c *cell) {
	c.populated = true
	s.populated = append(s.populated, c)
	for _, q := range s.cellList {
		if q.marked || q == c {
			continue
		}
		if grid.StrictlyBelow(c.coords, q.coords) {
			s.mark(q)
		}
	}
}

// regionDone decrements RegCount for every cell of a processed or discarded
// region, finalizing cells that can no longer receive tuples — the entry
// point of ProgDetermine (Algorithm 2).
func (s *space) regionDone(cellIDs []int) {
	for _, flat := range cellIDs {
		c := s.cells[flat]
		c.regCount--
		if c.regCount == 0 && !c.finalized {
			s.finalize(c)
		}
	}
}

// finalize handles a cell whose tuple generation has completed: it leaves
// the active (blocking) set, becomes an emission candidate itself, and wakes
// the pending cells that were watching it (Progressive-Maintenance of
// Algorithm 2, amortized).
func (s *space) finalize(c *cell) {
	c.finalized = true
	s.deactivate(c)
	s.consider(c)
	if len(c.watchers) > 0 {
		watchers := c.watchers
		c.watchers = nil
		for _, w := range watchers {
			s.consider(w)
		}
	}
}

// deactivate removes the cell from the active set (swap removal).
func (s *space) deactivate(c *cell) {
	if c.activeIdx < 0 {
		return
	}
	last := len(s.active) - 1
	moved := s.active[last]
	s.active[c.activeIdx] = moved
	moved.activeIdx = c.activeIdx
	s.active = s.active[:last]
	c.activeIdx = -1
}

// consider attempts emission of a candidate cell under Principle 1: the
// cell must be finalized, unmarked and populated, and no active cell may
// remain in its closed lower orthant. If a blocker exists the candidate
// watches it and is reconsidered when the blocker finalizes.
func (s *space) consider(c *cell) {
	if c.emitted || c.marked || !c.finalized || len(c.tuples) == 0 {
		return
	}
	if b := s.findBlocker(c); b != nil {
		b.watchers = append(b.watchers, c)
		return
	}
	c.emitted = true
	for _, t := range c.tuples {
		s.emit(t)
	}
	s.stats.ResultCount += len(c.tuples)
	if s.traceEmit != nil {
		s.traceEmit(c, len(c.tuples))
	}
}

// findBlocker returns an active cell within the closed lower orthant of c
// (componentwise ≤), or nil if none remains.
func (s *space) findBlocker(c *cell) *cell {
	for _, q := range s.active {
		if grid.LeqAll(q.coords, c.coords) {
			return q
		}
	}
	return nil
}

// unemitted returns cells that hold survivors but were never emitted; after
// all regions are done this must be empty (completeness invariant).
func (s *space) unemitted() []*cell {
	var out []*cell
	for _, c := range s.cellList {
		if !c.emitted && !c.marked && len(c.tuples) > 0 {
			out = append(out, c)
		}
	}
	return out
}
