package core

import "fmt"

// EventKind classifies engine trace events.
type EventKind int8

// Trace event kinds, in rough pipeline order.
const (
	// EventRegionChosen fires when ProgOrder (or the configured policy)
	// selects a region for tuple-level processing.
	EventRegionChosen EventKind = iota
	// EventRegionProcessed fires after a region's tuple-level processing.
	EventRegionProcessed
	// EventRegionDiscarded fires when a live region is eliminated by newly
	// generated tuples without ever being processed.
	EventRegionDiscarded
	// EventCellEmitted fires when ProgDetermine releases a cell's
	// survivors to the sink.
	EventCellEmitted
	// EventSchedulerStats fires once after the framework loop drains,
	// reporting the scheduler layer's work counters.
	EventSchedulerStats
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventRegionChosen:
		return "region-chosen"
	case EventRegionProcessed:
		return "region-processed"
	case EventRegionDiscarded:
		return "region-discarded"
	case EventCellEmitted:
		return "cell-emitted"
	case EventSchedulerStats:
		return "scheduler-stats"
	default:
		return fmt.Sprintf("EventKind(%d)", int8(k))
	}
}

// Event is one step of an engine run, delivered to Options.Trace. Fields
// are populated per kind; unused fields are zero.
type Event struct {
	Kind EventKind
	// Region is the region id for region events.
	Region int
	// Rank is the region's Benefit/Cost rank at selection time.
	Rank float64
	// JoinResults is the number of join results the region produced
	// (region-processed only).
	JoinResults int
	// Survivors is the number of tuples that survived insertion
	// (region-processed) or were emitted (cell-emitted).
	Survivors int
	// Cell is the flat output-cell index (cell-emitted only).
	Cell int
	// Edges, RankRefreshes and FenwickUpdates are the scheduler layer's
	// work counters (scheduler-stats only).
	Edges          int
	RankRefreshes  int
	FenwickUpdates int
}

// String renders the event compactly for logs.
func (e Event) String() string {
	switch e.Kind {
	case EventRegionChosen:
		return fmt.Sprintf("%s region=%d rank=%.3g", e.Kind, e.Region, e.Rank)
	case EventRegionProcessed:
		return fmt.Sprintf("%s region=%d joins=%d survivors=%d", e.Kind, e.Region, e.JoinResults, e.Survivors)
	case EventRegionDiscarded:
		return fmt.Sprintf("%s region=%d", e.Kind, e.Region)
	case EventCellEmitted:
		return fmt.Sprintf("%s cell=%d results=%d", e.Kind, e.Cell, e.Survivors)
	case EventSchedulerStats:
		return fmt.Sprintf("%s edges=%d refreshes=%d fenwick=%d", e.Kind, e.Edges, e.RankRefreshes, e.FenwickUpdates)
	default:
		return e.Kind.String()
	}
}

// emitTrace delivers an event if tracing is enabled.
func (r *runState) emitTrace(e Event) {
	if r.engine.opts.Trace != nil {
		r.engine.opts.Trace(e)
	}
}
