package core

import (
	"testing"

	"progxe/internal/baseline"
	"progxe/internal/mapping"
	"progxe/internal/preference"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

func emptyProblem(t *testing.T, leftN, rightN int) *smj.Problem {
	t.Helper()
	l := relation.New(relation.MustSchema("L", []string{"a", "b"}, "k"))
	r := relation.New(relation.MustSchema("R", []string{"c", "d"}, "k"))
	for i := 0; i < leftN; i++ {
		l.MustAppend(relation.Tuple{ID: int64(i), Vals: []float64{float64(i), float64(i)}, JoinKey: 1})
	}
	for i := 0; i < rightN; i++ {
		r.MustAppend(relation.Tuple{ID: int64(i), Vals: []float64{float64(i), float64(i)}, JoinKey: 1})
	}
	return &smj.Problem{
		Left:  l,
		Right: r,
		Maps: mapping.MustSet(
			mapping.Func{Name: "x", Expr: mapping.Sum(mapping.A(mapping.Left, 0, ""), mapping.A(mapping.Right, 0, ""))},
			mapping.Func{Name: "y", Expr: mapping.Sum(mapping.A(mapping.Left, 1, ""), mapping.A(mapping.Right, 1, ""))},
		),
		Pref: preference.AllLowest(2),
	}
}

func TestEmptyInputs(t *testing.T) {
	for _, c := range []struct{ l, r int }{{0, 0}, {0, 5}, {5, 0}} {
		p := emptyProblem(t, c.l, c.r)
		var sink smj.Collector
		stats, err := New(Options{}).Run(p, &sink)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.l, c.r, err)
		}
		if len(sink.Results) != 0 || stats.ResultCount != 0 {
			t.Fatalf("(%d,%d): produced %d results from empty input", c.l, c.r, len(sink.Results))
		}
	}
}

func TestSingleTuplePair(t *testing.T) {
	p := emptyProblem(t, 1, 1)
	var sink smj.Collector
	if _, err := New(Options{}).Run(p, &sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.Results) != 1 {
		t.Fatalf("want exactly 1 result, got %d", len(sink.Results))
	}
	if sink.Results[0].Out[0] != 0 || sink.Results[0].Out[1] != 0 {
		t.Fatalf("result = %v", sink.Results[0])
	}
}

func TestNoJoinPartners(t *testing.T) {
	p := emptyProblem(t, 3, 3)
	for i := range p.Right.Tuples {
		p.Right.Tuples[i].JoinKey = 99 // disjoint keys
	}
	var sink smj.Collector
	stats, err := New(Options{}).Run(p, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.Results) != 0 || stats.JoinResults != 0 {
		t.Fatalf("disjoint keys must yield nothing: %d results, %d joins", len(sink.Results), stats.JoinResults)
	}
}

func TestAllIdenticalTuples(t *testing.T) {
	p := emptyProblem(t, 4, 4)
	for i := range p.Left.Tuples {
		p.Left.Tuples[i].Vals = []float64{7, 7}
	}
	for i := range p.Right.Tuples {
		p.Right.Tuples[i].Vals = []float64{3, 3}
	}
	var sink smj.Collector
	if _, err := New(Options{}).Run(p, &sink); err != nil {
		t.Fatal(err)
	}
	// All 16 join results tie: every one is in the skyline.
	if len(sink.Results) != 16 {
		t.Fatalf("ties must all survive: got %d of 16", len(sink.Results))
	}
}

func TestOneSidedMapping(t *testing.T) {
	// Mapping functions referencing only the left side: the right side
	// contributes only join keys, and forms a single partition.
	p := emptyProblem(t, 10, 5)
	p.Maps = mapping.MustSet(
		mapping.Func{Name: "x", Expr: mapping.A(mapping.Left, 0, "")},
		mapping.Func{Name: "y", Expr: mapping.A(mapping.Left, 1, "")},
	)
	oracle, err := baseline.Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	var sink smj.Collector
	if _, err := New(Options{}).Run(p, &sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.Results) != len(oracle) {
		t.Fatalf("one-sided mapping: %d vs oracle %d", len(sink.Results), len(oracle))
	}
}

func TestConstantMappingDimension(t *testing.T) {
	// One output dimension is constant: dominance degenerates to the other
	// dimension; the engine must still agree with the oracle.
	p := emptyProblem(t, 8, 8)
	p.Maps = mapping.MustSet(
		mapping.Func{Name: "x", Expr: mapping.Sum(mapping.A(mapping.Left, 0, ""), mapping.A(mapping.Right, 0, ""))},
		mapping.Func{Name: "c", Expr: mapping.Const(5)},
	)
	oracle, err := baseline.Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	var sink smj.Collector
	if _, err := New(Options{}).Run(p, &sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.Results) != len(oracle) {
		t.Fatalf("constant dim: %d vs oracle %d", len(sink.Results), len(oracle))
	}
}

func TestHighestPreferenceEndToEnd(t *testing.T) {
	p := emptyProblem(t, 10, 10)
	p.Pref = preference.NewPareto(
		preference.Attribute{Name: "x", Order: preference.Lowest},
		preference.Attribute{Name: "y", Order: preference.Highest},
	)
	oracle, err := baseline.Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	var sink smj.Collector
	if _, err := New(Options{}).Run(p, &sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.Results) != len(oracle) {
		t.Fatalf("HIGHEST: %d vs oracle %d", len(sink.Results), len(oracle))
	}
	// Orientation preserved: emitted Out vectors are in the original
	// (non-negated) space.
	for _, r := range sink.Results {
		if r.Out[1] < 0 {
			t.Fatalf("decanonicalization failed: %v", r.Out)
		}
	}
}

func TestExtremeGridOptions(t *testing.T) {
	p := emptyProblem(t, 30, 30)
	oracle, err := baseline.Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{InputCells: 1, OutputCells: 1},
		{InputCells: 1, OutputCells: 64},
		{InputCells: 8, OutputCells: 2},
	} {
		var sink smj.Collector
		if _, err := New(opts).Run(p, &sink); err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if len(sink.Results) != len(oracle) {
			t.Fatalf("%+v: %d vs oracle %d", opts, len(sink.Results), len(oracle))
		}
	}
}

func TestEngineNames(t *testing.T) {
	cases := map[string]Options{
		"ProgXe":             {},
		"ProgXe+":            {PushThrough: true},
		"ProgXe (No-Order)":  {Ordering: OrderRandom},
		"ProgXe+ (No-Order)": {Ordering: OrderArrival, PushThrough: true},
	}
	for want, opts := range cases {
		if got := New(opts).Name(); got != want {
			t.Errorf("Name(%+v) = %q, want %q", opts, got, want)
		}
	}
	for _, o := range []Ordering{OrderProgressive, OrderRandom, OrderArrival, OrderCardinality, Ordering(9)} {
		if o.String() == "" {
			t.Fatalf("Ordering(%d) renders empty", o)
		}
	}
}

func TestInvalidProblem(t *testing.T) {
	p := emptyProblem(t, 1, 1)
	p.Pref = preference.AllLowest(5) // arity mismatch
	if _, err := New(Options{}).Run(p, &smj.Collector{}); err == nil {
		t.Fatal("invalid problem must error")
	}
}

func TestAutoCells(t *testing.T) {
	if autoCells(10, 4) != 1 {
		t.Fatalf("tiny input must use one cell, got %d", autoCells(10, 4))
	}
	if g := autoCells(100000, 1); g != 8 {
		t.Fatalf("1-d cap = %d, want 8", g)
	}
	if g := autoCells(5000, 4); g < 2 || g > 3 {
		t.Fatalf("4-d mid-size g = %d", g)
	}
	if autoOutputCells(2) != 64 || autoOutputCells(4) != 8 || autoOutputCells(5) != 5 {
		t.Fatalf("auto output cells: %d %d %d", autoOutputCells(2), autoOutputCells(4), autoOutputCells(5))
	}
}
