package core

import (
	"testing"

	"progxe/internal/core/sched"
	"progxe/internal/mapping"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// sumMaps2 is the 2-output mapping x = L0+R0, y = L1+R1 used throughout the
// running-example tests (the unweighted form of Fig. 3's arithmetic).
func sumMaps2() *mapping.Set {
	return mapping.MustSet(
		mapping.Func{Name: "tCost", Expr: mapping.Sum(mapping.A(mapping.Left, 0, ""), mapping.A(mapping.Right, 0, ""))},
		mapping.Func{Name: "delay", Expr: mapping.Sum(mapping.A(mapping.Left, 1, ""), mapping.A(mapping.Right, 1, ""))},
	)
}

// mkPart hand-builds an input partition with two corner tuples spanning the
// given box, all carrying join key 1 so that every pair is guaranteed to
// join (the "guaranteed populated" premise of §III-A).
func mkPart(id int, lo, hi []float64) *inputPartition {
	p := newPartition(id, len(lo))
	p.add(relation.Tuple{ID: int64(id * 10), Vals: append([]float64(nil), lo...), JoinKey: 1})
	p.add(relation.Tuple{ID: int64(id*10 + 1), Vals: append([]float64(nil), hi...), JoinKey: 1})
	return p
}

// TestExample2RegionElimination reproduces Example 2: a guaranteed-populated
// region whose UPPER point dominates another region's LOWER point eliminates
// it before any tuple-level work.
func TestExample2RegionElimination(t *testing.T) {
	left := []*inputPartition{
		mkPart(0, []float64{0, 0}, []float64{1, 1}),
		mkPart(1, []float64{3, 3}, []float64{5, 5}),
	}
	right := []*inputPartition{
		mkPart(2, []float64{0, 0}, []float64{1, 1}),
		mkPart(3, []float64{3, 3}, []float64{5, 5}),
	}
	regions, pruned := buildRegions(left, right, sumMaps2(), 0)
	// Region (0,2) = [(0,0),(2,2)] dominates the other three pairs, whose
	// lower corners are (3,3), (3,3) and (6,6).
	if pruned != 3 {
		t.Fatalf("pruned %d regions, want 3", pruned)
	}
	if len(regions) != 1 {
		t.Fatalf("kept %d regions, want 1", len(regions))
	}
	r := regions[0]
	if r.rect.Lower[0] != 0 || r.rect.Upper[0] != 2 {
		t.Fatalf("surviving region = %v", r.rect)
	}
	if r.joinCard != 4 {
		t.Fatalf("join cardinality = %d, want 2×2", r.joinCard)
	}
}

// TestNoEliminationAtSharedBoundary checks the strictness requirement:
// UPPER(Y) equal to LOWER(X) in every dimension has no strict dimension and
// must not eliminate.
func TestNoEliminationAtSharedBoundary(t *testing.T) {
	left := []*inputPartition{
		mkPart(0, []float64{0, 0}, []float64{1, 1}),
		mkPart(1, []float64{1, 1}, []float64{2, 2}),
	}
	right := []*inputPartition{mkPart(2, []float64{1, 1}, []float64{1, 1})}
	regions, pruned := buildRegions(left, right, sumMaps2(), 0)
	// Regions: [(1,1),(2,2)] and [(2,2),(3,3)] — upper of the first equals
	// lower of the second.
	if pruned != 1 || len(regions) != 1 {
		// Wait: UPPER (2,2) vs LOWER (2,2): ≤ everywhere but no strict
		// dimension — not dominated. Both must survive.
		if pruned != 0 || len(regions) != 2 {
			t.Fatalf("pruned=%d kept=%d, want 0/2", pruned, len(regions))
		}
	} else {
		t.Fatalf("boundary-touching region was wrongly eliminated")
	}
}

// TestExample3StaticCellMarking reproduces Example 3: output partitions of a
// region dominated by that region's own upper-bound point are marked
// non-contributing.
func TestExample3StaticCellMarking(t *testing.T) {
	// One region [(0,0),(4,4)]; a second region [(2,2),(8,8)] overlaps it
	// and extends into territory dominated by (4,4).
	left := []*inputPartition{
		mkPart(0, []float64{0, 0}, []float64{2, 2}),
		mkPart(1, []float64{1, 1}, []float64{4, 4}),
	}
	right := []*inputPartition{mkPart(2, []float64{0, 0}, []float64{2, 2})}
	maps := sumMaps2()
	regions, pruned := buildRegions(left, right, maps, 0)
	if pruned != 0 || len(regions) != 2 {
		t.Fatalf("pruned=%d regions=%d", pruned, len(regions))
	}
	var stats smj.Stats
	s, err := buildSpace(regions, 2, 6, &stats, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CellsMarked == 0 {
		t.Fatal("no cells were statically marked")
	}
	// Every marked cell's lower corner must be dominated by some region's
	// upper point; every unmarked cell must not be.
	for _, c := range s.cellList {
		dominated := false
		for _, r := range regions {
			if r.rect.UpperDominatesPoint(c.lower) {
				dominated = true
				break
			}
		}
		if dominated != c.marked {
			t.Fatalf("cell %v: dominated=%v marked=%v", c.coords, dominated, c.marked)
		}
	}
}

// TestELGraphEdges checks the §IV-B edge rule on an asymmetric overlap: the
// lower region eliminates part of the upper one but not vice versa, so only
// the lower is a root (Fig. 7's shaded-root structure in miniature).
func TestELGraphEdges(t *testing.T) {
	left := []*inputPartition{
		mkPart(0, []float64{0, 0}, []float64{2.5, 2.5}),
		mkPart(1, []float64{2, 0}, []float64{4.5, 2.5}),
	}
	right := []*inputPartition{mkPart(2, []float64{0, 0}, []float64{0, 0})}
	regions, pruned := buildRegions(left, right, sumMaps2(), 0)
	if pruned != 0 || len(regions) != 2 {
		t.Fatalf("pruned=%d regions=%d", pruned, len(regions))
	}
	var stats smj.Stats
	if _, err := buildSpace(regions, 2, 9, &stats, 0); err != nil {
		t.Fatal(err)
	}
	a, b := regions[0], regions[1] // a = [(0,0),(2.5,2.5)], b = [(2,0),(4.5,2.5)]
	boxA := sched.Box{Min: a.minC, Max: a.maxC}
	boxB := sched.Box{Min: b.minC, Max: b.maxC}
	if !sched.Eliminates(boxA, boxB) {
		t.Fatal("low region must have an elimination edge to the overlapping higher region")
	}
	if sched.Eliminates(boxB, boxA) {
		t.Fatal("higher region must not eliminate the lower one")
	}
	c := sched.NewProgressive(schedBoxes(regions), []int{9, 9}, func(int) float64 { return 0 }, 0).Counters()
	if c.Edges != 1 || c.Roots != 1 {
		t.Fatalf("EL-graph edges=%d roots=%d, want 1/1", c.Edges, c.Roots)
	}
	if sched.CompletelyEliminates(boxA, boxB) {
		t.Fatal("overlap is only partial elimination")
	}
}

// TestCompleteElimination checks Fig. 6.a's complete-elimination condition.
func TestCompleteElimination(t *testing.T) {
	left := []*inputPartition{
		mkPart(0, []float64{0, 0}, []float64{3, 3}),
		mkPart(1, []float64{2.2, 2.2}, []float64{3, 3}),
	}
	right := []*inputPartition{mkPart(2, []float64{0, 0}, []float64{0.4, 0.4})}
	regions, _ := buildRegions(left, right, sumMaps2(), 0)
	if len(regions) != 2 {
		t.Skipf("expected 2 live regions, got %d", len(regions))
	}
	var stats smj.Stats
	if _, err := buildSpace(regions, 2, 10, &stats, 0); err != nil {
		t.Fatal(err)
	}
	a, b := regions[0], regions[1]
	boxA := sched.Box{Min: a.minC, Max: a.maxC}
	boxB := sched.Box{Min: b.minC, Max: b.maxC}
	if !sched.CompletelyEliminates(boxA, boxB) {
		t.Fatalf("region %v (cells %v-%v) must completely eliminate %v (cells %v-%v)",
			a.rect, a.minC, a.maxC, b.rect, b.minC, b.maxC)
	}
	if sched.CompletelyEliminates(boxB, boxA) {
		t.Fatal("elimination cannot be mutual")
	}
}

// TestProgCountDefinition2 exercises Definition 2 directly: a region whose
// cells depend on another unprocessed region has a reduced count; once the
// other region is processed the count recovers.
func TestProgCountDefinition2(t *testing.T) {
	// Region A occupies the low corner alone; region B overlaps A's slice
	// shadow, so B's cells depend on A but not vice versa.
	left := []*inputPartition{
		mkPart(0, []float64{0, 0}, []float64{2, 2}),
		mkPart(1, []float64{2.5, 0}, []float64{5, 2}),
	}
	right := []*inputPartition{mkPart(2, []float64{0, 0}, []float64{0, 0})}
	maps := sumMaps2()
	regions, _ := buildRegions(left, right, maps, 0)
	if len(regions) != 2 {
		t.Fatalf("regions = %d", len(regions))
	}
	var stats smj.Stats
	s, err := buildSpace(regions, 2, 8, &stats, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := regions[0], regions[1]
	pcA := progCount(s, a)
	pcB := progCount(s, b)
	if pcA == 0 {
		t.Fatal("independent low region must have positive ProgCount")
	}
	if pcB >= len(b.cells) {
		t.Fatalf("dependent region reports full ProgCount %d of %d", pcB, len(b.cells))
	}
	// Simulate processing A: its cells finalize, dependencies clear.
	a.state = regionProcessed
	s.regionDone(a.cells)
	pcB2 := progCount(s, b)
	if pcB2 < pcB {
		t.Fatalf("ProgCount(B) fell from %d to %d after clearing its dependency", pcB, pcB2)
	}
	if pcB2 != len(liveUnmarked(s, b)) {
		t.Fatalf("after A: ProgCount(B) = %d, want all %d live cells", pcB2, len(liveUnmarked(s, b)))
	}
}

func liveUnmarked(s *space, r *region) []int {
	var out []int
	for _, flat := range r.cells {
		c := s.cells[flat]
		if !c.marked && !c.emitted && remainingExcluding(c, r) == 0 {
			out = append(out, flat)
		}
	}
	return out
}

// TestAnalyseRankOrdersByBenefitPerCost checks Equation 8's ordering on two
// regions with equal cost shape but different progressiveness.
func TestAnalyseRankOrdersByBenefitPerCost(t *testing.T) {
	left := []*inputPartition{
		mkPart(0, []float64{0, 0}, []float64{2, 2}),
		mkPart(1, []float64{2.5, 0}, []float64{5, 2}),
	}
	right := []*inputPartition{mkPart(2, []float64{0, 0}, []float64{0, 0})}
	regions, _ := buildRegions(left, right, sumMaps2(), 0)
	var stats smj.Stats
	s, err := buildSpace(regions, 2, 8, &stats, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := regions[0], regions[1]
	analyse(s, a, 2, 8)
	analyse(s, b, 2, 8)
	if a.cost <= 0 || b.cost <= 0 {
		t.Fatal("costs must be positive")
	}
	if a.rank <= b.rank {
		t.Fatalf("free region must outrank dependent one: %g vs %g", a.rank, b.rank)
	}
}
