package core

import (
	"fmt"
	"sort"
	"testing"

	"progxe/internal/baseline"
	"progxe/internal/datagen"
	"progxe/internal/smj"
)

// resultSet converts results to a canonical sorted key list for set
// comparison.
func resultSet(rs []smj.Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = fmt.Sprintf("%d|%d", r.LeftID, r.RightID)
	}
	sort.Strings(out)
	return out
}

func sameSet(t *testing.T, label string, got, want []smj.Result) {
	t.Helper()
	g, w := resultSet(got), resultSet(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d results, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: result set mismatch at %d: got %s want %s", label, i, g[i], w[i])
		}
	}
}

// TestEnginesAgreeWithOracle checks that every engine produces exactly the
// oracle result set over a grid of workloads (invariant 1 of DESIGN.md).
func TestEnginesAgreeWithOracle(t *testing.T) {
	engines := []smj.Engine{
		New(Options{}),
		New(Options{PushThrough: true}),
		New(Options{Ordering: OrderRandom, Seed: 11}),
		New(Options{Ordering: OrderRandom, PushThrough: true, Seed: 12}),
		New(Options{Ordering: OrderArrival}),
		New(Options{Ordering: OrderCardinality}),
		New(Options{InputCells: 2, OutputCells: 3}),
		New(Options{InputCells: 6, OutputCells: 16}),
		New(Options{Partitioning: PartitionKD}),
		&baseline.JFSL{PushThrough: true},
		&baseline.SAJ{},
		&baseline.SSMJ{Strict: true},
	}
	dists := []datagen.Distribution{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated}
	for _, dist := range dists {
		for _, d := range []int{2, 3, 4} {
			for _, sigma := range []float64{0.02, 0.1} {
				for seed := uint64(1); seed <= 3; seed++ {
					p := smokeProblem(t, 120, d, dist, sigma, seed)
					oracle, err := baseline.Oracle(p)
					if err != nil {
						t.Fatalf("oracle: %v", err)
					}
					for _, e := range engines {
						label := fmt.Sprintf("%s/%s/d=%d/σ=%g/seed=%d", e.Name(), dist, d, sigma, seed)
						var sink smj.Collector
						if _, err := e.Run(p, &sink); err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						sameSet(t, label, sink.Results, oracle)
					}
				}
			}
		}
	}
}

// TestProgressiveEmissionsAreFinal checks invariant 2: every result a
// ProgXe variant emits is in the final skyline at the moment of emission —
// there are no false positives and no retractions.
func TestProgressiveEmissionsAreFinal(t *testing.T) {
	for _, push := range []bool{false, true} {
		for seed := uint64(1); seed <= 5; seed++ {
			p := smokeProblem(t, 150, 4, datagen.AntiCorrelated, 0.05, seed)
			oracle, err := baseline.Oracle(p)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			inOracle := make(map[[2]int64]bool, len(oracle))
			for _, r := range oracle {
				inOracle[r.Key()] = true
			}
			seen := make(map[[2]int64]bool)
			sink := smj.SinkFunc(func(r smj.Result) {
				if !inOracle[r.Key()] {
					t.Fatalf("push=%v seed=%d: emitted (%d,%d) not in final skyline", push, seed, r.LeftID, r.RightID)
				}
				if seen[r.Key()] {
					t.Fatalf("push=%v seed=%d: duplicate emission (%d,%d)", push, seed, r.LeftID, r.RightID)
				}
				seen[r.Key()] = true
			})
			if _, err := New(Options{PushThrough: push}).Run(p, sink); err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(seen) != len(oracle) {
				t.Fatalf("push=%v seed=%d: emitted %d results, oracle has %d", push, seed, len(seen), len(oracle))
			}
		}
	}
}
