package smj

import "context"

// ContextEngine is implemented by engines that support cooperative
// cancellation: RunContext behaves like Run but aborts at the engine's next
// cancellation poll — returning ctx.Err() and whatever partial Stats were
// accumulated — once ctx is done. Poll granularity is per engine (regions,
// join batches, scan rows); uninterruptible phases bound the abort latency.
// Results emitted before the abort are still guaranteed to belong to the
// final skyline; the stream is merely truncated.
//
// Every engine in this repository implements ContextEngine. The interface is
// kept separate from Engine so third-party engines remain valid without a
// cancellation path; RunContext (the function) bridges the two.
type ContextEngine interface {
	Engine
	RunContext(ctx context.Context, p *Problem, sink Sink) (Stats, error)
}

// RunContext evaluates p with e under ctx. Engines implementing
// ContextEngine abort cooperatively when ctx is canceled or times out;
// plain Engines run to completion, after which a pending context error is
// still reported so callers observe a uniform contract.
func RunContext(ctx context.Context, e Engine, p *Problem, sink Sink) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ce, ok := e.(ContextEngine); ok {
		return ce.RunContext(ctx, p, sink)
	}
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	stats, err := e.Run(p, sink)
	if err == nil {
		err = ctx.Err()
	}
	return stats, err
}

// cancelCheckInterval bounds how much work an engine performs between two
// context polls on its hot paths (join probes, dominance inserts). Polling
// ctx.Err() costs an atomic load; every few thousand tuples keeps abort
// latency in the microsecond range without measurable overhead.
const cancelCheckInterval = 4096

// Canceler amortizes context polling on per-tuple hot paths: Check reports
// a non-nil error only once ctx is done, inspecting ctx at most every
// cancelCheckInterval calls.
type Canceler struct {
	ctx context.Context
	n   int
	err error
}

// NewCanceler returns a Canceler polling ctx (nil means Background, so
// engines' RunContext methods tolerate a nil context like RunContext does).
func NewCanceler(ctx context.Context) *Canceler {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Canceler{ctx: ctx}
}

// Check returns ctx.Err() once the context is done, polling at most every
// cancelCheckInterval calls (and remembering a seen error forever). A nil
// Canceler never cancels, so helpers can take one optionally.
func (c *Canceler) Check() error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	if c.n++; c.n >= cancelCheckInterval {
		c.n = 0
		c.err = c.ctx.Err()
	}
	return c.err
}

// Now polls the context immediately, bypassing the amortization window.
func (c *Canceler) Now() error {
	if c == nil {
		return nil
	}
	if c.err == nil {
		c.err = c.ctx.Err()
	}
	return c.err
}
