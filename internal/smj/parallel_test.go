package smj

import (
	"context"
	"testing"
)

func TestWithParallelism(t *testing.T) {
	if n, ok := ParallelismFrom(context.Background()); ok || n != 0 {
		t.Fatalf("unset context reports (%d, %v)", n, ok)
	}
	if n, ok := ParallelismFrom(nil); ok || n != 0 {
		t.Fatalf("nil context reports (%d, %v)", n, ok)
	}
	ctx := WithParallelism(context.Background(), 4)
	if n, ok := ParallelismFrom(ctx); !ok || n != 4 {
		t.Fatalf("ParallelismFrom = (%d, %v), want (4, true)", n, ok)
	}
	// An explicit zero is a request (force serial), distinct from unset.
	ctx = WithParallelism(ctx, 0)
	if n, ok := ParallelismFrom(ctx); !ok || n != 0 {
		t.Fatalf("override = (%d, %v), want (0, true)", n, ok)
	}
	if ctx := WithParallelism(nil, 2); ctx == nil {
		t.Fatal("nil parent must yield a usable context")
	}
}
