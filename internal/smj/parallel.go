package smj

import "context"

// parallelismKey carries a per-run parallelism request through the context
// of RunContext, so callers that hold only an Engine value (the query
// service routing a per-request "workers" knob, for example) can ask for a
// worker count without reconstructing the engine.
type parallelismKey struct{}

// WithParallelism returns a context requesting that engines run with n
// worker goroutines. Engines that support parallel execution (the ProgXe
// core) read the value in RunContext, where it overrides their configured
// worker count; n = 0 forces a serial run. Engines without a parallel path
// ignore it. The request never changes the result stream: parallel ProgXe
// runs are byte-identical to serial ones.
func WithParallelism(ctx context.Context, n int) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, parallelismKey{}, n)
}

// ParallelismFrom reports the worker count requested via WithParallelism,
// and whether one was set at all.
func ParallelismFrom(ctx context.Context) (int, bool) {
	if ctx == nil {
		return 0, false
	}
	n, ok := ctx.Value(parallelismKey{}).(int)
	return n, ok
}

// committersKey carries a per-run committer-count request, the partitioned
// commit stage's analogue of parallelismKey.
type committersKey struct{}

// WithCommitters returns a context requesting that engines run the commit
// stage across n output-space-partitioned committer goroutines. The ProgXe
// core reads the value in RunContext, where it overrides the configured
// Options.Committers; n = 0 keeps the commit protocol on the sequencer. The
// request only takes effect when the run is parallel (workers ≥ 1) and, like
// WithParallelism, never changes the result stream.
func WithCommitters(ctx context.Context, n int) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, committersKey{}, n)
}

// CommittersFrom reports the committer count requested via WithCommitters,
// and whether one was set at all.
func CommittersFrom(ctx context.Context) (int, bool) {
	if ctx == nil {
		return 0, false
	}
	n, ok := ctx.Value(committersKey{}).(int)
	return n, ok
}

// speculateKey carries a per-run speculation-depth request, the cross-round
// pipelining analogue of parallelismKey.
type speculateKey struct{}

// WithSpeculate returns a context requesting that engines speculate up to n
// rounds ahead: phase-1 dominance scans for upcoming rounds run against a
// stale space snapshot while the current round's commits drain, with
// speculative survivors revalidated against only the per-round deltas. The
// ProgXe core reads the value in RunContext, where it overrides the
// configured Options.SpeculateRounds; n = 0 disables speculation. The
// request only takes effect on parallel runs with partitioned committers
// and a spare precheck lane (workers ≥ 2 and committers ≥ 1) and, like
// WithParallelism, never changes the result stream.
func WithSpeculate(ctx context.Context, n int) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, speculateKey{}, n)
}

// SpeculateFrom reports the speculation depth requested via WithSpeculate,
// and whether one was set at all.
func SpeculateFrom(ctx context.Context) (int, bool) {
	if ctx == nil {
		return 0, false
	}
	n, ok := ctx.Value(speculateKey{}).(int)
	return n, ok
}
