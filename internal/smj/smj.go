// Package smj defines the execution model shared by every SkyMapJoin engine
// in this repository: the problem statement (two sources, selections, an
// equi-join, mapping functions, and a Pareto preference — §II-B), the
// progressive result stream, and the engine interface implemented by the
// ProgXe framework (internal/core) and all baselines (internal/baseline).
package smj

import (
	"fmt"

	"progxe/internal/mapping"
	"progxe/internal/preference"
	"progxe/internal/relation"
)

// Problem is a fully specified SkyMapJoin query over materialized inputs:
//
//	SELECT <maps as output dims>
//	FROM Left, Right
//	WHERE Left.joinKey = Right.joinKey AND <selections already applied>
//	PREFERRING <pref over the output dims>
//
// Engines assume selections were applied (see Apply) and that Left/Right are
// immutable for the duration of a run.
type Problem struct {
	Left  *relation.Relation
	Right *relation.Relation
	Maps  *mapping.Set
	Pref  *preference.Pareto
}

// Validate checks structural consistency: the preference arity must match
// the mapping arity, and every mapping attribute reference must be within
// the corresponding schema.
func (p *Problem) Validate() error {
	if p.Left == nil || p.Right == nil {
		return fmt.Errorf("smj: problem needs both input relations")
	}
	if p.Maps == nil {
		return fmt.Errorf("smj: problem needs a mapping set")
	}
	if p.Pref == nil {
		return fmt.Errorf("smj: problem needs a preference")
	}
	if p.Pref.Dims() != p.Maps.Dims() {
		return fmt.Errorf("smj: preference has %d dimensions but mapping produces %d", p.Pref.Dims(), p.Maps.Dims())
	}
	for _, side := range []mapping.Side{mapping.Left, mapping.Right} {
		arity := p.Left.Schema.Arity()
		if side == mapping.Right {
			arity = p.Right.Schema.Arity()
		}
		for _, idx := range p.Maps.UsedAttrs(side) {
			if idx < 0 || idx >= arity {
				return fmt.Errorf("smj: mapping references %s[%d] but side has arity %d", side, idx, arity)
			}
		}
	}
	return nil
}

// Canonicalized returns a problem equivalent to p in which every output
// dimension is minimized: dimensions the preference maximizes are negated in
// the mapping functions. Engines that reason in minimized space (all of
// them) run on the canonical problem; emitted vectors are converted back by
// Decanonicalize.
func (p *Problem) Canonicalized() (*Problem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Pref.Canonical() {
		return p, nil
	}
	funcs := make([]mapping.Func, p.Maps.Dims())
	attrs := p.Pref.Attributes()
	for j := 0; j < p.Maps.Dims(); j++ {
		f := p.Maps.Func(j)
		if attrs[j].Order == preference.Highest {
			f = mapping.Func{Name: f.Name, Expr: mapping.Scale{Factor: -1, Of: f.Expr}}
		}
		funcs[j] = f
	}
	ms, err := mapping.NewSet(funcs...)
	if err != nil {
		return nil, err
	}
	return &Problem{
		Left:  p.Left,
		Right: p.Right,
		Maps:  ms,
		Pref:  preference.AllLowest(p.Pref.Dims()),
	}, nil
}

// Decanonicalize converts a canonical (minimized) output vector back to the
// original orientation of pref, in place, and returns it.
func Decanonicalize(pref *preference.Pareto, v []float64) []float64 {
	for j, a := range pref.Attributes() {
		if a.Order == preference.Highest {
			v[j] = -v[j]
		}
	}
	return v
}

// Result is one skyline result: the identifiers of the joined pair and the
// mapped output vector (in the original preference orientation).
//
// Out is owned by the engine and must be treated as read-only: engines may
// hand out internal buffers that stay live for the rest of the run (the
// ProgXe core aliases its arena-backed survivor vectors, which later
// dominance tests still read). It is safe to retain Out indefinitely;
// callers that want to modify the values must clone the slice first.
type Result struct {
	LeftID  int64
	RightID int64
	Out     []float64
}

// Sink receives progressively emitted results. Emit is called once per
// result, in emission order; results emitted early are guaranteed by the
// engine to belong to the final skyline. Sinks must not mutate Result.Out
// (see Result).
type Sink interface {
	Emit(Result)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Result)

// Emit implements Sink.
func (f SinkFunc) Emit(r Result) { f(r) }

// Collector is a Sink that stores every emitted result in order.
type Collector struct {
	Results []Result
}

// Emit implements Sink.
func (c *Collector) Emit(r Result) { c.Results = append(c.Results, r) }

// Stats summarizes one engine run. Engines fill the fields they can; zero
// means "not tracked".
type Stats struct {
	JoinResults     int // join pairs materialized
	MappedDiscarded int // mapped tuples discarded without any dominance test
	DomComparisons  int // pairwise dominance comparisons performed
	ResultCount     int // results emitted
	Regions         int // output regions formed (ProgXe engines)
	RegionsPruned   int // regions eliminated by look-ahead (ProgXe engines)
	RegionsDropped  int // regions discarded during execution (ProgXe engines)
	CellsMarked     int // output cells marked non-contributing (ProgXe engines)
	PushPruned      int // source tuples removed by partial push-through

	// Scheduler-layer counters (ProgXe engines with graph ordering).
	SchedEdges         int // EL-Graph edges installed by the scheduler
	SchedRankRefreshes int // lazy benefit/cost refreshes at queue-pop
	FenwickUpdates     int // point updates on the active-cell and in-degree Fenwick trees

	// Speculative-pipelining counters (ProgXe engines with SpeculateRounds).
	// Like DomComparisons these are scheduling-dependent — how many rounds
	// get speculated depends on which prefetch jobs happen to be ready — so
	// the differential harness exempts them from byte-identity.
	SpecRounds      int // speculative phase-1 scans launched against stale snapshots
	SpecHits        int // rounds whose stale verdicts were consumed (drain overlapped)
	SpecRevalChecks int // speculative survivors revalidated against per-round deltas
}

// Engine evaluates a SkyMapJoin problem, streaming results to sink.
type Engine interface {
	// Name identifies the engine in benchmark output (e.g. "ProgXe+").
	Name() string
	// Run evaluates the problem. Results emitted to sink before Run returns
	// are complete and correct: exactly the skyline of the mapped join.
	Run(p *Problem, sink Sink) (Stats, error)
}

// Apply returns copies of the problem's relations with the given selection
// predicates applied (nil predicates keep everything). Query planning in the
// paper pushes selections below everything else; engines receive
// pre-filtered inputs.
func Apply(p *Problem, leftPred, rightPred relation.Predicate) *Problem {
	out := *p
	if leftPred != nil {
		out.Left = p.Left.Select(leftPred)
	}
	if rightPred != nil {
		out.Right = p.Right.Select(rightPred)
	}
	return &out
}

// Key returns a stable identity for a result pair, used by tests to compare
// result sets across engines.
func (r Result) Key() [2]int64 { return [2]int64{r.LeftID, r.RightID} }
