package smj

import (
	"math"
	"testing"

	"progxe/internal/mapping"
	"progxe/internal/preference"
	"progxe/internal/relation"
)

func testProblem(t *testing.T) *Problem {
	t.Helper()
	l := relation.New(relation.MustSchema("L", []string{"a", "b"}, "k"))
	r := relation.New(relation.MustSchema("R", []string{"c", "d"}, "k"))
	l.MustAppend(relation.Tuple{ID: 1, Vals: []float64{1, 2}, JoinKey: 1})
	l.MustAppend(relation.Tuple{ID: 2, Vals: []float64{3, 4}, JoinKey: 2})
	r.MustAppend(relation.Tuple{ID: 10, Vals: []float64{5, 6}, JoinKey: 1})
	return &Problem{
		Left:  l,
		Right: r,
		Maps: mapping.MustSet(
			mapping.Func{Name: "x", Expr: mapping.Sum(mapping.A(mapping.Left, 0, ""), mapping.A(mapping.Right, 0, ""))},
			mapping.Func{Name: "y", Expr: mapping.Sum(mapping.A(mapping.Left, 1, ""), mapping.A(mapping.Right, 1, ""))},
		),
		Pref: preference.AllLowest(2),
	}
}

func TestValidate(t *testing.T) {
	p := testProblem(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	bad := *p
	bad.Left = nil
	if bad.Validate() == nil {
		t.Fatal("nil relation must error")
	}
	bad = *p
	bad.Maps = nil
	if bad.Validate() == nil {
		t.Fatal("nil maps must error")
	}
	bad = *p
	bad.Pref = nil
	if bad.Validate() == nil {
		t.Fatal("nil preference must error")
	}
	bad = *p
	bad.Pref = preference.AllLowest(3)
	if bad.Validate() == nil {
		t.Fatal("arity mismatch must error")
	}
	bad = *p
	bad.Maps = mapping.MustSet(
		mapping.Func{Name: "x", Expr: mapping.A(mapping.Left, 7, "")},
		mapping.Func{Name: "y", Expr: mapping.Const(0)},
	)
	if bad.Validate() == nil {
		t.Fatal("out-of-range attribute must error")
	}
}

func TestCanonicalized(t *testing.T) {
	p := testProblem(t)
	cp, err := p.Canonicalized()
	if err != nil {
		t.Fatal(err)
	}
	if cp != p {
		t.Fatal("already-canonical problem must be returned unchanged")
	}

	p.Pref = preference.NewPareto(
		preference.Attribute{Name: "x", Order: preference.Lowest},
		preference.Attribute{Name: "y", Order: preference.Highest},
	)
	cp, err = p.Canonicalized()
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Pref.Canonical() {
		t.Fatal("canonicalized preference must minimize everything")
	}
	// The HIGHEST dimension is negated in the mapping.
	orig := p.Maps.Map([]float64{1, 2}, []float64{5, 6}, make([]float64, 2))
	canon := cp.Maps.Map([]float64{1, 2}, []float64{5, 6}, make([]float64, 2))
	if canon[0] != orig[0] || canon[1] != -orig[1] {
		t.Fatalf("canonical map = %v, original = %v", canon, orig)
	}
	// Decanonicalize restores the original orientation.
	back := Decanonicalize(p.Pref, []float64{canon[0], canon[1]})
	if back[0] != orig[0] || math.Abs(back[1]-orig[1]) > 1e-12 {
		t.Fatalf("decanonicalize = %v, want %v", back, orig)
	}
}

func TestApply(t *testing.T) {
	p := testProblem(t)
	q := Apply(p, relation.AttrCmp{Attr: "a", Op: LTConst, Const: 2}, nil)
	if q.Left.Len() != 1 || q.Left.Tuples[0].ID != 1 {
		t.Fatalf("selection kept %v", q.Left.Tuples)
	}
	if q.Right.Len() != p.Right.Len() {
		t.Fatal("nil predicate must keep everything")
	}
}

// LTConst aliases relation.LT for readability in the test above.
const LTConst = relation.LT

func TestSinks(t *testing.T) {
	var c Collector
	c.Emit(Result{LeftID: 1, RightID: 2})
	if len(c.Results) != 1 {
		t.Fatal("collector must store results")
	}
	called := false
	SinkFunc(func(Result) { called = true }).Emit(Result{})
	if !called {
		t.Fatal("SinkFunc must invoke the function")
	}
	if (Result{LeftID: 3, RightID: 4}).Key() != [2]int64{3, 4} {
		t.Fatal("result key wrong")
	}
}

func TestPushThroughKeepsSkylineContributors(t *testing.T) {
	// Two tuples with the same key: (1,1) dominates (2,2); a third with a
	// different key must be untouched even though (1,1) beats it.
	l := relation.New(relation.MustSchema("L", []string{"a", "b"}, "k"))
	l.MustAppend(relation.Tuple{ID: 1, Vals: []float64{1, 1}, JoinKey: 1})
	l.MustAppend(relation.Tuple{ID: 2, Vals: []float64{2, 2}, JoinKey: 1})
	l.MustAppend(relation.Tuple{ID: 3, Vals: []float64{9, 9}, JoinKey: 2})
	maps := mapping.MustSet(
		mapping.Func{Name: "x", Expr: mapping.Sum(mapping.A(mapping.Left, 0, ""), mapping.A(mapping.Right, 0, ""))},
		mapping.Func{Name: "y", Expr: mapping.Sum(mapping.A(mapping.Left, 1, ""), mapping.A(mapping.Right, 1, ""))},
	)
	out, pruned := PushThrough(l, maps, mapping.Left)
	if pruned != 1 || out.Len() != 2 {
		t.Fatalf("pruned %d, kept %d", pruned, out.Len())
	}
	ids := []int64{out.Tuples[0].ID, out.Tuples[1].ID}
	if ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("kept %v, want [1 3]", ids)
	}
	// No pruning possible: relation returned unchanged (shared).
	same, n := PushThrough(out, maps, mapping.Left)
	if n != 0 || same != out {
		t.Fatal("no-op pruning must return the input")
	}
}

func TestPushThroughMixedMonotonicityIsNoop(t *testing.T) {
	l := relation.New(relation.MustSchema("L", []string{"a"}, "k"))
	l.MustAppend(relation.Tuple{ID: 1, Vals: []float64{1}, JoinKey: 1})
	l.MustAppend(relation.Tuple{ID: 2, Vals: []float64{2}, JoinKey: 1})
	maps := mapping.MustSet(
		mapping.Func{Name: "x", Expr: mapping.A(mapping.Left, 0, "")},
		mapping.Func{Name: "y", Expr: mapping.Scale{Factor: -1, Of: mapping.A(mapping.Left, 0, "")}},
	)
	out, n := PushThrough(l, maps, mapping.Left)
	if n != 0 || out != l {
		t.Fatal("mixed monotonicity must disable pruning")
	}
}

func TestGroupSkylines(t *testing.T) {
	l := relation.New(relation.MustSchema("L", []string{"a", "b"}, "k"))
	l.MustAppend(relation.Tuple{ID: 0, Vals: []float64{1, 1}, JoinKey: 1})
	l.MustAppend(relation.Tuple{ID: 1, Vals: []float64{2, 2}, JoinKey: 1}) // dominated in group 1
	l.MustAppend(relation.Tuple{ID: 2, Vals: []float64{5, 0}, JoinKey: 1}) // incomparable survivor
	l.MustAppend(relation.Tuple{ID: 3, Vals: []float64{9, 9}, JoinKey: 2}) // alone in group 2
	maps := mapping.MustSet(
		mapping.Func{Name: "x", Expr: mapping.Sum(mapping.A(mapping.Left, 0, ""), mapping.A(mapping.Right, 0, ""))},
		mapping.Func{Name: "y", Expr: mapping.Sum(mapping.A(mapping.Left, 1, ""), mapping.A(mapping.Right, 1, ""))},
	)
	groups := GroupSkylines(l, maps, mapping.Left)
	if len(groups[1]) != 2 || len(groups[2]) != 1 {
		t.Fatalf("group skylines = %v", groups)
	}
}
