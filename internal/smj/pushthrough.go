package smj

import (
	"progxe/internal/mapping"
	"progxe/internal/relation"
)

// PushThrough applies skyline partial push-through [1][10] to one source:
// within each join-key group, tuples dominated by another tuple of the same
// group under the mapping monotonicity plan cannot contribute any
// undominated output for any join partner and are removed. Pruning across
// groups is unsound (the join partner differs), and pruning is skipped
// entirely when the mapping's monotonicity is mixed on this side (the
// soundness condition of mapping.Set.PushThrough).
//
// It returns the (possibly shared) pruned relation and the number of tuples
// removed.
func PushThrough(rel *relation.Relation, maps *mapping.Set, side mapping.Side) (*relation.Relation, int) {
	return PushThroughContext(rel, maps, side, nil)
}

// PushThroughContext is PushThrough polling cancel (which may be nil) inside
// the per-group dominance scans — the scan is quadratic per join-key group,
// so a canceled run must not have to wait it out. Once canceled it returns
// the input untouched; the caller aborts right after.
func PushThroughContext(rel *relation.Relation, maps *mapping.Set, side mapping.Side, cancel *Canceler) (*relation.Relation, int) {
	plan, err := maps.PushThrough(side)
	if err != nil || len(plan.Attrs) == 0 {
		return rel, 0
	}
	groups := make(map[int64][]int)
	for i, t := range rel.Tuples {
		groups[t.JoinKey] = append(groups[t.JoinKey], i)
	}
	keep := make([]bool, len(rel.Tuples))
	for _, idxs := range groups {
		for _, i := range idxs {
			if cancel.Check() != nil {
				return rel, 0
			}
			dominated := false
			for _, j := range idxs {
				if i != j && plan.Dominates(rel.Tuples[j].Vals, rel.Tuples[i].Vals) {
					dominated = true
					break
				}
			}
			keep[i] = !dominated
		}
	}
	pruned := 0
	for _, k := range keep {
		if !k {
			pruned++
		}
	}
	if pruned == 0 {
		return rel, 0
	}
	out := relation.New(rel.Schema)
	for i, t := range rel.Tuples {
		if keep[i] {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, pruned
}

// GroupSkylines partitions the relation's tuples by join key and computes
// the group-level skyline of each group under the mapping monotonicity plan
// — the LS(N) lists maintained by SSMJ (§VI-A). If the plan is unavailable
// (mixed monotonicity) every tuple is its own group skyline member.
// The result maps each join key to the indices of its group-skyline tuples.
func GroupSkylines(rel *relation.Relation, maps *mapping.Set, side mapping.Side) map[int64][]int {
	return GroupSkylinesContext(rel, maps, side, nil)
}

// GroupSkylinesContext is GroupSkylines polling cancel (which may be nil)
// inside the per-group dominance scans. Once canceled the remaining groups
// keep their unfiltered index lists — unusable, but the caller aborts right
// after.
func GroupSkylinesContext(rel *relation.Relation, maps *mapping.Set, side mapping.Side, cancel *Canceler) map[int64][]int {
	groups := make(map[int64][]int)
	for i, t := range rel.Tuples {
		groups[t.JoinKey] = append(groups[t.JoinKey], i)
	}
	plan, err := maps.PushThrough(side)
	if err != nil || len(plan.Attrs) == 0 {
		return groups
	}
	for key, idxs := range groups {
		var keep []int
		for _, i := range idxs {
			if cancel.Check() != nil {
				return groups
			}
			dominated := false
			for _, j := range idxs {
				if i != j && plan.Dominates(rel.Tuples[j].Vals, rel.Tuples[i].Vals) {
					dominated = true
					break
				}
			}
			if !dominated {
				keep = append(keep, i)
			}
		}
		groups[key] = keep
	}
	return groups
}
