package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Span is one complete interval on a named track of the exported trace —
// a phase interval on the sequencer or a worker lane, or a region's
// processing window on the regions track.
type Span struct {
	Track string         // track (Chrome trace thread) the span renders on
	Name  string         // span label
	Start time.Duration  // offset from the trace epoch
	Dur   time.Duration  // span length
	Args  map[string]any // optional key/values shown in the viewer
}

// Instant is a zero-duration marker (an emitted cell, a scheduler event).
type Instant struct {
	Track string
	Name  string
	Ts    time.Duration
	Args  map[string]any
}

// chromeEvent is one entry of the Chrome trace-event JSON array format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// the subset Perfetto and chrome://tracing both load: complete events
// (ph "X"), instant events (ph "i"), and thread-name metadata (ph "M").
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders spans and instants as a Chrome trace-event JSON
// array, one track per distinct Track name (stable order: "sequencer" first,
// then lexicographic), loadable in Perfetto or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []Span, instants []Instant) error {
	tracks := map[string]int{}
	trackID := func(name string) int {
		if id, ok := tracks[name]; ok {
			return id
		}
		id := len(tracks)
		tracks[name] = id
		return id
	}

	// Assign track ids deterministically: sequencer first, rest sorted.
	names := map[string]bool{}
	for _, s := range spans {
		names[s.Track] = true
	}
	for _, i := range instants {
		names[i.Track] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		if n != "sequencer" {
			ordered = append(ordered, n)
		}
	}
	sort.Strings(ordered)
	if names["sequencer"] {
		ordered = append([]string{"sequencer"}, ordered...)
	}

	events := make([]chromeEvent, 0, len(spans)+len(instants)+len(ordered))
	for _, n := range ordered {
		events = append(events, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  trackID(n),
			Args: map[string]any{"name": n},
		})
	}
	for _, s := range spans {
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   micros(s.Start),
			Dur:  micros(s.Dur),
			Pid:  1,
			Tid:  trackID(s.Track),
			Args: s.Args,
		})
	}
	for _, i := range instants {
		events = append(events, chromeEvent{
			Name: i.Name,
			Ph:   "i",
			Ts:   micros(i.Ts),
			Pid:  1,
			Tid:  trackID(i.Track),
			S:    "t",
			Args: i.Args,
		})
	}

	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

func micros(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}

// TraceJSON renders spans and instants to an in-memory JSON document —
// the server stores these per run for /v1/runs/{id}/trace.
func TraceJSON(spans []Span, instants []Instant) ([]byte, error) {
	var buf writerBuffer
	if err := WriteChromeTrace(&buf, spans, instants); err != nil {
		return nil, err
	}
	return buf.b, nil
}

type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
