package obs

import "time"

// maxTimelineSamples bounds the timeline's memory regardless of result-set
// size. When the buffer fills, the sampling stride doubles and every other
// retained sample is dropped — a classic decimation scheme that keeps the
// retained samples evenly spread over the emission sequence.
const maxTimelineSamples = 4096

// Timeline records the emission-count-vs-time curve of one run: callers
// Observe the clock at every emitted result, and Quantiles reduces the curve
// to the paper's progressiveness milestones (time to first / 10% / 50% /
// 90% / last result). Memory is bounded by decimation; the first and last
// emissions are always tracked exactly. Not safe for concurrent use — it is
// meant to live inside a single-goroutine sink, which is where every caller
// in this repository delivers results.
type Timeline struct {
	start   time.Time
	count   int64 // total observations
	stride  int64 // keep every stride-th observation
	samples []sample
	last    int64 // clock of the most recent observation, nanos
}

type sample struct {
	index int64 // 0-based emission index
	nanos int64 // time since start
}

// NewTimeline returns a timeline whose clock starts at start. Use the run's
// own start time so quantiles measure from query admission, matching TTFR.
func NewTimeline(start time.Time) *Timeline {
	return &Timeline{start: start, stride: 1}
}

// Observe records one emitted result at the current clock. Amortized cost is
// one time.Since call; appends go into a preallocated-capacity buffer except
// at the (at most ~12) stride doublings.
func (t *Timeline) Observe() {
	if t == nil {
		return
	}
	now := int64(time.Since(t.start))
	idx := t.count
	t.count++
	t.last = now
	if idx%t.stride != 0 {
		return
	}
	if len(t.samples) >= maxTimelineSamples {
		// Halve the retained samples, double the stride.
		kept := t.samples[:0]
		for i, s := range t.samples {
			if i%2 == 0 {
				kept = append(kept, s)
			}
		}
		t.samples = kept
		t.stride *= 2
		if idx%t.stride != 0 {
			return
		}
	}
	t.samples = append(t.samples, sample{index: idx, nanos: now})
}

// Quantiles is the reduced progressiveness curve of one run. All times are
// milliseconds since the timeline's start; a zero Count means no results
// were emitted and every time is zero.
type Quantiles struct {
	Count       int64   `json:"count"`
	FirstMillis float64 `json:"firstMillis"`
	P10Millis   float64 `json:"p10Millis"`
	P50Millis   float64 `json:"p50Millis"`
	P90Millis   float64 `json:"p90Millis"`
	LastMillis  float64 `json:"lastMillis"`
}

// Quantiles reduces the observed curve. Interior milestones (10/50/90%)
// come from the decimated samples — worst-case index error is one stride,
// i.e. count/4096; first and last are exact.
func (t *Timeline) Quantiles() Quantiles {
	var q Quantiles
	if t == nil || t.count == 0 {
		return q
	}
	q.Count = t.count
	q.FirstMillis = millis(t.samples[0].nanos)
	q.LastMillis = millis(t.last)
	q.P10Millis = millis(t.at(t.count / 10))
	q.P50Millis = millis(t.at(t.count / 2))
	q.P90Millis = millis(t.at(t.count * 9 / 10))
	return q
}

// at returns the clock of the first retained sample at or after emission
// index i (the last observation if none is).
func (t *Timeline) at(i int64) int64 {
	for _, s := range t.samples {
		if s.index >= i {
			return s.nanos
		}
	}
	return t.last
}
