package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	if got := p.Clock(); got != 0 {
		t.Fatalf("nil profiler Clock = %d, want 0", got)
	}
	p.EndSequencer(PhaseCommit, 0)
	p.EndWorker(PhasePrefetch, 1, 0)
	p.EnableSpans()
	if r := p.Report(); len(r.Phases) != 0 || r.SequencerMillis != 0 {
		t.Fatalf("nil profiler Report = %+v, want zero", r)
	}
	if s := p.Spans(); s != nil {
		t.Fatalf("nil profiler Spans = %v, want nil", s)
	}
	if !p.Epoch().IsZero() {
		t.Fatalf("nil profiler Epoch not zero")
	}
}

func TestProfilerAttribution(t *testing.T) {
	p := NewProfiler()
	// Synthesized intervals: sequencer commit 10ms, determine 5ms,
	// sched 5ms; workers prefetch 8ms total.
	now := p.Clock()
	p.EndSequencer(PhaseCommit, now-10*int64(time.Millisecond))
	p.EndSequencer(PhaseDetermine, now-5*int64(time.Millisecond))
	p.EndSequencer(PhaseSched, now-5*int64(time.Millisecond))
	p.EndWorker(PhasePrefetch, 1, now-3*int64(time.Millisecond))
	p.EndWorker(PhasePrefetch, 2, now-5*int64(time.Millisecond))

	r := p.Report()
	if r.SequencerMillis < 19 || r.SequencerMillis > 21 {
		t.Fatalf("SequencerMillis = %v, want ~20", r.SequencerMillis)
	}
	if r.WorkerMillis < 7 || r.WorkerMillis > 9 {
		t.Fatalf("WorkerMillis = %v, want ~8", r.WorkerMillis)
	}
	// Serial fraction = (commit+determine)/sequencer total = 15/20.
	if r.SerialCommitFraction < 0.70 || r.SerialCommitFraction > 0.80 {
		t.Fatalf("SerialCommitFraction = %v, want ~0.75", r.SerialCommitFraction)
	}
	var phases []string
	for _, ph := range r.Phases {
		phases = append(phases, ph.Phase)
	}
	want := []string{"sched", "prefetch", "commit", "determine"}
	if strings.Join(phases, ",") != strings.Join(want, ",") {
		t.Fatalf("phases = %v, want %v (pipeline order)", phases, want)
	}
	if s := r.String(); !strings.Contains(s, "commit=") || !strings.Contains(s, "prefetch=") {
		t.Fatalf("Report.String() = %q, want phase=millis pairs", s)
	}
}

func TestProfilerEmitExcludedFromTotals(t *testing.T) {
	p := NewProfiler()
	now := p.Clock()
	p.EndSequencer(PhaseDetermine, now-10*int64(time.Millisecond))
	p.EndSequencer(PhaseEmit, now-4*int64(time.Millisecond))
	r := p.Report()
	// Emit nests inside determine; totals must not double-count it.
	if r.SequencerMillis < 9 || r.SequencerMillis > 11 {
		t.Fatalf("SequencerMillis = %v, want ~10 (emit excluded)", r.SequencerMillis)
	}
	found := false
	for _, ph := range r.Phases {
		if ph.Phase == "emit" {
			found = true
		}
	}
	if !found {
		t.Fatalf("emit phase missing from report rows: %+v", r.Phases)
	}
}

func TestProfilerConcurrentWorkers(t *testing.T) {
	p := NewProfiler()
	var wg sync.WaitGroup
	for w := 1; w <= 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				start := p.Clock()
				p.EndWorker(PhasePrecheck, w, start)
			}
		}(w)
	}
	wg.Wait()
	// No assertion on totals (durations ~0); the point is the race detector.
	_ = p.Report()
}

func TestProfilerSpans(t *testing.T) {
	p := NewProfiler()
	p.EnableSpans()
	now := p.Clock()
	p.EndSequencer(PhaseCommit, now-int64(time.Millisecond))
	p.EndWorker(PhasePrefetch, 2, now-int64(time.Millisecond))
	spans := p.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	byTrack := map[string]string{}
	for _, s := range spans {
		byTrack[s.Track] = s.Name
	}
	if byTrack["sequencer"] != "commit" || byTrack["worker 2"] != "prefetch" {
		t.Fatalf("span tracks wrong: %+v", byTrack)
	}
}

func TestTimelineQuantiles(t *testing.T) {
	start := time.Now().Add(-100 * time.Millisecond)
	tl := NewTimeline(start)
	for i := 0; i < 1000; i++ {
		tl.Observe()
	}
	q := tl.Quantiles()
	if q.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", q.Count)
	}
	// All observations happen "now", ~100ms after the backdated start.
	if q.FirstMillis < 90 || q.LastMillis < q.FirstMillis {
		t.Fatalf("quantiles not ordered from backdated start: %+v", q)
	}
	if q.P10Millis > q.P50Millis+1 || q.P50Millis > q.P90Millis+1 || q.P90Millis > q.LastMillis+1 {
		t.Fatalf("quantiles out of order: %+v", q)
	}
}

func TestTimelineDecimationBounded(t *testing.T) {
	tl := NewTimeline(time.Now())
	const n = 100_000
	for i := 0; i < n; i++ {
		tl.Observe()
	}
	if len(tl.samples) > maxTimelineSamples {
		t.Fatalf("samples = %d, exceeds bound %d", len(tl.samples), maxTimelineSamples)
	}
	q := tl.Quantiles()
	if q.Count != n {
		t.Fatalf("Count = %d, want %d", q.Count, n)
	}
	// First sample must remain the exact first emission.
	if tl.samples[0].index != 0 {
		t.Fatalf("first sample index = %d, want 0", tl.samples[0].index)
	}
	// Retained samples stay evenly spread: the milestone lookup error is
	// bounded by one stride.
	if got := tl.at(n / 2); got == tl.last && tl.samples[len(tl.samples)-1].index < n/2 {
		t.Fatalf("P50 lookup fell through to last sample")
	}
}

func TestTimelineNilAndEmpty(t *testing.T) {
	var tl *Timeline
	tl.Observe() // must not panic
	if q := tl.Quantiles(); q.Count != 0 {
		t.Fatalf("nil timeline quantiles = %+v", q)
	}
	empty := NewTimeline(time.Now())
	if q := empty.Quantiles(); q != (Quantiles{}) {
		t.Fatalf("empty timeline quantiles = %+v, want zero", q)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	spans := []Span{
		{Track: "sequencer", Name: "commit", Start: 10 * time.Microsecond, Dur: 40 * time.Microsecond},
		{Track: "regions", Name: "region 3", Start: 5 * time.Microsecond, Dur: 60 * time.Microsecond,
			Args: map[string]any{"rank": 1.5}},
	}
	instants := []Instant{
		{Track: "emissions", Name: "cell 7", Ts: 30 * time.Microsecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, instants); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	// The output must be a valid JSON array of trace events.
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not a JSON array: %v\n%s", err, buf.String())
	}

	var metas, completes, instantsSeen int
	tidByName := map[string]float64{}
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			metas++
			args := ev["args"].(map[string]any)
			tidByName[args["name"].(string)] = ev["tid"].(float64)
		case "X":
			completes++
			if ev["name"] == "commit" {
				if ev["ts"].(float64) != 10 || ev["dur"].(float64) != 40 {
					t.Fatalf("commit span ts/dur wrong: %v", ev)
				}
			}
		case "i":
			instantsSeen++
			if ev["s"] != "t" {
				t.Fatalf("instant scope = %v, want t", ev["s"])
			}
		default:
			t.Fatalf("unexpected ph %v", ev["ph"])
		}
	}
	if metas != 3 || completes != 2 || instantsSeen != 1 {
		t.Fatalf("event counts meta=%d complete=%d instant=%d, want 3/2/1", metas, completes, instantsSeen)
	}
	// Sequencer is always track 0.
	if tidByName["sequencer"] != 0 {
		t.Fatalf("sequencer tid = %v, want 0", tidByName["sequencer"])
	}

	// TraceJSON returns the same document.
	doc, err := TraceJSON(spans, instants)
	if err != nil {
		t.Fatalf("TraceJSON: %v", err)
	}
	if !bytes.Equal(doc, buf.Bytes()) {
		t.Fatalf("TraceJSON differs from WriteChromeTrace output")
	}
}

func TestPhaseStrings(t *testing.T) {
	seen := map[string]bool{}
	for ph := Phase(0); ph < NumPhases; ph++ {
		s := ph.String()
		if s == "" || strings.HasPrefix(s, "Phase(") {
			t.Fatalf("phase %d has no name", ph)
		}
		if seen[s] {
			t.Fatalf("duplicate phase name %q", s)
		}
		seen[s] = true
	}
}
