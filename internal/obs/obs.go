// Package obs is the run-level observability subsystem: a low-overhead phase
// profiler with serial-vs-parallel attribution, a progressiveness timeline
// reduced to time-to-fraction quantiles, and a Chrome-trace-event exporter
// for Perfetto.
//
// The package is deliberately engine-agnostic — it never imports the engine
// packages. The engine (internal/core) holds a *Profiler in its options and
// reports phase intervals into it; callers observe emissions into a Timeline
// from their own sinks; trace export consumes generic spans and instants.
//
// The design constraint that shapes every type here is non-perturbation: an
// engine run with observability enabled must produce the byte-identical
// result stream of an unobserved run (enforced by the differential harness
// in internal/core), and the instrumentation itself must be allocation-free
// on the hot path — the profiler only reads the monotonic clock and adds to
// preallocated atomic accumulators; the timeline appends to a geometrically
// decimated sample buffer whose size is bounded regardless of run length.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one stage of the engine pipeline for profiling. The set
// mirrors Fig. 2's pipeline plus the parallel runner's stage split.
type Phase uint8

const (
	// PhasePartition covers input preprocessing: partial push-through (when
	// enabled) and input-space partitioning of both sources.
	PhasePartition Phase = iota
	// PhaseRegionBuild covers partition pairing into candidate regions
	// (join-signature intersection + interval propagation).
	PhaseRegionBuild
	// PhasePrune covers region-level domination pruning over the output-
	// space box index.
	PhasePrune
	// PhaseSpaceBuild covers output grid construction, cell coverage,
	// index construction, and static cell marking.
	PhaseSpaceBuild
	// PhaseSched covers the scheduler layer: EL-Graph construction, region
	// selection at the top of every round, and lazy rank refreshes.
	PhaseSched
	// PhasePrefetch covers candidate-stream materialization (join matching,
	// mapping, cell routing, coordinate sums). On worker lanes this is the
	// prefetch workers' stream construction; on the sequencer lane it is the
	// time spent waiting for (or inline-building) the stream at a region's
	// turn. Serial runs fold this work into PhaseCommit.
	PhasePrefetch
	// PhasePrecheck covers the phase-1 dominance scans of large rounds
	// against the frozen pre-round space. The sequencer lane records the
	// whole barrier (including its own help draining the task queue);
	// worker lanes record their individual task scans.
	PhasePrecheck
	// PhaseCommit covers the tuple-commit protocol. In serial runs this
	// includes the fused join+map+insert loop; with partitioned committers
	// enabled the sequencer lane records verdict/routing time and committer
	// lanes record log application (eviction scans, buffer inserts).
	PhaseCommit
	// PhaseCommitWait covers the sequencer's synchronization against the
	// committer pool: the per-round drain barrier and the bounded completion
	// queue behind emission records. It is sequencer wall-clock during which
	// committers are doing the commit work, so it counts toward the
	// sequencer total but never toward the serial commit share.
	PhaseCommitWait
	// PhaseSpeculate covers speculative cross-round phase-1 scans: worker
	// lanes record the stale-snapshot dominance scans they run for rounds
	// whose predecessors are still draining; the sequencer lane records its
	// fence against outstanding speculative scans. Sequencer time here is
	// synchronization, not commit work, so — like PhaseCommitWait — it never
	// joins the serial commit share.
	PhaseSpeculate
	// PhaseRevalidate covers the sequencer's delta revalidation of
	// speculative survivors: each survivor of a stale-snapshot scan is
	// re-checked against only the per-round survivor deltas admitted since
	// the snapshot, instead of the whole space.
	PhaseRevalidate
	// PhaseDetermine covers the progressive result determination cascade,
	// dominance discards of live regions, and the scheduler graph updates
	// after each round.
	PhaseDetermine
	// PhaseEmit covers sink delivery of emitted cells. Emission happens
	// inside the determination cascade, so this phase is a subset of
	// PhaseDetermine and is excluded from lane totals.
	PhaseEmit

	// NumPhases bounds the phase enum.
	NumPhases
)

// String names the phase the way reports and the trace viewer label it.
func (p Phase) String() string {
	switch p {
	case PhasePartition:
		return "partition"
	case PhaseRegionBuild:
		return "region-build"
	case PhasePrune:
		return "prune"
	case PhaseSpaceBuild:
		return "space-build"
	case PhaseSched:
		return "sched"
	case PhasePrefetch:
		return "prefetch"
	case PhasePrecheck:
		return "precheck"
	case PhaseCommit:
		return "commit"
	case PhaseCommitWait:
		return "commit-wait"
	case PhaseSpeculate:
		return "speculate"
	case PhaseRevalidate:
		return "revalidate"
	case PhaseDetermine:
		return "determine"
	case PhaseEmit:
		return "emit"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// phaseSpan is one recorded interval for trace export (EnableSpans only).
type phaseSpan struct {
	phase      Phase
	lane       int32 // 0 = sequencer, k > 0 = worker k (committers above the base)
	start, dur int64 // nanos since epoch
}

// Profiler accumulates monotonic-clock phase intervals for one engine run,
// attributed to the sequencer goroutine or to worker goroutines. All methods
// are safe on a nil receiver (no-ops returning zero), so instrumented code
// needs no call-site guards; EndSequencer/EndWorker are safe for concurrent
// use (atomic adds). The zero value is not usable; construct with
// NewProfiler.
type Profiler struct {
	epoch time.Time
	seq   [NumPhases]atomic.Int64 // nanos on the sequencer goroutine
	par   [NumPhases]atomic.Int64 // nanos aggregated across workers
	com   [NumPhases]atomic.Int64 // nanos aggregated across committers

	// committerBase is the first lane number owned by a committer (the
	// engine assigns lanes 1..2w to the prefetch/precheck workers and
	// 2w+1..2w+c to the committers). 0 means no committer lanes exist.
	committerBase atomic.Int32

	spanMu    sync.Mutex
	spans     []phaseSpan
	recording atomic.Bool
}

// NewProfiler returns a profiler whose clock starts now.
func NewProfiler() *Profiler {
	return &Profiler{epoch: time.Now()}
}

// Epoch returns the profiler's clock origin, so companion recorders (the
// engine's trace recorder) can align their timestamps to the same timeline.
func (p *Profiler) Epoch() time.Time {
	if p == nil {
		return time.Time{}
	}
	return p.epoch
}

// EnableSpans turns on span recording for trace export: every phase interval
// is additionally kept as an individual span. Costs one mutex-guarded append
// per interval, so it is opt-in (the -trace-out / per-request trace paths).
func (p *Profiler) EnableSpans() {
	if p != nil {
		p.recording.Store(true)
	}
}

// Clock reads the profiler's monotonic clock: nanoseconds since the epoch.
// Returns 0 on a nil profiler, pairing with the no-op End methods so
// instrumented code can call unconditionally.
func (p *Profiler) Clock() int64 {
	if p == nil {
		return 0
	}
	return int64(time.Since(p.epoch))
}

// EndSequencer closes an interval opened at start (a Clock() value) on the
// sequencer lane, attributing it to the given phase.
func (p *Profiler) EndSequencer(ph Phase, start int64) {
	if p == nil {
		return
	}
	p.end(ph, 0, start)
}

// EndWorker closes an interval opened at start on a worker lane. worker
// numbers the lane for trace export (1-based across the pool); attribution
// aggregates worker lanes together, and — when a committer lane base is set —
// committer lanes into their own bucket.
func (p *Profiler) EndWorker(ph Phase, worker int, start int64) {
	if p == nil {
		return
	}
	p.end(ph, int32(worker), start)
}

// SetCommitterLaneBase declares that lanes ≥ base belong to committer
// goroutines, splitting their attribution (and span track naming) from the
// prefetch/precheck workers. base ≤ 0 clears the split.
func (p *Profiler) SetCommitterLaneBase(base int) {
	if p == nil {
		return
	}
	p.committerBase.Store(int32(base))
}

func (p *Profiler) end(ph Phase, lane int32, start int64) {
	now := int64(time.Since(p.epoch))
	d := now - start
	if d < 0 {
		d = 0
	}
	switch base := p.committerBase.Load(); {
	case lane == 0:
		p.seq[ph].Add(d)
	case base > 0 && lane >= base:
		p.com[ph].Add(d)
	default:
		p.par[ph].Add(d)
	}
	if p.recording.Load() {
		p.spanMu.Lock()
		p.spans = append(p.spans, phaseSpan{phase: ph, lane: lane, start: start, dur: d})
		p.spanMu.Unlock()
	}
}

// PhaseTotals is one phase's accumulated time, split by lane class.
type PhaseTotals struct {
	Phase           string  `json:"phase"`
	SequencerMillis float64 `json:"sequencerMillis"`
	WorkerMillis    float64 `json:"workerMillis,omitempty"`
	CommitterMillis float64 `json:"committerMillis,omitempty"`
}

// Report is the profiler's run-level digest: per-phase totals plus the
// serial-vs-parallel attribution the parallel-commit decision gates on.
type Report struct {
	// Phases lists every phase with non-zero time, in pipeline order.
	Phases []PhaseTotals `json:"phases"`
	// SequencerMillis totals the sequencer lane across phases (PhaseEmit
	// excluded — it nests inside PhaseDetermine).
	SequencerMillis float64 `json:"sequencerMillis"`
	// WorkerMillis totals the aggregated worker lanes across phases.
	WorkerMillis float64 `json:"workerMillis"`
	// CommitterMillis totals the aggregated committer lanes across phases —
	// commit work that partitioned committers took off the sequencer.
	CommitterMillis float64 `json:"committerMillis,omitempty"`
	// SerialCommitFraction is the share of sequencer time spent in the
	// inherently serial stages (commit + determination cascade) — the
	// first-party number behind the parallel-commit frontier. Time the
	// sequencer spends blocked on the committer pool (PhaseCommitWait)
	// counts toward the denominator but never the numerator: during it the
	// commit work is running on committer lanes, not the sequencer.
	SerialCommitFraction float64 `json:"serialCommitFraction"`
}

// Report reduces the accumulators to a Report. Safe on a nil profiler
// (returns the zero Report).
func (p *Profiler) Report() Report {
	var r Report
	if p == nil {
		return r
	}
	var seqTotal, serial int64
	for ph := Phase(0); ph < NumPhases; ph++ {
		s, w, c := p.seq[ph].Load(), p.par[ph].Load(), p.com[ph].Load()
		if s == 0 && w == 0 && c == 0 {
			continue
		}
		r.Phases = append(r.Phases, PhaseTotals{
			Phase:           ph.String(),
			SequencerMillis: millis(s),
			WorkerMillis:    millis(w),
			CommitterMillis: millis(c),
		})
		if ph != PhaseEmit {
			seqTotal += s
			r.WorkerMillis += millis(w)
			r.CommitterMillis += millis(c)
		}
		if ph == PhaseCommit || ph == PhaseDetermine {
			serial += s
		}
	}
	r.SequencerMillis = millis(seqTotal)
	if seqTotal > 0 {
		r.SerialCommitFraction = float64(serial) / float64(seqTotal)
	}
	return r
}

// SetupMillis totals the sequencer time of the plan-construction phases —
// partition, region-build, and prune. A run served from a prepared-plan
// cache skips all three, so its report reads ≈ 0 here; load tests and the
// serve-layer cache assert exactly that.
func (r Report) SetupMillis() float64 {
	var t float64
	for _, ph := range r.Phases {
		switch ph.Phase {
		case PhasePartition.String(), PhaseRegionBuild.String(), PhasePrune.String():
			t += ph.SequencerMillis
		}
	}
	return t
}

// String renders the report as one compact line ("commit=1.2ms determine=0.8ms …"),
// the shape the per-run structured log attaches.
func (r Report) String() string {
	var sb strings.Builder
	for i, ph := range r.Phases {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%.2fms", ph.Phase, ph.SequencerMillis)
		if ph.WorkerMillis > 0 {
			fmt.Fprintf(&sb, "+w%.2fms", ph.WorkerMillis)
		}
		if ph.CommitterMillis > 0 {
			fmt.Fprintf(&sb, "+c%.2fms", ph.CommitterMillis)
		}
	}
	return sb.String()
}

// Spans converts the recorded span log (EnableSpans) into trace spans:
// sequencer intervals on the "sequencer" track, worker intervals on
// per-worker tracks.
func (p *Profiler) Spans() []Span {
	if p == nil {
		return nil
	}
	p.spanMu.Lock()
	defer p.spanMu.Unlock()
	out := make([]Span, 0, len(p.spans))
	base := p.committerBase.Load()
	for _, s := range p.spans {
		track := "sequencer"
		switch {
		case s.lane > 0 && base > 0 && s.lane >= base:
			track = fmt.Sprintf("committer %d", s.lane-base+1)
		case s.lane > 0:
			track = fmt.Sprintf("worker %d", s.lane)
		}
		out = append(out, Span{
			Track: track,
			Name:  s.phase.String(),
			Start: time.Duration(s.start),
			Dur:   time.Duration(s.dur),
		})
	}
	return out
}

func millis(nanos int64) float64 {
	return float64(nanos) / float64(time.Millisecond)
}
