package feed

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// DefaultPollInterval is how often TailSource re-checks the file for
// appended lines when no unread data is buffered.
const DefaultPollInterval = 50 * time.Millisecond

// TailSource tails a change-log file, parsing appended lines as changes. Two
// line formats are auto-detected per line:
//
//   - NDJSON: {"op":"insert","relation":"hotels","id":7,"vals":[0.2,0.3],"joinKey":4}
//   - CSV:    insert,hotels,7,4,0.2,0.3   (op,relation,id,joinKey,vals...)
//
// Blank lines and #-comments are skipped. Only complete (newline-terminated)
// lines are consumed, so a writer appending a line in multiple writes is
// never seen half-way. A file that shrinks (truncation/rotation) restarts
// the tail from the top. TailSource is single-consumer.
type TailSource struct {
	path string
	poll time.Duration

	f      *os.File
	offset int64
	buf    []byte
	seq    uint64 // connector-local line counter, diagnostic only
}

// NewTailSource tails the file at path, starting at the beginning. A
// non-positive poll interval selects DefaultPollInterval. The file does not
// need to exist yet; Next waits for it to appear.
func NewTailSource(path string, poll time.Duration) *TailSource {
	if poll <= 0 {
		poll = DefaultPollInterval
	}
	return &TailSource{path: path, poll: poll}
}

// Close releases the underlying file handle.
func (s *TailSource) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Next returns the next change appended to the file, blocking (polling)
// until one is available or ctx is done. Malformed lines return an error
// carrying the line number; the tail advances past them, so a caller that
// logs and retries skips the bad line.
func (s *TailSource) Next(ctx context.Context) (Change, error) {
	for {
		line, ok, err := s.nextLine(ctx)
		if err != nil {
			return Change{}, err
		}
		if !ok {
			select {
			case <-ctx.Done():
				return Change{}, ctx.Err()
			case <-time.After(s.poll):
				continue
			}
		}
		s.seq++
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		c, err := ParseLine(string(line))
		if err != nil {
			return Change{}, fmt.Errorf("feed: %s line %d: %w", s.path, s.seq, err)
		}
		return c, nil
	}
}

// nextLine returns the next complete line from the buffered tail, reading
// newly appended bytes from the file when the buffer holds none.
func (s *TailSource) nextLine(ctx context.Context) ([]byte, bool, error) {
	if i := bytes.IndexByte(s.buf, '\n'); i >= 0 {
		line := s.buf[:i]
		s.buf = s.buf[i+1:]
		return line, true, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	if s.f == nil {
		f, err := os.Open(s.path)
		if err != nil {
			if os.IsNotExist(err) {
				return nil, false, nil // not created yet: poll
			}
			return nil, false, err
		}
		s.f = f
		s.offset = 0
	}
	st, err := s.f.Stat()
	if err != nil {
		return nil, false, err
	}
	if st.Size() < s.offset { // truncated or rotated in place: restart
		s.offset = 0
		s.buf = nil
	}
	if st.Size() == s.offset {
		return nil, false, nil
	}
	chunk := make([]byte, st.Size()-s.offset)
	n, err := s.f.ReadAt(chunk, s.offset)
	if err != nil && err != io.EOF {
		return nil, false, err
	}
	s.offset += int64(n)
	s.buf = append(s.buf, chunk[:n]...)
	if i := bytes.IndexByte(s.buf, '\n'); i >= 0 {
		line := s.buf[:i]
		s.buf = s.buf[i+1:]
		return line, true, nil
	}
	return nil, false, nil
}

// ParseLine parses one change-log line in either wire format: NDJSON when it
// starts with '{', CSV (op,relation,id,joinKey,vals...) otherwise.
func ParseLine(line string) (Change, error) {
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "{") {
		var c Change
		if err := c.UnmarshalJSON([]byte(line)); err != nil {
			return Change{}, err
		}
		return c, nil
	}
	fields := strings.Split(line, ",")
	if len(fields) < 3 {
		return Change{}, fmt.Errorf("csv change needs at least op,relation,id: %q", line)
	}
	op, err := ParseOp(strings.TrimSpace(fields[0]))
	if err != nil {
		return Change{}, err
	}
	c := Change{Relation: strings.TrimSpace(fields[1]), Op: op}
	c.ID, err = strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
	if err != nil {
		return Change{}, fmt.Errorf("bad id %q: %w", fields[2], err)
	}
	if op == OpDelete {
		if len(fields) > 3 {
			return Change{}, fmt.Errorf("delete takes op,relation,id only: %q", line)
		}
		return c, nil
	}
	if len(fields) < 4 {
		return Change{}, fmt.Errorf("insert needs op,relation,id,joinKey,vals...: %q", line)
	}
	c.JoinKey, err = strconv.ParseInt(strings.TrimSpace(fields[3]), 10, 64)
	if err != nil {
		return Change{}, fmt.Errorf("bad joinKey %q: %w", fields[3], err)
	}
	for _, f := range fields[4:] {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return Change{}, fmt.Errorf("bad value %q: %w", f, err)
		}
		c.Vals = append(c.Vals, v)
	}
	return c, nil
}
