// Package feed defines the change-stream connector layer for live queries:
// a Change is one base-relation mutation (insert or delete), a Source
// delivers Changes in order, and connectors adapt external systems to the
// Source interface. The serve layer applies each change to its catalog —
// stamping it with the catalog's monotonic sequence — and fans it out to
// live subscriptions.
//
// Two connectors ship in-process: MemSource (a bounded in-memory queue for
// tests and embedding) and TailSource (a CSV/NDJSON file tailer, so the
// engine work is not blocked on a database integration).
package feed

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
)

// Op is the kind of a change.
type Op int8

// Change operations.
const (
	// OpInsert adds a new tuple to a relation.
	OpInsert Op = iota
	// OpDelete removes an existing tuple by ID.
	OpDelete
)

// String returns the wire spelling of the operation.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("Op(%d)", int8(o))
	}
}

// ParseOp parses the wire spelling of an operation.
func ParseOp(s string) (Op, error) {
	switch s {
	case "insert":
		return OpInsert, nil
	case "delete":
		return OpDelete, nil
	default:
		return 0, fmt.Errorf("feed: unknown op %q", s)
	}
}

// Change is one base-relation mutation. Seq is assigned by the applier (the
// serve catalog's change counter); connectors leave it zero. Vals and
// JoinKey are meaningful for inserts only.
type Change struct {
	Seq      uint64
	Relation string
	Op       Op
	ID       int64
	Vals     []float64
	JoinKey  int64
}

// changeJSON is the NDJSON wire shape of a Change.
type changeJSON struct {
	Seq      uint64    `json:"seq,omitempty"`
	Relation string    `json:"relation,omitempty"`
	Op       string    `json:"op"`
	ID       int64     `json:"id"`
	Vals     []float64 `json:"vals,omitempty"`
	JoinKey  int64     `json:"joinKey,omitempty"`
}

// MarshalJSON renders the change in its NDJSON wire shape, spelling the
// operation as "insert" / "delete".
func (c Change) MarshalJSON() ([]byte, error) {
	return json.Marshal(changeJSON{
		Seq: c.Seq, Relation: c.Relation, Op: c.Op.String(),
		ID: c.ID, Vals: c.Vals, JoinKey: c.JoinKey,
	})
}

// UnmarshalJSON parses the NDJSON wire shape, validating the operation.
func (c *Change) UnmarshalJSON(b []byte) error {
	var w changeJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	op, err := ParseOp(w.Op)
	if err != nil {
		return err
	}
	*c = Change{Seq: w.Seq, Relation: w.Relation, Op: op, ID: w.ID, Vals: w.Vals, JoinKey: w.JoinKey}
	return nil
}

// Source is a connector delivering changes in order. Next blocks until a
// change is available, the source is exhausted (io.EOF for finite sources),
// or ctx is done (ctx.Err()).
type Source interface {
	Next(ctx context.Context) (Change, error)
}

// MemSource is an in-process Source: a FIFO queue fed by Append. It is safe
// for one producer and one consumer goroutine.
type MemSource struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Change
	closed bool
}

// NewMemSource returns an empty in-process source.
func NewMemSource() *MemSource {
	s := &MemSource{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Append enqueues a change. Appending to a closed source panics.
func (s *MemSource) Append(c Change) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		panic("feed: Append on closed MemSource")
	}
	s.queue = append(s.queue, c)
	s.cond.Broadcast()
}

// Close marks the source exhausted: Next drains the queue then returns
// ErrClosed.
func (s *MemSource) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}

// ErrClosed is returned by Next once a closed source is fully drained.
var ErrClosed = fmt.Errorf("feed: source closed")

// Next returns the next queued change, blocking until one arrives, the
// source closes, or ctx is done.
func (s *MemSource) Next(ctx context.Context) (Change, error) {
	stop := context.AfterFunc(ctx, s.cond.Broadcast)
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.queue) > 0 {
			c := s.queue[0]
			s.queue = s.queue[1:]
			return c, nil
		}
		if s.closed {
			return Change{}, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return Change{}, err
		}
		s.cond.Wait()
	}
}
