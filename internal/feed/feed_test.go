package feed

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestChangeJSONRoundTrip(t *testing.T) {
	in := Change{Seq: 9, Relation: "hotels", Op: OpInsert, ID: 41, Vals: []float64{0.25, 0.5}, JoinKey: 3}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Change
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
	if err := json.Unmarshal([]byte(`{"op":"upsert","id":1}`), &out); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestParseLineCSV(t *testing.T) {
	c, err := ParseLine("insert, hotels, 7, 4, 0.2, 0.3")
	if err != nil {
		t.Fatal(err)
	}
	want := Change{Relation: "hotels", Op: OpInsert, ID: 7, JoinKey: 4, Vals: []float64{0.2, 0.3}}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("got %+v want %+v", c, want)
	}
	c, err = ParseLine("delete,flights,12")
	if err != nil {
		t.Fatal(err)
	}
	if c.Op != OpDelete || c.ID != 12 || c.Relation != "flights" {
		t.Fatalf("got %+v", c)
	}
	for _, bad := range []string{"", "insert", "insert,r", "insert,r,x,1,2", "delete,r,1,extra", "insert,r,1,k", "insert,r,1,1,nanx"} {
		if _, err := ParseLine(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestMemSource(t *testing.T) {
	s := NewMemSource()
	s.Append(Change{ID: 1, Op: OpInsert})
	s.Append(Change{ID: 2, Op: OpDelete})
	ctx := context.Background()
	for i, want := range []int64{1, 2} {
		c, err := s.Next(ctx)
		if err != nil || c.ID != want {
			t.Fatalf("next %d: %v %v", i, c, err)
		}
	}
	// Blocking Next wakes on Append.
	done := make(chan Change, 1)
	go func() {
		c, _ := s.Next(ctx)
		done <- c
	}()
	time.Sleep(10 * time.Millisecond)
	s.Append(Change{ID: 3})
	select {
	case c := <-done:
		if c.ID != 3 {
			t.Fatalf("got %+v", c)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not wake on Append")
	}
	// Cancellation unblocks.
	cctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		_, err := s.Next(cctx)
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not unblock on cancel")
	}
	s.Close()
	if _, err := s.Next(ctx); err != ErrClosed {
		t.Fatalf("closed drain err = %v", err)
	}
}

func TestTailSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "changes.ndjson")
	s := NewTailSource(path, time.Millisecond)
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// File appears after the tail starts; partial lines are not consumed.
	go func() {
		time.Sleep(5 * time.Millisecond)
		f, err := os.Create(path)
		if err != nil {
			panic(err)
		}
		defer f.Close()
		f.WriteString("# change log\n")
		f.WriteString(`{"op":"insert","relation":"r","id":1,"vals":[0.5],"joinKey":2}` + "\n")
		f.WriteString("delete,r,9\n")
		f.WriteString(`{"op":"insert","relation":"r","id`) // torn write, no newline
		f.Sync()
		time.Sleep(10 * time.Millisecond)
		f.WriteString(`":2,"vals":[0.25],"joinKey":2}` + "\n")
	}()

	c, err := s.Next(ctx)
	if err != nil || c.ID != 1 || c.Op != OpInsert || c.Relation != "r" {
		t.Fatalf("first change: %+v %v", c, err)
	}
	c, err = s.Next(ctx)
	if err != nil || c.ID != 9 || c.Op != OpDelete {
		t.Fatalf("second change: %+v %v", c, err)
	}
	c, err = s.Next(ctx)
	if err != nil || c.ID != 2 || len(c.Vals) != 1 || c.Vals[0] != 0.25 {
		t.Fatalf("torn-write change: %+v %v", c, err)
	}

	// Malformed line surfaces an error and is skipped.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("bogus line\ninsert,r,5,1,0.75\n")
	f.Close()
	if _, err := s.Next(ctx); err == nil {
		t.Fatal("malformed line did not error")
	}
	c, err = s.Next(ctx)
	if err != nil || c.ID != 5 {
		t.Fatalf("change after malformed line: %+v %v", c, err)
	}

	// Cancellation unblocks an idle tail.
	cctx, cancel2 := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Next(cctx)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel2()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tail did not unblock on cancel")
	}
}
