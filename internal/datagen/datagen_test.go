package datagen

import (
	"math"
	"reflect"
	"testing"

	"progxe/internal/join"
	"progxe/internal/skyline"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{N: -1, Dims: 2}); err == nil {
		t.Fatal("negative N must error")
	}
	if _, err := Generate(Spec{N: 5, Dims: 0}); err == nil {
		t.Fatal("zero dims must error")
	}
}

func TestDeterminism(t *testing.T) {
	spec := Spec{N: 200, Dims: 3, Distribution: AntiCorrelated, Selectivity: 0.01, Seed: 42}
	a := MustGenerate(spec)
	b := MustGenerate(spec)
	if !reflect.DeepEqual(a.Tuples, b.Tuples) {
		t.Fatal("same seed must generate identical data")
	}
	spec.Seed = 43
	c := MustGenerate(spec)
	if reflect.DeepEqual(a.Tuples, c.Tuples) {
		t.Fatal("different seeds must differ")
	}
}

func TestValueRanges(t *testing.T) {
	for _, dist := range []Distribution{Independent, Correlated, AntiCorrelated} {
		rel := MustGenerate(Spec{N: 500, Dims: 4, Distribution: dist, Selectivity: 0.1, Seed: 1})
		if rel.Len() != 500 {
			t.Fatalf("%s: N = %d", dist, rel.Len())
		}
		for _, tu := range rel.Tuples {
			for _, v := range tu.Vals {
				if v < AttrMin || v > AttrMax {
					t.Fatalf("%s: value %g out of [%g, %g]", dist, v, AttrMin, AttrMax)
				}
			}
		}
	}
}

func TestSchemaShape(t *testing.T) {
	rel := MustGenerate(Spec{Name: "X", N: 3, Dims: 2, Seed: 1, Selectivity: 0.5})
	if rel.Schema.Name != "X" || rel.Schema.JoinAttr != "jkey" {
		t.Fatalf("schema = %s", rel.Schema)
	}
	if rel.Schema.Attrs[0] != "a0" || rel.Schema.Attrs[1] != "a1" {
		t.Fatalf("attrs = %v", rel.Schema.Attrs)
	}
	anon := MustGenerate(Spec{N: 1, Dims: 1, Seed: 1, Selectivity: 1})
	if anon.Schema.Name != "synthetic" {
		t.Fatalf("default name = %q", anon.Schema.Name)
	}
}

// TestDistributionSkylineShape checks the defining property of the three
// regimes: at equal N and d, skyline size grows correlated < independent <
// anti-correlated [1].
func TestDistributionSkylineShape(t *testing.T) {
	sizes := map[Distribution]int{}
	for _, dist := range []Distribution{Correlated, Independent, AntiCorrelated} {
		rel := MustGenerate(Spec{N: 2000, Dims: 3, Distribution: dist, Selectivity: 1, Seed: 5})
		pts := make([][]float64, rel.Len())
		for i, tu := range rel.Tuples {
			pts[i] = tu.Vals
		}
		sizes[dist] = len(skyline.Compute(skyline.SFS, pts))
	}
	if !(sizes[Correlated] < sizes[Independent] && sizes[Independent] < sizes[AntiCorrelated]) {
		t.Fatalf("skyline sizes out of order: %v", sizes)
	}
	if sizes[Correlated] > 40 {
		t.Fatalf("correlated skyline too large: %d", sizes[Correlated])
	}
	if sizes[AntiCorrelated] < 100 {
		t.Fatalf("anti-correlated skyline too small: %d", sizes[AntiCorrelated])
	}
}

func TestJoinSelectivityTarget(t *testing.T) {
	for _, sigma := range []float64{0.001, 0.01, 0.1} {
		r, s, err := GeneratePair(Spec{N: 4000, Dims: 2, Distribution: Independent, Selectivity: sigma, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		got := join.Selectivity(r.Tuples, s.Tuples)
		if math.Abs(got-sigma)/sigma > 0.35 {
			t.Errorf("σ target %g: measured %g (>35%% off)", sigma, got)
		}
	}
}

func TestJoinDomain(t *testing.T) {
	if (Spec{Selectivity: 0.01}).JoinDomain() != 100 {
		t.Fatal("σ=0.01 → domain 100")
	}
	if (Spec{Selectivity: 1}).JoinDomain() != 1 {
		t.Fatal("σ=1 → domain 1")
	}
	if (Spec{Selectivity: 0}).JoinDomain() < 1<<20 {
		t.Fatal("σ=0 → effectively unjoinable domain")
	}
	if (Spec{Selectivity: 2}).JoinDomain() != 1 {
		t.Fatal("σ>1 clamps to 1")
	}
}

func TestGeneratePairIndependence(t *testing.T) {
	r, s, err := GeneratePair(Spec{N: 100, Dims: 2, Selectivity: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema.Name != "R" || s.Schema.Name != "T" {
		t.Fatalf("pair names: %s, %s", r.Schema.Name, s.Schema.Name)
	}
	if reflect.DeepEqual(r.Tuples, s.Tuples) {
		t.Fatal("pair sides must be independently generated")
	}
}

func TestParseDistribution(t *testing.T) {
	good := map[string]Distribution{
		"independent": Independent, "ind": Independent, "indep": Independent,
		"correlated": Correlated, "cor": Correlated, "corr": Correlated,
		"anti-correlated": AntiCorrelated, "anti": AntiCorrelated,
		"anticorrelated": AntiCorrelated, "anticor": AntiCorrelated,
	}
	for s, want := range good {
		got, err := ParseDistribution(s)
		if err != nil || got != want {
			t.Errorf("ParseDistribution(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDistribution("bogus"); err == nil {
		t.Fatal("unknown distribution must error")
	}
	for _, d := range []Distribution{Independent, Correlated, AntiCorrelated, Distribution(9)} {
		if d.String() == "" {
			t.Fatalf("Distribution(%d) renders empty", d)
		}
	}
}
