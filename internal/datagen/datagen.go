// Package datagen re-implements the de-facto standard synthetic data
// generator for stress-testing skyline algorithms (Börzsönyi, Kossmann,
// Stocker [1]) used by the paper's performance study (§VI-A): independent,
// correlated, and anti-correlated attribute distributions with values in
// [1, 100], plus a join-key generator that realizes a target join
// selectivity σ.
//
// All generation is deterministic given a seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"progxe/internal/relation"
)

// Distribution selects the attribute correlation regime.
type Distribution int8

// Supported distributions.
const (
	Independent Distribution = iota
	Correlated
	AntiCorrelated
)

// String returns the distribution's name as used in the paper's figures.
func (d Distribution) String() string {
	switch d {
	case Independent:
		return "independent"
	case Correlated:
		return "correlated"
	case AntiCorrelated:
		return "anti-correlated"
	default:
		return fmt.Sprintf("Distribution(%d)", int8(d))
	}
}

// ParseDistribution parses "independent", "correlated" or "anti-correlated"
// (and the short forms ind/cor/anti).
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "independent", "ind", "indep":
		return Independent, nil
	case "correlated", "cor", "corr":
		return Correlated, nil
	case "anti-correlated", "anti", "anticorrelated", "anticor":
		return AntiCorrelated, nil
	default:
		return 0, fmt.Errorf("datagen: unknown distribution %q", s)
	}
}

// Attribute value range used throughout the paper's experiments.
const (
	AttrMin = 1.0
	AttrMax = 100.0
)

// Spec describes one synthetic relation.
type Spec struct {
	Name         string
	N            int          // cardinality
	Dims         int          // number of skyline-relevant attributes
	Distribution Distribution // correlation regime
	Selectivity  float64      // target join selectivity σ (join domain = ⌈1/σ⌉)
	Seed         uint64       // RNG seed; same seed, same data
}

// JoinDomain returns the join-key domain size realizing σ: keys are drawn
// uniformly from [0, JoinDomain), so two random tuples share a key with
// probability 1/JoinDomain ≈ σ.
func (s Spec) JoinDomain() int64 {
	if s.Selectivity <= 0 {
		return 1 << 30 // effectively no matches
	}
	if s.Selectivity >= 1 {
		return 1
	}
	return int64(math.Ceil(1 / s.Selectivity))
}

// Generate produces the relation described by the spec. Attribute columns
// are named a0..a(Dims-1) and the join attribute "jkey".
func Generate(spec Spec) (*relation.Relation, error) {
	if spec.N < 0 {
		return nil, fmt.Errorf("datagen: negative cardinality %d", spec.N)
	}
	if spec.Dims <= 0 {
		return nil, fmt.Errorf("datagen: need at least one dimension, got %d", spec.Dims)
	}
	name := spec.Name
	if name == "" {
		name = "synthetic"
	}
	attrs := make([]string, spec.Dims)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	schema, err := relation.NewSchema(name, attrs, "jkey")
	if err != nil {
		return nil, err
	}
	rel := relation.New(schema)
	rng := rand.New(rand.NewPCG(spec.Seed, spec.Seed^0x9e3779b97f4a7c15))
	domain := spec.JoinDomain()
	for i := 0; i < spec.N; i++ {
		vals := make([]float64, spec.Dims)
		switch spec.Distribution {
		case Correlated:
			correlated(rng, vals)
		case AntiCorrelated:
			antiCorrelated(rng, vals)
		default:
			independent(rng, vals)
		}
		rel.Tuples = append(rel.Tuples, relation.Tuple{
			ID:      int64(i),
			Vals:    vals,
			JoinKey: rng.Int64N(domain),
		})
	}
	return rel, nil
}

// MustGenerate is Generate that panics on error; for tests and benchmarks
// with literal specs.
func MustGenerate(spec Spec) *relation.Relation {
	r, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return r
}

// independent draws each attribute uniformly from [AttrMin, AttrMax].
func independent(rng *rand.Rand, vals []float64) {
	for i := range vals {
		vals[i] = AttrMin + rng.Float64()*(AttrMax-AttrMin)
	}
}

// correlated draws points close to the main diagonal: a base value per tuple
// plus small per-dimension jitter, following the "peak around the diagonal"
// construction of [1]. Correlated data is skyline-friendly: a few tuples
// dominate almost everything.
func correlated(rng *rand.Rand, vals []float64) {
	base := peaked(rng)
	span := AttrMax - AttrMin
	for i := range vals {
		v := base + (rng.Float64()-0.5)*0.1*span
		vals[i] = clamp(v)
	}
}

// antiCorrelated draws points close to the anti-diagonal hyperplane
// Σ normalized(v_i) ≈ d/2 with large variance across dimensions: tuples
// that are good in one dimension are bad in others, which maximizes the
// skyline size.
func antiCorrelated(rng *rand.Rand, vals []float64) {
	d := len(vals)
	span := AttrMax - AttrMin
	// Normalized coordinates in [0,1] summing approximately to d/2.
	target := float64(d)/2 + (rng.Float64()-0.5)*0.1*float64(d)
	raw := make([]float64, d)
	sum := 0.0
	for i := range raw {
		raw[i] = rng.Float64()
		sum += raw[i]
	}
	if sum == 0 {
		sum = 1
	}
	scale := target / sum
	for i := range vals {
		v := raw[i] * scale
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		vals[i] = AttrMin + v*span
	}
}

// peaked samples a value in [AttrMin, AttrMax] concentrated around the
// middle of the range (sum of two uniforms), as in [1].
func peaked(rng *rand.Rand) float64 {
	u := (rng.Float64() + rng.Float64()) / 2
	return AttrMin + u*(AttrMax-AttrMin)
}

func clamp(v float64) float64 {
	if v < AttrMin {
		return AttrMin
	}
	if v > AttrMax {
		return AttrMax
	}
	return v
}

// GeneratePair produces the two-source workload of the paper's experiments:
// relations R and T with identical cardinality N, dimensionality, and
// distribution, sharing a join-key domain sized for σ but with independent
// contents (distinct seeds derived from Seed).
func GeneratePair(spec Spec) (r, t *relation.Relation, err error) {
	rs := spec
	rs.Name = "R"
	rs.Seed = spec.Seed*2 + 1
	ts := spec
	ts.Name = "T"
	ts.Seed = spec.Seed*2 + 2
	if r, err = Generate(rs); err != nil {
		return nil, nil, err
	}
	if t, err = Generate(ts); err != nil {
		return nil, nil, err
	}
	return r, t, nil
}
