package grid

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"
)

// randRects draws n random rects. A small value pool forces corner ties and
// exact-equality cases (including duplicate and degenerate point rects) —
// the regime where the ≤-everywhere/<-somewhere strictness split matters; a
// zero pool draws continuous corners, driving the per-dimension rank counts
// toward 2n and the index into its coarse-key mode.
func randRects(rng *rand.Rand, n, d, pool int) []Rect {
	draw := func() float64 {
		if pool > 0 {
			return float64(rng.IntN(pool))
		}
		return rng.Float64()
	}
	rects := make([]Rect, n)
	for i := range rects {
		lo := make([]float64, d)
		hi := make([]float64, d)
		for j := 0; j < d; j++ {
			a, b := draw(), draw()
			if b < a {
				a, b = b, a
			}
			lo[j], hi[j] = a, b
		}
		rects[i] = Rect{Lower: lo, Upper: hi}
	}
	return rects
}

// bruteDominated is the pruning predicate evaluated directly: some OTHER
// rect dominates y.
func bruteDominated(rects []Rect, y int) bool {
	for x := range rects {
		if x != y && rects[x].DominatesRect(rects[y]) {
			return true
		}
	}
	return false
}

// TestRectIndexMatchesOracle is the pruning property test: randomized rect
// sets through the box-index sweep vs the retained O(n²) oracle, across the
// index's operating modes — exact packed ranks (small value pools), coarse
// keys (continuous corners exceeding 128 ranks per dimension), the slice
// compare (d > 9), and the Fenwick vs enumeration sides of AnyDominator —
// demanding identical kept/pruned sets everywhere.
func TestRectIndexMatchesOracle(t *testing.T) {
	modes := []struct {
		name     string
		d, pool  int
		fenLimit int
	}{
		{"packed/ties", 3, 6, BoxIndexFenLimit},
		{"packed/fenwick", 2, 12, BoxIndexFenLimit},
		{"packed/fen-fallback", 2, 12, 1},
		{"coarse/continuous", 3, 0, BoxIndexFenLimit},
		{"coarse/d=2", 2, 0, BoxIndexFenLimit},
		{"slice/d=9", 9, 4, BoxIndexFenLimit},
		{"d=1", 1, 8, BoxIndexFenLimit},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(uint64(m.d)*977+uint64(m.pool), uint64(m.fenLimit)*3))
			for trial := 0; trial < 20; trial++ {
				n := 1 + rng.IntN(150)
				workers := rng.IntN(3) * 2
				rects := randRects(rng, n, m.d, m.pool)
				t.Run(fmt.Sprintf("trial %d (n=%d w=%d)", trial, n, workers), func(t *testing.T) {
					checkRectIndex(t, rects, m.fenLimit, workers)
				})
			}
		})
	}
}

func checkRectIndex(t *testing.T, rects []Rect, fenLimit, workers int) {
	t.Helper()
	n := len(rects)

	// The sweep and the all-pairs oracle must mark the identical set.
	got := DominatedRects(rects)
	want := DominatedRectsQuadratic(rects, workers)
	if !slices.Equal(got, want) {
		t.Fatalf("dominated sets diverge:\nindex  %v\noracle %v", got, want)
	}

	// Per-rect queries on a fresh (unretired) index.
	ix := NewRectIndex(rects, fenLimit)
	for y := 0; y < n; y++ {
		if g, w := ix.AnyDominator(int32(y)), bruteDominated(rects, y); g != w {
			t.Fatalf("AnyDominator(%d) = %v, oracle %v (rect %v)", y, g, w, rects[y])
		}
	}
	for x := 0; x < n; x++ {
		var gotDom []int32
		ix.EachDominated(int32(x), func(y int32) { gotDom = append(gotDom, y) })
		slices.Sort(gotDom)
		var wantDom []int32
		for y := 0; y < n; y++ {
			if x != y && rects[x].DominatesRect(rects[y]) {
				wantDom = append(wantDom, int32(y))
			}
		}
		if !slices.Equal(gotDom, wantDom) {
			t.Fatalf("EachDominated(%d) = %v, oracle %v", x, gotDom, wantDom)
		}
	}

	// Retirement removes a rect from the victim side only: dominators keep
	// dominating.
	for y := 0; y < n; y += 2 {
		ix.Retire(int32(y))
	}
	for x := 0; x < n; x++ {
		var gotDom []int32
		ix.EachDominated(int32(x), func(y int32) { gotDom = append(gotDom, y) })
		slices.Sort(gotDom)
		var wantDom []int32
		for y := 1; y < n; y += 2 {
			if x != y && rects[x].DominatesRect(rects[y]) {
				wantDom = append(wantDom, int32(y))
			}
		}
		if !slices.Equal(gotDom, wantDom) {
			t.Fatalf("EachDominated(%d) after retire = %v, want %v", x, gotDom, wantDom)
		}
	}
	for y := 0; y < n; y++ {
		if g, w := ix.AnyDominator(int32(y)), bruteDominated(rects, y); g != w {
			t.Fatalf("AnyDominator(%d) after retire = %v, oracle %v (retire must not weaken dominators)", y, g, w)
		}
	}
}

// TestRectIndexStrictness pins the domination boundary cases the rank
// discretization must preserve exactly: equal corners everywhere are not
// domination, equality in all but one dimension is.
func TestRectIndexStrictness(t *testing.T) {
	rects := []Rect{
		{Lower: []float64{1, 1}, Upper: []float64{1, 1}}, // point rect
		{Lower: []float64{1, 1}, Upper: []float64{1, 1}}, // its duplicate
		{Lower: []float64{1, 2}, Upper: []float64{2, 3}}, // dominated by 0 and 1 (tie in dim 0, strict in dim 1)
		{Lower: []float64{1, 1}, Upper: []float64{2, 2}}, // UPPER ties 0's LOWER... but LOWER too: no strict dim
	}
	want := []bool{false, false, true, false}
	if got := DominatedRects(rects); !slices.Equal(got, want) {
		t.Fatalf("DominatedRects = %v, want %v", got, want)
	}
	if got := DominatedRectsQuadratic(rects, 0); !slices.Equal(got, want) {
		t.Fatalf("oracle = %v, want %v (fixture wrong)", got, want)
	}
	ix := NewRectIndex(rects, 0)
	if ix.AnyDominator(0) || ix.AnyDominator(1) {
		t.Fatal("identical point rects must not dominate each other")
	}
	if !ix.AnyDominator(2) {
		t.Fatal("strict-in-one-dimension domination missed")
	}
}
