// Package grid provides the uniform multi-dimensional grid structure the
// ProgXe framework partitions its input and output spaces with (§III). It
// offers cell indexing, hyper-rectangle ("region") algebra, and the orthant
// and slice relations between cells that drive elimination and dependency
// reasoning.
//
// Cells are half-open boxes [lower, upper) except along the top boundary of
// the space, where the last cell is closed so every point of the bounded
// space belongs to exactly one cell. Cell coordinates are integer vectors;
// a flat index linearizes them row-major.
package grid

import (
	"fmt"
	"math"
	"slices"
)

// Bounds is the bounding box of a d-dimensional space.
type Bounds struct {
	Lo []float64
	Hi []float64
}

// NewBounds validates and returns a bounding box. Hi must be ≥ Lo in every
// dimension; zero-width dimensions are widened by a small epsilon so that the
// grid always has positive cell volume.
func NewBounds(lo, hi []float64) (Bounds, error) {
	if len(lo) != len(hi) {
		return Bounds{}, fmt.Errorf("grid: bounds dimension mismatch: %d vs %d", len(lo), len(hi))
	}
	if len(lo) == 0 {
		return Bounds{}, fmt.Errorf("grid: bounds need at least one dimension")
	}
	l, h := slices.Clone(lo), slices.Clone(hi)
	for i := range l {
		if math.IsNaN(l[i]) || math.IsNaN(h[i]) || math.IsInf(l[i], 0) || math.IsInf(h[i], 0) {
			return Bounds{}, fmt.Errorf("grid: bounds dimension %d is not finite", i)
		}
		if h[i] < l[i] {
			return Bounds{}, fmt.Errorf("grid: bounds dimension %d inverted: [%g, %g]", i, l[i], h[i])
		}
		if h[i] == l[i] {
			h[i] = l[i] + 1e-9
		}
	}
	return Bounds{Lo: l, Hi: h}, nil
}

// BoundsOf computes the bounding box of a non-empty point set.
func BoundsOf(pts [][]float64) (Bounds, error) {
	if len(pts) == 0 {
		return Bounds{}, fmt.Errorf("grid: cannot bound an empty point set")
	}
	lo := slices.Clone(pts[0])
	hi := slices.Clone(pts[0])
	for _, p := range pts[1:] {
		for i, v := range p {
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	return NewBounds(lo, hi)
}

// Dims returns the dimensionality of the bounds.
func (b Bounds) Dims() int { return len(b.Lo) }

// Grid is a uniform partitioning of a bounded d-dimensional space into
// cells-per-dimension k[i] half-open boxes.
type Grid struct {
	bounds Bounds
	cells  []int     // cells per dimension
	width  []float64 // cell width per dimension
	stride []int     // row-major strides
	total  int       // total number of cells
}

// New returns a grid over bounds with cells[i] cells along dimension i.
func New(bounds Bounds, cells []int) (*Grid, error) {
	if len(cells) != bounds.Dims() {
		return nil, fmt.Errorf("grid: %d cell counts for %d dimensions", len(cells), bounds.Dims())
	}
	g := &Grid{
		bounds: bounds,
		cells:  slices.Clone(cells),
		width:  make([]float64, bounds.Dims()),
		stride: make([]int, bounds.Dims()),
	}
	total := 1
	for i, k := range cells {
		if k <= 0 {
			return nil, fmt.Errorf("grid: dimension %d has %d cells; need ≥ 1", i, k)
		}
		if total > 1<<26/k {
			return nil, fmt.Errorf("grid: too many cells (>%d)", 1<<26)
		}
		total *= k
		g.width[i] = (bounds.Hi[i] - bounds.Lo[i]) / float64(k)
	}
	g.total = total
	// Row-major strides: last dimension varies fastest.
	s := 1
	for i := bounds.Dims() - 1; i >= 0; i-- {
		g.stride[i] = s
		s *= cells[i]
	}
	return g, nil
}

// Uniform returns a grid with k cells along every dimension.
func Uniform(bounds Bounds, k int) (*Grid, error) {
	cells := make([]int, bounds.Dims())
	for i := range cells {
		cells[i] = k
	}
	return New(bounds, cells)
}

// Dims returns the dimensionality of the grid.
func (g *Grid) Dims() int { return len(g.cells) }

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return g.total }

// CellsPerDim returns the number of cells along dimension i.
func (g *Grid) CellsPerDim(i int) int { return g.cells[i] }

// Stride returns the row-major flat-index stride of dimension i: adjacent
// cells along dimension i differ by Stride(i) in flat index.
func (g *Grid) Stride(i int) int { return g.stride[i] }

// Bounds returns the grid's bounding box.
func (g *Grid) Bounds() Bounds { return g.bounds }

// Coord returns the cell coordinate of value v along dimension i, clamping
// to the valid range so boundary and slightly-out-of-range points fall into
// the nearest cell.
func (g *Grid) Coord(i int, v float64) int {
	c := int(math.Floor((v - g.bounds.Lo[i]) / g.width[i]))
	if c < 0 {
		c = 0
	}
	if c >= g.cells[i] {
		c = g.cells[i] - 1
	}
	return c
}

// CellOf returns the flat index of the cell containing point p.
func (g *Grid) CellOf(p []float64) int {
	idx := 0
	for i := range g.cells {
		idx += g.Coord(i, p[i]) * g.stride[i]
	}
	return idx
}

// Coords decodes a flat cell index into per-dimension coordinates, writing
// into dst (which must have length Dims()) and returning it.
func (g *Grid) Coords(flat int, dst []int) []int {
	for i := range g.cells {
		dst[i] = flat / g.stride[i]
		flat %= g.stride[i]
	}
	return dst
}

// Flat encodes per-dimension coordinates into a flat cell index.
func (g *Grid) Flat(coords []int) int {
	idx := 0
	for i, c := range coords {
		idx += c * g.stride[i]
	}
	return idx
}

// CellLower returns the lower corner point of the cell with the given
// coordinates, writing into dst and returning it.
func (g *Grid) CellLower(coords []int, dst []float64) []float64 {
	for i, c := range coords {
		dst[i] = g.bounds.Lo[i] + float64(c)*g.width[i]
	}
	return dst
}

// CellUpper returns the upper corner point of the cell with the given
// coordinates, writing into dst and returning it.
func (g *Grid) CellUpper(coords []int, dst []float64) []float64 {
	for i, c := range coords {
		dst[i] = g.bounds.Lo[i] + float64(c+1)*g.width[i]
	}
	return dst
}

// CellRect returns the bounding box of the flat-indexed cell.
func (g *Grid) CellRect(flat int) Rect {
	coords := make([]int, g.Dims())
	g.Coords(flat, coords)
	r := Rect{Lower: make([]float64, g.Dims()), Upper: make([]float64, g.Dims())}
	g.CellLower(coords, r.Lower)
	g.CellUpper(coords, r.Upper)
	return r
}

// CoordRange returns the inclusive coordinate range [loC, hiC] of cells
// overlapping interval [lo, hi] along dimension i.
func (g *Grid) CoordRange(i int, lo, hi float64) (int, int) {
	lc := g.Coord(i, lo)
	// Upper endpoints that land exactly on a cell boundary belong to the
	// lower cell (half-open cells), unless the interval is degenerate.
	hc := g.Coord(i, hi)
	if hi > lo {
		boundary := g.bounds.Lo[i] + float64(hc)*g.width[i]
		if hi == boundary && hc > lc {
			hc--
		}
	}
	return lc, hc
}

// CellsOverlapping appends to dst the flat indices of all cells that overlap
// rectangle r, and returns dst. Cells touching r only at their shared
// boundary on the upper side of r are excluded (half-open semantics).
func (g *Grid) CellsOverlapping(r Rect, dst []int) []int {
	d := g.Dims()
	loC := make([]int, d)
	hiC := make([]int, d)
	for i := 0; i < d; i++ {
		loC[i], hiC[i] = g.CoordRange(i, r.Lower[i], r.Upper[i])
	}
	coords := slices.Clone(loC)
	for {
		dst = append(dst, g.Flat(coords))
		// Odometer increment.
		i := d - 1
		for ; i >= 0; i-- {
			coords[i]++
			if coords[i] <= hiC[i] {
				break
			}
			coords[i] = loC[i]
		}
		if i < 0 {
			return dst
		}
	}
}

// StrictlyBelow reports whether cell coordinates a are strictly smaller than
// b in every dimension. A populated cell a with this property dominates every
// tuple that maps into cell b (§III-B observation 2 / §V Set 1).
func StrictlyBelow(a, b []int) bool {
	for i := range a {
		if a[i] >= b[i] {
			return false
		}
	}
	return true
}

// SliceBelow reports whether cell coordinates a are ≤ b in every dimension
// with equality in at least one: a tuple in a may dominate tuples in b, but
// is not guaranteed to (§III-B observation 3 / §V Set 3). a == b is excluded.
func SliceBelow(a, b []int) bool {
	equal := true
	anyEqualDim := false
	for i := range a {
		switch {
		case a[i] > b[i]:
			return false
		case a[i] == b[i]:
			anyEqualDim = true
		default:
			equal = false
		}
	}
	return anyEqualDim && !equal
}

// LeqAll reports whether a ≤ b in every dimension.
func LeqAll(a, b []int) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}
