package grid

import (
	"math/rand/v2"
	"testing"
)

// TestFenwickAgainstNaive cross-checks orthant counts against a brute-force
// point list across dimensionalities, including removals (the engine adds
// and retracts active cells) and out-of-range query corners.
func TestFenwickAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	for _, dims := range [][]int{{8}, {5, 7}, {4, 4, 4}, {3, 5, 2, 4}, {2, 2, 2, 2, 2}} {
		f, err := NewFenwick(dims)
		if err != nil {
			t.Fatal(err)
		}
		type pt struct {
			c []int
			w int32
		}
		var pts []pt
		randPoint := func() []int {
			c := make([]int, len(dims))
			for i, k := range dims {
				c[i] = rng.IntN(k)
			}
			return c
		}
		naive := func(q []int) int {
			n := 0
			for _, p := range pts {
				inside := true
				for i := range q {
					if p.c[i] > q[i] || q[i] < 0 {
						inside = false
						break
					}
				}
				if inside {
					n += int(p.w)
				}
			}
			return n
		}
		for step := 0; step < 300; step++ {
			if len(pts) > 0 && rng.IntN(4) == 0 {
				// Retract a previously added point entirely.
				i := rng.IntN(len(pts))
				f.Add(pts[i].c, -pts[i].w)
				pts[i] = pts[len(pts)-1]
				pts = pts[:len(pts)-1]
			} else {
				p := pt{c: randPoint(), w: 1}
				pts = append(pts, p)
				f.Add(p.c, p.w)
			}
			q := randPoint()
			if rng.IntN(5) == 0 {
				q[rng.IntN(len(q))] = -1 // empty orthant along one axis
			}
			if rng.IntN(5) == 0 {
				q[rng.IntN(len(q))] = dims[0] + 3 // clamped overshoot
			}
			if got, want := f.Count(q), naive(q); got != want {
				t.Fatalf("dims=%v step=%d Count(%v) = %d, want %d", dims, step, q, got, want)
			}
		}
	}
}

func TestFenwickValidation(t *testing.T) {
	if _, err := NewFenwick(nil); err == nil {
		t.Fatal("empty dims must error")
	}
	if _, err := NewFenwick([]int{4, 0}); err == nil {
		t.Fatal("zero-size dimension must error")
	}
	if _, err := NewFenwick([]int{1 << 14, 1 << 14}); err == nil {
		t.Fatal("oversized tree must error")
	}
}
