package grid

import (
	"fmt"
	"slices"

	"progxe/internal/preference"
)

// Rect is an axis-aligned hyper-rectangle identified by its lower-bound and
// upper-bound corner points — the representation of both input partitions
// and output regions in the paper (Table I: LOWER(X) / UPPER(X)).
type Rect struct {
	Lower []float64
	Upper []float64
}

// NewRect returns a rectangle after validating corner ordering.
func NewRect(lower, upper []float64) (Rect, error) {
	if len(lower) != len(upper) {
		return Rect{}, fmt.Errorf("grid: rect corner dimension mismatch: %d vs %d", len(lower), len(upper))
	}
	for i := range lower {
		if upper[i] < lower[i] {
			return Rect{}, fmt.Errorf("grid: rect dimension %d inverted: [%g, %g]", i, lower[i], upper[i])
		}
	}
	return Rect{Lower: slices.Clone(lower), Upper: slices.Clone(upper)}, nil
}

// Dims returns the rectangle's dimensionality.
func (r Rect) Dims() int { return len(r.Lower) }

// Contains reports whether p lies in the closed box [Lower, Upper].
func (r Rect) Contains(p []float64) bool {
	for i := range p {
		if p[i] < r.Lower[i] || p[i] > r.Upper[i] {
			return false
		}
	}
	return true
}

// DominatesRect reports whether some point guaranteed to exist in r
// dominates every point of other: UPPER(r) must dominate LOWER(other) in the
// Pareto sense (≤ everywhere, < somewhere). If r is guaranteed populated,
// a real tuple u ≤ UPPER(r) exists, and for any x ≥ LOWER(other),
// u ≤ UPPER(r) ≤ LOWER(other) ≤ x with strictness preserved in the strict
// dimension — so u dominates x (Example 2: R1,3 eliminates R3,1).
func (r Rect) DominatesRect(other Rect) bool {
	return preference.DominatesMin(r.Upper, other.Lower)
}

// UpperDominatesPoint reports whether the upper corner of r dominates point
// p in the Pareto sense (≤ everywhere, < somewhere). When r is guaranteed to
// be populated, some real tuple u ≤ UPPER(r) exists and u dominates p too.
func (r Rect) UpperDominatesPoint(p []float64) bool {
	return preference.DominatesMin(r.Upper, p)
}

// Union returns the smallest rectangle containing both r and other.
func (r Rect) Union(other Rect) Rect {
	lo := make([]float64, r.Dims())
	hi := make([]float64, r.Dims())
	for i := range lo {
		lo[i] = min(r.Lower[i], other.Lower[i])
		hi[i] = max(r.Upper[i], other.Upper[i])
	}
	return Rect{Lower: lo, Upper: hi}
}

// Overlaps reports whether the closed boxes intersect.
func (r Rect) Overlaps(other Rect) bool {
	for i := range r.Lower {
		if r.Upper[i] < other.Lower[i] || other.Upper[i] < r.Lower[i] {
			return false
		}
	}
	return true
}

// String renders the rectangle as [(l1,..,ld)(u1,..,ud)], the notation used
// in the paper's running example.
func (r Rect) String() string {
	return fmt.Sprintf("[%v %v]", r.Lower, r.Upper)
}
