package grid

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"
)

// randCorners generates n random (src, dst) corner pairs on a random grid
// shape: dst within [0, k), src within [0, k] (the sched layer's +1 shift
// can land on the top boundary).
func randCorners(rng *rand.Rand, n, d, kMax int) (src, dst [][]int, k []int) {
	k = make([]int, d)
	for i := range k {
		k[i] = 2 + rng.IntN(kMax-1)
	}
	src = make([][]int, n)
	dst = make([][]int, n)
	for id := 0; id < n; id++ {
		s := make([]int, d)
		t := make([]int, d)
		for i := range s {
			s[i] = rng.IntN(k[i] + 1)
			t[i] = rng.IntN(k[i])
		}
		src[id], dst[id] = s, t
	}
	return src, dst, k
}

// bruteEdge is the index's relation, evaluated directly.
func bruteEdge(src, dst [][]int, x, y int) bool { return LeqAll(src[x], dst[y]) }

// TestBoxIndexMatchesBruteForce is the index's differential property test:
// randomized corner sets across the operating modes — exact packed keys,
// the coarse-key prefilter (a dimension wider than 128 values), the slice
// compare (d > 8), and the Fenwick vs bucket-scan counting paths — against
// the all-pairs evaluation of the relation.
func TestBoxIndexMatchesBruteForce(t *testing.T) {
	modes := []struct {
		name     string
		d, kMax  int
		fenLimit int
	}{
		{"packed/fenwick", 3, 16, BoxIndexFenLimit},
		{"packed/d=5", 5, 8, BoxIndexFenLimit},
		{"coarse/k=300", 2, 300, BoxIndexFenLimit},
		{"coarse/fallback", 2, 300, 8},
		{"slice/d=9", 9, 4, BoxIndexFenLimit},
		{"fenwick-fallback", 3, 16, 1},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(uint64(m.d)*131+uint64(m.kMax), uint64(m.fenLimit)))
			for trial := 0; trial < 20; trial++ {
				n := 1 + rng.IntN(90)
				workers := rng.IntN(3) * 2 // 0, 2, 4 — counts must not depend on it
				src, dst, k := randCorners(rng, n, m.d, m.kMax)
				label := fmt.Sprintf("trial %d (n=%d k=%v w=%d)", trial, n, k, workers)
				t.Run(label, func(t *testing.T) {
					checkBoxIndex(t, rng, src, dst, k, m.fenLimit, workers)
				})
			}
		})
	}
}

func checkBoxIndex(t *testing.T, rng *rand.Rand, src, dst [][]int, k []int, fenLimit, workers int) {
	t.Helper()
	n := len(src)
	ix := NewBoxIndex(src, dst, k, fenLimit)

	// Bulk predecessor counts, self included.
	inDeg := ix.InDegrees(workers)
	for y := 0; y < n; y++ {
		want := int32(0)
		for x := 0; x < n; x++ {
			if bruteEdge(src, dst, x, y) {
				want++
			}
		}
		if inDeg[y] != want {
			t.Fatalf("InDegrees[%d] = %d, want %d", y, inDeg[y], want)
		}
		if c, ok := ix.InCount(int32(y)); ok && int32(c) != want {
			t.Fatalf("InCount(%d) = %d, want %d", y, c, want)
		}
	}

	collectOut := func(x int) []int32 {
		var got []int32
		ix.EachOut(int32(x), func(y int32) { got = append(got, y) })
		slices.Sort(got)
		return got
	}
	collectIn := func(y int) []int32 {
		var got []int32
		ix.EachIn(int32(y), func(x int32) bool { got = append(got, x); return true })
		slices.Sort(got)
		return got
	}
	bruteOut := func(x int, live []bool) []int32 {
		var want []int32
		for y := 0; y < n; y++ {
			if live[y] && bruteEdge(src, dst, x, y) {
				want = append(want, int32(y))
			}
		}
		return want
	}

	allLive := make([]bool, n)
	for i := range allLive {
		allLive[i] = true
	}
	for x := 0; x < n; x++ {
		if got, want := collectOut(x), bruteOut(x, allLive); !slices.Equal(got, want) {
			t.Fatalf("EachOut(%d) = %v, want %v", x, got, want)
		}
	}
	for y := 0; y < n; y++ {
		var want []int32
		for x := 0; x < n; x++ {
			if bruteEdge(src, dst, x, y) {
				want = append(want, int32(x))
			}
		}
		if got := collectIn(y); !slices.Equal(got, want) {
			t.Fatalf("EachIn(%d) = %v, want %v", y, got, want)
		}
	}

	// Retire half the boxes: EachOut must stop enumerating them, while the
	// predecessor side (EachIn) keeps counting them. Double-retire is a
	// no-op.
	live := slices.Clone(allLive)
	for id := 0; id < n; id++ {
		if rng.IntN(2) == 0 {
			live[id] = false
			ix.Retire(int32(id))
			ix.Retire(int32(id))
		}
	}
	for x := 0; x < n; x++ {
		if got, want := collectOut(x), bruteOut(x, live); !slices.Equal(got, want) {
			t.Fatalf("EachOut(%d) after retire = %v, want %v", x, got, want)
		}
	}
	for y := 0; y < n; y++ {
		var want []int32
		for x := 0; x < n; x++ {
			if bruteEdge(src, dst, x, y) {
				want = append(want, int32(x))
			}
		}
		if got := collectIn(y); !slices.Equal(got, want) {
			t.Fatalf("EachIn(%d) after retire = %v, want %v (retire must not shrink the predecessor side)", y, got, want)
		}
	}
}

// TestBoxIndexEarlyExit pins EachIn's contract: a false return stops the
// enumeration and reports it.
func TestBoxIndexEarlyExit(t *testing.T) {
	src := [][]int{{0}, {0}, {0}}
	dst := [][]int{{2}, {2}, {2}}
	ix := NewBoxIndex(src, dst, []int{3}, 0)
	seen := 0
	if complete := ix.EachIn(0, func(int32) bool { seen++; return false }); complete {
		t.Fatal("early-exited enumeration reported complete")
	}
	if seen != 1 {
		t.Fatalf("enumeration continued past the stop: %d callbacks", seen)
	}
	if !ix.EachIn(0, func(int32) bool { return true }) {
		t.Fatal("complete enumeration reported stopped")
	}
}
