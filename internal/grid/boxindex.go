package grid

import "progxe/internal/par"

// BoxIndexFenLimit is the default cap on the cell count of the Fenwick tree
// backing orthant counts; larger coordinate grids fall back to the
// per-dimension bucket-scan path. Callers with test or tuning needs pass
// their own limit to NewBoxIndex.
const BoxIndexFenLimit = 1 << 21

// BoxIndex indexes a fixed set of n boxes for corner-domination queries on
// an integer coordinate grid. Each box carries two corners — a source corner
// src(i) and a target corner dst(i), both d-dimensional — and every query is
// about the closed relation
//
//	x → y  iff  src(x) ≤ dst(y) componentwise,
//
// answered three ways: bulk per-box predecessor counts (InDegrees), forward
// enumeration of the live successors of one box (EachOut), and backward
// enumeration of the predecessors of one box (EachIn / InCount). Its two
// consumers map their predicates onto that one relation:
//
//   - the scheduler layer's EL-Graph (internal/core/sched) passes
//     src = minC+1 and dst = maxC, turning the strict §IV-B edge predicate
//     minC(x) < maxC(y) everywhere into the closed form above;
//   - the float-rect domination index (RectIndex) passes src = upper-corner
//     coordinate ranks and dst = lower-corner ranks, so x → y states
//     UPPER(x) ≤ LOWER(y) everywhere — box domination up to the
//     strict-somewhere check the caller adds.
//
// The machinery is the cellIndex/EL-Graph pattern: per-dimension grid
// buckets of dst corners with the packed coordinate key inlined per entry,
// per-dimension live-count Fenwicks so the cheapest dimension to scan is an
// O(log k) decision, and a d-dimensional Fenwick over src corners for
// orthant counting when the grid fits the limit. Coordinates pack into 8-bit
// SWAR lanes when d ≤ 8: exactly when every dimension has ≤ 128 values
// (one KeyLeq decides the comparison), and as a monotone coarse prefilter —
// lane = value >> shift — on wider dimensions, where survivors are confirmed
// by the coordinate-slice compare. More than 8 dimensions compares slices
// directly.
//
// src coordinates may reach k[i] (the sched layer's +1 shift at the top of a
// dimension); dst coordinates stay within [0, k[i]).
//
// Retire removes a box from the successor (dst) side only: EachOut stops
// enumerating it, while InDegrees, EachIn and InCount keep counting it as a
// predecessor. Both consumers want exactly that asymmetry — a scheduled
// region's in-edges are never consulted again, and a dominated rect remains
// a valid dominator for the pruning chain argument.
type BoxIndex struct {
	src, dst [][]int // aliased caller corners, read-only
	k        []int
	d        int

	keyed bool     // d ≤ 8: packed lane keys exist
	exact bool     // keyed and every dimension fits 128 values: keys decide
	shift []uint   // per-dimension lane shift (0 when exact)
	sKey  []uint64 // packed (possibly coarse) src key per box
	dKey  []uint64 // packed (possibly coarse) dst key per box

	byDst [][][]boxEntry // [dim][v]: live boxes with dst[dim] == v, ascending id
	// sufFen[dim] counts live boxes per dst bucket (suffix counts in
	// O(log k)). nil for a dimension wider than the Fenwick cell cap:
	// liveSuffix then reports the full live count, so steering never
	// prefers that dimension — scans stay correct, merely unguided.
	sufFen []*Fenwick
	live   int32

	// Backward-query state, built on first use: src corners bucketed per
	// dimension with prefix counts, and the orthant-count Fenwick.
	bySrc    [][][]int32
	preSrc   [][]int32
	srcFen   *Fenwick
	fenTried bool // EnableInCounts already ran (nil srcFen = grid too large)

	fenLimit int
	updates  int // point updates on the src-corner Fenwick
}

// boxEntry is one box in a dst bucket, carrying its packed key inline so
// filtering runs as a sequential scan without chasing a side table.
type boxEntry struct {
	id  int32
	key uint64
}

// NewBoxIndex builds the index over n (src, dst) corner pairs on a grid with
// k[i] values per dimension. fenLimit caps the cell count of the orthant
// Fenwick (≤ 0 selects BoxIndexFenLimit). The corner slices are aliased, not
// copied, and must stay immutable for the index's lifetime.
func NewBoxIndex(src, dst [][]int, k []int, fenLimit int) *BoxIndex {
	if fenLimit <= 0 {
		fenLimit = BoxIndexFenLimit
	}
	ix := &BoxIndex{src: src, dst: dst, k: k, d: len(k), fenLimit: fenLimit}
	ix.keyed = ix.d <= 8
	ix.exact = ix.keyed
	ix.shift = make([]uint, ix.d)
	for i, n := range k {
		for (n-1)>>ix.shift[i] > 127 {
			ix.shift[i]++
			ix.exact = false
		}
	}
	ix.byDst = make([][][]boxEntry, ix.d)
	ix.sufFen = make([]*Fenwick, ix.d)
	for i := 0; i < ix.d; i++ {
		ix.byDst[i] = make([][]boxEntry, k[i])
		ix.sufFen[i], _ = NewFenwick(k[i : i+1])
	}
	if ix.keyed {
		ix.sKey = make([]uint64, len(src))
		ix.dKey = make([]uint64, len(src))
	}
	ix.live = int32(len(src))
	for id := range src {
		var dk uint64
		if ix.keyed {
			ix.sKey[id] = ix.packKey(src[id])
			dk = ix.packKey(dst[id])
			ix.dKey[id] = dk
		}
		for i, v := range dst[id] {
			ix.byDst[i][v] = append(ix.byDst[i][v], boxEntry{id: int32(id), key: dk})
		}
	}
	for i := 0; i < ix.d; i++ {
		if ix.sufFen[i] == nil {
			continue
		}
		for v := 0; v < k[i]; v++ {
			if n := len(ix.byDst[i][v]); n > 0 {
				q := [1]int{v}
				ix.sufFen[i].Add(q[:], int32(n))
			}
		}
	}
	return ix
}

// packKey packs coordinates into 8-bit lanes under the per-dimension coarse
// shift. With all shifts zero this is PackKey and the key is exact; otherwise
// the map is monotone per lane, so key-≤ is a necessary condition for
// coordinate-≤ and survivors need the slice compare.
func (ix *BoxIndex) packKey(coords []int) uint64 {
	var key uint64
	for i, v := range coords {
		key |= uint64(v>>ix.shift[i]) << (8 * i)
	}
	return key
}

// leqSrcDst reports src(x) ≤ dst(y) componentwise through the cheapest
// conclusive path: one packed compare when keys are exact, the coarse-key
// prefilter plus slice confirm otherwise.
func (ix *BoxIndex) leqSrcDst(x, y int32) bool {
	if ix.keyed {
		if !KeyLeq(ix.sKey[x], ix.dKey[y]) {
			return false
		}
		if ix.exact {
			return true
		}
	}
	return LeqAll(ix.src[x], ix.dst[y])
}

// Live returns the number of boxes not yet retired.
func (ix *BoxIndex) Live() int { return int(ix.live) }

// FenwickUpdates reports the point updates applied to the src-corner orthant
// Fenwick (0 when the bucket-scan fallback ran instead).
func (ix *BoxIndex) FenwickUpdates() int { return ix.updates }

// liveSuffix returns the number of live boxes with dst[dim] ≥ v — exact
// when the dimension carries a suffix Fenwick, the full live count (a safe
// overestimate that steers scans elsewhere) when it is too wide for one.
func (ix *BoxIndex) liveSuffix(dim, v int) int32 {
	if v <= 0 {
		return ix.live
	}
	if v >= ix.k[dim] {
		return 0
	}
	if ix.sufFen[dim] == nil {
		return ix.live
	}
	q := [1]int{v - 1}
	return ix.live - int32(ix.sufFen[dim].Count(q[:]))
}

// EachOut enumerates the live boxes y with dst(y) ≥ src(x) componentwise —
// the successors of x — in unspecified order. x itself is enumerated when it
// is live and satisfies the relation; callers that must not see it retire it
// first (the scheduler) or filter it (callers whose relation excludes self).
func (ix *BoxIndex) EachOut(x int32, fn func(y int32)) {
	var key uint64
	if ix.keyed {
		key = ix.sKey[x]
	}
	ix.eachOut(ix.src[x], key, fn)
}

// EachOutCorner enumerates the live boxes y with dst(y) ≥ q componentwise for
// an arbitrary query corner q — the reverse-dominance query: every indexed
// box whose target corner sits in the closed upper orthant of q. Coordinates
// must lie in [0, k[i]] (a value of k[i] matches nothing in that dimension).
func (ix *BoxIndex) EachOutCorner(q []int, fn func(y int32)) {
	var key uint64
	if ix.keyed {
		key = ix.packKey(q)
	}
	ix.eachOut(q, key, fn)
}

// eachOut is the shared successor scan: the cheapest dimension by live
// suffix count is walked upward from q, entries filtered by packed key and —
// when keys are coarse — the coordinate-slice compare.
func (ix *BoxIndex) eachOut(q []int, key uint64, fn func(y int32)) {
	best, bestN := -1, int32(0)
	for i, v := range q {
		n := ix.liveSuffix(i, v)
		if best < 0 || n < bestN {
			best, bestN = i, n
		}
	}
	if bestN == 0 {
		return
	}
	buckets := ix.byDst[best]
	if ix.exact {
		for v := q[best]; v < ix.k[best]; v++ {
			for _, e := range buckets[v] {
				if KeyLeq(key, e.key) {
					fn(e.id)
				}
			}
		}
		return
	}
	if ix.keyed {
		for v := q[best]; v < ix.k[best]; v++ {
			for _, e := range buckets[v] {
				if KeyLeq(key, e.key) && LeqAll(q, ix.dst[e.id]) {
					fn(e.id)
				}
			}
		}
		return
	}
	for v := q[best]; v < ix.k[best]; v++ {
		for _, e := range buckets[v] {
			if LeqAll(q, ix.dst[e.id]) {
				fn(e.id)
			}
		}
	}
}

// Retire removes a box from the successor side: subsequent EachOut calls
// skip it, and the live suffix counts steering the scans shrink. Counting
// queries (InDegrees, EachIn, InCount) are unaffected. Retiring twice is a
// no-op.
func (ix *BoxIndex) Retire(id int32) {
	removed := false
	for i, v := range ix.dst[id] {
		bucket := ix.byDst[i][v]
		lo, hi := 0, len(bucket)
		for lo < hi {
			mid := (lo + hi) / 2
			if bucket[mid].id < id {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(bucket) && bucket[lo].id == id {
			copy(bucket[lo:], bucket[lo+1:])
			ix.byDst[i][v] = bucket[:len(bucket)-1]
			if ix.sufFen[i] != nil {
				q := [1]int{v}
				ix.sufFen[i].Add(q[:], -1)
			}
			removed = true
		}
	}
	if removed {
		ix.live--
	}
}

// ensureSrcBuckets lazily builds the backward-query side: per-dimension
// buckets of src corners with prefix counts. src values may reach k[i], so
// the bucket arrays carry one extra slot.
func (ix *BoxIndex) ensureSrcBuckets() {
	if ix.bySrc != nil {
		return
	}
	ix.bySrc = make([][][]int32, ix.d)
	ix.preSrc = make([][]int32, ix.d)
	for i := 0; i < ix.d; i++ {
		ix.bySrc[i] = make([][]int32, ix.k[i]+1)
		ix.preSrc[i] = make([]int32, ix.k[i]+2)
	}
	for id, s := range ix.src {
		for i, v := range s {
			ix.bySrc[i][v] = append(ix.bySrc[i][v], int32(id))
		}
	}
	for i := 0; i < ix.d; i++ {
		for v := 0; v <= ix.k[i]; v++ {
			ix.preSrc[i][v+1] = ix.preSrc[i][v] + int32(len(ix.bySrc[i][v]))
		}
	}
}

// EachIn enumerates the boxes x with src(x) ≤ dst(y) componentwise — the
// predecessors of y, retired or not, y itself included when it satisfies the
// relation — stopping early when fn returns false. It reports whether the
// enumeration ran to completion.
func (ix *BoxIndex) EachIn(y int32, fn func(x int32) bool) bool {
	ix.ensureSrcBuckets()
	q := ix.dst[y]
	best, bestN := -1, int32(0)
	for i, v := range q {
		n := ix.preSrc[i][v+1]
		if best < 0 || n < bestN {
			best, bestN = i, n
		}
	}
	if bestN == 0 {
		return true
	}
	for v := 0; v <= q[best]; v++ {
		for _, x := range ix.bySrc[best][v] {
			if ix.leqSrcDst(x, y) && !fn(x) {
				return false
			}
		}
	}
	return true
}

// EachInCorner enumerates the boxes x with src(x) ≤ q componentwise for an
// arbitrary query corner q — the forward-dominance query: every indexed box
// whose source corner sits in the closed lower orthant of q, retired or not.
// Coordinates must lie in [0, k[i]]. Enumeration stops early when fn returns
// false; the return value reports whether it ran to completion.
func (ix *BoxIndex) EachInCorner(q []int, fn func(x int32) bool) bool {
	ix.ensureSrcBuckets()
	best, bestN := -1, int32(0)
	for i, v := range q {
		n := ix.preSrc[i][v+1]
		if best < 0 || n < bestN {
			best, bestN = i, n
		}
	}
	if bestN == 0 {
		return true
	}
	for v := 0; v <= q[best]; v++ {
		for _, x := range ix.bySrc[best][v] {
			if LeqAll(ix.src[x], q) && !fn(x) {
				return false
			}
		}
	}
	return true
}

// EnableInCounts builds the src-corner orthant Fenwick when the grid fits
// the limit, making InCount O(∏ log k) instead of a bucket scan. A no-op
// after the first call, whichever way it went — a too-large grid is
// remembered, so per-query callers don't re-pay the sizing scan (InCount
// then reports ok = false and they enumerate instead).
func (ix *BoxIndex) EnableInCounts() {
	if ix.fenTried {
		return
	}
	ix.fenTried = true
	dims := make([]int, ix.d)
	total := 1
	for i := range dims {
		var hi int
		for _, s := range ix.src {
			if s[i] > hi {
				hi = s[i]
			}
		}
		dims[i] = hi + 1
		if total > ix.fenLimit/dims[i] {
			return
		}
		total *= dims[i]
	}
	fen, err := NewFenwick(dims)
	if err != nil {
		return
	}
	for _, s := range ix.src {
		fen.Add(s, 1)
	}
	ix.updates += len(ix.src)
	ix.srcFen = fen
}

// InCount returns the number of predecessors of y (boxes x, retired or not
// and y itself included, with src(x) ≤ dst(y) componentwise) when the
// orthant Fenwick is available, and ok = false otherwise.
func (ix *BoxIndex) InCount(y int32) (n int, ok bool) {
	if ix.srcFen == nil {
		return 0, false
	}
	return ix.srcFen.Count(ix.dst[y]), true
}

// InDegrees returns, for every box y, its predecessor count |{x : src(x) ≤
// dst(y) componentwise}| — y itself included when it satisfies the relation;
// callers whose predicate excludes self subtract it. The query pass fans out
// across workers (0 or 1 = serial) with no merge step, so the result is
// identical for any worker count: the Fenwick path when the grid fits the
// limit, the per-dimension bucket prefix scan beyond it.
func (ix *BoxIndex) InDegrees(workers int) []int32 {
	out := make([]int32, len(ix.src))
	if len(ix.src) == 0 {
		return out
	}
	ix.EnableInCounts()
	if ix.srcFen != nil {
		par.For(len(ix.dst), workers, func(lo, hi int) {
			for y := lo; y < hi; y++ {
				out[y] = int32(ix.srcFen.Count(ix.dst[y]))
			}
		})
		return out
	}
	ix.ensureSrcBuckets()
	par.For(len(ix.dst), workers, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			q := ix.dst[y]
			best, bestN := -1, int32(0)
			for i, v := range q {
				n := ix.preSrc[i][v+1]
				if best < 0 || n < bestN {
					best, bestN = i, n
				}
			}
			if bestN == 0 {
				continue
			}
			n := int32(0)
			for v := 0; v <= q[best]; v++ {
				for _, x := range ix.bySrc[best][v] {
					if ix.leqSrcDst(x, int32(y)) {
						n++
					}
				}
			}
			out[y] = n
		}
	})
	return out
}
