package grid

import (
	"slices"
	"sort"

	"progxe/internal/par"
)

// RectIndex answers box-domination queries over a fixed set of float
// rectangles: x dominates y iff UPPER(x) ≤ LOWER(y) in every dimension with
// strict < in at least one (Rect.DominatesRect — a guaranteed-populated x
// then eliminates y wholesale, Example 2). The float corners are reduced to
// integer coordinate ranks per dimension — the 2n lower/upper values sorted
// and deduplicated, an order- and equality-preserving map, so every integer
// answer is exact — and indexed by a BoxIndex with src = upper-corner ranks
// and dst = lower-corner ranks. Corners must be finite (NaN has no rank).
type RectIndex struct {
	ix     *BoxIndex
	up, lo [][]int // rank corners per rect (src and dst of the BoxIndex)
}

// NewRectIndex builds the index over the rects. fenLimit bounds the orthant
// Fenwick behind AnyDominator's counting shortcut (≤ 0 selects
// BoxIndexFenLimit); rank grids of real workloads usually exceed any
// reasonable limit, in which case queries run on the bucket-scan side alone.
func NewRectIndex(rects []Rect, fenLimit int) *RectIndex {
	n := len(rects)
	if n == 0 {
		return &RectIndex{ix: NewBoxIndex(nil, nil, []int{1}, fenLimit)}
	}
	d := rects[0].Dims()
	up := make([][]int, n)
	lo := make([][]int, n)
	flat := make([]int, 2*n*d) // one backing block for all rank corners
	for i := range rects {
		up[i], flat = flat[:d:d], flat[d:]
		lo[i], flat = flat[:d:d], flat[d:]
	}
	k := make([]int, d)
	vals := make([]float64, 0, 2*n)
	for i := 0; i < d; i++ {
		vals = vals[:0]
		for _, r := range rects {
			vals = append(vals, r.Lower[i], r.Upper[i])
		}
		sort.Float64s(vals)
		vals = slices.Compact(vals)
		k[i] = len(vals)
		for id, r := range rects {
			lo[id][i] = sort.SearchFloat64s(vals, r.Lower[i])
			up[id][i] = sort.SearchFloat64s(vals, r.Upper[i])
		}
	}
	return &RectIndex{ix: NewBoxIndex(up, lo, k, fenLimit), up: up, lo: lo}
}

// strictlySomewhere reports a[i] < b[i] for some i; with a ≤ b componentwise
// already established it is exactly the domination strictness condition.
func strictlySomewhere(a, b []int) bool {
	for i := range a {
		if a[i] < b[i] {
			return true
		}
	}
	return false
}

// AnyDominator reports whether any rect — retired or not — dominates rect y.
// The orthant count, when the rank grid fits the Fenwick limit, settles the
// common no-dominator case in O(∏ log k); otherwise the predecessors of y
// are enumerated with early exit at the first strict dominator. Equal-corner
// ties (UPPER(x) = LOWER(y) everywhere, y itself included) satisfy the
// closed relation but fail strictness and never count.
func (r *RectIndex) AnyDominator(y int32) bool {
	r.ix.EnableInCounts()
	if n, ok := r.ix.InCount(y); ok && n == 0 {
		return false
	}
	return !r.ix.EachIn(y, func(x int32) bool {
		return !strictlySomewhere(r.up[x], r.lo[y]) // stop at the first strict dominator
	})
}

// EachDominated enumerates the live rects strictly dominated by rect x, in
// unspecified order. x never enumerates itself: LOWER(x) ≤ UPPER(x) forces
// rank equality everywhere on a self-match, which fails strictness.
func (r *RectIndex) EachDominated(x int32, fn func(y int32)) {
	r.ix.EachOut(x, func(y int32) {
		if strictlySomewhere(r.up[x], r.lo[y]) {
			fn(y)
		}
	})
}

// Retire removes a rect from the dominated-enumeration side: EachDominated
// stops yielding it. It remains a valid dominator for AnyDominator — exactly
// the asymmetry region pruning needs, where a pruned region still prunes
// (the domination order is strict, so every chain ends at a kept witness).
func (r *RectIndex) Retire(y int32) { r.ix.Retire(y) }

// FenwickUpdates reports the point updates behind the counting shortcut.
func (r *RectIndex) FenwickUpdates() int { return r.ix.FenwickUpdates() }

// DominatedRects reports, for every rect, whether some other rect dominates
// it — the region-level pruning verdict of Output Space Look-Ahead step 1 —
// in sub-quadratic time: one sweep over the rects as dominators, each
// enumerating its not-yet-dominated victims through the index and retiring
// them. Two prunings keep the sweep short of all-pairs work: a rect marked
// dominated is skipped as a dominator (its own dominator reaches all its
// victims transitively: UPPER(z) ≤ LOWER(x) ≤ UPPER(x) ≤ LOWER(w) chains,
// strictness included), and a marked victim leaves the index, so dense
// clusters are scanned once, not once per dominator.
func DominatedRects(rects []Rect) []bool {
	dominated := make([]bool, len(rects))
	if len(rects) < 2 {
		return dominated
	}
	ix := NewRectIndex(rects, 0)
	var victims []int32
	for x := range rects {
		if dominated[x] {
			continue
		}
		victims = victims[:0]
		ix.EachDominated(int32(x), func(y int32) { victims = append(victims, y) })
		for _, y := range victims {
			if !dominated[y] {
				dominated[y] = true
				ix.Retire(y)
			}
		}
	}
	return dominated
}

// DominatedRectsQuadratic is the retained all-pairs pruning scan — the
// differential oracle for DominatedRects and the baseline its benchmark
// measures against. Each verdict is independent, so the scan fans out across
// workers (0 or 1 = serial) with results identical for any count.
func DominatedRectsQuadratic(rects []Rect, workers int) []bool {
	dominated := make([]bool, len(rects))
	par.For(len(rects), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j, y := range rects {
				if i != j && y.DominatesRect(rects[i]) {
					dominated[i] = true
					break
				}
			}
		}
	})
	return dominated
}
