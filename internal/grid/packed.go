package grid

// Packed coordinate keys: cell (or region-corner) coordinates packed into
// 8-bit lanes of one uint64 so componentwise comparisons run as a single
// subtraction. Shared by the output-space cell index and the scheduler
// layer's EL-Graph index — one canonical copy of the lane arithmetic.

// laneHi has the high bit of every 8-bit lane set — the borrow detector of
// the packed-coordinate comparison.
const laneHi = 0x8080808080808080

// KeyLeq reports componentwise a ≤ b over packed 8-bit coordinate lanes in
// one subtraction: (b|hi)-a keeps each lane's high bit set exactly when
// that lane of a does not exceed b. Valid for keys built by PackKey from
// values ≤ 127, plus a-lanes of exactly 128 (a coordinate+1 at the top of a
// 128-cell dimension): such a lane borrows within itself only — (b|0x80)
// ≥ 0x80 — and correctly reports "not ≤".
func KeyLeq(a, b uint64) bool { return ((b|laneHi)-a)&laneHi == laneHi }

// PackKey packs coordinates into 8-bit lanes (dimension i in bits
// 8i..8i+7). Callers gate on ≤ 8 dimensions of ≤ 128 cells each.
func PackKey(coords []int) uint64 {
	var k uint64
	for i, v := range coords {
		k |= uint64(v) << (8 * i)
	}
	return k
}
