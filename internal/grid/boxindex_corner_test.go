package grid

import (
	"math/rand/v2"
	"slices"
	"testing"
)

// TestBoxIndexCornerQueries pins the arbitrary-corner generalizations of
// EachOut/EachIn against the all-pairs evaluation, across the same operating
// modes as the box-relation test: exact packed keys, the coarse-key
// prefilter, and the plain slice compare, with and without retirements.
func TestBoxIndexCornerQueries(t *testing.T) {
	modes := []struct {
		name    string
		d, kMax int
	}{
		{"packed", 3, 16},
		{"coarse", 2, 300},
		{"slice/d=9", 9, 4},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(31, uint64(m.d)))
			for trial := 0; trial < 20; trial++ {
				n := 1 + rng.IntN(60)
				src, dst, k := randCorners(rng, n, m.d, m.kMax)
				ix := NewBoxIndex(src, dst, k, BoxIndexFenLimit)
				retired := make([]bool, n)
				for i := 0; i < n/4; i++ {
					id := rng.IntN(n)
					ix.Retire(int32(id))
					retired[id] = true
				}
				for probe := 0; probe < 8; probe++ {
					q := make([]int, m.d)
					for i := range q {
						q[i] = rng.IntN(k[i] + 1)
					}

					var gotOut []int32
					ix.EachOutCorner(q, func(y int32) { gotOut = append(gotOut, y) })
					slices.Sort(gotOut)
					var wantOut []int32
					for y := 0; y < n; y++ {
						if !retired[y] && LeqAll(q, dst[y]) {
							wantOut = append(wantOut, int32(y))
						}
					}
					if !slices.Equal(gotOut, wantOut) {
						t.Fatalf("%s trial %d: EachOutCorner(%v) = %v, want %v",
							m.name, trial, q, gotOut, wantOut)
					}

					var gotIn []int32
					if !ix.EachInCorner(q, func(x int32) bool { gotIn = append(gotIn, x); return true }) {
						t.Fatalf("EachInCorner stopped without fn returning false")
					}
					slices.Sort(gotIn)
					var wantIn []int32
					for x := 0; x < n; x++ {
						if LeqAll(src[x], q) { // retirement is dst-side only
							wantIn = append(wantIn, int32(x))
						}
					}
					if !slices.Equal(gotIn, wantIn) {
						t.Fatalf("%s trial %d: EachInCorner(%v) = %v, want %v",
							m.name, trial, q, gotIn, wantIn)
					}

					// Early stop: fn returning false halts enumeration.
					if len(wantIn) > 1 {
						calls := 0
						if ix.EachInCorner(q, func(int32) bool { calls++; return false }) {
							t.Fatal("early stop not reported")
						}
						if calls != 1 {
							t.Fatalf("early stop made %d calls", calls)
						}
					}
				}
			}
		})
	}
}

func TestBoxIndexCornerConsistentWithBoxQueries(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	src, dst, k := randCorners(rng, 40, 4, 10)
	ix := NewBoxIndex(src, dst, k, BoxIndexFenLimit)
	for x := 0; x < len(src); x++ {
		var viaBox, viaCorner []int32
		ix.EachOut(int32(x), func(y int32) { viaBox = append(viaBox, y) })
		ix.EachOutCorner(src[x], func(y int32) { viaCorner = append(viaCorner, y) })
		slices.Sort(viaBox)
		slices.Sort(viaCorner)
		if !slices.Equal(viaBox, viaCorner) {
			t.Fatalf("box %d: EachOut %v != EachOutCorner %v", x, viaBox, viaCorner)
		}
	}
	for y := 0; y < len(dst); y++ {
		var viaBox, viaCorner []int32
		ix.EachIn(int32(y), func(x int32) bool { viaBox = append(viaBox, x); return true })
		ix.EachInCorner(dst[y], func(x int32) bool { viaCorner = append(viaCorner, x); return true })
		slices.Sort(viaBox)
		slices.Sort(viaCorner)
		if !slices.Equal(viaBox, viaCorner) {
			t.Fatalf("box %d: EachIn %v != EachInCorner %v", y, viaBox, viaCorner)
		}
	}
}
