package grid

import "fmt"

// Fenwick is a d-dimensional binary indexed tree over an integer coordinate
// box [0, dims[0]) × … × [0, dims[d-1]): point add plus closed-lower-orthant
// count, both in O(∏ log dims[i]). The engine uses it twice — cumulative
// active-cell counts per orthant make ProgCount (Definition 2) exact without
// scans, and cumulative region-corner counts give the EL-Graph in-degrees
// without the all-pairs edge scan.
type Fenwick struct {
	dims   []int
	stride []int
	tree   []int32
}

// NewFenwick returns an empty tree over the given per-dimension sizes.
func NewFenwick(dims []int) (*Fenwick, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("grid: fenwick needs at least one dimension")
	}
	f := &Fenwick{dims: append([]int(nil), dims...), stride: make([]int, len(dims))}
	total := 1
	for i := len(dims) - 1; i >= 0; i-- {
		if dims[i] <= 0 {
			return nil, fmt.Errorf("grid: fenwick dimension %d has size %d", i, dims[i])
		}
		f.stride[i] = total
		if total > 1<<26/dims[i] {
			return nil, fmt.Errorf("grid: fenwick too large (>%d cells)", 1<<26)
		}
		total *= dims[i]
	}
	f.tree = make([]int32, total)
	return f, nil
}

// Add applies delta at the given point. Coordinates must lie inside the box.
func (f *Fenwick) Add(coords []int, delta int32) {
	f.add(0, 0, coords, delta)
}

func (f *Fenwick) add(dim, base int, coords []int, delta int32) {
	if dim == len(f.dims)-1 {
		// Innermost dimension (stride 1) runs inline: it contributes the
		// bulk of the touched nodes, so flattening it halves the recursion.
		for i := coords[dim] + 1; i <= f.dims[dim]; i += i & -i {
			f.tree[base+i-1] += delta
		}
		return
	}
	for i := coords[dim] + 1; i <= f.dims[dim]; i += i & -i {
		f.add(dim+1, base+(i-1)*f.stride[dim], coords, delta)
	}
}

// Count returns the sum of deltas over the closed lower orthant
// {q : q ≤ coords componentwise}. A negative coordinate yields 0.
func (f *Fenwick) Count(coords []int) int {
	return int(f.count(0, 0, coords))
}

func (f *Fenwick) count(dim, base int, coords []int) int32 {
	var s int32
	hi := coords[dim]
	if hi >= f.dims[dim] {
		hi = f.dims[dim] - 1
	}
	if dim == len(f.dims)-1 {
		for i := hi + 1; i > 0; i -= i & -i {
			s += f.tree[base+i-1]
		}
		return s
	}
	for i := hi + 1; i > 0; i -= i & -i {
		s += f.count(dim+1, base+(i-1)*f.stride[dim], coords)
	}
	return s
}
