package grid

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mustBounds(t *testing.T, lo, hi []float64) Bounds {
	t.Helper()
	b, err := NewBounds(lo, hi)
	if err != nil {
		t.Fatalf("NewBounds: %v", err)
	}
	return b
}

func mustGrid(t *testing.T, b Bounds, k int) *Grid {
	t.Helper()
	g, err := Uniform(b, k)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	return g
}

func TestBoundsValidation(t *testing.T) {
	if _, err := NewBounds([]float64{0}, []float64{1, 2}); err == nil {
		t.Fatal("dimension mismatch must error")
	}
	if _, err := NewBounds(nil, nil); err == nil {
		t.Fatal("empty bounds must error")
	}
	if _, err := NewBounds([]float64{2}, []float64{1}); err == nil {
		t.Fatal("inverted bounds must error")
	}
	b := mustBounds(t, []float64{5}, []float64{5})
	if b.Hi[0] <= b.Lo[0] {
		t.Fatal("degenerate dimension must be widened")
	}
}

func TestBoundsOf(t *testing.T) {
	b, err := BoundsOf([][]float64{{1, 5}, {3, 2}, {2, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Lo[0] != 1 || b.Lo[1] != 2 || b.Hi[0] != 3 || b.Hi[1] != 8 {
		t.Fatalf("BoundsOf = %+v", b)
	}
	if _, err := BoundsOf(nil); err == nil {
		t.Fatal("empty point set must error")
	}
}

func TestGridBasics(t *testing.T) {
	g := mustGrid(t, mustBounds(t, []float64{0, 0}, []float64{10, 10}), 5)
	if g.NumCells() != 25 || g.Dims() != 2 || g.CellsPerDim(0) != 5 {
		t.Fatalf("grid shape wrong: %d cells", g.NumCells())
	}
	if _, err := New(mustBounds(t, []float64{0}, []float64{1}), []int{0}); err == nil {
		t.Fatal("zero cells must error")
	}
	if _, err := New(mustBounds(t, []float64{0}, []float64{1}), []int{1, 2}); err == nil {
		t.Fatal("cell count arity mismatch must error")
	}
}

func TestCellOfBoundaries(t *testing.T) {
	g := mustGrid(t, mustBounds(t, []float64{0, 0}, []float64{10, 10}), 5)
	coords := make([]int, 2)
	// Interior point.
	g.Coords(g.CellOf([]float64{3.5, 7.2}), coords)
	if coords[0] != 1 || coords[1] != 3 {
		t.Fatalf("interior coords = %v", coords)
	}
	// Exact upper boundary clamps into the last cell.
	g.Coords(g.CellOf([]float64{10, 10}), coords)
	if coords[0] != 4 || coords[1] != 4 {
		t.Fatalf("boundary coords = %v", coords)
	}
	// Out-of-range points clamp.
	g.Coords(g.CellOf([]float64{-5, 99}), coords)
	if coords[0] != 0 || coords[1] != 4 {
		t.Fatalf("clamped coords = %v", coords)
	}
}

func TestFlatCoordsRoundTrip(t *testing.T) {
	g := mustGrid(t, mustBounds(t, []float64{0, 0, 0}, []float64{1, 1, 1}), 4)
	coords := make([]int, 3)
	for flat := 0; flat < g.NumCells(); flat++ {
		g.Coords(flat, coords)
		if got := g.Flat(coords); got != flat {
			t.Fatalf("roundtrip %d -> %v -> %d", flat, coords, got)
		}
	}
}

func TestCellBoundsContainPoint(t *testing.T) {
	g := mustGrid(t, mustBounds(t, []float64{0, 0}, []float64{8, 8}), 4)
	r := rand.New(rand.NewPCG(1, 2))
	f := func() bool {
		p := []float64{r.Float64() * 8, r.Float64() * 8}
		rect := g.CellRect(g.CellOf(p))
		return rect.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCoordRangeHalfOpen(t *testing.T) {
	g := mustGrid(t, mustBounds(t, []float64{0}, []float64{10}), 5)
	// [0, 2) is exactly cell 0; the upper endpoint on a boundary excludes
	// the upper cell.
	lo, hi := g.CoordRange(0, 0, 2)
	if lo != 0 || hi != 0 {
		t.Fatalf("CoordRange(0,2) = [%d,%d]", lo, hi)
	}
	lo, hi = g.CoordRange(0, 1, 5)
	if lo != 0 || hi != 2 {
		t.Fatalf("CoordRange(1,5) = [%d,%d]", lo, hi)
	}
	// Degenerate interval stays in its containing cell.
	lo, hi = g.CoordRange(0, 4, 4)
	if lo != 2 || hi != 2 {
		t.Fatalf("CoordRange(4,4) = [%d,%d]", lo, hi)
	}
}

func TestCellsOverlapping(t *testing.T) {
	g := mustGrid(t, mustBounds(t, []float64{0, 0}, []float64{10, 10}), 5)
	r, err := NewRect([]float64{1, 1}, []float64{5, 3})
	if err != nil {
		t.Fatal(err)
	}
	cells := g.CellsOverlapping(r, nil)
	// x cells 0..2, y cells 0..1 -> 6 cells.
	if len(cells) != 6 {
		t.Fatalf("CellsOverlapping = %d cells: %v", len(cells), cells)
	}
	seen := map[int]bool{}
	for _, c := range cells {
		if seen[c] {
			t.Fatalf("duplicate cell %d", c)
		}
		seen[c] = true
	}
}

func TestOrthantRelations(t *testing.T) {
	if !StrictlyBelow([]int{1, 1}, []int{2, 2}) {
		t.Fatal("strictly below")
	}
	if StrictlyBelow([]int{1, 2}, []int{2, 2}) {
		t.Fatal("tie is not strictly below")
	}
	if !SliceBelow([]int{1, 2}, []int{2, 2}) {
		t.Fatal("slice below: ≤ with one equality")
	}
	if SliceBelow([]int{2, 2}, []int{2, 2}) {
		t.Fatal("equal coords are not slice below")
	}
	if SliceBelow([]int{1, 1}, []int{2, 2}) {
		t.Fatal("strict orthant is not slice below")
	}
	if SliceBelow([]int{3, 1}, []int{2, 2}) {
		t.Fatal("incomparable is not slice below")
	}
	if !LeqAll([]int{1, 2}, []int{1, 2}) || LeqAll([]int{2, 1}, []int{1, 2}) {
		t.Fatal("LeqAll wrong")
	}
}

func TestOrthantPartition(t *testing.T) {
	// For any pair of coordinate vectors with a ≤ b, exactly one of
	// (equal, strictly-below, slice-below) holds.
	r := rand.New(rand.NewPCG(3, 4))
	f := func() bool {
		a := []int{r.IntN(4), r.IntN(4), r.IntN(4)}
		b := []int{r.IntN(4), r.IntN(4), r.IntN(4)}
		if !LeqAll(a, b) {
			return !StrictlyBelow(a, b) && !SliceBelow(a, b) || true // relations only defined under ≤; just ensure no panic
		}
		equal := a[0] == b[0] && a[1] == b[1] && a[2] == b[2]
		n := 0
		if equal {
			n++
		}
		if StrictlyBelow(a, b) {
			n++
		}
		if SliceBelow(a, b) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestRect(t *testing.T) {
	if _, err := NewRect([]float64{0, 0}, []float64{1}); err == nil {
		t.Fatal("corner arity mismatch must error")
	}
	if _, err := NewRect([]float64{2}, []float64{1}); err == nil {
		t.Fatal("inverted rect must error")
	}
	a, _ := NewRect([]float64{0, 0}, []float64{2, 2})
	b, _ := NewRect([]float64{3, 3}, []float64{4, 4})
	if !a.DominatesRect(b) {
		t.Fatal("a's upper dominates b's lower")
	}
	if b.DominatesRect(a) {
		t.Fatal("b cannot dominate a")
	}
	// Touching rects: upper == lower has no strict dimension.
	c, _ := NewRect([]float64{2, 2}, []float64{4, 4})
	if a.DominatesRect(c) {
		t.Fatal("equal corner must not dominate")
	}
	if !a.Overlaps(c) || a.Overlaps(b) {
		t.Fatal("overlap tests wrong")
	}
	u := a.Union(b)
	if u.Lower[0] != 0 || u.Upper[1] != 4 {
		t.Fatalf("union = %s", u)
	}
	if !a.UpperDominatesPoint([]float64{3, 3}) {
		t.Fatal("upper (2,2) dominates (3,3)")
	}
	if a.String() == "" {
		t.Fatal("rect must render")
	}
}
