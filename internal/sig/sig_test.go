package sig

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestExactBasics(t *testing.T) {
	e := NewExact()
	if e.Len() != 0 || e.DistinctKeys() != 0 {
		t.Fatal("fresh signature must be empty")
	}
	e.Add(5)
	e.Add(5)
	e.Add(7)
	if e.Len() != 3 || e.DistinctKeys() != 2 || e.Count(5) != 2 || e.Count(9) != 0 {
		t.Fatalf("counts wrong: len=%d distinct=%d", e.Len(), e.DistinctKeys())
	}
}

func TestExactMayJoin(t *testing.T) {
	a, b, c := NewExact(), NewExact(), NewExact()
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(3)
	c.Add(4)
	if !a.MayJoin(b) || !b.MayJoin(a) {
		t.Fatal("overlapping signatures must join")
	}
	if a.MayJoin(c) || c.MayJoin(a) {
		t.Fatal("disjoint signatures must not join")
	}
}

func TestExactJoinCardinality(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 8))
	f := func() bool {
		a, b := NewExact(), NewExact()
		var av, bv []int64
		for i := 0; i < r.IntN(40); i++ {
			k := int64(r.IntN(10))
			a.Add(k)
			av = append(av, k)
		}
		for i := 0; i < r.IntN(40); i++ {
			k := int64(r.IntN(10))
			b.Add(k)
			bv = append(bv, k)
		}
		brute := 0
		for _, x := range av {
			for _, y := range bv {
				if x == y {
					brute++
				}
			}
		}
		return a.JoinCardinality(b) == brute && b.JoinCardinality(a) == brute &&
			a.MayJoin(b) == (brute > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(512, 3)
	keys := []int64{1, 99, -7, 1 << 40, 0}
	for _, k := range keys {
		b.Add(k)
	}
	for _, k := range keys {
		if !b.MayContain(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
	if b.Len() != len(keys) {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestBloomIntersect(t *testing.T) {
	a := NewBloom(1024, 4)
	b := NewBloom(1024, 4)
	for i := int64(0); i < 20; i++ {
		a.Add(i)
		b.Add(i + 1000)
	}
	// Disjoint sets usually produce a negative intersection at this load.
	// A positive answer is allowed (Bloom "maybe"), so only test the
	// guaranteed direction: shared key -> must intersect.
	b.Add(5)
	if !a.MayIntersect(b) {
		t.Fatal("filters sharing key 5 must possibly intersect")
	}
	// Mismatched configurations degrade to maybe.
	c := NewBloom(64, 2)
	if !a.MayIntersect(c) {
		t.Fatal("incomparable filters must answer maybe")
	}
}

func TestBloomDisjointDetection(t *testing.T) {
	// With a large filter and few keys, clearly disjoint sets should be
	// detected as disjoint (this is probabilistic but deterministic for
	// fixed hashing and inputs).
	a := NewBloom(4096, 4)
	b := NewBloom(4096, 4)
	a.Add(1)
	a.Add(2)
	b.Add(100001)
	b.Add(100002)
	if a.MayIntersect(b) {
		t.Fatal("expected disjoint detection for sparse filters")
	}
	if a.FillRatio() <= 0 || a.FillRatio() >= 1 {
		t.Fatalf("fill ratio = %g", a.FillRatio())
	}
}

func TestBloomClamping(t *testing.T) {
	b := NewBloom(1, 0)
	if b.k != 1 {
		t.Fatalf("k clamped to %d, want 1", b.k)
	}
	if len(b.words) != 1 {
		t.Fatalf("bits clamped to %d words, want 1", len(b.words))
	}
	b2 := NewBloom(100, 99)
	if b2.k != 8 {
		t.Fatalf("k clamped to %d, want 8", b2.k)
	}
}
