// Package sig provides join-domain signatures for input partitions (§III-A).
// A signature summarizes the set of join-key values present in a partition so
// that partition pairs that cannot produce any join result are skipped
// without touching tuples.
//
// Two realizations are provided, mirroring the paper's "Bloom Filter or a bit
// vector" remark:
//
//   - Exact: a hash-set-backed exact signature. Intersection emptiness is
//     exact in both directions, so a non-empty intersection *guarantees* at
//     least one join result — the property ProgXe's domination-based region
//     pruning relies on ("guaranteed to be populated").
//   - Bloom: a split Bloom filter. A negative intersection test is reliable
//     (definitely no join result); a positive one is only "maybe", so Bloom
//     signatures alone must not be used to establish population guarantees.
//
// Exact signatures also carry per-value counts, which yields the exact join
// cardinality of a partition pair — the σ·|IRa|·|ITb| term in the cost model
// (Equations 4–5) without estimation error.
package sig

import (
	"math/bits"
)

// Exact is an exact multiset signature of join-key values.
type Exact struct {
	counts map[int64]int
	n      int // total tuples represented
}

// NewExact returns an empty exact signature.
func NewExact() *Exact {
	return &Exact{counts: make(map[int64]int)}
}

// Add records one tuple with the given join key.
func (e *Exact) Add(key int64) {
	e.counts[key]++
	e.n++
}

// Len returns the number of tuples represented.
func (e *Exact) Len() int { return e.n }

// DistinctKeys returns the number of distinct join keys.
func (e *Exact) DistinctKeys() int { return len(e.counts) }

// Count returns how many tuples carry the given join key.
func (e *Exact) Count(key int64) int { return e.counts[key] }

// MayJoin reports whether the two signatures share at least one join key.
// For exact signatures the answer is precise: true means the corresponding
// partition pair is guaranteed to produce at least one join result.
func (e *Exact) MayJoin(other *Exact) bool {
	a, b := e, other
	if len(b.counts) < len(a.counts) {
		a, b = b, a
	}
	for k := range a.counts {
		if b.counts[k] > 0 {
			return true
		}
	}
	return false
}

// JoinCardinality returns the exact number of join results the two
// partitions produce under an equi-join: Σ_v count_a(v)·count_b(v).
func (e *Exact) JoinCardinality(other *Exact) int {
	a, b := e, other
	if len(b.counts) < len(a.counts) {
		a, b = b, a
	}
	total := 0
	for k, ca := range a.counts {
		if cb := b.counts[k]; cb > 0 {
			total += ca * cb
		}
	}
	return total
}

// Bloom is a fixed-size Bloom filter over join keys. The zero value is not
// usable; construct with NewBloom.
type Bloom struct {
	words []uint64
	mask  uint64
	k     int // hash functions
	n     int // inserted keys (with multiplicity)
}

// NewBloom returns a Bloom filter with at least bitsHint bits (rounded up to
// a power of two, minimum 64) and k hash functions (clamped to [1, 8]).
func NewBloom(bitsHint, k int) *Bloom {
	if bitsHint < 64 {
		bitsHint = 64
	}
	nbits := 64
	for nbits < bitsHint {
		nbits <<= 1
	}
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return &Bloom{words: make([]uint64, nbits/64), mask: uint64(nbits - 1), k: k}
}

// splitmix64 is the finalizer used to derive independent hash values.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Add inserts a join key.
func (b *Bloom) Add(key int64) {
	h1 := splitmix64(uint64(key))
	h2 := splitmix64(h1)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) & b.mask
		b.words[bit>>6] |= 1 << (bit & 63)
	}
	b.n++
}

// MayContain reports whether key may have been inserted (no false negatives).
func (b *Bloom) MayContain(key int64) bool {
	h1 := splitmix64(uint64(key))
	h2 := splitmix64(h1)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) & b.mask
		if b.words[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// MayIntersect reports whether the two filters may share a key. False means
// definitely disjoint; true means "maybe". Both filters must have the same
// size and hash count.
func (b *Bloom) MayIntersect(other *Bloom) bool {
	if len(b.words) != len(other.words) || b.k != other.k {
		// Incomparable configurations: be conservative.
		return true
	}
	// If the bitwise AND has fewer than k set bits, no single key can have
	// all of its k bits present in both filters.
	set := 0
	for i, w := range b.words {
		set += bits.OnesCount64(w & other.words[i])
		if set >= b.k {
			return true
		}
	}
	return false
}

// FillRatio returns the fraction of set bits, a saturation diagnostic.
func (b *Bloom) FillRatio() float64 {
	set := 0
	for _, w := range b.words {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(len(b.words)*64)
}

// Len returns the number of inserted keys (with multiplicity).
func (b *Bloom) Len() int { return b.n }
