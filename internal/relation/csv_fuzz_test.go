package relation

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadCSV drives the CSV ingest boundary — the only path through which
// network clients hand the service bulk data — with arbitrary bytes. The
// invariants: ReadCSV either returns a structurally sound relation or an
// error, never panics; an accepted relation holds only finite values and a
// consistent arity; and an accepted relation round-trips through
// WriteCSV → ReadCSV into the same tuples (the /v1/relations download of an
// upload must mean the same data).
func FuzzLoadCSV(f *testing.F) {
	seeds := []string{
		"id,price,speed,region\n1,10,5,1\n2,20,1,1\n",
		"id,a,j\n1,0.5,7\n",
		"id,a0,a1,jkey\n1,1e300,-2.5,3\n2,0.0,3.25,3\n",
		"id,a,j\n1,NaN,2\n",       // non-finite value must be rejected
		"id,a,j\n1,+Inf,2\n",      // non-finite value must be rejected
		"id,a,j\nx,1,2\n",         // bad id
		"id,a,j\n1,1\n",           // short row
		"id,a\n1,2\n",             // too few columns
		"nid,a,j\n1,1,2\n",        // first column must be id
		"id,a,a\n1,1,2\n",         // duplicate attribute names
		"id,\"a\nb\",j\n1,1,2\n",  // quoted header with newline
		"id,a,j\n\"1\",\"2\",3\n", // quoted fields
		"id,a,j\r\n1,2,3\r\n",     // CRLF
		"",                        // empty input
		"\xff\xfe,a,j\n1,2,3\n",   // invalid UTF-8
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		rel, err := ReadCSV("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		arity := rel.Schema.Arity()
		if arity < 1 || rel.Schema.JoinAttr == "" {
			t.Fatalf("accepted schema is unsound: %+v", rel.Schema)
		}
		for i, tup := range rel.Tuples {
			if len(tup.Vals) != arity {
				t.Fatalf("tuple %d has %d values, schema arity %d", i, len(tup.Vals), arity)
			}
			for _, v := range tup.Vals {
				if v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308 {
					t.Fatalf("tuple %d holds non-finite value %v", i, v)
				}
			}
		}

		// Round-trip: what the service would serve back must parse into the
		// same relation.
		var buf bytes.Buffer
		if err := rel.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted relation fails to serialize: %v", err)
		}
		back, err := ReadCSV("fuzz", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("serialized relation fails to re-parse: %v\ncsv:\n%s", err, buf.Bytes())
		}
		if back.Len() != rel.Len() || back.Schema.Arity() != arity {
			t.Fatalf("round-trip changed shape: %d×%d → %d×%d", rel.Len(), arity, back.Len(), back.Schema.Arity())
		}
		for i := range rel.Tuples {
			a, b := rel.Tuples[i], back.Tuples[i]
			if a.ID != b.ID || a.JoinKey != b.JoinKey {
				t.Fatalf("round-trip changed tuple %d identity: %+v → %+v", i, a, b)
			}
			for j := range a.Vals {
				if a.Vals[j] != b.Vals[j] {
					t.Fatalf("round-trip changed tuple %d value %d: %v → %v", i, j, a.Vals[j], b.Vals[j])
				}
			}
		}
	})
}
