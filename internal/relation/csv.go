package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteCSV writes the relation with a header row:
// id,<attr1>,...,<attrN>,<joinAttr>.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, r.Schema.Arity()+2)
	header = append(header, "id")
	header = append(header, r.Schema.Attrs...)
	header = append(header, r.Schema.JoinAttr)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("relation %s: write header: %w", r.Schema.Name, err)
	}
	rec := make([]string, len(header))
	for _, t := range r.Tuples {
		rec[0] = strconv.FormatInt(t.ID, 10)
		for i, v := range t.Vals {
			rec[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[len(rec)-1] = strconv.FormatInt(t.JoinKey, 10)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation %s: write row %d: %w", r.Schema.Name, t.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a relation written by WriteCSV. The header row determines
// the attribute names; the first column must be "id" and the last column is
// the join attribute.
func ReadCSV(name string, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation %s: read header: %w", name, err)
	}
	if len(header) < 3 {
		return nil, fmt.Errorf("relation %s: header needs at least id, one attribute, and a join column; got %d columns", name, len(header))
	}
	if header[0] != "id" {
		return nil, fmt.Errorf("relation %s: first column must be %q, got %q", name, "id", header[0])
	}
	attrs := make([]string, len(header)-2)
	copy(attrs, header[1:len(header)-1])
	schema, err := NewSchema(name, attrs, header[len(header)-1])
	if err != nil {
		return nil, err
	}
	rel := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation %s: line %d: %w", name, line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation %s: line %d: got %d fields, want %d", name, line, len(rec), len(header))
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("relation %s: line %d: bad id %q: %w", name, line, rec[0], err)
		}
		vals := make([]float64, len(attrs))
		for i := range attrs {
			v, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("relation %s: line %d: bad value %q for %s: %w", name, line, rec[i+1], attrs[i], err)
			}
			// Dominance over NaN/Inf is meaningless and non-finite values
			// cannot round-trip through JSON result streams; reject at the
			// boundary.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("relation %s: line %d: non-finite value %q for %s", name, line, rec[i+1], attrs[i])
			}
			vals[i] = v
		}
		key, err := strconv.ParseInt(rec[len(rec)-1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("relation %s: line %d: bad join key %q: %w", name, line, rec[len(rec)-1], err)
		}
		rel.Tuples = append(rel.Tuples, Tuple{ID: id, Vals: vals, JoinKey: key})
	}
	return rel, nil
}
