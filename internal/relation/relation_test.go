package relation

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name  string
		attrs []string
		join  string
	}{
		{"", []string{"a"}, "j"},       // no name
		{"R", nil, "j"},                // no attributes
		{"R", []string{""}, "j"},       // empty attribute
		{"R", []string{"a", "a"}, "j"}, // duplicate attribute
		{"R", []string{"a"}, ""},       // no join attribute
		{"R", []string{"a", "j"}, "j"}, // join collides
	}
	for _, c := range cases {
		if _, err := NewSchema(c.name, c.attrs, c.join); err == nil {
			t.Errorf("NewSchema(%q, %v, %q): expected error", c.name, c.attrs, c.join)
		}
	}
	s := MustSchema("R", []string{"a", "b"}, "j")
	if s.Arity() != 2 || s.Index("b") != 1 || s.Index("zz") != -1 {
		t.Fatalf("schema accessors wrong: %s", s)
	}
	if got := s.String(); got != "R(a, b, j*)" {
		t.Fatalf("String = %q", got)
	}
}

func TestRelationAppend(t *testing.T) {
	r := New(MustSchema("R", []string{"a"}, "j"))
	if err := r.Append(Tuple{ID: 1, Vals: []float64{1, 2}}); err == nil {
		t.Fatal("arity mismatch must error")
	}
	r.MustAppend(Tuple{ID: 1, Vals: []float64{5}, JoinKey: 9})
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAppend must panic on bad arity")
		}
	}()
	r.MustAppend(Tuple{ID: 2, Vals: nil})
}

func TestSelectAndPredicates(t *testing.T) {
	s := MustSchema("R", []string{"price", "cap"}, "part")
	r := New(s)
	r.MustAppend(Tuple{ID: 1, Vals: []float64{10, 50}, JoinKey: 1})
	r.MustAppend(Tuple{ID: 2, Vals: []float64{20, 150}, JoinKey: 1})
	r.MustAppend(Tuple{ID: 3, Vals: []float64{30, 200}, JoinKey: 2})

	// Q1-style selection: cap >= 100 AND part IN {1}.
	sel := r.Select(And{
		AttrCmp{Attr: "cap", Op: GE, Const: 100},
		JoinKeyIn{Keys: map[int64]bool{1: true}},
	})
	if sel.Len() != 1 || sel.Tuples[0].ID != 2 {
		t.Fatalf("selection kept %v", sel.Tuples)
	}

	ops := []struct {
		op   CmpOp
		v    float64
		want bool
	}{
		{EQ, 10, true}, {NE, 10, false}, {LT, 11, true},
		{LE, 10, true}, {GT, 9, true}, {GE, 11, false},
	}
	for _, c := range ops {
		p := AttrCmp{Attr: "price", Op: c.op, Const: c.v}
		if got := p.Eval(s, r.Tuples[0]); got != c.want {
			t.Errorf("%s: got %v", p, got)
		}
	}
	if (AttrCmp{Attr: "missing", Op: EQ, Const: 0}).Eval(s, r.Tuples[0]) {
		t.Fatal("unknown attribute must evaluate false")
	}
	if !(True{}).Eval(s, r.Tuples[0]) || (And{}).Eval(s, r.Tuples[0]) != true {
		t.Fatal("True and empty And must hold")
	}
	if (And{}).String() != "TRUE" || (True{}).String() != "TRUE" {
		t.Fatal("trivial predicate strings wrong")
	}
	if !strings.Contains((And{AttrCmp{"a", LT, 1}, True{}}).String(), "AND") {
		t.Fatal("And must join with AND")
	}
}

func TestProject(t *testing.T) {
	r := New(MustSchema("R", []string{"a", "b"}, "j"))
	r.MustAppend(Tuple{ID: 1, Vals: []float64{1, 2}})
	r.MustAppend(Tuple{ID: 2, Vals: []float64{3, 4}})
	got, err := r.Project([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, [][]float64{{2}, {4}}) {
		t.Fatalf("Project = %v", got)
	}
	if _, err := r.Project([]string{"zz"}); err == nil {
		t.Fatal("unknown attribute must error")
	}
}

func TestJoinKeys(t *testing.T) {
	r := New(MustSchema("R", []string{"a"}, "j"))
	r.MustAppend(Tuple{ID: 1, Vals: []float64{0}, JoinKey: 5})
	r.MustAppend(Tuple{ID: 2, Vals: []float64{0}, JoinKey: 5})
	r.MustAppend(Tuple{ID: 3, Vals: []float64{0}, JoinKey: 6})
	keys := r.JoinKeys()
	if keys[5] != 2 || keys[6] != 1 {
		t.Fatalf("JoinKeys = %v", keys)
	}
}

func TestTupleClone(t *testing.T) {
	a := Tuple{ID: 1, Vals: []float64{1, 2}, JoinKey: 3}
	b := a.Clone()
	b.Vals[0] = 99
	if a.Vals[0] != 1 {
		t.Fatal("clone must not share storage")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := New(MustSchema("R", []string{"a", "b"}, "j"))
	r.MustAppend(Tuple{ID: 1, Vals: []float64{1.5, -2}, JoinKey: 7})
	r.MustAppend(Tuple{ID: 2, Vals: []float64{0, 1e9}, JoinKey: -1})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("R", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Schema, r.Schema) {
		t.Fatalf("schema roundtrip: %v vs %v", got.Schema, r.Schema)
	}
	if !reflect.DeepEqual(got.Tuples, r.Tuples) {
		t.Fatalf("tuples roundtrip: %v vs %v", got.Tuples, r.Tuples)
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"",                // no header
		"id,j\n",          // too few columns
		"x,a,j\n",         // first column not id
		"id,a,j\n1,2\n",   // wrong field count
		"id,a,j\nx,2,3\n", // bad id
		"id,a,j\n1,x,3\n", // bad value
		"id,a,j\n1,2,x\n", // bad join key
	}
	for _, c := range cases {
		if _, err := ReadCSV("R", strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q): expected error", c)
		}
	}
}

func TestCmpOpString(t *testing.T) {
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE, CmpOp(9)} {
		if op.String() == "" {
			t.Fatalf("CmpOp(%d) renders empty", op)
		}
	}
}
