// Package relation provides the tuple and relation substrate the rest of the
// system is built on: typed schemas, in-memory relations, selection
// predicates, and CSV import/export.
//
// Tuples carry float64 attribute values plus a single int64 join key. The
// paper's queries (for example Q1 in §I) join two sources on an equality
// predicate, filter each source with selections, and feed a subset of the
// numeric attributes into mapping functions; this package models exactly
// that shape without generalizing to a full relational engine.
package relation

import (
	"fmt"
	"slices"
	"strings"
)

// Schema describes the layout of the tuples in a relation: the ordered
// numeric attribute names plus the name of the join-key column.
type Schema struct {
	Name     string   // relation name, e.g. "Suppliers"
	Attrs    []string // numeric attribute names, in column order
	JoinAttr string   // join key column name, e.g. "country"
}

// NewSchema returns a schema for the given relation name, numeric attribute
// names, and join attribute name.
func NewSchema(name string, attrs []string, joinAttr string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: schema needs a name")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: schema %q needs at least one attribute", name)
	}
	seen := make(map[string]bool, len(attrs)+1)
	for _, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation: schema %q has an empty attribute name", name)
		}
		if seen[a] {
			return nil, fmt.Errorf("relation: schema %q has duplicate attribute %q", name, a)
		}
		seen[a] = true
	}
	if joinAttr == "" {
		return nil, fmt.Errorf("relation: schema %q needs a join attribute", name)
	}
	if seen[joinAttr] {
		return nil, fmt.Errorf("relation: schema %q join attribute %q collides with a numeric attribute", name, joinAttr)
	}
	return &Schema{Name: name, Attrs: slices.Clone(attrs), JoinAttr: joinAttr}, nil
}

// MustSchema is like NewSchema but panics on error. Intended for tests and
// examples with literal schemas.
func MustSchema(name string, attrs []string, joinAttr string) *Schema {
	s, err := NewSchema(name, attrs, joinAttr)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of numeric attributes.
func (s *Schema) Arity() int { return len(s.Attrs) }

// Index returns the column index of the named numeric attribute, or -1.
func (s *Schema) Index(attr string) int {
	return slices.Index(s.Attrs, attr)
}

// String renders the schema as Name(attr1, attr2, ..., joinAttr*).
func (s *Schema) String() string {
	return fmt.Sprintf("%s(%s, %s*)", s.Name, strings.Join(s.Attrs, ", "), s.JoinAttr)
}

// Tuple is a single row: an identifier, the numeric attribute values (in
// schema column order), and the join key.
type Tuple struct {
	ID      int64
	Vals    []float64
	JoinKey int64
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	return Tuple{ID: t.ID, Vals: slices.Clone(t.Vals), JoinKey: t.JoinKey}
}

// Relation is an in-memory table: a schema plus its tuples.
type Relation struct {
	Schema *Schema
	Tuples []Tuple
}

// New returns an empty relation with the given schema.
func New(s *Schema) *Relation {
	return &Relation{Schema: s}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Append adds a tuple, validating its arity against the schema.
func (r *Relation) Append(t Tuple) error {
	if len(t.Vals) != r.Schema.Arity() {
		return fmt.Errorf("relation %s: tuple %d has %d values, schema has %d",
			r.Schema.Name, t.ID, len(t.Vals), r.Schema.Arity())
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustAppend is Append that panics on arity mismatch.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Select returns a new relation containing the tuples satisfying pred. The
// returned relation shares tuple storage with the receiver.
func (r *Relation) Select(pred Predicate) *Relation {
	out := New(r.Schema)
	for _, t := range r.Tuples {
		if pred.Eval(r.Schema, t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Project returns, for each tuple, the values of the named attributes as a
// fresh vector. It errs if any attribute is unknown.
func (r *Relation) Project(attrs []string) ([][]float64, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.Schema.Index(a)
		if j < 0 {
			return nil, fmt.Errorf("relation %s: unknown attribute %q", r.Schema.Name, a)
		}
		idx[i] = j
	}
	out := make([][]float64, len(r.Tuples))
	for i, t := range r.Tuples {
		v := make([]float64, len(idx))
		for k, j := range idx {
			v[k] = t.Vals[j]
		}
		out[i] = v
	}
	return out, nil
}

// JoinKeys returns the set of distinct join-key values in the relation.
func (r *Relation) JoinKeys() map[int64]int {
	m := make(map[int64]int)
	for _, t := range r.Tuples {
		m[t.JoinKey]++
	}
	return m
}

// Predicate is a boolean condition over a single tuple.
type Predicate interface {
	Eval(s *Schema, t Tuple) bool
	String() string
}

// CmpOp is a comparison operator for attribute predicates.
type CmpOp int8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int8(op))
	}
}

func (op CmpOp) eval(a, b float64) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	default:
		return false
	}
}

// AttrCmp compares a named numeric attribute against a constant, e.g.
// "manCap >= 100000" from query Q1.
type AttrCmp struct {
	Attr  string
	Op    CmpOp
	Const float64
}

// Eval implements Predicate.
func (p AttrCmp) Eval(s *Schema, t Tuple) bool {
	i := s.Index(p.Attr)
	if i < 0 {
		return false
	}
	return p.Op.eval(t.Vals[i], p.Const)
}

func (p AttrCmp) String() string {
	return fmt.Sprintf("%s %s %g", p.Attr, p.Op, p.Const)
}

// JoinKeyIn keeps tuples whose join key is in the given set (e.g. 'P1' IN
// R.suppliedParts encoded as key membership).
type JoinKeyIn struct {
	Keys map[int64]bool
}

// Eval implements Predicate.
func (p JoinKeyIn) Eval(_ *Schema, t Tuple) bool { return p.Keys[t.JoinKey] }

func (p JoinKeyIn) String() string { return fmt.Sprintf("joinKey IN set(%d)", len(p.Keys)) }

// And is the conjunction of predicates; an empty And is true.
type And []Predicate

// Eval implements Predicate.
func (p And) Eval(s *Schema, t Tuple) bool {
	for _, q := range p {
		if !q.Eval(s, t) {
			return false
		}
	}
	return true
}

func (p And) String() string {
	if len(p) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(p))
	for i, q := range p {
		parts[i] = q.String()
	}
	return strings.Join(parts, " AND ")
}

// True is the always-true predicate.
type True struct{}

// Eval implements Predicate.
func (True) Eval(*Schema, Tuple) bool { return true }

func (True) String() string { return "TRUE" }
