// Package mapping implements the Map operator µ[F,X] of §II-B: a set of
// user-defined functions that combine attributes from the two join sides
// into the k-dimensional output space the skyline is evaluated over.
//
// Functions are expression trees over source attributes. Beyond point
// evaluation, every expression supports:
//
//   - interval propagation — given the bounding boxes of an input partition
//     pair, compute the output region the pair's join results must map into
//     (the core of output-space look-ahead, §III-A, Example 1);
//   - monotonicity analysis — per source attribute, whether the expression
//     is (strictly) non-decreasing, (strictly) non-increasing, or mixed,
//     which determines whether skyline partial push-through is sound on a
//     source (§VI-B, ProgXe+).
package mapping

import (
	"fmt"
	"strings"
)

// Side identifies which join input an attribute belongs to.
type Side int8

// Join sides.
const (
	Left  Side = 0
	Right Side = 1
)

// String returns "L" or "R".
func (s Side) String() string {
	if s == Left {
		return "L"
	}
	return "R"
}

// Direction classifies how an expression responds to increasing one input
// attribute while everything else is fixed.
type Direction int8

// Monotonicity directions.
const (
	Unused    Direction = iota // attribute does not appear
	NonDec                     // non-decreasing (weak)
	StrictInc                  // strictly increasing
	NonInc                     // non-increasing (weak)
	StrictDec                  // strictly decreasing
	Mixed                      // appears with conflicting directions
)

// String returns a short name for the direction.
func (d Direction) String() string {
	switch d {
	case Unused:
		return "unused"
	case NonDec:
		return "non-decreasing"
	case StrictInc:
		return "strictly-increasing"
	case NonInc:
		return "non-increasing"
	case StrictDec:
		return "strictly-decreasing"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("Direction(%d)", int8(d))
	}
}

// negate flips the direction (used under negation / subtraction).
func (d Direction) negate() Direction {
	switch d {
	case NonDec:
		return NonInc
	case StrictInc:
		return StrictDec
	case NonInc:
		return NonDec
	case StrictDec:
		return StrictInc
	default:
		return d
	}
}

// weaken drops strictness (used under min/max, which are only weakly
// monotone in each argument).
func (d Direction) weaken() Direction {
	switch d {
	case StrictInc:
		return NonDec
	case StrictDec:
		return NonInc
	default:
		return d
	}
}

// combine merges the directions of the same attribute appearing in two
// subexpressions that are added together.
func (d Direction) combine(o Direction) Direction {
	if d == Unused {
		return o
	}
	if o == Unused {
		return d
	}
	if d == Mixed || o == Mixed {
		return Mixed
	}
	inc := func(x Direction) bool { return x == NonDec || x == StrictInc }
	dec := func(x Direction) bool { return x == NonInc || x == StrictDec }
	switch {
	case inc(d) && inc(o):
		if d == StrictInc || o == StrictInc {
			return StrictInc
		}
		return NonDec
	case dec(d) && dec(o):
		if d == StrictDec || o == StrictDec {
			return StrictDec
		}
		return NonInc
	default:
		return Mixed
	}
}

// AttrRef names a source attribute: a side and a column index into that
// side's numeric attribute vector.
type AttrRef struct {
	Side  Side
	Index int
}

// Expr is a mapping-function expression tree node.
type Expr interface {
	// Eval computes the expression over one pair of attribute vectors.
	Eval(left, right []float64) float64
	// Interval computes a sound enclosure of the expression over the boxes
	// [leftLo, leftHi] × [rightLo, rightHi].
	Interval(leftLo, leftHi, rightLo, rightHi []float64) (lo, hi float64)
	// directions merges each referenced attribute's direction into m.
	directions(m map[AttrRef]Direction)
	// String renders the expression.
	String() string
}

// Attr references a source attribute.
type Attr struct {
	Ref  AttrRef
	Name string // display name; optional
}

// A returns an attribute reference expression.
func A(side Side, index int, name string) Attr {
	return Attr{Ref: AttrRef{Side: side, Index: index}, Name: name}
}

// Eval implements Expr.
func (a Attr) Eval(left, right []float64) float64 {
	if a.Ref.Side == Left {
		return left[a.Ref.Index]
	}
	return right[a.Ref.Index]
}

// Interval implements Expr.
func (a Attr) Interval(leftLo, leftHi, rightLo, rightHi []float64) (float64, float64) {
	if a.Ref.Side == Left {
		return leftLo[a.Ref.Index], leftHi[a.Ref.Index]
	}
	return rightLo[a.Ref.Index], rightHi[a.Ref.Index]
}

func (a Attr) directions(m map[AttrRef]Direction) {
	m[a.Ref] = m[a.Ref].combine(StrictInc)
}

func (a Attr) String() string {
	if a.Name != "" {
		return fmt.Sprintf("%s.%s", a.Ref.Side, a.Name)
	}
	return fmt.Sprintf("%s[%d]", a.Ref.Side, a.Ref.Index)
}

// Const is a numeric literal.
type Const float64

// Eval implements Expr.
func (c Const) Eval(_, _ []float64) float64 { return float64(c) }

// Interval implements Expr.
func (c Const) Interval(_, _, _, _ []float64) (float64, float64) {
	return float64(c), float64(c)
}

func (c Const) directions(map[AttrRef]Direction) {}

func (c Const) String() string { return fmt.Sprintf("%g", float64(c)) }

// Add is the sum of its terms — the mapping used by the paper's queries
// ("an addition operation between the attribute-values", §VI-A).
type Add []Expr

// Sum returns the sum of the given expressions.
func Sum(terms ...Expr) Add { return Add(terms) }

// Eval implements Expr.
func (a Add) Eval(left, right []float64) float64 {
	s := 0.0
	for _, e := range a {
		s += e.Eval(left, right)
	}
	return s
}

// Interval implements Expr.
func (a Add) Interval(ll, lh, rl, rh []float64) (float64, float64) {
	lo, hi := 0.0, 0.0
	for _, e := range a {
		l, h := e.Interval(ll, lh, rl, rh)
		lo += l
		hi += h
	}
	return lo, hi
}

func (a Add) directions(m map[AttrRef]Direction) {
	for _, e := range a {
		e.directions(m)
	}
}

func (a Add) String() string {
	parts := make([]string, len(a))
	for i, e := range a {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

// Scale multiplies a subexpression by a constant factor (e.g. the
// "2 * R.manTime" term of query Q1 or the Rome-vs-Paris walking weights of
// Example 1 in the introduction).
type Scale struct {
	Factor float64
	Of     Expr
}

// Eval implements Expr.
func (s Scale) Eval(left, right []float64) float64 {
	return s.Factor * s.Of.Eval(left, right)
}

// Interval implements Expr.
func (s Scale) Interval(ll, lh, rl, rh []float64) (float64, float64) {
	lo, hi := s.Of.Interval(ll, lh, rl, rh)
	lo, hi = s.Factor*lo, s.Factor*hi
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi
}

func (s Scale) directions(m map[AttrRef]Direction) {
	sub := make(map[AttrRef]Direction)
	s.Of.directions(sub)
	for ref, d := range sub {
		switch {
		case s.Factor > 0:
			m[ref] = m[ref].combine(d)
		case s.Factor < 0:
			m[ref] = m[ref].combine(d.negate())
		default:
			// Factor 0: the subexpression is irrelevant.
		}
	}
}

func (s Scale) String() string { return fmt.Sprintf("%g*%s", s.Factor, s.Of) }

// Sub is the difference lhs − rhs.
type Sub struct {
	L, R Expr
}

// Eval implements Expr.
func (s Sub) Eval(left, right []float64) float64 {
	return s.L.Eval(left, right) - s.R.Eval(left, right)
}

// Interval implements Expr.
func (s Sub) Interval(ll, lh, rl, rh []float64) (float64, float64) {
	llo, lhi := s.L.Interval(ll, lh, rl, rh)
	rlo, rhi := s.R.Interval(ll, lh, rl, rh)
	return llo - rhi, lhi - rlo
}

func (s Sub) directions(m map[AttrRef]Direction) {
	s.L.directions(m)
	sub := make(map[AttrRef]Direction)
	s.R.directions(sub)
	for ref, d := range sub {
		m[ref] = m[ref].combine(d.negate())
	}
}

func (s Sub) String() string { return fmt.Sprintf("(%s - %s)", s.L, s.R) }

// Min is the pointwise minimum of its arguments.
type Min []Expr

// Eval implements Expr.
func (mn Min) Eval(left, right []float64) float64 {
	v := mn[0].Eval(left, right)
	for _, e := range mn[1:] {
		if w := e.Eval(left, right); w < v {
			v = w
		}
	}
	return v
}

// Interval implements Expr.
func (mn Min) Interval(ll, lh, rl, rh []float64) (float64, float64) {
	lo, hi := mn[0].Interval(ll, lh, rl, rh)
	for _, e := range mn[1:] {
		l, h := e.Interval(ll, lh, rl, rh)
		if l < lo {
			lo = l
		}
		if h < hi {
			hi = h
		}
	}
	return lo, hi
}

func (mn Min) directions(m map[AttrRef]Direction) {
	for _, e := range mn {
		sub := make(map[AttrRef]Direction)
		e.directions(sub)
		for ref, d := range sub {
			m[ref] = m[ref].combine(d.weaken())
		}
	}
}

func (mn Min) String() string {
	parts := make([]string, len(mn))
	for i, e := range mn {
		parts[i] = e.String()
	}
	return "min(" + strings.Join(parts, ", ") + ")"
}

// Max is the pointwise maximum of its arguments.
type Max []Expr

// Eval implements Expr.
func (mx Max) Eval(left, right []float64) float64 {
	v := mx[0].Eval(left, right)
	for _, e := range mx[1:] {
		if w := e.Eval(left, right); w > v {
			v = w
		}
	}
	return v
}

// Interval implements Expr.
func (mx Max) Interval(ll, lh, rl, rh []float64) (float64, float64) {
	lo, hi := mx[0].Interval(ll, lh, rl, rh)
	for _, e := range mx[1:] {
		l, h := e.Interval(ll, lh, rl, rh)
		if l > lo {
			lo = l
		}
		if h > hi {
			hi = h
		}
	}
	return lo, hi
}

func (mx Max) directions(m map[AttrRef]Direction) {
	for _, e := range mx {
		sub := make(map[AttrRef]Direction)
		e.directions(sub)
		for ref, d := range sub {
			m[ref] = m[ref].combine(d.weaken())
		}
	}
}

func (mx Max) String() string {
	parts := make([]string, len(mx))
	for i, e := range mx {
		parts[i] = e.String()
	}
	return "max(" + strings.Join(parts, ", ") + ")"
}
