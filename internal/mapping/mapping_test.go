package mapping

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"progxe/internal/grid"
)

// q1Maps builds the mapping set of query Q1 (§I):
// tCost = R.uPrice + T.uShipCost; delay = 2·R.manTime + T.shipTime.
func q1Maps(t *testing.T) *Set {
	t.Helper()
	s, err := NewSet(
		Func{Name: "tCost", Expr: Sum(A(Left, 0, "uPrice"), A(Right, 0, "uShipCost"))},
		Func{Name: "delay", Expr: Sum(Scale{Factor: 2, Of: A(Left, 1, "manTime")}, A(Right, 1, "shipTime"))},
	)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return s
}

func TestSetValidation(t *testing.T) {
	if _, err := NewSet(); err == nil {
		t.Fatal("empty set must error")
	}
	if _, err := NewSet(Func{Name: "", Expr: Const(1)}); err == nil {
		t.Fatal("unnamed function must error")
	}
	if _, err := NewSet(Func{Name: "x", Expr: nil}); err == nil {
		t.Fatal("nil expression must error")
	}
	if _, err := NewSet(Func{Name: "x", Expr: Const(1)}, Func{Name: "x", Expr: Const(2)}); err == nil {
		t.Fatal("duplicate names must error")
	}
}

func TestQ1Eval(t *testing.T) {
	s := q1Maps(t)
	out := s.Map([]float64{10, 3}, []float64{4, 5}, make([]float64, 2))
	if out[0] != 14 || out[1] != 11 {
		t.Fatalf("Q1 map = %v, want [14 11]", out)
	}
	if s.Dims() != 2 {
		t.Fatalf("Dims = %d", s.Dims())
	}
	names := s.Names()
	if names[0] != "tCost" || names[1] != "delay" {
		t.Fatalf("Names = %v", names)
	}
}

func TestExample1RegionMapping(t *testing.T) {
	// Example 1 of the paper: input partitions IR1 [(0,4)(1,5)] and
	// IT2 [(3,1)(4,2)] under Q1's mapping functions. With the unweighted
	// delay (manTime + shipTime) of the figure, the region is
	// [b(3,5), B(5,7)]; with Q1's 2× weight the delay bounds double on the
	// manTime term.
	unweighted := MustSet(
		Func{Name: "tCost", Expr: Sum(A(Left, 0, ""), A(Right, 0, ""))},
		Func{Name: "delay", Expr: Sum(A(Left, 1, ""), A(Right, 1, ""))},
	)
	ir1 := grid.Rect{Lower: []float64{0, 4}, Upper: []float64{1, 5}}
	it2 := grid.Rect{Lower: []float64{3, 1}, Upper: []float64{4, 2}}
	r := unweighted.MapRegion(ir1, it2)
	if r.Lower[0] != 3 || r.Lower[1] != 5 {
		t.Fatalf("lower-bound point b = %v, want (3,5)", r.Lower)
	}
	if r.Upper[0] != 5 || r.Upper[1] != 7 {
		t.Fatalf("upper-bound point B = %v, want (5,7)", r.Upper)
	}

	weighted := q1Maps(t)
	rw := weighted.MapRegion(ir1, it2)
	if rw.Lower[1] != 2*4+1 || rw.Upper[1] != 2*5+2 {
		t.Fatalf("weighted delay bounds = [%g, %g]", rw.Lower[1], rw.Upper[1])
	}
}

// TestIntervalSoundness samples random tuples inside random partition boxes
// and checks every mapped point falls inside the propagated region
// (DESIGN.md invariant 5).
func TestIntervalSoundness(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 3))
	exprs := []Expr{
		Sum(A(Left, 0, ""), A(Right, 0, "")),
		Sub{L: A(Left, 1, ""), R: A(Right, 1, "")},
		Scale{Factor: -1.5, Of: A(Right, 0, "")},
		Min{A(Left, 0, ""), A(Right, 1, "")},
		Max{Scale{Factor: 2, Of: A(Left, 1, "")}, Const(3)},
		Sum(Min{A(Left, 0, ""), A(Left, 1, "")}, Scale{Factor: 0.5, Of: Sub{L: Const(10), R: A(Right, 0, "")}}),
	}
	box := func() (lo, hi []float64) {
		lo = []float64{r.Float64() * 10, r.Float64() * 10}
		hi = []float64{lo[0] + r.Float64()*5, lo[1] + r.Float64()*5}
		return
	}
	sample := func(lo, hi []float64) []float64 {
		return []float64{
			lo[0] + r.Float64()*(hi[0]-lo[0]),
			lo[1] + r.Float64()*(hi[1]-lo[1]),
		}
	}
	f := func() bool {
		ll, lh := box()
		rl, rh := box()
		for _, e := range exprs {
			lo, hi := e.Interval(ll, lh, rl, rh)
			for k := 0; k < 8; k++ {
				v := e.Eval(sample(ll, lh), sample(rl, rh))
				const eps = 1e-9
				if v < lo-eps || v > hi+eps {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirections(t *testing.T) {
	s := q1Maps(t)
	if d := s.DirectionOf(AttrRef{Left, 0}); d != StrictInc {
		t.Fatalf("uPrice direction = %s", d)
	}
	if d := s.DirectionOf(AttrRef{Right, 1}); d != StrictInc {
		t.Fatalf("shipTime direction = %s", d)
	}
	if d := s.DirectionOf(AttrRef{Left, 5}); d != Unused {
		t.Fatalf("unused attribute direction = %s", d)
	}

	// Negative scaling flips direction.
	neg := MustSet(Func{Name: "x", Expr: Scale{Factor: -2, Of: A(Left, 0, "")}})
	if d := neg.DirectionOf(AttrRef{Left, 0}); d != StrictDec {
		t.Fatalf("negated direction = %s", d)
	}

	// Conflicting use is mixed.
	mixed := MustSet(
		Func{Name: "x", Expr: A(Left, 0, "")},
		Func{Name: "y", Expr: Scale{Factor: -1, Of: A(Left, 0, "")}},
	)
	if d := mixed.DirectionOf(AttrRef{Left, 0}); d != Mixed {
		t.Fatalf("mixed direction = %s", d)
	}

	// Min/Max weaken strictness.
	weak := MustSet(Func{Name: "x", Expr: Min{A(Left, 0, ""), A(Left, 1, "")}})
	if d := weak.DirectionOf(AttrRef{Left, 0}); d != NonDec {
		t.Fatalf("min direction = %s", d)
	}

	// Subtraction decreases in the right operand.
	sub := MustSet(Func{Name: "x", Expr: Sub{L: A(Left, 0, ""), R: A(Left, 1, "")}})
	if d := sub.DirectionOf(AttrRef{Left, 1}); d != StrictDec {
		t.Fatalf("sub rhs direction = %s", d)
	}
}

func TestUsedAttrs(t *testing.T) {
	s := q1Maps(t)
	l := s.UsedAttrs(Left)
	r := s.UsedAttrs(Right)
	if len(l) != 2 || l[0] != 0 || l[1] != 1 {
		t.Fatalf("left used = %v", l)
	}
	if len(r) != 2 {
		t.Fatalf("right used = %v", r)
	}
}

func TestPushThroughPlan(t *testing.T) {
	s := q1Maps(t)
	plan, err := s.PushThrough(Left)
	if err != nil {
		t.Fatalf("PushThrough: %v", err)
	}
	// Smaller uPrice and manTime are better, strictly.
	if !plan.Dominates([]float64{1, 1}, []float64{2, 2}) {
		t.Fatal("strictly smaller must dominate")
	}
	if plan.Dominates([]float64{1, 1}, []float64{1, 1}) {
		t.Fatal("equal must not dominate")
	}
	if plan.Dominates([]float64{1, 3}, []float64{2, 2}) {
		t.Fatal("incomparable must not dominate")
	}

	// Mixed monotonicity must refuse a plan.
	mixed := MustSet(
		Func{Name: "x", Expr: A(Left, 0, "")},
		Func{Name: "y", Expr: Scale{Factor: -1, Of: A(Left, 0, "")}},
	)
	if _, err := mixed.PushThrough(Left); err == nil {
		t.Fatal("mixed monotonicity must error")
	}

	// Decreasing attributes orient the comparison the other way.
	dec := MustSet(Func{Name: "x", Expr: Sub{L: Const(100), R: A(Left, 0, "")}})
	plan2, err := dec.PushThrough(Left)
	if err != nil {
		t.Fatal(err)
	}
	if !plan2.Dominates([]float64{5}, []float64{3}) {
		t.Fatal("larger value must dominate under a decreasing map")
	}

	// Weak-only monotonicity yields a plan that never strictly dominates.
	weak := MustSet(Func{Name: "x", Expr: Min{A(Left, 0, ""), A(Left, 1, "")}})
	plan3, err := weak.PushThrough(Left)
	if err != nil {
		t.Fatal(err)
	}
	if plan3.Dominates([]float64{0, 0}, []float64{9, 9}) {
		t.Fatal("weak plan must never claim strict dominance")
	}
}

func TestIdentity(t *testing.T) {
	s := Identity(Left, []string{"a", "b"})
	out := s.Map([]float64{7, 8}, nil, make([]float64, 2))
	if out[0] != 7 || out[1] != 8 {
		t.Fatalf("identity map = %v", out)
	}
}

func TestStrings(t *testing.T) {
	s := q1Maps(t)
	if s.String() == "" || s.Func(0).Expr.String() == "" {
		t.Fatal("expressions must render")
	}
	for _, e := range []Expr{
		Const(3), A(Left, 0, "x"), A(Right, 1, ""),
		Sum(Const(1), Const(2)), Sub{L: Const(1), R: Const(2)},
		Scale{Factor: 2, Of: Const(1)}, Min{Const(1), Const(2)}, Max{Const(1), Const(2)},
	} {
		if e.String() == "" {
			t.Fatalf("%T renders empty", e)
		}
	}
	if Left.String() != "L" || Right.String() != "R" {
		t.Fatal("side names wrong")
	}
	for d := Unused; d <= Mixed; d++ {
		if d.String() == "" {
			t.Fatalf("Direction(%d) renders empty", d)
		}
	}
}
