package mapping

import (
	"fmt"
	"sort"
	"strings"

	"progxe/internal/grid"
)

// Func is one named mapping function f_j: an output dimension name and the
// expression producing it.
type Func struct {
	Name string
	Expr Expr
}

// Set is the full mapping-function set F = {f_1, ..., f_k} of the Map
// operator µ[F,X]. It transforms each join result into a point of the
// k-dimensional output space X.
type Set struct {
	funcs []Func
	dirs  map[AttrRef]Direction
}

// NewSet builds a mapping set from named functions, pre-computing the
// monotonicity analysis.
func NewSet(funcs ...Func) (*Set, error) {
	if len(funcs) == 0 {
		return nil, fmt.Errorf("mapping: need at least one mapping function")
	}
	seen := make(map[string]bool, len(funcs))
	dirs := make(map[AttrRef]Direction)
	for _, f := range funcs {
		if f.Name == "" {
			return nil, fmt.Errorf("mapping: function needs a name")
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("mapping: duplicate function name %q", f.Name)
		}
		if f.Expr == nil {
			return nil, fmt.Errorf("mapping: function %q has no expression", f.Name)
		}
		seen[f.Name] = true
		f.Expr.directions(dirs)
	}
	s := &Set{funcs: make([]Func, len(funcs)), dirs: dirs}
	copy(s.funcs, funcs)
	return s, nil
}

// MustSet is NewSet that panics on error; for literals in tests and examples.
func MustSet(funcs ...Func) *Set {
	s, err := NewSet(funcs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Identity returns the mapping set that passes through the first d
// attributes of the given side unchanged — used to express plain
// skyline-over-join queries without mapping.
func Identity(side Side, names []string) *Set {
	funcs := make([]Func, len(names))
	for i, n := range names {
		funcs[i] = Func{Name: n, Expr: A(side, i, n)}
	}
	return MustSet(funcs...)
}

// Dims returns the number of output dimensions k.
func (s *Set) Dims() int { return len(s.funcs) }

// Names returns the output dimension names in order.
func (s *Set) Names() []string {
	out := make([]string, len(s.funcs))
	for i, f := range s.funcs {
		out[i] = f.Name
	}
	return out
}

// Func returns the j-th mapping function.
func (s *Set) Func(j int) Func { return s.funcs[j] }

// Map evaluates all mapping functions over one join result, writing the
// output point into dst (which must have length Dims()) and returning it.
func (s *Set) Map(left, right []float64, dst []float64) []float64 {
	for j, f := range s.funcs {
		dst[j] = f.Expr.Eval(left, right)
	}
	return dst
}

// MapRegion computes the output region R_{a,b} that all join results of an
// input-partition pair must map into, by interval propagation over the
// partition bounding boxes (Example 1: partitions [(0,4)(1,5)] and
// [(3,1)(4,2)] under Q1 yield the region [b(3,5), B(6,7)]).
func (s *Set) MapRegion(left, right grid.Rect) grid.Rect {
	lo := make([]float64, len(s.funcs))
	hi := make([]float64, len(s.funcs))
	for j, f := range s.funcs {
		lo[j], hi[j] = f.Expr.Interval(left.Lower, left.Upper, right.Lower, right.Upper)
	}
	return grid.Rect{Lower: lo, Upper: hi}
}

// DirectionOf returns the combined monotonicity direction of the given
// source attribute across all mapping functions.
func (s *Set) DirectionOf(ref AttrRef) Direction { return s.dirs[ref] }

// UsedAttrs returns the indices of the side's attributes referenced by any
// mapping function, ascending.
func (s *Set) UsedAttrs(side Side) []int {
	var out []int
	for ref, d := range s.dirs {
		if ref.Side == side && d != Unused {
			out = append(out, ref.Index)
		}
	}
	sort.Ints(out)
	return out
}

// PushThroughPlan describes how source-level skyline pruning may be applied
// to one side (ProgXe+ / JF-SL+ / SSMJ pre-pruning). For each used attribute
// it records whether smaller (increasing direction) or larger (decreasing)
// values are preferable in output space.
type PushThroughPlan struct {
	Attrs   []int  // attribute indices on this side, ascending
	Minimal []bool // Minimal[i]: smaller values of Attrs[i] are better
	Strict  []bool // Strict[i]: output strictly improves when Attrs[i] improves
}

// PushThrough returns a pruning plan for the side, or an error if some used
// attribute has mixed monotonicity (in which case source-level pruning is
// unsound and callers must skip push-through for that side).
//
// Soundness: with all output dimensions minimized, if tuple r1 is ≤ r2 on
// every used attribute (oriented by Minimal) with strict improvement on an
// attribute whose usage is strict, then F(r1, t) dominates F(r2, t) for every
// join partner t — so r2 can never contribute an undominated output as long
// as r1 has the same join key.
func (s *Set) PushThrough(side Side) (PushThroughPlan, error) {
	var plan PushThroughPlan
	for _, idx := range s.UsedAttrs(side) {
		d := s.dirs[AttrRef{Side: side, Index: idx}]
		switch d {
		case NonDec, StrictInc:
			plan.Attrs = append(plan.Attrs, idx)
			plan.Minimal = append(plan.Minimal, true)
			plan.Strict = append(plan.Strict, d == StrictInc)
		case NonInc, StrictDec:
			plan.Attrs = append(plan.Attrs, idx)
			plan.Minimal = append(plan.Minimal, false)
			plan.Strict = append(plan.Strict, d == StrictDec)
		default:
			return PushThroughPlan{}, fmt.Errorf("mapping: attribute %s[%d] has %s monotonicity; push-through unsound", side, idx, d)
		}
	}
	return plan, nil
}

// Dominates reports whether tuple a dominates tuple b under the plan:
// at least as good on every covered attribute and strictly better on at
// least one strictly-used attribute.
func (p PushThroughPlan) Dominates(a, b []float64) bool {
	strictly := false
	for i, idx := range p.Attrs {
		av, bv := a[idx], b[idx]
		if !p.Minimal[i] {
			av, bv = -av, -bv
		}
		if av > bv {
			return false
		}
		if av < bv && p.Strict[i] {
			strictly = true
		}
	}
	return strictly
}

// String renders the mapping set as "name := expr" lines.
func (s *Set) String() string {
	parts := make([]string, len(s.funcs))
	for i, f := range s.funcs {
		parts[i] = fmt.Sprintf("%s := %s", f.Name, f.Expr)
	}
	return strings.Join(parts, "; ")
}
