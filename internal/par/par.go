// Package par provides the deterministic parallel-for primitive shared by
// the engine's setup passes (region pruning, coverage, static marking) and
// the scheduler layer's graph construction. Callers confine each chunk's
// writes to its own index range, which makes the combined result independent
// of goroutine scheduling — the determinism contract the differential
// harness enforces.
package par

import "sync"

// Min is the loop size below which For stays inline: distributing a handful
// of iterations costs more in goroutine startup than the work itself.
const Min = 512

// YieldHook, when non-nil, is invoked from parallel loops between work
// items. Tests install runtime.Gosched-based hooks to randomize goroutine
// interleaving and prove the output does not depend on it. Must be set
// before any engine run starts and not changed while one is active.
var YieldHook func()

// For splits [0, n) into contiguous chunks across up to workers goroutines.
// fn must confine its writes to the indices of its chunk (and data derivable
// only from them), which makes the combined result independent of
// scheduling.
func For(n, workers int, fn func(lo, hi int)) {
	if workers <= 1 || n < Min {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if YieldHook != nil {
				YieldHook()
			}
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
