package query

import (
	"strings"
	"testing"
)

// TestLexerTokens exercises every token kind and lexer edge case.
func TestLexerTokens(t *testing.T) {
	toks, err := lex("a.b, (x + y - 2.5) * 3 = <> < <= > >= 1e5 2.5e-3 _id9")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[tokenKind]bool{}
	for _, tok := range toks {
		kinds[tok.kind] = true
		if tok.kind.String() == "" {
			t.Fatalf("token kind %d renders empty", tok.kind)
		}
	}
	for _, k := range []tokenKind{tokIdent, tokNumber, tokComma, tokDot, tokLParen,
		tokRParen, tokPlus, tokMinus, tokStar, tokEQ, tokNE, tokLT, tokLE, tokGT, tokGE, tokEOF} {
		if !kinds[k] {
			t.Fatalf("token kind %s not produced", k)
		}
	}
	if _, err := lex("a ; b"); err == nil {
		t.Fatal("unexpected character must error")
	}
	// Scientific notation without digits falls back to plain number + ident.
	toks, err = lex("2e")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "2" || toks[1].text != "e" {
		t.Fatalf("2e lexed as %q %q", toks[0].text, toks[1].text)
	}
	// Trailing dot is not part of a number.
	toks, err = lex("3.x")
	if err != nil || toks[0].text != "3" {
		t.Fatalf("3.x lexed as %q (err %v)", toks[0].text, err)
	}
	if tokenKind(99).String() == "" {
		t.Fatal("unknown token kind must render")
	}
}

// TestParseFactorEdges covers the remaining factor forms.
func TestParseFactorEdges(t *testing.T) {
	// Unary minus compiles to a -1 scale.
	q, err := Parse(`SELECT (-R.a + 10) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := Render(q.Select[0].Expr); !strings.Contains(got, "-1 * R.a") {
		t.Fatalf("unary minus render = %q", got)
	}
	// MIN with a single argument.
	if _, err := Parse(`SELECT (MIN(R.a)) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(x)`); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		`SELECT (MIN R.a) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(x)`,  // missing paren
		`SELECT (MIN(R.a) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(x)`,  // unbalanced
		`SELECT (R.) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(x)`,       // missing attr
		`SELECT (+) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(x)`,        // not an expression
		`SELECT (R.a +) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(x)`,    // dangling op
		`SELECT (R.a) AS x FROM X R, Y T WHERE R.k = PREFERRING LOWEST(x)`,          // missing rhs
		`SELECT (R.a) AS x FROM X R, Y T WHERE R.k >= T.k PREFERRING LOWEST(x)`,     // join with non-eq
		`SELECT (R.a) AS x FROM X, Y T WHERE R.k = T.k PREFERRING LOWEST(x)`,        // table without alias
		`SELECT (R.a) AS x FROM X R Y T WHERE R.k = T.k PREFERRING LOWEST(x)`,       // missing comma
		`SELECT (R.a) AS expr FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST()`,    // empty pref name
		`SELECT (R.a) AS expr FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST expr`, // missing parens
		`SELECT R.a AS x FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(x) AND`,    // dangling AND
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

// TestCompileExprEdges covers compile-time expression errors and folds.
func TestCompileExprEdges(t *testing.T) {
	r, tr := supplyChainData(t)
	// Constant folding of const*const.
	q, err := Parse(`SELECT (2 * 3 * R.uPrice + T.uShipCost) AS c
		FROM Suppliers R, Transporters T WHERE R.country = T.country PREFERRING LOWEST(c)`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Compile(r, tr)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Maps.Map([]float64{10, 0, 0}, []float64{4, 0}, make([]float64, 1))
	if out[0] != 64 {
		t.Fatalf("2*3*10+4 = %g, want 64", out[0])
	}
	// Scale on the left of the column.
	q2, err := Parse(`SELECT (R.uPrice * 0.5 - T.uShipCost) AS c
		FROM Suppliers R, Transporters T WHERE R.country = T.country PREFERRING LOWEST(c)`)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := q2.Compile(r, tr)
	if err != nil {
		t.Fatal(err)
	}
	out2 := p2.Maps.Map([]float64{10, 0, 0}, []float64{4, 0}, make([]float64, 1))
	if out2[0] != 1 {
		t.Fatalf("10*0.5-4 = %g, want 1", out2[0])
	}
	// MIN/MAX compile and evaluate.
	q3, err := Parse(`SELECT (MAX(R.uPrice, T.uShipCost, 7)) AS c
		FROM Suppliers R, Transporters T WHERE R.country = T.country PREFERRING LOWEST(c)`)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := q3.Compile(r, tr)
	if err != nil {
		t.Fatal(err)
	}
	out3 := p3.Maps.Map([]float64{2, 0, 0}, []float64{4, 0}, make([]float64, 1))
	if out3[0] != 7 {
		t.Fatalf("max(2,4,7) = %g", out3[0])
	}
}

// TestCompileUnpreferredOutput rejects outputs not covered by PREFERRING.
func TestCompileUnpreferredOutput(t *testing.T) {
	r, tr := supplyChainData(t)
	q, err := Parse(`SELECT (R.uPrice) AS a, (T.uShipCost) AS b
		FROM Suppliers R, Transporters T WHERE R.country = T.country PREFERRING LOWEST(a)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Compile(r, tr); err == nil {
		t.Fatal("unpreferred output must be rejected")
	}
}
