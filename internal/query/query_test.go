package query

import (
	"strings"
	"testing"

	"progxe/internal/baseline"
	"progxe/internal/preference"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// q1 is query Q1 from §I of the paper.
const q1 = `
SELECT R.id, T.id,
       (R.uPrice + T.uShipCost) AS tCost,
       (2 * R.manTime + T.shipTime) AS delay
FROM Suppliers R, Transporters T
WHERE R.country = T.country AND R.manCap >= 100000
PREFERRING LOWEST(tCost) AND LOWEST(delay)`

func TestParseQ1(t *testing.T) {
	q, err := Parse(q1)
	if err != nil {
		t.Fatalf("Parse(Q1): %v", err)
	}
	if len(q.Select) != 4 {
		t.Fatalf("select items = %d", len(q.Select))
	}
	if q.Select[0].IsExpr() || !q.Select[2].IsExpr() {
		t.Fatal("select item classification wrong")
	}
	if q.Select[2].Name != "tCost" || q.Select[3].Name != "delay" {
		t.Fatalf("output names = %q, %q", q.Select[2].Name, q.Select[3].Name)
	}
	if q.From[0].Table != "Suppliers" || q.From[1].Alias != "T" {
		t.Fatalf("FROM = %+v", q.From)
	}
	if q.Join.LeftAttr != "country" || q.Join.RightAttr != "country" {
		t.Fatalf("join = %+v", q.Join)
	}
	if len(q.Filters) != 1 || q.Filters[0].Op != relation.GE || q.Filters[0].Const != 100000 {
		t.Fatalf("filters = %+v", q.Filters)
	}
	if len(q.Preferring) != 2 || q.Preferring[0].Order != preference.Lowest {
		t.Fatalf("preferring = %+v", q.Preferring)
	}
	// Round-trippable rendering.
	if s := q.String(); !strings.Contains(s, "PREFERRING LOWEST(tCost) AND LOWEST(delay)") {
		t.Fatalf("String = %q", s)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if q2.String() != q.String() {
		t.Fatalf("round trip changed query:\n%s\n%s", q.String(), q2.String())
	}
}

func TestParseExpressions(t *testing.T) {
	q, err := Parse(`SELECT (MIN(R.a, T.b) + 2 * R.a - 1) AS score,
		(MAX(R.a, 3) - T.b * 0.5) AS other
		FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(score) AND HIGHEST(other)`)
	if err != nil {
		t.Fatal(err)
	}
	got := Render(q.Select[0].Expr)
	if got != "((MIN(R.a, T.b) + (2 * R.a)) - 1)" {
		t.Fatalf("precedence render = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT R.a FROM X R WHERE R.k = T.k PREFERRING LOWEST(a)",                           // one table
		"SELECT (R.a) AS x FROM X R, Y T PREFERRING LOWEST(x)",                               // missing WHERE
		"SELECT (R.a) AS x FROM X R, Y T WHERE R.a >= 1 PREFERRING LOWEST(x)",                // no join condition
		"SELECT (R.a) AS x FROM X R, Y T WHERE R.k = T.k AND R.k = T.k PREFERRING LOWEST(x)", // duplicate join
		"SELECT (R.a) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING",                         // empty preferring
		"SELECT (R.a) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(y)",               // unknown output
		"SELECT (R.a) AS x, (R.a) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(x)",   // dup name
		"SELECT (Z.a) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(x)",               // unknown alias
		"SELECT (R.a) AS x FROM X R, Y R WHERE R.k = R.k PREFERRING LOWEST(x)",               // dup alias
		"SELECT (R.a) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING MIDDLE(x)",               // bad order
		"SELECT (R.a * T.b) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(x) extra",   // trailing
		"SELECT (R.a) AS x FROM X R, Y T WHERE Z.a >= 1 AND R.k = T.k PREFERRING LOWEST(x)",  // filter alias
		"SELECT (R.a) AS x FROM X R, Y T WHERE R.k ! T.k PREFERRING LOWEST(x)",               // bad char
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func supplyChainData(t *testing.T) (*relation.Relation, *relation.Relation) {
	t.Helper()
	r := relation.New(relation.MustSchema("Suppliers", []string{"uPrice", "manTime", "manCap"}, "country"))
	tr := relation.New(relation.MustSchema("Transporters", []string{"uShipCost", "shipTime"}, "country"))
	r.MustAppend(relation.Tuple{ID: 1, Vals: []float64{10, 5, 200000}, JoinKey: 1})
	r.MustAppend(relation.Tuple{ID: 2, Vals: []float64{8, 9, 150000}, JoinKey: 1})
	r.MustAppend(relation.Tuple{ID: 3, Vals: []float64{4, 2, 50000}, JoinKey: 1}) // filtered: capacity too low
	r.MustAppend(relation.Tuple{ID: 4, Vals: []float64{6, 4, 300000}, JoinKey: 2})
	tr.MustAppend(relation.Tuple{ID: 11, Vals: []float64{3, 7}, JoinKey: 1})
	tr.MustAppend(relation.Tuple{ID: 12, Vals: []float64{5, 2}, JoinKey: 1})
	tr.MustAppend(relation.Tuple{ID: 13, Vals: []float64{1, 9}, JoinKey: 2})
	return r, tr
}

func TestCompileAndRunQ1(t *testing.T) {
	q, err := Parse(q1)
	if err != nil {
		t.Fatal(err)
	}
	r, tr := supplyChainData(t)
	p, err := q.Compile(r, tr)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// The filter must have removed supplier 3.
	if p.Left.Len() != 3 {
		t.Fatalf("filtered left size = %d", p.Left.Len())
	}
	res, err := baseline.Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("Q1 produced no results")
	}
	// Verify against hand-computed outputs: supplier 4 with transporter 13
	// yields tCost 7, delay 17; supplier 1 with 12 yields tCost 15, delay 12;
	// supplier 2 with 12 yields tCost 13, delay 20... check the skyline by
	// brute force instead of pinning: no result may dominate another.
	for i, a := range res {
		for j, b := range res {
			if i != j && p.Pref.Dominates(a.Out, b.Out) {
				t.Fatalf("result %v dominates result %v", a, b)
			}
		}
	}
}

func TestCompileRelationOrderIndependence(t *testing.T) {
	q, err := Parse(q1)
	if err != nil {
		t.Fatal(err)
	}
	r, tr := supplyChainData(t)
	p1, err := q.Compile(r, tr)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := q.Compile(tr, r) // swapped argument order
	if err != nil {
		t.Fatal(err)
	}
	a, err := baseline.Oracle(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := baseline.Oracle(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("swapped compile differs: %d vs %d results", len(a), len(b))
	}
}

func TestCompileErrors(t *testing.T) {
	r, tr := supplyChainData(t)
	cases := []string{
		// Join on a non-join column.
		"SELECT (R.uPrice + T.uShipCost) AS c FROM Suppliers R, Transporters T WHERE R.uPrice = T.country PREFERRING LOWEST(c)",
		// Unknown attribute in expression.
		"SELECT (R.bogus + T.uShipCost) AS c FROM Suppliers R, Transporters T WHERE R.country = T.country PREFERRING LOWEST(c)",
		// Unknown filter attribute.
		"SELECT (R.uPrice) AS c FROM Suppliers R, Transporters T WHERE R.country = T.country AND R.bogus >= 1 PREFERRING LOWEST(c)",
		// Column * column.
		"SELECT (R.uPrice * T.uShipCost) AS c FROM Suppliers R, Transporters T WHERE R.country = T.country PREFERRING LOWEST(c)",
		// No mapping outputs.
		"SELECT R.id FROM Suppliers R, Transporters T WHERE R.country = T.country PREFERRING LOWEST(id)",
	}
	for _, s := range cases {
		q, err := Parse(s)
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := q.Compile(r, tr); err == nil {
			t.Errorf("Compile(%q): expected error", s)
		}
	}
}

func TestCompileHighestOrientation(t *testing.T) {
	// HIGHEST outputs must invert dominance.
	src := `SELECT (R.uPrice + T.uShipCost) AS cost, (R.manTime + T.shipTime) AS speed
	        FROM Suppliers R, Transporters T WHERE R.country = T.country
	        PREFERRING LOWEST(cost) AND HIGHEST(speed)`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r, tr := supplyChainData(t)
	p, err := q.Compile(r, tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	// All results incomparable under the stated preference.
	for i, a := range res {
		for j, b := range res {
			if i != j && p.Pref.Dominates(a.Out, b.Out) {
				t.Fatalf("dominated result emitted under HIGHEST preference")
			}
		}
	}
	var _ smj.Sink = (*smj.Collector)(nil)
}
