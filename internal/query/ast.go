package query

import (
	"fmt"
	"strings"

	"progxe/internal/preference"
	"progxe/internal/relation"
)

// Query is a parsed SkyMapJoin query, not yet bound to schemas.
type Query struct {
	Select     []SelectItem
	From       [2]TableRef
	Join       JoinCond
	Filters    []Filter
	Preferring []PrefItem
}

// SelectItem is one projection: either an identifier pass-through
// (alias.attr or alias.id) or a named mapping expression.
type SelectItem struct {
	// Alias/Attr are set for plain column references.
	Alias, Attr string
	// Expr/Name are set for mapping expressions ("(expr) AS name").
	Expr Node
	Name string
}

// IsExpr reports whether the item is a mapping expression.
func (s SelectItem) IsExpr() bool { return s.Expr != nil }

// TableRef names a source relation and its alias.
type TableRef struct {
	Table string
	Alias string
}

// JoinCond is the equi-join condition between the two sources.
type JoinCond struct {
	LeftAlias  string
	LeftAttr   string
	RightAlias string
	RightAttr  string
}

// Filter is a per-source selection: alias.attr CMP constant.
type Filter struct {
	Alias string
	Attr  string
	Op    relation.CmpOp
	Const float64
}

// PrefItem is one PREFERRING entry: LOWEST(name) or HIGHEST(name).
type PrefItem struct {
	Order preference.Order
	Name  string
}

// Node is an arithmetic expression AST node over source attributes.
type Node interface {
	render(sb *strings.Builder)
}

// NumNode is a numeric literal.
type NumNode float64

// ColNode is an alias.attr reference.
type ColNode struct {
	Alias, Attr string
}

// BinNode is a binary arithmetic operation: +, - or *.
type BinNode struct {
	Op   byte // '+', '-', '*'
	L, R Node
}

// CallNode is MIN(...)/MAX(...) over one or more arguments.
type CallNode struct {
	Fn   string // "min" or "max"
	Args []Node
}

func (n NumNode) render(sb *strings.Builder) { fmt.Fprintf(sb, "%g", float64(n)) }

func (n ColNode) render(sb *strings.Builder) {
	sb.WriteString(n.Alias)
	sb.WriteByte('.')
	sb.WriteString(n.Attr)
}

func (n BinNode) render(sb *strings.Builder) {
	sb.WriteByte('(')
	n.L.render(sb)
	sb.WriteByte(' ')
	sb.WriteByte(n.Op)
	sb.WriteByte(' ')
	n.R.render(sb)
	sb.WriteByte(')')
}

func (n CallNode) render(sb *strings.Builder) {
	sb.WriteString(strings.ToUpper(n.Fn))
	sb.WriteByte('(')
	for i, a := range n.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		a.render(sb)
	}
	sb.WriteByte(')')
}

// String renders an expression tree back to dialect syntax.
func Render(n Node) string {
	var sb strings.Builder
	n.render(&sb)
	return sb.String()
}

// String reproduces the query in canonical dialect form.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, s := range q.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		if s.IsExpr() {
			s.Expr.render(&sb)
			sb.WriteString(" AS ")
			sb.WriteString(s.Name)
		} else {
			sb.WriteString(s.Alias)
			sb.WriteByte('.')
			sb.WriteString(s.Attr)
		}
	}
	fmt.Fprintf(&sb, " FROM %s %s, %s %s WHERE %s.%s = %s.%s",
		q.From[0].Table, q.From[0].Alias, q.From[1].Table, q.From[1].Alias,
		q.Join.LeftAlias, q.Join.LeftAttr, q.Join.RightAlias, q.Join.RightAttr)
	for _, f := range q.Filters {
		fmt.Fprintf(&sb, " AND %s.%s %s %g", f.Alias, f.Attr, f.Op, f.Const)
	}
	sb.WriteString(" PREFERRING ")
	for i, p := range q.Preferring {
		if i > 0 {
			sb.WriteString(" AND ")
		}
		fmt.Fprintf(&sb, "%s(%s)", p.Order, p.Name)
	}
	return sb.String()
}
