package query

import (
	"fmt"

	"progxe/internal/mapping"
	"progxe/internal/preference"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// LivePlan is a compiled query plus the binding metadata a live
// subscription needs to route a change stream: which catalog relation
// landed on which problem side (Compile may swap the inputs to honor FROM
// order) and the per-side selection predicates. The problem's relations
// already have the selections applied; incoming feed inserts must pass the
// same predicate before entering the output space, which is why the
// predicates are carried alongside.
type LivePlan struct {
	Problem *smj.Problem
	// Tables names the catalog relation bound to each problem side:
	// Tables[mapping.Left] feeds Problem.Left.
	Tables [2]string
	// Preds holds each side's compiled selection predicate; nil means the
	// side is unfiltered.
	Preds [2]relation.Predicate
}

// Compile binds the parsed query to the two source relations (matched by
// table name or positional order) and produces a runnable smj.Problem with
// selections already applied. The join condition must use each schema's
// declared join attribute.
func (q *Query) Compile(left, right *relation.Relation) (*smj.Problem, error) {
	lp, err := q.CompileLive(left, right)
	if err != nil {
		return nil, err
	}
	return lp.Problem, nil
}

// CompileLive is Compile additionally returning the side binding and
// selection predicates, for callers that keep applying changes to the
// compiled problem after the snapshot (live subscriptions).
func (q *Query) CompileLive(left, right *relation.Relation) (*LivePlan, error) {
	// Match relations to FROM entries by table name; fall back to position.
	rels := map[string]*relation.Relation{}
	if left.Schema.Name == q.From[1].Table || right.Schema.Name == q.From[0].Table {
		left, right = right, left
	}
	if q.From[0].Table != left.Schema.Name && q.From[0].Table != "" {
		// Positional binding: accept, but only if neither name matches.
		if q.From[0].Table == right.Schema.Name || q.From[1].Table == left.Schema.Name {
			return nil, fmt.Errorf("query: FROM tables %q, %q cannot be matched to relations %q, %q",
				q.From[0].Table, q.From[1].Table, left.Schema.Name, right.Schema.Name)
		}
	}
	rels[q.From[0].Alias] = left
	rels[q.From[1].Alias] = right
	sides := map[string]mapping.Side{
		q.From[0].Alias: mapping.Left,
		q.From[1].Alias: mapping.Right,
	}

	// Join condition must target the join attributes.
	for _, j := range []struct {
		alias, attr string
	}{
		{q.Join.LeftAlias, q.Join.LeftAttr},
		{q.Join.RightAlias, q.Join.RightAttr},
	} {
		rel := rels[j.alias]
		if rel.Schema.JoinAttr != j.attr {
			return nil, fmt.Errorf("query: join attribute %s.%s does not match schema join column %q",
				j.alias, j.attr, rel.Schema.JoinAttr)
		}
	}

	// Mapping functions from the expression select items.
	var funcs []mapping.Func
	var prefAttrs []preference.Attribute
	byName := map[string]int{}
	for _, s := range q.Select {
		if !s.IsExpr() {
			continue // id pass-throughs are implicit in smj.Result
		}
		expr, err := compileExpr(s.Expr, rels, sides)
		if err != nil {
			return nil, fmt.Errorf("query: output %q: %w", s.Name, err)
		}
		byName[s.Name] = len(funcs)
		funcs = append(funcs, mapping.Func{Name: s.Name, Expr: expr})
	}
	if len(funcs) == 0 {
		return nil, fmt.Errorf("query: no mapping expressions in SELECT")
	}

	// Preference over the named outputs, in PREFERRING order; reorder the
	// functions to match so output dimension j corresponds to preference j.
	ordered := make([]mapping.Func, 0, len(q.Preferring))
	used := map[string]bool{}
	for _, pr := range q.Preferring {
		idx, ok := byName[pr.Name]
		if !ok || used[pr.Name] {
			return nil, fmt.Errorf("query: PREFERRING references %q twice or unknown", pr.Name)
		}
		used[pr.Name] = true
		ordered = append(ordered, funcs[idx])
		prefAttrs = append(prefAttrs, preference.Attribute{Name: pr.Name, Order: pr.Order})
	}
	// Outputs that are selected but not preferred are still computed (they
	// ride along as extra dimensions would change skyline semantics, so we
	// reject them instead).
	for name := range byName {
		if !used[name] {
			return nil, fmt.Errorf("query: output %q is not covered by PREFERRING; drop it or prefer it", name)
		}
	}
	maps, err := mapping.NewSet(ordered...)
	if err != nil {
		return nil, err
	}

	// Per-source filters.
	preds := map[string]relation.And{}
	for _, f := range q.Filters {
		rel := rels[f.Alias]
		if rel.Schema.Index(f.Attr) < 0 {
			return nil, fmt.Errorf("query: filter references unknown attribute %s.%s", f.Alias, f.Attr)
		}
		preds[f.Alias] = append(preds[f.Alias], relation.AttrCmp{Attr: f.Attr, Op: f.Op, Const: f.Const})
	}

	p := &smj.Problem{
		Left:  left,
		Right: right,
		Maps:  maps,
		Pref:  preference.NewPareto(prefAttrs...),
	}
	var lp, rp relation.Predicate
	if pr, ok := preds[q.From[0].Alias]; ok {
		lp = pr
	}
	if pr, ok := preds[q.From[1].Alias]; ok {
		rp = pr
	}
	p = smj.Apply(p, lp, rp)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &LivePlan{
		Problem: p,
		Tables:  [2]string{left.Schema.Name, right.Schema.Name},
		Preds:   [2]relation.Predicate{lp, rp},
	}, nil
}

// compileExpr lowers an AST node to a mapping expression.
func compileExpr(n Node, rels map[string]*relation.Relation, sides map[string]mapping.Side) (mapping.Expr, error) {
	switch v := n.(type) {
	case NumNode:
		return mapping.Const(v), nil
	case ColNode:
		rel, ok := rels[v.Alias]
		if !ok {
			return nil, fmt.Errorf("unknown alias %q", v.Alias)
		}
		idx := rel.Schema.Index(v.Attr)
		if idx < 0 {
			return nil, fmt.Errorf("unknown attribute %s.%s", v.Alias, v.Attr)
		}
		return mapping.A(sides[v.Alias], idx, v.Attr), nil
	case BinNode:
		l, err := compileExpr(v.L, rels, sides)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(v.R, rels, sides)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case '+':
			return mapping.Sum(l, r), nil
		case '-':
			return mapping.Sub{L: l, R: r}, nil
		case '*':
			if c, ok := l.(mapping.Const); ok {
				if c2, ok2 := r.(mapping.Const); ok2 {
					return mapping.Const(float64(c) * float64(c2)), nil
				}
				return mapping.Scale{Factor: float64(c), Of: r}, nil
			}
			if c, ok := r.(mapping.Const); ok {
				return mapping.Scale{Factor: float64(c), Of: l}, nil
			}
			return nil, fmt.Errorf("multiplication requires a constant operand (got %s * %s)", l, r)
		default:
			return nil, fmt.Errorf("unsupported operator %q", string(v.Op))
		}
	case CallNode:
		args := make([]mapping.Expr, len(v.Args))
		for i, a := range v.Args {
			e, err := compileExpr(a, rels, sides)
			if err != nil {
				return nil, err
			}
			args[i] = e
		}
		if v.Fn == "min" {
			return mapping.Min(args), nil
		}
		return mapping.Max(args), nil
	default:
		return nil, fmt.Errorf("unsupported expression node %T", n)
	}
}
