package query

import (
	"strings"
	"testing"

	"progxe/internal/relation"
)

// The parser fronts untrusted network input since the query service
// (internal/server) exposes it over HTTP. These tests pin down the error
// paths that matter there: every malformed query must produce a descriptive
// error — never a panic, never silent acceptance.

const validTail = "FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(x)"

// TestParsePreferringErrors walks the malformed PREFERRING shapes.
func TestParsePreferringErrors(t *testing.T) {
	head := "SELECT (R.a) AS x FROM X R, Y T WHERE R.k = T.k "
	bad := map[string]string{
		"keyword only":        head + "PREFERRING",
		"missing parens":      head + "PREFERRING LOWEST",
		"empty parens":        head + "PREFERRING LOWEST()",
		"unterminated parens": head + "PREFERRING LOWEST(x",
		"number argument":     head + "PREFERRING LOWEST(1)",
		"expression argument": head + "PREFERRING LOWEST(R.a)",
		"trailing AND":        head + "PREFERRING LOWEST(x) AND",
		"OR connective":       head + "PREFERRING LOWEST(x) OR HIGHEST(x)",
		"bare name":           head + "PREFERRING x",
		"case-typo order":     head + "PREFERRING LOW(x)",
		"missing clause":      "SELECT (R.a) AS x FROM X R, Y T WHERE R.k = T.k",
	}
	for name, s := range bad {
		t.Run(name, func(t *testing.T) {
			if q, err := Parse(s); err == nil {
				t.Fatalf("accepted %q as %+v", s, q)
			}
		})
	}
}

// TestParseErrorsCarryPosition checks that syntax errors point at the
// offending token, which is what a service returns to a remote caller.
func TestParseErrorsCarryPosition(t *testing.T) {
	_, err := Parse("SELECT (R.a) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING WRONG(x)")
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "position") || !strings.Contains(msg, "WRONG") {
		t.Fatalf("error %q does not locate the offending token", msg)
	}
}

// TestParseNoPanicOnGarbage feeds adversarial input shapes; the parser must
// return an error (or a query) without panicking on any of them.
func TestParseNoPanicOnGarbage(t *testing.T) {
	inputs := []string{
		"\x00\x01\x02",
		"SELECT \x00 AS x " + validTail,
		"ПРЕФЕРРИНГ СЕЛЕКТ",
		strings.Repeat("SELECT ", 2000),
		"SELECT (" + strings.Repeat("(", 5000) + "R.a" + strings.Repeat(")", 5000) + ") AS x " + validTail,
		"SELECT (" + strings.Repeat("R.a + ", 5000) + "R.a) AS x " + validTail,
		"SELECT (MIN(" + strings.Repeat("R.a,", 1000) + "R.a)) AS x " + validTail,
		"SELECT (" + strings.Repeat("- ", 5000) + "R.a) AS x " + validTail,
		"SELECT (R.a) AS " + strings.Repeat("x", 1<<16) + " " + validTail,
		"SELECT (R.a) AS x FROM X R, Y T WHERE R.k = T.k AND " +
			strings.Repeat("R.a >= 1 AND ", 2000) + "R.b <= 2 PREFERRING LOWEST(x)",
		"SELECT (1e999999 * R.a) AS x " + validTail,
	}
	for _, s := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%.60q...) panicked: %v", s, r)
				}
			}()
			_, _ = Parse(s) // error or not — just must terminate cleanly
		}()
	}
}

// TestCompileUnknownBindings covers the binding errors a networked caller
// hits when the query references relations or attributes that do not match
// the registered schemas.
func TestCompileUnknownBindings(t *testing.T) {
	left := relation.New(relation.MustSchema("Good", []string{"a"}, "k"))
	right := relation.New(relation.MustSchema("Also", []string{"b"}, "k"))

	// Cross-matched table names: query names the two relations in a way
	// that can match neither by name nor by position.
	q, err := Parse("SELECT (R.a + T.b) AS x FROM Nope R, Good T WHERE R.k = T.k PREFERRING LOWEST(x)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Compile(left, right); err == nil {
		t.Fatal("cross-matched FROM names must not bind")
	}

	// Join condition on a non-join attribute of a named relation.
	q, err = Parse("SELECT (R.a + T.b) AS x FROM Good R, Also T WHERE R.a = T.k PREFERRING LOWEST(x)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Compile(left, right); err == nil {
		t.Fatal("join on a non-join attribute must not bind")
	}

	// PREFERRING the same output twice survives parsing but must fail to
	// compile (the skyline dimensionality would be wrong otherwise).
	q, err = Parse("SELECT (R.a + T.b) AS x, (R.a - T.b) AS y FROM Good R, Also T WHERE R.k = T.k PREFERRING LOWEST(x) AND LOWEST(x)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Compile(left, right); err == nil {
		t.Fatal("duplicate PREFERRING reference must not compile")
	}
}

// FuzzParse asserts the no-panic property over generated inputs; `go test`
// runs the seed corpus, `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	f.Add("SELECT (R.a + T.b) AS x FROM X R, Y T WHERE R.k = T.k PREFERRING LOWEST(x)")
	f.Add("SELECT (MIN(R.a, 2 * T.b)) AS m " + validTail)
	f.Add("PREFERRING PREFERRING PREFERRING")
	f.Add("SELECT (((")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		q, err := Parse(s)
		if err == nil && q == nil {
			t.Fatal("nil query without error")
		}
	})
}
