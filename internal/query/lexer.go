// Package query models SkyMapJoin queries and parses the paper's SQL
// dialect — SELECT/FROM/WHERE extended with a PREFERRING clause (query Q1):
//
//	SELECT R.id, T.id,
//	       (R.uPrice + T.uShipCost) AS tCost,
//	       (2 * R.manTime + T.shipTime) AS delay
//	FROM Suppliers R, Transporters T
//	WHERE R.country = T.country AND R.manCap >= 100000
//	PREFERRING LOWEST(tCost) AND LOWEST(delay)
//
// Parsed queries compile against a pair of relations into an smj.Problem
// runnable by any engine in this repository.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokPlus
	tokMinus
	tokStar
	tokEQ
	tokNE
	tokLT
	tokLE
	tokGT
	tokGE
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokEQ:
		return "'='"
	case tokNE:
		return "'<>'"
	case tokLT:
		return "'<'"
	case tokLE:
		return "'<='"
	case tokGT:
		return "'>'"
	case tokGE:
		return "'>='"
	default:
		return fmt.Sprintf("token(%d)", int8(k))
	}
}

// token is one lexical unit with its source position (for error messages).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenizes the input. Identifiers are reported verbatim; keyword
// recognition is the parser's job (case-insensitive).
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '+':
			toks = append(toks, token{tokPlus, "+", i})
			i++
		case c == '-':
			toks = append(toks, token{tokMinus, "-", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEQ, "=", i})
			i++
		case c == '<':
			switch {
			case i+1 < n && input[i+1] == '=':
				toks = append(toks, token{tokLE, "<=", i})
				i += 2
			case i+1 < n && input[i+1] == '>':
				toks = append(toks, token{tokNE, "<>", i})
				i += 2
			default:
				toks = append(toks, token{tokLT, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokGE, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokGT, ">", i})
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			seenDot := false
			for j < n {
				d := input[j]
				if d >= '0' && d <= '9' {
					j++
					continue
				}
				if d == '.' && !seenDot && j+1 < n && input[j+1] >= '0' && input[j+1] <= '9' {
					seenDot = true
					j++
					continue
				}
				break
			}
			// Scientific suffix (e.g. 1e5, 2.5e-3).
			if j < n && (input[j] == 'e' || input[j] == 'E') {
				k := j + 1
				if k < n && (input[k] == '+' || input[k] == '-') {
					k++
				}
				if k < n && input[k] >= '0' && input[k] <= '9' {
					for k < n && input[k] >= '0' && input[k] <= '9' {
						k++
					}
					j = k
				}
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("query: position %d: unexpected character %q", i, string(c))
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// isKeyword reports whether the identifier equals the keyword,
// case-insensitively.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
