package query

import (
	"fmt"
	"strconv"
	"strings"

	"progxe/internal/preference"
	"progxe/internal/relation"
)

// Parse parses a query in the PREFERRING dialect.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("query: position %d (near %q): %s", t.pos, t.text, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.cur().kind != k {
		return token{}, p.errf("expected %s, found %s", k, p.cur().kind)
	}
	return p.next(), nil
}

func (p *parser) keyword(kw string) error {
	if !isKeyword(p.cur(), kw) {
		return p.errf("expected keyword %s", kw)
	}
	p.next()
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	for i := 0; i < 2; i++ {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From[i] = tr
		if i == 0 {
			if _, err := p.expect(tokComma); err != nil {
				return nil, fmt.Errorf("%w (SkyMapJoin queries take exactly two sources)", err)
			}
		}
	}
	if err := p.keyword("WHERE"); err != nil {
		return nil, err
	}
	if err := p.parseWhere(q); err != nil {
		return nil, err
	}
	if err := p.keyword("PREFERRING"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parsePrefItem()
		if err != nil {
			return nil, err
		}
		q.Preferring = append(q.Preferring, item)
		if !isKeyword(p.cur(), "AND") {
			break
		}
		p.next()
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input after query")
	}
	if err := q.check(); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// Plain column reference: IDENT '.' IDENT not followed by arithmetic.
	if p.cur().kind == tokIdent && !isKeyword(p.cur(), "MIN") && !isKeyword(p.cur(), "MAX") &&
		p.toks[p.i+1].kind == tokDot {
		after := p.toks[p.i+3].kind
		if after == tokComma || isKeyword(p.toks[p.i+3], "FROM") {
			alias := p.next().text
			p.next() // dot
			attr, err := p.expect(tokIdent)
			if err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Alias: alias, Attr: attr.text}, nil
		}
	}
	expr, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	if err := p.keyword("AS"); err != nil {
		return SelectItem{}, fmt.Errorf("%w (mapping expressions need an output name)", err)
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Expr: expr, Name: name.text}, nil
}

// parseExpr handles addition and subtraction (lowest precedence).
func (p *parser) parseExpr() (Node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPlus || p.cur().kind == tokMinus {
		op := byte('+')
		if p.next().kind == tokMinus {
			op = '-'
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = BinNode{Op: op, L: left, R: right}
	}
	return left, nil
}

// parseTerm handles multiplication.
func (p *parser) parseTerm() (Node, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokStar {
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = BinNode{Op: '*', L: left, R: right}
	}
	return left, nil
}

// parseFactor handles literals, column refs, calls, parens, unary minus.
func (p *parser) parseFactor() (Node, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return NumNode(v), nil
	case t.kind == tokMinus:
		p.next()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return BinNode{Op: '*', L: NumNode(-1), R: inner}, nil
	case t.kind == tokLParen:
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case isKeyword(t, "MIN") || isKeyword(t, "MAX"):
		fn := strings.ToLower(t.text)
		p.next()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		var args []Node
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return nil, p.errf("%s needs at least one argument", strings.ToUpper(fn))
		}
		return CallNode{Fn: fn, Args: args}, nil
	case t.kind == tokIdent:
		alias := p.next().text
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		attr, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return ColNode{Alias: alias, Attr: attr.text}, nil
	default:
		return nil, p.errf("expected an expression")
	}
}

func (p *parser) parseTableRef() (TableRef, error) {
	table, err := p.expect(tokIdent)
	if err != nil {
		return TableRef{}, err
	}
	alias, err := p.expect(tokIdent)
	if err != nil {
		return TableRef{}, fmt.Errorf("%w (every source needs an alias)", err)
	}
	return TableRef{Table: table.text, Alias: alias.text}, nil
}

// parseWhere parses the conjunction of the join condition and filters.
func (p *parser) parseWhere(q *Query) error {
	haveJoin := false
	for {
		alias, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(tokDot); err != nil {
			return err
		}
		attr, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		opTok := p.next()
		var op relation.CmpOp
		switch opTok.kind {
		case tokEQ:
			op = relation.EQ
		case tokNE:
			op = relation.NE
		case tokLT:
			op = relation.LT
		case tokLE:
			op = relation.LE
		case tokGT:
			op = relation.GT
		case tokGE:
			op = relation.GE
		default:
			return p.errf("expected a comparison operator, found %s", opTok.kind)
		}
		// Join condition: alias.attr = alias2.attr2.
		if op == relation.EQ && p.cur().kind == tokIdent && p.toks[p.i+1].kind == tokDot {
			if haveJoin {
				return p.errf("only one join condition is supported")
			}
			alias2 := p.next().text
			p.next() // dot
			attr2, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			q.Join = JoinCond{LeftAlias: alias.text, LeftAttr: attr.text, RightAlias: alias2, RightAttr: attr2.text}
			haveJoin = true
		} else {
			num, err := p.expect(tokNumber)
			if err != nil {
				return fmt.Errorf("%w (filters compare against numeric constants)", err)
			}
			v, err := strconv.ParseFloat(num.text, 64)
			if err != nil {
				return p.errf("bad number %q", num.text)
			}
			q.Filters = append(q.Filters, Filter{Alias: alias.text, Attr: attr.text, Op: op, Const: v})
		}
		if !isKeyword(p.cur(), "AND") {
			break
		}
		p.next()
	}
	if !haveJoin {
		return p.errf("WHERE clause needs a join condition (alias.attr = alias.attr)")
	}
	return nil
}

func (p *parser) parsePrefItem() (PrefItem, error) {
	var order preference.Order
	switch {
	case isKeyword(p.cur(), "LOWEST"):
		order = preference.Lowest
	case isKeyword(p.cur(), "HIGHEST"):
		order = preference.Highest
	default:
		return PrefItem{}, p.errf("expected LOWEST or HIGHEST")
	}
	p.next()
	if _, err := p.expect(tokLParen); err != nil {
		return PrefItem{}, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return PrefItem{}, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return PrefItem{}, err
	}
	return PrefItem{Order: order, Name: name.text}, nil
}

// check validates cross-clause consistency after parsing.
func (q *Query) check() error {
	aliases := map[string]bool{q.From[0].Alias: true, q.From[1].Alias: true}
	if q.From[0].Alias == q.From[1].Alias {
		return fmt.Errorf("query: duplicate source alias %q", q.From[0].Alias)
	}
	names := map[string]bool{}
	for _, s := range q.Select {
		if s.IsExpr() {
			if names[s.Name] {
				return fmt.Errorf("query: duplicate output name %q", s.Name)
			}
			names[s.Name] = true
			if err := checkAliases(s.Expr, aliases); err != nil {
				return err
			}
		} else if !aliases[s.Alias] {
			return fmt.Errorf("query: unknown alias %q in SELECT", s.Alias)
		}
	}
	if !aliases[q.Join.LeftAlias] || !aliases[q.Join.RightAlias] {
		return fmt.Errorf("query: join condition references unknown alias")
	}
	if q.Join.LeftAlias == q.Join.RightAlias {
		return fmt.Errorf("query: join condition must relate the two different sources")
	}
	for _, f := range q.Filters {
		if !aliases[f.Alias] {
			return fmt.Errorf("query: filter references unknown alias %q", f.Alias)
		}
	}
	if len(q.Preferring) == 0 {
		return fmt.Errorf("query: PREFERRING clause is empty")
	}
	for _, pr := range q.Preferring {
		if !names[pr.Name] {
			return fmt.Errorf("query: PREFERRING references %q, which is not a named mapping output", pr.Name)
		}
	}
	return nil
}

func checkAliases(n Node, aliases map[string]bool) error {
	switch v := n.(type) {
	case ColNode:
		if !aliases[v.Alias] {
			return fmt.Errorf("query: unknown alias %q in expression", v.Alias)
		}
	case BinNode:
		if err := checkAliases(v.L, aliases); err != nil {
			return err
		}
		return checkAliases(v.R, aliases)
	case CallNode:
		for _, a := range v.Args {
			if err := checkAliases(a, aliases); err != nil {
				return err
			}
		}
	}
	return nil
}
