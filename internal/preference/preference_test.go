package preference

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestOrderString(t *testing.T) {
	if Lowest.String() != "LOWEST" || Highest.String() != "HIGHEST" {
		t.Fatalf("order names wrong: %s %s", Lowest, Highest)
	}
	if Order(9).String() == "" {
		t.Fatal("unknown order must still render")
	}
}

func TestParetoBasics(t *testing.T) {
	p := NewPareto(Attribute{"cost", Lowest}, Attribute{"rating", Highest})
	if p.Dims() != 2 {
		t.Fatalf("Dims = %d, want 2", p.Dims())
	}
	if p.Canonical() {
		t.Fatal("preference with HIGHEST must not be canonical")
	}
	if got := p.String(); got != "LOWEST(cost) AND HIGHEST(rating)" {
		t.Fatalf("String = %q", got)
	}
	if p.Attr(1).Name != "rating" {
		t.Fatalf("Attr(1) = %+v", p.Attr(1))
	}
	attrs := p.Attributes()
	attrs[0].Name = "mutated"
	if p.Attr(0).Name != "cost" {
		t.Fatal("Attributes must return a copy")
	}
}

func TestAllLowest(t *testing.T) {
	p := AllLowest(3)
	if !p.Canonical() || p.Dims() != 3 {
		t.Fatalf("AllLowest(3) = %s", p)
	}
}

func TestDominatesDefinition1(t *testing.T) {
	p := AllLowest(2)
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},  // strictly better everywhere
		{[]float64{1, 2}, []float64{1, 3}, true},  // equal + better
		{[]float64{1, 2}, []float64{1, 2}, false}, // equal: no strict dimension
		{[]float64{1, 3}, []float64{2, 2}, false}, // incomparable
		{[]float64{2, 2}, []float64{1, 1}, false}, // worse
	}
	for _, c := range cases {
		if got := p.Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDominatesWithHighest(t *testing.T) {
	p := NewPareto(Attribute{"cost", Lowest}, Attribute{"rating", Highest})
	if !p.Dominates([]float64{10, 5}, []float64{10, 4}) {
		t.Fatal("higher rating at equal cost must dominate")
	}
	if p.Dominates([]float64{10, 4}, []float64{10, 5}) {
		t.Fatal("lower rating must not dominate")
	}
}

func TestCompare(t *testing.T) {
	p := AllLowest(2)
	if r := p.Compare([]float64{1, 1}, []float64{2, 2}); r != LeftDominates {
		t.Fatalf("Compare = %s, want left-dominates", r)
	}
	if r := p.Compare([]float64{2, 2}, []float64{1, 1}); r != RightDominates {
		t.Fatalf("Compare = %s, want right-dominates", r)
	}
	if r := p.Compare([]float64{1, 2}, []float64{2, 1}); r != Incomparable {
		t.Fatalf("Compare = %s, want incomparable", r)
	}
	if r := p.Compare([]float64{3, 3}, []float64{3, 3}); r != Equal {
		t.Fatalf("Compare = %s, want equal", r)
	}
}

func TestCanonicalize(t *testing.T) {
	p := NewPareto(Attribute{"a", Lowest}, Attribute{"b", Highest})
	v := p.Canonicalize([]float64{3, 4})
	if v[0] != 3 || v[1] != -4 {
		t.Fatalf("Canonicalize = %v", v)
	}
}

// vec3 is a bounded random vector for property tests; small integral values
// make dominance ties common enough to exercise every branch.
func vec3(r *rand.Rand) []float64 {
	return []float64{float64(r.IntN(4)), float64(r.IntN(4)), float64(r.IntN(4))}
}

func TestDominanceStrictPartialOrder(t *testing.T) {
	r := rand.New(rand.NewPCG(42, 43))
	// Irreflexivity and asymmetry.
	f := func() bool {
		a, b := vec3(r), vec3(r)
		if DominatesMin(a, a) {
			return false
		}
		if DominatesMin(a, b) && DominatesMin(b, a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Transitivity.
	g := func() bool {
		a, b, c := vec3(r), vec3(r), vec3(r)
		if DominatesMin(a, b) && DominatesMin(b, c) && !DominatesMin(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareConsistentWithDominates(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 9))
	p := AllLowest(3)
	f := func() bool {
		a, b := vec3(r), vec3(r)
		switch p.Compare(a, b) {
		case LeftDominates:
			return p.Dominates(a, b) && !p.Dominates(b, a)
		case RightDominates:
			return p.Dominates(b, a) && !p.Dominates(a, b)
		case Equal, Incomparable:
			return !p.Dominates(a, b) && !p.Dominates(b, a)
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestStrictHelpers(t *testing.T) {
	if !StrictlyLessMin([]float64{1, 1}, []float64{2, 2}) {
		t.Fatal("strictly less all dims")
	}
	if StrictlyLessMin([]float64{1, 2}, []float64{2, 2}) {
		t.Fatal("equality violates strictness")
	}
	if !DominatesOrEqualMin([]float64{1, 2}, []float64{1, 2}) {
		t.Fatal("equal vectors are ≤")
	}
	if DominatesOrEqualMin([]float64{3, 1}, []float64{2, 2}) {
		t.Fatal("3 > 2 in dim 0")
	}
}

func TestRelationString(t *testing.T) {
	for _, r := range []Relation{Incomparable, LeftDominates, RightDominates, Equal, Relation(7)} {
		if r.String() == "" {
			t.Fatalf("Relation(%d) renders empty", r)
		}
	}
}
