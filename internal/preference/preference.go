// Package preference implements the preference model used by skyline
// (Pareto-optimal) evaluation, following §II-A of the paper.
//
// A preference is a set of equally important per-attribute orders. A tuple
// dominates another iff it is at least as good in every preferred attribute
// and strictly better in at least one. All comparisons operate on float64
// vectors in "output space": the caller is responsible for projecting tuples
// onto the preferred attributes (the mapping operator in §II-B does this for
// SkyMapJoin queries).
package preference

import (
	"fmt"
	"strings"
)

// Order is the direction of a single-attribute preference.
type Order int8

const (
	// Lowest prefers smaller values (PREFERRING LOWEST(x)).
	Lowest Order = iota
	// Highest prefers larger values (PREFERRING HIGHEST(x)).
	Highest
)

// String returns the SQL-dialect keyword for the order.
func (o Order) String() string {
	switch o {
	case Lowest:
		return "LOWEST"
	case Highest:
		return "HIGHEST"
	default:
		return fmt.Sprintf("Order(%d)", int8(o))
	}
}

// Attribute is one component of a Pareto preference: a named dimension and
// the direction in which it is preferred.
type Attribute struct {
	Name  string
	Order Order
}

// Pareto is a combined Pareto preference P = {P1, ..., Pd}: a set of equally
// important per-dimension preferences (Definition 1). The zero value is an
// empty preference over no dimensions.
type Pareto struct {
	attrs []Attribute
}

// NewPareto returns a Pareto preference over the given attributes, in order.
func NewPareto(attrs ...Attribute) *Pareto {
	p := &Pareto{attrs: make([]Attribute, len(attrs))}
	copy(p.attrs, attrs)
	return p
}

// AllLowest returns a Pareto preference that minimizes every one of the d
// dimensions, named dim0..dim(d-1). This is the configuration used by the
// paper's experiments (all mapping outputs are minimized).
func AllLowest(d int) *Pareto {
	attrs := make([]Attribute, d)
	for i := range attrs {
		attrs[i] = Attribute{Name: fmt.Sprintf("dim%d", i), Order: Lowest}
	}
	return NewPareto(attrs...)
}

// Dims returns the number of preferred dimensions.
func (p *Pareto) Dims() int { return len(p.attrs) }

// Attributes returns a copy of the per-dimension preferences.
func (p *Pareto) Attributes() []Attribute {
	out := make([]Attribute, len(p.attrs))
	copy(out, p.attrs)
	return out
}

// Attr returns the i-th attribute preference.
func (p *Pareto) Attr(i int) Attribute { return p.attrs[i] }

// String renders the preference in the paper's PREFERRING syntax.
func (p *Pareto) String() string {
	parts := make([]string, len(p.attrs))
	for i, a := range p.attrs {
		parts[i] = fmt.Sprintf("%s(%s)", a.Order, a.Name)
	}
	return strings.Join(parts, " AND ")
}

// Canonical reports whether every dimension is minimized. Engines that only
// reason in minimized space (the grid machinery) require canonical
// preferences; use Canonicalize to convert vectors.
func (p *Pareto) Canonical() bool {
	for _, a := range p.attrs {
		if a.Order != Lowest {
			return false
		}
	}
	return true
}

// Canonicalize rewrites v in place so that dominance under p over the
// original vector equals minimizing dominance over the rewritten vector
// (HIGHEST dimensions are negated). It returns v.
func (p *Pareto) Canonicalize(v []float64) []float64 {
	for i, a := range p.attrs {
		if a.Order == Highest {
			v[i] = -v[i]
		}
	}
	return v
}

// Dominates reports whether vector a dominates vector b under p
// (Definition 1): a is at least as good in every dimension and strictly
// better in at least one. Panics if the vectors are shorter than p.Dims().
func (p *Pareto) Dominates(a, b []float64) bool {
	better := false
	for i, attr := range p.attrs {
		av, bv := a[i], b[i]
		if attr.Order == Highest {
			av, bv = -av, -bv
		}
		switch {
		case av > bv:
			return false
		case av < bv:
			better = true
		}
	}
	return better
}

// Compare classifies the dominance relationship between a and b.
func (p *Pareto) Compare(a, b []float64) Relation {
	aBetter, bBetter := false, false
	for i, attr := range p.attrs {
		av, bv := a[i], b[i]
		if attr.Order == Highest {
			av, bv = -av, -bv
		}
		switch {
		case av < bv:
			aBetter = true
		case av > bv:
			bBetter = true
		}
		if aBetter && bBetter {
			return Incomparable
		}
	}
	switch {
	case aBetter:
		return LeftDominates
	case bBetter:
		return RightDominates
	default:
		return Equal
	}
}

// Relation is the outcome of a pairwise dominance comparison.
type Relation int8

// Dominance comparison outcomes.
const (
	Incomparable Relation = iota
	LeftDominates
	RightDominates
	Equal
)

// String returns a human-readable name for the relation.
func (r Relation) String() string {
	switch r {
	case Incomparable:
		return "incomparable"
	case LeftDominates:
		return "left-dominates"
	case RightDominates:
		return "right-dominates"
	case Equal:
		return "equal"
	default:
		return fmt.Sprintf("Relation(%d)", int8(r))
	}
}

// DominatesMin reports whether a dominates b when every dimension is
// minimized. It is the hot-path variant used by engines operating in
// canonical (minimized) space.
func DominatesMin(a, b []float64) bool {
	better := false
	for i := range a {
		switch {
		case a[i] > b[i]:
			return false
		case a[i] < b[i]:
			better = true
		}
	}
	return better
}

// DominatesOrEqualMin reports whether a is at least as good as b in every
// minimized dimension (a ≤ b componentwise).
func DominatesOrEqualMin(a, b []float64) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// StrictlyLessMin reports whether a < b in every minimized dimension. A point
// a with this property dominates every point ≥ b componentwise; it is the
// test used for region- and cell-level elimination guarantees (§III-A).
func StrictlyLessMin(a, b []float64) bool {
	for i := range a {
		if a[i] >= b[i] {
			return false
		}
	}
	return true
}
