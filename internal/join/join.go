// Package join provides the equi-join substrate: hash join and sort-merge
// join over the int64 join keys of two relations, plus join-selectivity
// estimation. The baselines consume whole-relation joins; the ProgXe core
// joins one input-partition pair at a time through the same primitives.
package join

import (
	"sort"

	"progxe/internal/relation"
)

// Pair is one join result: indices into the left and right tuple slices the
// join was computed over.
type Pair struct {
	L, R int
}

// Emit receives each join result as it is produced. Returning false stops
// the join early.
type Emit func(l, r int) bool

// Hash performs a hash equi-join between the tuples of left and right,
// streaming each matching (l, r) index pair to emit in deterministic order
// (left order outer, right build order inner). It builds on the smaller
// side. Returns the number of results emitted.
func Hash(left, right []relation.Tuple, emit Emit) int {
	if len(left) == 0 || len(right) == 0 {
		return 0
	}
	// Build on the right side; callers control which side is which.
	build := make(map[int64][]int, len(right))
	for i, t := range right {
		build[t.JoinKey] = append(build[t.JoinKey], i)
	}
	n := 0
	for li, t := range left {
		for _, ri := range build[t.JoinKey] {
			n++
			if !emit(li, ri) {
				return n
			}
		}
	}
	return n
}

// Merge performs a sort-merge equi-join, streaming matching index pairs.
// It sorts index permutations, not the tuples themselves.
func Merge(left, right []relation.Tuple, emit Emit) int {
	li := sortedByKey(left)
	ri := sortedByKey(right)
	n := 0
	i, j := 0, 0
	for i < len(li) && j < len(ri) {
		lk, rk := left[li[i]].JoinKey, right[ri[j]].JoinKey
		switch {
		case lk < rk:
			i++
		case lk > rk:
			j++
		default:
			// Find the extent of the equal-key runs on both sides.
			iEnd := i
			for iEnd < len(li) && left[li[iEnd]].JoinKey == lk {
				iEnd++
			}
			jEnd := j
			for jEnd < len(ri) && right[ri[jEnd]].JoinKey == rk {
				jEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := j; b < jEnd; b++ {
					n++
					if !emit(li[a], ri[b]) {
						return n
					}
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return n
}

func sortedByKey(ts []relation.Tuple) []int {
	idx := make([]int, len(ts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ts[idx[a]].JoinKey < ts[idx[b]].JoinKey })
	return idx
}

// Cardinality returns the exact number of equi-join results between the two
// tuple sets without materializing them.
func Cardinality(left, right []relation.Tuple) int {
	if len(left) == 0 || len(right) == 0 {
		return 0
	}
	counts := make(map[int64]int, len(left))
	for _, t := range left {
		counts[t.JoinKey]++
	}
	n := 0
	for _, t := range right {
		n += counts[t.JoinKey]
	}
	return n
}

// Selectivity returns the empirical join selectivity σ = |R ⋈ T| / (|R|·|T|).
func Selectivity(left, right []relation.Tuple) float64 {
	if len(left) == 0 || len(right) == 0 {
		return 0
	}
	return float64(Cardinality(left, right)) / (float64(len(left)) * float64(len(right)))
}
