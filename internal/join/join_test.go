package join

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"progxe/internal/relation"
)

func tuples(keys ...int64) []relation.Tuple {
	out := make([]relation.Tuple, len(keys))
	for i, k := range keys {
		out[i] = relation.Tuple{ID: int64(i), JoinKey: k}
	}
	return out
}

func collect(f func([]relation.Tuple, []relation.Tuple, Emit) int, l, r []relation.Tuple) []Pair {
	var out []Pair
	f(l, r, func(a, b int) bool {
		out = append(out, Pair{a, b})
		return true
	})
	return out
}

func brute(l, r []relation.Tuple) []Pair {
	var out []Pair
	for i, a := range l {
		for j, b := range r {
			if a.JoinKey == b.JoinKey {
				out = append(out, Pair{i, j})
			}
		}
	}
	return out
}

func sortPairs(p []Pair) {
	sort.Slice(p, func(i, j int) bool {
		if p[i].L != p[j].L {
			return p[i].L < p[j].L
		}
		return p[i].R < p[j].R
	})
}

func TestHashMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 5))
	f := func() bool {
		l := tuples(randKeys(r, r.IntN(30))...)
		rt := tuples(randKeys(r, r.IntN(30))...)
		got := collect(Hash, l, rt)
		want := brute(l, rt)
		sortPairs(got)
		sortPairs(want)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 7))
	f := func() bool {
		l := tuples(randKeys(r, r.IntN(30))...)
		rt := tuples(randKeys(r, r.IntN(30))...)
		got := collect(Merge, l, rt)
		want := brute(l, rt)
		sortPairs(got)
		sortPairs(want)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randKeys(r *rand.Rand, n int) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(r.IntN(8))
	}
	return keys
}

func TestEmptyInputs(t *testing.T) {
	if n := Hash(nil, tuples(1), func(int, int) bool { return true }); n != 0 {
		t.Fatal("empty left must produce nothing")
	}
	if n := Hash(tuples(1), nil, func(int, int) bool { return true }); n != 0 {
		t.Fatal("empty right must produce nothing")
	}
	if n := Merge(nil, nil, func(int, int) bool { return true }); n != 0 {
		t.Fatal("empty merge must produce nothing")
	}
}

func TestEarlyStop(t *testing.T) {
	l := tuples(1, 1, 1)
	r := tuples(1, 1, 1)
	seen := 0
	n := Hash(l, r, func(int, int) bool {
		seen++
		return seen < 4
	})
	if n != 4 || seen != 4 {
		t.Fatalf("early stop: n=%d seen=%d", n, seen)
	}
	seen = 0
	n = Merge(l, r, func(int, int) bool {
		seen++
		return seen < 2
	})
	if n != 2 {
		t.Fatalf("merge early stop: n=%d", n)
	}
}

func TestCardinalityAndSelectivity(t *testing.T) {
	l := tuples(1, 1, 2, 3)
	r := tuples(1, 2, 2, 9)
	// matches: two 1s × one 1 = 2; one 2 × two 2s = 2 → 4 total.
	if got := Cardinality(l, r); got != 4 {
		t.Fatalf("Cardinality = %d", got)
	}
	want := 4.0 / 16.0
	if got := Selectivity(l, r); got != want {
		t.Fatalf("Selectivity = %g, want %g", got, want)
	}
	if Selectivity(nil, r) != 0 || Cardinality(l, nil) != 0 {
		t.Fatal("empty inputs must report zero")
	}
}

func TestHashDeterministicOrder(t *testing.T) {
	l := tuples(2, 1, 2)
	r := tuples(2, 2, 1)
	a := collect(Hash, l, r)
	b := collect(Hash, l, r)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("hash join emission order must be deterministic")
	}
	// Left-outer order: pairs grouped by ascending left index.
	for i := 1; i < len(a); i++ {
		if a[i].L < a[i-1].L {
			t.Fatalf("pairs not in left order: %v", a)
		}
	}
}
