// Package skyline implements single-set skyline (Pareto-maxima) algorithms
// used as substrates by the query engines: Block-Nested-Loops (BNL,
// Börzsönyi et al. [1]), Sort-Filter-Skyline (SFS), and the divide & conquer
// maxima algorithm of Kung, Luccio and Preparata [2]. It also provides the
// Bentley/Buchta estimate of the expected skyline size used by the paper's
// benefit model (Equation 1).
//
// All algorithms operate in canonical minimized space: a point a dominates b
// iff a ≤ b componentwise with at least one strict inequality.
package skyline

import (
	"math"
	"sort"

	"progxe/internal/preference"
)

// Algorithm selects a skyline implementation.
type Algorithm int8

// Available algorithms.
const (
	BNL Algorithm = iota
	SFS
	DC
)

// String returns the algorithm's conventional name.
func (a Algorithm) String() string {
	switch a {
	case BNL:
		return "BNL"
	case SFS:
		return "SFS"
	case DC:
		return "D&C"
	default:
		return "unknown"
	}
}

// Compute returns the indices (into pts) of the skyline of pts under
// minimizing dominance, using the selected algorithm. The returned indices
// are in ascending order. Duplicate points are all retained (none dominates
// another).
func Compute(alg Algorithm, pts [][]float64) []int {
	switch alg {
	case SFS:
		return sfs(pts)
	case DC:
		return divideConquer(pts)
	default:
		return bnl(pts)
	}
}

// bnl is the classic block-nested-loops skyline with an unbounded window.
func bnl(pts [][]float64) []int {
	window := make([]int, 0, 64)
	for i, p := range pts {
		dominated := false
		keep := window[:0]
		for _, j := range window {
			switch relate(pts[j], p) {
			case preference.LeftDominates:
				dominated = true
			case preference.RightDominates:
				continue // drop j from the window
			}
			keep = append(keep, j)
			if dominated {
				// p cannot remove later window entries once dominated.
				keep = append(keep, window[len(keep):]...)
				break
			}
		}
		window = keep
		if !dominated {
			window = append(window, i)
		}
	}
	sort.Ints(window)
	return window
}

// sfs sorts by an entropy-style monotone score first so that no point can be
// dominated by a later point; every window survivor is final immediately.
func sfs(pts [][]float64) []int {
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	score := make([]float64, len(pts))
	for i, p := range pts {
		s := 0.0
		for _, v := range p {
			s += v
		}
		score[i] = s
	}
	sort.SliceStable(order, func(a, b int) bool { return score[order[a]] < score[order[b]] })

	window := make([]int, 0, 64)
	for _, i := range order {
		dominated := false
		for _, j := range window {
			if preference.DominatesMin(pts[j], pts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			window = append(window, i)
		}
	}
	sort.Ints(window)
	return window
}

// relate classifies dominance between two equal-length minimized vectors.
func relate(a, b []float64) preference.Relation {
	aBetter, bBetter := false, false
	for i := range a {
		switch {
		case a[i] < b[i]:
			aBetter = true
		case a[i] > b[i]:
			bBetter = true
		}
		if aBetter && bBetter {
			return preference.Incomparable
		}
	}
	switch {
	case aBetter:
		return preference.LeftDominates
	case bBetter:
		return preference.RightDominates
	default:
		return preference.Equal
	}
}

// Filter returns the subset of candidate indices not dominated by any point
// in pts[ref] for ref in refs; candidates are not compared to each other.
func Filter(pts [][]float64, candidates, refs []int) []int {
	out := candidates[:0:0]
	for _, c := range candidates {
		dominated := false
		for _, r := range refs {
			if preference.DominatesMin(pts[r], pts[c]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

// EstimateCardinality returns the Bentley [13] / Buchta [14] estimate of the
// expected number of maxima among n independently distributed d-dimensional
// points: (ln n)^(d-1) / (d-1)!  (Equation 1 of the paper). It returns at
// least 1 for n ≥ 1 and 0 for n ≤ 0.
func EstimateCardinality(n float64, d int) float64 {
	if n <= 0 || d <= 0 {
		return 0
	}
	if n < 1 {
		n = 1
	}
	ln := math.Log(n)
	if d == 1 {
		return 1
	}
	est := math.Pow(ln, float64(d-1)) / factorial(d-1)
	if est < 1 {
		est = 1
	}
	if est > n {
		est = n
	}
	return est
}

func factorial(k int) float64 {
	f := 1.0
	for i := 2; i <= k; i++ {
		f *= float64(i)
	}
	return f
}

// KungAlpha returns the α exponent in Kung et al.'s average skyline
// complexity O(|S|·log^α |S|): α = 1 for d ∈ {2,3} and α = d−2 for d ≥ 4
// (§IV-C). For d ≤ 1 it returns 0.
func KungAlpha(d int) float64 {
	switch {
	case d <= 1:
		return 0
	case d <= 3:
		return 1
	default:
		return float64(d - 2)
	}
}
