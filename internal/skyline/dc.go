package skyline

import (
	"sort"

	"progxe/internal/preference"
)

// divideConquer implements the divide & conquer maxima algorithm of Kung,
// Luccio and Preparata [2], adapted to minimizing dominance. Points are
// sorted on the first coordinate, split in half, the halves are solved
// recursively, and survivors of the "worse" half are filtered against
// survivors of the "better" half.
//
// For d == 2 the merge is the classic linear sweep; for d ≥ 3 the filter
// recurses on the projection that drops the first coordinate.
func divideConquer(pts [][]float64) []int {
	if len(pts) == 0 {
		return nil
	}
	d := len(pts[0])
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	// Sort lexicographically on all coordinates so that among equal first
	// coordinates ties resolve deterministically and duplicates stay adjacent.
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		for k := 0; k < d; k++ {
			if pa[k] != pb[k] {
				return pa[k] < pb[k]
			}
		}
		return idx[a] < idx[b]
	})
	res := dcMaxima(pts, idx)
	sort.Ints(res)
	return res
}

// dcMaxima returns the skyline of the points referenced by idx, which must be
// sorted ascending on coordinate 0 (lexicographic). The result preserves no
// particular order.
func dcMaxima(pts [][]float64, idx []int) []int {
	if len(idx) <= 1 {
		return append([]int(nil), idx...)
	}
	if len(idx) <= 8 {
		return smallSkyline(pts, idx)
	}
	mid := len(idx) / 2
	left := dcMaxima(pts, idx[:mid])  // better (smaller) first coordinates
	right := dcMaxima(pts, idx[mid:]) // worse (larger) first coordinates
	// Every left survivor is in the skyline of the union: nothing in the
	// right half can dominate it on coordinate 0 except at equality, and
	// lexicographic ordering puts equal-first-coordinate points that could
	// dominate in the left half only if they dominate on remaining dims,
	// which the recursive call on the left already resolved... equality
	// cases across the split are handled by the full filter below.
	right = filterAgainst(pts, right, left)
	return append(left, right...)
}

// filterAgainst removes from cand the points dominated by any point in ref.
func filterAgainst(pts [][]float64, cand, ref []int) []int {
	out := cand[:0]
	for _, c := range cand {
		dominated := false
		for _, r := range ref {
			if preference.DominatesMin(pts[r], pts[c]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

// smallSkyline solves tiny inputs by pairwise comparison.
func smallSkyline(pts [][]float64, idx []int) []int {
	out := make([]int, 0, len(idx))
	for _, i := range idx {
		dominated := false
		for _, j := range idx {
			if i != j && preference.DominatesMin(pts[j], pts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}
