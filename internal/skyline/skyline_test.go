package skyline

import (
	"math"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"progxe/internal/preference"
)

// naive is the reference O(n²) skyline.
func naive(pts [][]float64) []int {
	var out []int
	for i := range pts {
		dominated := false
		for j := range pts {
			if i != j && preference.DominatesMin(pts[j], pts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

func randomPoints(r *rand.Rand, n, d, domain int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = float64(r.IntN(domain))
		}
		pts[i] = p
	}
	return pts
}

func TestAlgorithmsAgreeWithNaive(t *testing.T) {
	r := rand.New(rand.NewPCG(10, 20))
	for _, alg := range []Algorithm{BNL, SFS, DC} {
		for _, d := range []int{1, 2, 3, 4} {
			for _, n := range []int{0, 1, 2, 17, 100} {
				pts := randomPoints(r, n, d, 6) // small domain forces ties/duplicates
				want := naive(pts)
				got := Compute(alg, pts)
				if want == nil {
					want = []int{}
				}
				if got == nil {
					got = []int{}
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s d=%d n=%d: got %v want %v", alg, d, n, got, want)
				}
			}
		}
	}
}

func TestSkylinePropertyNonDominated(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	for _, alg := range []Algorithm{BNL, SFS, DC} {
		f := func() bool {
			pts := randomPoints(r, 40, 3, 5)
			sky := Compute(alg, pts)
			inSky := map[int]bool{}
			for _, i := range sky {
				inSky[i] = true
			}
			for _, i := range sky {
				for j := range pts {
					if i != j && preference.DominatesMin(pts[j], pts[i]) {
						return false // skyline member dominated
					}
				}
			}
			for i := range pts {
				if inSky[i] {
					continue
				}
				dominated := false
				for j := range pts {
					if i != j && preference.DominatesMin(pts[j], pts[i]) {
						dominated = true
						break
					}
				}
				if !dominated {
					return false // non-member that nothing dominates
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestDuplicatesAllRetained(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {2, 2}}
	for _, alg := range []Algorithm{BNL, SFS, DC} {
		got := Compute(alg, pts)
		if !reflect.DeepEqual(got, []int{0, 1}) {
			t.Fatalf("%s: duplicates: got %v", alg, got)
		}
	}
}

func TestComputeSortedOutput(t *testing.T) {
	r := rand.New(rand.NewPCG(77, 88))
	pts := randomPoints(r, 200, 3, 50)
	for _, alg := range []Algorithm{BNL, SFS, DC} {
		got := Compute(alg, pts)
		if !sort.IntsAreSorted(got) {
			t.Fatalf("%s: output not sorted: %v", alg, got)
		}
	}
}

func TestFilter(t *testing.T) {
	pts := [][]float64{{1, 1}, {2, 2}, {0, 3}, {3, 0}}
	got := Filter(pts, []int{1, 2, 3}, []int{0})
	if !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("Filter = %v", got)
	}
}

func TestEstimateCardinality(t *testing.T) {
	if EstimateCardinality(0, 3) != 0 || EstimateCardinality(-1, 3) != 0 {
		t.Fatal("non-positive n must estimate 0")
	}
	if EstimateCardinality(100, 1) != 1 {
		t.Fatal("d=1 has exactly one maximum on average")
	}
	// d=2: ln(n); d=3: ln(n)^2/2.
	n := 1000.0
	if got, want := EstimateCardinality(n, 2), math.Log(n); math.Abs(got-want) > 1e-9 {
		t.Fatalf("d=2: got %g want %g", got, want)
	}
	if got, want := EstimateCardinality(n, 3), math.Pow(math.Log(n), 2)/2; math.Abs(got-want) > 1e-9 {
		t.Fatalf("d=3: got %g want %g", got, want)
	}
	// Estimate is capped by n and floored at 1.
	if EstimateCardinality(2, 8) > 2 {
		t.Fatal("estimate must not exceed n")
	}
	if EstimateCardinality(1, 4) < 1 {
		t.Fatal("estimate must be at least 1 for n ≥ 1")
	}
	// Monotone in d for fixed large n.
	if EstimateCardinality(1e6, 5) <= EstimateCardinality(1e6, 3) {
		t.Fatal("more dimensions must not shrink the estimate at large n")
	}
}

func TestKungAlpha(t *testing.T) {
	cases := map[int]float64{1: 0, 2: 1, 3: 1, 4: 2, 5: 3, 7: 5}
	for d, want := range cases {
		if got := KungAlpha(d); got != want {
			t.Errorf("KungAlpha(%d) = %g, want %g", d, got, want)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if BNL.String() != "BNL" || SFS.String() != "SFS" || DC.String() != "D&C" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(9).String() != "unknown" {
		t.Fatal("unknown algorithm must render as unknown")
	}
}

func TestAntiCorrelatedLargeSkyline(t *testing.T) {
	// On an anti-diagonal in 2D every point is in the skyline.
	n := 50
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{float64(i), float64(n - i)}
	}
	for _, alg := range []Algorithm{BNL, SFS, DC} {
		if got := Compute(alg, pts); len(got) != n {
			t.Fatalf("%s: got %d of %d anti-diagonal points", alg, len(got), n)
		}
	}
}
