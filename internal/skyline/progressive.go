package skyline

import "sort"

// Progressive computes the skyline of pts under minimizing dominance,
// invoking emit for each skyline member as soon as it is proven final — the
// single-set progressive semantics of Tan et al. [4] and Papadias et al. [5]
// (§VII), realized on the sort-filter substrate: after sorting by a monotone
// score no later point can dominate an earlier one, so every window survivor
// is final the moment it survives the window comparison.
//
// It returns the skyline indices in emission order. For SkyMapJoin queries
// this operator is still blocking (the join must complete before the sort,
// the paper's §VII argument); it is provided as the single-source progressive
// substrate.
func Progressive(pts [][]float64, emit func(index int)) []int {
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	score := make([]float64, len(pts))
	for i, p := range pts {
		s := 0.0
		for _, v := range p {
			s += v
		}
		score[i] = s
	}
	sort.SliceStable(order, func(a, b int) bool { return score[order[a]] < score[order[b]] })

	var result []int
	window := make([]int, 0, 64)
	for _, i := range order {
		dominated := false
		for _, j := range window {
			if dominatesMin(pts[j], pts[i]) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		window = append(window, i)
		result = append(result, i)
		if emit != nil {
			emit(i)
		}
	}
	return result
}

// dominatesMin is a local copy of the minimized dominance test so the hot
// loop stays free of cross-package inlining hazards.
func dominatesMin(a, b []float64) bool {
	better := false
	for i := range a {
		switch {
		case a[i] > b[i]:
			return false
		case a[i] < b[i]:
			better = true
		}
	}
	return better
}
