package skyline

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
)

func TestProgressiveMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewPCG(31, 32))
	for trial := 0; trial < 50; trial++ {
		pts := randomPoints(r, 80, 3, 6)
		var emitted []int
		got := Progressive(pts, func(i int) { emitted = append(emitted, i) })
		if !reflect.DeepEqual(got, emitted) {
			t.Fatal("returned indices must equal emitted ones")
		}
		sort.Ints(got)
		want := Compute(SFS, pts)
		if got == nil {
			got = []int{}
		}
		if want == nil {
			want = []int{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: progressive %v != batch %v", trial, got, want)
		}
	}
}

// TestProgressiveEmissionsFinal checks the defining property: at the moment
// of emission, no point of the whole input dominates the emitted point.
func TestProgressiveEmissionsFinal(t *testing.T) {
	r := rand.New(rand.NewPCG(33, 34))
	pts := randomPoints(r, 200, 3, 8)
	Progressive(pts, func(i int) {
		for j := range pts {
			if j != i && dominatesMin(pts[j], pts[i]) {
				t.Fatalf("emitted point %d is dominated by %d", i, j)
			}
		}
	})
}

func TestProgressiveNilEmit(t *testing.T) {
	pts := [][]float64{{1, 2}, {2, 1}, {3, 3}}
	got := Progressive(pts, nil)
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("Progressive = %v", got)
	}
}

func TestProgressiveEmpty(t *testing.T) {
	if got := Progressive(nil, nil); len(got) != 0 {
		t.Fatalf("empty input: %v", got)
	}
}
