// Package baseline implements the state-of-the-art comparison techniques of
// the paper's performance study (§VI-A): the blocking join-first
// skyline-later plans JF-SL and JF-SL+, the Fagin-style SAJ, and the
// Skyline-Sort-Merge-Join (SSMJ) of Jin et al. [8]. All engines share the
// smj.Engine contract; the blocking ones emit every result at the end of
// query processing, which is precisely the behaviour ProgXe improves on.
package baseline

import (
	"context"

	"progxe/internal/join"
	"progxe/internal/mapping"
	"progxe/internal/skyline"
	"progxe/internal/smj"
)

// JFSL is the traditional blocking plan of Fig. 1.b: evaluate the join fully,
// map every join result, then run a single skyline pass, and only then
// report results [1][6].
type JFSL struct {
	// Algorithm selects the skyline implementation (default BNL).
	Algorithm skyline.Algorithm
	// PushThrough enables skyline partial push-through on both sources
	// before the join — the optimized JF-SL+ variant.
	PushThrough bool
}

var _ smj.Engine = (*JFSL)(nil)

// Name implements smj.Engine.
func (e *JFSL) Name() string {
	if e.PushThrough {
		return "JF-SL+"
	}
	return "JF-SL"
}

// Run implements smj.Engine.
func (e *JFSL) Run(p *smj.Problem, sink smj.Sink) (smj.Stats, error) {
	return e.RunContext(context.Background(), p, sink)
}

var _ smj.ContextEngine = (*JFSL)(nil)

// RunContext implements smj.ContextEngine: the join loop polls ctx and the
// run aborts with ctx.Err() before the blocking skyline pass once canceled.
// The skyline pass itself (skyline.Compute) is not interruptible — on large
// join outputs that single phase bounds this engine's abort latency.
func (e *JFSL) RunContext(ctx context.Context, p *smj.Problem, sink smj.Sink) (smj.Stats, error) {
	var stats smj.Stats
	cancel := smj.NewCanceler(ctx)
	cp, err := p.Canonicalized()
	if err != nil {
		return stats, err
	}
	left, right := cp.Left, cp.Right
	if e.PushThrough {
		var nl, nr int
		left, nl = smj.PushThroughContext(left, cp.Maps, mapping.Left, cancel)
		right, nr = smj.PushThroughContext(right, cp.Maps, mapping.Right, cancel)
		stats.PushPruned = nl + nr
		if err := cancel.Now(); err != nil {
			return stats, err
		}
	}

	d := cp.Maps.Dims()
	type cand struct {
		l, r int64
	}
	var ids []cand
	var pts [][]float64
	buf := make([]float64, d)
	stats.JoinResults = join.Hash(left.Tuples, right.Tuples, func(li, ri int) bool {
		if cancel.Check() != nil {
			return false
		}
		v := cp.Maps.Map(left.Tuples[li].Vals, right.Tuples[ri].Vals, buf)
		out := make([]float64, d)
		copy(out, v)
		pts = append(pts, out)
		ids = append(ids, cand{left.Tuples[li].ID, right.Tuples[ri].ID})
		return true
	})
	if err := cancel.Now(); err != nil {
		return stats, err
	}

	sky := skyline.Compute(e.Algorithm, pts)
	if err := cancel.Now(); err != nil {
		return stats, err
	}
	stats.DomComparisons = estimateComparisons(len(pts), len(sky))
	for _, i := range sky {
		sink.Emit(smj.Result{
			LeftID:  ids[i].l,
			RightID: ids[i].r,
			Out:     smj.Decanonicalize(p.Pref, pts[i]),
		})
	}
	stats.ResultCount = len(sky)
	return stats, nil
}

// estimateComparisons reports a coarse comparison count for engines whose
// skyline substrate does not count exactly: n candidates filtered against a
// window of up to s survivors.
func estimateComparisons(n, s int) int {
	if s == 0 {
		return 0
	}
	return n * s / 2
}
