package baseline

import (
	"context"
	"sort"

	"progxe/internal/mapping"
	"progxe/internal/preference"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// SAJ is the Fagin-style [15] skyline-over-join baseline following the
// JF-SL paradigm (Koudas et al. [6], as summarized in §VI-A): both sources
// are consumed through sorted access in ascending local-score order, join
// results are produced incrementally against the already-seen prefix of the
// other source, and execution stops early once a threshold test proves that
// no join result involving an unseen tuple can enter the skyline.
//
// The threshold is sound for monotone mapping sets: for each side, the
// suffix minima of the used attributes lower-bound any future tuple on that
// side, and the global minima of the other side lower-bound its partner;
// interval propagation turns these into componentwise lower bounds τ_L
// (future left tuple) and τ_R (future right tuple) on any unseen join
// result. When both τ points are dominated by current candidates, all
// remaining work is pruned. Output stays blocking — everything is reported
// at the end, as in the JF-SL paradigm.
type SAJ struct{}

var _ smj.Engine = (*SAJ)(nil)

// Name implements smj.Engine.
func (e *SAJ) Name() string { return "SAJ" }

// sortedSource pre-computes the sorted-access order of one source: tuple
// indices in ascending sum-of-used-attributes order, plus suffix minima of
// every attribute along that order.
type sortedSource struct {
	order     []int       // tuple indices, ascending local score
	suffixLo  [][]float64 // suffixLo[pos][attr]: min attr value among order[pos:]
	globalLo  []float64   // minima over the whole source
	globalHi  []float64   // maxima over the whole source
	seenByKey map[int64][]int
	pos       int
}

func newSortedSource(rel *relation.Relation, used []int) *sortedSource {
	n := rel.Len()
	s := &sortedSource{
		order:     make([]int, n),
		seenByKey: make(map[int64][]int),
	}
	arity := rel.Schema.Arity()
	score := make([]float64, n)
	for i, t := range rel.Tuples {
		s.order[i] = i
		for _, a := range used {
			score[i] += t.Vals[a]
		}
	}
	sort.SliceStable(s.order, func(a, b int) bool { return score[s.order[a]] < score[s.order[b]] })

	s.suffixLo = make([][]float64, n+1)
	inf := make([]float64, arity)
	for i := range inf {
		inf[i] = maxFloat
	}
	s.suffixLo[n] = inf
	for pos := n - 1; pos >= 0; pos-- {
		t := rel.Tuples[s.order[pos]]
		lo := make([]float64, arity)
		for i := range lo {
			lo[i] = s.suffixLo[pos+1][i]
			if t.Vals[i] < lo[i] {
				lo[i] = t.Vals[i]
			}
		}
		s.suffixLo[pos] = lo
	}
	s.globalLo = s.suffixLo[0]
	s.globalHi = make([]float64, arity)
	copy(s.globalHi, inf)
	for i := range s.globalHi {
		s.globalHi[i] = -maxFloat
	}
	for _, t := range rel.Tuples {
		for i, v := range t.Vals {
			if v > s.globalHi[i] {
				s.globalHi[i] = v
			}
		}
	}
	return s
}

const maxFloat = 1e308

// exhausted reports whether all tuples have been accessed.
func (s *sortedSource) exhausted() bool { return s.pos >= len(s.order) }

// next performs one sorted access, registering the tuple as seen.
func (s *sortedSource) next(rel *relation.Relation) int {
	i := s.order[s.pos]
	s.pos++
	t := rel.Tuples[i]
	s.seenByKey[t.JoinKey] = append(s.seenByKey[t.JoinKey], i)
	return i
}

// Run implements smj.Engine.
func (e *SAJ) Run(p *smj.Problem, sink smj.Sink) (smj.Stats, error) {
	return e.RunContext(context.Background(), p, sink)
}

var _ smj.ContextEngine = (*SAJ)(nil)

// RunContext implements smj.ContextEngine: the round-robin sorted-access
// loop polls ctx once per access round and aborts with ctx.Err().
func (e *SAJ) RunContext(ctx context.Context, p *smj.Problem, sink smj.Sink) (smj.Stats, error) {
	var stats smj.Stats
	cancel := smj.NewCanceler(ctx)
	cp, err := p.Canonicalized()
	if err != nil {
		return stats, err
	}
	left, right := cp.Left, cp.Right
	d := cp.Maps.Dims()

	ls := newSortedSource(left, cp.Maps.UsedAttrs(mapping.Left))
	rs := newSortedSource(right, cp.Maps.UsedAttrs(mapping.Right))

	type cand struct {
		l, r  int64
		v     []float64
		alive bool
	}
	var cands []*cand
	insert := func(li, ri int) {
		stats.JoinResults++
		v := make([]float64, d)
		cp.Maps.Map(left.Tuples[li].Vals, right.Tuples[ri].Vals, v)
		c := &cand{l: left.Tuples[li].ID, r: right.Tuples[ri].ID, v: v, alive: true}
		for _, o := range cands {
			if !o.alive {
				continue
			}
			stats.DomComparisons++
			if preference.DominatesMin(o.v, c.v) {
				c.alive = false
				break
			}
			if preference.DominatesMin(c.v, o.v) {
				o.alive = false
			}
		}
		cands = append(cands, c)
	}

	// thresholdMet reports whether every unseen join result is provably
	// dominated by a current candidate.
	thresholdMet := func() bool {
		if len(cands) == 0 {
			return false
		}
		// τ_L: a future left tuple joined with any right tuple.
		tauL := intervalLower(cp.Maps, ls.suffixLo[ls.pos], rs.globalLo, d)
		// τ_R: any left tuple joined with a future right tuple.
		tauR := intervalLower(cp.Maps, ls.globalLo, rs.suffixLo[rs.pos], d)
		domL, domR := false, false
		for _, c := range cands {
			if !c.alive {
				continue
			}
			if !domL && preference.DominatesMin(c.v, tauL) {
				domL = true
			}
			if !domR && preference.DominatesMin(c.v, tauR) {
				domR = true
			}
			if domL && domR {
				return true
			}
		}
		return false
	}

	// Round-robin sorted access with incremental joining.
	for !ls.exhausted() || !rs.exhausted() {
		if err := cancel.Now(); err != nil {
			return stats, err
		}
		if !ls.exhausted() {
			li := ls.next(left)
			for _, ri := range rs.seenByKey[left.Tuples[li].JoinKey] {
				insert(li, ri)
			}
		}
		if !rs.exhausted() {
			ri := rs.next(right)
			for _, li := range ls.seenByKey[right.Tuples[ri].JoinKey] {
				insert(li, ri)
			}
		}
		if (!ls.exhausted() || !rs.exhausted()) && thresholdMet() {
			break
		}
	}

	for _, c := range cands {
		if !c.alive {
			continue
		}
		out := make([]float64, d)
		copy(out, c.v)
		sink.Emit(smj.Result{LeftID: c.l, RightID: c.r, Out: smj.Decanonicalize(p.Pref, out)})
		stats.ResultCount++
	}
	return stats, nil
}

// intervalLower propagates per-side attribute lower bounds through the
// mapping set, returning the componentwise lower bound of any join result
// drawn from those boxes. Upper bounds are taken as the global maxima, which
// the lower-bound computation of monotone sets ignores; full interval
// propagation keeps this sound for mixed-direction expressions too.
func intervalLower(maps *mapping.Set, leftLo, rightLo []float64, d int) []float64 {
	// Upper corners: reuse lower bounds — for lower-bound extraction of
	// interval propagation the upper corner only matters for decreasing
	// terms, where using the (smaller) lower corner over-estimates the
	// bound. To stay sound in general, widen uppers to +inf.
	hiL := make([]float64, len(leftLo))
	hiR := make([]float64, len(rightLo))
	for i := range hiL {
		hiL[i] = maxFloat
	}
	for i := range hiR {
		hiR[i] = maxFloat
	}
	lo := make([]float64, d)
	for j := 0; j < d; j++ {
		l, _ := maps.Func(j).Expr.Interval(leftLo, hiL, rightLo, hiR)
		lo[j] = l
	}
	return lo
}
