package baseline

import "progxe/internal/smj"

// Oracle evaluates the problem with the reference blocking plan (JF-SL over
// BNL) and returns the complete, correct result set. Tests use it as the
// ground truth every other engine must match.
func Oracle(p *smj.Problem) ([]smj.Result, error) {
	var c smj.Collector
	if _, err := (&JFSL{}).Run(p, &c); err != nil {
		return nil, err
	}
	return c.Results, nil
}
