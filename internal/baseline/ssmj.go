package baseline

import (
	"context"
	"sort"

	"progxe/internal/join"
	"progxe/internal/mapping"
	"progxe/internal/preference"
	"progxe/internal/relation"
	"progxe/internal/smj"
)

// SSMJ re-implements the Skyline-Sort-Merge-Join of Jin et al. [8] as the
// paper describes it in §VI-A. Per source it maintains two active lists:
//
//	LS(S) — the source-level skyline, ignoring the join condition;
//	LS(N) — the group-level skyline for each join-attribute value.
//
// Phase 1 joins LS(S) ⋈ LS(S), maps, runs skyline comparisons, and reports
// the first batch. Phase 2 evaluates LS(S) ⋈ LS(N), LS(N) ⋈ LS(S) and
// LS(N) ⋈ LS(N) and reports the remainder at the end — results arrive in at
// most two batches, and never tuple-by-tuple.
//
// As the paper observes (§VII), the batch-1 guarantee of the original
// algorithm does not survive mapping functions: a phase-2 result can
// dominate a phase-1 result. The faithful configuration (Strict=false)
// reproduces the published behaviour and counts such events in
// Stats.MappedDiscarded; Strict=true defers every result to the end (the
// "reverts to JF-SL" behaviour the paper describes), guaranteeing that
// everything emitted is in the final skyline.
type SSMJ struct {
	// Strict defers all output to the end of processing, trading the
	// two-batch progressiveness for exact emission correctness.
	Strict bool
}

var _ smj.Engine = (*SSMJ)(nil)

// Name implements smj.Engine.
func (e *SSMJ) Name() string { return "SSMJ" }

type ssmjCand struct {
	l, r  int64
	v     []float64
	alive bool
	batch int // 1 = phase-1 result, 2 = phase-2 result
}

// Run implements smj.Engine.
func (e *SSMJ) Run(p *smj.Problem, sink smj.Sink) (smj.Stats, error) {
	return e.RunContext(context.Background(), p, sink)
}

var _ smj.ContextEngine = (*SSMJ)(nil)

// RunContext implements smj.ContextEngine: the quadratic active-list setup
// and both join phases poll ctx and abort with ctx.Err() once the context
// is done.
func (e *SSMJ) RunContext(ctx context.Context, p *smj.Problem, sink smj.Sink) (smj.Stats, error) {
	var stats smj.Stats
	cancel := smj.NewCanceler(ctx)
	cp, err := p.Canonicalized()
	if err != nil {
		return stats, err
	}
	left, right := cp.Left, cp.Right
	d := cp.Maps.Dims()

	lsS := [2][]int{
		sourceSkyline(left, cp.Maps, mapping.Left, cancel),
		sourceSkyline(right, cp.Maps, mapping.Right, cancel),
	}
	if err := cancel.Now(); err != nil {
		return stats, err
	}
	lsN := [2]map[int64][]int{
		smj.GroupSkylinesContext(left, cp.Maps, mapping.Left, cancel),
		smj.GroupSkylinesContext(right, cp.Maps, mapping.Right, cancel),
	}
	if err := cancel.Now(); err != nil {
		return stats, err
	}
	stats.PushPruned = (left.Len() - countAll(lsN[0])) + (right.Len() - countAll(lsN[1]))

	inS := [2]map[int]bool{indexSet(lsS[0]), indexSet(lsS[1])}

	var cands []*ssmjCand
	// insert performs the incremental skyline maintenance shared by both
	// phases.
	insert := func(li, ri int, batch int) {
		stats.JoinResults++
		v := make([]float64, d)
		cp.Maps.Map(left.Tuples[li].Vals, right.Tuples[ri].Vals, v)
		c := &ssmjCand{l: left.Tuples[li].ID, r: right.Tuples[ri].ID, v: v, alive: true, batch: batch}
		for _, o := range cands {
			if !o.alive {
				continue
			}
			stats.DomComparisons++
			if preference.DominatesMin(o.v, c.v) {
				c.alive = false
				break
			}
			if preference.DominatesMin(c.v, o.v) {
				o.alive = false
			}
		}
		cands = append(cands, c)
	}

	// Phase 1: LS(S) ⋈ LS(S).
	lTuples := pick(left, lsS[0])
	rTuples := pick(right, lsS[1])
	join.Hash(lTuples.idx2tuple, rTuples.idx2tuple, func(a, b int) bool {
		if cancel.Check() != nil {
			return false
		}
		insert(lTuples.orig[a], rTuples.orig[b], 1)
		return true
	})
	if err := cancel.Now(); err != nil {
		return stats, err
	}

	emitted := make(map[*ssmjCand]bool)
	if !e.Strict {
		// First batch: the skyline of the phase-1 results.
		for _, c := range cands {
			if c.alive {
				e.emit(p, sink, c, &stats)
				emitted[c] = true
			}
		}
	}

	// Phase 2: the remaining three list combinations. LS(S) ⊆ LS(N), so the
	// union of all four joins equals LS(N) ⋈ LS(N); phase 2 contributes the
	// pairs with at least one non-source-skyline member.
	lAll := pickGroups(left, lsN[0])
	rAll := pickGroups(right, lsN[1])
	join.Hash(lAll.idx2tuple, rAll.idx2tuple, func(a, b int) bool {
		if cancel.Check() != nil {
			return false
		}
		li, ri := lAll.orig[a], rAll.orig[b]
		if inS[0][li] && inS[1][ri] {
			return true // already produced in phase 1
		}
		insert(li, ri, 2)
		return true
	})
	if err := cancel.Now(); err != nil {
		return stats, err
	}

	// Final batch: everything still alive and not yet reported.
	for _, c := range cands {
		if c.alive && !emitted[c] {
			e.emit(p, sink, c, &stats)
		}
		if !c.alive && emitted[c] {
			// A batch-1 result later dominated by a phase-2 result: the
			// false positive the paper's §VII discussion predicts.
			stats.MappedDiscarded++
		}
	}
	return stats, nil
}

func (e *SSMJ) emit(p *smj.Problem, sink smj.Sink, c *ssmjCand, stats *smj.Stats) {
	out := make([]float64, len(c.v))
	copy(out, c.v)
	sink.Emit(smj.Result{LeftID: c.l, RightID: c.r, Out: smj.Decanonicalize(p.Pref, out)})
	stats.ResultCount++
}

// sourceSkyline computes LS(S): the indices of tuples not dominated by any
// other tuple of the same source under the mapping monotonicity plan,
// ignoring join keys. With mixed monotonicity no pruning is possible and
// every tuple is in the list. The O(n²) scan polls cancel and returns a
// truncated (unusable) list once canceled — the caller aborts right after.
func sourceSkyline(rel *relation.Relation, maps *mapping.Set, side mapping.Side, cancel *smj.Canceler) []int {
	plan, err := maps.PushThrough(side)
	if err != nil || len(plan.Attrs) == 0 {
		all := make([]int, rel.Len())
		for i := range all {
			all[i] = i
		}
		return all
	}
	var out []int
	for i := range rel.Tuples {
		if cancel.Check() != nil {
			return out
		}
		dominated := false
		for j := range rel.Tuples {
			if i != j && plan.Dominates(rel.Tuples[j].Vals, rel.Tuples[i].Vals) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

type picked struct {
	idx2tuple []relation.Tuple
	orig      []int
}

func pick(rel *relation.Relation, idx []int) picked {
	p := picked{idx2tuple: make([]relation.Tuple, len(idx)), orig: idx}
	for i, j := range idx {
		p.idx2tuple[i] = rel.Tuples[j]
	}
	return p
}

func pickGroups(rel *relation.Relation, groups map[int64][]int) picked {
	var idx []int
	for _, g := range groups {
		idx = append(idx, g...)
	}
	// Deterministic order regardless of map iteration.
	sortInts(idx)
	return pick(rel, idx)
}

func indexSet(idx []int) map[int]bool {
	m := make(map[int]bool, len(idx))
	for _, i := range idx {
		m[i] = true
	}
	return m
}

func countAll(groups map[int64][]int) int {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	return n
}

func sortInts(a []int) { sort.Ints(a) }
