package baseline

import (
	"fmt"
	"sort"
	"testing"

	"progxe/internal/datagen"
	"progxe/internal/mapping"
	"progxe/internal/preference"
	"progxe/internal/skyline"
	"progxe/internal/smj"
)

func genProblem(t *testing.T, n, d int, dist datagen.Distribution, sigma float64, seed uint64) *smj.Problem {
	t.Helper()
	r, s, err := datagen.GeneratePair(datagen.Spec{N: n, Dims: d, Distribution: dist, Selectivity: sigma, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	funcs := make([]mapping.Func, d)
	for j := 0; j < d; j++ {
		funcs[j] = mapping.Func{
			Name: fmt.Sprintf("x%d", j),
			Expr: mapping.Sum(mapping.A(mapping.Left, j, ""), mapping.A(mapping.Right, j, "")),
		}
	}
	return &smj.Problem{Left: r, Right: s, Maps: mapping.MustSet(funcs...), Pref: preference.AllLowest(d)}
}

func keys(rs []smj.Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = fmt.Sprintf("%d|%d", r.LeftID, r.RightID)
	}
	sort.Strings(out)
	return out
}

func assertSame(t *testing.T, label string, got, want []smj.Result) {
	t.Helper()
	g, w := keys(got), keys(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d results, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: mismatch at %d: %s vs %s", label, i, g[i], w[i])
		}
	}
}

func TestBaselinesAgree(t *testing.T) {
	engines := []smj.Engine{
		&JFSL{Algorithm: skyline.SFS},
		&JFSL{Algorithm: skyline.DC},
		&JFSL{PushThrough: true},
		&SAJ{},
		&SSMJ{Strict: true},
	}
	for _, dist := range []datagen.Distribution{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated} {
		for seed := uint64(1); seed <= 4; seed++ {
			p := genProblem(t, 150, 3, dist, 0.05, seed)
			oracle, err := Oracle(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range engines {
				var sink smj.Collector
				if _, err := e.Run(p, &sink); err != nil {
					t.Fatalf("%s: %v", e.Name(), err)
				}
				assertSame(t, fmt.Sprintf("%s/%s/seed=%d", e.Name(), dist, seed), sink.Results, oracle)
			}
		}
	}
}

func TestNames(t *testing.T) {
	if (&JFSL{}).Name() != "JF-SL" || (&JFSL{PushThrough: true}).Name() != "JF-SL+" {
		t.Fatal("JF-SL names wrong")
	}
	if (&SAJ{}).Name() != "SAJ" || (&SSMJ{}).Name() != "SSMJ" {
		t.Fatal("baseline names wrong")
	}
}

// TestSSMJFaithfulBatches verifies the two-batch behaviour: the faithful
// configuration emits the phase-1 skyline first and the remainder at the
// end; the union covers the oracle, with any extras being exactly the
// dominated phase-1 results counted in MappedDiscarded.
func TestSSMJFaithfulBatches(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		p := genProblem(t, 200, 3, datagen.Independent, 0.05, seed)
		oracle, err := Oracle(p)
		if err != nil {
			t.Fatal(err)
		}
		inOracle := map[[2]int64]bool{}
		for _, r := range oracle {
			inOracle[r.Key()] = true
		}
		var sink smj.Collector
		stats, err := (&SSMJ{}).Run(p, &sink)
		if err != nil {
			t.Fatal(err)
		}
		extras := 0
		for _, r := range sink.Results {
			if !inOracle[r.Key()] {
				extras++
			}
		}
		if extras != stats.MappedDiscarded {
			t.Fatalf("seed %d: %d emitted non-final results, stats says %d", seed, extras, stats.MappedDiscarded)
		}
		if len(sink.Results)-extras != len(oracle) {
			t.Fatalf("seed %d: missing final results: emitted %d (-%d extras), oracle %d",
				seed, len(sink.Results), extras, len(oracle))
		}
	}
}

// TestSAJEarlyTermination checks SAJ stops before exhausting both sources on
// a workload with an easy threshold (correlated data, plentiful joins) and
// still returns the correct set.
func TestSAJEarlyTermination(t *testing.T) {
	p := genProblem(t, 400, 2, datagen.Correlated, 0.2, 3)
	oracle, err := Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	var sink smj.Collector
	stats, err := (&SAJ{}).Run(p, &sink)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, "SAJ", sink.Results, oracle)
	full := 0
	for _, tu := range p.Left.JoinKeys() {
		for _, tv := range p.Right.JoinKeys() {
			_ = tu
			_ = tv
		}
	}
	_ = full
	// The threshold must have cut off part of the join work.
	maxJoin := len(p.Left.Tuples) * len(p.Right.Tuples) / 5 // σ=0.2
	if stats.JoinResults >= maxJoin {
		t.Fatalf("SAJ did not terminate early: %d join results (full ≈ %d)", stats.JoinResults, maxJoin)
	}
}

func TestJFSLPushThroughPrunes(t *testing.T) {
	p := genProblem(t, 300, 2, datagen.Correlated, 0.1, 2)
	var sink smj.Collector
	stats, err := (&JFSL{PushThrough: true}).Run(p, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PushPruned == 0 {
		t.Fatal("correlated data must allow push-through pruning")
	}
	oracle, err := Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, "JF-SL+", sink.Results, oracle)
}

func TestOracleEmptyInputs(t *testing.T) {
	p := genProblem(t, 0, 2, datagen.Independent, 0.1, 1)
	res, err := Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty inputs produced %d results", len(res))
	}
}
