// Package progxe is a progressive evaluation engine for multi-criteria
// decision support queries — a from-scratch reproduction of
//
//	Raghavan & Rundensteiner, "Progressive Result Generation for
//	Multi-Criteria Decision Support Queries", ICDE 2010
//	(WPI-CS-TR-09-05).
//
// It evaluates SkyMapJoin queries — an equi-join of two sources whose
// results are transformed by user-defined mapping functions and then
// filtered to the Pareto-optimal (skyline) subset — while emitting each
// result as soon as it is provably part of the final answer, instead of
// blocking until the end of query processing.
//
// The package is a facade over the implementation packages: build a
// Problem (directly or by parsing the paper's PREFERRING SQL dialect),
// pick an Engine, and Run it with a Sink that consumes results as they
// stream out:
//
//	q, _ := progxe.ParseQuery(`
//	    SELECT R.id, T.id, (R.price + T.cost) AS total, (R.time + T.delay) AS delay
//	    FROM Suppliers R, Transporters T
//	    WHERE R.region = T.region
//	    PREFERRING LOWEST(total) AND LOWEST(delay)`)
//	p, _ := q.Compile(suppliers, transporters)
//	e := progxe.New(progxe.Options{})
//	e.Run(p, progxe.SinkFunc(func(r progxe.Result) {
//	    fmt.Println(r.LeftID, r.RightID, r.Out) // guaranteed final
//	}))
//
// Every engine also implements ContextEngine, so runs are cancellable via
// RunContext / StreamContext. On top of that sits the service layer
// (NewServer, cmd/progxe-serve): an HTTP subsystem with a relation catalog
// that streams results progressively as NDJSON or Server-Sent Events, with
// admission control and per-run cancellation on client disconnect — making
// progressiveness an end-to-end property rather than an in-process one.
package progxe

import (
	"context"
	"fmt"

	"progxe/internal/baseline"
	"progxe/internal/core"
	"progxe/internal/datagen"
	"progxe/internal/mapping"
	"progxe/internal/preference"
	"progxe/internal/query"
	"progxe/internal/relation"
	"progxe/internal/skyline"
	"progxe/internal/smj"
)

// Core query-model types.
type (
	// Problem is a fully specified SkyMapJoin query over two relations.
	Problem = smj.Problem
	// Result is one emitted skyline result.
	Result = smj.Result
	// Sink consumes progressively emitted results.
	Sink = smj.Sink
	// SinkFunc adapts a function to Sink.
	SinkFunc = smj.SinkFunc
	// Collector is a Sink storing all results in order.
	Collector = smj.Collector
	// Stats summarizes an engine run.
	Stats = smj.Stats
	// Engine evaluates a Problem, streaming results to a Sink.
	Engine = smj.Engine
	// ContextEngine is an Engine with cooperative cancellation. All engines
	// constructed by this package implement it.
	ContextEngine = smj.ContextEngine
)

// RunContext evaluates p with e under ctx: ContextEngines abort promptly
// with ctx.Err() when the context is canceled or times out; plain Engines
// run to completion before the context error is reported.
func RunContext(ctx context.Context, e Engine, p *Problem, sink Sink) (Stats, error) {
	return smj.RunContext(ctx, e, p, sink)
}

// WithParallelism returns a context requesting that the run use n worker
// goroutines for parallel region processing (ProgXe engines; overrides
// Options.Workers for that run, with n = 0 forcing serial). Parallelism
// never changes the result stream: a parallel run emits byte-identical
// results in identical order to a serial one.
func WithParallelism(ctx context.Context, n int) context.Context {
	return smj.WithParallelism(ctx, n)
}

// WithCommitters returns a context requesting that the run apply commit
// operations across n output-space-partitioned committer goroutines (ProgXe
// engines; overrides Options.Committers for that run, effective only when
// the run is parallel). Like WithParallelism, this never changes the result
// stream.
func WithCommitters(ctx context.Context, n int) context.Context {
	return smj.WithCommitters(ctx, n)
}

// WithSpeculate returns a context requesting that the run speculate up to n
// rounds ahead: phase-1 dominance prechecks for upcoming rounds run against
// a stale space snapshot while the current round's commits drain, with
// speculative survivors revalidated against only the per-round deltas
// (ProgXe engines; overrides Options.SpeculateRounds for that run, effective
// only on parallel runs with partitioned committers). Like WithParallelism,
// this never changes the result stream.
func WithSpeculate(ctx context.Context, n int) context.Context {
	return smj.WithSpeculate(ctx, n)
}

// Prepared is a reusable snapshot of the plan-construction phases of a
// ProgXe run (input partitioning, region pairing, look-ahead pruning). It is
// immutable once built, so one Prepared plan can back any number of
// concurrent RunPreparedContext evaluations — the serve layer's query-plan
// cache is built on exactly this.
type Prepared = core.Prepared

// PlanEngine is implemented by engines whose plan-construction phases can be
// snapshotted and reused across runs — the ProgXe family. Baselines evaluate
// monolithically and do not implement it.
type PlanEngine interface {
	// PrepareContext runs the plan-construction phases only.
	PrepareContext(ctx context.Context, p *Problem) (*Prepared, error)
	// RunPlanContext evaluates a prepared plan under the RunContext contract:
	// byte-identical emissions, minus the already-paid plan construction.
	RunPlanContext(ctx context.Context, pl *Prepared, sink Sink) (Stats, error)
}

// PrepareContext snapshots the plan-construction phases of e for p, when the
// engine supports it (see PlanEngine); ok reports support.
func PrepareContext(ctx context.Context, e Engine, p *Problem) (pl *Prepared, ok bool, err error) {
	pe, ok := e.(PlanEngine)
	if !ok {
		return nil, false, nil
	}
	pl, err = pe.PrepareContext(ctx, p)
	return pl, true, err
}

// RunPreparedContext evaluates a prepared plan with e, which must be the
// preparing engine or one configured with the same plan-affecting options.
func RunPreparedContext(ctx context.Context, e Engine, pl *Prepared, sink Sink) (Stats, error) {
	pe, ok := e.(PlanEngine)
	if !ok {
		return Stats{}, fmt.Errorf("progxe: engine %s cannot run prepared plans", e.Name())
	}
	return pe.RunPlanContext(ctx, pl, sink)
}

// Relational substrate types.
type (
	// Relation is an in-memory table.
	Relation = relation.Relation
	// Schema describes a relation's columns.
	Schema = relation.Schema
	// Tuple is one row.
	Tuple = relation.Tuple
)

// Mapping and preference types.
type (
	// MapSet is the set of mapping functions of the Map operator.
	MapSet = mapping.Set
	// MapFunc is one named mapping function.
	MapFunc = mapping.Func
	// Preference is a Pareto preference over the output dimensions.
	Preference = preference.Pareto
)

// Options configures the ProgXe engine (grid resolutions, ordering policy,
// push-through).
type Options = core.Options

// Ordering selects the region-ordering policy of the ProgXe engine.
type Ordering = core.Ordering

// Ordering policies (see core.Ordering).
const (
	OrderProgressive = core.OrderProgressive
	OrderRandom      = core.OrderRandom
	OrderArrival     = core.OrderArrival
	OrderCardinality = core.OrderCardinality
)

// RankerKind selects the benefit model behind ProgOrder's ranks.
type RankerKind = core.RankerKind

// Progressive-scheduler rankers (see core.RankerKind).
const (
	RankBenefitCost = core.RankBenefitCost
	RankCardinality = core.RankCardinality
)

// Partitioning selects the input space-partitioning structure.
type Partitioning = core.Partitioning

// Input partitioning methods.
const (
	PartitionGrid = core.PartitionGrid
	PartitionKD   = core.PartitionKD
)

// New returns the ProgXe progressive engine. The zero Options select the
// paper's full configuration: output-space look-ahead, ProgOrder ordering,
// ProgDetermine early output, automatic grid sizing. Set
// Options.PushThrough for the ProgXe+ variant.
func New(opts Options) Engine { return core.New(opts) }

// NewJFSL returns the blocking join-first skyline-later baseline;
// pushThrough selects the JF-SL+ variant.
func NewJFSL(pushThrough bool) Engine {
	return &baseline.JFSL{Algorithm: skyline.SFS, PushThrough: pushThrough}
}

// NewSSMJ returns the Skyline-Sort-Merge-Join baseline of Jin et al.;
// strict defers all output to the end, guaranteeing emission correctness
// under mapping functions.
func NewSSMJ(strict bool) Engine { return &baseline.SSMJ{Strict: strict} }

// NewSAJ returns the Fagin-style sorted-access baseline.
func NewSAJ() Engine { return &baseline.SAJ{} }

// ParseQuery parses a query in the paper's PREFERRING SQL dialect.
func ParseQuery(sql string) (*query.Query, error) { return query.Parse(sql) }

// NewSchema declares a relation schema: numeric attribute columns plus a
// join-key column.
func NewSchema(name string, attrs []string, joinAttr string) (*Schema, error) {
	return relation.NewSchema(name, attrs, joinAttr)
}

// NewRelation returns an empty relation with the given schema.
func NewRelation(s *Schema) *Relation { return relation.New(s) }

// Synthetic data generation (the evaluation workloads of §VI-A).
type (
	// DataSpec describes a synthetic relation.
	DataSpec = datagen.Spec
	// Distribution selects the attribute correlation regime.
	Distribution = datagen.Distribution
)

// Attribute correlation regimes.
const (
	Independent    = datagen.Independent
	Correlated     = datagen.Correlated
	AntiCorrelated = datagen.AntiCorrelated
)

// Generate produces a synthetic relation.
func Generate(spec DataSpec) (*Relation, error) { return datagen.Generate(spec) }

// GeneratePair produces the two-source benchmark workload R, T.
func GeneratePair(spec DataSpec) (*Relation, *Relation, error) {
	return datagen.GeneratePair(spec)
}

// AllLowest returns a Pareto preference minimizing d dimensions.
func AllLowest(d int) *Preference { return preference.AllLowest(d) }

// Oracle evaluates the problem with the reference blocking plan and returns
// the complete result set — useful for validating custom engines or sinks.
func Oracle(p *Problem) ([]Result, error) { return baseline.Oracle(p) }
