package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"progxe/internal/datagen"
)

// startServe runs the binary's run() on an ephemeral port and returns its
// base URL; the server is shut down via SIGTERM at cleanup.
func startServe(t *testing.T, args ...string) string {
	t.Helper()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), ready) }()
	select {
	case addr := <-ready:
		t.Cleanup(func() {
			syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
			select {
			case err := <-errc:
				if err != nil {
					t.Errorf("serve exited: %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Error("server did not shut down on SIGTERM")
			}
		})
		return "http://" + addr
	case err := <-errc:
		t.Fatalf("server failed to start: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}
	return ""
}

// TestServeDemoWorkflow boots the binary with the demo workload and drives
// one query over real HTTP: health, catalog listing, progressive stream.
func TestServeDemoWorkflow(t *testing.T) {
	// Also exercise -load with a CSV written by the datagen substrate.
	dir := t.TempDir()
	rel := datagen.MustGenerate(datagen.Spec{Name: "Extra", N: 20, Dims: 2, Selectivity: 0.5, Seed: 9})
	path := filepath.Join(dir, "extra.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	base := startServe(t, "-demo", "-load", "Extra="+path)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/v1/relations")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Relations []struct {
			Name string `json:"name"`
			Rows int    `json:"rows"`
		} `json:"relations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	names := map[string]int{}
	for _, r := range listing.Relations {
		names[r.Name] = r.Rows
	}
	if names["R"] != 1000 || names["T"] != 1000 || names["Extra"] != 20 {
		t.Fatalf("preloaded catalog = %v", names)
	}

	q := `{"query":"SELECT (R.a0+T.a0) AS x, (R.a1+T.a1) AS y FROM R R, T T WHERE R.jkey = T.jkey PREFERRING LOWEST(x) AND LOWEST(y)"}`
	qresp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d", qresp.StatusCode)
	}
	var types []string
	sc := bufio.NewScanner(qresp.Body)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		types = append(types, fmt.Sprint(m["type"]))
	}
	if len(types) < 3 || types[0] != "run" || types[1] != "result" || types[len(types)-1] != "stats" {
		t.Fatalf("stream shape = %v", types)
	}
}

// TestServePprofEndpoint boots with the opt-in profiling listener and
// fetches the pprof index from it.
func TestServePprofEndpoint(t *testing.T) {
	// Reserve a port for the pprof listener; the tiny close-to-bind window
	// is raced only by other local processes.
	ln, err := listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pprofAddr := ln.Addr().String()
	ln.Close()

	base := startServe(t, "-pprof", pprofAddr)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get("http://" + pprofAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof endpoint unreachable: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
}

// TestServeObservabilityFlags boots with the observability knobs set and
// checks that a run lands in /v1/runs with a trace.
func TestServeObservabilityFlags(t *testing.T) {
	base := startServe(t, "-demo", "-log-format", "json", "-slow-run", "1ns", "-run-log", "4")
	q := `{"query":"SELECT (R.a0+T.a0) AS x, (R.a1+T.a1) AS y FROM R R, T T WHERE R.jkey = T.jkey PREFERRING LOWEST(x) AND LOWEST(y)","trace":true}`
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	rresp, err := http.Get(base + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	var runs struct {
		Runs []struct {
			ID       string `json:"id"`
			HasTrace bool   `json:"hasTrace"`
		} `json:"runs"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&runs); err != nil {
		t.Fatal(err)
	}
	if len(runs.Runs) != 1 || !runs.Runs[0].HasTrace {
		t.Fatalf("/v1/runs = %+v", runs.Runs)
	}
	tresp, err := http.Get(base + "/v1/runs/" + runs.Runs[0].ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", tresp.StatusCode)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-load", "nopath"}, nil); err == nil {
		t.Fatal("-load without name=path must error")
	}
	if err := run([]string{"-log-format", "xml"}, nil); err == nil {
		t.Fatal("-log-format xml must error")
	}
	if err := run([]string{"-load", "X=/does/not/exist.csv"}, nil); err == nil {
		t.Fatal("-load with a missing file must error")
	}
	// A -load CSV that fails to parse must error too.
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,relation\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-load", "X=" + bad}, nil); err == nil {
		t.Fatal("unparseable -load CSV must error")
	}
}
