package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

const (
	smokeLeftCSV  = "id,price,speed,region\n1,10,5,1\n2,20,1,1\n3,5,9,2\n"
	smokeRightCSV = "id,cost,delay,region\n1,3,2,1\n2,8,1,2\n3,1,7,1\n"
	smokeQuery    = `SELECT (L.price + R.cost) AS total, (L.speed + R.delay) AS lag
		FROM L L, R R WHERE L.region = R.region
		PREFERRING LOWEST(total) AND LOWEST(lag)`
)

// TestSubscribeSmoke is the binary-level live-query acceptance test: boot
// progxe-serve with a tailed change file, open a subscription, drive a
// scripted insert/delete mix through both the file tail and the changes
// endpoint, and gate on (a) the subscription's net result set equaling a
// fresh one-shot run over the final catalog and (b) no goroutines leaked
// after the client detaches.
func TestSubscribeSmoke(t *testing.T) {
	dir := t.TempDir()
	lcsv := filepath.Join(dir, "L.csv")
	rcsv := filepath.Join(dir, "R.csv")
	changes := filepath.Join(dir, "changes.ndjson")
	for path, data := range map[string]string{lcsv: smokeLeftCSV, rcsv: smokeRightCSV, changes: ""} {
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	base := startServe(t, "-load", "L="+lcsv, "-load", "R="+rcsv, "-follow", "L="+changes)
	baseline := runtime.NumGoroutine()

	// Open the subscription and pump its records onto a channel.
	body, _ := json.Marshal(map[string]any{"query": smokeQuery})
	resp, err := http.Post(base+"/v1/subscribe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: status %d", resp.StatusCode)
	}
	lines := make(chan map[string]any, 256)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var m map[string]any
			if json.Unmarshal(bytes.TrimSpace(sc.Bytes()), &m) == nil {
				lines <- m
			}
		}
	}()
	next := func() map[string]any {
		select {
		case m := <-lines:
			return m
		case <-time.After(15 * time.Second):
			t.Fatalf("timed out waiting for a subscription record")
			return nil
		}
	}

	type pair struct{ l, r int64 }
	net := map[pair]bool{}
	checkpoints := 0
	apply := func(rec map[string]any) {
		switch rec["type"] {
		case "result":
			net[pair{int64(rec["leftId"].(float64)), int64(rec["rightId"].(float64))}] = true
		case "retract":
			delete(net, pair{int64(rec["leftId"].(float64)), int64(rec["rightId"].(float64))})
		case "checkpoint":
			checkpoints++
		case "error":
			t.Fatalf("stream errored: %v", rec)
		}
	}
	if rec := next(); rec["type"] != "run" {
		t.Fatalf("head record = %v", rec)
	}
	for checkpoints == 0 { // snapshot checkpoint
		apply(next())
	}

	// Scripted mix: four changes to L through the tailed file, two to R
	// through the changes endpoint. Distinct relations, so the final catalog
	// state does not depend on relay timing.
	f, err := os.OpenFile(changes, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(
		`{"op":"insert","id":100,"vals":[1,1],"joinKey":1}` + "\n" +
			"delete,L,1\n" +
			"insert,L,101,1,30,30\n" +
			"# a comment the tail must skip\n" +
			`{"op":"delete","id":100}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	epBody := `{"op":"insert","relation":"R","id":200,"vals":[0,0],"joinKey":1}` + "\n" +
		`{"op":"delete","relation":"R","id":3}` + "\n"
	cresp, err := http.Post(base+"/v1/relations/R/changes", "application/x-ndjson", strings.NewReader(epBody))
	if err != nil {
		t.Fatal(err)
	}
	var cr struct {
		Applied int `json:"applied"`
	}
	if err := json.NewDecoder(cresp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cr.Applied != 2 {
		t.Fatalf("endpoint applied %d changes, want 2", cr.Applied)
	}

	// Every applied change to a subscribed relation checkpoints exactly
	// once: wait for all six, then compare against a fresh run.
	for checkpoints < 7 { // 1 snapshot + 6 changes
		apply(next())
	}
	oresp, err := http.Post(base+"/v1/query", "application/json",
		strings.NewReader(`{"query":`+string(mustJSON(smokeQuery))+`}`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[pair]bool{}
	sc := bufio.NewScanner(oresp.Body)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		if m["type"] == "result" {
			want[pair{int64(m["leftId"].(float64)), int64(m["rightId"].(float64))}] = true
		}
		if m["type"] == "stats" && m["error"] != nil {
			t.Fatalf("oracle run failed: %v", m)
		}
	}
	oresp.Body.Close()
	if len(want) != len(net) {
		t.Fatalf("net set %v, fresh run %v", net, want)
	}
	for p := range want {
		if !net[p] {
			t.Fatalf("pair %v in fresh run but not in net set (net %v)", p, net)
		}
	}

	// Detach and verify the subscription goroutines wind down. Idle
	// keep-alive connections (client persistConn loops plus their server
	// peers) are torn down explicitly so only real leaks can trip the gate.
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after detach: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
