// Command progxe-serve runs the progressive query service: an HTTP server
// that registers relations (synthetic specs or CSV uploads), evaluates
// PREFERRING-dialect SkyMapJoin queries with a per-request engine choice,
// and streams each skyline result to the client the moment the engine
// proves it final — NDJSON by default, Server-Sent Events on request.
//
// Usage:
//
//	progxe-serve -addr :8080
//	progxe-serve -addr :8080 -demo                 # preload R, T (anti-correlated pair)
//	progxe-serve -load Suppliers=suppliers.csv \
//	             -load Transporters=transporters.csv
//
// Then (see README.md for the full walkthrough):
//
//	curl -s localhost:8080/v1/query -d '{
//	  "query": "SELECT (R.a0+T.a0) AS x, (R.a1+T.a1) AS y FROM R R, T T WHERE R.jkey = T.jkey PREFERRING LOWEST(x) AND LOWEST(y)"
//	}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"progxe/internal/datagen"
	"progxe/internal/feed"
	"progxe/internal/relation"
	"progxe/internal/server"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "progxe-serve:", err)
		os.Exit(1)
	}
}

// run builds and serves the service. When ready is non-nil it receives the
// bound listen address once the server is accepting connections (used by
// tests binding port 0).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("progxe-serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		maxRuns    = fs.Int("max-concurrent", 0, "max concurrent engine runs (0 = default 8); excess queries get 429")
		runTimeout = fs.Duration("run-timeout", 0, "per-run wall-clock cap (0 = default 60s, negative = unlimited)")
		writeStall = fs.Duration("write-stall", 0, "per-record write deadline for stalled clients (0 = default 30s, negative = none)")
		maxWorkers = fs.Int("max-workers", 0, "cap for the per-request \"workers\" knob (0 = default GOMAXPROCS, negative = disable parallel runs)")
		maxCommit  = fs.Int("max-committers", 0, "cap for the per-request \"committers\" knob (0 = default GOMAXPROCS, negative = disable parallel commit)")
		maxSpec    = fs.Int("max-speculate", 0, "cap for the per-request \"speculate\" knob (0 = default 8, negative = disable speculative pipelining)")
		maxUpload  = fs.Int64("max-upload-bytes", 0, "CSV upload size cap in bytes (0 = default 64 MiB)")
		defEngine  = fs.String("engine", "", "default engine for queries that name none (default progxe)")
		demo       = fs.Bool("demo", false, "preload a demo workload: anti-correlated pair R, T (1000 rows, 3 dims)")
		pprofAddr  = fs.String("pprof", os.Getenv("PROGXE_PPROF"), "serve net/http/pprof on this address (e.g. localhost:6060); empty = disabled")
		logFormat  = fs.String("log-format", "text", "structured run-log format: text or json")
		slowRun    = fs.Duration("slow-run", 0, "log runs slower than this at WARN level (0 = disabled)")
		runLogSize = fs.Int("run-log", 0, "recent runs retained for /v1/runs (0 = default 128, negative = disabled)")
		planCache  = fs.Int("plan-cache", 0, "compiled query plans cached across runs (0 = default 128, negative = disabled)")
		coalesce   = fs.Int("coalesce", server.DefaultCoalesceReplay, "replay-buffer records per coalesced run; concurrent identical queries share one engine run (0 or negative = disabled)")
		loads      []string
		follows    []string
	)
	fs.Func("load", "preload a relation from CSV as name=path (repeatable)", func(v string) error {
		loads = append(loads, v)
		return nil
	})
	fs.Func("follow", "tail a change-log file (NDJSON or CSV change lines) into a relation as name=path (repeatable); appended inserts/deletes feed live subscriptions", func(v string) error {
		follows = append(follows, v)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("-log-format wants text or json, got %q", *logFormat)
	}
	logger := slog.New(handler)

	srv := server.New(server.Config{
		MaxConcurrentRuns: *maxRuns,
		RunTimeout:        *runTimeout,
		WriteStallTimeout: *writeStall,
		MaxUploadBytes:    *maxUpload,
		MaxRunWorkers:     *maxWorkers,
		MaxRunCommitters:  *maxCommit,
		MaxRunSpeculate:   *maxSpec,
		DefaultEngine:     *defEngine,
		Logger:            logger,
		SlowRunThreshold:  *slowRun,
		RunLogSize:        *runLogSize,
		PlanCacheSize:     *planCache,
		CoalesceReplay:    *coalesce,
	})

	if *demo {
		r, t, err := datagen.GeneratePair(datagen.Spec{
			N: 1000, Dims: 3, Distribution: datagen.AntiCorrelated,
			Selectivity: 0.01, Seed: 42,
		})
		if err != nil {
			return err
		}
		for _, rel := range []*relation.Relation{r, t} {
			if err := srv.Catalog().Register(rel); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "progxe-serve: preloaded %s (%d rows)\n", rel.Schema.Name, rel.Len())
		}
	}
	for _, l := range loads {
		name, path, ok := strings.Cut(l, "=")
		if !ok {
			return fmt.Errorf("-load wants name=path, got %q", l)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		rel, err := relation.ReadCSV(name, f)
		f.Close()
		if err != nil {
			return err
		}
		if err := srv.Catalog().Register(rel); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "progxe-serve: loaded %s (%d rows) from %s\n", name, rel.Len(), path)
	}

	// File-tailing change connectors: each -follow spawns a feed.TailSource
	// whose changes are applied to the catalog (and fanned out to live
	// subscriptions) as they are appended. Bad lines and rejected changes are
	// logged and skipped — a feed file must not be able to stop the tail.
	followCtx, stopFollow := context.WithCancel(context.Background())
	defer stopFollow()
	for _, fl := range follows {
		name, path, ok := strings.Cut(fl, "=")
		if !ok {
			return fmt.Errorf("-follow wants name=path, got %q", fl)
		}
		src := feed.NewTailSource(path, 0)
		fmt.Fprintf(os.Stderr, "progxe-serve: following %s into %s\n", path, name)
		go func(name string, src *feed.TailSource) {
			defer src.Close()
			for {
				c, err := src.Next(followCtx)
				if err != nil {
					if followCtx.Err() != nil {
						return
					}
					logger.Warn("follow: skipping line", "relation", name, "err", err)
					select {
					case <-followCtx.Done():
						return
					case <-time.After(feed.DefaultPollInterval):
					}
					continue
				}
				if c.Relation == "" {
					c.Relation = name
				}
				if _, err := srv.ApplyChange(c); err != nil {
					logger.Warn("follow: change rejected", "relation", name, "err", err)
				}
			}
		}(name, src)
	}

	// Profiling endpoint, opt-in and on its own listener so the debug
	// surface never shares a port with query traffic. Lets hot-path
	// regressions be profiled against live load:
	//
	//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := listen(*pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "progxe-serve: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, mux); err != nil {
				fmt.Fprintln(os.Stderr, "progxe-serve: pprof server:", err)
			}
		}()
	}

	// Header/idle timeouts shed slow-loris connections; response writes are
	// deadline-guarded per record inside the service (streams must be able
	// to outlive any whole-response WriteTimeout).
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: stop accepting, let streams drain briefly.
	idle := make(chan error, 1)
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		stopFollow()     // stop the change tails before the catalog drains
		srv.CancelRuns() // abort in-flight streams so the drain can finish
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		idle <- hs.Shutdown(ctx)
	}()

	ln, err := listen(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "progxe-serve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	if err := hs.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	err = <-idle

	// Final counters snapshot on the way out, so a scrape gap at shutdown
	// never loses the run totals.
	st := srv.Stats()
	logger.Info("shutdown",
		"runsStarted", st.RunsStarted,
		"runsCompleted", st.RunsCompleted,
		"runsCanceled", st.RunsCanceled,
		"runsFailed", st.RunsFailed,
		"resultsStreamed", st.ResultsStreamed,
		"runsRejected", st.RunsRejected,
	)
	return err
}

func listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }
