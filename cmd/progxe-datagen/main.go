// Command progxe-datagen emits the synthetic benchmark data sets of the
// paper's performance study (§VI-A) as CSV: independent, correlated or
// anti-correlated attributes in [1,100] plus a join key sized for a target
// join selectivity.
//
// Usage:
//
//	progxe-datagen -n 10000 -dims 4 -dist anti -sigma 0.001 -seed 7 -out R.csv
//	progxe-datagen -pair -n 10000 -dims 4 -dist anti -sigma 0.001 -out data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"progxe/internal/datagen"
	"progxe/internal/relation"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "progxe-datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("progxe-datagen", flag.ContinueOnError)
	var (
		n     = fs.Int("n", 10000, "tuples per relation")
		dims  = fs.Int("dims", 4, "skyline dimensions per relation")
		dist  = fs.String("dist", "independent", "distribution: independent | correlated | anti-correlated")
		sigma = fs.Float64("sigma", 0.001, "target join selectivity σ")
		seed  = fs.Uint64("seed", 1, "generator seed (deterministic)")
		name  = fs.String("name", "R", "relation name")
		out   = fs.String("out", "", "output file (default stdout); with -pair, output directory")
		pair  = fs.Bool("pair", false, "emit the benchmark pair R.csv and T.csv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := datagen.ParseDistribution(*dist)
	if err != nil {
		return err
	}
	spec := datagen.Spec{Name: *name, N: *n, Dims: *dims, Distribution: d, Selectivity: *sigma, Seed: *seed}

	if *pair {
		if *out == "" {
			return fmt.Errorf("-pair requires -out directory")
		}
		r, t, err := datagen.GeneratePair(spec)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		if err := writeCSV(filepath.Join(*out, "R.csv"), r); err != nil {
			return err
		}
		if err := writeCSV(filepath.Join(*out, "T.csv"), t); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s/R.csv and %s/T.csv (%d tuples each, %s, σ=%g)\n",
			*out, *out, *n, d, *sigma)
		return nil
	}

	rel, err := datagen.Generate(spec)
	if err != nil {
		return err
	}
	if *out == "" {
		return rel.WriteCSV(os.Stdout)
	}
	if err := writeCSV(*out, rel); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d tuples, %s, σ=%g)\n", *out, *n, d, *sigma)
	return nil
}

func writeCSV(path string, rel *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rel.WriteCSV(f)
}
