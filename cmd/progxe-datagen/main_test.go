package main

import (
	"os"
	"path/filepath"
	"testing"

	"progxe/internal/relation"
)

func TestRunSingle(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data.csv")
	if err := run([]string{"-n", "50", "-dims", "3", "-dist", "anti", "-sigma", "0.1", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rel, err := relation.ReadCSV("data", f)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 50 || rel.Schema.Arity() != 3 {
		t.Fatalf("generated relation shape: N=%d arity=%d", rel.Len(), rel.Schema.Arity())
	}
}

func TestRunPair(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-pair", "-n", "30", "-dims", "2", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"R.csv", "T.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-dist", "bogus"},
		{"-pair"},      // pair without -out
		{"-n", "-5"},   // negative N
		{"-dims", "0"}, // zero dims
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
