// Command progxe evaluates a SkyMapJoin query over two CSV files and
// streams the skyline results progressively to stdout, each as soon as it
// is provably part of the final answer.
//
// Usage:
//
//	progxe -left suppliers.csv -right transporters.csv \
//	       -query 'SELECT (R.price + T.cost) AS total, (2 * R.time + T.delay) AS delay
//	               FROM Suppliers R, Transporters T
//	               WHERE R.region = T.region
//	               PREFERRING LOWEST(total) AND LOWEST(delay)'
//
// CSV files carry a header row: id,<attr...>,<joinAttr> (see progxe-datagen
// to produce synthetic inputs). The -engine flag switches between the
// progressive engine and the blocking baselines for comparison; -stats
// prints run statistics to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"progxe"
	"progxe/internal/core"
	"progxe/internal/engines"
	"progxe/internal/obs"
	"progxe/internal/query"
	"progxe/internal/relation"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "progxe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("progxe", flag.ContinueOnError)
	var (
		leftPath  = fs.String("left", "", "CSV file for the first (left) source")
		rightPath = fs.String("right", "", "CSV file for the second (right) source")
		queryStr  = fs.String("query", "", "SkyMapJoin query in the PREFERRING dialect")
		queryFile = fs.String("query-file", "", "read the query from a file instead")
		engine    = fs.String("engine", "progxe", "engine: "+strings.Join(engines.Names(), " | "))
		inCells   = fs.Int("input-cells", 0, "input grid cells per dimension (0 = auto)")
		outCells  = fs.Int("output-cells", 0, "output grid cells per dimension (0 = auto)")
		workers   = fs.Int("workers", 0, "parallel region-processing workers (ProgXe engines; 0 = serial, -1 = GOMAXPROCS); results are identical at any count")
		commit    = fs.Int("committers", 0, "output-space-partitioned commit goroutines (ProgXe engines; 0 = commit on the sequencer, -1 = GOMAXPROCS; needs -workers); results are identical at any count")
		spec      = fs.Int("speculate", 0, "cross-round speculation depth (ProgXe engines; 0 = drain before every precheck, -1 = default depth; needs -workers >= 2 and -committers); results are identical at any depth")
		ranker    = fs.String("ranker", "benefit-cost", "progressive scheduling ranker: benefit-cost (Eq. 8) or cardinality (skips ProgCount; ProgXe engines only)")
		stats     = fs.Bool("stats", false, "print run statistics to stderr")
		quiet     = fs.Bool("quiet", false, "suppress per-result output (timing only)")
		explain   = fs.Bool("explain", false, "print the look-ahead plan and exit without executing")
		trace     = fs.Bool("trace", false, "print engine trace events to stderr (ProgXe engines only)")
		traceOut  = fs.String("trace-out", "", "write a Chrome-trace JSON document of the run to this file (view at ui.perfetto.dev)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *leftPath == "" || *rightPath == "" {
		return fmt.Errorf("both -left and -right CSV files are required")
	}
	if (*queryStr == "") == (*queryFile == "") {
		return fmt.Errorf("exactly one of -query or -query-file is required")
	}
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		*queryStr = string(b)
	}

	left, err := loadCSV(*leftPath)
	if err != nil {
		return err
	}
	right, err := loadCSV(*rightPath)
	if err != nil {
		return err
	}

	q, err := query.Parse(*queryStr)
	if err != nil {
		return err
	}
	p, err := q.Compile(left, right)
	if err != nil {
		return err
	}

	if *explain {
		plan, err := core.Explain(p, core.Options{InputCells: *inCells, OutputCells: *outCells})
		if err != nil {
			return err
		}
		fmt.Println(plan)
		return nil
	}

	rk, err := core.ParseRanker(*ranker)
	if err != nil {
		return err
	}

	// Observability: the profiler is free on the hot path, so it is on
	// whenever something consumes it (-stats phase breakdown, -trace-out).
	var prof *obs.Profiler
	var tracer *core.TraceRecorder
	if *stats || *traceOut != "" {
		prof = obs.NewProfiler()
	}
	if *traceOut != "" {
		prof.EnableSpans()
		tracer = core.NewTraceRecorder(prof.Epoch())
	}

	e, err := pickEngine(*engine, *inCells, *outCells, *workers, *commit, *spec, rk, *trace, prof, tracer)
	if err != nil {
		return err
	}

	names := p.Maps.Names()
	start := time.Now()
	timeline := obs.NewTimeline(start)
	count := 0
	sink := progxe.SinkFunc(func(r progxe.Result) {
		timeline.Observe()
		count++
		if *quiet {
			return
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "[%8.3fms] left=%d right=%d", float64(time.Since(start).Microseconds())/1000, r.LeftID, r.RightID)
		for j, v := range r.Out {
			fmt.Fprintf(&sb, " %s=%g", names[j], v)
		}
		fmt.Println(sb.String())
	})
	st, err := e.Run(p, sink)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("# %d results in %v (%s)\n", count, elapsed.Round(time.Microsecond), e.Name())
	if *stats {
		fmt.Fprintf(os.Stderr, "join results:        %d\n", st.JoinResults)
		fmt.Fprintf(os.Stderr, "dominance tests:     %d\n", st.DomComparisons)
		fmt.Fprintf(os.Stderr, "discarded unmapped:  %d\n", st.MappedDiscarded)
		fmt.Fprintf(os.Stderr, "regions:             %d (pruned %d, dropped %d)\n", st.Regions, st.RegionsPruned, st.RegionsDropped)
		fmt.Fprintf(os.Stderr, "cells marked:        %d\n", st.CellsMarked)
		fmt.Fprintf(os.Stderr, "push-through pruned: %d\n", st.PushPruned)
		if q := timeline.Quantiles(); q.Count > 0 {
			fmt.Fprintf(os.Stderr, "progressiveness:     first=%.3fms p10=%.3fms p50=%.3fms p90=%.3fms last=%.3fms\n",
				q.FirstMillis, q.P10Millis, q.P50Millis, q.P90Millis, q.LastMillis)
		}
		if rep := prof.Report(); len(rep.Phases) > 0 {
			fmt.Fprintf(os.Stderr, "phases:              %s\n", rep)
			if rep.WorkerMillis > 0 {
				fmt.Fprintf(os.Stderr, "serial commit:       %.1f%% of sequencer time\n", rep.SerialCommitFraction*100)
			}
		}
	}
	if *traceOut != "" {
		spans, instants := tracer.Spans()
		doc, err := obs.TraceJSON(append(prof.Spans(), spans...), instants)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, doc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (open at ui.perfetto.dev)\n", *traceOut)
	}
	return nil
}

func loadCSV(path string) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return relation.ReadCSV(name, f)
}

func pickEngine(name string, inCells, outCells, workers, committers, speculate int, ranker core.RankerKind, trace bool, prof *obs.Profiler, tracer *core.TraceRecorder) (progxe.Engine, error) {
	opts := progxe.Options{InputCells: inCells, OutputCells: outCells, Workers: workers, Committers: committers, SpeculateRounds: speculate, Ranker: ranker, Profiler: prof}
	switch {
	case trace && tracer != nil:
		opts.Trace = func(e core.Event) {
			tracer.Observe(e)
			fmt.Fprintln(os.Stderr, "trace:", e)
		}
	case trace:
		opts.Trace = func(e core.Event) { fmt.Fprintln(os.Stderr, "trace:", e) }
	case tracer != nil:
		opts.Trace = tracer.Observe
	}
	return engines.New(name, opts)
}
