package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"progxe/internal/datagen"
)

// writeData generates a small benchmark pair under dir and returns the two
// CSV paths.
func writeData(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	r, s, err := datagen.GeneratePair(datagen.Spec{N: 200, Dims: 2, Distribution: datagen.AntiCorrelated, Selectivity: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rp := filepath.Join(dir, "R.csv")
	sp := filepath.Join(dir, "T.csv")
	rf, err := os.Create(rp)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	if err := r.WriteCSV(rf); err != nil {
		t.Fatal(err)
	}
	sf, err := os.Create(sp)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	if err := s.WriteCSV(sf); err != nil {
		t.Fatal(err)
	}
	return rp, sp
}

const testQuery = `SELECT (R.a0 + T.a0) AS cost, (R.a1 + T.a1) AS delay
FROM R R, T T WHERE R.jkey = T.jkey
PREFERRING LOWEST(cost) AND LOWEST(delay)`

func TestRunEngines(t *testing.T) {
	rp, sp := writeData(t)
	for _, engine := range []string{"progxe", "progxe+", "progxe-noorder", "jfsl", "jfsl+", "ssmj", "saj"} {
		if err := run([]string{"-left", rp, "-right", sp, "-quiet", "-engine", engine, "-query", testQuery}); err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
	}
}

func TestRunExplain(t *testing.T) {
	rp, sp := writeData(t)
	if err := run([]string{"-left", rp, "-right", sp, "-explain", "-query", testQuery}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceAndStats(t *testing.T) {
	rp, sp := writeData(t)
	if err := run([]string{"-left", rp, "-right", sp, "-quiet", "-trace", "-stats", "-query", testQuery}); err != nil {
		t.Fatal(err)
	}
}

// TestRunTraceOut pins the CLI trace-export path: -trace-out must produce a
// Chrome-trace JSON array with spans on both the profiler's phase tracks and
// the recorder's region track.
func TestRunTraceOut(t *testing.T) {
	rp, sp := writeData(t)
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-left", rp, "-right", sp, "-quiet", "-workers", "2", "-trace-out", out, "-query", testQuery}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(b, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	tracks := map[string]bool{}
	spans := 0
	for _, ev := range events {
		if ev["ph"] == "M" {
			args := ev["args"].(map[string]any)
			tracks[args["name"].(string)] = true
		}
		if ev["ph"] == "X" {
			spans++
		}
	}
	if !tracks["sequencer"] || !tracks["regions"] || spans == 0 {
		t.Fatalf("trace tracks %v with %d spans", tracks, spans)
	}
}

func TestRunQueryFile(t *testing.T) {
	rp, sp := writeData(t)
	qf := filepath.Join(t.TempDir(), "q.sql")
	if err := os.WriteFile(qf, []byte(testQuery), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-left", rp, "-right", sp, "-quiet", "-query-file", qf}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	rp, sp := writeData(t)
	cases := [][]string{
		{},                          // missing files
		{"-left", rp},               // missing right
		{"-left", rp, "-right", sp}, // missing query
		{"-left", rp, "-right", sp, "-query", testQuery, "-query-file", "x"}, // both query forms
		{"-left", "/nonexistent.csv", "-right", sp, "-query", testQuery},
		{"-left", rp, "-right", sp, "-query", "SELECT"},                      // parse error
		{"-left", rp, "-right", sp, "-query", testQuery, "-engine", "bogus"}, // bad engine
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
