// Command progxe-bench regenerates the paper's evaluation figures
// (Figs. 10–13): for each figure it runs the corresponding engines over the
// corresponding workload and prints the series (results-over-time curves or
// total-time-vs-selectivity tables).
//
// Usage:
//
//	progxe-bench                  # run every figure at the default scale
//	progxe-bench -figure 11c      # one figure
//	progxe-bench -list            # list figure ids and captions
//	progxe-bench -series          # include full downsampled curves
//	progxe-bench -json out.json   # machine-readable results (BENCH_*.json)
//	PROGXE_BENCH_SCALE=4 progxe-bench -figure 13c   # larger workloads
//
// Workload sizes default to laptop scale (the paper used N = 500K on a
// dedicated workstation); PROGXE_BENCH_SCALE multiplies them.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"progxe/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "progxe-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("progxe-bench", flag.ContinueOnError)
	var (
		figID      = fs.String("figure", "", "run selected figures, comma-separated (e.g. 11f or 11f,13c)")
		list       = fs.Bool("list", false, "list available figures")
		series     = fs.Bool("series", false, "print downsampled progress curves")
		plot       = fs.Bool("plot", false, "render progress figures as ASCII charts")
		check      = fs.Bool("check", false, "evaluate the paper's qualitative claims against the runs")
		csvDir     = fs.String("csv", "", "write per-figure series as CSV files into this directory")
		jsonPath   = fs.String("json", "", "write machine-readable per-figure results (engine, total-ms, first-ms, DomComparisons) to this file")
		workers    = fs.Int("workers", 0, "additionally run each ProgXe engine with this many parallel workers (adds \"(w=N)\" variants)")
		committers = fs.Int("committers", 0, "additionally run each ProgXe engine with -workers workers and this many partitioned committers (adds \"(w=N c=M)\" variants; needs -workers)")
		speculate  = fs.Int("speculate", 0, "additionally run each ProgXe engine with -workers/-committers and this speculation depth (adds \"(w=N c=M s=K)\" variants; needs -workers and -committers)")
		baseline   = fs.String("baseline", "", "compare results against a committed BENCH_*.json and fail on ProgXe total-time regressions")
		maxRegress = fs.Float64("max-regress", 0.2, "regression tolerance for -baseline (0.2 = fail beyond +20%)")
		repeat     = fs.Int("repeat", 1, "run each cell this many times and keep the fastest (use ≥3 when gating with -baseline)")
		summary    = fs.String("summary", "", "append a markdown digest (environment + w=N speedup table) to this file — point it at $GITHUB_STEP_SUMMARY in CI")
		obsGate    = fs.Float64("obs-gate", 0, "run Fig 11f with observability fully on and fully off (interleaved, best of -repeat) and fail if on exceeds off by more than this fraction (e.g. 0.02 = 2%)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *committers > 0 && *workers <= 0 {
		return fmt.Errorf("-committers needs -workers (the commit stage only partitions on parallel runs)")
	}
	if *speculate > 0 && (*workers < 2 || *committers <= 0) {
		return fmt.Errorf("-speculate needs -workers >= 2 and -committers (rounds only pipeline on partitioned-commit runs with a spare precheck lane)")
	}

	if *list {
		for _, f := range bench.Figures() {
			fmt.Printf("%-4s %-11s %s\n", f.ID, f.Kind, f.Caption)
		}
		return nil
	}

	figs := bench.Figures()
	if *figID != "" {
		figs = figs[:0]
		for _, id := range strings.Split(*figID, ",") {
			f, err := bench.FigureByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			figs = append(figs, f)
		}
	}

	start := time.Now()
	var verdicts []bench.CheckResult
	var report bench.JSONReport
	for i, f := range figs {
		if i > 0 {
			fmt.Println()
		}
		if *workers > 0 {
			f.Engines = bench.AddWorkerVariants(f.Engines, *workers)
			if *committers > 0 {
				f.Engines = bench.AddCommitterVariants(f.Engines, *workers, *committers)
				if *speculate > 0 {
					f.Engines = bench.AddSpeculateVariants(f.Engines, *workers, *committers, *speculate)
				}
			}
		}
		runs := bench.RunFigure(f, os.Stdout, *series, *repeat)
		if *plot && f.Kind == bench.Progress {
			bench.Plot(os.Stdout, runs, 64, 16)
		}
		if *check {
			verdicts = append(verdicts, bench.CheckFigure(f, runs)...)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, f, runs); err != nil {
				return err
			}
		}
		if *jsonPath != "" || *baseline != "" || *summary != "" {
			report.AddFigure(f, runs)
		}
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, &report); err != nil {
			return err
		}
	}
	if *summary != "" {
		if err := writeSummary(*summary, &report); err != nil {
			return err
		}
	}
	if *check {
		fmt.Println("\n# shape checks")
		failed := 0
		for _, v := range verdicts {
			fmt.Println(v)
			if !v.Holds {
				failed++
			}
		}
		if failed > 0 {
			return fmt.Errorf("%d of %d shape checks failed", failed, len(verdicts))
		}
	}
	if *baseline != "" {
		if err := compareBaseline(*baseline, &report, *maxRegress); err != nil {
			return err
		}
	}
	if *obsGate > 0 {
		on, off, err := bench.ObsOverhead("11f", *repeat)
		if err != nil {
			return err
		}
		overhead := on/off - 1
		fmt.Printf("\n# observability overhead gate (Fig 11f, best of %d)\n", *repeat)
		fmt.Printf("obs off %.1fms, obs on %.1fms, overhead %+.2f%% (tolerance +%.0f%%)\n",
			off, on, overhead*100, *obsGate*100)
		if overhead > *obsGate {
			return fmt.Errorf("observability overhead %+.2f%% exceeds +%.0f%%", overhead*100, *obsGate*100)
		}
	}
	fmt.Fprintf(os.Stderr, "\n%d figure(s) in %v (scale %.2g)\n",
		len(figs), time.Since(start).Round(time.Millisecond), bench.Scale())
	return nil
}

// compareBaseline checks the report's ProgXe totals against a committed
// baseline (SSMJ-normalized wherever the figure carries the control run)
// and fails on regressions beyond the tolerance.
func compareBaseline(path string, report *bench.JSONReport, maxRegress float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	base, err := bench.ReadJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	verdicts := bench.CompareReports(base, report, maxRegress)
	fmt.Printf("\n# trajectory vs %s (tolerance +%.0f%%)\n", path, maxRegress*100)
	if len(verdicts) == 0 {
		fmt.Println("no comparable cells (different scale, figures, or worker counts)")
		return nil
	}
	for _, v := range verdicts {
		fmt.Println(v)
	}
	if regs := bench.Regressions(verdicts); len(regs) > 0 {
		return fmt.Errorf("%d of %d trajectory cells regressed beyond +%.0f%%", len(regs), len(verdicts), maxRegress*100)
	}
	return nil
}

// writeSummary appends the markdown digest to path (created if absent), the
// append matching how CI jobs accumulate $GITHUB_STEP_SUMMARY.
func writeSummary(path string, report *bench.JSONReport) error {
	out, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bench.WriteSummary(out, report)
	return out.Close()
}

// writeJSON stores the machine-readable report at path.
func writeJSON(path string, report *bench.JSONReport) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// writeCSV stores one figure's series under dir as fig<ID>.csv.
func writeCSV(dir string, f bench.Figure, runs []bench.RunResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "fig"+f.ID+".csv")
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if f.Kind == bench.TotalTime {
		return bench.WriteTotalsCSV(out, f.ID, runs)
	}
	return bench.WriteSeriesCSV(out, f.ID, runs)
}
