package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"progxe/internal/bench"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	t.Setenv("PROGXE_BENCH_SCALE", "0.02")
	if err := run([]string{"-figure", "10a"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-figure", "99x"}); err == nil {
		t.Fatal("unknown figure must error")
	}
}

func TestRunJSONReport(t *testing.T) {
	t.Setenv("PROGXE_BENCH_SCALE", "0.02")
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-figure", "11a", "-json", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report bench.JSONReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(report.Figures) != 1 || report.Figures[0].Figure != "11a" {
		t.Fatalf("report figures = %+v", report.Figures)
	}
	runs := report.Figures[0].Runs
	if len(runs) == 0 {
		t.Fatal("figure has no runs")
	}
	for _, r := range runs {
		if r.Engine == "" || r.TotalMS <= 0 {
			t.Fatalf("run missing fields: %+v", r)
		}
	}
	// The ProgXe runs must carry the comparison counter the perf work tracks.
	if runs[0].DomComparisons == 0 {
		t.Fatalf("ProgXe run reports no dominance comparisons: %+v", runs[0])
	}
}
