package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	t.Setenv("PROGXE_BENCH_SCALE", "0.02")
	if err := run([]string{"-figure", "10a"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-figure", "99x"}); err == nil {
		t.Fatal("unknown figure must error")
	}
}
